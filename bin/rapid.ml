(* rapid: command-line driver mirroring the paper's RAPID tool.

   Subcommands:
     metainfo  — trace statistics (RAPID's MetaInfo class)
     check     — run an atomicity checker on a trace file
     generate  — produce a synthetic trace (benchmark profile or custom)
     profiles  — list benchmark profiles
     table     — regenerate a paper table (also available via bench/main.exe) *)

open Cmdliner

(* Trace files are auto-detected: binary (Binfmt magic) or text. *)
let read_trace path =
  if Traces.Binfmt.is_binary path then
    try Traces.Binfmt.read_file path
    with Traces.Binfmt.Corrupt msg ->
      Format.eprintf "%s@." msg;
      exit 2
  else
    match Traces.Parser.parse_file path with
    | Ok tr -> tr
    | Error e ->
      Format.eprintf "%s: %a@." path Traces.Parser.pp_error e;
      exit 2

(* --shards execution mode.  [Steal] is the work-stealing scheduler
   (DESIGN.md §18): one machine-wide domain budget (--jobs) owns both
   the file fan-out and the intra-file micro-chunks.  [Static n] is the
   fixed boundary-summary plan on a dedicated chunk pool (n = 0: the
   per-file auto count), kept for differential testing and as the
   --no-packed fallback. *)
type shard_mode = Steal | Static of int

let checker_of_name = function
  | "aerodrome" -> Ok (module Aerodrome.Opt : Aerodrome.Checker.S)
  | "aerodrome-basic" -> Ok (module Aerodrome.Basic : Aerodrome.Checker.S)
  | "aerodrome-reduced" -> Ok (module Aerodrome.Reduced : Aerodrome.Checker.S)
  | "velodrome" -> Ok (module Velodrome.Online : Aerodrome.Checker.S)
  | "velodrome-nogc" -> Ok Velodrome.Online.no_gc_checker
  | "velodrome-pk" -> Ok Velodrome.Online.pk_checker
  | other -> Error (`Msg (Printf.sprintf "unknown algorithm %S" other))

let algo_conv =
  Arg.conv
    ( (fun s -> checker_of_name s),
      fun ppf (module C : Aerodrome.Checker.S) ->
        Format.pp_print_string ppf C.name )

let trace_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE" ~doc:"Trace file in the rapid .std format.")

(* metainfo *)

let metainfo_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the statistics as a flat JSON object.")
  in
  let run json path =
    let tr = read_trace path in
    let m = Analysis.Metainfo.analyze tr in
    if json then
      print_endline (Obs.Json.to_string (Analysis.Metainfo.to_json m))
    else Format.printf "%a@." Analysis.Metainfo.pp m
  in
  Cmd.v
    (Cmd.info "metainfo" ~doc:"Print statistics of a trace file")
    Term.(const run $ json $ trace_arg)

(* check *)

let check_cmd =
  let algo =
    Arg.(
      value
      & opt algo_conv (module Aerodrome.Opt : Aerodrome.Checker.S)
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:
            "Checker: aerodrome (default), aerodrome-basic, \
             aerodrome-reduced, velodrome, velodrome-nogc, velodrome-pk.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "t"; "timeout" ] ~docv:"SECONDS" ~doc:"Wall-clock budget.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only set the exit code.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Domain.recommended_domain_count ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "The machine-wide domain budget (default: the number of \
             available cores).  In the default $(b,--shards) $(b,steal) \
             mode one work-stealing scheduler of $(docv) domains owns \
             both parallelism axes — trace files fan out as tasks that \
             spawn their own chunk tasks on the same deques.  In \
             $(b,static) mode it caps the file-level fan-out.  Reports \
             are printed in argument order regardless of completion \
             order; each file's report is byte-identical to $(b,--jobs) \
             1.")
  in
  let shards =
    (* $(docv) selects the execution mode: "steal"/"auto" is the
       work-stealing scheduler, "static:N" (or a bare integer, the
       historical spelling) the fixed chunk plan on a dedicated pool *)
    let shards_conv =
      let parse s =
        match s with
        | "steal" | "auto" -> Ok Steal
        | "static" | "static:auto" -> Ok (Static 0)
        | _ -> (
          let static n = Ok (Static (max 1 n)) in
          match int_of_string_opt s with
          | Some n -> static n
          | None -> (
            match String.index_opt s ':' with
            | Some i
              when String.sub s 0 i = "static" ->
              (match
                 int_of_string_opt
                   (String.sub s (i + 1) (String.length s - i - 1))
               with
              | Some n -> static n
              | None ->
                Error
                  (`Msg (Printf.sprintf "invalid static shard count %S" s)))
            | _ ->
              Error
                (`Msg
                   (Printf.sprintf
                      "invalid shard mode %S (expected \"steal\", \
                       \"static:N\", an integer or \"auto\")"
                      s))))
      in
      let print ppf = function
        | Steal -> Format.pp_print_string ppf "steal"
        | Static 0 -> Format.pp_print_string ppf "static:auto"
        | Static n -> Format.fprintf ppf "static:%d" n
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt (some shards_conv) None
      & info [ "s"; "shards" ] ~docv:"MODE"
          ~doc:
            "How to split packed binary traces into chunks at \
             boundary-summary cuts and check the chunks concurrently.  \
             Cuts need not be quiescent: each chunk checker is seeded \
             with the cut's open-transaction summary, and reconciliation \
             repairs only the short window until the transactions \
             straddling the cut (and those open at their close) have \
             retired, so the report is byte-identical to the sequential \
             run.  $(b,steal) (also $(b,auto); the default on packed \
             runs) cuts each trace into fine-grained micro-chunks and \
             runs them — and the file fan-out itself — on one \
             work-stealing scheduler of $(b,--jobs) domains, the single \
             machine-wide budget.  $(b,static:N) (or a bare integer) \
             pins a fixed chunk count on a dedicated pool, one domain \
             per chunk ($(b,static:auto) sizes the count per file); \
             $(b,--shards) 1 disables sharding.  Only the default \
             $(b,aerodrome) checker shards; other algorithms, text \
             traces, timed-out and $(b,--no-packed) runs fall back to \
             the sequential path.")
  in
  let reclaim =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "reclaim" ]
                ~doc:
                  "Release each variable's clock state at its last access \
                   (the default): a last-use index — computed during text \
                   interning, or read from a binary trace's footer — makes \
                   peak memory proportional to live variables.  Streams \
                   with no index fall back to periodically collapsing \
                   inactive state.  Verdicts are identical either way." );
            ( false,
              info [ "no-reclaim" ]
                ~doc:
                  "Keep every variable's clock state for the whole run \
                   (the pre-reclamation behaviour)." );
          ])
  in
  let pipelined =
    Arg.(
      value & flag
      & info [ "pipelined" ]
          ~doc:
            "Overlap trace ingestion (read, decode, intern) with checking: \
             a producer domain streams event batches through a bounded \
             ring buffer to the checker.  Verdicts are identical to the \
             sequential stream.")
  in
  let prefilter =
    Arg.(
      value
      & vflag Analysis.Runner.Off
          [
            ( Analysis.Runner.Auto,
              info [ "prefilter" ]
                ~doc:
                  "Drop events that provably cannot change the verdict \
                   before they reach the checker: accesses to thread-local \
                   and read-only variables, redundant in-transaction \
                   re-accesses, and operations on single-threaded locks.  \
                   Uses exact whole-trace statistics when they come for \
                   free (text traces, v3 binary footers) and runs \
                   unfiltered otherwise (v1/v2 binary files): the exact \
                   mode is a pure win (~1.4x), while the single-pass \
                   buffering mode costs more than it saves on typical \
                   workloads (~0.74x) and is only used with \
                   $(b,--prefilter-online).  The verdict is identical; \
                   violation indices refer to the reduced stream." );
            ( Analysis.Runner.Online,
              info [ "prefilter-online" ]
                ~doc:
                  "Force the single-pass adaptive buffering mode, which \
                   filters without whole-trace statistics at the price of \
                   buffering overhead (measured ~0.74x the unfiltered \
                   throughput — useful when reducing the stream matters \
                   more than wall-clock, e.g. ahead of a slower \
                   downstream analysis)." );
            ( Analysis.Runner.Off,
              info [ "no-prefilter" ]
                ~doc:"Feed the checker every event (the default)." );
          ])
  in
  let packed =
    Arg.(
      value
      & vflag true
          [
            ( false,
              info [ "no-packed" ]
                ~doc:
                  "Decode binary traces through the boxed reference \
                   reader instead of the default zero-copy packed path \
                   (mmap + flat int events).  Verdicts and reports are \
                   identical; this exists for differential testing and \
                   benchmarking." );
          ])
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Collect telemetry and print per-file and process-wide metric \
             snapshots after the reports (printed even with $(b,--quiet)).")
  in
  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "Collect telemetry and write an $(b,aerodrome-stats/1) JSON \
             document to $(docv) ($(b,-) for stdout).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record a Chrome trace-event timeline (ingestion and checking \
             spans) to $(docv); open it in Perfetto or chrome://tracing.")
  in
  let progress =
    Arg.(
      value
      & opt (some float) None
      & info [ "progress" ] ~docv:"M"
          ~doc:
            "Print a heartbeat line to stderr every $(docv) million events \
             (events/sec and, when the total is known, an ETA).")
  in
  let metrics_addr =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-addr" ] ~docv:"ADDR"
          ~doc:
            "Serve a live OpenMetrics/Prometheus exposition of the \
             process and per-run telemetry on $(docv) — $(b,HOST:PORT) \
             (port 0 picks a free one) or $(b,unix:PATH) — for the \
             duration of the run; scrape $(b,/metrics) with curl or \
             $(b,rapid scrape).  Sampling reads shared counters without \
             locking, so a scrape never stalls the checker.  Implies \
             telemetry collection.")
  in
  let flight_record =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-record" ] ~docv:"DIR"
          ~doc:
            "Keep a bounded per-thread ring of recent events while \
             checking; a run that ends in a violation writes a witness \
             bundle into $(docv): a JSON diagnosis \
             ($(i,trace).witness.json) and, whenever the rings still \
             cover a globally quiescent cut, a replayable binary slice \
             ($(i,trace).slice.bin) on which $(b,rapid check) reproduces \
             the violation.  The slice is re-checked before the run \
             returns and the outcome recorded in the bundle.")
  in
  let flight_window =
    Arg.(
      value
      & opt int Traces.Flight.default_window
      & info [ "flight-window" ] ~docv:"N"
          ~doc:
            "Per-thread flight-recorder ring capacity, in events \
             (default 256).  Larger windows reach further back for a \
             quiescent cut at proportional memory cost.")
  in
  (* the positionals are plain strings, not Arg.file: a missing file must
     produce a per-file error and leave the remaining files checked *)
  let traces =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"TRACE" ~doc:"Trace files in the rapid .std or binary format.")
  in
  let run checker timeout quiet jobs shards reclaim pipelined prefilter packed
      stats stats_json trace_out progress metrics_addr flight_record
      flight_window paths =
    let (module C : Aerodrome.Checker.S) = checker in
    let flight =
      Option.map
        (fun dir ->
          {
            Analysis.Runner.flight_dir = dir;
            flight_window = max 1 flight_window;
          })
        flight_record
    in
    let mode =
      match shards with
      | Some m -> m
      | None ->
        (* default: the work-stealing scheduler whenever the packed
           chunk path is available; --no-packed runs have nothing to
           chunk and keep the sequential per-file path *)
        if packed then Steal else Static 1
    in
    let cores = Domain.recommended_domain_count () in
    (* one consolidated warning on the unified domain budget: in
       stealing mode the scheduler owns every domain and --jobs is the
       whole budget; in static mode the worst case is the larger axis
       (the runner divides --jobs by the shard width, so the product
       never exceeds it).  Auto counts cap at the core count by
       construction, so only explicit counts warn. *)
    let budget, budget_src =
      match mode with
      | Steal -> (jobs, "--jobs")
      | Static n -> if n > jobs then (n, "--shards") else (jobs, "--jobs")
    in
    if budget > cores then
      Format.eprintf "rapid: warning: %s %d exceeds %d available core%s@."
        budget_src budget cores
        (if cores = 1 then "" else "s");
    if stats || stats_json <> None || trace_out <> None || metrics_addr <> None
    then Obs.enable ();
    let exporter =
      match metrics_addr with
      | None -> None
      | Some addr -> (
        match Obs.Exporter.serve addr with
        | Ok srv ->
          Format.eprintf "rapid: serving metrics on %s@."
            (Obs.Exporter.bound srv);
          Some srv
        | Error msg ->
          Format.eprintf "rapid: %s@." msg;
          exit 2)
    in
    let collector =
      match trace_out with
      | Some _ -> Some (Obs.Chrome_trace.start ())
      | None -> None
    in
    let heartbeat =
      Option.map
        (fun m ->
          Obs.Heartbeat.create
            ~every:(max 1 (int_of_float (m *. 1e6)))
            ~label:"check" ())
        progress
    in
    let pool_busy = ref None in
    (* The work-stealing scheduler: created once, machine-wide, when
       stealing has more than one domain to run on and the batch can
       actually use them — any multi-file run (the file fan-out itself
       executes on the scheduler), or a lone packed binary trace (its
       chunks do).  A lone text trace stays on the sequential path it
       always had, so no idle scheduler pollutes its telemetry. *)
    let sched =
      match mode with
      | Static _ -> None
      | Steal when budget <= 1 -> None
      | Steal ->
        let viable =
          match paths with
          | [ p ] -> (
            packed
            && (try Traces.Binfmt.is_binary p with Sys_error _ -> false)
            &&
            (* too-small traces run sequentially (the runner's own
               gate); don't spawn idle domains for them *)
            match Traces.Binfmt.read_header p with
            | h ->
              Analysis.Runner.steal_worthwhile ~shards:0
                ~events:h.Traces.Binfmt.events
            | exception _ -> false)
          | _ -> true
        in
        if viable then Some (Parallel.Deque.create budget) else None
    in
    (* live scheduler telemetry for the OpenMetrics endpoint (and the
       process snapshot): lazy probes, sampled at scrape time *)
    (match sched with
    | None -> ()
    | Some sc ->
      let stat name f =
        Obs.Registry.probe Obs.Registry.global name (fun () ->
            Obs.Snapshot.Int (f (Parallel.Deque.stats sc)))
      in
      stat "sched.domains" (fun s -> s.Parallel.Deque.domains);
      stat "sched.steals" (fun (s : Parallel.Deque.stats) -> s.steals);
      stat "sched.failed_steals" (fun (s : Parallel.Deque.stats) ->
          s.failed_steals);
      stat "sched.injected" (fun (s : Parallel.Deque.stats) -> s.injected);
      stat "sched.completed" (fun (s : Parallel.Deque.stats) -> s.completed));
    (* the shard width handed to the runner: 0 (auto micro-chunking)
       only makes sense on a live scheduler — a steal-mode run that
       created none (one domain, lone text trace, sub-threshold binary)
       is sequential, and must stay eligible for --pipelined *)
    let shards =
      match mode with
      | Steal -> if sched = None then 1 else 0
      | Static n -> n
    in
    (* a lone sharded trace reuses one chunk pool across the run so its
       per-domain busy seconds can be reported like the file pool's *)
    let shard_pool =
      (* static mode only, and only when the file can actually shard
         (binary): idle workers would otherwise pollute the pool
         telemetry.  An auto count is resolved from the header here so
         the pool matches the chunk fan-out the runner will pick. *)
      match paths with
      | [ p ]
        when sched = None
             && (match mode with Static _ -> true | Steal -> false)
             && (shards = 0 || shards > 1)
             && (try Traces.Binfmt.is_binary p with Sys_error _ -> false) ->
        let width =
          if shards > 0 then shards
          else
            match Traces.Binfmt.read_header p with
            | h ->
              Analysis.Runner.resolve_shards ~shards
                ~events:h.Traces.Binfmt.events
            | exception _ -> 1
        in
        if width > 1 then Some (Parallel.Pool.create width) else None
      | _ -> None
    in
    let run_started = Unix.gettimeofday () in
    let reports =
      Analysis.Runner.run_many ?timeout ?heartbeat ~pipelined ~reclaim
        ~prefilter ~packed ~jobs ~shards ?shard_pool ?sched ?flight
        ?on_pool:
          (if sched = None then Some (fun b -> pool_busy := Some b) else None)
        checker paths
    in
    Option.iter Obs.Exporter.stop exporter;
    let run_wall = Unix.gettimeofday () -. run_started in
    (match shard_pool with
    | Some p ->
      Parallel.Pool.shutdown p;
      if !pool_busy = None then
        pool_busy := Some (Parallel.Pool.busy_seconds p)
    | None -> ());
    (* final scheduler reading, after the joined workers' counters are
       all published *)
    let sched_stats =
      match sched with
      | None -> None
      | Some sc ->
        Parallel.Deque.shutdown sc;
        Some (Parallel.Deque.stats sc)
    in
    let single = match paths with [ _ ] -> true | _ -> false in
    List.iter
      (fun fr ->
        match fr.Analysis.Runner.report with
        | Ok r ->
          if not quiet then
            if single then Format.printf "%a@." Analysis.Runner.pp r
            else Format.printf "%a@." Analysis.Runner.pp_file_report fr
        | Error msg -> Format.eprintf "%s@." msg)
      reports;
    (* deterministic rendering: entries sorted by metric name, so the
       output is stable across prefilter/shard/flight configurations *)
    let process_snapshot () =
      Obs.Snapshot.sorted (Obs.Registry.snapshot Obs.Registry.global)
    in
    if stats then begin
      List.iter
        (fun fr ->
          match fr.Analysis.Runner.report with
          | Ok r when r.Analysis.Runner.metrics <> [] ->
            Format.printf "%s metrics:@.%a" fr.Analysis.Runner.file
              Obs.Snapshot.pp
              (Obs.Snapshot.sorted r.Analysis.Runner.metrics)
          | _ -> ())
        reports;
      let g = process_snapshot () in
      if g <> [] then Format.printf "process metrics:@.%a" Obs.Snapshot.pp g;
      (match !pool_busy with
      | Some busy ->
        Array.iteri
          (fun i s -> Format.printf "  pool.worker%d.busy_seconds  %.3f@." i s)
          busy
      | None -> ());
      (match sched_stats with
      | Some st ->
        Array.iteri
          (fun i s ->
            Format.printf "  sched.worker%d.busy_seconds  %.3f@." i s)
          st.Parallel.Deque.busy_seconds;
        Array.iteri
          (fun i n -> Format.printf "  sched.worker%d.tasks  %d@." i n)
          st.Parallel.Deque.ran
      | None -> ())
    end;
    (match stats_json with
    | None -> ()
    | Some dest ->
      let file_json (fr : Analysis.Runner.file_report) =
        match fr.report with
        | Error msg ->
          Obs.Json.Obj
            [ ("file", Obs.Json.Str fr.file); ("error", Obs.Json.Str msg) ]
        | Ok r ->
          let verdict, extra =
            match r.outcome with
            | Analysis.Runner.Timed_out -> ("timeout", [])
            | Analysis.Runner.Verdict None -> ("serializable", [])
            | Analysis.Runner.Verdict (Some v) ->
              ( "violation",
                [
                  ( "violation_index",
                    Obs.Json.Num
                      (float_of_int (v.Aerodrome.Violation.index + 1)) );
                ] )
          in
          Obs.Json.Obj
            ([
               ("file", Obs.Json.Str fr.file);
               ("verdict", Obs.Json.Str verdict);
             ]
            @ extra
            @ [
                ("seconds", Obs.Json.Num r.seconds);
                ("events_fed", Obs.Json.Num (float_of_int r.events_fed));
                ("metrics", Obs.Snapshot.to_json (Obs.Snapshot.sorted r.metrics));
              ])
      in
      let process =
        let fields =
          [ ("global", Obs.Snapshot.to_json (process_snapshot ())) ]
        in
        (* per-worker scheduler telemetry: the counters mirror the
           sched.* probes in [global]; utilization is each domain's
           busy fraction of the whole run's wall clock *)
        let fields =
          match sched_stats with
          | None -> fields
          | Some st ->
            let nums f xs =
              Obs.Json.List (Array.to_list xs |> List.map f)
            in
            fields
            @ [
                ( "sched",
                  Obs.Json.Obj
                    [
                      ( "domains",
                        Obs.Json.Num
                          (float_of_int st.Parallel.Deque.domains) );
                      ( "steals",
                        Obs.Json.Num (float_of_int st.Parallel.Deque.steals)
                      );
                      ( "failed_steals",
                        Obs.Json.Num
                          (float_of_int st.Parallel.Deque.failed_steals) );
                      ( "injected",
                        Obs.Json.Num (float_of_int st.Parallel.Deque.injected)
                      );
                      ( "completed",
                        Obs.Json.Num
                          (float_of_int st.Parallel.Deque.completed) );
                      ( "busy_seconds",
                        nums
                          (fun s -> Obs.Json.Num s)
                          st.Parallel.Deque.busy_seconds );
                      ( "utilization",
                        nums
                          (fun s ->
                            Obs.Json.Num
                              (if run_wall > 0. then s /. run_wall else 0.))
                          st.Parallel.Deque.busy_seconds );
                      ( "tasks",
                        nums
                          (fun n -> Obs.Json.Num (float_of_int n))
                          st.Parallel.Deque.ran );
                    ] );
              ]
        in
        match !pool_busy with
        | Some busy ->
          fields
          @ [
              ( "pool_busy_seconds",
                Obs.Json.List
                  (Array.to_list busy |> List.map (fun s -> Obs.Json.Num s)) );
              (* per-domain busy fraction of the whole run's wall clock;
                 idle workers show the fan-out is under-utilized *)
              ( "pool",
                Obs.Json.Obj
                  [
                    ( "utilization",
                      Obs.Json.List
                        (Array.to_list busy
                        |> List.map (fun s ->
                               Obs.Json.Num
                                 (if run_wall > 0. then s /. run_wall
                                  else 0.))) );
                  ] );
            ]
        | None -> fields
      in
      let doc =
        Obs.Json.Obj
          [
            ("schema", Obs.Json.Str "aerodrome-stats/1");
            ("checker", Obs.Json.Str C.name);
            ("files", Obs.Json.List (List.map file_json reports));
            ("process", Obs.Json.Obj process);
          ]
      in
      let text = Obs.Json.to_string doc in
      if dest = "-" then print_endline text
      else begin
        let oc = open_out dest in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc text;
            output_char oc '\n')
      end);
    (match (trace_out, collector) with
    | Some path, Some c ->
      Obs.Chrome_trace.stop ();
      Obs.Chrome_trace.write_file path c
    | _ -> ());
    let has f =
      List.exists
        (fun fr ->
          match fr.Analysis.Runner.report with
          | Ok r -> f (Some r)
          | Error _ -> f None)
        reports
    in
    let errored = has (function None -> true | Some _ -> false) in
    let timed_out =
      has (function
        | Some { Analysis.Runner.outcome = Analysis.Runner.Timed_out; _ } ->
          true
        | _ -> false)
    in
    let violated =
      has (function
        | Some { Analysis.Runner.outcome = Analysis.Runner.Verdict (Some _); _ }
          ->
          true
        | _ -> false)
    in
    if errored then exit 2
    else if timed_out then exit 3
    else if violated then exit 1
    else exit 0
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Check trace files for conflict-serializability violations (exit \
          code: 0 all serializable, 1 violation, 2 unreadable/malformed \
          file, 3 timeout)")
    Term.(
      const run $ algo $ timeout $ quiet $ jobs $ shards $ reclaim $ pipelined
      $ prefilter $ packed $ stats $ stats_json $ trace_out $ progress
      $ metrics_addr $ flight_record $ flight_window $ traces)

(* scrape: one-shot GET against a running metrics exporter.  Exists so
   the cram tests (and machines without curl) can exercise the exporter
   hermetically; CI's smoke job uses curl against the same endpoint. *)

let scrape_cmd =
  let addr =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ADDR"
          ~doc:
            "Exporter address: $(b,HOST:PORT) or $(b,unix:PATH), as given \
             to $(b,rapid check --metrics-addr).")
  in
  let path =
    Arg.(
      value & opt string "/metrics"
      & info [ "path" ] ~docv:"PATH" ~doc:"Request path.")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Validate the fetched exposition against the OpenMetrics \
             subset the exporter emits; exit 1 when it does not \
             conform.")
  in
  let run addr path validate =
    match Obs.Exporter.fetch ~path addr with
    | Error msg ->
      Format.eprintf "rapid: scrape: %s@." msg;
      exit 2
    | Ok body -> (
      print_string body;
      if not validate then exit 0
      else
        match Obs.Exporter.validate body with
        | Ok () -> exit 0
        | Error msg ->
          Format.eprintf "rapid: scrape: invalid exposition: %s@." msg;
          exit 1)
  in
  Cmd.v
    (Cmd.info "scrape"
       ~doc:
         "Fetch (and optionally validate) a live metrics exposition from \
          a running $(b,rapid check --metrics-addr)")
    Term.(const run $ addr $ path $ validate)

(* generate *)

let generate_cmd =
  let profile =
    Arg.(
      value
      & opt (some string) None
      & info [ "p"; "profile" ] ~docv:"NAME"
          ~doc:"Benchmark profile (see $(b,rapid profiles)).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"F" ~doc:"Event-count multiplier.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N" ~doc:"Override the profile's seed.")
  in
  let events =
    Arg.(
      value & opt int 10_000
      & info [ "events" ] ~docv:"N" ~doc:"Custom workload: target events.")
  in
  let threads =
    Arg.(
      value & opt int 4
      & info [ "threads" ] ~docv:"N" ~doc:"Custom workload: threads.")
  in
  let shape =
    Arg.(
      value
      & opt (enum [ ("independent", Workloads.Generator.Independent);
                    ("anchored", Workloads.Generator.Anchored) ])
          Workloads.Generator.Independent
      & info [ "shape" ] ~docv:"SHAPE" ~doc:"Custom workload: shape.")
  in
  let violate =
    Arg.(
      value
      & opt (some float) None
      & info [ "violate-at" ] ~docv:"F"
          ~doc:"Custom workload: inject a violation at this trace fraction.")
  in
  let run profile out scale seed events threads shape violate =
    let config =
      match profile with
      | Some name -> (
        match Workloads.Benchmarks.find name with
        | Some p -> Workloads.Profile.scaled p scale
        | None ->
          Format.eprintf "unknown profile %S (try: rapid profiles)@." name;
          exit 2)
      | None ->
        let plan =
          match violate with
          | None -> Workloads.Generator.Atomic
          | Some f -> Workloads.Generator.Violate_at f
        in
        let threads =
          if shape = Workloads.Generator.Anchored then max threads 4
          else threads
        in
        {
          Workloads.Generator.default with
          events = int_of_float (float_of_int events *. scale);
          threads;
          shape;
          plan;
          vars = max Workloads.Generator.default.vars (events / 3);
        }
    in
    let config =
      match seed with
      | Some s -> { config with Workloads.Generator.seed = Int64.of_int s }
      | None -> config
    in
    let tr = Workloads.Generator.generate config in
    match out with
    | Some path ->
      Traces.Parser.to_file path tr;
      Format.printf "wrote %d events to %s@." (Traces.Trace.length tr) path
    | None -> print_string (Traces.Parser.to_string tr)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic trace")
    Term.(
      const run $ profile $ out $ scale $ seed $ events $ threads $ shape
      $ violate)

(* convert: text <-> binary *)

let convert_cmd =
  let out =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT" ~doc:"Output file.")
  in
  let to_text =
    Arg.(
      value & flag
      & info [ "text" ] ~doc:"Write the textual format (default: binary).")
  in
  let run to_text path out =
    let tr = read_trace path in
    if to_text then Traces.Parser.to_file out tr
    else Traces.Binfmt.write_file out tr;
    let size f =
      let ic = open_in_bin f in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> in_channel_length ic)
    in
    Format.printf "%s: %d events, %d -> %d bytes@." out
      (Traces.Trace.length tr) (size path) (size out)
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Convert a trace between the textual and binary formats")
    Term.(const run $ to_text $ trace_arg $ out)

(* filter: write the prefiltered trace *)

let filter_cmd =
  let out =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT" ~doc:"Output file.")
  in
  let to_text =
    Arg.(
      value & flag
      & info [ "text" ] ~doc:"Write the textual format (default: binary).")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("exact", `Exact); ("online", `Online) ]) `Exact
      & info [ "m"; "mode" ] ~docv:"MODE"
          ~doc:
            "$(b,exact) (default) classifies variables and locks from \
             whole-trace statistics; $(b,online) replays the single-pass \
             adaptive filter, which keeps more events (it can only drop \
             what it could drop without seeing the future).")
  in
  let window =
    let parse s =
      match String.index_opt s ':' with
      | Some i -> (
        match
          ( int_of_string_opt (String.sub s 0 i),
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          )
        with
        | Some start, Some len when start >= 0 && len >= 0 -> Ok (start, len)
        | _ -> Error (`Msg (Printf.sprintf "invalid window %S" s)))
      | None -> Error (`Msg (Printf.sprintf "invalid window %S (want START:LEN)" s))
    in
    let print ppf (start, len) = Format.fprintf ppf "%d:%d" start len in
    Arg.(
      value
      & opt (some (conv (parse, print))) None
      & info [ "window" ] ~docv:"START:LEN"
          ~doc:
            "First restrict the trace to the $(docv) event window \
             (transaction markers repaired as in the checker), then \
             filter the window.")
  in
  let run to_text mode window path out =
    let tr = read_trace path in
    let tr =
      match window with
      | None -> tr
      | Some (start, len) -> Traces.Transform.limit_window start len tr
    in
    let reduced, c = Traces.Prefilter.run_trace mode tr in
    if to_text then Traces.Parser.to_file out reduced
    else Traces.Binfmt.write_file out reduced;
    Format.printf
      "%s: %d -> %d events (-%d: %d thread-local, %d read-only, %d \
       redundant, %d lock-local)@."
      out c.Traces.Prefilter.events_in c.Traces.Prefilter.kept
      (Traces.Prefilter.elided c)
      c.Traces.Prefilter.thread_local c.Traces.Prefilter.read_only
      c.Traces.Prefilter.redundant c.Traces.Prefilter.lock_local
  in
  Cmd.v
    (Cmd.info "filter"
       ~doc:
         "Write a reduced trace with the same conflict-serializability \
          verdict: thread-local, read-only, redundant and lock-local \
          events elided")
    Term.(const run $ to_text $ mode $ window $ trace_arg $ out)

(* explain: everything we know about a trace's first violation *)

let explain_cmd =
  let run path =
    let tr = read_trace path in
    match Aerodrome.Checker.run (module Aerodrome.Opt) tr with
    | None -> Format.printf "conflict serializable: nothing to explain@."
    | Some v ->
      Format.printf "%a@.@." Aerodrome.Violation.pp v;
      (* the baseline's witness cycle *)
      (match Aerodrome.Checker.run (module Velodrome.Online) tr with
      | Some { site = Aerodrome.Violation.Graph_cycle cycle; index; _ } ->
        Format.printf "velodrome witness (at event %d): transactions %a@."
          (index + 1)
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
             Format.pp_print_int)
          cycle
      | _ -> ());
      (* the Proposition 1 event-level witness, on a window around the
         violation to keep the quadratic analysis tractable *)
      let window_start = max 0 (v.Aerodrome.Violation.index - 2_000) in
      let window =
        Traces.Transform.limit_window window_start
          (v.Aerodrome.Violation.index - window_start + 1)
          tr
      in
      if Traces.Trace.length window <= 5_000 then begin
        let chb = Aerodrome.Chb.compute window in
        match Aerodrome.Chb.first_path_witness chb window with
        | Some (i, j) ->
          Format.printf
            "prop-1 witness (indices in the %d-event window): e%d ->* e%d and e%d <=CHB e%d@."
            (Traces.Trace.length window) (i + 1) (j + 1) (j + 1) (i + 1);
          Format.printf "  e%d = %a@.  e%d = %a@." (i + 1) Traces.Event.pp
            (Traces.Trace.get window i) (j + 1) Traces.Event.pp
            (Traces.Trace.get window j)
        | None -> ()
      end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Check a trace and explain the first violation (witness cycle and           Proposition 1 event pair)")
    Term.(const run $ trace_arg)

(* clocks: the Figure 5/6/7-style clock-evolution table *)

let clocks_cmd =
  let limit =
    Arg.(
      value & opt int 64
      & info [ "n"; "limit" ] ~docv:"N" ~doc:"Print at most N events.")
  in
  let run limit path =
    let tr = read_trace path in
    let threads = Traces.Trace.threads tr in
    if threads > 8 then begin
      Format.eprintf "clocks: refusing to print %d-wide vector clocks@."
        threads;
      exit 2
    end;
    let st =
      Aerodrome.Basic.create ~threads ~locks:(Traces.Trace.locks tr)
        ~vars:(Traces.Trace.vars tr)
    in
    let symbols = Traces.Trace.symbols tr in
    let name_of e =
      match symbols with
      | Some s -> Traces.Trace.Symbols.thread s (Traces.Event.thread e)
      | None -> Traces.Ids.Tid.to_string (Traces.Event.thread e)
    in
    Format.printf "%5s  %-24s" "event" "operation";
    for t = 0 to threads - 1 do
      Format.printf "  %14s" (Printf.sprintf "C_%d" t)
    done;
    Format.printf "@.";
    (try
       Traces.Trace.iteri
         (fun i e ->
           if i >= limit then raise Exit;
           let r = Aerodrome.Basic.feed st e in
           Format.printf "%5d  %-24s" (i + 1)
             (Format.asprintf "%s:%a" (name_of e) Traces.Event.pp_op
                (Traces.Event.op e));
           for t = 0 to threads - 1 do
             Format.printf "  %14s"
               (Vclock.Vtime.to_string (Aerodrome.Basic.thread_clock st t))
           done;
           Format.printf "@.";
           match r with
           | Some v ->
             Format.printf "%a@." Aerodrome.Violation.pp v;
             raise Exit
           | None -> ())
         tr
     with Exit -> ())
  in
  Cmd.v
    (Cmd.info "clocks"
       ~doc:
         "Replay a trace through Algorithm 1 printing the vector-clock \
          evolution (in the style of the paper's Figures 5-7)")
    Term.(const run $ limit $ trace_arg)

(* profiles *)

let profiles_cmd =
  let run () =
    List.iter
      (fun (p : Workloads.Profile.t) ->
        Format.printf "%a@." Workloads.Profile.pp p)
      Workloads.Benchmarks.all
  in
  Cmd.v
    (Cmd.info "profiles" ~doc:"List benchmark profiles")
    Term.(const run $ const ())

(* table *)

let table_cmd =
  let id =
    Arg.(
      required
      & opt (some int) None
      & info [ "id" ] ~docv:"N" ~doc:"Table number: 1 or 2.")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"F" ~doc:"Scale.")
  in
  let timeout =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ] ~docv:"S" ~doc:"Per-run budget.")
  in
  let run id scale timeout =
    let profiles =
      if id = 1 then Workloads.Benchmarks.table1
      else if id = 2 then Workloads.Benchmarks.table2
      else begin
        Format.eprintf "table id must be 1 or 2@.";
        exit 2
      end
    in
    let rows =
      List.map
        (fun (p : Workloads.Profile.t) ->
          let tr = Workloads.Profile.generate ~scale p in
          let meta = Analysis.Metainfo.analyze tr in
          let v =
            Analysis.Runner.run ~timeout (module Velodrome.Online) tr
          in
          let a = Analysis.Runner.run ~timeout (module Aerodrome.Opt) tr in
          Analysis.Report.make_row ~name:p.name ~meta ~velodrome:v
            ~aerodrome:a ~timeout ~paper:p.paper ())
        profiles
    in
    Analysis.Report.render_comparison Format.std_formatter
      ~title:(Printf.sprintf "Table %d (scaled reproduction)" id)
      rows
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Regenerate a paper table")
    Term.(const run $ id $ scale $ timeout)

let () =
  let doc = "dynamic atomicity checking (AeroDrome / Velodrome)" in
  let info = Cmd.info "rapid" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ metainfo_cmd; check_cmd; scrape_cmd; generate_cmd; convert_cmd; filter_cmd; explain_cmd; clocks_cmd; profiles_cmd; table_cmd ]))
