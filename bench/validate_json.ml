(* Schema validator for the bench harness's --json output
   (schema "aerodrome-bench/10").  Exits 0 and prints "ok" when the file
   parses and carries the expected structure; prints a diagnostic and
   exits 1 otherwise.  Used by the cram test so the emitter cannot rot.

   Parsing is [Obs.Json] (the library superseded this file's private
   JSON reader); the schema checks below stay local to the bench. *)

open Obs.Json

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let field obj key =
  match obj with
  | Obj kvs -> (
    match List.assoc_opt key kvs with
    | Some v -> v
    | None -> bad "missing field %S" key)
  | _ -> bad "expected an object around field %S" key

let as_num what = function Num f -> f | _ -> bad "%s: expected a number" what
let as_str what = function Str s -> s | _ -> bad "%s: expected a string" what
let as_list what = function List l -> l | _ -> bad "%s: expected an array" what

let check_sample ~where s =
  let name = as_str (where ^ ".name") (field s "name") in
  let seconds = as_num (where ^ ".seconds") (field s "seconds") in
  let fed = as_num (where ^ ".events_fed") (field s "events_fed") in
  let eps = as_num (where ^ ".events_per_sec") (field s "events_per_sec") in
  let verdict = as_str (where ^ ".verdict") (field s "verdict") in
  ignore (as_num (where ^ ".allocated_mwords") (field s "allocated_mwords"));
  ignore (as_num (where ^ ".top_heap_words") (field s "top_heap_words"));
  if name = "" then bad "%s: empty checker name" where;
  if seconds < 0. then bad "%s: negative seconds" where;
  if fed < 0. then bad "%s: negative events_fed" where;
  if eps < 0. then bad "%s: negative events_per_sec" where;
  match verdict with
  | "serializable" | "violation" | "timeout" -> ()
  | "n/a" -> ()  (* decode-only ingestion micro rows: no checker ran *)
  | v -> bad "%s: unknown verdict %S" where v

let check_row ~where r =
  let name = as_str (where ^ ".name") (field r "name") in
  let events = as_num (where ^ ".events") (field r "events") in
  ignore (as_num (where ^ ".threads") (field r "threads"));
  ignore (as_num (where ^ ".locks") (field r "locks"));
  ignore (as_num (where ^ ".vars") (field r "vars"));
  let checkers = as_list (where ^ ".checkers") (field r "checkers") in
  if name = "" then bad "%s: empty row name" where;
  if events < 0. then bad "%s: negative events" where;
  if checkers = [] then bad "%s: no checker samples" where;
  List.iteri
    (fun i s -> check_sample ~where:(Printf.sprintf "%s.checkers[%d]" where i) s)
    checkers

let as_bool what = function
  | Bool b -> b
  | _ -> bad "%s: expected a boolean" what

let check_parallel = function
  | Null -> ()
  | p ->
    let corpus = field p "corpus" in
    ignore (as_num "parallel.corpus.traces" (field corpus "traces"));
    let events_total =
      as_num "parallel.corpus.events_total" (field corpus "events_total")
    in
    if events_total < 0. then bad "parallel.corpus: negative events_total";
    let runs = as_list "parallel.corpus.runs" (field corpus "runs") in
    if runs = [] then bad "parallel.corpus: no runs";
    List.iteri
      (fun i r ->
        let where = Printf.sprintf "parallel.corpus.runs[%d]" i in
        let jobs = as_num (where ^ ".jobs") (field r "jobs") in
        if jobs < 1. then bad "%s: jobs < 1" where;
        if as_num (where ^ ".wall_seconds") (field r "wall_seconds") < 0. then
          bad "%s: negative wall_seconds" where;
        ignore (as_num (where ^ ".events_per_sec") (field r "events_per_sec"));
        ignore
          (as_num (where ^ ".speedup_vs_jobs1") (field r "speedup_vs_jobs1"));
        if not (as_bool (where ^ ".verdicts_match") (field r "verdicts_match"))
        then bad "%s: parallel verdicts diverged from sequential" where)
      runs;
    let pipe = field p "pipelined" in
    ignore (as_num "parallel.pipelined.events" (field pipe "events"));
    ignore
      (as_num "parallel.pipelined.sequential_seconds"
         (field pipe "sequential_seconds"));
    ignore
      (as_num "parallel.pipelined.pipelined_seconds"
         (field pipe "pipelined_seconds"));
    ignore (as_num "parallel.pipelined.speedup" (field pipe "speedup"));
    if not (as_bool "parallel.pipelined.reports_match" (field pipe "reports_match"))
    then bad "parallel.pipelined: report diverged from sequential"

(* The telemetry section carries the instrumented-vs-uninstrumented
   throughput comparison and the enabled run's metric snapshot; the
   snapshot must include the core per-event counters so a BENCH file
   cannot silently lose them. *)
let telemetry_required_metrics =
  [ "events.total"; "events.read"; "events.write"; "vc.joins" ]

let check_telemetry = function
  | Null -> ()
  | t ->
    let events = as_num "telemetry.events" (field t "events") in
    if events < 0. then bad "telemetry: negative events";
    let dis =
      as_num "telemetry.disabled_events_per_sec"
        (field t "disabled_events_per_sec")
    in
    let en =
      as_num "telemetry.enabled_events_per_sec"
        (field t "enabled_events_per_sec")
    in
    if dis <= 0. then bad "telemetry: disabled_events_per_sec <= 0";
    if en <= 0. then bad "telemetry: enabled_events_per_sec <= 0";
    let overhead = as_num "telemetry.overhead_pct" (field t "overhead_pct") in
    if Float.is_nan overhead then bad "telemetry: overhead_pct is NaN";
    let metrics = field t "metrics" in
    (match metrics with
    | Obj _ -> ()
    | _ -> bad "telemetry.metrics: expected an object");
    List.iter
      (fun key ->
        if as_num (Printf.sprintf "telemetry.metrics[%S]" key)
             (field metrics key)
           < 0.
        then bad "telemetry.metrics[%S]: negative" key)
      telemetry_required_metrics

(* The reclaim section is the peak-memory axis: both sides must carry
   their peak figure, verdicts must match, and reclamation may never
   *increase* the peak — the cram smoke run enforces the reduction. *)
let check_reclaim = function
  | Null -> ()
  | rc ->
    if as_num "reclaim.events" (field rc "events") <= 0. then
      bad "reclaim: events <= 0";
    ignore (as_num "reclaim.threads" (field rc "threads"));
    ignore (as_num "reclaim.vars" (field rc "vars"));
    let side where s =
      if as_num (where ^ ".seconds") (field s "seconds") < 0. then
        bad "%s: negative seconds" where;
      if as_num (where ^ ".events_per_sec") (field s "events_per_sec") < 0.
      then bad "%s: negative events_per_sec" where;
      let peak = as_num (where ^ ".peak_live_words") (field s "peak_live_words") in
      if peak < 0. then bad "%s: negative peak_live_words" where;
      peak
    in
    let off = side "reclaim.off" (field rc "off") in
    let on_ = field rc "on" in
    let on_peak = side "reclaim.on" on_ in
    let hits = as_num "reclaim.on.pool_hits" (field on_ "pool_hits") in
    let misses = as_num "reclaim.on.pool_misses" (field on_ "pool_misses") in
    if hits < 0. || misses < 0. then bad "reclaim.on: negative pool counters";
    let rate = as_num "reclaim.on.pool_hit_rate" (field on_ "pool_hit_rate") in
    if rate < 0. || rate > 1. then
      bad "reclaim.on: pool_hit_rate outside [0, 1]";
    if as_num "reclaim.on.reclaimed_states" (field on_ "reclaimed_states") < 0.
    then bad "reclaim.on: negative reclaimed_states";
    ignore
      (as_num "reclaim.peak_reduction_pct" (field rc "peak_reduction_pct"));
    if not (as_bool "reclaim.verdicts_match" (field rc "verdicts_match")) then
      bad "reclaim: verdicts diverged between reclaim modes";
    if on_peak > off then
      bad "reclaim: peak_live_words grew with reclamation on (%.0f > %.0f)"
        on_peak off

(* The prefilter section is the trace-reduction axis: the reduction may
   never grow the trace, the per-rule breakdown must account for every
   elided event, and the checker verdict must be identical with the
   filter off, exact, and online. *)
let check_prefilter = function
  | Null -> ()
  | p ->
    let events_in = as_num "prefilter.events_in" (field p "events_in") in
    let events_out = as_num "prefilter.events_out" (field p "events_out") in
    if events_in <= 0. then bad "prefilter: events_in <= 0";
    if events_out < 0. then bad "prefilter: negative events_out";
    if events_out > events_in then
      bad "prefilter: events_out grew (%.0f > %.0f)" events_out events_in;
    ignore (as_num "prefilter.threads" (field p "threads"));
    ignore (as_num "prefilter.vars" (field p "vars"));
    let elided = field p "elided" in
    let rule key =
      let v = as_num (Printf.sprintf "prefilter.elided.%s" key) (field elided key) in
      if v < 0. then bad "prefilter.elided.%s: negative" key;
      v
    in
    let total =
      rule "thread_local" +. rule "read_only" +. rule "redundant"
      +. rule "lock_local"
    in
    if events_out +. total <> events_in then
      bad "prefilter: events_out + elided <> events_in (%.0f + %.0f <> %.0f)"
        events_out total events_in;
    let side where s =
      if as_num (where ^ ".seconds") (field s "seconds") < 0. then
        bad "%s: negative seconds" where;
      if as_num (where ^ ".events_per_sec") (field s "events_per_sec") < 0.
      then bad "%s: negative events_per_sec" where;
      as_num (where ^ ".events_fed") (field s "events_fed")
    in
    let off_fed = side "prefilter.off" (field p "off") in
    let exact_fed = side "prefilter.exact" (field p "exact") in
    ignore (side "prefilter.online" (field p "online"));
    if exact_fed > off_fed then
      bad "prefilter: exact side fed more events than the unfiltered run";
    ignore (as_num "prefilter.speedup_exact" (field p "speedup_exact"));
    ignore (as_num "prefilter.speedup_online" (field p "speedup_online"));
    if not (as_bool "prefilter.verdicts_match" (field p "verdicts_match")) then
      bad "prefilter: verdicts diverged between filter modes"

(* The arena section is the zero-copy ingestion axis: the packed path
   must report the same verdict and the same events_fed as the boxed
   reference, and may never allocate more than it. *)
let check_arena = function
  | Null -> ()
  | a ->
    if as_num "arena.events" (field a "events") <= 0. then
      bad "arena: events <= 0";
    ignore (as_num "arena.threads" (field a "threads"));
    ignore (as_num "arena.vars" (field a "vars"));
    if as_num "arena.file_bytes" (field a "file_bytes") < 0. then
      bad "arena: negative file_bytes";
    let side where s =
      if as_num (where ^ ".seconds") (field s "seconds") < 0. then
        bad "%s: negative seconds" where;
      if as_num (where ^ ".events_per_sec") (field s "events_per_sec") < 0.
      then bad "%s: negative events_per_sec" where;
      if as_num (where ^ ".events_fed") (field s "events_fed") < 0. then
        bad "%s: negative events_fed" where;
      let alloc =
        as_num (where ^ ".allocated_mwords") (field s "allocated_mwords")
      in
      if alloc < 0. then bad "%s: negative allocated_mwords" where;
      alloc
    in
    let boxed_alloc = side "arena.boxed" (field a "boxed") in
    let packed_alloc = side "arena.packed" (field a "packed") in
    if as_num "arena.speedup" (field a "speedup") < 0. then
      bad "arena: negative speedup";
    ignore (as_num "arena.alloc_reduction" (field a "alloc_reduction"));
    if not (as_bool "arena.verdicts_match" (field a "verdicts_match")) then
      bad "arena: packed verdict diverged from boxed";
    if not (as_bool "arena.reports_match" (field a "reports_match")) then
      bad "arena: packed report diverged from boxed";
    if packed_alloc > boxed_alloc then
      bad "arena: packed path allocated more than boxed (%.3f > %.3f Mwords)"
        packed_alloc boxed_alloc

(* The shards section is the single-trace chunk-parallelism axis: every
   sharded run must agree with the sequential run of its case — same
   verdict, same report — and the boundary/repair accounting must be
   internally consistent (every planned cut is either quiescent or
   seamed, repaired events only arise from seamed cuts, and the
   repaired-event count matches the emitted fraction).  On runs big
   enough for the measurement to mean anything (the 1M+ acceptance
   regime; tiny cram-scale runs are pure noise) the repair fraction is
   the regression gate: boundary-summary seeding must keep the re-fed
   share at or below 10% even on the adversarial case — the whole point
   of repairing non-quiescent cuts instead of replaying them. *)
let repair_bound = 0.10
let repair_bound_min_events = 1_000_000.

let check_shards = function
  | Null -> ()
  | s ->
    let cases = as_list "shards.cases" (field s "cases") in
    if cases = [] then bad "shards: no cases";
    List.iteri
      (fun i c ->
        let where = Printf.sprintf "shards.cases[%d]" i in
        ignore (as_num (where ^ ".threads") (field c "threads"));
        let events = as_num (where ^ ".events") (field c "events") in
        if events <= 0. then bad "%s: events <= 0" where;
        let seq = field c "sequential" in
        if as_num (where ^ ".sequential.seconds") (field seq "seconds") < 0.
        then bad "%s.sequential: negative seconds" where;
        if as_num (where ^ ".sequential.events_per_sec")
             (field seq "events_per_sec")
           < 0.
        then bad "%s.sequential: negative events_per_sec" where;
        let runs = as_list (where ^ ".runs") (field c "runs") in
        if runs = [] then bad "%s: no sharded runs" where;
        List.iteri
          (fun k r ->
            let where = Printf.sprintf "%s.runs[%d]" where k in
            if as_num (where ^ ".shards") (field r "shards") < 2. then
              bad "%s: shards < 2" where;
            if as_num (where ^ ".seconds") (field r "seconds") < 0. then
              bad "%s: negative seconds" where;
            if as_num (where ^ ".events_per_sec") (field r "events_per_sec")
               < 0.
            then bad "%s: negative events_per_sec" where;
            if as_num (where ^ ".speedup") (field r "speedup") < 0. then
              bad "%s: negative speedup" where;
            let chunks = as_num (where ^ ".chunks") (field r "chunks") in
            if chunks < 1. then bad "%s: chunks < 1" where;
            let quiescent =
              as_num (where ^ ".quiescent_cuts") (field r "quiescent_cuts")
            in
            let seamed =
              as_num (where ^ ".seamed_cuts") (field r "seamed_cuts")
            in
            if quiescent < 0. || seamed < 0. then
              bad "%s: negative cut counters" where;
            if chunks <> quiescent +. seamed +. 1. then
              bad "%s: chunks <> quiescent + seamed + 1 (%.0f <> %.0f + %.0f \
                   + 1)"
                where chunks quiescent seamed;
            let repaired =
              as_num (where ^ ".repaired_events") (field r "repaired_events")
            in
            if repaired < 0. then bad "%s: negative repaired_events" where;
            let repair =
              as_num (where ^ ".repair_fraction") (field r "repair_fraction")
            in
            if repair < 0. || repair > 1. then
              bad "%s: repair_fraction outside [0, 1]" where;
            if Float.abs (repair -. (repaired /. events)) > 1e-3 then
              bad "%s: repair_fraction inconsistent with repaired_events \
                   (%.4f vs %.0f/%.0f)"
                where repair repaired events;
            if seamed = 0. && repaired > 0. then
              bad "%s: repaired events without a seamed cut" where;
            if as_num (where ^ ".tainted_events") (field r "tainted_events")
               < 0.
            then bad "%s: negative tainted_events" where;
            if events >= repair_bound_min_events && repair > repair_bound then
              bad
                "%s: repair_fraction %.4f exceeds the %.2f regression bound"
                where repair repair_bound;
            let util = as_list (where ^ ".utilization") (field r "utilization") in
            if List.length util <> int_of_float chunks then
              bad "%s: utilization arity <> chunks" where;
            List.iteri
              (fun j u ->
                let u = as_num (Printf.sprintf "%s.utilization[%d]" where j) u in
                if u < 0. || u > 1. then
                  bad "%s.utilization[%d]: outside [0, 1]" where j)
              util;
            if not (as_bool (where ^ ".verdicts_match") (field r "verdicts_match"))
            then bad "%s: sharded verdict diverged from sequential" where;
            if not (as_bool (where ^ ".reports_match") (field r "reports_match"))
            then bad "%s: sharded report diverged from sequential" where)
          runs)
      cases

(* The scheduler section compares the static one-chunk-per-domain
   executor with the work-stealing scheduler on the adversarial case.
   Both must agree with the sequential report byte for byte, and the
   steal side's accounting must be internally consistent (exactly one
   utilization entry per domain, each in [0, 1]).  The steal-vs-static
   ratio itself is machine-dependent — a single-core run hovers around
   1x — so it is recorded, not gated; the multi-core CI runners are
   where the ratio is read. *)
let check_scheduler = function
  | Null -> ()
  | s ->
    ignore (as_num "scheduler.threads" (field s "threads"));
    if as_num "scheduler.events" (field s "events") <= 0. then
      bad "scheduler: events <= 0";
    let domains = as_num "scheduler.domains" (field s "domains") in
    if domains < 1. then bad "scheduler: domains < 1";
    let seq = field s "sequential" in
    if as_num "scheduler.sequential.seconds" (field seq "seconds") < 0. then
      bad "scheduler.sequential: negative seconds";
    if
      as_num "scheduler.sequential.events_per_sec"
        (field seq "events_per_sec")
      < 0.
    then bad "scheduler.sequential: negative events_per_sec";
    let side name =
      let v = field s name in
      let where = "scheduler." ^ name in
      if as_num (where ^ ".seconds") (field v "seconds") < 0. then
        bad "%s: negative seconds" where;
      if as_num (where ^ ".events_per_sec") (field v "events_per_sec") < 0.
      then bad "%s: negative events_per_sec" where;
      if as_num (where ^ ".speedup") (field v "speedup") < 0. then
        bad "%s: negative speedup" where;
      if not (as_bool (where ^ ".verdicts_match") (field v "verdicts_match"))
      then bad "%s: verdict diverged from sequential" where;
      if not (as_bool (where ^ ".reports_match") (field v "reports_match"))
      then bad "%s: report diverged from sequential" where;
      v
    in
    ignore (side "static");
    let steal = side "steal" in
    if as_num "scheduler.steal.chunks" (field steal "chunks") < 1. then
      bad "scheduler.steal: chunks < 1";
    List.iter
      (fun k ->
        if as_num ("scheduler.steal." ^ k) (field steal k) < 0. then
          bad "scheduler.steal: negative %s" k)
      [ "steals"; "failed_steals"; "injected" ];
    let util = as_list "scheduler.steal.utilization" (field steal "utilization") in
    if List.length util <> int_of_float domains then
      bad "scheduler.steal: utilization arity <> domains";
    List.iteri
      (fun j u ->
        let u = as_num (Printf.sprintf "scheduler.steal.utilization[%d]" j) u in
        if u < 0. || u > 1. then
          bad "scheduler.steal.utilization[%d]: outside [0, 1]" j)
      util;
    if as_num "scheduler.steal_vs_static" (field s "steal_vs_static") <= 0.
    then bad "scheduler: steal_vs_static <= 0"

(* The observability section is the live-telemetry axis.  The exporter
   half must have served at least one validator-clean exposition, and —
   on runs big enough for the measurement to mean anything (the 1M+
   acceptance regime; tiny cram-scale runs are pure noise) — live
   scraping may not cost more than 3% throughput.  The flight half must
   leave the run's verdict untouched and every witness bundle's slice
   must have replayed to the same verdict. *)
let exporter_overhead_bound_pct = 3.0
let exporter_bound_min_events = 1_000_000.

let check_observability = function
  | Null -> ()
  | o ->
    let ex = field o "exporter" in
    let events = as_num "observability.exporter.events" (field ex "events") in
    if events <= 0. then bad "observability.exporter: events <= 0";
    if
      as_num "observability.exporter.baseline_events_per_sec"
        (field ex "baseline_events_per_sec")
      <= 0.
    then bad "observability.exporter: baseline_events_per_sec <= 0";
    if
      as_num "observability.exporter.scraped_events_per_sec"
        (field ex "scraped_events_per_sec")
      <= 0.
    then bad "observability.exporter: scraped_events_per_sec <= 0";
    let overhead =
      as_num "observability.exporter.overhead_pct" (field ex "overhead_pct")
    in
    if Float.is_nan overhead then
      bad "observability.exporter: overhead_pct is NaN";
    if events >= exporter_bound_min_events && overhead > exporter_overhead_bound_pct
    then
      bad
        "observability.exporter: live scraping cost %.2f%% throughput (bound \
         %.0f%%)"
        overhead exporter_overhead_bound_pct;
    if as_num "observability.exporter.scrapes" (field ex "scrapes") < 1. then
      bad "observability.exporter: no successful scrapes";
    if
      not
        (as_bool "observability.exporter.scrapes_valid"
           (field ex "scrapes_valid"))
    then bad "observability.exporter: exposition failed OpenMetrics validation";
    let fl = field o "flight" in
    if as_num "observability.flight.events" (field fl "events") <= 0. then
      bad "observability.flight: events <= 0";
    if
      not
        (as_bool "observability.flight.verdicts_match"
           (field fl "verdicts_match"))
    then bad "observability.flight: recorder changed the run's verdict";
    let windows = as_list "observability.flight.windows" (field fl "windows") in
    if windows = [] then bad "observability.flight: no window probes";
    let any_replayable = ref false in
    List.iteri
      (fun i w ->
        let where = Printf.sprintf "observability.flight.windows[%d]" i in
        if as_num (where ^ ".window") (field w "window") < 1. then
          bad "%s: window < 1" where;
        if as_num (where ^ ".off_events_per_sec") (field w "off_events_per_sec")
           <= 0.
        then bad "%s: off_events_per_sec <= 0" where;
        if as_num (where ^ ".on_events_per_sec") (field w "on_events_per_sec")
           <= 0.
        then bad "%s: on_events_per_sec <= 0" where;
        ignore (as_num (where ^ ".overhead_pct") (field w "overhead_pct"));
        if as_num (where ^ ".slice_events") (field w "slice_events") < 0. then
          bad "%s: negative slice_events" where;
        (* a ring too small to retain a quiescent cut degrades the
           witness to context-only — allowed; a replayable slice that
           fails to reproduce the violation is not *)
        let replayable = as_bool (where ^ ".replayable") (field w "replayable") in
        if replayable then any_replayable := true;
        if
          replayable
          && not (as_bool (where ^ ".replay_matches") (field w "replay_matches"))
        then bad "%s: witness slice failed to reproduce the violation" where)
      windows;
    if not !any_replayable then
      bad "observability.flight: no window probe produced a replayable slice"

let check_root j =
  let schema = as_str "schema" (field j "schema") in
  if schema <> "aerodrome-bench/10" then bad "unknown schema %S" schema;
  ignore (as_num "scale" (field j "scale"));
  ignore (as_num "timeout" (field j "timeout"));
  if as_num "jobs" (field j "jobs") < 1. then bad "jobs < 1";
  let tables = as_list "tables" (field j "tables") in
  let micro = as_list "micro" (field j "micro") in
  List.iteri
    (fun i t ->
      let where = Printf.sprintf "tables[%d]" i in
      ignore (as_num (where ^ ".table") (field t "table"));
      if as_num (where ^ ".wall_seconds") (field t "wall_seconds") < 0. then
        bad "%s: negative wall_seconds" where;
      let rows = as_list (where ^ ".rows") (field t "rows") in
      if rows = [] then bad "%s: empty rows" where;
      List.iteri
        (fun k r -> check_row ~where:(Printf.sprintf "%s.rows[%d]" where k) r)
        rows)
    tables;
  List.iteri
    (fun i r -> check_row ~where:(Printf.sprintf "micro[%d]" i) r)
    micro;
  check_parallel (field j "parallel");
  check_telemetry (field j "telemetry");
  check_reclaim (field j "reclaim");
  check_prefilter (field j "prefilter");
  check_arena (field j "arena");
  check_shards (field j "shards");
  check_scheduler (field j "scheduler");
  check_observability (field j "observability");
  if tables = [] && micro = [] && field j "parallel" = Null then
    bad "no tables and no micro results"

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
      prerr_endline "usage: validate_json FILE";
      exit 2
  in
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match check_root (parse_exn contents) with
  | () -> print_endline "ok"
  | exception Bad msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 1
  | exception Obs.Json.Parse_error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 1
