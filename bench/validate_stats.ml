(* Validator for the telemetry artifacts `rapid check` writes:

     validate_stats stats [--pipelined] FILE
       FILE is a --stats-json document (schema "aerodrome-stats/1");
       with --pipelined every successful file entry must also carry the
       ring-buffer counters.

     validate_stats trace FILE
       FILE is a --trace-out Chrome trace-event document.

   Prints "ok" and exits 0 on success; prints a diagnostic and exits 1
   otherwise.  The cram tests run both modes so the CLI exporters and
   their documented key sets cannot drift apart. *)

open Obs.Json

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let field obj key =
  match obj with
  | Obj kvs -> (
    match List.assoc_opt key kvs with
    | Some v -> v
    | None -> bad "missing field %S" key)
  | _ -> bad "expected an object around field %S" key

let as_num what = function Num f -> f | _ -> bad "%s: expected a number" what
let as_str what = function Str s -> s | _ -> bad "%s: expected a string" what
let as_list what = function List l -> l | _ -> bad "%s: expected an array" what

let as_obj what = function
  | Obj kvs -> kvs
  | _ -> bad "%s: expected an object" what

(* Counters every checker contributes through Aerodrome.Cmetrics; their
   presence is the documented contract of --stats-json. *)
let required_metrics =
  [
    "events.total";
    "events.read";
    "events.write";
    "txn.begins";
    "txn.commits";
    "vc.joins";
    "violation.index";
  ]

let ring_metrics =
  [
    "ring.capacity";
    "ring.occupancy_hwm";
    "ring.producer_stalls";
    "ring.consumer_stalls";
  ]

let metric_value ~where metrics key =
  match List.assoc_opt key metrics with
  | Some (Num f) -> f
  | Some (Obj _) -> bad "%s[%S]: expected a number, got a histogram" where key
  | Some _ -> bad "%s[%S]: expected a number" where key
  | None -> bad "%s: missing metric %S" where key

let check_stats_file ~pipelined ~where f =
  ignore (as_str (where ^ ".file") (field f "file"));
  match List.assoc_opt "error" (as_obj where f) with
  | Some (Str msg) -> if msg = "" then bad "%s: empty error message" where
  | Some _ -> bad "%s.error: expected a string" where
  | None ->
    let verdict = as_str (where ^ ".verdict") (field f "verdict") in
    (match verdict with
    | "serializable" | "timeout" | "violation" -> ()
    | v -> bad "%s: unknown verdict %S" where v);
    if as_num (where ^ ".seconds") (field f "seconds") < 0. then
      bad "%s: negative seconds" where;
    let fed = as_num (where ^ ".events_fed") (field f "events_fed") in
    if fed < 0. then bad "%s: negative events_fed" where;
    let metrics = as_obj (where ^ ".metrics") (field f "metrics") in
    let mwhere = where ^ ".metrics" in
    List.iter
      (fun key -> ignore (metric_value ~where:mwhere metrics key))
      required_metrics;
    let total = metric_value ~where:mwhere metrics "events.total" in
    (* The runner feeds the whole trace even after a violation, but the
       checker's own counters freeze at the violating event — so strict
       equality only holds for clean verdicts. *)
    (match verdict with
    | "violation" ->
      let idx = as_num (where ^ ".violation_index") (field f "violation_index") in
      if idx < 1. then bad "%s: violation_index < 1" where;
      if total < idx || total > fed then
        bad "%s: events.total (%.0f) outside [violation_index, events_fed]"
          where total
    | _ ->
      if total <> fed then
        bad "%s: events.total (%.0f) <> events_fed (%.0f)" where total fed);
    if pipelined then
      List.iter
        (fun key -> ignore (metric_value ~where:mwhere metrics key))
        ring_metrics

(* Scheduler telemetry: when `rapid` ran the work-stealing scheduler
   the process snapshot carries a "sched" object and the global
   registry the matching sched.* probes.  Either both appear with the
   documented key set or neither does — a partial export is drift. *)
let sched_metrics =
  [
    "sched.domains";
    "sched.steals";
    "sched.failed_steals";
    "sched.injected";
    "sched.completed";
  ]

let check_sched process =
  let global = as_obj "process.global" (field process "global") in
  match List.assoc_opt "sched" (as_obj "process" process) with
  | None ->
    List.iter
      (fun key ->
        if List.mem_assoc key global then
          bad "process.global: %S probe without a process.sched object" key)
      sched_metrics
  | Some s ->
    List.iter
      (fun key -> ignore (metric_value ~where:"process.global" global key))
      sched_metrics;
    let domains = as_num "process.sched.domains" (field s "domains") in
    if domains < 1. then bad "process.sched: domains < 1";
    List.iter
      (fun k ->
        if as_num ("process.sched." ^ k) (field s k) < 0. then
          bad "process.sched: negative %s" k)
      [ "steals"; "failed_steals"; "injected"; "completed" ];
    List.iter
      (fun k ->
        let l = as_list ("process.sched." ^ k) (field s k) in
        if List.length l <> int_of_float domains then
          bad "process.sched.%s: arity <> domains" k;
        List.iteri
          (fun i v ->
            if as_num (Printf.sprintf "process.sched.%s[%d]" k i) v < 0. then
              bad "process.sched.%s[%d]: negative" k i)
          l)
      [ "busy_seconds"; "utilization"; "tasks" ]

let check_stats ~pipelined j =
  let schema = as_str "schema" (field j "schema") in
  if schema <> "aerodrome-stats/1" then bad "unknown schema %S" schema;
  if as_str "checker" (field j "checker") = "" then bad "empty checker name";
  let files = as_list "files" (field j "files") in
  if files = [] then bad "no file entries";
  List.iteri
    (fun i f ->
      check_stats_file ~pipelined ~where:(Printf.sprintf "files[%d]" i) f)
    files;
  check_sched (field j "process")

let check_trace j =
  let events = as_list "traceEvents" (field j "traceEvents") in
  if events = [] then bad "empty traceEvents";
  List.iteri
    (fun i e ->
      let where = Printf.sprintf "traceEvents[%d]" i in
      let ph = as_str (where ^ ".ph") (field e "ph") in
      if as_str (where ^ ".name") (field e "name") = "" then
        bad "%s: empty name" where;
      if as_num (where ^ ".ts") (field e "ts") < 0. then
        bad "%s: negative ts" where;
      ignore (as_num (where ^ ".pid") (field e "pid"));
      ignore (as_num (where ^ ".tid") (field e "tid"));
      match ph with
      | "X" ->
        if as_num (where ^ ".dur") (field e "dur") < 0. then
          bad "%s: negative dur" where
      | "i" -> ignore (as_str (where ^ ".s") (field e "s"))
      | p -> bad "%s: unknown phase %S" where p)
    events

let usage () =
  prerr_endline "usage: validate_stats stats [--pipelined] FILE | validate_stats trace FILE";
  exit 2

let () =
  let check, path =
    match Array.to_list Sys.argv with
    | [ _; "stats"; path ] -> (check_stats ~pipelined:false, path)
    | [ _; "stats"; "--pipelined"; path ] -> (check_stats ~pipelined:true, path)
    | [ _; "trace"; path ] -> (check_trace, path)
    | _ -> usage ()
  in
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match check (parse_exn contents) with
  | () -> print_endline "ok"
  | exception Bad msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 1
  | exception Obs.Json.Parse_error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 1
