(* Benchmark harness: regenerates the paper's Table 1 and Table 2 (scaled),
   plus two ablations (checker variants; linear-vs-superlinear scaling), a
   micro-benchmark of per-event throughput on Table-1-style workloads at
   high thread counts, and a multicore section (corpus fan-out across a
   domain pool; pipelined vs sequential single-trace streaming).

   With [--jobs N] trace generation and the corpus fan-out use a fixed
   pool of N domains.  Timed per-checker runs are never co-tenant: table
   rows serialize their timed regions, each on a dedicated domain, so
   per-checker numbers stay honest while the untimed work overlaps.

   With [--json FILE] the harness also emits a machine-readable summary
   (schema "aerodrome-bench/10": per-checker events/sec, Gc statistics,
   parallel wall-clock + speedup, telemetry overhead + metric snapshot,
   peak-memory with and without state reclamation, trace-reduction
   throughput with the prefilter off/exact/online, the packed-arena
   axis — boxed vs zero-copy packed ingestion end to end, plus the
   ingestion micro-benchmark rows in "micro" — the sharded axis:
   sequential vs chunk-parallel single-trace checking with quiescent-cut
   and repair accounting — and the observability axis: live OpenMetrics
   scraping overhead plus flight-recorder overhead with witness-replay
   verification) so committed BENCH_*.json files can track the
   performance trajectory.

   Usage: dune exec bench/main.exe -- [--table 1|2] [--no-tables] [--scale F]
          [--jobs N] [--timeout S] [--only NAME] [--no-micro] [--micro-fast]
          [--no-ablation] [--no-scaling] [--no-parallel] [--no-telemetry]
          [--no-reclaim] [--no-prefilter] [--no-arena] [--no-shards]
          [--no-scheduler] [--no-observability] [--json FILE] [--markdown] *)

open Traces

let fmt = Format.std_formatter

type options = {
  mutable tables : int list;
  mutable scale : float;
  mutable timeout : float;
  mutable only : string option;
  mutable micro : bool;
  mutable ablation : bool;
  mutable scaling : bool;
  mutable parallel : bool;
  mutable telemetry : bool;
  mutable reclaim : bool;
  mutable prefilter : bool;
  mutable arena : bool;
  mutable shards : bool;
  mutable scheduler : bool;
  mutable observability : bool;
  mutable markdown : bool;
  mutable json : string option;
  mutable micro_fast : bool;
  mutable jobs : int;
}

let opts =
  {
    tables = [ 1; 2 ];
    scale = 1.0;
    timeout = 5.0;
    only = None;
    micro = true;
    ablation = true;
    scaling = true;
    parallel = true;
    telemetry = true;
    reclaim = true;
    prefilter = true;
    arena = true;
    shards = true;
    scheduler = true;
    observability = true;
    markdown = false;
    json = None;
    micro_fast = false;
    jobs = 1;
  }

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--table" :: n :: rest ->
      opts.tables <- [ int_of_string n ];
      go rest
    | "--scale" :: f :: rest ->
      opts.scale <- float_of_string f;
      go rest
    | "--timeout" :: s :: rest ->
      opts.timeout <- float_of_string s;
      go rest
    | "--only" :: name :: rest ->
      opts.only <- Some name;
      go rest
    | "--no-micro" :: rest ->
      opts.micro <- false;
      go rest
    | "--micro-fast" :: rest ->
      (* iteration aid: micro-benchmark the linear-time checker only *)
      opts.micro_fast <- true;
      go rest
    | "--no-ablation" :: rest ->
      opts.ablation <- false;
      go rest
    | "--no-scaling" :: rest ->
      opts.scaling <- false;
      go rest
    | "--no-parallel" :: rest ->
      opts.parallel <- false;
      go rest
    | "--no-telemetry" :: rest ->
      opts.telemetry <- false;
      go rest
    | "--no-reclaim" :: rest ->
      opts.reclaim <- false;
      go rest
    | "--no-prefilter" :: rest ->
      opts.prefilter <- false;
      go rest
    | "--no-arena" :: rest ->
      opts.arena <- false;
      go rest
    | "--no-shards" :: rest ->
      opts.shards <- false;
      go rest
    | "--no-scheduler" :: rest ->
      opts.scheduler <- false;
      go rest
    | "--no-observability" :: rest ->
      opts.observability <- false;
      go rest
    | "--no-tables" :: rest ->
      opts.tables <- [];
      go rest
    | "--jobs" :: n :: rest ->
      opts.jobs <- max 1 (int_of_string n);
      go rest
    | "--markdown" :: rest ->
      opts.markdown <- true;
      go rest
    | "--json" :: file :: rest ->
      opts.json <- Some file;
      go rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv))

let aerodrome : Aerodrome.Checker.t = (module Aerodrome.Opt)
let velodrome : Aerodrome.Checker.t = (module Velodrome.Online)

(* The seed (pre-epoch) Algorithm 3, compiled into this binary so the
   epoch speedup is measured in-process on identical traces — two
   separate bench runs on a busy machine are not comparable. *)
let aerodrome_preepoch : Aerodrome.Checker.t = (module Reference.Reference_opt)

(* --- measurement records for the JSON emitter --- *)

type checker_sample = {
  cname : string;
  seconds : float;
  events_fed : int;
  events_per_sec : float;
  verdict : string;  (* "serializable" | "violation" | "timeout" *)
  allocated_mwords : float;  (* minor+major words allocated during the run *)
  top_heap_words : int;  (* Gc.quick_stat peak after the run *)
}

type sample_row = {
  rname : string;
  events : int;
  threads : int;
  locks : int;
  vars : int;
  samples : checker_sample list;
}

let json_tables : (int * float * sample_row list) list ref = ref []
let json_micro : sample_row list ref = ref []

let verdict_string (r : Analysis.Runner.result) =
  match r.Analysis.Runner.outcome with
  | Analysis.Runner.Timed_out -> "timeout"
  | Analysis.Runner.Verdict None -> "serializable"
  | Analysis.Runner.Verdict (Some _) -> "violation"

let finish_sample ~alloc_words (r : Analysis.Runner.result) =
  {
    cname = r.Analysis.Runner.checker;
    seconds = r.Analysis.Runner.seconds;
    events_fed = r.Analysis.Runner.events_fed;
    events_per_sec =
      float_of_int r.Analysis.Runner.events_fed /. max r.Analysis.Runner.seconds 1e-9;
    verdict = verdict_string r;
    allocated_mwords = alloc_words /. 1e6;
    top_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
  }

(* One timed run with Gc accounting.  [reps] > 1 keeps the fastest
   repetition (the steady-state number) but Gc figures from the first. *)
let sample ?(reps = 1) checker tr =
  let alloc0 = Gc.allocated_bytes () in
  let best = ref (Analysis.Runner.run ~timeout:opts.timeout checker tr) in
  let alloc1 = Gc.allocated_bytes () in
  for _ = 2 to reps do
    let r = Analysis.Runner.run ~timeout:opts.timeout checker tr in
    if r.Analysis.Runner.seconds < !best.Analysis.Runner.seconds then best := r
  done;
  finish_sample ~alloc_words:((alloc1 -. alloc0) /. 8.) !best

(* Interleaved repetitions of two checkers on the same trace, so that
   drifting machine load hits both equally: repetition k of either
   checker runs within milliseconds of the other's.  The ratio of the
   two fastest repetitions is the comparison a committed BENCH file
   should be read for. *)
let sample_pair ~reps c1 c2 tr =
  let run c = Analysis.Runner.run ~timeout:opts.timeout c tr in
  let alloc0 = Gc.allocated_bytes () in
  let best1 = ref (run c1) in
  let alloc1 = Gc.allocated_bytes () in
  let best2 = ref (run c2) in
  let alloc2 = Gc.allocated_bytes () in
  for _ = 2 to reps do
    let r1 = run c1 in
    if r1.Analysis.Runner.seconds < !best1.Analysis.Runner.seconds then
      best1 := r1;
    let r2 = run c2 in
    if r2.Analysis.Runner.seconds < !best2.Analysis.Runner.seconds then
      best2 := r2
  done;
  ( finish_sample ~alloc_words:((alloc1 -. alloc0) /. 8.) !best1,
    finish_sample ~alloc_words:((alloc2 -. alloc1) /. 8.) !best2 )

(* One timed run with real allocation figures: [Gc.allocated_bytes]
   deltas taken immediately around the run, in the domain that executes
   it (the counters are domain-local in OCaml 5).  [dedicated] runs the
   measurement on a fresh domain of its own — the parallel-mode table
   path, where the calling domain's counters would mix in whatever else
   it has been doing. *)
let timed_sample ?(dedicated = false) checker tr =
  let measure () =
    let a0 = Gc.allocated_bytes () in
    let r = Analysis.Runner.run ~timeout:opts.timeout checker tr in
    let a1 = Gc.allocated_bytes () in
    (r, finish_sample ~alloc_words:((a1 -. a0) /. 8.) r)
  in
  if dedicated then Domain.join (Domain.spawn measure) else measure ()

let row_of_trace name tr samples =
  {
    rname = name;
    events = Trace.length tr;
    threads = Trace.threads tr;
    locks = Trace.locks tr;
    vars = Trace.vars tr;
    samples;
  }

(* --- tables --- *)

(* Untimed per-row work (trace generation, metainfo): this is what
   [--jobs] overlaps across the pool.  The timed checker runs happen
   afterwards, strictly one at a time, so they never share the machine
   with another timed run. *)
let prepare_profile (p : Workloads.Profile.t) =
  let tr = Workloads.Profile.generate ~scale:opts.scale p in
  (p, tr, Analysis.Metainfo.analyze tr)

let bench_profile ~dedicated ((p : Workloads.Profile.t), tr, meta) =
  let v, vs = timed_sample ~dedicated velodrome tr in
  let a, as_ = timed_sample ~dedicated aerodrome tr in
  (* Sanity: the verdict must match the profile's plan whenever the run
     completed. *)
  (match (a.Analysis.Runner.outcome, Workloads.Profile.expected_violating p) with
  | Analysis.Runner.Verdict verdict, expected ->
    if Option.is_some verdict <> expected then
      Format.fprintf fmt
        "!! %s: AeroDrome verdict %s but the workload plan expects %s@."
        p.name
        (if Option.is_some verdict then "violating" else "serializable")
        (if expected then "violating" else "serializable")
  | Analysis.Runner.Timed_out, _ -> ());
  let row = row_of_trace p.name tr [ vs; as_ ] in
  ( Analysis.Report.make_row ~name:p.name ~meta ~velodrome:v ~aerodrome:a
      ~timeout:opts.timeout ~paper:p.paper (),
    row )

let run_table n =
  let profiles =
    (if n = 1 then Workloads.Benchmarks.table1 else Workloads.Benchmarks.table2)
    |> List.filter (fun (p : Workloads.Profile.t) ->
           match opts.only with None -> true | Some name -> p.name = name)
  in
  if profiles <> [] then begin
    let wall0 = Unix.gettimeofday () in
    let prepared = Parallel.Pool.run ~jobs:opts.jobs prepare_profile profiles in
    let pairs = List.map (bench_profile ~dedicated:(opts.jobs > 1)) prepared in
    let wall = Unix.gettimeofday () -. wall0 in
    let rows = List.map fst pairs in
    json_tables := !json_tables @ [ (n, wall, List.map snd pairs) ];
    let title =
      if n = 1 then
        "Table 1: benchmarks with realistic atomicity specifications \
         (scaled reproduction)"
      else
        "Table 2: benchmarks with naive atomicity specifications (scaled \
         reproduction)"
    in
    Format.fprintf fmt "@.";
    if opts.markdown then Analysis.Report.render_markdown fmt ~title rows
    else begin
      Analysis.Report.render_comparison fmt ~title rows;
      Format.fprintf fmt
        "(events scaled from the paper's traces; shapes — who wins and \
         where Velodrome times out — are the reproduction target)@."
    end
  end

(* Ablation A: AeroDrome variants and Velodrome with/without GC. *)
let run_ablation () =
  let variants : (string * Aerodrome.Checker.t) list =
    [
      ("aerodrome-basic (Alg 1)", (module Aerodrome.Basic));
      ("aerodrome-reduced (Alg 2)", (module Aerodrome.Reduced));
      ("aerodrome (Alg 3)", (module Aerodrome.Opt));
      ("aerodrome slow-checks", Aerodrome.Opt.slow_checker);
      ("velodrome", velodrome);
      ("velodrome no-gc", Velodrome.Online.no_gc_checker);
      ("velodrome pearce-kelly", Velodrome.Online.pk_checker);
    ]
  in
  let workloads =
    [
      ( "independent 120K events",
        Workloads.Generator.generate
          {
            Workloads.Generator.default with
            events = int_of_float (120_000. *. opts.scale);
            threads = 8;
            locks = 8;
            vars = 50_000;
          } );
      ( "anchored 60K events",
        Workloads.Generator.generate
          {
            Workloads.Generator.default with
            events = int_of_float (60_000. *. opts.scale);
            threads = 8;
            locks = 4;
            vars = 30_000;
            shape = Workloads.Generator.Anchored;
          } );
    ]
  in
  Format.fprintf fmt
    "@.Ablation A: checker variants (times; serializable workloads so every \
     checker scans the full trace)@.";
  List.iter
    (fun (wname, tr) ->
      Format.fprintf fmt "  workload: %s (%d events)@." wname (Trace.length tr);
      List.iter
        (fun (vname, checker) ->
          let r = Analysis.Runner.run ~timeout:opts.timeout checker tr in
          let cell =
            match r.Analysis.Runner.outcome with
            | Analysis.Runner.Timed_out -> "TO"
            | Analysis.Runner.Verdict None ->
              Printf.sprintf "%8.3fs" r.seconds
            | Analysis.Runner.Verdict (Some _) ->
              Printf.sprintf "%8.3fs (violation?!)" r.seconds
          in
          Format.fprintf fmt "    %-28s %s@." vname cell)
        variants)
    workloads

(* Ablation B: runtime growth with trace length — AeroDrome stays linear,
   Velodrome grows superlinearly on the anchored shape. *)
let run_scaling () =
  let sizes =
    List.map
      (fun n -> int_of_float (float_of_int n *. opts.scale))
      [ 15_000; 30_000; 60_000; 120_000 ]
  in
  let config =
    {
      Workloads.Generator.default with
      threads = 8;
      locks = 4;
      vars = 80_000;
      shape = Workloads.Generator.Anchored;
    }
  in
  Format.fprintf fmt
    "@.Ablation B: scaling on the anchored shape (serializable traces)@.";
  Format.fprintf fmt "  %10s  %12s %14s  %12s %14s  %12s %14s@." "events"
    "aerodrome" "(ns/event)" "velodrome" "(ns/event)" "velodrome-pk"
    "(ns/event)";
  List.iter
    (fun (n, tr) ->
      let a = Analysis.Runner.run ~timeout:opts.timeout aerodrome tr in
      let v = Analysis.Runner.run ~timeout:opts.timeout velodrome tr in
      let p =
        Analysis.Runner.run ~timeout:opts.timeout Velodrome.Online.pk_checker
          tr
      in
      let cell (r : Analysis.Runner.result) =
        match r.outcome with
        | Analysis.Runner.Timed_out -> ("TO", "-")
        | Analysis.Runner.Verdict _ ->
          ( Printf.sprintf "%.3fs" r.seconds,
            Printf.sprintf "%.0f"
              (r.seconds *. 1e9 /. float_of_int (max r.events_fed 1)) )
      in
      let at, an = cell a and vt, vn = cell v and pt, pn = cell p in
      Format.fprintf fmt "  %10d  %12s %14s  %12s %14s  %12s %14s@."
        (Trace.length tr) at an vt vn pt pn;
      ignore n)
    (Workloads.Generator.scaling ~config sizes)

(* Micro-benchmark: per-event throughput of the streaming checkers on
   Table-1-style workloads at T >= 8 threads (the regime the paper's large
   logs live in: lusearch T=14, sunflow T=16, pmd T=13, tsp T=9).  The
   workload plan is forced to Atomic so every checker scans the full trace.

   Each checker gets an event budget matched to its speed: the linear-time
   checker runs a 400K-event trace (sub-100ms runs are dominated by timer
   and scheduler noise), the superlinear ones a 50K prefix-equivalent of
   the same configuration.  Throughput numbers are per-checker, so the
   budgets are directly comparable; the fastest repetition is reported. *)
let micro_events_fast = 400_000
let micro_events_slow = 50_000

let micro_workloads () =
  let styled name =
    match Workloads.Benchmarks.find name with
    | None -> None
    | Some p ->
      let gen events =
        Workloads.Generator.generate
          {
            p.Workloads.Profile.config with
            Workloads.Generator.events;
            plan = Workloads.Generator.Atomic;
          }
      in
      Some (name ^ "-style", gen micro_events_fast, gen micro_events_slow)
  in
  List.filter_map styled [ "lusearch"; "sunflow"; "pmd"; "tsp" ]

let run_micro () =
  (* name, checker, repetitions (all on the slow trace; the fast checker
     and its pre-epoch baseline are sampled as an interleaved pair on the
     large trace above) *)
  let slow_checkers : (string * Aerodrome.Checker.t * int) list =
    if opts.micro_fast then []
    else
      [
        ("aerodrome-reduced", (module Aerodrome.Reduced), 3);
        ("aerodrome-basic", (module Aerodrome.Basic), 3);
        ("velodrome", velodrome, 1);
      ]
  in
  Format.fprintf fmt
    "@.Micro-benchmark: events/sec on Table-1-style workloads at T >= 8 \
     (best of interleaved reps)@.";
  List.iter
    (fun (wname, tr_fast, tr_slow) ->
      Format.fprintf fmt "  workload: %s (%d events, %d threads, %d vars)@."
        wname (Trace.length tr_fast) (Trace.threads tr_fast)
        (Trace.vars tr_fast);
      let print_sample ?speedup s =
        Format.fprintf fmt "    %-22s %10.1f Kev/s  %8.1f ns/event  %s%s@."
          s.cname
          (s.events_per_sec /. 1e3)
          (1e9 /. max s.events_per_sec 1.)
          (match speedup with
          | None -> ""
          | Some r -> Printf.sprintf "%.2fx vs pre-epoch  " r)
          (if s.verdict = "serializable" then "" else "[" ^ s.verdict ^ "]")
      in
      let s_epoch, s_base =
        sample_pair ~reps:7 aerodrome aerodrome_preepoch tr_fast
      in
      print_sample ~speedup:(s_epoch.events_per_sec /. s_base.events_per_sec)
        s_epoch;
      print_sample s_base;
      let slow_samples =
        List.map
          (fun (_, checker, reps) ->
            let s = sample ~reps checker tr_slow in
            print_sample s;
            s)
          slow_checkers
      in
      json_micro :=
        !json_micro
        @ [ row_of_trace wname tr_fast (s_epoch :: s_base :: slow_samples) ])
    (micro_workloads ())

(* --- Multicore: corpus fan-out and pipelined ingestion ---

   Fan-out: a deterministic corpus of independent traces (the service
   workload: many users submit traces, the pool drains the queue) is
   checked at --jobs 1 and at --jobs N on a fixed domain pool; each
   trace's checker is the unmodified sequential one, so the per-trace
   verdicts cannot differ — the harness asserts they do not — and the
   interesting number is aggregate wall-clock events/sec.

   Pipelined: one large trace streamed from a binary file with and
   without the producer-domain ring buffer (interleaved repetitions,
   best of each), reported as a speedup with byte-identical verdicts. *)

type parallel_run = {
  pr_jobs : int;
  pr_wall : float;
  pr_eps : float;  (* aggregate events/sec over the whole corpus *)
  pr_speedup : float;  (* vs the jobs=1 run of the same corpus *)
  pr_match : bool;  (* verdicts identical to the jobs=1 run *)
}

type parallel_summary = {
  corpus_traces : int;
  corpus_events : int;
  corpus_runs : parallel_run list;
  pipe_events : int;
  pipe_seq_seconds : float;
  pipe_seconds : float;
  pipe_speedup : float;
  pipe_match : bool;
}

let json_parallel : parallel_summary option ref = ref None

let run_parallel () =
  (* corpus fan-out *)
  let traces = 16 in
  let events_total = int_of_float (2_400_000. *. opts.scale) in
  let corpus = Workloads.Corpus.generate ~traces ~events_total () in
  let corpus_events =
    List.fold_left (fun acc (_, tr) -> acc + Trace.length tr) 0 corpus
  in
  Format.fprintf fmt
    "@.Multicore: corpus fan-out (%d traces, %d events total, aerodrome \
     per trace)@."
    traces corpus_events;
  let fingerprint (r : Analysis.Runner.result) =
    ( r.Analysis.Runner.checker,
      verdict_string r,
      r.Analysis.Runner.events_fed,
      match r.Analysis.Runner.outcome with
      | Analysis.Runner.Verdict (Some v) -> Some v.Aerodrome.Violation.index
      | _ -> None )
  in
  let check_corpus jobs =
    let t0 = Unix.gettimeofday () in
    let rs =
      Parallel.Pool.run ~jobs
        (fun (_, tr) -> Analysis.Runner.run ~timeout:opts.timeout aerodrome tr)
        corpus
    in
    (Unix.gettimeofday () -. t0, List.map fingerprint rs)
  in
  let baseline_wall, baseline = check_corpus 1 in
  let runs =
    List.map
      (fun jobs ->
        let wall, fps =
          if jobs = 1 then (baseline_wall, baseline) else check_corpus jobs
        in
        let pr_match = fps = baseline in
        if not pr_match then
          Format.fprintf fmt
            "!! corpus fan-out at --jobs %d: verdicts differ from --jobs 1@."
            jobs;
        {
          pr_jobs = jobs;
          pr_wall = wall;
          pr_eps = float_of_int corpus_events /. max wall 1e-9;
          pr_speedup = baseline_wall /. max wall 1e-9;
          pr_match;
        })
      (List.sort_uniq compare [ 1; opts.jobs ])
  in
  List.iter
    (fun r ->
      Format.fprintf fmt
        "  --jobs %-2d  %8.3fs wall  %10.1f Kev/s aggregate  %.2fx vs 1 job%s@."
        r.pr_jobs r.pr_wall (r.pr_eps /. 1e3) r.pr_speedup
        (if r.pr_match then "" else "  [MISMATCH]"))
    runs;
  (* pipelined single-trace streaming *)
  let big =
    Workloads.Generator.generate
      {
        Workloads.Generator.default with
        events = int_of_float (400_000. *. opts.scale);
        threads = 8;
        locks = 8;
        vars = int_of_float (150_000. *. opts.scale) + 256;
      }
  in
  let path = Filename.temp_file "aerodrome-bench" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Traces.Binfmt.write_file path big;
      let run pipelined =
        Analysis.Runner.run_stream ~timeout:opts.timeout ~pipelined aerodrome
          path
      in
      (* interleaved repetitions, best of each mode *)
      let best_seq = ref (run false) in
      let best_pipe = ref (run true) in
      for _ = 2 to 3 do
        let s = run false in
        if s.Analysis.Runner.seconds < !best_seq.Analysis.Runner.seconds then
          best_seq := s;
        let p = run true in
        if p.Analysis.Runner.seconds < !best_pipe.Analysis.Runner.seconds then
          best_pipe := p
      done;
      let pipe_match = fingerprint !best_seq = fingerprint !best_pipe in
      if not pipe_match then
        Format.fprintf fmt "!! pipelined stream: verdict differs from sequential@.";
      let speedup =
        !best_seq.Analysis.Runner.seconds
        /. max !best_pipe.Analysis.Runner.seconds 1e-9
      in
      Format.fprintf fmt
        "@.Multicore: pipelined ingestion (%d-event binary trace, best of 3)@."
        (Trace.length big);
      Format.fprintf fmt
        "  sequential %8.3fs   pipelined %8.3fs   %.2fx%s@."
        !best_seq.Analysis.Runner.seconds !best_pipe.Analysis.Runner.seconds
        speedup
        (if pipe_match then "" else "  [MISMATCH]");
      json_parallel :=
        Some
          {
            corpus_traces = traces;
            corpus_events;
            corpus_runs = runs;
            pipe_events = Trace.length big;
            pipe_seq_seconds = !best_seq.Analysis.Runner.seconds;
            pipe_seconds = !best_pipe.Analysis.Runner.seconds;
            pipe_speedup = speedup;
            pipe_match;
          })

(* --- Telemetry overhead guard ---

   The observability layer must be close to free when disabled: every
   hot-path metric update hides behind one [Obs.on ()] branch.  This
   section measures it directly — the same trace checked with telemetry
   off and on, repetitions interleaved so machine drift hits both modes
   equally, best repetition each — and embeds the enabled run's metric
   snapshot in the JSON so committed BENCH files carry the counter shape
   alongside the throughput trajectory.  The overhead lands in
   [telemetry.overhead_pct]; the build treats > 5% as a regression to
   investigate (the reported number is noisy on small --scale runs). *)

type telemetry_summary = {
  tel_events : int;
  tel_disabled_eps : float;
  tel_enabled_eps : float;
  tel_overhead_pct : float;
  tel_metrics : Obs.Snapshot.t;
}

let json_telemetry : telemetry_summary option ref = ref None

let run_telemetry () =
  let tr =
    Workloads.Generator.generate
      {
        Workloads.Generator.default with
        events = int_of_float (200_000. *. opts.scale);
        threads = 8;
        locks = 8;
        vars = 80_000;
      }
  in
  let was_on = Obs.on () in
  let best_dis = ref infinity in
  let best_en = ref infinity in
  let metrics = ref Obs.Snapshot.empty in
  for _ = 1 to 5 do
    Obs.disable ();
    let d = Analysis.Runner.run ~timeout:opts.timeout aerodrome tr in
    if d.Analysis.Runner.seconds < !best_dis then
      best_dis := d.Analysis.Runner.seconds;
    Obs.enable ();
    let e = Analysis.Runner.run ~timeout:opts.timeout aerodrome tr in
    if e.Analysis.Runner.seconds < !best_en then begin
      best_en := e.Analysis.Runner.seconds;
      metrics := e.Analysis.Runner.metrics
    end
  done;
  if was_on then Obs.enable () else Obs.disable ();
  let n = Trace.length tr in
  let eps s = float_of_int n /. Float.max s 1e-9 in
  let dis_eps = eps !best_dis and en_eps = eps !best_en in
  let overhead = (dis_eps -. en_eps) /. Float.max dis_eps 1e-9 *. 100. in
  Format.fprintf fmt
    "@.Telemetry overhead (aerodrome, %d events, best of 5 interleaved \
     reps)@."
    n;
  Format.fprintf fmt
    "  disabled %10.1f Kev/s   enabled %10.1f Kev/s   overhead %+.1f%%%s@."
    (dis_eps /. 1e3) (en_eps /. 1e3) overhead
    (if overhead > 5.0 then "  [> 5% — investigate]" else "");
  json_telemetry :=
    Some
      {
        tel_events = n;
        tel_disabled_eps = dis_eps;
        tel_enabled_eps = en_eps;
        tel_overhead_pct = overhead;
        tel_metrics = !metrics;
      }

(* --- Peak-memory axis: state reclamation on a phased trace ---

   A phased trace confines each variable's lifetime to one of many
   back-to-back phases, the shape where a last-use oracle shines: with
   [--reclaim] (the default everywhere else in the repo) the checker
   releases a phase's entire clock state before the next phase begins,
   so peak live heap is one phase's state, not the whole trace's.  Both
   sides stream the same binary file (whose footer carries the oracle),
   [Gc.compact] settles the heap before each run, and peak live words =
   the run's [heap.peak_words] high-water mark minus the settled
   baseline.  Verdicts must be byte-identical; the interesting numbers
   are the peak reduction and the unchanged events/sec. *)

type reclaim_side = {
  rm_seconds : float;
  rm_eps : float;
  rm_peak_live_words : float;
}

type reclaim_summary = {
  rc_events : int;
  rc_threads : int;
  rc_vars : int;
  rc_off : reclaim_side;
  rc_on : reclaim_side;
  rc_pool_hits : int;
  rc_pool_misses : int;
  rc_pool_hit_rate : float;
  rc_reclaimed_states : int;
  rc_peak_reduction_pct : float;
  rc_match : bool;
}

let json_reclaim : reclaim_summary option ref = ref None

let run_reclaim () =
  let phases = 32 in
  let events_total = int_of_float (1_200_000. *. opts.scale) in
  let tr = Workloads.Corpus.phased ~phases ~events_total () in
  let path = Filename.temp_file "aerodrome-bench" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Traces.Binfmt.write_file path tr;
      let was_on = Obs.on () in
      Obs.enable ();
      let side reclaim =
        Gc.compact ();
        let settled = float_of_int (Gc.quick_stat ()).Gc.heap_words in
        let r =
          Analysis.Runner.run_stream ~timeout:opts.timeout ~reclaim aerodrome
            path
        in
        let peak =
          match
            Obs.Snapshot.get_float r.Analysis.Runner.metrics "heap.peak_words"
          with
          | Some p -> p
          | None -> float_of_int (Gc.quick_stat ()).Gc.heap_words
        in
        ( r,
          {
            rm_seconds = r.Analysis.Runner.seconds;
            rm_eps =
              float_of_int r.Analysis.Runner.events_fed
              /. Float.max r.Analysis.Runner.seconds 1e-9;
            rm_peak_live_words = Float.max 0. (peak -. settled);
          } )
      in
      let r_off, off = side false in
      let r_on, on_ = side true in
      if was_on then Obs.enable () else Obs.disable ();
      let fingerprint (r : Analysis.Runner.result) =
        ( verdict_string r,
          r.Analysis.Runner.events_fed,
          match r.Analysis.Runner.outcome with
          | Analysis.Runner.Verdict (Some v) -> Some v.Aerodrome.Violation.index
          | _ -> None )
      in
      let rc_match = fingerprint r_off = fingerprint r_on in
      if not rc_match then
        Format.fprintf fmt "!! reclamation: verdict differs from --no-reclaim@.";
      let geti name =
        Option.value ~default:0
          (Obs.Snapshot.get_int r_on.Analysis.Runner.metrics name)
      in
      let hits = geti "pool.hits" and misses = geti "pool.misses" in
      let reduction =
        (off.rm_peak_live_words -. on_.rm_peak_live_words)
        /. Float.max off.rm_peak_live_words 1. *. 100.
      in
      Format.fprintf fmt
        "@.Memory: state reclamation (phased trace, %d events, %d vars, \
         streamed with last-use footer)@."
        (Trace.length tr) (Trace.vars tr);
      let line label (s : reclaim_side) extra =
        Format.fprintf fmt
          "  %-12s %8.3fs  %10.1f Kev/s   peak live %11.0f words%s@." label
          s.rm_seconds (s.rm_eps /. 1e3) s.rm_peak_live_words extra
      in
      line "no-reclaim" off "";
      line "reclaim" on_
        (Printf.sprintf "   (%d states reclaimed, pool hit rate %.1f%%)"
           (geti "reclaim.states")
           (float_of_int hits /. float_of_int (max (hits + misses) 1) *. 100.));
      Format.fprintf fmt "  peak reduction %.1f%%%s@." reduction
        (if rc_match then "" else "  [MISMATCH]");
      json_reclaim :=
        Some
          {
            rc_events = Trace.length tr;
            rc_threads = Trace.threads tr;
            rc_vars = Trace.vars tr;
            rc_off = off;
            rc_on = on_;
            rc_pool_hits = hits;
            rc_pool_misses = misses;
            rc_pool_hit_rate =
              float_of_int hits /. float_of_int (max (hits + misses) 1);
            rc_reclaimed_states = geti "reclaim.states";
            rc_peak_reduction_pct = reduction;
            rc_match;
          })

(* --- trace reduction: checking throughput with the prefilter off,
   exact (v3 footer statistics), and online (single-pass) ---

   The workload is the mixed corpus trace: ~55% shared traffic plus ~45%
   traffic the filter can elide (thread-local variables, a read-only
   pool, redundant re-accesses, private locks).  Throughput is measured
   against the *input* event count on every side — the claim is that the
   same logical trace checks faster, not that fewer events per second
   are processed.  Verdicts must agree across all three sides (event
   indices are renumbered by the reduction, so only the verdict itself
   is compared). *)

type prefilter_side = {
  pf_seconds : float;
  pf_eps : float;  (* input events per second *)
  pf_events_fed : int;  (* events that reached the checker *)
}

type prefilter_summary = {
  pf_events_in : int;
  pf_threads : int;
  pf_vars : int;
  pf_events_out : int;
  pf_tl : int;
  pf_ro : int;
  pf_red : int;
  pf_ll : int;
  pf_off : prefilter_side;
  pf_exact : prefilter_side;
  pf_online : prefilter_side;
  pf_speedup_exact : float;
  pf_speedup_online : float;
  pf_match : bool;
}

let json_prefilter : prefilter_summary option ref = ref None

let run_prefilter () =
  let events_total = int_of_float (1_500_000. *. opts.scale) in
  let tr = Workloads.Corpus.mixed ~events_total () in
  let events_in = Trace.length tr in
  let path = Filename.temp_file "aerodrome-bench" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Traces.Binfmt.write_file path tr;
      (* untimed dry run for the per-rule breakdown *)
      let _, c = Traces.Prefilter.run_trace `Exact tr in
      let side prefilter =
        let r =
          Analysis.Runner.run_stream ~timeout:opts.timeout ~prefilter aerodrome
            path
        in
        ( r,
          {
            pf_seconds = r.Analysis.Runner.seconds;
            pf_eps =
              float_of_int events_in /. Float.max r.Analysis.Runner.seconds 1e-9;
            pf_events_fed = r.Analysis.Runner.events_fed;
          } )
      in
      let r_off, off = side Analysis.Runner.Off in
      let r_exact, exact = side Analysis.Runner.Exact in
      let r_online, online = side Analysis.Runner.Online in
      let pf_match =
        verdict_string r_off = verdict_string r_exact
        && verdict_string r_off = verdict_string r_online
      in
      if not pf_match then
        Format.fprintf fmt "!! prefilter: verdict differs from --no-prefilter@.";
      let speedup (s : prefilter_side) = off.pf_seconds /. Float.max s.pf_seconds 1e-9 in
      Format.fprintf fmt
        "@.Trace reduction: prefilter (mixed trace, %d events, %d vars; %d \
         elidable = %.1f%%)@."
        events_in (Trace.vars tr)
        (Traces.Prefilter.elided c)
        (float_of_int (Traces.Prefilter.elided c)
        /. float_of_int (max events_in 1)
        *. 100.);
      Format.fprintf fmt
        "  elided: %d thread-local, %d read-only, %d redundant, %d lock-local@."
        c.Traces.Prefilter.thread_local c.Traces.Prefilter.read_only
        c.Traces.Prefilter.redundant c.Traces.Prefilter.lock_local;
      let line label (s : prefilter_side) sp =
        Format.fprintf fmt
          "  %-12s %8.3fs  %10.1f Kev/s   %8d events to checker%s@." label
          s.pf_seconds (s.pf_eps /. 1e3) s.pf_events_fed sp
      in
      line "off" off "";
      line "exact" exact (Printf.sprintf "   (%.2fx)" (speedup exact));
      line "online" online (Printf.sprintf "   (%.2fx)" (speedup online));
      if not pf_match then Format.fprintf fmt "  [MISMATCH]@.";
      json_prefilter :=
        Some
          {
            pf_events_in = events_in;
            pf_threads = Trace.threads tr;
            pf_vars = Trace.vars tr;
            pf_events_out = c.Traces.Prefilter.kept;
            pf_tl = c.Traces.Prefilter.thread_local;
            pf_ro = c.Traces.Prefilter.read_only;
            pf_red = c.Traces.Prefilter.redundant;
            pf_ll = c.Traces.Prefilter.lock_local;
            pf_off = off;
            pf_exact = exact;
            pf_online = online;
            pf_speedup_exact = speedup exact;
            pf_speedup_online = speedup online;
            pf_match;
          })

(* --- Packed-arena axis: zero-copy ingestion vs the boxed reference ---

   The same mixed-corpus binary trace (v3, so the exact prefilter is
   free on both sides; [Auto] selects it) checked end to end by the
   linear-time checker through the boxed [Event.t] reference reader and
   through the packed path: mmap -> packed words -> packed rule engine
   -> [feed_packed], no per-event heap allocation between the file and
   the vector-clock work, and elided events never materialized at all.
   Repetitions are interleaved so machine drift hits both sides
   equally; allocation figures are [Gc.allocated_bytes] deltas around
   the first repetition of each side.  Verdicts and reports must be
   byte-identical — the packed path is an optimization, never a
   different checker.

   The same file also feeds the ingestion micro-benchmark (decode-only,
   no checker): boxed record decoding vs the packed mmap cursor,
   reported as events/sec and words allocated per 100K events.  The
   rows land in the JSON "micro" section with verdict "n/a". *)

type arena_side = {
  ar_seconds : float;
  ar_eps : float;  (* input events per second *)
  ar_events_fed : int;
  ar_alloc_mwords : float;
}

type arena_summary = {
  ar_events : int;
  ar_threads : int;
  ar_vars : int;
  ar_file_bytes : int;
  ar_boxed : arena_side;
  ar_packed : arena_side;
  ar_speedup : float;
  ar_alloc_reduction : float;
  ar_verdicts_match : bool;
  ar_reports_match : bool;
}

let json_arena : arena_summary option ref = ref None

let run_ingest_micro path events_in =
  let boxed () =
    let t0 = Unix.gettimeofday () in
    let a0 = Gc.allocated_bytes () in
    let _, n = Traces.Binfmt.fold path ~init:0 ~f:(fun n _ -> n + 1) in
    let a1 = Gc.allocated_bytes () in
    (Unix.gettimeofday () -. t0, (a1 -. a0) /. 8., n)
  in
  let packed () =
    let t0 = Unix.gettimeofday () in
    let a0 = Gc.allocated_bytes () in
    let _, n = Traces.Binfmt.fold_packed path ~init:0 ~f:(fun n _ -> n + 1) in
    let a1 = Gc.allocated_bytes () in
    (Unix.gettimeofday () -. t0, (a1 -. a0) /. 8., n)
  in
  (* interleaved, best time of 3; allocation from the first repetition *)
  let best_b = ref (boxed ()) in
  let best_p = ref (packed ()) in
  let _, b_alloc, _ = !best_b in
  let _, p_alloc, _ = !best_p in
  for _ = 2 to 3 do
    let ((bs, _, _) as b) = boxed () in
    let bbs, _, _ = !best_b in
    if bs < bbs then best_b := b;
    let ((ps, _, _) as p) = packed () in
    let bps, _, _ = !best_p in
    if ps < bps then best_p := p
  done;
  let sample cname (seconds, _, n) alloc =
    {
      cname;
      seconds;
      events_fed = n;
      events_per_sec = float_of_int n /. max seconds 1e-9;
      verdict = "n/a";
      allocated_mwords = alloc /. 1e6;
      top_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
    }
  in
  let sb = sample "ingest-boxed-decode" !best_b b_alloc in
  let sp = sample "ingest-packed-mmap-cursor" !best_p p_alloc in
  Format.fprintf fmt
    "@.Ingestion micro (decode only, %d events, best of 3 interleaved \
     reps)@."
    events_in;
  let line (s : checker_sample) alloc =
    Format.fprintf fmt
      "  %-26s %10.1f Kev/s   %12.0f words alloc / 100K events@." s.cname
      (s.events_per_sec /. 1e3)
      (alloc /. float_of_int (max events_in 1) *. 1e5)
  in
  line sb b_alloc;
  line sp p_alloc;
  json_micro :=
    !json_micro
    @ [
        {
          rname = "ingestion";
          events = events_in;
          threads = 0;
          locks = 0;
          vars = 0;
          samples = [ sb; sp ];
        };
      ]

let run_arena () =
  let events_total = int_of_float (1_500_000. *. opts.scale) in
  let tr = Workloads.Corpus.mixed ~events_total () in
  let events_in = Trace.length tr in
  let path = Filename.temp_file "aerodrome-bench" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Traces.Binfmt.write_file path tr;
      let file_bytes = (Unix.stat path).Unix.st_size in
      let run packed =
        Analysis.Runner.run_stream ~timeout:opts.timeout ~packed
          ~prefilter:Analysis.Runner.Auto aerodrome path
      in
      let measured packed =
        let a0 = Gc.allocated_bytes () in
        let r = run packed in
        let a1 = Gc.allocated_bytes () in
        (r, (a1 -. a0) /. 8e6)
      in
      let r_boxed0, alloc_boxed = measured false in
      let r_packed0, alloc_packed = measured true in
      let best_boxed = ref r_boxed0 in
      let best_packed = ref r_packed0 in
      for _ = 2 to 5 do
        let b = run false in
        if b.Analysis.Runner.seconds < !best_boxed.Analysis.Runner.seconds
        then best_boxed := b;
        let p = run true in
        if p.Analysis.Runner.seconds < !best_packed.Analysis.Runner.seconds
        then best_packed := p
      done;
      let verdicts_match =
        verdict_string !best_boxed = verdict_string !best_packed
      in
      let reports_match =
        !best_boxed.Analysis.Runner.outcome
        = !best_packed.Analysis.Runner.outcome
        && !best_boxed.Analysis.Runner.events_fed
           = !best_packed.Analysis.Runner.events_fed
      in
      if not (verdicts_match && reports_match) then
        Format.fprintf fmt "!! arena: packed report differs from boxed@.";
      let side (r : Analysis.Runner.result) alloc =
        {
          ar_seconds = r.Analysis.Runner.seconds;
          ar_eps =
            float_of_int events_in /. Float.max r.Analysis.Runner.seconds 1e-9;
          ar_events_fed = r.Analysis.Runner.events_fed;
          ar_alloc_mwords = alloc;
        }
      in
      let boxed = side !best_boxed alloc_boxed in
      let packed = side !best_packed alloc_packed in
      let speedup = boxed.ar_seconds /. Float.max packed.ar_seconds 1e-9 in
      let alloc_reduction =
        boxed.ar_alloc_mwords /. Float.max packed.ar_alloc_mwords 1e-3
      in
      Format.fprintf fmt
        "@.Packed arena: ingestion path end to end (mixed trace, %d events, \
         %d bytes on disk, best of 5)@."
        events_in file_bytes;
      let line label (s : arena_side) extra =
        Format.fprintf fmt
          "  %-12s %8.3fs  %10.1f Kev/s   %10.3f Mwords allocated%s@." label
          s.ar_seconds (s.ar_eps /. 1e3) s.ar_alloc_mwords extra
      in
      line "boxed" boxed "";
      line "packed" packed
        (Printf.sprintf "   (%.2fx, %.0fx less allocation)" speedup
           alloc_reduction);
      if not (verdicts_match && reports_match) then
        Format.fprintf fmt "  [MISMATCH]@.";
      json_arena :=
        Some
          {
            ar_events = events_in;
            ar_threads = Trace.threads tr;
            ar_vars = Trace.vars tr;
            ar_file_bytes = file_bytes;
            ar_boxed = boxed;
            ar_packed = packed;
            ar_speedup = speedup;
            ar_alloc_reduction = alloc_reduction;
            ar_verdicts_match = verdicts_match;
            ar_reports_match = reports_match;
          };
      run_ingest_micro path events_in)

(* --- sharded checking: single-trace chunk parallelism over the packed
   arena (DESIGN.md §17).  Sequential vs sharded end-to-end streaming
   runs on the same binary file; the sharded side must report the exact
   same verdict and events_fed (validate_json refuses the file
   otherwise).  A separate pass calls [Parallel.Shard.check] directly on
   a pre-built arena to expose the boundary plan (quiescent vs seamed
   cuts, repaired events) and per-chunk utilization that the streaming
   path keeps internal.

   Quiescent-cut density falls off exponentially with thread count
   (roughly p^T), so the section runs a friendly case (threads=4, a
   quiescent position every few hundred events that cuts snap to) and
   an adversarial one (threads=8) where almost every cut lands inside
   open transactions.  Under PR 7's quiescent-only planner the
   adversarial case replayed the majority of the trace sequentially;
   boundary-summary seeding repairs only each cut's window to the
   two-phase retirement horizon — a couple of transaction lengths, not
   the gap to the next globally quiescent position — so the repair
   fraction must stay small (the regression gate holds it at <= 10%
   on full-scale runs).  On a
   single-core machine the speedup hovers around 1x either way — the
   numbers to read for scaling come from multi-core CI runners. *)

type shard_run = {
  sr_shards : int;
  sr_seconds : float;
  sr_eps : float;  (* input events per second *)
  sr_speedup : float;  (* vs the sequential side of the same case *)
  sr_chunks : int;
  sr_quiescent : int;  (* cuts taken at (or snapped to) quiescent positions *)
  sr_seamed : int;  (* cuts through open transactions, seeded + repaired *)
  sr_repaired : int;  (* events re-fed against the true frontier *)
  sr_repair_fraction : float;  (* repaired events / trace events *)
  sr_tainted : int;  (* pre-cut in-transaction accesses across all seams *)
  sr_utilization : float array;
      (* per-chunk checker busy seconds / chunk-phase wall-clock *)
  sr_verdicts_match : bool;
  sr_reports_match : bool;
}

type shard_case = {
  sc_threads : int;
  sc_events : int;
  sc_seq_seconds : float;
  sc_seq_eps : float;
  sc_runs : shard_run list;
}

let json_shards : shard_case list ref = ref []

let run_shards () =
  Format.fprintf fmt
    "@.Sharded checking: single-trace chunk parallelism (mixed traces, best \
     of 3)@.";
  let case ~threads ~shard_counts =
    let events_total = int_of_float (1_500_000. *. opts.scale) in
    let tr = Workloads.Corpus.mixed ~threads ~events_total () in
    let events_in = Trace.length tr in
    let path = Filename.temp_file "aerodrome-bench" ".bin" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Traces.Binfmt.write_file path tr;
        (* No [~timeout]: the runner's shardable gate falls back to the
           sequential path when a timeout is armed, so the sequential
           side drops it too and both sides time the same code shape. *)
        let run shards = Analysis.Runner.run_stream ~shards aerodrome path in
        let best shards =
          let r = ref (run shards) in
          for _ = 2 to 3 do
            let s = run shards in
            if s.Analysis.Runner.seconds < !r.Analysis.Runner.seconds then
              r := s
          done;
          !r
        in
        let seq = best 1 in
        let seq_eps =
          float_of_int events_in /. Float.max seq.Analysis.Runner.seconds 1e-9
        in
        let arena = Packed.Arena.create () in
        Trace.iteri (fun _ e -> Packed.Arena.push arena (Packed.of_event e)) tr;
        let detail shards =
          let t0 = Unix.gettimeofday () in
          let o =
            Parallel.Shard.check ~shards ~threads:(Trace.threads tr)
              ~locks:(Trace.locks tr) ~vars:(Trace.vars tr) arena
          in
          let wall = Unix.gettimeofday () -. t0 in
          let chunk_wall =
            Float.max
              (wall -. o.Parallel.Shard.plan_seconds
              -. o.Parallel.Shard.merge_seconds)
              1e-9
          in
          let util =
            Array.map
              (fun (t : Parallel.Shard.task) ->
                Float.min 1.0 (t.Parallel.Shard.seconds /. chunk_wall))
              o.Parallel.Shard.tasks
          in
          (o.Parallel.Shard.plan, util, o.Parallel.Shard.repaired_events)
        in
        let runs =
          List.map
            (fun shards ->
              let r = best shards in
              let plan, util, repaired = detail shards in
              let verdicts_match = verdict_string seq = verdict_string r in
              let reports_match =
                seq.Analysis.Runner.outcome = r.Analysis.Runner.outcome
                && seq.Analysis.Runner.events_fed
                   = r.Analysis.Runner.events_fed
              in
              if not (verdicts_match && reports_match) then
                Format.fprintf fmt
                  "!! shards=%d: report diverged from sequential@." shards;
              {
                sr_shards = shards;
                sr_seconds = r.Analysis.Runner.seconds;
                sr_eps =
                  float_of_int events_in
                  /. Float.max r.Analysis.Runner.seconds 1e-9;
                sr_speedup =
                  seq.Analysis.Runner.seconds
                  /. Float.max r.Analysis.Runner.seconds 1e-9;
                sr_chunks = Array.length plan.Aerodrome.Merge.boundaries;
                sr_quiescent = plan.Aerodrome.Merge.quiescent;
                sr_seamed = plan.Aerodrome.Merge.seamed;
                sr_repaired = repaired;
                sr_repair_fraction =
                  float_of_int repaired /. float_of_int (max events_in 1);
                sr_tainted = plan.Aerodrome.Merge.tainted_events;
                sr_utilization = util;
                sr_verdicts_match = verdicts_match;
                sr_reports_match = reports_match;
              })
            shard_counts
        in
        Format.fprintf fmt
          "  threads=%d  %d events   sequential %8.3fs  %9.1f Kev/s@." threads
          events_in seq.Analysis.Runner.seconds (seq_eps /. 1e3);
        List.iter
          (fun r ->
            Format.fprintf fmt
              "    shards=%d %8.3fs  %9.1f Kev/s  (%.2fx)  chunks=%d \
               quiescent=%d seamed=%d repair=%.1f%%  util=[%s]%s@."
              r.sr_shards r.sr_seconds (r.sr_eps /. 1e3) r.sr_speedup
              r.sr_chunks r.sr_quiescent r.sr_seamed
              (100. *. r.sr_repair_fraction)
              (String.concat ";"
                 (Array.to_list
                    (Array.map (Printf.sprintf "%.2f") r.sr_utilization)))
              (if r.sr_verdicts_match && r.sr_reports_match then ""
               else "  [MISMATCH]"))
          runs;
        {
          sc_threads = threads;
          sc_events = events_in;
          sc_seq_seconds = seq.Analysis.Runner.seconds;
          sc_seq_eps = seq_eps;
          sc_runs = runs;
        })
  in
  let friendly = case ~threads:4 ~shard_counts:[ 2; 4 ] in
  let adversarial = case ~threads:8 ~shard_counts:[ 4 ] in
  json_shards := [ friendly; adversarial ]

(* --- Scheduler axis: static one-chunk-per-domain vs work-stealing ---

   The same adversarial 8-thread corpus as the shards section, checked
   three ways: sequentially, with the static plan (one chunk per
   domain on a dedicated pool — the PR 9 executor) and with the
   work-stealing scheduler (DESIGN.md §18: oversubscribed micro-chunks
   on per-domain deques, seam repairs performed out of order as chunks
   retire).  Static sharding is hostage to its slowest chunk — on an
   adversarial trace the per-chunk work is skewed, so domains idle at
   the tail — while stealing rebalances at micro-chunk granularity,
   which is where the steal-vs-static ratio comes from.  Reports must
   stay byte-identical to sequential on every executor.  On a
   single-core machine both hover around 1x; the ratio to read comes
   from multi-core CI runners. *)

type sched_side = {
  ss_seconds : float;
  ss_eps : float;
  ss_speedup : float;  (* vs the sequential run *)
  ss_verdicts_match : bool;
  ss_reports_match : bool;
}

type sched_result = {
  sd_threads : int;
  sd_events : int;
  sd_domains : int;
  sd_seq_seconds : float;
  sd_seq_eps : float;
  sd_static : sched_side;
  sd_steal : sched_side;
  sd_chunks : int;  (* micro-chunk tasks the steal run completed *)
  sd_steals : int;
  sd_failed_steals : int;
  sd_injected : int;
  sd_utilization : float array;
      (* per-domain busy fraction of the steal run's wall clock *)
  sd_steal_vs_static : float;  (* steal events/sec over static events/sec *)
}

let json_scheduler : sched_result option ref = ref None

let run_scheduler () =
  Format.fprintf fmt
    "@.Work-stealing scheduler: static chunks vs micro-chunk stealing \
     (adversarial corpus, best of 3)@.";
  (* floor the workload above the runner's steal-viability threshold
     (2 x min_shard_events): below it the steal side degenerates to a
     sequential run with zero chunks, and the section would measure
     nothing.  The cram-scale run still finishes in a couple seconds. *)
  let events_total =
    max 262_144 (int_of_float (1_500_000. *. opts.scale))
  in
  let threads = 8 in
  let domains = max 4 (Domain.recommended_domain_count ()) in
  let tr = Workloads.Corpus.mixed ~threads ~events_total () in
  let events_in = Trace.length tr in
  let path = Filename.temp_file "aerodrome-bench" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Traces.Binfmt.write_file path tr;
      (* no [~timeout], as in the shards section: the shardable gate
         must stay open so all three sides time the same code shape *)
      (* each attempt returns (seconds, payload); keep the fastest *)
      let best_of_3 run =
        let r = ref (run ()) in
        for _ = 2 to 3 do
          let s = run () in
          if fst s < fst !r then r := s
        done;
        snd !r
      in
      let seq =
        best_of_3 (fun () ->
            let r = Analysis.Runner.run_stream ~shards:1 aerodrome path in
            (r.Analysis.Runner.seconds, r))
      in
      let seq_eps =
        float_of_int events_in /. Float.max seq.Analysis.Runner.seconds 1e-9
      in
      let side (r : Analysis.Runner.result) =
        {
          ss_seconds = r.Analysis.Runner.seconds;
          ss_eps =
            float_of_int events_in
            /. Float.max r.Analysis.Runner.seconds 1e-9;
          ss_speedup =
            seq.Analysis.Runner.seconds
            /. Float.max r.Analysis.Runner.seconds 1e-9;
          ss_verdicts_match = verdict_string seq = verdict_string r;
          ss_reports_match =
            seq.Analysis.Runner.outcome = r.Analysis.Runner.outcome
            && seq.Analysis.Runner.events_fed = r.Analysis.Runner.events_fed;
        }
      in
      let static_r =
        best_of_3 (fun () ->
            let r =
              Analysis.Runner.run_stream ~shards:domains aerodrome path
            in
            (r.Analysis.Runner.seconds, r))
      in
      let steal_r, st, wall =
        best_of_3 (fun () ->
            (* a fresh scheduler per attempt so the counters describe
               exactly the run they are reported with *)
            let sched = Parallel.Deque.create domains in
            let t0 = Unix.gettimeofday () in
            let r =
              Analysis.Runner.run_stream ~sched ~shards:0 aerodrome path
            in
            let wall = Unix.gettimeofday () -. t0 in
            Parallel.Deque.shutdown sched;
            let st = Parallel.Deque.stats sched in
            (r.Analysis.Runner.seconds, (r, st, wall)))
      in
      let static = side static_r in
      let steal = side steal_r in
      if
        not
          (static.ss_verdicts_match && static.ss_reports_match
          && steal.ss_verdicts_match && steal.ss_reports_match)
      then Format.fprintf fmt "!! scheduler: report diverged from sequential@.";
      let util =
        Array.map
          (fun b -> Float.min 1.0 (b /. Float.max wall 1e-9))
          st.Parallel.Deque.busy_seconds
      in
      Format.fprintf fmt
        "  threads=%d  %d events  domains=%d   sequential %8.3fs  %9.1f \
         Kev/s@."
        threads events_in domains seq.Analysis.Runner.seconds (seq_eps /. 1e3);
      Format.fprintf fmt "    static:%d %8.3fs  %9.1f Kev/s  (%.2fx)%s@."
        domains static.ss_seconds (static.ss_eps /. 1e3) static.ss_speedup
        (if static.ss_verdicts_match && static.ss_reports_match then ""
         else "  [MISMATCH]");
      Format.fprintf fmt
        "    steal    %8.3fs  %9.1f Kev/s  (%.2fx)  chunks=%d steals=%d \
         failed=%d util=[%s]%s@."
        steal.ss_seconds (steal.ss_eps /. 1e3) steal.ss_speedup
        st.Parallel.Deque.completed st.Parallel.Deque.steals
        st.Parallel.Deque.failed_steals
        (String.concat ";"
           (Array.to_list (Array.map (Printf.sprintf "%.2f") util)))
        (if steal.ss_verdicts_match && steal.ss_reports_match then ""
         else "  [MISMATCH]");
      let ratio = steal.ss_eps /. Float.max static.ss_eps 1e-9 in
      Format.fprintf fmt "    steal vs static: %.2fx@." ratio;
      json_scheduler :=
        Some
          {
            sd_threads = threads;
            sd_events = events_in;
            sd_domains = domains;
            sd_seq_seconds = seq.Analysis.Runner.seconds;
            sd_seq_eps = seq_eps;
            sd_static = static;
            sd_steal = steal;
            sd_chunks = st.Parallel.Deque.completed;
            sd_steals = st.Parallel.Deque.steals;
            sd_failed_steals = st.Parallel.Deque.failed_steals;
            sd_injected = st.Parallel.Deque.injected;
            sd_utilization = util;
            sd_steal_vs_static = ratio;
          })

(* --- Observability axis: live exporter overhead + flight recorder ---

   Two costs the observability layer adds to a production run.  (1) A
   live metrics endpoint: the same trace checked with telemetry on and
   no exporter vs. telemetry on, the OpenMetrics responder serving on a
   unix socket and a scraper domain hammering it far harder than a real
   Prometheus would (every ~5ms instead of every ~15s).  Scrapes read
   immediate-int shared counters lock-free, so the overhead should be
   noise; the acceptance bar is <= 3% on 1M+-event runs, and every
   fetched exposition must be validator-clean.  (2) The violation
   flight recorder: a violating trace checked bare vs. with per-thread
   rings at the conventional and a 4x window, each on-run emitting a
   witness bundle whose binfmt slice is replayed in-process — the
   verdict must reproduce (flight.validated) and the recorder must not
   change the run's own verdict. *)

type flight_probe = {
  fp_window : int;
  fp_off_eps : float;
  fp_on_eps : float;
  fp_overhead_pct : float;
  fp_slice_events : int;
  fp_replayable : bool;
      (* rings still covered a quiescent cut; a window too small for the
         workload degrades the witness to context-only, which is not a
         failure *)
  fp_replay_matches : bool;  (* replayable => slice reproduced the verdict *)
}

type observability_summary = {
  ob_events : int;
  ob_base_eps : float;
  ob_scraped_eps : float;
  ob_overhead_pct : float;
  ob_scrapes : int;
  ob_scrapes_valid : bool;
  ob_flight_events : int;
  ob_flight_verdicts_match : bool;
  ob_probes : flight_probe list;
}

let json_observability : observability_summary option ref = ref None

let run_observability () =
  let reps = 5 in
  let was_on = Obs.on () in
  Obs.enable ();
  (* exporter half: telemetry on both sides, scraping is the variable *)
  let tr =
    Workloads.Generator.generate
      {
        Workloads.Generator.default with
        events = int_of_float (1_200_000. *. opts.scale);
        threads = 8;
        locks = 8;
        vars = 4_096;
      }
  in
  let n = Trace.length tr in
  let eps events s = float_of_int events /. Float.max s 1e-9 in
  let best_base = ref infinity in
  let best_scraped = ref infinity in
  let scrapes = ref 0 in
  let scrapes_valid = ref true in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "aerodrome-bench-%d.sock" (Unix.getpid ()))
  in
  let addr = "unix:" ^ sock in
  (match Obs.Exporter.serve addr with
  | Error msg ->
    Format.fprintf fmt "@.!! observability: exporter failed to start: %s@." msg;
    scrapes_valid := false
  | Ok srv ->
    let stop_scraper = Atomic.make false in
    let scraped = Atomic.make 0 in
    let invalid = Atomic.make 0 in
    let scraper =
      Domain.spawn (fun () ->
          while not (Atomic.get stop_scraper) do
            (match Obs.Exporter.fetch addr with
            | Ok body -> (
              Atomic.incr scraped;
              match Obs.Exporter.validate body with
              | Ok () -> ()
              | Error _ -> Atomic.incr invalid)
            | Error _ -> ());
            Unix.sleepf 0.005
          done)
    in
    (* interleaved reps: machine drift hits both modes equally.  The
       scraper keeps hammering during the baseline reps too; what it
       serves then is the same registry, so only the enabled reps are
       reported as "scraped" throughput — the pessimistic reading. *)
    for _ = 1 to reps do
      let b = Analysis.Runner.run ~timeout:opts.timeout aerodrome tr in
      if b.Analysis.Runner.seconds < !best_base then
        best_base := b.Analysis.Runner.seconds;
      let s = Analysis.Runner.run ~timeout:opts.timeout aerodrome tr in
      if s.Analysis.Runner.seconds < !best_scraped then
        best_scraped := s.Analysis.Runner.seconds
    done;
    Atomic.set stop_scraper true;
    Domain.join scraper;
    (* at tiny --scale the reps finish in milliseconds and the scraper
       domain gets a single fetch attempt racing the listener's
       startup; the measurement is over, so top up with a few direct
       fetches before declaring the exposition invalid *)
    let tries = ref 0 in
    while Atomic.get scraped = 0 && !tries < 20 do
      incr tries;
      (match Obs.Exporter.fetch addr with
      | Ok body -> (
        Atomic.incr scraped;
        match Obs.Exporter.validate body with
        | Ok () -> ()
        | Error _ -> Atomic.incr invalid)
      | Error _ -> Unix.sleepf 0.005)
    done;
    Obs.Exporter.stop srv;
    scrapes := Atomic.get scraped;
    scrapes_valid := Atomic.get scraped > 0 && Atomic.get invalid = 0);
  let base_eps = eps n !best_base in
  let scraped_eps = eps n !best_scraped in
  let overhead =
    (base_eps -. scraped_eps) /. Float.max base_eps 1e-9 *. 100.
  in
  (* flight half: a violating trace, recorder off vs. on *)
  let vtr =
    Workloads.Generator.generate
      {
        Workloads.Generator.default with
        events = int_of_float (400_000. *. opts.scale);
        (* 4 threads: enough contention to be representative while
           leaving quiescent cuts dense enough that the larger ring
           probe stays replayable at full scale — 6+ threads push the
           nearest cut tens of thousands of events back and every probe
           degrades to context-only *)
        threads = 4;
        locks = 4;
        vars = 2_048;
        plan = Workloads.Generator.Violate_at 0.7;
      }
  in
  let vn = Trace.length vtr in
  let flight_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "aerodrome-bench-flight-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir flight_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let verdicts_match = ref true in
  let probe window =
    let best_off = ref infinity in
    let best_on = ref infinity in
    let off_verdict = ref "" in
    let on_verdict = ref "" in
    let slice_events = ref 0 in
    let replayable = ref false in
    let replay_ok = ref true in
    for _ = 1 to 3 do
      let off = Analysis.Runner.run ~timeout:opts.timeout aerodrome vtr in
      if off.Analysis.Runner.seconds < !best_off then
        best_off := off.Analysis.Runner.seconds;
      off_verdict := verdict_string off;
      let on_ =
        Analysis.Runner.run ~timeout:opts.timeout
          ~flight:{ Analysis.Runner.flight_dir; flight_window = window }
          aerodrome vtr
      in
      if on_.Analysis.Runner.seconds < !best_on then
        best_on := on_.Analysis.Runner.seconds;
      on_verdict := verdict_string on_;
      let m = on_.Analysis.Runner.metrics in
      slice_events :=
        Option.value ~default:0 (Obs.Snapshot.get_int m "flight.slice_events");
      let rep_replayable = Obs.Snapshot.get_int m "flight.replayable" = Some 1 in
      replayable := !replayable || rep_replayable;
      if rep_replayable then
        replay_ok :=
          !replay_ok && Obs.Snapshot.get_int m "flight.validated" = Some 1
    done;
    if !off_verdict <> !on_verdict then verdicts_match := false;
    let off_eps = eps vn !best_off and on_eps = eps vn !best_on in
    {
      fp_window = window;
      fp_off_eps = off_eps;
      fp_on_eps = on_eps;
      fp_overhead_pct = (off_eps -. on_eps) /. Float.max off_eps 1e-9 *. 100.;
      fp_slice_events = !slice_events;
      fp_replayable = !replayable;
      fp_replay_matches = !replay_ok;
    }
  in
  let probes = [ probe Flight.default_window; probe (4 * Flight.default_window) ] in
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat flight_dir f) with Sys_error _ -> ())
       (Sys.readdir flight_dir);
     Unix.rmdir flight_dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  if was_on then Obs.enable () else Obs.disable ();
  Format.fprintf fmt
    "@.Observability: live exporter + flight recorder (aerodrome, best of \
     %d interleaved reps)@."
    reps;
  Format.fprintf fmt
    "  exporter: %d events  bare %10.1f Kev/s   scraped %10.1f Kev/s   \
     overhead %+.1f%%   scrapes %d%s@."
    n (base_eps /. 1e3) (scraped_eps /. 1e3) overhead !scrapes
    (if !scrapes_valid then "" else "  [INVALID EXPOSITION]");
  List.iter
    (fun p ->
      Format.fprintf fmt
        "  flight N=%-5d %d events  off %10.1f Kev/s   on %10.1f Kev/s   \
         overhead %+.1f%%   slice %d events%s@."
        p.fp_window vn (p.fp_off_eps /. 1e3) (p.fp_on_eps /. 1e3)
        p.fp_overhead_pct p.fp_slice_events
        (if not p.fp_replayable then "  (context-only)"
         else if p.fp_replay_matches then ""
         else "  [REPLAY MISMATCH]"))
    probes;
  json_observability :=
    Some
      {
        ob_events = n;
        ob_base_eps = base_eps;
        ob_scraped_eps = scraped_eps;
        ob_overhead_pct = overhead;
        ob_scrapes = !scrapes;
        ob_scrapes_valid = !scrapes_valid;
        ob_flight_events = vn;
        ob_flight_verdicts_match = !verdicts_match;
        ob_probes = probes;
      }

(* --- JSON emitter (schema "aerodrome-bench/10") --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let emit_json path =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sep_list f = function
    | [] -> ()
    | x :: xs ->
      f x;
      List.iter
        (fun x ->
          add ",";
          f x)
        xs
  in
  let emit_sample (s : checker_sample) =
    add
      "{\"name\":\"%s\",\"seconds\":%.6f,\"events_fed\":%d,\"events_per_sec\":%.1f,\"verdict\":\"%s\",\"allocated_mwords\":%.3f,\"top_heap_words\":%d}"
      (json_escape s.cname) s.seconds s.events_fed s.events_per_sec
      (json_escape s.verdict) s.allocated_mwords s.top_heap_words
  in
  let emit_row (r : sample_row) =
    add "{\"name\":\"%s\",\"events\":%d,\"threads\":%d,\"locks\":%d,\"vars\":%d,\"checkers\":["
      (json_escape r.rname) r.events r.threads r.locks r.vars;
    sep_list emit_sample r.samples;
    add "]}"
  in
  add "{\"schema\":\"aerodrome-bench/10\",";
  add "\"scale\":%g,\"timeout\":%g,\"jobs\":%d," opts.scale opts.timeout
    opts.jobs;
  add "\"tables\":[";
  sep_list
    (fun (n, wall, rows) ->
      add "{\"table\":%d,\"wall_seconds\":%.6f,\"rows\":[" n wall;
      sep_list emit_row rows;
      add "]}")
    !json_tables;
  add "],\"micro\":[";
  sep_list emit_row !json_micro;
  add "],\"parallel\":";
  (match !json_parallel with
  | None -> add "null"
  | Some p ->
    add "{\"corpus\":{\"traces\":%d,\"events_total\":%d,\"runs\":["
      p.corpus_traces p.corpus_events;
    sep_list
      (fun r ->
        add
          "{\"jobs\":%d,\"wall_seconds\":%.6f,\"events_per_sec\":%.1f,\"speedup_vs_jobs1\":%.3f,\"verdicts_match\":%b}"
          r.pr_jobs r.pr_wall r.pr_eps r.pr_speedup r.pr_match)
      p.corpus_runs;
    add "]},\"pipelined\":{\"events\":%d,\"sequential_seconds\":%.6f,\"pipelined_seconds\":%.6f,\"speedup\":%.3f,\"reports_match\":%b}}"
      p.pipe_events p.pipe_seq_seconds p.pipe_seconds p.pipe_speedup
      p.pipe_match);
  add ",\"telemetry\":";
  (match !json_telemetry with
  | None -> add "null"
  | Some t ->
    add
      "{\"events\":%d,\"disabled_events_per_sec\":%.1f,\"enabled_events_per_sec\":%.1f,\"overhead_pct\":%.2f,\"metrics\":%s}"
      t.tel_events t.tel_disabled_eps t.tel_enabled_eps t.tel_overhead_pct
      (Obs.Json.to_string (Obs.Snapshot.to_json t.tel_metrics)));
  add ",\"reclaim\":";
  (match !json_reclaim with
  | None -> add "null"
  | Some rc ->
    add "{\"events\":%d,\"threads\":%d,\"vars\":%d," rc.rc_events rc.rc_threads
      rc.rc_vars;
    add
      "\"off\":{\"seconds\":%.6f,\"events_per_sec\":%.1f,\"peak_live_words\":%.0f},"
      rc.rc_off.rm_seconds rc.rc_off.rm_eps rc.rc_off.rm_peak_live_words;
    add
      "\"on\":{\"seconds\":%.6f,\"events_per_sec\":%.1f,\"peak_live_words\":%.0f,\"pool_hits\":%d,\"pool_misses\":%d,\"pool_hit_rate\":%.4f,\"reclaimed_states\":%d},"
      rc.rc_on.rm_seconds rc.rc_on.rm_eps rc.rc_on.rm_peak_live_words
      rc.rc_pool_hits rc.rc_pool_misses rc.rc_pool_hit_rate
      rc.rc_reclaimed_states;
    add "\"peak_reduction_pct\":%.2f,\"verdicts_match\":%b}"
      rc.rc_peak_reduction_pct rc.rc_match);
  add ",\"prefilter\":";
  (match !json_prefilter with
  | None -> add "null"
  | Some p ->
    add "{\"events_in\":%d,\"events_out\":%d,\"threads\":%d,\"vars\":%d,"
      p.pf_events_in p.pf_events_out p.pf_threads p.pf_vars;
    add
      "\"elided\":{\"thread_local\":%d,\"read_only\":%d,\"redundant\":%d,\"lock_local\":%d},"
      p.pf_tl p.pf_ro p.pf_red p.pf_ll;
    let side name (s : prefilter_side) =
      add
        "\"%s\":{\"seconds\":%.6f,\"events_per_sec\":%.1f,\"events_fed\":%d}"
        name s.pf_seconds s.pf_eps s.pf_events_fed
    in
    side "off" p.pf_off;
    add ",";
    side "exact" p.pf_exact;
    add ",";
    side "online" p.pf_online;
    add ",\"speedup_exact\":%.3f,\"speedup_online\":%.3f,\"verdicts_match\":%b}"
      p.pf_speedup_exact p.pf_speedup_online p.pf_match);
  add ",\"arena\":";
  (match !json_arena with
  | None -> add "null"
  | Some a ->
    add "{\"events\":%d,\"threads\":%d,\"vars\":%d,\"file_bytes\":%d,"
      a.ar_events a.ar_threads a.ar_vars a.ar_file_bytes;
    let side name (s : arena_side) =
      add
        "\"%s\":{\"seconds\":%.6f,\"events_per_sec\":%.1f,\"events_fed\":%d,\"allocated_mwords\":%.3f}"
        name s.ar_seconds s.ar_eps s.ar_events_fed s.ar_alloc_mwords
    in
    side "boxed" a.ar_boxed;
    add ",";
    side "packed" a.ar_packed;
    add
      ",\"speedup\":%.3f,\"alloc_reduction\":%.1f,\"verdicts_match\":%b,\"reports_match\":%b}"
      a.ar_speedup a.ar_alloc_reduction a.ar_verdicts_match a.ar_reports_match);
  add ",\"shards\":";
  (match !json_shards with
  | [] -> add "null"
  | cases ->
    add "{\"cases\":[";
    sep_list
      (fun (c : shard_case) ->
        add
          "{\"threads\":%d,\"events\":%d,\"sequential\":{\"seconds\":%.6f,\"events_per_sec\":%.1f},\"runs\":["
          c.sc_threads c.sc_events c.sc_seq_seconds c.sc_seq_eps;
        sep_list
          (fun (r : shard_run) ->
            add
              "{\"shards\":%d,\"seconds\":%.6f,\"events_per_sec\":%.1f,\"speedup\":%.3f,\"chunks\":%d,\"quiescent_cuts\":%d,\"seamed_cuts\":%d,\"repaired_events\":%d,\"repair_fraction\":%.4f,\"tainted_events\":%d,\"utilization\":["
              r.sr_shards r.sr_seconds r.sr_eps r.sr_speedup r.sr_chunks
              r.sr_quiescent r.sr_seamed r.sr_repaired r.sr_repair_fraction
              r.sr_tainted;
            sep_list (fun u -> add "%.3f" u) (Array.to_list r.sr_utilization);
            add "],\"verdicts_match\":%b,\"reports_match\":%b}"
              r.sr_verdicts_match r.sr_reports_match)
          c.sc_runs;
        add "]}")
      cases;
    add "]}");
  add ",\"scheduler\":";
  (match !json_scheduler with
  | None -> add "null"
  | Some s ->
    add
      "{\"threads\":%d,\"events\":%d,\"domains\":%d,\"sequential\":{\"seconds\":%.6f,\"events_per_sec\":%.1f},"
      s.sd_threads s.sd_events s.sd_domains s.sd_seq_seconds s.sd_seq_eps;
    let side name (x : sched_side) extra =
      add
        "\"%s\":{\"seconds\":%.6f,\"events_per_sec\":%.1f,\"speedup\":%.3f,%s\"verdicts_match\":%b,\"reports_match\":%b}"
        name x.ss_seconds x.ss_eps x.ss_speedup extra x.ss_verdicts_match
        x.ss_reports_match
    in
    side "static" s.sd_static "";
    add ",";
    let steal_extra =
      let util =
        String.concat ","
          (Array.to_list
             (Array.map (Printf.sprintf "%.3f") s.sd_utilization))
      in
      Printf.sprintf
        "\"chunks\":%d,\"steals\":%d,\"failed_steals\":%d,\"injected\":%d,\"utilization\":[%s],"
        s.sd_chunks s.sd_steals s.sd_failed_steals s.sd_injected util
    in
    side "steal" s.sd_steal steal_extra;
    add ",\"steal_vs_static\":%.3f}" s.sd_steal_vs_static);
  add ",\"observability\":";
  (match !json_observability with
  | None -> add "null"
  | Some o ->
    add
      "{\"exporter\":{\"events\":%d,\"baseline_events_per_sec\":%.1f,\"scraped_events_per_sec\":%.1f,\"overhead_pct\":%.2f,\"scrapes\":%d,\"scrapes_valid\":%b},"
      o.ob_events o.ob_base_eps o.ob_scraped_eps o.ob_overhead_pct o.ob_scrapes
      o.ob_scrapes_valid;
    add "\"flight\":{\"events\":%d,\"verdicts_match\":%b,\"windows\":["
      o.ob_flight_events o.ob_flight_verdicts_match;
    sep_list
      (fun p ->
        add
          "{\"window\":%d,\"off_events_per_sec\":%.1f,\"on_events_per_sec\":%.1f,\"overhead_pct\":%.2f,\"slice_events\":%d,\"replayable\":%b,\"replay_matches\":%b}"
          p.fp_window p.fp_off_eps p.fp_on_eps p.fp_overhead_pct
          p.fp_slice_events p.fp_replayable p.fp_replay_matches)
      o.ob_probes;
    add "]}}");
  add "}";
  Buffer.add_char buf '\n';
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc buf);
  Format.fprintf fmt "@.wrote %s@." path

let () =
  parse_args ();
  Format.fprintf fmt
    "AeroDrome reproduction benchmarks (scale %.2f, timeout %.1fs, jobs %d)@."
    opts.scale opts.timeout opts.jobs;
  List.iter run_table opts.tables;
  if opts.ablation && opts.only = None then run_ablation ();
  if opts.scaling && opts.only = None then run_scaling ();
  if opts.micro && opts.only = None then run_micro ();
  if opts.parallel && opts.only = None then run_parallel ();
  if opts.telemetry && opts.only = None then run_telemetry ();
  if opts.reclaim && opts.only = None then run_reclaim ();
  if opts.prefilter && opts.only = None then run_prefilter ();
  if opts.arena && opts.only = None then run_arena ();
  if opts.shards && opts.only = None then run_shards ();
  if opts.scheduler && opts.only = None then run_scheduler ();
  if opts.observability && opts.only = None then run_observability ();
  Option.iter emit_json opts.json;
  Format.pp_print_flush fmt ()
