(* Benchmark harness: regenerates the paper's Table 1 and Table 2 (scaled),
   plus two ablations (checker variants; linear-vs-superlinear scaling) and
   a micro-benchmark of per-event throughput on Table-1-style workloads at
   high thread counts.

   With [--json FILE] the harness also emits a machine-readable summary
   (schema "aerodrome-bench/1": per-checker events/sec, Gc statistics) so
   committed BENCH_*.json files can track the performance trajectory.

   Usage: dune exec bench/main.exe -- [--table 1|2] [--scale F]
          [--timeout S] [--only NAME] [--no-micro] [--micro-fast] [--no-ablation]
          [--no-scaling] [--json FILE] [--markdown] *)

open Traces

let fmt = Format.std_formatter

type options = {
  mutable tables : int list;
  mutable scale : float;
  mutable timeout : float;
  mutable only : string option;
  mutable micro : bool;
  mutable ablation : bool;
  mutable scaling : bool;
  mutable markdown : bool;
  mutable json : string option;
  mutable micro_fast : bool;
}

let opts =
  {
    tables = [ 1; 2 ];
    scale = 1.0;
    timeout = 5.0;
    only = None;
    micro = true;
    ablation = true;
    scaling = true;
    markdown = false;
    json = None;
    micro_fast = false;
  }

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--table" :: n :: rest ->
      opts.tables <- [ int_of_string n ];
      go rest
    | "--scale" :: f :: rest ->
      opts.scale <- float_of_string f;
      go rest
    | "--timeout" :: s :: rest ->
      opts.timeout <- float_of_string s;
      go rest
    | "--only" :: name :: rest ->
      opts.only <- Some name;
      go rest
    | "--no-micro" :: rest ->
      opts.micro <- false;
      go rest
    | "--micro-fast" :: rest ->
      (* iteration aid: micro-benchmark the linear-time checker only *)
      opts.micro_fast <- true;
      go rest
    | "--no-ablation" :: rest ->
      opts.ablation <- false;
      go rest
    | "--no-scaling" :: rest ->
      opts.scaling <- false;
      go rest
    | "--markdown" :: rest ->
      opts.markdown <- true;
      go rest
    | "--json" :: file :: rest ->
      opts.json <- Some file;
      go rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv))

let aerodrome : Aerodrome.Checker.t = (module Aerodrome.Opt)
let velodrome : Aerodrome.Checker.t = (module Velodrome.Online)

(* The seed (pre-epoch) Algorithm 3, compiled into this binary so the
   epoch speedup is measured in-process on identical traces — two
   separate bench runs on a busy machine are not comparable. *)
let aerodrome_preepoch : Aerodrome.Checker.t = (module Reference.Reference_opt)

(* --- measurement records for the JSON emitter --- *)

type checker_sample = {
  cname : string;
  seconds : float;
  events_fed : int;
  events_per_sec : float;
  verdict : string;  (* "serializable" | "violation" | "timeout" *)
  allocated_mwords : float;  (* minor+major words allocated during the run *)
  top_heap_words : int;  (* Gc.quick_stat peak after the run *)
}

type sample_row = {
  rname : string;
  events : int;
  threads : int;
  locks : int;
  vars : int;
  samples : checker_sample list;
}

let json_tables : (int * sample_row list) list ref = ref []
let json_micro : sample_row list ref = ref []

let verdict_string (r : Analysis.Runner.result) =
  match r.Analysis.Runner.outcome with
  | Analysis.Runner.Timed_out -> "timeout"
  | Analysis.Runner.Verdict None -> "serializable"
  | Analysis.Runner.Verdict (Some _) -> "violation"

let finish_sample ~alloc_words (r : Analysis.Runner.result) =
  {
    cname = r.Analysis.Runner.checker;
    seconds = r.Analysis.Runner.seconds;
    events_fed = r.Analysis.Runner.events_fed;
    events_per_sec =
      float_of_int r.Analysis.Runner.events_fed /. max r.Analysis.Runner.seconds 1e-9;
    verdict = verdict_string r;
    allocated_mwords = alloc_words /. 1e6;
    top_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
  }

(* One timed run with Gc accounting.  [reps] > 1 keeps the fastest
   repetition (the steady-state number) but Gc figures from the first. *)
let sample ?(reps = 1) checker tr =
  let alloc0 = Gc.allocated_bytes () in
  let best = ref (Analysis.Runner.run ~timeout:opts.timeout checker tr) in
  let alloc1 = Gc.allocated_bytes () in
  for _ = 2 to reps do
    let r = Analysis.Runner.run ~timeout:opts.timeout checker tr in
    if r.Analysis.Runner.seconds < !best.Analysis.Runner.seconds then best := r
  done;
  finish_sample ~alloc_words:((alloc1 -. alloc0) /. 8.) !best

(* Interleaved repetitions of two checkers on the same trace, so that
   drifting machine load hits both equally: repetition k of either
   checker runs within milliseconds of the other's.  The ratio of the
   two fastest repetitions is the comparison a committed BENCH file
   should be read for. *)
let sample_pair ~reps c1 c2 tr =
  let run c = Analysis.Runner.run ~timeout:opts.timeout c tr in
  let alloc0 = Gc.allocated_bytes () in
  let best1 = ref (run c1) in
  let alloc1 = Gc.allocated_bytes () in
  let best2 = ref (run c2) in
  let alloc2 = Gc.allocated_bytes () in
  for _ = 2 to reps do
    let r1 = run c1 in
    if r1.Analysis.Runner.seconds < !best1.Analysis.Runner.seconds then
      best1 := r1;
    let r2 = run c2 in
    if r2.Analysis.Runner.seconds < !best2.Analysis.Runner.seconds then
      best2 := r2
  done;
  ( finish_sample ~alloc_words:((alloc1 -. alloc0) /. 8.) !best1,
    finish_sample ~alloc_words:((alloc2 -. alloc1) /. 8.) !best2 )

let sample_of_result (r : Analysis.Runner.result) =
  {
    cname = r.Analysis.Runner.checker;
    seconds = r.Analysis.Runner.seconds;
    events_fed = r.Analysis.Runner.events_fed;
    events_per_sec =
      float_of_int r.Analysis.Runner.events_fed /. max r.Analysis.Runner.seconds 1e-9;
    verdict = verdict_string r;
    allocated_mwords = 0.;
    top_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
  }

let row_of_trace name tr samples =
  {
    rname = name;
    events = Trace.length tr;
    threads = Trace.threads tr;
    locks = Trace.locks tr;
    vars = Trace.vars tr;
    samples;
  }

(* --- tables --- *)

let bench_profile (p : Workloads.Profile.t) =
  let tr = Workloads.Profile.generate ~scale:opts.scale p in
  let meta = Analysis.Metainfo.analyze tr in
  let v = Analysis.Runner.run ~timeout:opts.timeout velodrome tr in
  let a = Analysis.Runner.run ~timeout:opts.timeout aerodrome tr in
  (* Sanity: the verdict must match the profile's plan whenever the run
     completed. *)
  (match (a.outcome, Workloads.Profile.expected_violating p) with
  | Analysis.Runner.Verdict verdict, expected ->
    if Option.is_some verdict <> expected then
      Format.fprintf fmt
        "!! %s: AeroDrome verdict %s but the workload plan expects %s@."
        p.name
        (if Option.is_some verdict then "violating" else "serializable")
        (if expected then "violating" else "serializable")
  | Analysis.Runner.Timed_out, _ -> ());
  let row =
    row_of_trace p.name tr [ sample_of_result v; sample_of_result a ]
  in
  ( Analysis.Report.make_row ~name:p.name ~meta ~velodrome:v ~aerodrome:a
      ~timeout:opts.timeout ~paper:p.paper (),
    row )

let run_table n =
  let profiles =
    (if n = 1 then Workloads.Benchmarks.table1 else Workloads.Benchmarks.table2)
    |> List.filter (fun (p : Workloads.Profile.t) ->
           match opts.only with None -> true | Some name -> p.name = name)
  in
  if profiles <> [] then begin
    let pairs = List.map bench_profile profiles in
    let rows = List.map fst pairs in
    json_tables := !json_tables @ [ (n, List.map snd pairs) ];
    let title =
      if n = 1 then
        "Table 1: benchmarks with realistic atomicity specifications \
         (scaled reproduction)"
      else
        "Table 2: benchmarks with naive atomicity specifications (scaled \
         reproduction)"
    in
    Format.fprintf fmt "@.";
    if opts.markdown then Analysis.Report.render_markdown fmt ~title rows
    else begin
      Analysis.Report.render_comparison fmt ~title rows;
      Format.fprintf fmt
        "(events scaled from the paper's traces; shapes — who wins and \
         where Velodrome times out — are the reproduction target)@."
    end
  end

(* Ablation A: AeroDrome variants and Velodrome with/without GC. *)
let run_ablation () =
  let variants : (string * Aerodrome.Checker.t) list =
    [
      ("aerodrome-basic (Alg 1)", (module Aerodrome.Basic));
      ("aerodrome-reduced (Alg 2)", (module Aerodrome.Reduced));
      ("aerodrome (Alg 3)", (module Aerodrome.Opt));
      ("aerodrome slow-checks", Aerodrome.Opt.slow_checker);
      ("velodrome", velodrome);
      ("velodrome no-gc", Velodrome.Online.no_gc_checker);
      ("velodrome pearce-kelly", Velodrome.Online.pk_checker);
    ]
  in
  let workloads =
    [
      ( "independent 120K events",
        Workloads.Generator.generate
          {
            Workloads.Generator.default with
            events = int_of_float (120_000. *. opts.scale);
            threads = 8;
            locks = 8;
            vars = 50_000;
          } );
      ( "anchored 60K events",
        Workloads.Generator.generate
          {
            Workloads.Generator.default with
            events = int_of_float (60_000. *. opts.scale);
            threads = 8;
            locks = 4;
            vars = 30_000;
            shape = Workloads.Generator.Anchored;
          } );
    ]
  in
  Format.fprintf fmt
    "@.Ablation A: checker variants (times; serializable workloads so every \
     checker scans the full trace)@.";
  List.iter
    (fun (wname, tr) ->
      Format.fprintf fmt "  workload: %s (%d events)@." wname (Trace.length tr);
      List.iter
        (fun (vname, checker) ->
          let r = Analysis.Runner.run ~timeout:opts.timeout checker tr in
          let cell =
            match r.Analysis.Runner.outcome with
            | Analysis.Runner.Timed_out -> "TO"
            | Analysis.Runner.Verdict None ->
              Printf.sprintf "%8.3fs" r.seconds
            | Analysis.Runner.Verdict (Some _) ->
              Printf.sprintf "%8.3fs (violation?!)" r.seconds
          in
          Format.fprintf fmt "    %-28s %s@." vname cell)
        variants)
    workloads

(* Ablation B: runtime growth with trace length — AeroDrome stays linear,
   Velodrome grows superlinearly on the anchored shape. *)
let run_scaling () =
  let sizes =
    List.map
      (fun n -> int_of_float (float_of_int n *. opts.scale))
      [ 15_000; 30_000; 60_000; 120_000 ]
  in
  let config =
    {
      Workloads.Generator.default with
      threads = 8;
      locks = 4;
      vars = 80_000;
      shape = Workloads.Generator.Anchored;
    }
  in
  Format.fprintf fmt
    "@.Ablation B: scaling on the anchored shape (serializable traces)@.";
  Format.fprintf fmt "  %10s  %12s %14s  %12s %14s  %12s %14s@." "events"
    "aerodrome" "(ns/event)" "velodrome" "(ns/event)" "velodrome-pk"
    "(ns/event)";
  List.iter
    (fun (n, tr) ->
      let a = Analysis.Runner.run ~timeout:opts.timeout aerodrome tr in
      let v = Analysis.Runner.run ~timeout:opts.timeout velodrome tr in
      let p =
        Analysis.Runner.run ~timeout:opts.timeout Velodrome.Online.pk_checker
          tr
      in
      let cell (r : Analysis.Runner.result) =
        match r.outcome with
        | Analysis.Runner.Timed_out -> ("TO", "-")
        | Analysis.Runner.Verdict _ ->
          ( Printf.sprintf "%.3fs" r.seconds,
            Printf.sprintf "%.0f"
              (r.seconds *. 1e9 /. float_of_int (max r.events_fed 1)) )
      in
      let at, an = cell a and vt, vn = cell v and pt, pn = cell p in
      Format.fprintf fmt "  %10d  %12s %14s  %12s %14s  %12s %14s@."
        (Trace.length tr) at an vt vn pt pn;
      ignore n)
    (Workloads.Generator.scaling ~config sizes)

(* Micro-benchmark: per-event throughput of the streaming checkers on
   Table-1-style workloads at T >= 8 threads (the regime the paper's large
   logs live in: lusearch T=14, sunflow T=16, pmd T=13, tsp T=9).  The
   workload plan is forced to Atomic so every checker scans the full trace.

   Each checker gets an event budget matched to its speed: the linear-time
   checker runs a 400K-event trace (sub-100ms runs are dominated by timer
   and scheduler noise), the superlinear ones a 50K prefix-equivalent of
   the same configuration.  Throughput numbers are per-checker, so the
   budgets are directly comparable; the fastest repetition is reported. *)
let micro_events_fast = 400_000
let micro_events_slow = 50_000

let micro_workloads () =
  let styled name =
    match Workloads.Benchmarks.find name with
    | None -> None
    | Some p ->
      let gen events =
        Workloads.Generator.generate
          {
            p.Workloads.Profile.config with
            Workloads.Generator.events;
            plan = Workloads.Generator.Atomic;
          }
      in
      Some (name ^ "-style", gen micro_events_fast, gen micro_events_slow)
  in
  List.filter_map styled [ "lusearch"; "sunflow"; "pmd"; "tsp" ]

let run_micro () =
  (* name, checker, repetitions (all on the slow trace; the fast checker
     and its pre-epoch baseline are sampled as an interleaved pair on the
     large trace above) *)
  let slow_checkers : (string * Aerodrome.Checker.t * int) list =
    if opts.micro_fast then []
    else
      [
        ("aerodrome-reduced", (module Aerodrome.Reduced), 3);
        ("aerodrome-basic", (module Aerodrome.Basic), 3);
        ("velodrome", velodrome, 1);
      ]
  in
  Format.fprintf fmt
    "@.Micro-benchmark: events/sec on Table-1-style workloads at T >= 8 \
     (best of interleaved reps)@.";
  List.iter
    (fun (wname, tr_fast, tr_slow) ->
      Format.fprintf fmt "  workload: %s (%d events, %d threads, %d vars)@."
        wname (Trace.length tr_fast) (Trace.threads tr_fast)
        (Trace.vars tr_fast);
      let print_sample ?speedup s =
        Format.fprintf fmt "    %-22s %10.1f Kev/s  %8.1f ns/event  %s%s@."
          s.cname
          (s.events_per_sec /. 1e3)
          (1e9 /. max s.events_per_sec 1.)
          (match speedup with
          | None -> ""
          | Some r -> Printf.sprintf "%.2fx vs pre-epoch  " r)
          (if s.verdict = "serializable" then "" else "[" ^ s.verdict ^ "]")
      in
      let s_epoch, s_base =
        sample_pair ~reps:7 aerodrome aerodrome_preepoch tr_fast
      in
      print_sample ~speedup:(s_epoch.events_per_sec /. s_base.events_per_sec)
        s_epoch;
      print_sample s_base;
      let slow_samples =
        List.map
          (fun (_, checker, reps) ->
            let s = sample ~reps checker tr_slow in
            print_sample s;
            s)
          slow_checkers
      in
      json_micro :=
        !json_micro
        @ [ row_of_trace wname tr_fast (s_epoch :: s_base :: slow_samples) ])
    (micro_workloads ())

(* --- JSON emitter (schema "aerodrome-bench/1") --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let emit_json path =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sep_list f = function
    | [] -> ()
    | x :: xs ->
      f x;
      List.iter
        (fun x ->
          add ",";
          f x)
        xs
  in
  let emit_sample (s : checker_sample) =
    add
      "{\"name\":\"%s\",\"seconds\":%.6f,\"events_fed\":%d,\"events_per_sec\":%.1f,\"verdict\":\"%s\",\"allocated_mwords\":%.3f,\"top_heap_words\":%d}"
      (json_escape s.cname) s.seconds s.events_fed s.events_per_sec
      (json_escape s.verdict) s.allocated_mwords s.top_heap_words
  in
  let emit_row (r : sample_row) =
    add "{\"name\":\"%s\",\"events\":%d,\"threads\":%d,\"locks\":%d,\"vars\":%d,\"checkers\":["
      (json_escape r.rname) r.events r.threads r.locks r.vars;
    sep_list emit_sample r.samples;
    add "]}"
  in
  add "{\"schema\":\"aerodrome-bench/1\",";
  add "\"scale\":%g,\"timeout\":%g," opts.scale opts.timeout;
  add "\"tables\":[";
  sep_list
    (fun (n, rows) ->
      add "{\"table\":%d,\"rows\":[" n;
      sep_list emit_row rows;
      add "]}")
    !json_tables;
  add "],\"micro\":[";
  sep_list emit_row !json_micro;
  add "]}";
  Buffer.add_char buf '\n';
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc buf);
  Format.fprintf fmt "@.wrote %s@." path

let () =
  parse_args ();
  Format.fprintf fmt
    "AeroDrome reproduction benchmarks (scale %.2f, timeout %.1fs)@."
    opts.scale opts.timeout;
  List.iter run_table opts.tables;
  if opts.ablation && opts.only = None then run_ablation ();
  if opts.scaling && opts.only = None then run_scaling ();
  if opts.micro && opts.only = None then run_micro ();
  Option.iter emit_json opts.json;
  Format.pp_print_flush fmt ()
