(* Regression gate over two bench harness --json files.

   Reads an old and a new "aerodrome-bench/N" summary, extracts a set of
   named scalar indicators from each — throughput figures (higher is
   better), peak live memory (lower is better), the sharded repair
   fraction (lower is better) — and compares every indicator present in
   *both* files against a per-kind threshold.  Indicators only one side
   carries (sections toggled off, or a schema that predates them) are
   skipped, so the gate works across schema versions: it compares the
   overlap, never the shape.  Scale-dependent indicators (peak live
   words) additionally guard on an equal event count and are skipped
   when the two runs measured different workload sizes.

   Exits 0 when nothing regressed, 1 on any regression, 2 on usage or
   I/O errors.  Thresholds are deliberately loose by default — checked-in
   BENCH files come from best-of-N runs on similar but not identical
   machines — and can be tightened per invocation.

   Usage: compare [--throughput-tol PCT] [--memory-tol PCT]
                  [--repair-tol FRAC] (OLD.json NEW.json | --glob PATTERN)

   With --glob, PATTERN's basename may contain * and ? wildcards; the
   lexicographically newest two matches are compared (the repo's
   BENCH_<ISO-date>_<tag>.json naming makes lexicographic =
   chronological per day). *)

open Obs.Json

let throughput_tol = ref 40.0 (* max relative throughput drop, pct *)

(* peak_live_words is a GC high-water mark net of a settled baseline;
   identical code re-measured moves it by tens of percent as major-heap
   growth lands differently.  The gate only needs to catch reclamation
   breaking outright — peak roughly doubles — so the threshold sits
   between observed noise (~40%) and that failure (~85%+). *)
let memory_tol = ref 75.0 (* max relative peak_live_words growth, pct *)
let repair_tol = ref 0.10 (* max absolute repair_fraction growth *)

type kind =
  | Higher_better of float ref (* relative tolerance, pct *)
  | Lower_better of float ref (* relative tolerance, pct *)
  | Lower_better_abs of float ref (* absolute tolerance *)

type indicator = {
  label : string;
  value : float;
  kind : kind;
  guard : float option;
      (* a comparability key (event count): compare only when both
         sides measured the same workload size *)
}

(* --- indicator extraction: total, never raises on shape mismatches --- *)

let num j key =
  match member key j with
  | Some (Num f) -> Some f
  | _ -> None

let str j key =
  match member key j with
  | Some (Str s) -> Some s
  | _ -> None

let obj j key = member key j

let list j key =
  match member key j with
  | Some (List l) -> Some l
  | _ -> None

let geomean = function
  | [] -> None
  | xs ->
    let logs = List.map (fun x -> log (Float.max x 1e-9)) xs in
    Some (exp (List.fold_left ( +. ) 0. logs /. float_of_int (List.length logs)))

let extract (doc : t) : indicator list =
  let acc = ref [] in
  let add label value kind guard = acc := { label; value; kind; guard } :: !acc in
  (* tables: one geomean per checker name over non-timeout rows *)
  (match list doc "tables" with
  | None -> ()
  | Some tables ->
    let by_checker = Hashtbl.create 4 in
    List.iter
      (fun t ->
        match list t "rows" with
        | None -> ()
        | Some rows ->
          List.iter
            (fun r ->
              match list r "checkers" with
              | None -> ()
              | Some cs ->
                List.iter
                  (fun c ->
                    match (str c "name", str c "verdict", num c "events_per_sec") with
                    | Some name, Some verdict, Some eps
                      when verdict <> "timeout" && verdict <> "n/a" && eps > 0. ->
                      Hashtbl.replace by_checker name
                        (eps :: Option.value ~default:[] (Hashtbl.find_opt by_checker name))
                    | _ -> ())
                  cs)
            rows)
      tables;
    Hashtbl.iter
      (fun name epss ->
        match geomean epss with
        | Some g ->
          add
            (Printf.sprintf "tables: %s events/sec (geomean of %d)" name
               (List.length epss))
            g
            (Higher_better throughput_tol)
            None
        | None -> ())
      by_checker);
  (* micro rows: per row+checker throughput *)
  (match list doc "micro" with
  | None -> ()
  | Some rows ->
    List.iter
      (fun r ->
        match (str r "name", list r "checkers") with
        | Some rname, Some cs ->
          List.iter
            (fun c ->
              match (str c "name", num c "events_per_sec") with
              | Some cname, Some eps when eps > 0. ->
                add
                  (Printf.sprintf "micro: %s/%s events/sec" rname cname)
                  eps
                  (Higher_better throughput_tol)
                  None
              | _ -> ())
            cs
        | _ -> ())
      rows);
  (* parallel corpus fan-out: throughput per jobs count *)
  (match obj doc "parallel" with
  | Some p -> (
    match obj p "corpus" with
    | Some corpus -> (
      match list corpus "runs" with
      | Some runs ->
        List.iter
          (fun r ->
            match (num r "jobs", num r "events_per_sec") with
            | Some jobs, Some eps when eps > 0. ->
              add
                (Printf.sprintf "parallel: corpus jobs=%.0f events/sec" jobs)
                eps
                (Higher_better throughput_tol)
                None
            | _ -> ())
          runs
      | None -> ())
    | None -> ())
  | None -> ());
  (* telemetry: instrumented throughput *)
  (match obj doc "telemetry" with
  | Some t -> (
    match num t "enabled_events_per_sec" with
    | Some eps when eps > 0. ->
      add "telemetry: enabled events/sec" eps (Higher_better throughput_tol) None
    | _ -> ())
  | None -> ());
  (* reclaim: throughput and — the point of the section — peak memory *)
  (match obj doc "reclaim" with
  | Some rc ->
    let events = num rc "events" in
    (match obj rc "on" with
    | Some on_ ->
      (match num on_ "events_per_sec" with
      | Some eps when eps > 0. ->
        add "reclaim: on events/sec" eps (Higher_better throughput_tol) None
      | _ -> ());
      (match num on_ "peak_live_words" with
      | Some peak when peak > 0. ->
        add "reclaim: on peak_live_words" peak (Lower_better memory_tol) events
      | _ -> ())
    | None -> ())
  | None -> ());
  (* prefilter / arena: the optimized side's throughput *)
  (match obj doc "prefilter" with
  | Some p -> (
    match obj p "exact" with
    | Some ex -> (
      match num ex "events_per_sec" with
      | Some eps when eps > 0. ->
        add "prefilter: exact events/sec" eps (Higher_better throughput_tol) None
      | _ -> ())
    | None -> ())
  | None -> ());
  (match obj doc "arena" with
  | Some a -> (
    match obj a "packed" with
    | Some pk -> (
      match num pk "events_per_sec" with
      | Some eps when eps > 0. ->
        add "arena: packed events/sec" eps (Higher_better throughput_tol) None
      | _ -> ())
    | None -> ())
  | None -> ());
  (* shards: best sharded throughput and worst repair fraction *)
  (match obj doc "shards" with
  | Some s -> (
    match list s "cases" with
    | Some cases ->
      let best_eps = ref 0. in
      let worst_repair = ref nan in
      let total_events = ref 0. in
      List.iter
        (fun c ->
          (match num c "events" with
          | Some e -> total_events := !total_events +. e
          | None -> ());
          match list c "runs" with
          | None -> ()
          | Some runs ->
            List.iter
              (fun r ->
                (match num r "events_per_sec" with
                | Some eps -> if eps > !best_eps then best_eps := eps
                | None -> ());
                match num r "repair_fraction" with
                | Some f ->
                  if Float.is_nan !worst_repair || f > !worst_repair then
                    worst_repair := f
                | None -> ())
              runs)
        cases;
      if !best_eps > 0. then
        add "shards: best events/sec" !best_eps (Higher_better throughput_tol)
          None;
      (* how wide a cut's repair window is depends on where the
         planner's cuts land, which depends on the trace — only
         comparable between runs of the same workload size *)
      if not (Float.is_nan !worst_repair) then
        add "shards: max repair_fraction" !worst_repair
          (Lower_better_abs repair_tol) (Some !total_events)
    | None -> ())
  | None -> ());
  (* scheduler: steal-side throughput, plus the steal-vs-static ratio.
     The ratio is what the section exists to defend — stealing falling
     behind the static split on the adversarial workload is a scheduler
     regression even when absolute throughput moved with the machine.
     Both are trace-shape dependent, so guard on workload size. *)
  (match obj doc "scheduler" with
  | Some s ->
    let events = num s "events" in
    (match obj s "steal" with
    | Some st -> (
      match num st "events_per_sec" with
      | Some eps when eps > 0. ->
        add "scheduler: steal events/sec" eps (Higher_better throughput_tol)
          None
      | _ -> ())
    | None -> ());
    (match num s "steal_vs_static" with
    | Some r when r > 0. ->
      add "scheduler: steal_vs_static ratio" r (Higher_better throughput_tol)
        events
    | _ -> ())
  | None -> ());
  (* observability: live-scraped throughput *)
  (match obj doc "observability" with
  | Some o -> (
    match obj o "exporter" with
    | Some ex -> (
      match num ex "scraped_events_per_sec" with
      | Some eps when eps > 0. ->
        add "observability: scraped events/sec" eps
          (Higher_better throughput_tol) None
      | _ -> ())
    | None -> ())
  | None -> ());
  List.rev !acc

(* --- comparison --- *)

type outcome = Ok_same | Regressed

let compare_indicator (old_i : indicator) (new_i : indicator) =
  let pct_change = (new_i.value -. old_i.value) /. Float.max (Float.abs old_i.value) 1e-9 *. 100. in
  let regressed =
    match new_i.kind with
    | Higher_better tol -> new_i.value < old_i.value *. (1. -. (!tol /. 100.))
    | Lower_better tol -> new_i.value > old_i.value *. (1. +. (!tol /. 100.))
    | Lower_better_abs tol -> new_i.value > old_i.value +. !tol
  in
  ((if regressed then Regressed else Ok_same), pct_change)

let run old_path new_path =
  let read path =
    let contents =
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error msg ->
        Printf.eprintf "compare: %s\n" msg;
        exit 2
    in
    match parse contents with
    | Ok doc -> doc
    | Error msg ->
      Printf.eprintf "compare: %s: %s\n" path msg;
      exit 2
  in
  let old_doc = read old_path and new_doc = read new_path in
  let schema doc = Option.value ~default:"?" (str doc "schema") in
  Printf.printf "comparing %s (%s)\n  against %s (%s)\n" new_path
    (schema new_doc) old_path (schema old_doc);
  let old_inds = extract old_doc and new_inds = extract new_doc in
  let compared = ref 0 and regressions = ref 0 and skipped_guard = ref 0 in
  List.iter
    (fun n ->
      match List.find_opt (fun o -> o.label = n.label) old_inds with
      | None -> ()
      | Some o ->
        if o.guard <> n.guard then incr skipped_guard
        else begin
          incr compared;
          let outcome, pct = compare_indicator o n in
          let mark =
            match outcome with
            | Ok_same -> "  ok  "
            | Regressed ->
              incr regressions;
              "  REGRESSION"
          in
          Printf.printf "%s  %-42s %14.1f -> %14.1f  (%+.1f%%)\n" mark n.label
            o.value n.value pct
        end)
    new_inds;
  if !skipped_guard > 0 then
    Printf.printf "  (%d indicator(s) skipped: workload sizes differ)\n"
      !skipped_guard;
  if !compared = 0 then begin
    Printf.eprintf "compare: no overlapping indicators between the two files\n";
    exit 2
  end;
  if !regressions > 0 then begin
    Printf.printf "%d regression(s) over %d compared indicator(s)\n"
      !regressions !compared;
    exit 1
  end;
  Printf.printf "no regressions over %d compared indicator(s)\n" !compared

(* --- glob: basename wildcards only, lexicographic newest pair --- *)

let fnmatch pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go pi si =
    if pi = np then si = ns
    else
      match pattern.[pi] with
      | '*' -> go (pi + 1) si || (si < ns && go pi (si + 1))
      | '?' -> si < ns && go (pi + 1) (si + 1)
      | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
  in
  go 0 0

let newest_pair pattern =
  let dir = Filename.dirname pattern in
  let base = Filename.basename pattern in
  let entries =
    try Sys.readdir dir
    with Sys_error msg ->
      Printf.eprintf "compare: %s\n" msg;
      exit 2
  in
  let matches =
    Array.to_list entries
    |> List.filter (fnmatch base)
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  match List.rev matches with
  | newest :: previous :: _ -> (previous, newest)
  | _ ->
    Printf.eprintf "compare: fewer than two files match %s\n" pattern;
    exit 2

let usage () =
  prerr_endline
    "usage: compare [--throughput-tol PCT] [--memory-tol PCT] [--repair-tol \
     FRAC] (OLD.json NEW.json | --glob PATTERN)";
  exit 2

let () =
  let rec parse_args paths = function
    | [] -> List.rev paths
    | "--throughput-tol" :: v :: rest ->
      throughput_tol := float_of_string v;
      parse_args paths rest
    | "--memory-tol" :: v :: rest ->
      memory_tol := float_of_string v;
      parse_args paths rest
    | "--repair-tol" :: v :: rest ->
      repair_tol := float_of_string v;
      parse_args paths rest
    | "--glob" :: pattern :: rest ->
      let prev, newest = newest_pair pattern in
      parse_args (newest :: prev :: paths) rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      Printf.eprintf "compare: unknown option %s\n" arg;
      usage ()
    | path :: rest -> parse_args (path :: paths) rest
  in
  match parse_args [] (List.tl (Array.to_list Sys.argv)) with
  | [ old_path; new_path ] -> run old_path new_path
  | _ -> usage ()
