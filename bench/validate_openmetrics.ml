(* OpenMetrics exposition validator: reads a scraped /metrics body from
   a file (or stdin with no argument / "-") and runs it through the
   exporter's own strict parser — family structure, # TYPE/# HELP
   ordering, label syntax, histogram bucket monotonicity, the # EOF
   terminator.  Prints "ok" and exits 0 on a clean exposition, prints
   the diagnostic and exits 1 otherwise.  CI's scrape-smoke job pipes a
   live curl through this so the wire format cannot rot. *)

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let () =
  let body =
    match Sys.argv with
    | [| _ |] | [| _; "-" |] -> read_all stdin
    | [| _; path |] -> (
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> read_all ic)
      with Sys_error msg ->
        Printf.eprintf "validate_openmetrics: %s\n" msg;
        exit 2)
    | _ ->
      prerr_endline "usage: validate_openmetrics [FILE|-]";
      exit 2
  in
  match Obs.Exporter.validate body with
  | Ok () -> print_endline "ok"
  | Error msg ->
    Printf.eprintf "invalid exposition: %s\n" msg;
    exit 1
