The bench harness emits machine-readable results with --json; the file
must satisfy the aerodrome-bench/3 schema (validate_json exits non-zero
and prints a diagnostic otherwise).

  $ ../bench/main.exe --table 1 --scale 0.05 --timeout 1 --no-micro \
  >   --no-ablation --no-scaling --json bench.json > /dev/null 2>&1
  $ ../bench/validate_json.exe bench.json
  ok

The multicore section ships a parallel summary (corpus fan-out wall
clock + speedup, pipelined ingestion) and the sequential/parallel
verdict cross-check; a divergence is a schema error by design:

  $ ../bench/main.exe --table 2 --scale 0.05 --timeout 1 --no-micro \
  >   --no-ablation --no-scaling --jobs 2 --json jobs.json > /dev/null 2>&1
  $ ../bench/validate_json.exe jobs.json
  ok

The telemetry section (instrumented-vs-uninstrumented throughput and
the enabled run's metric snapshot) can be disabled; the schema treats
it as nullable:

  $ ../bench/main.exe --table 1 --scale 0.05 --timeout 1 --no-micro \
  >   --no-ablation --no-scaling --no-parallel --no-telemetry \
  >   --json none.json > /dev/null 2>&1
  $ ../bench/validate_json.exe none.json
  ok

A missing file or a schema violation is rejected:

  $ echo '{"schema":"aerodrome-bench/2","scale":1,"timeout":1,"tables":[],"micro":[]}' > old.json
  $ ../bench/validate_json.exe old.json
  old.json: unknown schema "aerodrome-bench/2"
  [1]
  $ echo '{"schema":"aerodrome-bench/3","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null}' > bad.json
  $ ../bench/validate_json.exe bad.json
  bad.json: no tables and no micro results
  [1]

A telemetry section that lost its counter snapshot is rejected too:

  $ echo '{"schema":"aerodrome-bench/3","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":{"events":10,"disabled_events_per_sec":1,"enabled_events_per_sec":1,"overhead_pct":0,"metrics":{}}}' > notel.json
  $ ../bench/validate_json.exe notel.json
  notel.json: missing field "events.total"
  [1]
