The bench harness emits machine-readable results with --json; the file
must satisfy the aerodrome-bench/1 schema (validate_json exits non-zero
and prints a diagnostic otherwise).

  $ ../bench/main.exe --table 1 --scale 0.05 --timeout 1 --no-micro \
  >   --no-ablation --no-scaling --json bench.json > /dev/null 2>&1
  $ ../bench/validate_json.exe bench.json
  ok

A missing file or a schema violation is rejected:

  $ echo '{"schema":"aerodrome-bench/1","scale":1,"timeout":1,"tables":[],"micro":[]}' > bad.json
  $ ../bench/validate_json.exe bad.json
  bad.json: no tables and no micro results
  [1]
