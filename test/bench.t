The bench harness emits machine-readable results with --json; the file
must satisfy the aerodrome-bench/4 schema (validate_json exits non-zero
and prints a diagnostic otherwise).  The reclaim section — peak live
heap with and without last-use state reclamation — rides along by
default, and the validator enforces matching verdicts and a
non-increasing peak, so this run doubles as the memory smoke test:

  $ ../bench/main.exe --table 1 --scale 0.05 --timeout 1 --no-micro \
  >   --no-ablation --no-scaling --json bench.json > /dev/null 2>&1
  $ ../bench/validate_json.exe bench.json
  ok
  $ grep -c '"reclaim":{"events"' bench.json
  1

The multicore section ships a parallel summary (corpus fan-out wall
clock + speedup, pipelined ingestion) and the sequential/parallel
verdict cross-check; a divergence is a schema error by design:

  $ ../bench/main.exe --table 2 --scale 0.05 --timeout 1 --no-micro \
  >   --no-ablation --no-scaling --jobs 2 --json jobs.json > /dev/null 2>&1
  $ ../bench/validate_json.exe jobs.json
  ok

The telemetry and reclaim sections can be disabled; the schema treats
them as nullable:

  $ ../bench/main.exe --table 1 --scale 0.05 --timeout 1 --no-micro \
  >   --no-ablation --no-scaling --no-parallel --no-telemetry \
  >   --no-reclaim --json none.json > /dev/null 2>&1
  $ ../bench/validate_json.exe none.json
  ok
  $ grep -c '"reclaim":null' none.json
  1

A missing file, an outdated schema or a schema violation is rejected:

  $ echo '{"schema":"aerodrome-bench/2","scale":1,"timeout":1,"tables":[],"micro":[]}' > old.json
  $ ../bench/validate_json.exe old.json
  old.json: unknown schema "aerodrome-bench/2"
  [1]
  $ echo '{"schema":"aerodrome-bench/3","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null}' > prev.json
  $ ../bench/validate_json.exe prev.json
  prev.json: unknown schema "aerodrome-bench/3"
  [1]
  $ echo '{"schema":"aerodrome-bench/4","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null}' > bad.json
  $ ../bench/validate_json.exe bad.json
  bad.json: no tables and no micro results
  [1]

A telemetry section that lost its counter snapshot is rejected too:

  $ echo '{"schema":"aerodrome-bench/4","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":{"events":10,"disabled_events_per_sec":1,"enabled_events_per_sec":1,"overhead_pct":0,"metrics":{}},"reclaim":null}' > notel.json
  $ ../bench/validate_json.exe notel.json
  notel.json: missing field "events.total"
  [1]

So is a reclaim section whose verdicts diverged, or whose peak grew
with reclamation on:

  $ echo '{"schema":"aerodrome-bench/4","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":{"events":10,"threads":2,"vars":4,"off":{"seconds":0.1,"events_per_sec":100,"peak_live_words":1000},"on":{"seconds":0.1,"events_per_sec":100,"peak_live_words":500,"pool_hits":1,"pool_misses":1,"pool_hit_rate":0.5,"reclaimed_states":2},"peak_reduction_pct":50,"verdicts_match":false}}' > diverge.json
  $ ../bench/validate_json.exe diverge.json
  diverge.json: reclaim: verdicts diverged between reclaim modes
  [1]
  $ echo '{"schema":"aerodrome-bench/4","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":{"events":10,"threads":2,"vars":4,"off":{"seconds":0.1,"events_per_sec":100,"peak_live_words":1000},"on":{"seconds":0.1,"events_per_sec":100,"peak_live_words":2000,"pool_hits":1,"pool_misses":1,"pool_hit_rate":0.5,"reclaimed_states":2},"peak_reduction_pct":-100,"verdicts_match":true}}' > grew.json
  $ ../bench/validate_json.exe grew.json
  grew.json: reclaim: peak_live_words grew with reclamation on (2000 > 1000)
  [1]
