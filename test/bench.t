The bench harness emits machine-readable results with --json; the file
must satisfy the aerodrome-bench/7 schema (validate_json exits non-zero
and prints a diagnostic otherwise).  The reclaim section — peak live
heap with and without last-use state reclamation — the prefilter
section — checking throughput with the trace reduction off, exact, and
online — the arena section — boxed vs zero-copy packed ingestion
end to end, which also contributes the decode-only ingestion rows to
"micro" — and the shards section — sequential vs chunk-parallel
single-trace checking — ride along by default, and the validator
enforces matching verdicts on every axis, a non-increasing peak, a
non-growing reduction, a packed path that never allocates more than the
boxed reference, and sharded reports identical to sequential, so this
run doubles as the memory, reduction, ingestion and sharding smoke
test:

  $ ../bench/main.exe --table 1 --scale 0.05 --timeout 1 --no-micro \
  >   --no-ablation --no-scaling --json bench.json > /dev/null 2>&1
  $ ../bench/validate_json.exe bench.json
  ok
  $ grep -c '"reclaim":{"events"' bench.json
  1
  $ grep -c '"prefilter":{"events_in"' bench.json
  1
  $ grep -c '"arena":{"events"' bench.json
  1
  $ grep -c '"ingest-packed-mmap-cursor"' bench.json
  1
  $ grep -c '"shards":{"cases"' bench.json
  1

The multicore section ships a parallel summary (corpus fan-out wall
clock + speedup, pipelined ingestion) and the sequential/parallel
verdict cross-check; a divergence is a schema error by design:

  $ ../bench/main.exe --table 2 --scale 0.05 --timeout 1 --no-micro \
  >   --no-ablation --no-scaling --no-shards --jobs 2 --json jobs.json > /dev/null 2>&1
  $ ../bench/validate_json.exe jobs.json
  ok

The telemetry, reclaim, prefilter, arena and shards sections can be
disabled; the schema treats them as nullable:

  $ ../bench/main.exe --table 1 --scale 0.05 --timeout 1 --no-micro \
  >   --no-ablation --no-scaling --no-parallel --no-telemetry \
  >   --no-reclaim --no-prefilter --no-arena --no-shards \
  >   --json none.json > /dev/null 2>&1
  $ ../bench/validate_json.exe none.json
  ok
  $ grep -c '"reclaim":null' none.json
  1
  $ grep -c '"prefilter":null' none.json
  1
  $ grep -c '"arena":null' none.json
  1
  $ grep -c '"shards":null' none.json
  1

A missing file, an outdated schema or a schema violation is rejected:

  $ echo '{"schema":"aerodrome-bench/2","scale":1,"timeout":1,"tables":[],"micro":[]}' > old.json
  $ ../bench/validate_json.exe old.json
  old.json: unknown schema "aerodrome-bench/2"
  [1]
  $ echo '{"schema":"aerodrome-bench/6","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":null}' > prev.json
  $ ../bench/validate_json.exe prev.json
  prev.json: unknown schema "aerodrome-bench/6"
  [1]
  $ echo '{"schema":"aerodrome-bench/7","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":null,"shards":null}' > bad.json
  $ ../bench/validate_json.exe bad.json
  bad.json: no tables and no micro results
  [1]

A telemetry section that lost its counter snapshot is rejected too:

  $ echo '{"schema":"aerodrome-bench/7","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":{"events":10,"disabled_events_per_sec":1,"enabled_events_per_sec":1,"overhead_pct":0,"metrics":{}},"reclaim":null,"prefilter":null,"arena":null,"shards":null}' > notel.json
  $ ../bench/validate_json.exe notel.json
  notel.json: missing field "events.total"
  [1]

So is a reclaim section whose verdicts diverged, or whose peak grew
with reclamation on:

  $ echo '{"schema":"aerodrome-bench/7","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":{"events":10,"threads":2,"vars":4,"off":{"seconds":0.1,"events_per_sec":100,"peak_live_words":1000},"on":{"seconds":0.1,"events_per_sec":100,"peak_live_words":500,"pool_hits":1,"pool_misses":1,"pool_hit_rate":0.5,"reclaimed_states":2},"peak_reduction_pct":50,"verdicts_match":false},"prefilter":null,"arena":null,"shards":null}' > diverge.json
  $ ../bench/validate_json.exe diverge.json
  diverge.json: reclaim: verdicts diverged between reclaim modes
  [1]
  $ echo '{"schema":"aerodrome-bench/7","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":{"events":10,"threads":2,"vars":4,"off":{"seconds":0.1,"events_per_sec":100,"peak_live_words":1000},"on":{"seconds":0.1,"events_per_sec":100,"peak_live_words":2000,"pool_hits":1,"pool_misses":1,"pool_hit_rate":0.5,"reclaimed_states":2},"peak_reduction_pct":-100,"verdicts_match":true},"prefilter":null,"arena":null,"shards":null}' > grew.json
  $ ../bench/validate_json.exe grew.json
  grew.json: reclaim: peak_live_words grew with reclamation on (2000 > 1000)
  [1]

And a prefilter section whose verdicts diverged across filter modes,
or whose "reduction" grew the trace:

  $ echo '{"schema":"aerodrome-bench/7","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":{"events_in":100,"events_out":60,"threads":2,"vars":4,"elided":{"thread_local":20,"read_only":10,"redundant":5,"lock_local":5},"off":{"seconds":0.2,"events_per_sec":500,"events_fed":100},"exact":{"seconds":0.1,"events_per_sec":1000,"events_fed":60},"online":{"seconds":0.15,"events_per_sec":666,"events_fed":70},"speedup_exact":2,"speedup_online":1.33,"verdicts_match":false},"arena":null,"shards":null}' > pfdiverge.json
  $ ../bench/validate_json.exe pfdiverge.json
  pfdiverge.json: prefilter: verdicts diverged between filter modes
  [1]
  $ echo '{"schema":"aerodrome-bench/7","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":{"events_in":100,"events_out":120,"threads":2,"vars":4,"elided":{"thread_local":0,"read_only":0,"redundant":0,"lock_local":0},"off":{"seconds":0.2,"events_per_sec":500,"events_fed":100},"exact":{"seconds":0.1,"events_per_sec":1000,"events_fed":120},"online":{"seconds":0.15,"events_per_sec":666,"events_fed":100},"speedup_exact":2,"speedup_online":1.33,"verdicts_match":true},"arena":null,"shards":null}' > pfgrew.json
  $ ../bench/validate_json.exe pfgrew.json
  pfgrew.json: prefilter: events_out grew (120 > 100)
  [1]

And an arena section where the packed path's report diverged from the
boxed reference, or where "zero-copy" somehow allocated more:

  $ echo '{"schema":"aerodrome-bench/7","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":{"events":100,"threads":2,"vars":4,"file_bytes":300,"boxed":{"seconds":0.2,"events_per_sec":500,"events_fed":100,"allocated_mwords":1.5},"packed":{"seconds":0.1,"events_per_sec":1000,"events_fed":90,"allocated_mwords":0.01},"speedup":2,"alloc_reduction":150,"verdicts_match":true,"reports_match":false},"shards":null}' > ardiverge.json
  $ ../bench/validate_json.exe ardiverge.json
  ardiverge.json: arena: packed report diverged from boxed
  [1]
  $ echo '{"schema":"aerodrome-bench/7","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":{"events":100,"threads":2,"vars":4,"file_bytes":300,"boxed":{"seconds":0.2,"events_per_sec":500,"events_fed":100,"allocated_mwords":0.5},"packed":{"seconds":0.1,"events_per_sec":1000,"events_fed":100,"allocated_mwords":1.5},"speedup":2,"alloc_reduction":0.33,"verdicts_match":true,"reports_match":true},"shards":null}' > argrew.json
  $ ../bench/validate_json.exe argrew.json
  argrew.json: arena: packed path allocated more than boxed (1.500 > 0.500 Mwords)
  [1]

And a shards section whose report diverged from the sequential run, or
whose cut/replay accounting is inconsistent (replayed events can only
come from a rejected cut):

  $ echo '{"schema":"aerodrome-bench/7","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":null,"shards":{"cases":[{"threads":4,"events":100,"sequential":{"seconds":0.2,"events_per_sec":500},"runs":[{"shards":2,"seconds":0.1,"events_per_sec":1000,"speedup":2,"chunks":2,"cut_hits":1,"cut_misses":0,"replay_fraction":0,"utilization":[0.9,0.8],"verdicts_match":true,"reports_match":false}]}]}}' > shdiverge.json
  $ ../bench/validate_json.exe shdiverge.json
  shdiverge.json: shards.cases[0].runs[0]: sharded report diverged from sequential
  [1]
  $ echo '{"schema":"aerodrome-bench/7","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":null,"shards":{"cases":[{"threads":4,"events":100,"sequential":{"seconds":0.2,"events_per_sec":500},"runs":[{"shards":2,"seconds":0.1,"events_per_sec":1000,"speedup":2,"chunks":2,"cut_hits":1,"cut_misses":0,"replay_fraction":0.25,"utilization":[0.9,0.8],"verdicts_match":true,"reports_match":true}]}]}}' > shreplay.json
  $ ../bench/validate_json.exe shreplay.json
  shreplay.json: shards.cases[0].runs[0]: replayed events without a rejected cut
  [1]
