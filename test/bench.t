The bench harness emits machine-readable results with --json; the file
must satisfy the aerodrome-bench/10 schema (validate_json exits non-zero
and prints a diagnostic otherwise).  The reclaim section — peak live
heap with and without last-use state reclamation — the prefilter
section — checking throughput with the trace reduction off, exact, and
online — the arena section — boxed vs zero-copy packed ingestion
end to end, which also contributes the decode-only ingestion rows to
"micro" — the shards section — sequential vs chunk-parallel
single-trace checking — the scheduler section — static chunk plan vs
the work-stealing scheduler on the adversarial workload — and the
observability section — live OpenMetrics scraping overhead plus
flight-recorder overhead with witness-replay verification — ride along
by default, and the validator enforces matching verdicts on every
axis, a non-increasing peak, a non-growing reduction, a packed path
that never allocates more than the boxed reference, sharded and
scheduled reports identical to sequential, and validator-clean scrapes
with a reproduced witness replay, so this run doubles as the memory,
reduction, ingestion, sharding, scheduling and observability smoke
test:

  $ ../bench/main.exe --table 1 --scale 0.05 --timeout 1 --no-micro \
  >   --no-ablation --no-scaling --json bench.json > /dev/null 2>&1
  $ ../bench/validate_json.exe bench.json
  ok
  $ grep -c '"reclaim":{"events"' bench.json
  1
  $ grep -c '"prefilter":{"events_in"' bench.json
  1
  $ grep -c '"arena":{"events"' bench.json
  1
  $ grep -c '"ingest-packed-mmap-cursor"' bench.json
  1
  $ grep -c '"shards":{"cases"' bench.json
  1
  $ grep -c '"scheduler":{"threads"' bench.json
  1
  $ grep -c '"observability":{"exporter"' bench.json
  1

The multicore section ships a parallel summary (corpus fan-out wall
clock + speedup, pipelined ingestion) and the sequential/parallel
verdict cross-check; a divergence is a schema error by design:

  $ ../bench/main.exe --table 2 --scale 0.05 --timeout 1 --no-micro \
  >   --no-ablation --no-scaling --no-shards --no-scheduler \
  >   --no-observability --jobs 2 --json jobs.json > /dev/null 2>&1
  $ ../bench/validate_json.exe jobs.json
  ok

The telemetry, reclaim, prefilter, arena, shards, scheduler and
observability sections can be disabled; the schema treats them as
nullable:

  $ ../bench/main.exe --table 1 --scale 0.05 --timeout 1 --no-micro \
  >   --no-ablation --no-scaling --no-parallel --no-telemetry \
  >   --no-reclaim --no-prefilter --no-arena --no-shards \
  >   --no-scheduler --no-observability --json none.json > /dev/null 2>&1
  $ ../bench/validate_json.exe none.json
  ok
  $ grep -c '"reclaim":null' none.json
  1
  $ grep -c '"prefilter":null' none.json
  1
  $ grep -c '"arena":null' none.json
  1
  $ grep -c '"shards":null' none.json
  1
  $ grep -c '"scheduler":null' none.json
  1
  $ grep -c '"observability":null' none.json
  1

A missing file, an outdated schema or a schema violation is rejected:

  $ echo '{"schema":"aerodrome-bench/2","scale":1,"timeout":1,"tables":[],"micro":[]}' > old.json
  $ ../bench/validate_json.exe old.json
  old.json: unknown schema "aerodrome-bench/2"
  [1]
  $ echo '{"schema":"aerodrome-bench/9","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":null,"shards":null,"scheduler":null,"observability":null}' > prev.json
  $ ../bench/validate_json.exe prev.json
  prev.json: unknown schema "aerodrome-bench/9"
  [1]
  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":null,"shards":null,"scheduler":null,"observability":null}' > bad.json
  $ ../bench/validate_json.exe bad.json
  bad.json: no tables and no micro results
  [1]

A telemetry section that lost its counter snapshot is rejected too:

  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":{"events":10,"disabled_events_per_sec":1,"enabled_events_per_sec":1,"overhead_pct":0,"metrics":{}},"reclaim":null,"prefilter":null,"arena":null,"shards":null,"scheduler":null,"observability":null}' > notel.json
  $ ../bench/validate_json.exe notel.json
  notel.json: missing field "events.total"
  [1]

So is a reclaim section whose verdicts diverged, or whose peak grew
with reclamation on:

  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":{"events":10,"threads":2,"vars":4,"off":{"seconds":0.1,"events_per_sec":100,"peak_live_words":1000},"on":{"seconds":0.1,"events_per_sec":100,"peak_live_words":500,"pool_hits":1,"pool_misses":1,"pool_hit_rate":0.5,"reclaimed_states":2},"peak_reduction_pct":50,"verdicts_match":false},"prefilter":null,"arena":null,"shards":null,"scheduler":null,"observability":null}' > diverge.json
  $ ../bench/validate_json.exe diverge.json
  diverge.json: reclaim: verdicts diverged between reclaim modes
  [1]
  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":{"events":10,"threads":2,"vars":4,"off":{"seconds":0.1,"events_per_sec":100,"peak_live_words":1000},"on":{"seconds":0.1,"events_per_sec":100,"peak_live_words":2000,"pool_hits":1,"pool_misses":1,"pool_hit_rate":0.5,"reclaimed_states":2},"peak_reduction_pct":-100,"verdicts_match":true},"prefilter":null,"arena":null,"shards":null,"scheduler":null,"observability":null}' > grew.json
  $ ../bench/validate_json.exe grew.json
  grew.json: reclaim: peak_live_words grew with reclamation on (2000 > 1000)
  [1]

And a prefilter section whose verdicts diverged across filter modes,
or whose "reduction" grew the trace:

  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":{"events_in":100,"events_out":60,"threads":2,"vars":4,"elided":{"thread_local":20,"read_only":10,"redundant":5,"lock_local":5},"off":{"seconds":0.2,"events_per_sec":500,"events_fed":100},"exact":{"seconds":0.1,"events_per_sec":1000,"events_fed":60},"online":{"seconds":0.15,"events_per_sec":666,"events_fed":70},"speedup_exact":2,"speedup_online":1.33,"verdicts_match":false},"arena":null,"shards":null,"scheduler":null,"observability":null}' > pfdiverge.json
  $ ../bench/validate_json.exe pfdiverge.json
  pfdiverge.json: prefilter: verdicts diverged between filter modes
  [1]
  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":{"events_in":100,"events_out":120,"threads":2,"vars":4,"elided":{"thread_local":0,"read_only":0,"redundant":0,"lock_local":0},"off":{"seconds":0.2,"events_per_sec":500,"events_fed":100},"exact":{"seconds":0.1,"events_per_sec":1000,"events_fed":120},"online":{"seconds":0.15,"events_per_sec":666,"events_fed":100},"speedup_exact":2,"speedup_online":1.33,"verdicts_match":true},"arena":null,"shards":null,"scheduler":null,"observability":null}' > pfgrew.json
  $ ../bench/validate_json.exe pfgrew.json
  pfgrew.json: prefilter: events_out grew (120 > 100)
  [1]

And an arena section where the packed path's report diverged from the
boxed reference, or where "zero-copy" somehow allocated more:

  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":{"events":100,"threads":2,"vars":4,"file_bytes":300,"boxed":{"seconds":0.2,"events_per_sec":500,"events_fed":100,"allocated_mwords":1.5},"packed":{"seconds":0.1,"events_per_sec":1000,"events_fed":90,"allocated_mwords":0.01},"speedup":2,"alloc_reduction":150,"verdicts_match":true,"reports_match":false},"shards":null,"scheduler":null,"observability":null}' > ardiverge.json
  $ ../bench/validate_json.exe ardiverge.json
  ardiverge.json: arena: packed report diverged from boxed
  [1]
  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":{"events":100,"threads":2,"vars":4,"file_bytes":300,"boxed":{"seconds":0.2,"events_per_sec":500,"events_fed":100,"allocated_mwords":0.5},"packed":{"seconds":0.1,"events_per_sec":1000,"events_fed":100,"allocated_mwords":1.5},"speedup":2,"alloc_reduction":0.33,"verdicts_match":true,"reports_match":true},"shards":null,"scheduler":null,"observability":null}' > argrew.json
  $ ../bench/validate_json.exe argrew.json
  argrew.json: arena: packed path allocated more than boxed (1.500 > 0.500 Mwords)
  [1]

And a shards section whose report diverged from the sequential run,
whose boundary/repair accounting is inconsistent (repaired events can
only come from a seamed cut), or whose repair fraction blew the 10%
regression bound on a 1M+-event run (small runs are exempt — where a
cut lands in a tiny trace is pure noise):

  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":null,"scheduler":null,"shards":{"cases":[{"threads":4,"events":100,"sequential":{"seconds":0.2,"events_per_sec":500},"runs":[{"shards":2,"seconds":0.1,"events_per_sec":1000,"speedup":2,"chunks":2,"quiescent_cuts":1,"seamed_cuts":0,"repaired_events":0,"repair_fraction":0,"tainted_events":0,"utilization":[0.9,0.8],"verdicts_match":true,"reports_match":false}]}]},"observability":null}' > shdiverge.json
  $ ../bench/validate_json.exe shdiverge.json
  shdiverge.json: shards.cases[0].runs[0]: sharded report diverged from sequential
  [1]
  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":null,"scheduler":null,"shards":{"cases":[{"threads":4,"events":100,"sequential":{"seconds":0.2,"events_per_sec":500},"runs":[{"shards":2,"seconds":0.1,"events_per_sec":1000,"speedup":2,"chunks":2,"quiescent_cuts":1,"seamed_cuts":0,"repaired_events":10,"repair_fraction":0.1,"tainted_events":0,"utilization":[0.9,0.8],"verdicts_match":true,"reports_match":true}]}]},"observability":null}' > shrepair.json
  $ ../bench/validate_json.exe shrepair.json
  shrepair.json: shards.cases[0].runs[0]: repaired events without a seamed cut
  [1]
  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":null,"scheduler":null,"shards":{"cases":[{"threads":4,"events":2000000,"sequential":{"seconds":0.2,"events_per_sec":500},"runs":[{"shards":3,"seconds":0.1,"events_per_sec":1000,"speedup":2,"chunks":3,"quiescent_cuts":1,"seamed_cuts":1,"repaired_events":400000,"repair_fraction":0.2,"tainted_events":100,"utilization":[0.9,0.8,0.7],"verdicts_match":true,"reports_match":true}]}]},"observability":null}' > shbound.json
  $ ../bench/validate_json.exe shbound.json
  shbound.json: shards.cases[0].runs[0]: repair_fraction 0.2000 exceeds the 0.10 regression bound
  [1]

And a scheduler section whose work-stealing run produced a different
report than the sequential one, or whose per-domain utilization does
not cover every domain of the stated budget:

  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":null,"shards":null,"scheduler":{"threads":8,"events":1000,"domains":2,"sequential":{"seconds":0.2,"events_per_sec":5000},"static":{"seconds":0.1,"events_per_sec":10000,"speedup":2,"verdicts_match":true,"reports_match":true},"steal":{"seconds":0.1,"events_per_sec":10000,"speedup":2,"chunks":16,"steals":3,"failed_steals":1,"injected":17,"utilization":[0.9,0.8],"verdicts_match":true,"reports_match":false},"steal_vs_static":1},"observability":null}' > sddiverge.json
  $ ../bench/validate_json.exe sddiverge.json
  sddiverge.json: scheduler.steal: report diverged from sequential
  [1]
  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":null,"shards":null,"scheduler":{"threads":8,"events":1000,"domains":2,"sequential":{"seconds":0.2,"events_per_sec":5000},"static":{"seconds":0.1,"events_per_sec":10000,"speedup":2,"verdicts_match":true,"reports_match":true},"steal":{"seconds":0.1,"events_per_sec":10000,"speedup":2,"chunks":16,"steals":3,"failed_steals":1,"injected":17,"utilization":[0.9],"verdicts_match":true,"reports_match":true},"steal_vs_static":1},"observability":null}' > sdutil.json
  $ ../bench/validate_json.exe sdutil.json
  sdutil.json: scheduler.steal: utilization arity <> domains
  [1]

And an observability section whose exposition failed OpenMetrics
validation, whose live scraping cost more than the 3% bound on a
1M+-event run (small runs are exempt — the measurement is noise at cram
scale), or whose replayable witness slice failed to reproduce the
violation:

  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":null,"shards":null,"scheduler":null,"observability":{"exporter":{"events":1000,"baseline_events_per_sec":100,"scraped_events_per_sec":99,"overhead_pct":1,"scrapes":3,"scrapes_valid":false},"flight":{"events":100,"verdicts_match":true,"windows":[{"window":256,"off_events_per_sec":100,"on_events_per_sec":90,"overhead_pct":10,"slice_events":50,"replayable":true,"replay_matches":true}]}}}' > obsinvalid.json
  $ ../bench/validate_json.exe obsinvalid.json
  obsinvalid.json: observability.exporter: exposition failed OpenMetrics validation
  [1]
  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":null,"shards":null,"scheduler":null,"observability":{"exporter":{"events":2000000,"baseline_events_per_sec":100,"scraped_events_per_sec":90,"overhead_pct":10,"scrapes":3,"scrapes_valid":true},"flight":{"events":100,"verdicts_match":true,"windows":[{"window":256,"off_events_per_sec":100,"on_events_per_sec":90,"overhead_pct":10,"slice_events":50,"replayable":true,"replay_matches":true}]}}}' > obsslow.json
  $ ../bench/validate_json.exe obsslow.json
  obsslow.json: observability.exporter: live scraping cost 10.00% throughput (bound 3%)
  [1]
  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":null,"shards":null,"scheduler":null,"observability":{"exporter":{"events":1000,"baseline_events_per_sec":100,"scraped_events_per_sec":99,"overhead_pct":1,"scrapes":3,"scrapes_valid":true},"flight":{"events":100,"verdicts_match":true,"windows":[{"window":256,"off_events_per_sec":100,"on_events_per_sec":90,"overhead_pct":10,"slice_events":50,"replayable":true,"replay_matches":false}]}}}' > obsreplay.json
  $ ../bench/validate_json.exe obsreplay.json
  obsreplay.json: observability.flight.windows[0]: witness slice failed to reproduce the violation
  [1]
  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":null,"reclaim":null,"prefilter":null,"arena":null,"shards":null,"scheduler":null,"observability":{"exporter":{"events":1000,"baseline_events_per_sec":100,"scraped_events_per_sec":99,"overhead_pct":1,"scrapes":3,"scrapes_valid":true},"flight":{"events":100,"verdicts_match":true,"windows":[{"window":256,"off_events_per_sec":100,"on_events_per_sec":90,"overhead_pct":10,"slice_events":0,"replayable":false,"replay_matches":true}]}}}' > obsnone.json
  $ ../bench/validate_json.exe obsnone.json
  obsnone.json: observability.flight: no window probe produced a replayable slice
  [1]

The compare gate diffs two bench files over their overlapping
indicators and exits nonzero on a regression past the per-kind
thresholds.  Two identical files never regress:

  $ ../bench/compare.exe bench.json bench.json > self.out; echo "exit $?"
  exit 0
  $ grep -c 'REGRESSION' self.out
  0
  [1]

A collapsed throughput or a grown peak does regress, and scale-dependent
indicators (peak live words) are skipped when the two runs measured
different workload sizes rather than producing a spurious verdict:

  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":{"enabled_events_per_sec":1000},"reclaim":{"events":50,"on":{"events_per_sec":1000,"peak_live_words":100}},"prefilter":null,"arena":null,"shards":null,"scheduler":null,"observability":null}' > cmpold.json
  $ echo '{"schema":"aerodrome-bench/10","scale":1,"timeout":1,"jobs":1,"tables":[],"micro":[],"parallel":null,"telemetry":{"enabled_events_per_sec":400},"reclaim":{"events":50,"on":{"events_per_sec":950,"peak_live_words":200}},"prefilter":null,"arena":null,"shards":null,"scheduler":null,"observability":null}' > cmpnew.json
  $ ../bench/compare.exe cmpold.json cmpnew.json
  comparing cmpnew.json (aerodrome-bench/10)
    against cmpold.json (aerodrome-bench/10)
    REGRESSION  telemetry: enabled events/sec                      1000.0 ->          400.0  (-60.0%)
    ok    reclaim: on events/sec                             1000.0 ->          950.0  (-5.0%)
    REGRESSION  reclaim: on peak_live_words                         100.0 ->          200.0  (+100.0%)
  2 regression(s) over 3 compared indicator(s)
  [1]
  $ sed 's/"events":50/"events":60/' cmpnew.json > cmpbigger.json
  $ ../bench/compare.exe cmpold.json cmpbigger.json | grep skipped
    (1 indicator(s) skipped: workload sizes differ)

With --glob it picks the lexicographically newest pair, so the
checked-in BENCH_<date>_<tag>.json trajectory gates CI without naming
files:

  $ cp bench.json BENCH_2099-01-01_a.json
  $ cp bench.json BENCH_2099-01-02_b.json
  $ ../bench/compare.exe --glob 'BENCH_2099-*.json' | head -1
  comparing ./BENCH_2099-01-02_b.json (aerodrome-bench/10)
  $ ../bench/compare.exe --glob 'BENCH_2099-01-01_*.json'
  compare: fewer than two files match BENCH_2099-01-01_*.json
  [2]

validate_openmetrics checks a scraped exposition body — the CI scrape
smoke pipes a live curl through it; a clean body passes, garbage is
rejected with the validator's diagnostic:

  $ printf '# TYPE aerodrome_events_total counter\n# HELP aerodrome_events_total Monotonic counter.\naerodrome_events_total 12\n# EOF\n' > good.om
  $ ../bench/validate_openmetrics.exe good.om
  ok
  $ printf 'aerodrome_x{ 1\n# EOF\n' > bad.om
  $ ../bench/validate_openmetrics.exe bad.om
  invalid exposition: line 1: unterminated label set
  [1]
