(* State reclamation must be invisible: with a last-use oracle or the
   inactivity heuristic, every checker's verdict, violation index and
   metric counters match the keep-everything run.  The only admissible
   difference is the bookkeeping reclamation itself introduces (the
   pool/reclaim probes, the heap gauge) and — for the Basic and Reduced
   end-of-transaction scans under an oracle — *fewer* counted vector
   joins, since refreshing a released variable's clocks is exactly the
   dead work reclamation eliminates. *)

open Traces

let check = Alcotest.check

module type CHECKER = sig
  type t

  val create : threads:int -> locks:int -> vars:int -> t
  val feed : t -> Event.t -> Aerodrome.Violation.t option
  val violation : t -> Aerodrome.Violation.t option
  val metrics : t -> Obs.Snapshot.t
end

let checkers : (string * (module CHECKER)) list =
  [
    ("opt", (module Aerodrome.Opt));
    ("reduced", (module Aerodrome.Reduced));
    ("basic", (module Aerodrome.Basic));
  ]

(* Per-checker counters, minus the entries only reclaiming runs carry. *)
let filtered (m : Obs.Snapshot.t) =
  List.filter
    (fun (e : Obs.Snapshot.entry) ->
      not
        (String.starts_with ~prefix:"pool." e.Obs.Snapshot.name
        || String.starts_with ~prefix:"reclaim." e.Obs.Snapshot.name
        || String.starts_with ~prefix:"heap." e.Obs.Snapshot.name))
    m

let without_joins (m : Obs.Snapshot.t) =
  List.filter
    (fun (e : Obs.Snapshot.entry) -> e.Obs.Snapshot.name <> "vc.joins")
    m

let joins m = Option.value ~default:0 (Obs.Snapshot.get_int m "vc.joins")

let run_with policy (module C : CHECKER) (tr : Trace.t) =
  let st =
    Aerodrome.Reclaim.with_policy policy (fun () ->
        C.create ~threads:(Trace.threads tr) ~locks:(Trace.locks tr)
          ~vars:(Trace.vars tr))
  in
  Trace.iter (fun e -> ignore (C.feed st e)) tr;
  ( Option.map
      (fun v -> v.Aerodrome.Violation.index)
      (C.violation st),
    C.metrics st )

let with_obs body =
  let was_on = Obs.on () in
  Obs.enable ();
  Fun.protect
    ~finally:(fun () -> if was_on then Obs.enable () else Obs.disable ())
    body

(* >= 500 random corpus traces x 3 checkers x {off, oracle, inactivity}. *)
let test_differential () =
  with_obs (fun () ->
      let corpus =
        Workloads.Corpus.generate ~traces:500 ~events_total:200_000 ()
      in
      List.iter
        (fun (tname, tr) ->
          let oracle = Aerodrome.Reclaim.Oracle (Lifetime.of_trace tr) in
          let inactivity = Aerodrome.Reclaim.Inactivity { horizon = 64 } in
          List.iter
            (fun (cname, checker) ->
              let where = tname ^ "/" ^ cname in
              let v_off, m_off = run_with Aerodrome.Reclaim.Off checker tr in
              let v_or, m_or = run_with oracle checker tr in
              let v_in, m_in = run_with inactivity checker tr in
              check
                Alcotest.(option int)
                (where ^ ": oracle verdict") v_off v_or;
              check
                Alcotest.(option int)
                (where ^ ": inactivity verdict") v_off v_in;
              let f_off = filtered m_off in
              check Alcotest.bool
                (where ^ ": inactivity counters identical")
                true
                (f_off = filtered m_in);
              if cname = "opt" then
                check Alcotest.bool
                  (where ^ ": oracle counters identical")
                  true
                  (f_off = filtered m_or)
              else begin
                check Alcotest.bool
                  (where ^ ": oracle counters identical sans joins")
                  true
                  (without_joins f_off = without_joins (filtered m_or));
                check Alcotest.bool
                  (where ^ ": oracle never adds joins")
                  true
                  (joins m_or <= joins m_off)
              end)
            checkers)
        corpus)

(* The runner threads the policy end to end: materialized runs compute
   the oracle themselves, binary streams read it from the v2 footer. *)
let test_runner_paths () =
  with_obs (fun () ->
      let fingerprint (r : Analysis.Runner.result) =
        ( (match r.Analysis.Runner.outcome with
          | Analysis.Runner.Verdict (Some v) ->
            Some v.Aerodrome.Violation.index
          | _ -> None),
          r.Analysis.Runner.events_fed )
      in
      List.iter
        (fun (tname, tr) ->
          let off =
            Analysis.Runner.run ~reclaim:false (module Aerodrome.Opt) tr
          in
          let on_ = Analysis.Runner.run (module Aerodrome.Opt) tr in
          check Alcotest.bool (tname ^ ": materialized") true
            (fingerprint off = fingerprint on_);
          let path = Filename.temp_file "aerodrome_reclaim" ".bin" in
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              Binfmt.write_file path tr;
              let s_off =
                Analysis.Runner.run_stream ~reclaim:false
                  (module Aerodrome.Opt)
                  path
              in
              let s_on =
                Analysis.Runner.run_stream (module Aerodrome.Opt) path
              in
              check Alcotest.bool (tname ^ ": streamed") true
                (fingerprint s_off = fingerprint s_on
                && fingerprint s_on = fingerprint off)))
        (Workloads.Corpus.generate ~traces:8 ~events_total:24_000 ()))

(* The phased workload is where the oracle shines: every variable dies
   inside its phase, so the whole per-phase state is released. *)
let test_phased_reclaims_everything () =
  with_obs (fun () ->
      let tr = Workloads.Corpus.phased ~phases:8 ~events_total:40_000 () in
      let lt = Lifetime.of_trace tr in
      let touched = ref 0 in
      Array.iter
        (fun last -> if last <> Lifetime.never then incr touched)
        lt.Lifetime.vars;
      let _, m =
        run_with (Aerodrome.Reclaim.Oracle lt)
          (module Aerodrome.Opt : CHECKER)
          tr
      in
      check
        Alcotest.(option int)
        "every touched variable reclaimed" (Some !touched)
        (Obs.Snapshot.get_int m "reclaim.states"))

let suite =
  ( "reclaim",
    [
      Alcotest.test_case "differential 500 traces" `Quick test_differential;
      Alcotest.test_case "runner paths" `Quick test_runner_paths;
      Alcotest.test_case "phased oracle reclaims all" `Quick
        test_phased_reclaims_everything;
    ] )
