let () =
  Alcotest.run "aerodrome"
    [
      Test_vclock.suite;
      Test_trace.suite;
      Test_parser.suite;
      Test_wellformed.suite;
      Test_transform.suite;
      Test_binfmt.suite;
      Test_packed.suite;
      Test_iset.suite;
      Test_reclaim.suite;
      Test_digraph.suite;
      Test_incremental.suite;
      Test_paper_traces.suite;
      Test_chb.suite;
      Test_checkers.suite;
      Test_differential.suite;
      Test_streaming.suite;
      Test_prefilter.suite;
      Test_monitor.suite;
      Test_velodrome.suite;
      Test_generator.suite;
      Test_analysis.suite;
      Test_obs.suite;
      Test_parallel.suite;
      Test_edge_cases.suite;
    ]
