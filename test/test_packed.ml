(* Packed event words and zero-copy ingestion: codec roundtrips at the
   slice boundaries, arena/cursor semantics across chunk boundaries,
   packed-vs-boxed reader and checker equivalence, and a table of
   hostile binary inputs that must fail identically (clean [Corrupt],
   no crash) through every reader. *)

open Traces

let check = Alcotest.check

let tmp body =
  let path = Filename.temp_file "aerodrome_packed" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> body path)

let expect_corrupt name body =
  match body () with
  | exception Binfmt.Corrupt _ -> ()
  | _ -> Alcotest.failf "%s: expected Binfmt.Corrupt" name

(* --- word codec --- *)

let test_word_codec () =
  let cases =
    [
      (Packed.op_read, 0, 0);
      (Packed.op_write, 1, 5);
      (Packed.op_acquire, Packed.max_tid, 0);
      (Packed.op_release, 0, Packed.max_target);
      (Packed.op_fork, Packed.max_tid, Packed.max_target);
      (Packed.op_join, 7, 39);
      (Packed.op_begin, 3, 0);
      (Packed.op_end, Packed.max_tid, 0);
    ]
  in
  List.iter
    (fun (op, t, d) ->
      let w = Packed.pack ~op ~tid:t ~target:d in
      check Alcotest.bool "word nonnegative" true (w >= 0);
      check Alcotest.int "opcode" op (Packed.opcode w);
      check Alcotest.int "tid" t (Packed.tid w);
      check Alcotest.int "target" d (Packed.target w))
    cases;
  (* the exported layout constant is the one the codec actually uses:
     the binfmt decode loop assembles words with it directly *)
  check Alcotest.int "target_shift layout"
    (Packed.pack ~op:0 ~tid:0 ~target:1)
    (1 lsl Packed.target_shift)

let test_event_roundtrip () =
  List.iter
    (fun (name, tr, _) ->
      Trace.iter
        (fun e ->
          if Packed.to_event (Packed.of_event e) <> e then
            Alcotest.failf "%s: event did not roundtrip" name)
        tr)
    Workloads.Scenarios.all

let test_fits () =
  check Alcotest.bool "typical domains" true
    (Packed.fits ~threads:64 ~locks:100 ~vars:1_000_000);
  check Alcotest.bool "tid edge" true
    (Packed.fits ~threads:(Packed.max_tid + 1) ~locks:0 ~vars:0);
  check Alcotest.bool "tid overflow" false
    (Packed.fits ~threads:(Packed.max_tid + 2) ~locks:0 ~vars:0);
  check Alcotest.bool "target edge" true
    (Packed.fits ~threads:1 ~locks:0 ~vars:(Packed.max_target + 1));
  check Alcotest.bool "target overflow" false
    (Packed.fits ~threads:1 ~locks:0 ~vars:(Packed.max_target + 2))

(* --- arena and cursor --- *)

let test_arena () =
  let a = Packed.Arena.create ~chunk_words:8 () in
  let cw = Packed.Arena.chunk_words a in
  check Alcotest.bool "chunk size is a power of two" true
    (cw >= 8 && cw land (cw - 1) = 0);
  (* three full chunks plus a partial tail: growth, boundary-crossing
     reads, and the only-last-chunk-partial invariant all exercised *)
  let n = (3 * cw) + 5 in
  for i = 0 to n - 1 do
    Packed.Arena.push a i
  done;
  check Alcotest.int "length" n (Packed.Arena.length a);
  check Alcotest.bool "capacity covers length" true
    (Packed.Arena.capacity_words a >= n);
  for i = 0 to n - 1 do
    if Packed.Arena.get a i <> i then Alcotest.failf "get %d diverged" i
  done;
  (match Packed.Arena.get a n with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "get past the end must raise");
  let seen = ref 0 in
  Packed.Arena.iter a (fun w ->
      if w <> !seen then Alcotest.failf "iter out of order at %d" !seen;
      incr seen);
  check Alcotest.int "iter count" n !seen;
  let total = ref 0 and chunks = ref 0 in
  Packed.Arena.iter_chunks a (fun c len ->
      incr chunks;
      check Alcotest.bool "fill within chunk" true
        (len > 0 && len <= Bigarray.Array1.dim c);
      if !chunks < 4 then
        check Alcotest.int "interior chunk full" cw len;
      total := !total + len);
  check Alcotest.int "chunk count" 4 !chunks;
  check Alcotest.int "chunk fills sum to length" n !total;
  let cur = Packed.Cursor.of_arena a in
  let i = ref 0 in
  let rec drain () =
    let w = Packed.Cursor.next cur in
    if w <> -1 then begin
      if w <> !i then Alcotest.failf "cursor diverged at %d" !i;
      incr i;
      drain ()
    end
  in
  drain ();
  check Alcotest.int "cursor count" n !i;
  check Alcotest.int "cursor stays at end" (-1) (Packed.Cursor.next cur)

let test_empty_arena () =
  let a = Packed.Arena.create () in
  check Alcotest.int "empty length" 0 (Packed.Arena.length a);
  Packed.Arena.iter a (fun _ -> Alcotest.fail "iter on empty arena");
  check Alcotest.int "empty cursor" (-1)
    (Packed.Cursor.next (Packed.Cursor.of_arena a))

(* --- packed readers vs boxed readers --- *)

let test_read_packed_matches_boxed () =
  let tr =
    Workloads.Generator.generate
      { Workloads.Generator.default with events = 20_000; vars = 900 }
  in
  tmp (fun path ->
      Binfmt.write_file path tr;
      let h, arena = Binfmt.read_packed path in
      check Alcotest.int "arena length" (Trace.length tr)
        (Packed.Arena.length arena);
      let i = ref 0 in
      Trace.iter
        (fun e ->
          if Packed.to_event (Packed.Arena.get arena !i) <> e then
            Alcotest.failf "event %d diverged" !i;
          incr i)
        tr;
      let _, rev =
        Binfmt.fold_packed path ~init:[] ~f:(fun acc w -> w :: acc)
      in
      let words = List.rev rev in
      check Alcotest.int "fold_packed count" h.Binfmt.events
        (List.length words);
      List.iteri
        (fun j w ->
          if w <> Packed.Arena.get arena j then
            Alcotest.failf "fold_packed word %d diverged" j)
        words)

let test_read_packed_v1 () =
  (* the until-EOF (no footer) decode loop is a separate code path *)
  tmp (fun path ->
      Binfmt.write_file ~last_use:false path Workloads.Scenarios.rho4;
      let _, arena = Binfmt.read_packed path in
      let boxed = Binfmt.read_file path in
      check Alcotest.int "v1 arena length" (Trace.length boxed)
        (Packed.Arena.length arena);
      let i = ref 0 in
      Trace.iter
        (fun e ->
          if Packed.to_event (Packed.Arena.get arena !i) <> e then
            Alcotest.failf "v1 event %d diverged" !i;
          incr i)
        boxed)

(* --- checkers: run_arena and the runner's packed path --- *)

let test_run_arena_matches_run () =
  List.iter
    (fun (cname, c) ->
      List.iter
        (fun (tname, tr, _) ->
          let boxed = Aerodrome.Checker.run c tr in
          let arena = Packed.Arena.create ~chunk_words:64 () in
          Trace.iter
            (fun e -> Packed.Arena.push arena (Packed.of_event e))
            tr;
          let packed =
            Aerodrome.Checker.run_arena c ~threads:(Trace.threads tr)
              ~locks:(Trace.locks tr) ~vars:(Trace.vars tr) arena
          in
          match (boxed, packed) with
          | None, None -> ()
          | Some a, Some b
            when a.Aerodrome.Violation.index = b.Aerodrome.Violation.index
            ->
            ()
          | _ ->
            Alcotest.failf "%s on %s: run_arena diverged from run" cname
              tname)
        Workloads.Scenarios.all)
    Helpers.online_checkers

let test_runner_packed_differential () =
  (* end to end through the runner: the packed mmap path and the boxed
     reference must agree on verdict, violation index and events_fed,
     with the prefilter off and with the automatic exact filter *)
  let traces =
    [
      ( "violating",
        Workloads.Generator.generate
          {
            Workloads.Generator.default with
            events = 30_000;
            vars = 1_500;
            plan = Workloads.Generator.Violate_at 0.7;
          } );
      ( "clean",
        Workloads.Generator.generate
          { Workloads.Generator.default with events = 30_000; vars = 1_500 }
      );
    ]
  in
  List.iter
    (fun (tname, tr) ->
      tmp (fun path ->
          Binfmt.write_file path tr;
          List.iter
            (fun (pfname, pf) ->
              let run packed =
                Analysis.Runner.run_stream ~packed ~prefilter:pf
                  (module Aerodrome.Opt) path
              in
              let b = run false and p = run true in
              (match (b.Analysis.Runner.outcome, p.Analysis.Runner.outcome)
               with
              | Analysis.Runner.Verdict x, Analysis.Runner.Verdict y
                when Option.map (fun v -> v.Aerodrome.Violation.index) x
                     = Option.map (fun v -> v.Aerodrome.Violation.index) y
                ->
                ()
              | _ ->
                Alcotest.failf "%s/%s: packed verdict diverged" tname
                  pfname);
              check Alcotest.int
                (Printf.sprintf "%s/%s events_fed" tname pfname)
                b.Analysis.Runner.events_fed p.Analysis.Runner.events_fed)
            [
              ("off", Analysis.Runner.Off); ("auto", Analysis.Runner.Auto);
            ]))
    traces

(* --- hostile binary inputs --- *)

(* a local LEB128 encoder for hand-crafted files *)
let add_uint buf n =
  let rec go n =
    if n >= 0x80 then begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
    else Buffer.add_char buf (Char.chr n)
  in
  go n

let write_raw path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let truncate_by path cut =
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (size - cut);
  Unix.close fd

let patch_byte path off byte =
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd (size + off) Unix.SEEK_END);
  ignore (Unix.write fd (Bytes.make 1 (Char.chr byte)) 0 1);
  Unix.close fd

let crafted ?(magic = Binfmt.magic) ~threads ~locks ~vars ~events body =
  let buf = Buffer.create 64 in
  Buffer.add_string buf magic;
  add_uint buf threads;
  add_uint buf locks;
  add_uint buf vars;
  add_uint buf events;
  body buf;
  Buffer.contents buf

let base = Workloads.Scenarios.rho4

(* each case prepares a malformed file; every reader — boxed and
   packed, materializing and folding — must raise [Corrupt] *)
let hostile_cases =
  [
    ("empty file", fun _ -> ());
    ("bad magic", fun path -> write_raw path "NOTATRACEATALL");
    ( "truncated header",
      fun path ->
        Binfmt.write_file path base;
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
        Unix.ftruncate fd 10;
        Unix.close fd );
    ( "mid-event EOF",
      fun path ->
        Binfmt.write_file ~last_use:false path base;
        truncate_by path 1 );
    ( "truncated v2 footer",
      fun path ->
        Binfmt.write_file ~stats:false path base;
        truncate_by path 3 );
    ( "truncated v3 footer",
      fun path ->
        Binfmt.write_file path base;
        truncate_by path 5 );
    ( "oversized footer length",
      fun path ->
        Binfmt.write_file path base;
        (* the 8-byte little-endian footer length sits just before the
           trailing magic; declare an absurd footer *)
        for k = 16 downto 12 do
          patch_byte path (-k) 0xff
        done );
    ( "oversized declared event count",
      fun path ->
        write_raw path
          (crafted ~threads:2 ~locks:1 ~vars:2 ~events:1_000_000
             (fun _ -> ())) );
    ( "unknown opcode",
      fun path ->
        write_raw path
          (crafted ~threads:2 ~locks:0 ~vars:1 ~events:1 (fun buf ->
               Buffer.add_char buf '\x0f';
               add_uint buf 0)) );
    ( "id overflow",
      fun path ->
        write_raw path
          (crafted ~threads:2 ~locks:0 ~vars:1 ~events:1 (fun buf ->
               (* a read record whose variable id varint never fits an
                  OCaml int: ten continuation bytes *)
               Buffer.add_char buf '\x00';
               add_uint buf 0;
               for _ = 1 to 10 do
                 Buffer.add_char buf '\xff'
               done)) );
  ]

let test_hostile_inputs () =
  List.iter
    (fun (name, prepare) ->
      tmp (fun path ->
          prepare path;
          expect_corrupt (name ^ ": read_file") (fun () ->
              ignore (Binfmt.read_file path));
          expect_corrupt (name ^ ": fold") (fun () ->
              ignore (Binfmt.fold path ~init:0 ~f:(fun n _ -> n + 1)));
          expect_corrupt (name ^ ": read_packed") (fun () ->
              ignore (Binfmt.read_packed path));
          expect_corrupt (name ^ ": fold_packed") (fun () ->
              ignore (Binfmt.fold_packed path ~init:0 ~f:(fun n _ -> n + 1)))))
    hostile_cases

let test_packed_range_gate () =
  (* a v1 file with a thread id beyond the 21-bit packed slice: the
     boxed reader accepts it, the packed reader must refuse rather than
     silently corrupt the word — this is the [Packed.fits] gate the
     runner applies from the header *)
  tmp (fun path ->
      write_raw path
        (crafted ~threads:(1 lsl 30) ~locks:0 ~vars:1 ~events:1 (fun buf ->
             Buffer.add_char buf (Char.chr Packed.op_begin);
             add_uint buf (1 lsl 29)));
      let tr = Binfmt.read_file path in
      check Alcotest.int "boxed reader accepts" 1 (Trace.length tr);
      expect_corrupt "packed reader refuses" (fun () ->
          ignore (Binfmt.fold_packed path ~init:0 ~f:(fun n _ -> n + 1)));
      check Alcotest.bool "fits gate says no" false
        (Packed.fits ~threads:(1 lsl 30) ~locks:0 ~vars:1))

let suite =
  ( "packed",
    [
      Alcotest.test_case "word codec" `Quick test_word_codec;
      Alcotest.test_case "event roundtrip" `Quick test_event_roundtrip;
      Alcotest.test_case "fits" `Quick test_fits;
      Alcotest.test_case "arena" `Quick test_arena;
      Alcotest.test_case "empty arena" `Quick test_empty_arena;
      Alcotest.test_case "read_packed vs boxed" `Quick
        test_read_packed_matches_boxed;
      Alcotest.test_case "read_packed v1" `Quick test_read_packed_v1;
      Alcotest.test_case "run_arena vs run" `Quick test_run_arena_matches_run;
      Alcotest.test_case "runner packed differential" `Quick
        test_runner_packed_differential;
      Alcotest.test_case "hostile inputs" `Quick test_hostile_inputs;
      Alcotest.test_case "packed range gate" `Quick test_packed_range_gate;
    ] )
