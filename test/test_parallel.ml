(* The multicore runtime: ring buffer schedules (wraparound, producer-
   faster, consumer-faster), domain-pool determinism, pipeline error
   propagation, and the differential guarantee that the parallel paths
   ([run_many ~jobs] and the pipelined stream) report byte-for-byte what
   the sequential runner reports. *)

open Traces

(* --- Ring --- *)

let test_ring_wraparound () =
  (* capacity 4, 100 items pushed/popped in small bursts from one domain:
     the indices wrap many times and never block *)
  let r = Parallel.Ring.create 4 in
  let popped = ref [] in
  let pushed = ref 0 in
  while !pushed < 100 do
    let burst = min 3 (100 - !pushed) in
    for _ = 1 to burst do
      Alcotest.(check bool) "push accepted" true (Parallel.Ring.push r !pushed);
      incr pushed
    done;
    for _ = 1 to burst do
      match Parallel.Ring.pop r with
      | Some v -> popped := v :: !popped
      | None -> Alcotest.fail "pop returned None before close"
    done
  done;
  Parallel.Ring.close r;
  Alcotest.(check (option int)) "drained" None (Parallel.Ring.pop r);
  Alcotest.(check (list int)) "order preserved" (List.init 100 Fun.id)
    (List.rev !popped)

let test_ring_producer_faster () =
  (* a tiny ring and a consumer that dawdles: the producer keeps hitting
     a full ring and blocking on not_full *)
  let r = Parallel.Ring.create 2 in
  let n = 500 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          ignore (Parallel.Ring.push r i)
        done;
        Parallel.Ring.close r)
  in
  let popped = ref [] in
  let count = ref 0 in
  let rec drain () =
    match Parallel.Ring.pop r with
    | Some v ->
      popped := v :: !popped;
      incr count;
      if !count mod 100 = 0 then Unix.sleepf 0.002;
      drain ()
    | None -> ()
  in
  drain ();
  Domain.join producer;
  Alcotest.(check (list int)) "order preserved under full-ring stalls"
    (List.init n Fun.id) (List.rev !popped)

let test_ring_consumer_faster () =
  (* the producer dawdles: the consumer keeps hitting an empty ring and
     blocking on not_empty *)
  let r = Parallel.Ring.create 8 in
  let n = 300 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          if i mod 50 = 0 then Unix.sleepf 0.002;
          ignore (Parallel.Ring.push r i)
        done;
        Parallel.Ring.close r)
  in
  let popped = ref [] in
  let rec drain () =
    match Parallel.Ring.pop r with
    | Some v ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Domain.join producer;
  Alcotest.(check (list int)) "order preserved under empty-ring stalls"
    (List.init n Fun.id) (List.rev !popped)

let test_ring_cancel () =
  (* consumer cancels mid-stream: the producer's pending push returns
     false and it stops *)
  let r = Parallel.Ring.create 2 in
  let accepted = ref 0 in
  let rejected = ref false in
  let producer =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while not !rejected do
          if Parallel.Ring.push r !i then incr accepted else rejected := true;
          incr i
        done)
  in
  ignore (Parallel.Ring.pop r);
  ignore (Parallel.Ring.pop r);
  Parallel.Ring.cancel r;
  Domain.join producer;
  Alcotest.(check bool) "producer saw the cancellation" true !rejected;
  Alcotest.(check bool) "some pushes were accepted first" true (!accepted >= 2);
  Alcotest.(check (option int)) "pop after cancel" None (Parallel.Ring.pop r)

(* --- Pool --- *)

let test_pool_map_order () =
  Parallel.Pool.with_pool 4 (fun pool ->
      let input = Array.init 100 Fun.id in
      let out = Parallel.Pool.map pool (fun i -> i * i) input in
      Alcotest.(check (array int)) "results in input order"
        (Array.map (fun i -> i * i) input)
        out;
      (* the pool is reusable *)
      let out2 = Parallel.Pool.map_list pool string_of_int [ 3; 1; 2 ] in
      Alcotest.(check (list string)) "second batch" [ "3"; "1"; "2" ] out2)

let test_pool_error_deterministic () =
  Parallel.Pool.with_pool 4 (fun pool ->
      match
        Parallel.Pool.map pool
          (fun i -> if i mod 2 = 1 then failwith (string_of_int i) else i)
          (Array.init 10 Fun.id)
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        (* always the smallest failing index, never a scheduling race *)
        Alcotest.(check string) "smallest failing index wins" "1" msg)

let test_pool_run_sequential_equivalence () =
  let xs = List.init 20 Fun.id in
  let f i = i * 7 in
  Alcotest.(check (list int)) "jobs=1 equals jobs=4"
    (Parallel.Pool.run ~jobs:1 f xs)
    (Parallel.Pool.run ~jobs:4 f xs)

(* --- Pipeline --- *)

let test_pipeline_sum () =
  let n = 10_000 in
  let sum =
    Parallel.Pipeline.run ~capacity:4
      ~produce:(fun ~push ->
        for i = 1 to n do
          ignore (push i)
        done)
      ~consume:(fun ~pop ->
        let rec go acc =
          match pop () with Some v -> go (acc + v) | None -> acc
        in
        go 0)
      ()
  in
  Alcotest.(check int) "sum over the ring" (n * (n + 1) / 2) sum

let test_pipeline_producer_error () =
  match
    Parallel.Pipeline.run
      ~produce:(fun ~push ->
        ignore (push 1);
        failwith "producer exploded")
      ~consume:(fun ~pop ->
        let rec drain n =
          match pop () with Some _ -> drain (n + 1) | None -> n
        in
        drain 0)
      ()
  with
  | _ -> Alcotest.fail "expected the producer's exception"
  | exception Failure msg ->
    Alcotest.(check string) "producer error re-raised" "producer exploded" msg

let test_pipeline_consumer_stops_early () =
  (* the consumer walks away after 3 items; the producer must not hang *)
  let produced = ref 0 in
  let got =
    Parallel.Pipeline.run ~capacity:2
      ~produce:(fun ~push ->
        let continue = ref true in
        while !continue do
          incr produced;
          if not (push !produced) then continue := false
        done)
      ~consume:(fun ~pop ->
        let rec go n acc =
          if n = 0 then acc
          else
            match pop () with
            | Some v -> go (n - 1) (v :: acc)
            | None -> acc
        in
        go 3 [])
      ()
  in
  Alcotest.(check (list int)) "first three items" [ 3; 2; 1 ] got

(* --- Differential: parallel paths equal the sequential runner --- *)

let checker : Aerodrome.Checker.t = (module Aerodrome.Opt)

(* Render a file report with the (run-dependent) seconds field zeroed:
   everything else — verdict, violation index, events_fed, error text —
   must be byte-identical across sequential, pooled and pipelined runs. *)
let normalized_report (fr : Analysis.Runner.file_report) =
  let fr =
    match fr.Analysis.Runner.report with
    | Ok r ->
      { fr with Analysis.Runner.report = Ok { r with Analysis.Runner.seconds = 0. } }
    | Error _ -> fr
  in
  Format.asprintf "%a" Analysis.Runner.pp_file_report fr

let corpus_dir () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "aerodrome-par-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o700;
  dir

let build_corpus dir n =
  List.init n (fun i ->
      let shape =
        if i mod 2 = 0 then Workloads.Generator.Independent
        else Workloads.Generator.Anchored
      in
      let plan =
        if i mod 3 = 2 then
          Workloads.Generator.Violate_at (0.2 +. (float_of_int (i mod 7) /. 10.))
        else Workloads.Generator.Atomic
      in
      let threads = 2 + (i mod 5) in
      let config =
        {
          Workloads.Generator.default with
          seed = Int64.of_int (1000 + (i * 7919));
          events = 200 + (i * 131 mod 1300);
          threads = (if shape = Workloads.Generator.Anchored then max threads 4 else threads);
          locks = 2 + (i mod 4);
          vars = 256 + (i mod 3 * 100);
          shape;
          plan;
        }
      in
      let tr = Workloads.Generator.generate config in
      (* mostly binary (the service format); every 7th as text to cover
         the two-pass parser in the pipelined producer *)
      if i mod 7 = 3 then begin
        let path = Filename.concat dir (Printf.sprintf "t%03d.std" i) in
        Parser.to_file path tr;
        path
      end
      else begin
        let path = Filename.concat dir (Printf.sprintf "t%03d.bin" i) in
        Binfmt.write_file path tr;
        path
      end)

let test_differential_parallel_paths () =
  let dir = corpus_dir () in
  let n = 200 in
  let paths = build_corpus dir n in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths;
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let sequential =
        List.map
          (fun p ->
            normalized_report
              {
                Analysis.Runner.file = p;
                report = Analysis.Runner.run_file checker p;
              })
          paths
      in
      let pooled =
        List.map normalized_report
          (Analysis.Runner.run_many ~jobs:4 checker paths)
      in
      let pipelined =
        List.map normalized_report
          (Analysis.Runner.run_many ~jobs:1 ~pipelined:true checker paths)
      in
      (* at least one violating and one serializable report, or the
         comparison is vacuous *)
      let violating =
        List.filter (fun s -> Helpers.contains s "violation") sequential
      in
      Alcotest.(check bool) "corpus mixes verdicts" true
        (violating <> [] && List.length violating < n);
      Alcotest.(check (list string)) "pool fan-out reports byte-identical"
        sequential pooled;
      Alcotest.(check (list string)) "pipelined reports byte-identical"
        sequential pipelined)

let test_differential_errors_in_batch () =
  let dir = corpus_dir () in
  let good = Filename.concat dir "good.bin" in
  let broken = Filename.concat dir "broken.std" in
  let truncated = Filename.concat dir "truncated.bin" in
  Binfmt.write_file good
    (Workloads.Generator.generate Workloads.Generator.default);
  let oc = open_out broken in
  output_string oc "t1|begin\nt1|frobnicate\n";
  close_out oc;
  (* valid magic, then garbage: Corrupt at decode time *)
  let oc = open_out_bin truncated in
  output_string oc Binfmt.magic;
  output_string oc "\x01";
  close_out oc;
  let paths = [ good; broken; Filename.concat dir "absent.bin"; truncated ] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths;
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let seq =
        List.map normalized_report (Analysis.Runner.run_many ~jobs:1 checker paths)
      in
      let par =
        List.map normalized_report (Analysis.Runner.run_many ~jobs:4 checker paths)
      in
      Alcotest.(check (list string)) "error reports byte-identical" seq par;
      Alcotest.(check int) "every file got a report" 4 (List.length seq);
      Alcotest.(check bool) "good file still checked" true
        (Helpers.contains (List.nth seq 0) "serializable");
      List.iter
        (fun i ->
          Alcotest.(check bool)
            (Printf.sprintf "report %d is an error" i)
            true
            (Helpers.contains (List.nth seq i) "error:"))
        [ 1; 2; 3 ])

let suite =
  ( "parallel",
    [
      Alcotest.test_case "ring: wraparound" `Quick test_ring_wraparound;
      Alcotest.test_case "ring: producer faster" `Quick
        test_ring_producer_faster;
      Alcotest.test_case "ring: consumer faster" `Quick
        test_ring_consumer_faster;
      Alcotest.test_case "ring: cancel" `Quick test_ring_cancel;
      Alcotest.test_case "pool: map keeps input order" `Quick
        test_pool_map_order;
      Alcotest.test_case "pool: deterministic error" `Quick
        test_pool_error_deterministic;
      Alcotest.test_case "pool: run jobs equivalence" `Quick
        test_pool_run_sequential_equivalence;
      Alcotest.test_case "pipeline: sum" `Quick test_pipeline_sum;
      Alcotest.test_case "pipeline: producer error" `Quick
        test_pipeline_producer_error;
      Alcotest.test_case "pipeline: consumer stops early" `Quick
        test_pipeline_consumer_stops_early;
      Alcotest.test_case "differential: pool + pipelined vs sequential (200 traces)"
        `Slow test_differential_parallel_paths;
      Alcotest.test_case "differential: per-file errors" `Quick
        test_differential_errors_in_batch;
    ] )
