(* Streaming ingestion: Parser.fold_file / Binfmt.fold / Runner.run_stream
   must see exactly the events the materializing readers see, and must do
   so in constant memory — the point of the streaming path is analyzing
   traces larger than RAM. *)

open Traces

let check = Alcotest.check

let tmp suffix body =
  let path = Filename.temp_file "aerodrome_stream" suffix in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> body path)

let gen_trace ?(events = 4_000) ?(plan = Workloads.Generator.Atomic) () =
  Workloads.Generator.generate
    {
      Workloads.Generator.default with
      events;
      threads = 6;
      vars = 400;
      plan;
    }

(* --- Parser.fold_file --- *)

let test_fold_file_matches_parse () =
  let tr = gen_trace () in
  tmp ".std" (fun path ->
      Parser.to_file path tr;
      (* parse_file and fold_file intern names in the same order, so the
         event streams must be identical *)
      let materialized = Parser.parse_file_exn path in
      let domains = ref (0, 0, 0) in
      let rev =
        Parser.fold_file_exn path
          ~init:(fun ~threads ~locks ~vars ->
            domains := (threads, locks, vars);
            [])
          ~f:(fun acc e -> e :: acc)
      in
      check Alcotest.bool "same events" true
        (List.rev rev = Trace.to_list materialized);
      check
        Alcotest.(triple int int int)
        "domains announced before the events"
        ( Trace.threads materialized,
          Trace.locks materialized,
          Trace.vars materialized )
        !domains)

let test_fold_file_error () =
  tmp ".std" (fun path ->
      let oc = open_out path in
      output_string oc "t1|begin\nt1|nonsense(x)\n";
      close_out oc;
      match
        Parser.fold_file path
          ~init:(fun ~threads:_ ~locks:_ ~vars:_ -> ())
          ~f:(fun () _ -> ())
      with
      | Ok () -> Alcotest.fail "expected a parse error"
      | Error e -> check Alcotest.int "error line" 2 e.Parser.line)

(* --- Runner.run_stream --- *)

let violation_index (r : Analysis.Runner.result) =
  match r.outcome with
  | Analysis.Runner.Verdict (Some v) -> Some v.Aerodrome.Violation.index
  | _ -> None

let test_run_stream_matches_run () =
  let tr = gen_trace ~plan:(Workloads.Generator.Violate_at 0.5) () in
  let materialized = Analysis.Runner.run (module Aerodrome.Opt) tr in
  tmp ".std" (fun text ->
      tmp ".bin" (fun bin ->
          Parser.to_file text tr;
          Binfmt.write_file bin tr;
          let from_text =
            Analysis.Runner.run_stream (module Aerodrome.Opt) text
          in
          let from_bin =
            Analysis.Runner.run_stream (module Aerodrome.Opt) bin
          in
          (* text re-interning permutes ids, but the violation position is
             representation-independent *)
          check
            Alcotest.(option int)
            "text stream blames the same event"
            (violation_index materialized) (violation_index from_text);
          check
            Alcotest.(option int)
            "binary stream blames the same event"
            (violation_index materialized) (violation_index from_bin);
          check Alcotest.int "text events_fed" materialized.events_fed
            from_text.events_fed;
          check Alcotest.int "binary events_fed" materialized.events_fed
            from_bin.events_fed))

let test_run_stream_serializable () =
  let tr = gen_trace ~events:2_000 () in
  tmp ".std" (fun text ->
      Parser.to_file text tr;
      let r = Analysis.Runner.run_stream (module Aerodrome.Basic) text in
      check Alcotest.bool "serializable" false (Analysis.Runner.violating r);
      check Alcotest.int "all events fed" (Trace.length tr) r.events_fed)

(* --- constant peak heap --- *)

(* Feed a binary file through Binfmt.fold, sampling live words every 16k
   events.  Nothing but the checker state and the 64 KiB I/O chunk may
   accumulate, so a 12x longer trace must not show a materially larger
   peak (materializing it would add >200k words on its own). *)
let stream_peak_live_words path ~threads ~locks ~vars =
  let st = Aerodrome.Opt.create ~threads ~locks ~vars in
  let n = ref 0 in
  let peak = ref 0 in
  let sample () =
    Gc.full_major ();
    peak := max !peak (Gc.stat ()).Gc.live_words
  in
  let _header, () =
    Binfmt.fold path ~init:() ~f:(fun () e ->
        ignore (Aerodrome.Opt.feed st e);
        incr n;
        if !n land 16383 = 0 then sample ())
  in
  sample ();
  (!peak, Aerodrome.Opt.violation st)

let write_generated path events =
  let tr =
    Workloads.Generator.generate
      {
        Workloads.Generator.default with
        events;
        threads = 8;
        vars = 500;
      }
  in
  Binfmt.write_file path tr;
  (Trace.threads tr, Trace.locks tr, Trace.vars tr)
  (* [tr] is dead on return: only the file survives *)

let test_constant_heap () =
  let peak_for events =
    tmp ".bin" (fun path ->
        let threads, locks, vars = write_generated path events in
        stream_peak_live_words path ~threads ~locks ~vars)
  in
  let small, v_small = peak_for 20_000 in
  let large, v_large = peak_for 240_000 in
  check Alcotest.bool "both serializable" true
    (v_small = None && v_large = None);
  check Alcotest.bool
    (Printf.sprintf "peak live words constant in trace length (%d vs %d)"
       small large)
    true
    (large < small + 200_000)

let suite =
  ( "streaming",
    [
      Alcotest.test_case "fold_file = parse_file" `Quick
        test_fold_file_matches_parse;
      Alcotest.test_case "fold_file reports errors" `Quick test_fold_file_error;
      Alcotest.test_case "run_stream = run (text and binary)" `Quick
        test_run_stream_matches_run;
      Alcotest.test_case "run_stream on a serializable trace" `Quick
        test_run_stream_serializable;
      Alcotest.test_case "constant peak heap" `Quick test_constant_heap;
    ] )
