(* Iset: lazy deletion with in-place compaction once the member array is
   more than half dead. *)

module Iset = Aerodrome.Iset

let check = Alcotest.check

let test_basic () =
  let s = Iset.create 8 in
  check Alcotest.int "empty" 0 (Iset.size s);
  Iset.add s 3;
  Iset.add s 1;
  Iset.add s 3;
  check Alcotest.int "dedup add" 2 (Iset.size s);
  check Alcotest.bool "mem" true (Iset.mem s 3);
  Iset.remove s 3;
  check Alcotest.bool "removed" false (Iset.mem s 3);
  Iset.add s 3;
  (* re-adding a removed member revives its original array slot, so it
     drains at its first-insertion position *)
  let order = ref [] in
  Iset.drain (fun i -> order := i :: !order) s;
  check
    Alcotest.(list int)
    "drain order skips dead entries" [ 3; 1 ] (List.rev !order);
  check Alcotest.int "drained empty" 0 (Iset.size s)

let test_compaction_threshold () =
  let s = Iset.create 64 in
  for i = 0 to 31 do
    Iset.add s i
  done;
  check Alcotest.int "full array" 32 (Iset.raw_length s);
  (* removing exactly half leaves 2*live = n: not yet past the threshold *)
  for i = 0 to 15 do
    Iset.remove s i
  done;
  check Alcotest.int "no compaction at exactly half dead" 32
    (Iset.raw_length s);
  (* one more removal tips it: live entries move to the front in place *)
  Iset.remove s 16;
  check Alcotest.int "compacted to the live members" 15 (Iset.raw_length s);
  check Alcotest.int "size unaffected" 15 (Iset.size s);
  let order = ref [] in
  Iset.drain (fun i -> order := i :: !order) s;
  check
    Alcotest.(list int)
    "insertion order preserved across compaction"
    (List.init 15 (fun i -> 17 + i))
    (List.rev !order)

let test_small_sets_never_compact () =
  (* below [compact_min] the dead tail is tolerated (drain sweeps it) *)
  let s = Iset.create 8 in
  for i = 0 to 7 do
    Iset.add s i
  done;
  for i = 0 to 7 do
    Iset.remove s i
  done;
  check Alcotest.int "all dead, array kept" 8 (Iset.raw_length s);
  check Alcotest.int "empty" 0 (Iset.size s);
  Iset.clear s;
  check Alcotest.int "clear sweeps the tail" 0 (Iset.raw_length s)

let test_churn () =
  (* a long-lived set cycling a few members through many add/remove
     rounds must keep its array bounded *)
  let s = Iset.create 4 in
  for round = 0 to 9_999 do
    let i = round mod 4 in
    Iset.add s i;
    Iset.remove s i
  done;
  check Alcotest.bool "array stays bounded under churn" true
    (Iset.raw_length s <= 32);
  check Alcotest.int "empty after churn" 0 (Iset.size s)

let suite =
  ( "iset",
    [
      Alcotest.test_case "basic" `Quick test_basic;
      Alcotest.test_case "compaction threshold" `Quick
        test_compaction_threshold;
      Alcotest.test_case "small sets never compact" `Quick
        test_small_sets_never_compact;
      Alcotest.test_case "churn" `Quick test_churn;
    ] )
