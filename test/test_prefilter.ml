(* The prefilter must be invisible to the checkers: on every trace the
   reduced stream has a conflict-serializability violation iff the
   original does — for all three AeroDrome algorithms, in both filter
   modes, composed with reclamation and pipelined ingestion.  Structural
   properties: filtering is idempotent, preserves well-formedness, and
   never grows a trace; the online mode is at least as conservative as
   the exact one (it keeps a superset of the events). *)

open Traces

let check = Alcotest.check

let tmp suffix body =
  let path = Filename.temp_file "aerodrome_prefilter" suffix in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> body path)

let events_of tr = Trace.to_list tr

let violating_opt tr = Aerodrome.Checker.run (module Aerodrome.Opt) tr <> None

let checkers : (string * Aerodrome.Checker.t) list =
  [
    ("basic", (module Aerodrome.Basic));
    ("reduced", (module Aerodrome.Reduced));
    ("opt", (module Aerodrome.Opt));
  ]

let corpus ?(traces = 170) () =
  (* 170 traces x 3 checkers = 510 differential instances per mode pair *)
  Workloads.Corpus.generate ~traces ~events_total:120_000 ()

(* --- structural properties --- *)

(* Exact mode is a pure per-event function of whole-trace statistics plus
   retained-only counters, so a second pass changes nothing.  Online mode
   is deliberately not idempotent: its flush unit is the per-thread
   buffer, so an event on a still-qualifying variable is emitted unchecked
   whenever a disqualified variable shares its buffer — a second pass may
   elide it.  Each pass is independently sound (see test_differential), so
   what must hold is that re-filtering only shrinks the trace and keeps
   the verdict. *)
let test_idempotent () =
  List.iter
    (fun (name, tr) ->
      let once, _ = Prefilter.run_trace `Exact tr in
      let twice, c2 = Prefilter.run_trace `Exact once in
      check Alcotest.bool
        (name ^ ": second exact pass drops nothing")
        true
        (events_of once = events_of twice);
      check Alcotest.int (name ^ ": second exact pass elides 0") 0
        (Prefilter.elided c2))
    (corpus ~traces:60 ())

let test_online_refilter_sound () =
  List.iter
    (fun (name, tr) ->
      let once, c1 = Prefilter.run_trace `Online tr in
      let twice, c2 = Prefilter.run_trace `Online once in
      check Alcotest.bool
        (name ^ ": online re-filter only shrinks")
        true
        (c2.Prefilter.kept <= c1.Prefilter.kept);
      check Alcotest.bool
        (name ^ ": online re-filter keeps verdict")
        (violating_opt tr) (violating_opt twice))
    (corpus ~traces:40 ())

let test_wellformed_preserved () =
  List.iter
    (fun mode ->
      List.iter
        (fun (name, tr) ->
          let reduced, _ = Prefilter.run_trace mode tr in
          check Alcotest.bool
            (name ^ ": reduced trace well-formed")
            true
            (Wellformed.is_wellformed reduced))
        (corpus ~traces:60 ()))
    [ `Exact; `Online ]

let test_counts_consistent () =
  List.iter
    (fun (name, tr) ->
      List.iter
        (fun mode ->
          let reduced, c = Prefilter.run_trace mode tr in
          check Alcotest.int
            (name ^ ": events_in is the trace length")
            (Trace.length tr) c.Prefilter.events_in;
          check Alcotest.int
            (name ^ ": kept is the reduced length")
            (Trace.length reduced) c.Prefilter.kept;
          check Alcotest.int
            (name ^ ": kept + elided = events_in")
            c.Prefilter.events_in
            (c.Prefilter.kept + Prefilter.elided c))
        [ `Exact; `Online ])
    (corpus ~traces:40 ())

let test_online_keeps_superset () =
  (* the single-pass mode can only drop events the exact mode also drops:
     every event it emits, the exact filter of the same trace either also
     emits or classifies under a rule the online mode applies lazily;
     cheap proxy — the online reduction never beats the exact one *)
  List.iter
    (fun (name, tr) ->
      let _, ce = Prefilter.run_trace `Exact tr in
      let _, co = Prefilter.run_trace `Online tr in
      check Alcotest.bool
        (name ^ ": online keeps at least as many events")
        true
        (co.Prefilter.kept >= ce.Prefilter.kept))
    (corpus ~traces:40 ())

(* --- verdict preservation: >= 500 instances per mode --- *)

let test_differential () =
  List.iter
    (fun (tname, tr) ->
      let exact, _ = Prefilter.run_trace `Exact tr in
      let online, _ = Prefilter.run_trace `Online tr in
      List.iter
        (fun (cname, checker) ->
          let where = tname ^ "/" ^ cname in
          let v = Aerodrome.Checker.run checker tr <> None in
          check Alcotest.bool (where ^ ": exact verdict") v
            (Aerodrome.Checker.run checker exact <> None);
          check Alcotest.bool (where ^ ": online verdict") v
            (Aerodrome.Checker.run checker online <> None))
        checkers)
    (corpus ())

(* the mixed bench workload: well-formed, substantially reducible, and
   verdict-preserving under both modes *)
let test_mixed_workload () =
  let tr = Workloads.Corpus.mixed ~events_total:60_000 () in
  check Alcotest.bool "mixed trace well-formed" true
    (Wellformed.is_wellformed tr);
  let reduced, c = Prefilter.run_trace `Exact tr in
  let frac =
    float_of_int (Prefilter.elided c) /. float_of_int c.Prefilter.events_in
  in
  check Alcotest.bool "mixed trace >= 30% reducible" true (frac >= 0.30);
  check Alcotest.bool "mixed verdict preserved" (violating_opt tr)
    (violating_opt reduced)

(* --- runner composition: prefilter x reclaim x pipelined --- *)

let test_runner_composition () =
  let traces =
    [
      ("atomic", Workloads.Corpus.mixed ~events_total:20_000 ());
      ( "violating",
        Workloads.Generator.generate
          {
            Workloads.Generator.default with
            events = 20_000;
            threads = 6;
            vars = 2_000;
            plan = Workloads.Generator.Violate_at 0.6;
          } );
    ]
  in
  List.iter
    (fun (tname, tr) ->
      let base = violating_opt tr in
      (* materialized runs *)
      List.iter
        (fun (mname, pf) ->
          let r =
            Analysis.Runner.run ~prefilter:pf (module Aerodrome.Opt) tr
          in
          check Alcotest.bool
            (tname ^ "/run " ^ mname ^ ": verdict")
            base
            (Analysis.Runner.violating r))
        [ ("exact", Analysis.Runner.Exact); ("online", Analysis.Runner.Online) ];
      (* file-based runs: text and binary (v3 footer), sequential and
         pipelined, reclaim on and off *)
      let stream_cases path =
        List.iter
          (fun (pipelined, reclaim, pf, label) ->
            let r =
              Analysis.Runner.run_stream ~pipelined ~reclaim ~prefilter:pf
                (module Aerodrome.Opt) path
            in
            check Alcotest.bool
              (tname ^ "/" ^ Filename.extension path ^ " " ^ label
             ^ ": verdict")
              base
              (Analysis.Runner.violating r))
          [
            (false, true, Analysis.Runner.Auto, "seq+reclaim+auto");
            (false, false, Analysis.Runner.Auto, "seq+noreclaim+auto");
            (false, true, Analysis.Runner.Online, "seq+reclaim+online");
            (true, true, Analysis.Runner.Auto, "pipe+reclaim+auto");
            (true, true, Analysis.Runner.Online, "pipe+reclaim+online");
            (true, false, Analysis.Runner.Exact, "pipe+noreclaim+exact");
          ]
      in
      tmp ".std" (fun path ->
          Parser.to_file path tr;
          stream_cases path);
      tmp ".bin" (fun path ->
          Binfmt.write_file path tr;
          stream_cases path);
      (* v1 binary: no footer — Auto degrades to online, Exact pre-scans *)
      tmp ".bin" (fun path ->
          Binfmt.write_file ~last_use:false path tr;
          List.iter
            (fun pf ->
              let r =
                Analysis.Runner.run_stream ~prefilter:pf
                  (module Aerodrome.Opt) path
              in
              check Alcotest.bool
                (tname ^ "/v1 binary: verdict")
                base
                (Analysis.Runner.violating r))
            [ Analysis.Runner.Auto; Analysis.Runner.Exact ]))
    traces

(* --- windowing composition ---

   Filtering is defined on whole traces; a window sees different accessor
   sets, so filter and window do not commute in general (a variable
   multi-threaded in the full trace can be thread-local inside the
   window).  What must hold: (1) checking a filtered window agrees with
   checking the window, for any window — the filter is sound on whatever
   trace it is given; (2) on the full-trace window the two orders agree
   exactly, since window repair does nothing and both sides filter the
   same trace. *)

let test_windowing () =
  let tr = Workloads.Corpus.mixed ~events_total:30_000 () in
  let n = Trace.length tr in
  List.iter
    (fun (start, len) ->
      let w = Transform.limit_window start len tr in
      let fw, _ = Prefilter.run_trace `Exact w in
      check Alcotest.bool
        (Printf.sprintf "window [%d,%d): filter preserves verdict" start
           (start + len))
        (violating_opt w) (violating_opt fw))
    [ (0, n / 2); (n / 4, n / 2); (n / 2, n / 2); (0, n) ];
  (* the full window is the identity, so the orders commute exactly *)
  let full = Transform.limit_window 0 n tr in
  let filter_then_window =
    Transform.limit_window 0 n (fst (Prefilter.run_trace `Exact tr))
  in
  let window_then_filter = fst (Prefilter.run_trace `Exact full) in
  check Alcotest.bool "full window: orders commute event-for-event" true
    (events_of filter_then_window = events_of window_then_filter)

(* hand-written soundness corner cases *)
let test_corner_cases () =
  let t tr = Parser.parse_string_exn tr in
  (* a read-only variable's reads carry no conflict even across threads *)
  let ro =
    t
      "t1|begin\n\
       t1|r(x)\n\
       t1|end\n\
       t2|begin\n\
       t2|r(x)\n\
       t2|end\n"
  in
  let reduced, c = Prefilter.run_trace `Exact ro in
  check Alcotest.int "read-only reads elided" 2 c.Prefilter.read_only;
  check Alcotest.bool "read-only reduction serializable" false
    (violating_opt reduced);
  (* rule (c) must NOT elide a re-read with an interposed foreign write:
     the classic rho cycle survives filtering *)
  let rho =
    t
      "t1|begin\n\
       t1|r(y)\n\
       t1|w(x)\n\
       t2|begin\n\
       t2|r(x)\n\
       t2|w(y)\n\
       t2|end\n\
       t1|r(y)\n\
       t1|end\n"
  in
  check Alcotest.bool "rho violating before" true (violating_opt rho);
  List.iter
    (fun mode ->
      let reduced, _ = Prefilter.run_trace mode rho in
      check Alcotest.bool "rho violating after" true (violating_opt reduced))
    [ `Exact; `Online ];
  (* a lock held by two threads is never elided; one held by one thread is *)
  let locks =
    t
      "t1|acq(solo)\n\
       t1|rel(solo)\n\
       t1|acq(shared)\n\
       t1|rel(shared)\n\
       t2|acq(shared)\n\
       t2|rel(shared)\n"
  in
  let _, c = Prefilter.run_trace `Exact locks in
  check Alcotest.int "solo lock ops elided" 2 c.Prefilter.lock_local

let suite =
  ( "prefilter",
    [
      Alcotest.test_case "exact idempotent" `Quick test_idempotent;
      Alcotest.test_case "online re-filter sound" `Quick
        test_online_refilter_sound;
      Alcotest.test_case "wellformed preserved" `Quick
        test_wellformed_preserved;
      Alcotest.test_case "counts consistent" `Quick test_counts_consistent;
      Alcotest.test_case "online keeps superset" `Quick
        test_online_keeps_superset;
      Alcotest.test_case "differential 500+" `Slow test_differential;
      Alcotest.test_case "mixed workload" `Quick test_mixed_workload;
      Alcotest.test_case "runner composition" `Slow test_runner_composition;
      Alcotest.test_case "windowing" `Quick test_windowing;
      Alcotest.test_case "corner cases" `Quick test_corner_cases;
    ] )
