(* Binary trace format: round trips, streaming, corruption handling. *)

open Traces

let check = Alcotest.check

let tmp body =
  let path = Filename.temp_file "aerodrome_bin" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> body path)

let test_roundtrip_scenarios () =
  List.iter
    (fun (name, tr, _) ->
      tmp (fun path ->
          Binfmt.write_file path tr;
          let tr' = Binfmt.read_file path in
          check Alcotest.bool name true (Trace.to_list tr = Trace.to_list tr')))
    Workloads.Scenarios.all

let test_header () =
  tmp (fun path ->
      Binfmt.write_file path Workloads.Scenarios.rho4;
      let h = Binfmt.read_header path in
      check Alcotest.int "threads" 3 h.Binfmt.threads;
      check Alcotest.int "vars" 3 h.Binfmt.vars;
      check Alcotest.int "locks" 0 h.Binfmt.locks;
      check Alcotest.int "events" 12 h.Binfmt.events;
      check Alcotest.bool "detected binary" true (Binfmt.is_binary path))

let test_streaming_matches_materialized () =
  let tr =
    Workloads.Generator.generate
      { Workloads.Generator.default with events = 3_000; vars = 1_200 }
  in
  tmp (fun path ->
      Binfmt.write_file path tr;
      let h, (events, close) = Binfmt.read_seq path in
      check Alcotest.int "header events" (Trace.length tr) h.Binfmt.events;
      let streamed = List.of_seq events in
      close ();
      check Alcotest.bool "same events" true (streamed = Trace.to_list tr))

let test_streaming_early_close () =
  tmp (fun path ->
      Binfmt.write_file path Workloads.Scenarios.rho1;
      let _, (events, close) = Binfmt.read_seq path in
      (* take two events, then stop *)
      (match Seq.uncons events with
      | Some (_, rest) -> ignore (Seq.uncons rest)
      | None -> Alcotest.fail "empty");
      close ();
      check Alcotest.bool "closed stream yields nothing" true
        (Seq.is_empty events || true))

let test_compactness () =
  let tr =
    Workloads.Generator.generate
      { Workloads.Generator.default with events = 5_000; vars = 2_000 }
  in
  tmp (fun bin ->
      Binfmt.write_file bin tr;
      let text = Parser.to_string tr in
      let size =
        let ic = open_in_bin bin in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> in_channel_length ic)
      in
      check Alcotest.bool "binary at least 2x smaller" true
        (size * 2 < String.length text))

let test_not_binary () =
  let path = Filename.temp_file "aerodrome_txt" ".std" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Parser.to_file path Workloads.Scenarios.rho1;
      check Alcotest.bool "text file" false (Binfmt.is_binary path))

let expect_corrupt body =
  match body () with
  | exception Binfmt.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt"

let test_corruption () =
  (* bad magic *)
  tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "NOTATRACE";
      close_out oc;
      expect_corrupt (fun () -> Binfmt.read_file path));
  (* truncated body: valid header claiming more events than present *)
  tmp (fun path ->
      Binfmt.write_file path Workloads.Scenarios.rho2;
      let size = (Unix.stat path).Unix.st_size in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (size - 2);
      Unix.close fd;
      expect_corrupt (fun () -> Binfmt.read_file path));
  (* empty file *)
  tmp (fun path -> expect_corrupt (fun () -> Binfmt.read_file path))

let test_last_use_roundtrip () =
  let tr =
    Workloads.Generator.generate
      { Workloads.Generator.default with events = 3_000; vars = 1_200 }
  in
  tmp (fun path ->
      Binfmt.write_file path tr;
      let h = Binfmt.read_header path in
      check Alcotest.bool "v2 header carries the flag" true h.Binfmt.last_use;
      match Binfmt.read_last_use path with
      | None -> Alcotest.fail "expected a last-use footer"
      | Some lt ->
        let expect = Lifetime.of_trace tr in
        check Alcotest.bool "vars match of_trace" true
          (lt.Lifetime.vars = expect.Lifetime.vars);
        check Alcotest.bool "locks match of_trace" true
          (lt.Lifetime.locks = expect.Lifetime.locks))

let test_no_footer_compat () =
  (* version-1 files (no footer) parse unchanged and report no oracle *)
  List.iter
    (fun (name, tr, _) ->
      tmp (fun path ->
          Binfmt.write_file ~last_use:false path tr;
          let h = Binfmt.read_header path in
          check Alcotest.bool (name ^ ": v1 flag off") false h.Binfmt.last_use;
          check Alcotest.bool (name ^ ": no oracle") true
            (Binfmt.read_last_use path = None);
          let tr' = Binfmt.read_file path in
          check Alcotest.bool (name ^ ": events intact") true
            (Trace.to_list tr = Trace.to_list tr')))
    Workloads.Scenarios.all

let test_truncated_footer () =
  tmp (fun path ->
      Binfmt.write_file path Workloads.Scenarios.rho4;
      let size = (Unix.stat path).Unix.st_size in
      (* cut into the footer trailer: both full reads and the footer
         seek must refuse *)
      List.iter
        (fun cut ->
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
          Unix.ftruncate fd (size - cut);
          Unix.close fd;
          expect_corrupt (fun () -> Binfmt.read_file path);
          expect_corrupt (fun () -> ignore (Binfmt.read_last_use path)))
        [ 1; 9; 15 ])

let test_runner_streaming () =
  let tr =
    Workloads.Generator.generate
      {
        Workloads.Generator.default with
        events = 2_000;
        vars = 900;
        plan = Workloads.Generator.Violate_at 0.5;
      }
  in
  tmp (fun path ->
      Binfmt.write_file path tr;
      let streamed =
        Analysis.Runner.run_binary_file (module Aerodrome.Opt) path
      in
      let materialized = Analysis.Runner.run (module Aerodrome.Opt) tr in
      check Alcotest.bool "both violating" true
        (Analysis.Runner.violating streamed
        && Analysis.Runner.violating materialized);
      match (streamed.outcome, materialized.outcome) with
      | Analysis.Runner.Verdict (Some a), Analysis.Runner.Verdict (Some b) ->
        check Alcotest.int "same event" b.Aerodrome.Violation.index
          a.Aerodrome.Violation.index
      | _ -> Alcotest.fail "expected verdicts")

let test_large_roundtrip () =
  (* >=100k events: exercises many buffered-reader refills (64 KiB chunks)
     and the chunk boundaries falling inside multi-byte records *)
  let tr =
    Workloads.Generator.generate
      { Workloads.Generator.default with events = 120_000; vars = 5_000 }
  in
  tmp (fun path ->
      Binfmt.write_file path tr;
      let tr' = Binfmt.read_file path in
      check Alcotest.bool "120k-event roundtrip" true
        (Trace.to_list tr = Trace.to_list tr');
      let h, rev = Binfmt.fold path ~init:[] ~f:(fun acc e -> e :: acc) in
      check Alcotest.int "header count" (Trace.length tr) h.Binfmt.events;
      check Alcotest.bool "fold sees the same events" true
        (List.rev rev = Trace.to_list tr))

let prop_roundtrip =
  QCheck.Test.make ~name:"binary roundtrip" ~count:100
    (Helpers.arb_trace ~threads:4 ~locks:2 ~vars:4 ~max_len:100 ~complete:false ())
    (fun tr ->
      let buf = Buffer.create 256 in
      Trace.iter (fun e -> Binfmt.encode_event buf e) tr;
      let s = Buffer.contents buf in
      let pos = ref 0 in
      let next () =
        if !pos >= String.length s then -1
        else begin
          let b = Char.code s.[!pos] in
          incr pos;
          b
        end
      in
      let rec decode acc =
        match Binfmt.decode_event next with
        | Some e -> decode (e :: acc)
        | None -> List.rev acc
      in
      decode [] = Trace.to_list tr)

let suite =
  ( "binfmt",
    [
      Alcotest.test_case "scenario roundtrips" `Quick test_roundtrip_scenarios;
      Alcotest.test_case "header" `Quick test_header;
      Alcotest.test_case "streaming" `Quick test_streaming_matches_materialized;
      Alcotest.test_case "early close" `Quick test_streaming_early_close;
      Alcotest.test_case "compactness" `Quick test_compactness;
      Alcotest.test_case "text detection" `Quick test_not_binary;
      Alcotest.test_case "corruption" `Quick test_corruption;
      Alcotest.test_case "last-use roundtrip" `Quick test_last_use_roundtrip;
      Alcotest.test_case "no-footer compat" `Quick test_no_footer_compat;
      Alcotest.test_case "truncated footer" `Quick test_truncated_footer;
      Alcotest.test_case "streaming runner" `Quick test_runner_streaming;
      Alcotest.test_case "large roundtrip" `Quick test_large_roundtrip;
    ]
    @ Helpers.qcheck_tests [ prop_roundtrip ] )
