The telemetry surface of `rapid check`: machine-readable stats
documents, human-readable snapshots, progress heartbeats and Chrome
trace timelines.  validate_stats enforces the documented key sets so
the exporters cannot silently drift.

  $ rapid generate --events 300 --threads 3 --seed 7 -o trace.std
  wrote 313 events to trace.std
  $ rapid generate --events 300 --threads 3 --seed 7 --violate-at 0.5 -o bad.std
  wrote 311 events to bad.std

--stats-json writes an aerodrome-stats/1 document with the per-checker
counter contract; all three checker families satisfy it:

  $ rapid check -q --stats-json stats.json trace.std
  $ ../bench/validate_stats.exe stats stats.json
  ok
  $ rapid check -q -a aerodrome-basic --stats-json basic.json trace.std
  $ ../bench/validate_stats.exe stats basic.json
  ok
  $ rapid check -q -a aerodrome-reduced --stats-json reduced.json trace.std
  $ ../bench/validate_stats.exe stats reduced.json
  ok
  $ rapid check -q -a velodrome --stats-json velo.json trace.std
  $ ../bench/validate_stats.exe stats velo.json
  ok

"-" sends the document to stdout; the check exit code is preserved:

  $ rapid check -q --stats-json - trace.std > out.json
  $ ../bench/validate_stats.exe stats out.json
  ok

A violating run records the verdict and a 1-based violation index:

  $ rapid check -q --stats-json viol.json bad.std
  [1]
  $ ../bench/validate_stats.exe stats viol.json
  ok
  $ grep -o '"verdict":"violation","violation_index":165' viol.json
  "verdict":"violation","violation_index":165

--stats prints the same snapshots for humans.  The counters are exact
event counts, so the output is deterministic — except the heap
high-water gauge, a Gc reading normalized away here:

  $ rapid check -q --stats trace.std 2>&1 | sed -E 's/^(  heap.peak_words +)[0-9]+$/\1H/'
  trace.std metrics:
    events.acquire      16
    events.begin        35
    events.end          35
    events.fork         2
    events.join         2
    events.read         143
    events.release      16
    events.total        313
    events.write        64
    heap.peak_words     H
    ingest.file_bytes   3030
    pool.hits           0
    pool.misses         48
    reclaim.collapsed   0
    reclaim.states      16
    sets.lock_updates   total=0 sum=0
    sets.stale_readers  total=64 sum=17 [<=0:47 <=1:17]
    txn.begins          35
    txn.commits         35
    vc.joins            290
    violation.index     -1
  process metrics:
    ingest.binary.bytes_read      0
    ingest.binary.events_decoded  0
    ingest.text.events_parsed     313
    ingest.text.lines_read        313
    vclock.epoch_demotions        0
    vclock.epoch_promotions       31

The pipelined path adds ring-buffer counters to the file entry, and
--trace-out records a Chrome trace-event timeline of the ingestion and
checking spans:

  $ rapid convert trace.std trace.bin
  trace.bin: 313 events, 3030 -> 968 bytes
  $ rapid check -q --pipelined --stats-json pipe.json --trace-out timeline.json trace.bin
  $ ../bench/validate_stats.exe stats --pipelined pipe.json
  ok
  $ ../bench/validate_stats.exe trace timeline.json
  ok
  $ grep -o '"ring.capacity":8' pipe.json
  "ring.capacity":8

--progress emits a heartbeat on stderr every M million events (here
0.005M = 5000, hit at the runner's 4096-event checkpoints).  Rates
vary run to run; the event counts do not.  Binary traces carry the
total event count in the header, so they also get an ETA:

  $ rapid generate --events 20000 --threads 4 --seed 3 -o big.std
  wrote 20018 events to big.std
  $ rapid check -q --progress 0.005 big.std 2>&1 | sed -E 's/[0-9.]+[KMB]? ev\/s/R/g'
  [check] 8192 events  R inst  R avg
  [check] 16.4K events  R inst  R avg
  $ rapid convert big.std big.bin
  big.bin: 20018 events, 193458 -> 55684 bytes
  $ rapid check -q --progress 0.005 big.bin 2>&1 \
  >   | sed -E 's/[0-9.]+[KMB]? ev\/s/R/g; s/eta [0-9]+s/eta N/'
  [check] 8192 events  R inst  R avg  eta N
  [check] 16.4K events  R inst  R avg  eta N

rapid metainfo --json emits the trace statistics as a flat object:

  $ rapid metainfo --json trace.std
  {"events":313,"reads":143,"writes":64,"acquires":16,"releases":16,"forks":2,"joins":2,"begins":35,"ends":35,"nested_begins":0,"threads":3,"locks":2,"variables":16,"transactions":35,"unary_events":13,"max_nesting":1,"reducibility":{"thread_local_vars":8,"read_only_vars":0,"thread_local_locks":0,"elided_thread_local":120,"elided_read_only":0,"elided_redundant":30,"elided_lock_local":0,"reduced_events":163}}
