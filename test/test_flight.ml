(* Violation flight recorder and witness bundles.

   Ring-mechanics unit tests for Traces.Flight, then the differential
   property the observability layer rests on: for every violating trace,
   a flight-recorded run's witness slice — when the rings still cover a
   quiescent cut — must reproduce the violation under an independent
   re-run of the on-disk file (the same ingestion path `rapid check`
   uses): a violation at exactly [v - p], same event, same check site.
   The traces come from the benchmark corpus (which plants a violation
   in every fifth trace) plus generator traces with injected cycles, at
   both the conventional and a large ring window. *)

open Traces

let check = Alcotest.check

let aerodrome : Aerodrome.Checker.t = (module Aerodrome.Opt)

(* --- ring mechanics --- *)

let note_trace fl tr =
  Trace.iteri (fun i e -> Flight.note fl i (Packed.of_event e)) tr

let test_ring_basics () =
  let tr = Workloads.Scenarios.rho2 in
  let n = Trace.length tr in
  let fl = Flight.create ~window:64 ~threads:(Trace.threads tr) () in
  note_trace fl tr;
  check Alcotest.int "noted" n (Flight.noted fl);
  (* nothing evicted: the full trace is the retained window, and the
     trace's start is a quiescent cut by definition *)
  (match Flight.window fl with
  | Some (start, words) ->
    check Alcotest.int "window starts at 0" 0 start;
    check Alcotest.int "window covers the trace" n (Array.length words);
    Trace.iteri
      (fun i e ->
        check Alcotest.bool "window word decodes" true
          (Event.equal e (Packed.to_event words.(i))))
      tr
  | None -> Alcotest.fail "expected a replayable window");
  check Alcotest.bool "window < 1 refused" true
    (match Flight.create ~window:0 ~threads:2 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_ring_eviction () =
  (* a window of 1 retains only each thread's last event; whether a
     quiescent cut survives is workload-dependent, but bookkeeping must
     stay consistent *)
  let tr = Workloads.Scenarios.rho2 in
  let fl = Flight.create ~window:1 ~threads:(Trace.threads tr) () in
  note_trace fl tr;
  check Alcotest.int "noted" (Trace.length tr) (Flight.noted fl);
  for tid = 0 to Flight.threads fl - 1 do
    check Alcotest.bool "at most one retained" true (Flight.retained fl tid <= 1)
  done;
  match Flight.window fl with
  | None -> ()
  | Some (start, words) ->
    check Alcotest.bool "window inside the trace" true
      (start >= 0 && start + Array.length words <= Trace.length tr)

(* --- witness differential over violating corpus traces --- *)

let violating_traces () =
  let corpus =
    Workloads.Corpus.generate ~traces:10 ~events_total:40_000 ()
  in
  let planted =
    List.filter_map
      (fun (name, tr) ->
        match Aerodrome.Checker.run aerodrome tr with
        | Some _ -> Some (name, tr)
        | None -> None)
      corpus
  in
  let injected =
    List.map
      (fun (frac, events, threads) ->
        ( Printf.sprintf "violate-at-%.1f" frac,
          Workloads.Generator.generate
            {
              Workloads.Generator.default with
              events;
              threads;
              locks = 4;
              vars = 512;
              plan = Workloads.Generator.Violate_at frac;
            } ))
      [ (0.3, 12_000, 4); (0.7, 12_000, 6); (0.95, 8_000, 3) ]
  in
  planted @ injected

let in_fresh_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "flight-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let json_of_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Obs.Json.parse_exn text

let jnum j key =
  match Obs.Json.member key j with
  | Some (Obs.Json.Num f) -> int_of_float f
  | _ -> Alcotest.fail (Printf.sprintf "witness json: missing number %S" key)

let test_witness_differential () =
  let replayable_bundles = ref 0 in
  let context_only = ref 0 in
  List.iter
    (fun (name, tr) ->
      List.iter
        (fun window ->
          in_fresh_dir (fun dir ->
              let r =
                Analysis.Runner.run
                  ~flight:{ Analysis.Runner.flight_dir = dir; flight_window = window }
                  aerodrome tr
              in
              let v =
                match r.Analysis.Runner.outcome with
                | Analysis.Runner.Verdict (Some v) -> v
                | _ -> Alcotest.fail (name ^ ": expected a violation")
              in
              let json_path = Filename.concat dir "trace.witness.json" in
              check Alcotest.bool (name ^ ": witness emitted") true
                (Sys.file_exists json_path);
              let doc = json_of_file json_path in
              check Alcotest.int
                (name ^ ": witness records the violation index")
                v.Aerodrome.Violation.index
                (jnum (Option.get (Obs.Json.member "violation" doc)) "index");
              match Obs.Json.member "window" doc with
              | Some Obs.Json.Null | None ->
                (* rings evicted every quiescent cut: allowed, but there
                   must be no slice file claiming otherwise *)
                incr context_only;
                check Alcotest.bool (name ^ ": no stray slice") false
                  (Sys.file_exists (Filename.concat dir "trace.slice.bin"))
              | Some window_j ->
                incr replayable_bundles;
                let start = jnum window_j "start" in
                let expect_at = v.Aerodrome.Violation.index - start in
                check Alcotest.int
                  (name ^ ": expected_violation_index = v - p")
                  expect_at
                  (jnum window_j "expected_violation_index");
                (* the bundle's own in-process replay must have agreed *)
                (match Obs.Json.member "replay" window_j with
                | Some replay_j ->
                  check Alcotest.bool (name ^ ": bundle replay matches") true
                    (Obs.Json.member "matches" replay_j
                    = Some (Obs.Json.Bool true))
                | None -> Alcotest.fail (name ^ ": window without replay"));
                (* independent differential: re-run the on-disk slice
                   through the file-checking path and pin the report *)
                let slice = Filename.concat dir "trace.slice.bin" in
                let rr = Analysis.Runner.run_binary_file aerodrome slice in
                (match rr.Analysis.Runner.outcome with
                | Analysis.Runner.Verdict (Some rv) ->
                  check Alcotest.int (name ^ ": replay index") expect_at
                    rv.Aerodrome.Violation.index;
                  check Alcotest.bool (name ^ ": replay event") true
                    (Event.equal rv.Aerodrome.Violation.event
                       v.Aerodrome.Violation.event);
                  check Alcotest.bool (name ^ ": replay site") true
                    (rv.Aerodrome.Violation.site = v.Aerodrome.Violation.site)
                | _ ->
                  Alcotest.fail
                    (name ^ ": slice replay did not report a violation"))))
        [ Flight.default_window; 4096 ])
    (violating_traces ());
  check Alcotest.bool "at least one replayable bundle" true
    (!replayable_bundles > 0);
  (* informational: both outcomes should normally occur across the mix,
     but only replayability is a hard requirement *)
  ignore !context_only

let test_no_bundle_when_serializable () =
  in_fresh_dir (fun dir ->
      let r =
        Analysis.Runner.run
          ~flight:
            {
              Analysis.Runner.flight_dir = dir;
              flight_window = Flight.default_window;
            }
          aerodrome Workloads.Scenarios.rho1
      in
      check Alcotest.bool "serializable" false (Analysis.Runner.violating r);
      check Alcotest.bool "no bundle written" false
        (Sys.file_exists (Filename.concat dir "trace.witness.json")))

let suite =
  ( "flight",
    [
      Alcotest.test_case "ring basics" `Quick test_ring_basics;
      Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
      Alcotest.test_case "witness differential" `Slow test_witness_differential;
      Alcotest.test_case "serializable runs emit nothing" `Quick
        test_no_bundle_when_serializable;
    ] )
