open Traces
module Violation = Aerodrome.Violation
module Checker = Aerodrome.Checker
module VC = Vclock.Vector_clock

let name = "aerodrome-preepoch"

let nil = -1

(* Small integer sets over a fixed universe [0..n-1] with O(1) membership
   and O(size) iteration/clearing: a list of members plus a byte map. *)
module Iset = struct
  type t = { mutable elems : int list; mem : Bytes.t }

  let create n = { elems = []; mem = Bytes.make (max n 1) '\000' }
  let mem s i = Bytes.unsafe_get s.mem i <> '\000'

  let add s i =
    if not (mem s i) then begin
      Bytes.unsafe_set s.mem i '\001';
      s.elems <- i :: s.elems
    end

  let remove s i =
    if mem s i then begin
      Bytes.unsafe_set s.mem i '\000';
      s.elems <- List.filter (fun j -> j <> i) s.elems
    end

  let clear s =
    List.iter (fun i -> Bytes.unsafe_set s.mem i '\000') s.elems;
    s.elems <- []

  let iter f s = List.iter f s.elems
end

type t = {
  threads : int;
  locks : int;
  vars : int;
  fast_checks : bool;
  faithful : bool;
  c : VC.t array;
  cb : VC.t array;
  l : VC.t array;
  w : VC.t array;
  r : VC.t array;  (* R_x *)
  hr : VC.t array;  (* hR_x *)
  last_rel_thr : int array;
  last_w_thr : int array;
  stale_w : Bytes.t;  (* Stale^w_x: is W_x lazily represented by C_lastWThr? *)
  stale_r : Iset.t array;  (* Stale^r_x: readers not yet flushed into R_x *)
  upd_r : Iset.t array;  (* UpdateSet^r_t *)
  upd_w : Iset.t array;  (* UpdateSet^w_t *)
  depth : int array;
  seq : int array;  (* outermost-transaction sequence number per thread *)
  parent : (int * int) option array;  (* forking (thread, seq), per thread *)
  mutable violation : Violation.t option;
  mutable processed : int;
}

let create_with ?(fast_checks = true) ?(faithful = false) ~threads ~locks
    ~vars () =
  let dim = max threads 1 in
  {
    threads = dim;
    locks;
    vars;
    fast_checks;
    faithful;
    c = Array.init dim (fun t -> VC.unit dim t);
    cb = Array.init dim (fun _ -> VC.bottom dim);
    l = Array.init (max locks 0) (fun _ -> VC.bottom dim);
    w = Array.init (max vars 0) (fun _ -> VC.bottom dim);
    r = Array.init (max vars 0) (fun _ -> VC.bottom dim);
    hr = Array.init (max vars 0) (fun _ -> VC.bottom dim);
    last_rel_thr = Array.make (max locks 0) nil;
    last_w_thr = Array.make (max vars 0) nil;
    stale_w = Bytes.make (max vars 1) '\000';
    stale_r = Array.init (max vars 0) (fun _ -> Iset.create dim);
    upd_r = Array.init dim (fun _ -> Iset.create (max vars 1));
    upd_w = Array.init dim (fun _ -> Iset.create (max vars 1));
    depth = Array.make dim 0;
    seq = Array.make dim 0;
    parent = Array.make dim None;
    violation = None;
    processed = 0;
  }

let create ~threads ~locks ~vars = create_with ~threads ~locks ~vars ()

let violation st = st.violation
let processed st = st.processed
let active st t = st.depth.(t) > 0

let is_stale_w st x = Bytes.unsafe_get st.stale_w x <> '\000'
let set_stale_w st x b = Bytes.unsafe_set st.stale_w x (if b then '\001' else '\000')

(* C⊲_t ⊑ clk, in O(1) when the whole-clock-join invariant allows it. *)
let begin_leq st t clk =
  if st.fast_checks then VC.get st.cb.(t) t <= VC.get clk t
  else VC.leq st.cb.(t) clk

exception Found of Violation.site

(* checkAndGet(clk1, clk2, t) of Algorithm 3. *)
let check_and_get st clk1 clk2 t site =
  if active st t && begin_leq st t clk1 then raise (Found site);
  VC.join_into ~into:st.c.(t) clk2

(* The hR_x check compares only the t-component, independently of
   [fast_checks]: hR_x zeroes each reader's own component, so the full
   pointwise order is the wrong comparison for it (see Reduced). *)
let check_read_and_get st t x site =
  if active st t && VC.get st.cb.(t) t <= VC.get st.hr.(x) t then
    raise (Found site);
  VC.join_into ~into:st.c.(t) st.r.(x)

(* After [clk] (the value just folded into W_x or R_x) grew the variable's
   clock, record x in the update set of every other active transaction the
   new value covers, so that transaction's end refreshes the clock too.
   Algorithm 3 runs this loop at reads and writes only; running it at ends
   as well closes the transitive-ordering gap (see the .mli). *)
let propagate_update_sets st upd x ~skip clk =
  for u = 0 to st.threads - 1 do
    if u <> skip && active st u && begin_leq st u clk then Iset.add upd.(u) x
  done

let handle_acquire st t l =
  if st.last_rel_thr.(l) <> t then
    check_and_get st st.l.(l) st.l.(l) t Violation.At_acquire

let handle_release st t l =
  VC.assign ~into:st.l.(l) st.c.(t);
  st.last_rel_thr.(l) <- t

let handle_fork st t u =
  VC.join_into ~into:st.c.(u) st.c.(t);
  st.parent.(u) <- (if active st t then Some (t, st.seq.(t)) else None)

let handle_join st t u =
  check_and_get st st.c.(u) st.c.(u) t Violation.At_join

(* Check a read or write against the last write: against the writer's live
   clock while its transaction is active (W_x stale), against the
   materialized W_x otherwise. *)
let check_vs_last_write st t x site =
  if st.last_w_thr.(x) <> t then begin
    if is_stale_w st x then begin
      let wt = st.last_w_thr.(x) in
      check_and_get st st.c.(wt) st.c.(wt) t site
    end
    else check_and_get st st.w.(x) st.w.(x) t site
  end

let handle_read st t x =
  check_vs_last_write st t x Violation.At_read;
  if active st t || st.faithful then begin
    Iset.add st.stale_r.(x) t;
    (* Algorithm 3 lines 34–36: every covered active transaction must
       refresh R_x at its end; the reader's own transaction qualifies. *)
    propagate_update_sets st st.upd_r x ~skip:nil st.c.(t)
  end
  else begin
    (* Unary read: update eagerly.  The printed algorithm leaves it in
       Stale^r_x, where a later flush would use this thread's clock as
       inflated by its subsequent transactions — a false positive. *)
    VC.join_into ~into:st.r.(x) st.c.(t);
    VC.join_into_zeroed ~into:st.hr.(x) st.c.(t) t;
    propagate_update_sets st st.upd_r x ~skip:nil st.c.(t)
  end

let flush_stale_readers st x =
  Iset.iter
    (fun u ->
      VC.join_into ~into:st.r.(x) st.c.(u);
      VC.join_into_zeroed ~into:st.hr.(x) st.c.(u) u)
    st.stale_r.(x);
  Iset.clear st.stale_r.(x)

let handle_write st t x =
  check_vs_last_write st t x Violation.At_write_vs_write;
  flush_stale_readers st x;
  check_read_and_get st t x Violation.At_write_vs_read;
  if active st t || st.faithful then set_stale_w st x true
  else begin
    (* Unary write: materialize eagerly (same rationale as unary reads). *)
    VC.assign ~into:st.w.(x) st.c.(t);
    set_stale_w st x false
  end;
  st.last_w_thr.(x) <- t;
  propagate_update_sets st st.upd_w x ~skip:nil st.c.(t)

let handle_begin st t =
  st.depth.(t) <- st.depth.(t) + 1;
  if st.depth.(t) = 1 then begin
    st.seq.(t) <- st.seq.(t) + 1;
    VC.bump st.c.(t) t;
    VC.assign ~into:st.cb.(t) st.c.(t)
  end

let parent_alive st t =
  match st.parent.(t) with
  | None -> false
  | Some (p, s) -> st.depth.(p) > 0 && st.seq.(p) = s

(* Garbage-collection test.  The printed Algorithm 3 keeps a completing
   transaction iff the forking transaction is still alive or the thread's
   clock changed during the transaction.  That under-approximates "has an
   incoming edge" in two ways: an edge from a transaction whose knowledge
   this thread had already absorbed changes nothing in the clock, and a
   program-order edge from the thread's own earlier (kept) transaction is
   invisible to both tests — in either case the transaction is wrongly
   collected and a later cycle through it is missed.

   The sound criterion used here: keep the transaction iff its clock
   contains the begin of some {e other} thread's still-active transaction.
   Any future cycle through the completing transaction must route through a
   currently-active foreign transaction W (edges into already-completed
   transactions can no longer form), and the frozen part of such a cycle
   has already carried C⊲_W into this thread's clock, so the test is a
   sound over-approximation; it also subsumes the alive-parent case, since
   a fork performed inside an active transaction transfers that
   transaction's begin to the child.  [faithful] reproduces the printed
   behaviour. *)
let has_incoming_edge st t =
  if st.faithful then
    parent_alive st t || not (VC.equal_except st.cb.(t) st.c.(t) t)
  else begin
    let c_t = st.c.(t) in
    let rec knows_active_foreign u =
      u < st.threads
      && ((u <> t && st.depth.(u) > 0
           && VC.get c_t u >= VC.get st.cb.(u) u)
         || knows_active_foreign (u + 1))
    in
    knows_active_foreign 0
  end

let end_with_incoming_edge st t =
  let c_t = st.c.(t) in
  for u = 0 to st.threads - 1 do
    if u <> t && begin_leq st t st.c.(u) then
      check_and_get st c_t c_t u (Violation.At_end (Ids.Tid.of_int u))
  done;
  for l = 0 to st.locks - 1 do
    if begin_leq st t st.l.(l) then VC.join_into ~into:st.l.(l) c_t
  done;
  Iset.iter
    (fun x ->
      if (not (is_stale_w st x)) || st.last_w_thr.(x) = t then begin
        VC.join_into ~into:st.w.(x) c_t;
        if not st.faithful then
          propagate_update_sets st st.upd_w x ~skip:t c_t
      end;
      if st.last_w_thr.(x) = t then set_stale_w st x false)
    st.upd_w.(t);
  Iset.clear st.upd_w.(t);
  Iset.iter
    (fun x ->
      VC.join_into ~into:st.r.(x) c_t;
      VC.join_into_zeroed ~into:st.hr.(x) c_t t;
      Iset.remove st.stale_r.(x) t;
      if not st.faithful then propagate_update_sets st st.upd_r x ~skip:t c_t)
    st.upd_r.(t);
  Iset.clear st.upd_r.(t)

let end_garbage_collect st t =
  Iset.iter (fun x -> Iset.remove st.stale_r.(x) t) st.upd_r.(t);
  Iset.clear st.upd_r.(t);
  Iset.iter
    (fun x ->
      if st.last_w_thr.(x) = t then begin
        set_stale_w st x false;
        st.last_w_thr.(x) <- nil
      end)
    st.upd_w.(t);
  Iset.clear st.upd_w.(t);
  for l = 0 to st.locks - 1 do
    if st.last_rel_thr.(l) = t then st.last_rel_thr.(l) <- nil
  done

let handle_end st t =
  if st.depth.(t) > 0 then begin
    st.depth.(t) <- st.depth.(t) - 1;
    if st.depth.(t) = 0 then
      if has_incoming_edge st t then end_with_incoming_edge st t
      else end_garbage_collect st t
  end

let feed st (e : Event.t) =
  match st.violation with
  | Some _ as v -> v
  | None -> (
    st.processed <- st.processed + 1;
    let t = Ids.Tid.to_int e.thread in
    match
      (match e.op with
      | Event.Acquire l -> handle_acquire st t (Ids.Lid.to_int l)
      | Event.Release l -> handle_release st t (Ids.Lid.to_int l)
      | Event.Fork u -> handle_fork st t (Ids.Tid.to_int u)
      | Event.Join u -> handle_join st t (Ids.Tid.to_int u)
      | Event.Read x -> handle_read st t (Ids.Vid.to_int x)
      | Event.Write x -> handle_write st t (Ids.Vid.to_int x)
      | Event.Begin -> handle_begin st t
      | Event.End -> handle_end st t)
    with
    | () -> None
    | exception Found site ->
      let v = Violation.make ~index:(st.processed - 1) ~event:e ~site in
      st.violation <- Some v;
      Some v)

(* unpack-and-delegate (reference copies stay off the packed hot path) *)
let feed_packed st w = feed st (Packed.to_event w)

module Faithful : Checker.S = struct
  type nonrec t = t

  let name = "aerodrome-faithful-preepoch"

  let create ~threads ~locks ~vars =
    create_with ~faithful:true ~threads ~locks ~vars ()

  let feed = feed
  let feed_packed = feed_packed
  let violation = violation
  let processed = processed
end

module Slow : Checker.S = struct
  type nonrec t = t

  let name = "aerodrome-slowcheck-preepoch"

  let create ~threads ~locks ~vars =
    create_with ~fast_checks:false ~threads ~locks ~vars ()

  let feed = feed
  let feed_packed = feed_packed
  let violation = violation
  let processed = processed
end

let faithful_checker : Checker.t = (module Faithful)
let slow_checker : Checker.t = (module Slow)

(* Introspection *)

let snapshot clk = Vclock.Vtime.of_clock clk
let thread_clock st t = snapshot st.c.(t)
let begin_clock st t = snapshot st.cb.(t)
let write_clock st x = snapshot st.w.(x)
let read_clock_joined st x = snapshot st.r.(x)
let read_clock_check st x = snapshot st.hr.(x)
let write_is_stale st x = is_stale_w st x
let last_writer st x = if st.last_w_thr.(x) = nil then None else Some st.last_w_thr.(x)
let in_transaction st t = active st t
