open Traces
module Violation = Aerodrome.Violation
module Checker = Aerodrome.Checker
module VC = Vclock.Vector_clock

let name = "aerodrome-basic-preepoch"

let nil = -1

type t = {
  threads : int;
  locks : int;
  vars : int;
  c : VC.t array;  (* C_t: timestamp of thread t's last event *)
  cb : VC.t array;  (* C⊲_t: timestamp of thread t's last begin *)
  l : VC.t array;  (* L_ℓ: timestamp of the last rel(ℓ) *)
  w : VC.t array;  (* W_x: timestamp of the last w(x) *)
  r : VC.t option array array;  (* r.(x).(t) = R_{t,x}, allocated lazily *)
  last_rel_thr : int array;  (* lastRelThr_ℓ *)
  last_w_thr : int array;  (* lastWThr_x *)
  depth : int array;  (* begin/end nesting depth per thread *)
  mutable violation : Violation.t option;
  mutable processed : int;
}

let create ~threads ~locks ~vars =
  let dim = max threads 1 in
  {
    threads = dim;
    locks;
    vars;
    c = Array.init dim (fun t -> VC.unit dim t);
    cb = Array.init dim (fun _ -> VC.bottom dim);
    l = Array.init (max locks 0) (fun _ -> VC.bottom dim);
    w = Array.init (max vars 0) (fun _ -> VC.bottom dim);
    r = Array.make (max vars 0) [||];
    last_rel_thr = Array.make (max locks 0) nil;
    last_w_thr = Array.make (max vars 0) nil;
    depth = Array.make dim 0;
    violation = None;
    processed = 0;
  }

let violation st = st.violation
let processed st = st.processed

let active st t = st.depth.(t) > 0
let in_transaction = active

exception Found of Violation.site

(* checkAndGet(clk, t) of Algorithm 1: declare a violation if clk is
   ordered after the begin event of t's active transaction, otherwise join
   clk into C_t. *)
let check_and_get st clk t site =
  if active st t && VC.leq st.cb.(t) clk then raise (Found site);
  VC.join_into ~into:st.c.(t) clk

let read_row st x =
  if st.r.(x) = [||] then st.r.(x) <- Array.make st.threads None;
  st.r.(x)

let read_clock_ref st t x =
  let row = read_row st x in
  match row.(t) with
  | Some clk -> clk
  | None ->
    let clk = VC.bottom st.threads in
    row.(t) <- Some clk;
    clk

let handle_acquire st t l =
  if st.last_rel_thr.(l) <> t then
    check_and_get st st.l.(l) t Violation.At_acquire

let handle_release st t l =
  VC.assign ~into:st.l.(l) st.c.(t);
  st.last_rel_thr.(l) <- t

let handle_fork st t u = VC.join_into ~into:st.c.(u) st.c.(t)

let handle_join st t u = check_and_get st st.c.(u) t Violation.At_join

let handle_read st t x =
  if st.last_w_thr.(x) <> t then
    check_and_get st st.w.(x) t Violation.At_read;
  VC.assign ~into:(read_clock_ref st t x) st.c.(t)

let handle_write st t x =
  if st.last_w_thr.(x) <> t then
    check_and_get st st.w.(x) t Violation.At_write_vs_write;
  let row = read_row st x in
  for u = 0 to st.threads - 1 do
    if u <> t then
      match row.(u) with
      | Some r_ux -> check_and_get st r_ux t Violation.At_write_vs_read
      | None -> ()
  done;
  VC.assign ~into:st.w.(x) st.c.(t);
  st.last_w_thr.(x) <- t

let handle_begin st t =
  st.depth.(t) <- st.depth.(t) + 1;
  if st.depth.(t) = 1 then begin
    VC.bump st.c.(t) t;
    VC.assign ~into:st.cb.(t) st.c.(t)
  end

(* End of an outermost transaction: propagate the transaction's final
   timestamp to every clock that knows its begin event (lines 38–46). *)
let handle_end st t =
  if st.depth.(t) > 0 then begin
    st.depth.(t) <- st.depth.(t) - 1;
    if st.depth.(t) = 0 then begin
      let cb_t = st.cb.(t) and c_t = st.c.(t) in
      for u = 0 to st.threads - 1 do
        if u <> t && VC.leq cb_t st.c.(u) then
          check_and_get st c_t u (Violation.At_end (Ids.Tid.of_int u))
      done;
      for l = 0 to st.locks - 1 do
        if VC.leq cb_t st.l.(l) then VC.join_into ~into:st.l.(l) c_t
      done;
      for x = 0 to st.vars - 1 do
        if VC.leq cb_t st.w.(x) then VC.join_into ~into:st.w.(x) c_t;
        let row = st.r.(x) in
        if row <> [||] then
          for u = 0 to st.threads - 1 do
            match row.(u) with
            | Some r_ux when VC.leq cb_t r_ux -> VC.join_into ~into:r_ux c_t
            | Some _ | None -> ()
          done
      done
    end
  end

let feed st (e : Event.t) =
  match st.violation with
  | Some _ as v -> v
  | None -> (
    st.processed <- st.processed + 1;
    let t = Ids.Tid.to_int e.thread in
    match
      (match e.op with
      | Event.Acquire l -> handle_acquire st t (Ids.Lid.to_int l)
      | Event.Release l -> handle_release st t (Ids.Lid.to_int l)
      | Event.Fork u -> handle_fork st t (Ids.Tid.to_int u)
      | Event.Join u -> handle_join st t (Ids.Tid.to_int u)
      | Event.Read x -> handle_read st t (Ids.Vid.to_int x)
      | Event.Write x -> handle_write st t (Ids.Vid.to_int x)
      | Event.Begin -> handle_begin st t
      | Event.End -> handle_end st t)
    with
    | () -> None
    | exception Found site ->
      let v = Violation.make ~index:(st.processed - 1) ~event:e ~site in
      st.violation <- Some v;
      Some v)

(* Introspection *)

let snapshot clk = Vclock.Vtime.of_clock clk
let thread_clock st t = snapshot st.c.(t)
let begin_clock st t = snapshot st.cb.(t)
let lock_clock st l = snapshot st.l.(l)
let write_clock st x = snapshot st.w.(x)

let read_clock st ~thread ~var =
  let row = st.r.(var) in
  if row = [||] then Vclock.Vtime.bottom st.threads
  else
    match row.(thread) with
    | Some clk -> snapshot clk
    | None -> Vclock.Vtime.bottom st.threads

(* unpack-and-delegate (reference copies stay off the packed hot path) *)
let feed_packed st w = feed st (Packed.to_event w)
