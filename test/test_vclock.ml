(* Unit and property tests for the vector-clock substrate. *)

module VC = Vclock.Vector_clock
module VT = Vclock.Vtime
module AC = Vclock.Aclock

let check = Alcotest.check
let vt = Helpers.vtime

(* --- Vector_clock unit tests --- *)

let test_create () =
  let v = VC.create 3 in
  check Alcotest.int "dim" 3 (VC.dim v);
  check Alcotest.bool "bottom" true (VC.is_bottom v);
  check (Alcotest.list Alcotest.int) "components" [ 0; 0; 0 ] (VC.to_list v)

let test_unit () =
  let v = VC.unit 3 1 in
  check (Alcotest.list Alcotest.int) "unit" [ 0; 1; 0 ] (VC.to_list v);
  Alcotest.check_raises "out of range" (Invalid_argument "Vector_clock.unit: thread out of range")
    (fun () -> ignore (VC.unit 2 5))

let test_set_get_bump () =
  let v = VC.create 3 in
  VC.set v 0 7;
  VC.bump v 0;
  VC.bump v 2;
  check Alcotest.int "set+bump" 8 (VC.get v 0);
  check Alcotest.int "bump from zero" 1 (VC.get v 2);
  Alcotest.check_raises "negative" (Invalid_argument "Vector_clock.set: negative component")
    (fun () -> VC.set v 1 (-1))

let test_join_into () =
  let a = VC.of_list [ 1; 5; 0 ] and b = VC.of_list [ 3; 2; 0 ] in
  VC.join_into ~into:a b;
  check (Alcotest.list Alcotest.int) "join" [ 3; 5; 0 ] (VC.to_list a);
  check (Alcotest.list Alcotest.int) "arg unchanged" [ 3; 2; 0 ] (VC.to_list b)

let test_join_into_zeroed () =
  let a = VC.of_list [ 1; 1; 1 ] and b = VC.of_list [ 9; 9; 9 ] in
  VC.join_into_zeroed ~into:a b 1;
  check (Alcotest.list Alcotest.int) "zeroed join" [ 9; 1; 9 ] (VC.to_list a)

let test_assign () =
  let a = VC.create 3 and b = VC.of_list [ 4; 5; 6 ] in
  VC.assign ~into:a b;
  check (Alcotest.list Alcotest.int) "assign" [ 4; 5; 6 ] (VC.to_list a);
  VC.assign_zeroed ~into:a b 2;
  check (Alcotest.list Alcotest.int) "assign zeroed" [ 4; 5; 0 ] (VC.to_list a)

let test_leq () =
  let a = VC.of_list [ 1; 2; 3 ] and b = VC.of_list [ 1; 3; 3 ] in
  check Alcotest.bool "a<=b" true (VC.leq a b);
  check Alcotest.bool "b<=a" false (VC.leq b a);
  check Alcotest.bool "refl" true (VC.leq a a);
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Vector_clock.leq: dimension mismatch")
    (fun () -> ignore (VC.leq a (VC.create 2)))

let test_equal_except () =
  let a = VC.of_list [ 1; 2; 3 ] and b = VC.of_list [ 1; 9; 3 ] in
  check Alcotest.bool "equal except 1" true (VC.equal_except a b 1);
  check Alcotest.bool "not equal except 0" false (VC.equal_except a b 0);
  check Alcotest.bool "equal" false (VC.equal a b)

let test_copy_reset () =
  let a = VC.of_list [ 1; 2 ] in
  let b = VC.copy a in
  VC.reset a;
  check Alcotest.bool "reset" true (VC.is_bottom a);
  check (Alcotest.list Alcotest.int) "copy unaffected" [ 1; 2 ] (VC.to_list b)

let test_pp () =
  check Alcotest.string "pp" "⟨1,2,3⟩" (VC.to_string (VC.of_list [ 1; 2; 3 ]))

(* --- Vtime unit tests --- *)

let test_vtime_basics () =
  let v = VT.of_list [ 1; 2 ] in
  check vt "set" (VT.of_list [ 1; 7 ]) (VT.set v 1 7);
  check vt "original unchanged" (VT.of_list [ 1; 2 ]) v;
  check vt "bump" (VT.of_list [ 2; 2 ]) (VT.bump v 0);
  check vt "zeroed" (VT.of_list [ 0; 2 ]) (VT.zeroed v 0);
  check vt "join" (VT.of_list [ 3; 2 ]) (VT.join v (VT.of_list [ 3; 0 ]))

let test_vtime_orders () =
  let a = VT.of_list [ 1; 0 ] and b = VT.of_list [ 0; 1 ] in
  check Alcotest.bool "concurrent" true (VT.concurrent a b);
  check Alcotest.bool "lt" true (VT.lt a (VT.of_list [ 2; 0 ]));
  check Alcotest.bool "not lt self" false (VT.lt a a)

let test_vtime_clock_conversion () =
  let v = VT.of_list [ 3; 1; 4 ] in
  check vt "roundtrip" v (VT.of_clock (VT.to_clock v))

(* --- Properties --- *)

let arb_vt dim =
  QCheck.make
    ~print:(fun v -> VT.to_string v)
    (fun rs ->
      VT.of_list (List.init dim (fun _ -> Random.State.int rs 8)))

let prop_join_comm =
  QCheck.Test.make ~name:"vtime join commutative" ~count:200
    (QCheck.pair (arb_vt 4) (arb_vt 4))
    (fun (a, b) -> VT.equal (VT.join a b) (VT.join b a))

let prop_join_assoc =
  QCheck.Test.make ~name:"vtime join associative" ~count:200
    (QCheck.triple (arb_vt 4) (arb_vt 4) (arb_vt 4))
    (fun (a, b, c) -> VT.equal (VT.join a (VT.join b c)) (VT.join (VT.join a b) c))

let prop_join_idem =
  QCheck.Test.make ~name:"vtime join idempotent" ~count:200 (arb_vt 4)
    (fun a -> VT.equal (VT.join a a) a)

let prop_join_upper_bound =
  QCheck.Test.make ~name:"join is least upper bound" ~count:200
    (QCheck.triple (arb_vt 4) (arb_vt 4) (arb_vt 4))
    (fun (a, b, c) ->
      let j = VT.join a b in
      VT.leq a j && VT.leq b j
      && ((not (VT.leq a c && VT.leq b c)) || VT.leq j c))

let prop_leq_antisym =
  QCheck.Test.make ~name:"leq antisymmetric" ~count:200
    (QCheck.pair (arb_vt 4) (arb_vt 4))
    (fun (a, b) -> (not (VT.leq a b && VT.leq b a)) || VT.equal a b)

let prop_leq_trans =
  QCheck.Test.make ~name:"leq transitive" ~count:200
    (QCheck.triple (arb_vt 3) (arb_vt 3) (arb_vt 3))
    (fun (a, b, c) -> (not (VT.leq a b && VT.leq b c)) || VT.leq a c)

let prop_mutable_matches_persistent =
  QCheck.Test.make ~name:"Vector_clock.join_into agrees with Vtime.join"
    ~count:200
    (QCheck.pair (arb_vt 5) (arb_vt 5))
    (fun (a, b) ->
      let ca = VT.to_clock a in
      VC.join_into ~into:ca (VT.to_clock b);
      VT.equal (VT.of_clock ca) (VT.join a b))

let prop_zeroed_join_matches =
  QCheck.Test.make ~name:"join_into_zeroed agrees with Vtime.zeroed + join"
    ~count:200
    (QCheck.pair (arb_vt 5) (arb_vt 5))
    (fun (a, b) ->
      let ca = VT.to_clock a in
      VC.join_into_zeroed ~into:ca (VT.to_clock b) 2;
      VT.equal (VT.of_clock ca) (VT.join a (VT.zeroed b 2)))

(* --- Aclock vs Vector_clock: the adaptive representation is exact --- *)

(* Random operation sequences over a small bank of clocks, applied in
   lock-step to an Aclock and a Vector_clock.  The values must stay
   identical after every operation, whatever mix of epoch-form and
   inflated clocks the sequence produces. *)

type aop =
  | Bump of int * int
  | Set of int * int * int
  | Join of int * int
  | Join_zeroed of int * int * int
  | Assign of int * int
  | Assign_zeroed of int * int * int
  | Reset of int

let pp_aop = function
  | Bump (a, t) -> Printf.sprintf "bump %d %d" a t
  | Set (a, t, c) -> Printf.sprintf "set %d %d %d" a t c
  | Join (a, b) -> Printf.sprintf "join %d %d" a b
  | Join_zeroed (a, b, z) -> Printf.sprintf "join0 %d %d %d" a b z
  | Assign (a, b) -> Printf.sprintf "assign %d %d" a b
  | Assign_zeroed (a, b, z) -> Printf.sprintf "assign0 %d %d %d" a b z
  | Reset a -> Printf.sprintf "reset %d" a

let bank = 4
let adim = 4

let arb_aops =
  let gen rs =
    let rand n = Random.State.int rs n in
    List.init
      (10 + rand 50)
      (fun _ ->
        match rand 7 with
        | 0 -> Bump (rand bank, rand adim)
        | 1 -> Set (rand bank, rand adim, rand 8)
        | 2 -> Join (rand bank, rand bank)
        | 3 -> Join_zeroed (rand bank, rand bank, rand adim)
        | 4 -> Assign (rand bank, rand bank)
        | 5 -> Assign_zeroed (rand bank, rand bank, rand adim)
        | _ -> Reset (rand bank))
  in
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_aop ops))
    gen

let prop_aclock_matches_vector_clock =
  QCheck.Test.make ~name:"Aclock tracks Vector_clock exactly" ~count:500
    arb_aops
    (fun ops ->
      let acs =
        Array.init bank (fun i ->
            if i < 2 then AC.unit adim i else AC.create adim)
      in
      let vcs = Array.map (fun a -> VC.of_list (AC.to_list a)) acs in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
          | Bump (a, t) ->
            AC.bump acs.(a) t;
            VC.bump vcs.(a) t
          | Set (a, t, c) ->
            AC.set acs.(a) t c;
            VC.set vcs.(a) t c
          | Join (a, b) ->
            let before = AC.to_list acs.(a) in
            let grew = AC.join_into_grew ~into:acs.(a) acs.(b) in
            VC.join_into ~into:vcs.(a) vcs.(b);
            if grew <> (AC.to_list acs.(a) <> before) then ok := false
          | Join_zeroed (a, b, z) ->
            AC.join_into_zeroed ~into:acs.(a) acs.(b) z;
            VC.join_into_zeroed ~into:vcs.(a) vcs.(b) z
          | Assign (a, b) ->
            AC.assign ~into:acs.(a) acs.(b);
            VC.assign ~into:vcs.(a) vcs.(b)
          | Assign_zeroed (a, b, z) ->
            AC.assign_zeroed ~into:acs.(a) acs.(b) z;
            VC.assign_zeroed ~into:vcs.(a) vcs.(b) z
          | Reset a ->
            AC.reset acs.(a);
            VC.reset vcs.(a));
          for i = 0 to bank - 1 do
            if AC.to_list acs.(i) <> VC.to_list vcs.(i) then ok := false;
            (* while flat, every non-owner component is zero *)
            if AC.is_flat acs.(i) then begin
              let owner = AC.flat_owner acs.(i) in
              for t = 0 to adim - 1 do
                if t <> owner && AC.get acs.(i) t <> 0 then ok := false
              done
            end
            else if AC.flat_owner acs.(i) <> -1 then ok := false
          done)
        ops;
      (* the order and equality queries agree on the final bank *)
      for i = 0 to bank - 1 do
        for j = 0 to bank - 1 do
          if AC.leq acs.(i) acs.(j) <> VC.leq vcs.(i) vcs.(j) then ok := false;
          if AC.equal acs.(i) acs.(j) <> VC.equal vcs.(i) vcs.(j) then
            ok := false;
          if
            AC.equal_except acs.(i) acs.(j) 1
            <> VC.equal_except vcs.(i) vcs.(j) 1
          then ok := false;
          for t = 0 to adim - 1 do
            if AC.get acs.(i) t <> AC.unsafe_get acs.(i) t then ok := false
          done
        done
      done;
      !ok)

let suite =
  ( "vclock",
    [
      Alcotest.test_case "create/bottom" `Quick test_create;
      Alcotest.test_case "unit" `Quick test_unit;
      Alcotest.test_case "set/get/bump" `Quick test_set_get_bump;
      Alcotest.test_case "join_into" `Quick test_join_into;
      Alcotest.test_case "join_into_zeroed" `Quick test_join_into_zeroed;
      Alcotest.test_case "assign" `Quick test_assign;
      Alcotest.test_case "leq" `Quick test_leq;
      Alcotest.test_case "equal_except" `Quick test_equal_except;
      Alcotest.test_case "copy/reset" `Quick test_copy_reset;
      Alcotest.test_case "pp" `Quick test_pp;
      Alcotest.test_case "vtime basics" `Quick test_vtime_basics;
      Alcotest.test_case "vtime orders" `Quick test_vtime_orders;
      Alcotest.test_case "vtime<->clock" `Quick test_vtime_clock_conversion;
    ]
    @ Helpers.qcheck_tests
        [
          prop_join_comm;
          prop_join_assoc;
          prop_join_idem;
          prop_join_upper_bound;
          prop_leq_antisym;
          prop_leq_trans;
          prop_mutable_matches_persistent;
          prop_zeroed_join_matches;
          prop_aclock_matches_vector_clock;
        ] )
