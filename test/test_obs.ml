(* Telemetry library tests: metric primitives, registry snapshots and
   diffs, JSON round-trips, the ambient scope, heartbeat rendering and
   Chrome trace export.  Tests that flip the process-wide [Obs.enabled]
   switch restore it on the way out so the rest of the suite (which
   asserts exact counter values with telemetry off) is unaffected. *)

let check = Alcotest.check

let with_telemetry on f =
  let was = Obs.on () in
  if on then Obs.enable () else Obs.disable ();
  Fun.protect
    ~finally:(fun () -> if was then Obs.enable () else Obs.disable ())
    f

(* --- primitives --- *)

let test_counter () =
  let c = Obs.Counter.make "c" in
  check Alcotest.int "zero" 0 (Obs.Counter.value c);
  Obs.Counter.inc c;
  Obs.Counter.add c 41;
  check Alcotest.int "42" 42 (Obs.Counter.value c);
  Obs.Counter.reset c;
  check Alcotest.int "reset" 0 (Obs.Counter.value c)

let test_shared_counter () =
  let c = Obs.Shared_counter.make "s" in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Obs.Shared_counter.inc c
            done))
  in
  List.iter Domain.join workers;
  check Alcotest.int "atomic increments" 4000 (Obs.Shared_counter.value c)

let test_gauge () =
  let g = Obs.Gauge.make "g" in
  Obs.Gauge.set g 2.5;
  Obs.Gauge.add g 0.5;
  check (Alcotest.float 1e-9) "add" 3.0 (Obs.Gauge.value g);
  Obs.Gauge.set_max g 1.0;
  check (Alcotest.float 1e-9) "set_max keeps peak" 3.0 (Obs.Gauge.value g);
  Obs.Gauge.set_max g 7.0;
  check (Alcotest.float 1e-9) "set_max raises" 7.0 (Obs.Gauge.value g);
  let init = Obs.Gauge.make ~init:(-1.0) "i" in
  check (Alcotest.float 1e-9) "init" (-1.0) (Obs.Gauge.value init)

let test_histogram_bucketing () =
  (* default bounds are upper-inclusive: 0 | 1 | 2 | 4 | ... | 128 | over *)
  let h = Obs.Histogram.make "h" in
  List.iter (Obs.Histogram.observe h) [ 0; 1; 2; 3; 4; 5; 128; 129; 10_000 ];
  let counts = Obs.Histogram.counts h in
  check Alcotest.int "v=0 -> bucket <=0" 1 counts.(0);
  check Alcotest.int "v=1 -> bucket <=1" 1 counts.(1);
  check Alcotest.int "v=2 -> bucket <=2" 1 counts.(2);
  check Alcotest.int "v in (2,4] -> bucket <=4" 2 counts.(3);
  check Alcotest.int "v=5 -> bucket <=8" 1 counts.(4);
  check Alcotest.int "v=128 -> last bounded bucket" 1 counts.(8);
  check Alcotest.int "overflow" 2 counts.(9);
  check Alcotest.int "total" 9 (Obs.Histogram.total h);
  check Alcotest.int "sum" (0 + 1 + 2 + 3 + 4 + 5 + 128 + 129 + 10_000)
    (Obs.Histogram.sum h);
  check (Alcotest.float 1e-9) "mean"
    (float_of_int (Obs.Histogram.sum h) /. 9.0)
    (Obs.Histogram.mean h);
  let empty = Obs.Histogram.make "e" in
  check (Alcotest.float 1e-9) "empty mean" 0.0 (Obs.Histogram.mean empty);
  Alcotest.check_raises "empty bounds" (Invalid_argument "Histogram.make: empty bounds")
    (fun () -> ignore (Obs.Histogram.make ~bounds:[||] "x"));
  Alcotest.check_raises "non-increasing bounds"
    (Invalid_argument "Histogram.make: bounds must be strictly increasing")
    (fun () -> ignore (Obs.Histogram.make ~bounds:[| 1; 1 |] "x"))

(* --- registry and snapshots --- *)

let test_registry_snapshot () =
  let reg = Obs.Registry.create () in
  let a = Obs.Registry.counter reg "a" in
  let b = Obs.Registry.counter reg "b" in
  let g = Obs.Registry.gauge reg "g" in
  let h = Obs.Registry.histogram reg "h" in
  Obs.Registry.probe reg "p" (fun () -> Obs.Snapshot.Int 7);
  Obs.Counter.add a 3;
  Obs.Counter.add b 5;
  Obs.Gauge.set g 1.5;
  Obs.Histogram.observe h 2;
  let snap = Obs.Registry.snapshot reg in
  check (Alcotest.list Alcotest.string) "registration order"
    [ "a"; "b"; "g"; "h"; "p" ]
    (List.map (fun (e : Obs.Snapshot.entry) -> e.name) snap);
  check (Alcotest.option Alcotest.int) "counter" (Some 3)
    (Obs.Snapshot.get_int snap "a");
  check (Alcotest.option (Alcotest.float 1e-9)) "gauge as float" (Some 1.5)
    (Obs.Snapshot.get_float snap "g");
  check (Alcotest.option (Alcotest.float 1e-9)) "int as float" (Some 5.0)
    (Obs.Snapshot.get_float snap "b");
  check (Alcotest.option Alcotest.int) "probe" (Some 7)
    (Obs.Snapshot.get_int snap "p");
  check (Alcotest.option Alcotest.int) "missing" None
    (Obs.Snapshot.get_int snap "zzz")

let test_snapshot_diff () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "c" in
  let h = Obs.Registry.histogram reg "h" in
  Obs.Counter.add c 10;
  Obs.Histogram.observe h 1;
  let before = Obs.Registry.snapshot reg in
  Obs.Counter.add c 32;
  Obs.Histogram.observe h 3;
  Obs.Histogram.observe h 200;
  let after = Obs.Registry.snapshot reg in
  let d = Obs.Snapshot.diff ~before ~after in
  check (Alcotest.option Alcotest.int) "counter delta" (Some 32)
    (Obs.Snapshot.get_int d "c");
  (match Obs.Snapshot.find d "h" with
  | Some { value = Obs.Snapshot.Hist { total; sum; counts; _ }; _ } ->
    check Alcotest.int "hist total delta" 2 total;
    check Alcotest.int "hist sum delta" 203 sum;
    check Alcotest.int "hist overflow delta" 1 counts.(Array.length counts - 1)
  | _ -> Alcotest.fail "expected a histogram entry");
  (* entries missing from [before] count from zero *)
  let d0 = Obs.Snapshot.diff ~before:Obs.Snapshot.empty ~after in
  check (Alcotest.option Alcotest.int) "no baseline" (Some 42)
    (Obs.Snapshot.get_int d0 "c")

(* --- merge --- *)

let names (t : Obs.Snapshot.t) = List.map (fun e -> e.Obs.Snapshot.name) t

let test_snapshot_merge () =
  let open Obs.Snapshot in
  let s = [ entry "a" (Int 1); entry "g" (Float 2.5) ] in
  (* the empty snapshot is a unit on either side *)
  check Alcotest.bool "empty left unit" true (merge [ empty; s ] = s);
  check Alcotest.bool "empty right unit" true (merge [ s; empty ] = s);
  check Alcotest.bool "all empty" true (merge [ empty; empty ] = empty);
  (* disjoint metric sets union, first-appearance order *)
  let t = [ entry "b" (Int 10) ] in
  let m = merge [ s; t ] in
  check (Alcotest.list Alcotest.string) "disjoint union order"
    [ "a"; "g"; "b" ] (names m);
  check (Alcotest.option Alcotest.int) "left survives" (Some 1)
    (Obs.Snapshot.get_int m "a");
  check (Alcotest.option Alcotest.int) "right survives" (Some 10)
    (Obs.Snapshot.get_int m "b");
  (* overlapping: counters add, gauges keep their maximum *)
  let m2 = merge [ s; [ entry "a" (Int 41); entry "g" (Float 1.0) ] ] in
  check (Alcotest.option Alcotest.int) "counters add" (Some 42)
    (Obs.Snapshot.get_int m2 "a");
  check (Alcotest.option (Alcotest.float 1e-9)) "gauges max" (Some 2.5)
    (Obs.Snapshot.get_float m2 "g")

let test_snapshot_merge_hist_mismatch () =
  let open Obs.Snapshot in
  let hist bounds counts total sum = Hist { bounds; counts; total; sum } in
  let h1 = [ entry "h" (hist [| 1; 2 |] [| 1; 0; 0 |] 1 1) ] in
  let h2 = [ entry "h" (hist [| 1; 2 |] [| 0; 2; 0 |] 2 4) ] in
  (* equal bounds: buckets add *)
  (match merge [ h1; h2 ] with
  | [ { value = Hist { counts; total; sum; _ }; _ } ] ->
    check Alcotest.int "total adds" 3 total;
    check Alcotest.int "sum adds" 5 sum;
    check (Alcotest.array Alcotest.int) "counts add" [| 1; 2; 0 |] counts
  | _ -> Alcotest.fail "expected one merged histogram");
  (* mismatched bucket bounds must refuse, not silently misalign *)
  let h3 = [ entry "h" (hist [| 1; 4 |] [| 0; 0; 1 |] 1 9) ] in
  check Alcotest.bool "mismatched bounds refused" true
    (match merge [ h1; h3 ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* a different arity is a mismatch too *)
  let h4 = [ entry "h" (hist [| 1 |] [| 0; 1 |] 1 2) ] in
  check Alcotest.bool "mismatched arity refused" true
    (match merge [ h1; h4 ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_snapshot_merge_associative () =
  let open Obs.Snapshot in
  let hist bounds counts total sum = Hist { bounds; counts; total; sum } in
  let x =
    [ entry "c" (Int 1); entry "g" (Float 1.0);
      entry "h" (hist [| 8 |] [| 1; 0 |] 1 3) ]
  in
  let y = [ entry "c" (Int 2); entry "d" (Int 7) ] in
  let z =
    [ entry "g" (Float 9.0); entry "h" (hist [| 8 |] [| 0; 2 |] 2 40) ]
  in
  let left = merge [ merge [ x; y ]; z ] in
  let right = merge [ x; merge [ y; z ] ] in
  let flat = merge [ x; y; z ] in
  check Alcotest.bool "left = right" true (left = right);
  check Alcotest.bool "left = flat" true (left = flat);
  check (Alcotest.option Alcotest.int) "summed counter" (Some 3)
    (Obs.Snapshot.get_int flat "c")

let test_snapshot_sorted () =
  let open Obs.Snapshot in
  let s = [ entry "z" (Int 1); entry "a" (Int 2); entry "m" (Int 3) ] in
  check (Alcotest.list Alcotest.string) "name order" [ "a"; "m"; "z" ]
    (names (sorted s));
  (* stable: duplicate names keep their relative order *)
  let dup = [ entry "k" (Int 1); entry "k" (Int 2) ] in
  check Alcotest.bool "stable on duplicates" true (sorted dup = dup)

(* --- exporter rendering --- *)

let test_exporter_exposition () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "events.total" in
  let g = Obs.Registry.gauge reg "heap.peak_words" in
  let h = Obs.Registry.histogram reg "sets.stale_readers" in
  Obs.Counter.add c 12;
  Obs.Gauge.set g 3.5;
  Obs.Histogram.observe h 2;
  let series = Obs.Exporter.of_snapshot (Obs.Registry.snapshot reg) in
  let body = Obs.Exporter.render series in
  (match Obs.Exporter.validate body with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("exposition rejected: " ^ msg));
  let contains needle =
    let nl = String.length needle and bl = String.length body in
    let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "counter family" true
    (contains "# TYPE aerodrome_events_total counter");
  check Alcotest.bool "counter sample" true (contains "aerodrome_events_total 12");
  check Alcotest.bool "gauge sample" true (contains "aerodrome_heap_peak_words 3.5");
  check Alcotest.bool "histogram +Inf bucket" true
    (contains "le=\"+Inf\"");
  check Alcotest.bool "terminated" true (contains "# EOF");
  (* the validator is strict: truncation and malformed lines are rejected *)
  check Alcotest.bool "truncated rejected" true
    (match Obs.Exporter.validate (String.sub body 0 (String.length body / 2)) with
    | Error _ -> true
    | Ok () -> false);
  check Alcotest.bool "garbage rejected" true
    (match Obs.Exporter.validate "aerodrome_x{ 1\n# EOF\n" with
    | Error _ -> true
    | Ok () -> false)

let test_exporter_serve_fetch () =
  (* round-trip the HTTP responder over both address families with a
     canned page, so the test is independent of live-registry contents *)
  let reg = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter reg "events.total") 7;
  let canned =
    Obs.Exporter.render (Obs.Exporter.of_snapshot (Obs.Registry.snapshot reg))
  in
  let roundtrip addr =
    match Obs.Exporter.serve ~page:(fun () -> canned) addr with
    | Error msg -> Alcotest.fail msg
    | Ok srv ->
      Fun.protect
        ~finally:(fun () -> Obs.Exporter.stop srv)
        (fun () ->
          let bound = Obs.Exporter.bound srv in
          (match Obs.Exporter.fetch bound with
          | Ok body -> check Alcotest.string "served body round-trips" canned body
          | Error msg -> Alcotest.fail msg);
          (* unknown paths are a scrape error, not a hang *)
          match Obs.Exporter.fetch ~path:"/nope" bound with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "expected a 404 scrape error")
  in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "obs-test-%d.sock" (Unix.getpid ()))
  in
  roundtrip ("unix:" ^ sock);
  check Alcotest.bool "unix socket unlinked on stop" false (Sys.file_exists sock);
  roundtrip "127.0.0.1:0";
  (* a dead endpoint is a connection error, not a crash *)
  match Obs.Exporter.fetch ("unix:" ^ sock) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a connection error"

(* --- JSON --- *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("null", Obs.Json.Null);
        ("t", Obs.Json.Bool true);
        ("f", Obs.Json.Bool false);
        ("int", Obs.Json.Num 42.0);
        ("neg", Obs.Json.Num (-7.0));
        ("frac", Obs.Json.Num 1.5);
        ("str", Obs.Json.Str "a\"b\\c\nd");
        ("list", Obs.Json.List [ Obs.Json.Num 1.0; Obs.Json.Str "x" ]);
        ("empty_list", Obs.Json.List []);
        ("empty_obj", Obs.Json.Obj []);
      ]
  in
  let text = Obs.Json.to_string v in
  (match Obs.Json.parse text with
  | Ok v' -> check Alcotest.bool "round-trip" true (v = v')
  | Error msg -> Alcotest.fail msg);
  check Alcotest.bool "truncated input rejected" true
    (match Obs.Json.parse "{\"a\": 1" with Error _ -> true | Ok _ -> false);
  check Alcotest.bool "trailing garbage rejected" true
    (match Obs.Json.parse "1 2" with Error _ -> true | Ok _ -> false);
  (* non-finite numbers serialize as null (JSON has no NaN) *)
  check Alcotest.string "nan -> null" "null"
    (Obs.Json.to_string (Obs.Json.Num Float.nan));
  (* member lookup *)
  (match Obs.Json.member "int" v with
  | Some (Obs.Json.Num f) -> check (Alcotest.float 1e-9) "member" 42.0 f
  | _ -> Alcotest.fail "member lookup failed")

let test_snapshot_json () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "events.total" in
  let h = Obs.Registry.histogram reg "sizes" in
  Obs.Counter.add c 9;
  Obs.Histogram.observe h 3;
  let json = Obs.Snapshot.to_json (Obs.Registry.snapshot reg) in
  let text = Obs.Json.to_string json in
  match Obs.Json.parse text with
  | Error msg -> Alcotest.fail msg
  | Ok v -> (
    (match Obs.Json.member "events.total" v with
    | Some (Obs.Json.Num f) -> check (Alcotest.float 1e-9) "counter" 9.0 f
    | _ -> Alcotest.fail "missing counter");
    match Obs.Json.member "sizes" v with
    | Some (Obs.Json.Obj _ as hist) ->
      (match Obs.Json.member "total" hist with
      | Some (Obs.Json.Num f) -> check (Alcotest.float 1e-9) "hist total" 1.0 f
      | _ -> Alcotest.fail "histogram lost its total")
    | _ -> Alcotest.fail "missing histogram")

(* --- ambient scope --- *)

let test_scope_collect () =
  check Alcotest.bool "inactive outside" false (Obs.Scope.active ());
  let result, snap =
    Obs.Scope.collect (fun () ->
        check Alcotest.bool "active inside" true (Obs.Scope.active ());
        let reg = Obs.Registry.create () in
        Obs.Scope.attach reg;
        let c = Obs.Registry.counter reg "inner" in
        Obs.Counter.add c 5;
        "done")
  in
  check Alcotest.string "result" "done" result;
  check (Alcotest.option Alcotest.int) "harvested" (Some 5)
    (Obs.Snapshot.get_int snap "inner");
  check Alcotest.bool "restored" false (Obs.Scope.active ());
  (* exceptions restore the saved scope *)
  (try ignore (Obs.Scope.collect (fun () -> failwith "boom"))
   with Failure _ -> ());
  check Alcotest.bool "restored after raise" false (Obs.Scope.active ())

let test_scope_feeds_runner () =
  (* telemetry on: the checker's Cmetrics registry lands in the result *)
  with_telemetry true (fun () ->
      let r =
        Analysis.Runner.run (module Aerodrome.Opt) Workloads.Scenarios.rho1
      in
      check (Alcotest.option Alcotest.int) "events.total" (Some 10)
        (Obs.Snapshot.get_int r.Analysis.Runner.metrics "events.total"));
  (* telemetry off: the snapshot is empty and counters stay silent *)
  with_telemetry false (fun () ->
      let r =
        Analysis.Runner.run (module Aerodrome.Opt) Workloads.Scenarios.rho1
      in
      check Alcotest.bool "empty metrics" true
        (r.Analysis.Runner.metrics = Obs.Snapshot.empty))

let test_violation_metrics () =
  with_telemetry true (fun () ->
      let r =
        Analysis.Runner.run (module Aerodrome.Opt) Workloads.Scenarios.rho2
      in
      check Alcotest.bool "violating" true (Analysis.Runner.violating r);
      (match Obs.Snapshot.get_float r.Analysis.Runner.metrics "violation.index" with
      | Some idx -> check Alcotest.bool "violation index recorded" true (idx >= 0.0)
      | None -> Alcotest.fail "violation.index missing");
      match Obs.Snapshot.get_float r.Analysis.Runner.metrics "violation.seconds" with
      | Some s -> check Alcotest.bool "time-to-violation" true (s >= 0.0)
      | None -> Alcotest.fail "violation.seconds missing")

(* --- heartbeat --- *)

let test_heartbeat () =
  let buf = Buffer.create 256 in
  let out = Format.formatter_of_buffer buf in
  let hb = Obs.Heartbeat.create ~out ~every:10 ~label:"hb" () in
  Obs.Heartbeat.set_total hb 40;
  Obs.Heartbeat.tick hb 3;
  Format.pp_print_flush out ();
  check Alcotest.string "below threshold: silent" "" (Buffer.contents buf);
  Obs.Heartbeat.tick hb 10;
  Obs.Heartbeat.tick hb 12;
  Format.pp_print_flush out ();
  let line = Buffer.contents buf in
  check Alcotest.bool "one line at the threshold" true
    (String.starts_with ~prefix:"[hb] 10 events" line);
  check Alcotest.bool "rates rendered" true
    (String.length line > 0
    && String.index_opt line '\n' = Some (String.length line - 1));
  (* a counter reset (new file) re-arms instead of going silent *)
  Buffer.clear buf;
  Obs.Heartbeat.tick hb 2;
  Obs.Heartbeat.tick hb 10;
  Format.pp_print_flush out ();
  check Alcotest.bool "restarted for a new run" true
    (String.starts_with ~prefix:"[hb] 10 events" (Buffer.contents buf))

let test_heartbeat_humanize () =
  check Alcotest.string "plain" "9999" (Obs.Heartbeat.humanize 9999);
  check Alcotest.string "K" "53.2K" (Obs.Heartbeat.humanize 53_200);
  check Alcotest.string "M" "1.5M" (Obs.Heartbeat.humanize 1_500_000);
  check Alcotest.string "B" "2.40B" (Obs.Heartbeat.humanize 2_400_000_000)

(* --- chrome trace --- *)

let test_chrome_trace () =
  check Alcotest.bool "inactive by default" false (Obs.Chrome_trace.active ());
  let c = Obs.Chrome_trace.start () in
  Fun.protect ~finally:Obs.Chrome_trace.stop (fun () ->
      Obs.Chrome_trace.span ~cat:"test" "work" (fun () -> ignore (Sys.opaque_identity 1));
      Obs.Chrome_trace.instant ~cat:"test" "marker";
      let path = Filename.temp_file "obs-test" ".json" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Obs.Chrome_trace.write_file path c;
          let ic = open_in_bin path in
          let text =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          match Obs.Json.parse text with
          | Error msg -> Alcotest.fail msg
          | Ok v -> (
            match Obs.Json.member "traceEvents" v with
            | Some (Obs.Json.List evs) ->
              check Alcotest.int "span + instant" 2 (List.length evs);
              let phases =
                List.filter_map
                  (fun e ->
                    match Obs.Json.member "ph" e with
                    | Some (Obs.Json.Str p) -> Some p
                    | _ -> None)
                  evs
              in
              check (Alcotest.list Alcotest.string) "phases" [ "X"; "i" ] phases
            | _ -> Alcotest.fail "missing traceEvents")))

let test_chrome_trace_limit () =
  let c = Obs.Chrome_trace.start ~limit:1 () in
  Fun.protect ~finally:Obs.Chrome_trace.stop (fun () ->
      Obs.Chrome_trace.instant "one";
      Obs.Chrome_trace.instant "two";
      Obs.Chrome_trace.instant "three";
      check Alcotest.int "events over the cap are dropped" 2
        (Obs.Chrome_trace.dropped c))

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter" `Quick test_counter;
      Alcotest.test_case "shared counter" `Quick test_shared_counter;
      Alcotest.test_case "gauge" `Quick test_gauge;
      Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
      Alcotest.test_case "registry snapshot" `Quick test_registry_snapshot;
      Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
      Alcotest.test_case "snapshot merge" `Quick test_snapshot_merge;
      Alcotest.test_case "merge histogram mismatch" `Quick
        test_snapshot_merge_hist_mismatch;
      Alcotest.test_case "merge associativity" `Quick
        test_snapshot_merge_associative;
      Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
      Alcotest.test_case "exporter exposition" `Quick test_exporter_exposition;
      Alcotest.test_case "exporter serve/fetch" `Quick test_exporter_serve_fetch;
      Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
      Alcotest.test_case "snapshot json" `Quick test_snapshot_json;
      Alcotest.test_case "scope collect" `Quick test_scope_collect;
      Alcotest.test_case "scope feeds runner" `Quick test_scope_feeds_runner;
      Alcotest.test_case "violation metrics" `Quick test_violation_metrics;
      Alcotest.test_case "heartbeat" `Quick test_heartbeat;
      Alcotest.test_case "heartbeat humanize" `Quick test_heartbeat_humanize;
      Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
      Alcotest.test_case "chrome trace limit" `Quick test_chrome_trace_limit;
    ] )
