(* Differential tests of the epoch-based checkers against verbatim
   pre-epoch copies of the seed checkers (test/reference).  The Aclock
   rewrite is exact-value — same outcome, same event index, same check
   site, on every trace — so any divergence here is a bug, not a
   precision trade-off.  The trace shapes deliberately include the two
   extremes of the adaptive representation: fork/join-heavy traces that
   inflate clocks early, and single-writer-heavy traces that stay in
   epoch form throughout. *)

open Traces

let pairs : (string * Aerodrome.Checker.t * Aerodrome.Checker.t) list =
  [
    ("basic", (module Aerodrome.Basic), (module Reference.Reference_basic));
    ("opt", (module Aerodrome.Opt), (module Reference.Reference_opt));
    ("opt-slow", Aerodrome.Opt.slow_checker, Reference.Reference_opt.slow_checker);
  ]

let same_violation a b =
  match (a, b) with
  | None, None -> true
  | Some (va : Aerodrome.Violation.t), Some (vb : Aerodrome.Violation.t) ->
    va.index = vb.index && va.event = vb.event && va.site = vb.site
  | _ -> false

let agree tr =
  List.for_all
    (fun (_, epoch, reference) ->
      same_violation
        (Aerodrome.Checker.run epoch tr)
        (Aerodrome.Checker.run reference tr))
    pairs
  (* Reduced has no pre-epoch twin here; it must still blame the same
     event as pre-epoch Basic (Algorithms 1 and 2 agree on the index). *)
  &&
  match
    ( Aerodrome.Checker.run (module Aerodrome.Reduced) tr,
      Aerodrome.Checker.run (module Reference.Reference_basic) tr )
  with
  | None, None -> true
  | Some va, Some vb ->
    va.Aerodrome.Violation.index = vb.Aerodrome.Violation.index
  | _ -> false

let prop_mixed =
  QCheck.Test.make ~name:"epoch = pre-epoch (mixed shapes)" ~count:400
    (Helpers.arb_trace ~threads:4 ~locks:2 ~vars:3 ~max_len:80 ())
    agree

let prop_fork_join =
  (* six threads, forked and joined mid-trace: cross-thread joins inflate
     C_t early, so this exercises the inflated-representation paths *)
  QCheck.Test.make ~name:"epoch = pre-epoch (fork/join-heavy)" ~count:250
    (Helpers.arb_trace ~threads:6 ~locks:1 ~vars:2 ~max_len:120 ())
    agree

let prop_incomplete =
  QCheck.Test.make ~name:"epoch = pre-epoch (incomplete traces)" ~count:200
    (Helpers.arb_trace ~threads:4 ~locks:2 ~vars:3 ~max_len:80 ~complete:false ())
    agree

(* Generator traces with many more variables than events per thread:
   nearly every variable has a single writer, so W_x/R_x clocks stay in
   epoch form and the O(1) fast paths carry the whole run. *)
let arb_single_writer =
  let gen rs =
    let seed = Int64.of_int (Random.State.bits rs) in
    let plan =
      if Random.State.bool rs then Workloads.Generator.Atomic
      else Workloads.Generator.Violate_at (0.2 +. Random.State.float rs 0.6)
    in
    Workloads.Generator.generate
      {
        Workloads.Generator.default with
        events = 300;
        threads = 6;
        vars = 120;
        shape = Workloads.Generator.Independent;
        plan;
        seed;
      }
  in
  QCheck.make ~print:Parser.to_string gen

let prop_single_writer =
  QCheck.Test.make ~name:"epoch = pre-epoch (single-writer-heavy)" ~count:200
    arb_single_writer agree

let suite =
  ( "differential (pre-epoch reference)",
    Helpers.qcheck_tests
      [ prop_mixed; prop_fork_join; prop_incomplete; prop_single_writer ] )
