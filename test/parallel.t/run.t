The multicore check path: several files fan out across a domain pool,
reports come back in argument order (never completion order), and the
verdicts are the sequential ones.

  $ rapid generate --events 400 --threads 3 --seed 11 -o big.std
  wrote 413 events to big.std
  $ rapid generate --events 120 --threads 3 --seed 12 -o small.std
  wrote 132 events to small.std
  $ rapid generate --events 300 --threads 3 --seed 7 --violate-at 0.5 -o bad.std
  wrote 311 events to bad.std

  $ rapid check --jobs 2 big.std small.std bad.std 2>&1 | sed 's/in [0-9.]*s/in TIME/'
  rapid: warning: --jobs 2 exceeds 1 available core
  big.std: aerodrome: serializable in TIME (413 events)
  small.std: aerodrome: serializable in TIME (132 events)
  bad.std: aerodrome: violation @165 in TIME (311 events)

A violation anywhere in the batch sets exit code 1:

  $ rapid check -q --jobs 2 big.std small.std bad.std
  rapid: warning: --jobs 2 exceeds 1 available core
  [1]
  $ rapid check -q --jobs 2 big.std small.std
  rapid: warning: --jobs 2 exceeds 1 available core

The ordering and verdicts are identical without the pool:

  $ rapid check --jobs 1 big.std small.std bad.std 2>&1 | sed 's/in [0-9.]*s/in TIME/'
  big.std: aerodrome: serializable in TIME (413 events)
  small.std: aerodrome: serializable in TIME (132 events)
  bad.std: aerodrome: violation @165 in TIME (311 events)

A malformed or missing file yields a per-file error on stderr, the
remaining files are still checked, and the exit code is 2:

  $ cat > broken.std <<DONE
  > t1|begin
  > t1|wat
  > DONE
  $ rapid check --jobs 2 big.std broken.std missing.std bad.std 2>&1 | sed 's/in [0-9.]*s/in TIME/'
  rapid: warning: --jobs 2 exceeds 1 available core
  big.std: aerodrome: serializable in TIME (413 events)
  broken.std: line 2: unknown operation "wat"
  missing.std: No such file or directory
  bad.std: aerodrome: violation @165 in TIME (311 events)

The pipelined single-file path (ingestion on a producer domain, checking
on the consumer) reports exactly what the sequential stream reports:

  $ rapid check --pipelined big.std 2>&1 | sed 's/in [0-9.]*s/in TIME/'
  aerodrome: serializable in TIME (413 events)
  $ rapid check --pipelined bad.std 2>&1 | sed 's/in [0-9.]*s/in TIME/'
  aerodrome: violation @165 in TIME (311 events)
  $ rapid convert bad.std bad.bin
  bad.bin: 311 events, 3004 -> 968 bytes
  $ rapid check --pipelined bad.bin 2>&1 | sed 's/in [0-9.]*s/in TIME/'
  aerodrome: violation @165 in TIME (311 events)
  $ rapid check -q --pipelined bad.bin
  [1]

Quiet mode still prints the errors (they explain the exit code):

  $ rapid check -q --jobs 2 big.std missing.std
  rapid: warning: --jobs 2 exceeds 1 available core
  missing.std: No such file or directory
  [2]

The default --shards steal mode runs the batch on one work-stealing
scheduler — the file fan-out itself executes as deque tasks — and its
telemetry lands in --stats and --stats-json.  Steal counts are racy
(they depend on which domain grabs what first), so only the
conservation facts are pinned here; validate_stats pins the full
sched key set and the per-domain arity:

  $ rapid check --jobs 2 --shards steal --stats --stats-json sched.json \
  >   big.std small.std bad.std 2>/dev/null | sed 's/in [0-9.]*s/in TIME/' \
  >   | grep -E 'aerodrome:|sched\.(completed|domains|injected) '
  big.std: aerodrome: serializable in TIME (413 events)
  small.std: aerodrome: serializable in TIME (132 events)
  bad.std: aerodrome: violation @165 in TIME (311 events)
    sched.completed               3
    sched.domains                 2
    sched.injected                3
  $ ../../bench/validate_stats.exe stats sched.json
  ok

static:N keeps the historical fixed-plan executor on dedicated pools,
with no scheduler telemetry to report:

  $ rapid check --jobs 2 --shards static:2 --stats big.std small.std bad.std 2>/dev/null | grep -c 'sched\.'
  0
  [1]
