The violation flight recorder and live metrics endpoint, end to end
through the CLI.  A violating run with --flight-record writes a witness
bundle into the given directory: a JSON diagnosis and — whenever the
per-thread rings still cover a globally quiescent cut — a replayable
binary slice on which a plain `rapid check` reproduces the violation.

  $ rapid generate --events 300 --threads 3 --seed 7 --violate-at 0.5 -o bad.std
  wrote 311 events to bad.std
  $ mkdir fr
  $ rapid check --flight-record fr bad.std 2>&1 | sed 's/in [0-9.]*s/in TIME/'
  aerodrome: violation @165 in TIME (311 events)
  $ ls fr
  bad.std.slice.bin
  bad.std.witness.json

The bundle names the violation, and the whole 311-event trace fits the
default 256-per-thread rings, so the slice starts at the trace's own
(trivially quiescent) beginning; the recorder re-checked the slice
before returning and recorded that the verdict matched:

  $ grep -o '"schema":"aerodrome-witness/1"' fr/bad.std.witness.json
  "schema":"aerodrome-witness/1"
  $ grep -o '"violation":{"index":164' fr/bad.std.witness.json
  "violation":{"index":164
  $ grep -o '"window":{"start":0' fr/bad.std.witness.json
  "window":{"start":0
  $ grep -o '"expected_violation_index":164' fr/bad.std.witness.json
  "expected_violation_index":164
  $ grep -o '"verdict":"violation"' fr/bad.std.witness.json
  "verdict":"violation"
  $ grep -o '"matches":true' fr/bad.std.witness.json
  "matches":true

The differential: checking the slice file itself reports the violation
at the expected offset (start = 0, so the index is unchanged) on the
slice's 165 events:

  $ rapid check -q fr/bad.std.slice.bin
  [1]
  $ rapid check fr/bad.std.slice.bin 2>&1 | sed 's/in [0-9.]*s/in TIME/'
  aerodrome: violation @165 in TIME (165 events)

An atomic run through the same recorder emits nothing — the directory
still holds only the earlier bundle:

  $ rapid generate --events 300 --threads 3 --seed 7 -o good.std
  wrote 313 events to good.std
  $ rapid check -q --flight-record fr good.std
  $ ls fr
  bad.std.slice.bin
  bad.std.witness.json

A ring too small to retain a quiescent cut degrades the witness to
context-only: the diagnosis is still written, but the window is null
and no slice file claims to be replayable:

  $ mkdir tiny
  $ rapid check -q --flight-record tiny --flight-window 1 bad.std
  [1]
  $ ls tiny
  bad.std.witness.json
  $ grep -o '"window":null' tiny/bad.std.witness.json
  "window":null

--metrics-addr serves a live exposition for the duration of the run and
tears the endpoint down afterwards (the socket is unlinked); the
checker's verdict and exit code are unchanged by the exporter:

  $ rapid check -q --metrics-addr unix:m.sock bad.std
  rapid: serving metrics on unix:m.sock
  [1]
  $ test ! -e m.sock

Bad addresses are rejected before any checking starts, and scraping a
dead endpoint is a connection error, not a hang:

  $ rapid check -q --metrics-addr bogus bad.std
  rapid: bad metrics address "bogus" (want HOST:PORT or unix:PATH)
  [2]
  $ rapid scrape unix:m.sock
  rapid: scrape: cannot connect to unix:m.sock: No such file or directory
  [2]
