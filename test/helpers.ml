(* Shared test utilities: checker inventory, verdict helpers, and QCheck
   generators of random well-formed traces for differential testing. *)

open Traces

let online_checkers : (string * Aerodrome.Checker.t) list =
  [
    ("aerodrome-basic", (module Aerodrome.Basic));
    ("aerodrome-reduced", (module Aerodrome.Reduced));
    ("aerodrome", (module Aerodrome.Opt));
    ("aerodrome-slow", Aerodrome.Opt.slow_checker);
    ("velodrome", (module Velodrome.Online));
    ("velodrome-nogc", Velodrome.Online.no_gc_checker);
    ("velodrome-pk", Velodrome.Online.pk_checker);
  ]

let verdict checker tr = Option.is_some (Aerodrome.Checker.run checker tr)

let violation_index checker tr =
  Option.map
    (fun v -> v.Aerodrome.Violation.index)
    (Aerodrome.Checker.run checker tr)

let reference_violating tr = not (Velodrome.Reference.is_serializable tr)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let trace_testable =
  Alcotest.testable
    (fun ppf tr -> Format.pp_print_string ppf (Parser.to_string tr))
    (fun a b -> Trace.to_list a = Trace.to_list b)

let vtime = Alcotest.testable Vclock.Vtime.pp Vclock.Vtime.equal

(* Random well-formed traces.

   The generator simulates a small thread pool taking random legal actions:
   begin/end (nesting bounded), reads and writes over a few variables,
   acquire/release of a few locks (at most one lock held per thread, so the
   final drain cannot deadlock), forks of not-yet-started threads and, in
   the epilogue, joins.  With [complete = true] every transaction is closed
   and every lock released before the trace ends, so all checkers and the
   offline oracle must agree on the verdict (Theorem 3). *)

type sim = {
  rs : Random.State.t;
  threads : int;
  locks : int;
  vars : int;
  depth : int array;
  held : int array;  (* thread -> lock held, or -1 (at most one) *)
  holder : int array;  (* lock -> thread, or -1 *)
  started : bool array;
  stopped : bool array;
  buf : Trace.Builder.t;
}

let random_event sim t =
  let open Event in
  let rand n = Random.State.int sim.rs n in
  let var () = rand sim.vars in
  (* Weighted action choice; illegal actions fall through to an access. *)
  let action = rand 100 in
  if action < 14 && sim.depth.(t) < 2 then begin
    sim.depth.(t) <- sim.depth.(t) + 1;
    begin_ t
  end
  else if action < 28 && sim.depth.(t) > 0 then begin
    sim.depth.(t) <- sim.depth.(t) - 1;
    end_ t
  end
  else if
    action < 38 && sim.locks > 0 && sim.held.(t) = -1
    && (let l = action mod sim.locks in
        sim.holder.(l) = -1)
  then begin
    let l = action mod sim.locks in
    sim.held.(t) <- l;
    sim.holder.(l) <- t;
    acquire t l
  end
  else if action < 48 && sim.held.(t) <> -1 then begin
    let l = sim.held.(t) in
    sim.held.(t) <- -1;
    sim.holder.(l) <- -1;
    release t l
  end
  else if action < 74 then read t (var ())
  else write t (var ())

let runnable sim =
  let out = ref [] in
  for t = sim.threads - 1 downto 0 do
    if sim.started.(t) && not sim.stopped.(t) then out := t :: !out
  done;
  !out

let gen_trace_events ~threads ~locks ~vars ~len ~complete rs =
  let sim =
    {
      rs;
      threads;
      locks;
      vars;
      depth = Array.make threads 0;
      held = Array.make threads (-1);
      holder = Array.make (max locks 1) (-1);
      started = Array.make threads false;
      stopped = Array.make threads false;
      buf = Trace.Builder.create ~capacity:(len + 16) ();
    }
  in
  sim.started.(0) <- true;
  for _ = 1 to len do
    (* Occasionally fork a not-yet-started thread. *)
    let unstarted = ref [] in
    for t = threads - 1 downto 1 do
      if not sim.started.(t) then unstarted := t :: !unstarted
    done;
    if !unstarted <> [] && Random.State.int rs 10 = 0 then begin
      let u = List.nth !unstarted (Random.State.int rs (List.length !unstarted)) in
      let parents = runnable sim in
      let p = List.nth parents (Random.State.int rs (List.length parents)) in
      sim.started.(u) <- true;
      Trace.Builder.add sim.buf (Event.fork p u)
    end
    else begin
      let ts = runnable sim in
      let t = List.nth ts (Random.State.int rs (List.length ts)) in
      Trace.Builder.add sim.buf (random_event sim t)
    end
  done;
  if complete then begin
    (* Drain: release locks, close transactions, then join the children. *)
    for t = 0 to threads - 1 do
      if sim.started.(t) then begin
        if sim.held.(t) <> -1 then begin
          Trace.Builder.release sim.buf t ~lock:sim.held.(t);
          sim.holder.(sim.held.(t)) <- -1;
          sim.held.(t) <- -1
        end;
        while sim.depth.(t) > 0 do
          Trace.Builder.end_ sim.buf t;
          sim.depth.(t) <- sim.depth.(t) - 1
        done
      end
    done;
    for t = 1 to threads - 1 do
      if sim.started.(t) then Trace.Builder.join sim.buf 0 ~child:t
    done
  end;
  Trace.Builder.build sim.buf

let arb_trace ?(threads = 3) ?(locks = 2) ?(vars = 3) ?(max_len = 60)
    ?(complete = true) () =
  let gen rs =
    let len = 1 + Random.State.int rs max_len in
    gen_trace_events ~threads ~locks ~vars ~len ~complete rs
  in
  QCheck.make ~print:Parser.to_string gen

let qcheck_tests cases = List.map QCheck_alcotest.to_alcotest cases
