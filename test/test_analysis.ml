(* Metainfo, runner and report tests. *)

open Traces

let check = Alcotest.check

(* --- Metainfo --- *)

let test_metainfo_rho4 () =
  let m = Analysis.Metainfo.analyze Workloads.Scenarios.rho4 in
  check Alcotest.int "events" 12 m.events;
  check Alcotest.int "reads" 3 m.reads;
  check Alcotest.int "writes" 3 m.writes;
  check Alcotest.int "transactions" 3 m.transactions;
  check Alcotest.int "threads" 3 m.threads;
  check Alcotest.int "vars" 3 m.variables;
  check Alcotest.int "locks" 0 m.locks;
  check Alcotest.int "unary" 0 m.unary_events

let test_metainfo_nested () =
  let m = Analysis.Metainfo.analyze Workloads.Scenarios.nested_ignored in
  check Alcotest.int "outermost transactions" 2 m.transactions;
  check Alcotest.int "nested begins" 1 m.nested_begins;
  check Alcotest.int "max nesting" 2 m.max_nesting

let test_metainfo_sync () =
  let m = Analysis.Metainfo.analyze Workloads.Scenarios.fork_join_serial in
  check Alcotest.int "forks" 2 m.forks;
  check Alcotest.int "joins" 2 m.joins;
  check Alcotest.int "unary (forks+joins)" 4 m.unary_events;
  let m2 = Analysis.Metainfo.analyze Workloads.Scenarios.lock_serial in
  check Alcotest.int "acquires" 2 m2.acquires;
  check Alcotest.int "releases" 2 m2.releases;
  check Alcotest.int "locks" 1 m2.locks

let prop_metainfo_consistent =
  QCheck.Test.make ~name:"metainfo agrees with the transaction decomposition"
    ~count:100
    (Helpers.arb_trace ~threads:4 ~locks:2 ~vars:3 ~max_len:80 ())
    (fun tr ->
      let m = Analysis.Metainfo.analyze tr in
      m.transactions = Transactions.count_blocks tr
      && m.events = Trace.length tr
      && m.begins = m.ends (* complete traces close every block *)
      && m.acquires = m.releases)

(* --- Runner --- *)

let slow_checker : Aerodrome.Checker.t =
  (module struct
    type t = unit

    let name = "sleeper"
    let create ~threads:_ ~locks:_ ~vars:_ = ()

    let feed () _ =
      ignore (Unix.select [] [] [] 0.002);
      None

    let feed_packed () _ =
      ignore (Unix.select [] [] [] 0.002);
      None

    let violation () = None
    let processed () = 0
  end)

let test_runner_verdicts () =
  let r = Analysis.Runner.run (module Aerodrome.Opt) Workloads.Scenarios.rho2 in
  check Alcotest.bool "violating" true (Analysis.Runner.violating r);
  check Alcotest.string "name" "aerodrome" r.checker;
  let r2 = Analysis.Runner.run (module Aerodrome.Opt) Workloads.Scenarios.rho1 in
  check Alcotest.bool "serializable" false (Analysis.Runner.violating r2);
  check Alcotest.int "all events" 10 r2.events_fed

let test_runner_timeout () =
  (* A deliberately slow checker on a trace long enough to cross the
     4096-event timeout check boundary. *)
  let tr =
    Trace.of_events (List.init 10_000 (fun i -> Event.read 0 (i mod 3)))
  in
  let r = Analysis.Runner.run ~timeout:0.005 slow_checker tr in
  check Alcotest.bool "timed out" true (r.outcome = Analysis.Runner.Timed_out);
  check Alcotest.bool "partial progress" true
    (r.events_fed > 0 && r.events_fed < 10_000)

let test_speedup () =
  let mk outcome seconds =
    {
      Analysis.Runner.checker = "x";
      outcome;
      seconds;
      events_fed = 0;
      metrics = Obs.Snapshot.empty;
    }
  in
  let fin = mk (Analysis.Runner.Verdict None) in
  check (Alcotest.option (Alcotest.float 0.001)) "ratio" (Some 4.0)
    (Analysis.Runner.speedup ~baseline:(fin 8.0) (fin 2.0));
  check (Alcotest.option (Alcotest.float 0.001)) "both TO" None
    (Analysis.Runner.speedup
       ~baseline:(mk Analysis.Runner.Timed_out 5.0)
       (mk Analysis.Runner.Timed_out 5.0))

(* --- Report --- *)

let test_humanize () =
  check Alcotest.string "zero" "0" (Analysis.Report.humanize 0);
  check Alcotest.string "small" "640" (Analysis.Report.humanize 640);
  check Alcotest.string "1000 stays plain" "1000" (Analysis.Report.humanize 1000);
  check Alcotest.string "9999" "9999" (Analysis.Report.humanize 9999);
  check Alcotest.string "first K" "10K" (Analysis.Report.humanize 10_000);
  check Alcotest.string "K" "22.6K" (Analysis.Report.humanize 22_600);
  check Alcotest.string "round K" "280K" (Analysis.Report.humanize 280_000);
  check Alcotest.string "exact M" "1M" (Analysis.Report.humanize 1_000_000);
  check Alcotest.string "M" "1.2M" (Analysis.Report.humanize 1_200_000);
  check Alcotest.string "exact B" "1B" (Analysis.Report.humanize 1_000_000_000);
  check Alcotest.string "B" "2.4B" (Analysis.Report.humanize 2_400_000_000);
  (* negative counts never reach the unit branches *)
  check Alcotest.string "negative" "-5" (Analysis.Report.humanize (-5))

let test_time_string () =
  check Alcotest.string "TO" "TO" (Analysis.Report.time_string (Analysis.Report.Timeout 5.0));
  check Alcotest.string "TO ignores budget" "TO"
    (Analysis.Report.time_string (Analysis.Report.Timeout 0.0));
  check Alcotest.string "ms" "250ms" (Analysis.Report.time_string (Analysis.Report.Time 0.25));
  check Alcotest.string "just under 1s" "999ms"
    (Analysis.Report.time_string (Analysis.Report.Time 0.999));
  check Alcotest.string "exact 1s" "1.00s"
    (Analysis.Report.time_string (Analysis.Report.Time 1.0));
  check Alcotest.string "s" "1.50s" (Analysis.Report.time_string (Analysis.Report.Time 1.5));
  check Alcotest.string "tiny" "<1ms" (Analysis.Report.time_string (Analysis.Report.Time 0.0001));
  check Alcotest.string "zero" "<1ms" (Analysis.Report.time_string (Analysis.Report.Time 0.0))

let sample_row velodrome aerodrome =
  {
    Analysis.Report.name = "x";
    events = 10;
    threads = 2;
    locks = 1;
    variables = 3;
    transactions = 4;
    atomic = true;
    velodrome;
    aerodrome;
    paper = None;
  }

let test_speedup_string () =
  let open Analysis.Report in
  check Alcotest.string "ratio" "4.00"
    (speedup_string (sample_row (Time 8.0) (Time 2.0)));
  check Alcotest.string "baseline TO" "> 100"
    (speedup_string (sample_row (Timeout 5.0) (Time 0.05)));
  check Alcotest.string "both TO" "-"
    (speedup_string (sample_row (Timeout 5.0) (Timeout 5.0)))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_render_smoke () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Analysis.Report.render_table ppf ~title:"T"
    [ sample_row (Analysis.Report.Time 1.0) (Analysis.Report.Time 0.5) ];
  Analysis.Report.render_comparison ppf ~title:"C"
    [ sample_row (Analysis.Report.Timeout 5.0) (Analysis.Report.Time 0.5) ];
  Format.pp_print_flush ppf ();
  let s = Buffer.contents buf in
  check Alcotest.bool "has header" true
    (String.length s > 0
    && String.starts_with ~prefix:"T" s
    && contains s "Velodrome" && contains s "Paper speedup");
  let buf2 = Buffer.create 256 in
  let ppf2 = Format.formatter_of_buffer buf2 in
  Analysis.Report.render_markdown ppf2 ~title:"M"
    [ sample_row (Analysis.Report.Time 1.0) (Analysis.Report.Time 0.5) ];
  Format.pp_print_flush ppf2 ();
  let md = Buffer.contents buf2 in
  check Alcotest.bool "markdown shape" true
    (String.starts_with ~prefix:"## M" md && contains md "| --- |"
    && contains md "| x |")

let suite =
  ( "analysis",
    [
      Alcotest.test_case "metainfo rho4" `Quick test_metainfo_rho4;
      Alcotest.test_case "metainfo nesting" `Quick test_metainfo_nested;
      Alcotest.test_case "metainfo sync" `Quick test_metainfo_sync;
      Alcotest.test_case "runner verdicts" `Quick test_runner_verdicts;
      Alcotest.test_case "runner timeout" `Quick test_runner_timeout;
      Alcotest.test_case "speedup" `Quick test_speedup;
      Alcotest.test_case "humanize" `Quick test_humanize;
      Alcotest.test_case "time strings" `Quick test_time_string;
      Alcotest.test_case "speedup strings" `Quick test_speedup_string;
      Alcotest.test_case "render" `Quick test_render_smoke;
    ]
    @ Helpers.qcheck_tests [ prop_metainfo_consistent ] )
