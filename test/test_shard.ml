(* Sharded single-trace checking ({!Parallel.Shard} + {!Aerodrome.Merge}):
   the differential matrix — sequential vs sharded runs must render
   byte-identical reports across shard counts, prefilter and reclaim
   settings — plus adversarial chunk boundaries driven through the
   [?cuts] test hook: transactions spanning a chunk edge, fork/join
   split across shards, a violation at the boundary event, and forced
   non-quiescent cuts that must be rejected, never mis-checked. *)

open Traces

let opt = (module Aerodrome.Opt : Aerodrome.Checker.S)

let arena_of tr =
  (* a small chunk size so multi-chunk arenas appear at test scale *)
  let a = Packed.Arena.create ~chunk_words:1024 () in
  Trace.iteri (fun _ e -> Packed.Arena.push a (Packed.of_event e)) tr;
  a

let shard_check ?window ?cuts ~shards tr =
  Parallel.Shard.check ?window ?cuts ~shards opt ~threads:(Trace.threads tr)
    ~locks:(Trace.locks tr) ~vars:(Trace.vars tr) (arena_of tr)

let seq_violation tr = Aerodrome.Checker.run (module Aerodrome.Opt) tr

let pp_violation ppf = function
  | None -> Format.pp_print_string ppf "serializable"
  | Some v ->
    Format.fprintf ppf "violation @%d (%s)" v.Aerodrome.Violation.index
      (Aerodrome.Violation.to_string v)

let violation =
  Alcotest.testable pp_violation (fun a b ->
      match (a, b) with
      | None, None -> true
      | Some x, Some y ->
        x.Aerodrome.Violation.index = y.Aerodrome.Violation.index
        && x.Aerodrome.Violation.site = y.Aerodrome.Violation.site
      | _ -> false)

(* Recompute the quiescence predicate independently of Merge's scan:
   position [p] is quiescent iff no thread is inside a transaction
   after the first [p] events. *)
let quiescent_positions tr =
  let depth = Array.make (max 1 (Trace.threads tr)) 0 in
  let open_txns = ref 0 in
  let q = Hashtbl.create 64 in
  Hashtbl.replace q 0 ();
  Trace.iteri
    (fun i e ->
      let t = (Event.thread e :> int) in
      (match Event.op e with
      | Event.Begin ->
        if depth.(t) = 0 then incr open_txns;
        depth.(t) <- depth.(t) + 1
      | Event.End ->
        if depth.(t) > 0 then begin
          depth.(t) <- depth.(t) - 1;
          if depth.(t) = 0 then decr open_txns
        end
      | _ -> ());
      if !open_txns = 0 then Hashtbl.replace q (i + 1) ())
    tr;
  q

(* --- differential matrix --- *)

(* >= 500 mixed corpus traces, each checked sequentially and with
   2/3/4 shards under every prefilter x reclaim combination; the
   rendered runner reports (verdict, 1-based violation index, events
   fed) must match byte for byte once timings are zeroed. *)
let test_matrix () =
  let normalized r =
    Format.asprintf "%a" Analysis.Runner.pp
      { r with Analysis.Runner.seconds = 0.0 }
  in
  (* the mixed corpus is serializable by construction; add generator
     traces with injected violations so both verdicts are exercised *)
  let violating_trace ~seed ~threads ~at =
    Workloads.Generator.generate
      {
        Workloads.Generator.default with
        events = 1200;
        threads;
        seed = Int64.of_int seed;
        plan = Workloads.Generator.Violate_at at;
      }
  in
  Parallel.Pool.with_pool 4 (fun pool ->
      let traces = ref 0 in
      let violating = ref 0 in
      for seed = 0 to 169 do
        List.iter
          (fun threads ->
            incr traces;
            let tr =
              if seed land 3 = 3 then
                violating_trace ~seed ~threads
                  ~at:(0.15 +. (0.1 *. float_of_int (seed land 7)))
              else
                Workloads.Corpus.mixed ~seed:(Int64.of_int seed) ~threads
                  ~events_total:1200 ()
            in
            if seq_violation tr <> None then incr violating;
            List.iter
              (fun prefilter ->
                List.iter
                  (fun reclaim ->
                    let base =
                      Analysis.Runner.run ~prefilter ~reclaim opt tr
                    in
                    let base_s = normalized base in
                    List.iter
                      (fun shards ->
                        let r =
                          Analysis.Runner.run ~prefilter ~reclaim ~shards
                            ~shard_pool:pool opt tr
                        in
                        Alcotest.(check string)
                          (Printf.sprintf
                             "seed=%d threads=%d shards=%d prefilter=%b \
                              reclaim=%b"
                             seed threads shards
                             (prefilter <> Analysis.Runner.Off)
                             reclaim)
                          base_s (normalized r))
                      [ 2; 3; 4 ])
                  [ false; true ])
              [ Analysis.Runner.Off; Analysis.Runner.Exact ])
          [ 2; 3; 4 ]
      done;
      Alcotest.(check bool) "matrix covers >= 500 traces" true (!traces >= 500);
      (* the corpus must exercise both verdicts or the matrix is vacuous *)
      Alcotest.(check bool) "some traces violate" true (!violating > 0);
      Alcotest.(check bool)
        "some traces are serializable" true
        (!violating < !traces))

(* Auto-planned cuts are quiescent and the chunk bounds partition the
   arena, on whatever the corpus serves. *)
let test_plan_invariants () =
  for seed = 0 to 19 do
    let tr =
      Workloads.Corpus.mixed ~seed:(Int64.of_int seed) ~threads:3
        ~events_total:2000 ()
    in
    let n = Trace.length tr in
    let q = quiescent_positions tr in
    let plan =
      Aerodrome.Merge.plan ~threads:(Trace.threads tr) ~shards:4 (arena_of tr)
    in
    Array.iter
      (fun c ->
        Alcotest.(check bool)
          (Printf.sprintf "seed=%d cut %d quiescent" seed c)
          true
          (c = 0 || Hashtbl.mem q c))
      plan.Aerodrome.Merge.cuts;
    let bounds = Aerodrome.Merge.bounds plan ~total:n in
    Alcotest.(check int)
      "first chunk starts at 0" 0
      (fst bounds.(0));
    Alcotest.(check int)
      "last chunk stops at n" n
      (snd bounds.(Array.length bounds - 1));
    Array.iteri
      (fun i (base, stop) ->
        Alcotest.(check bool) "chunk non-empty" true (base < stop);
        if i > 0 then
          Alcotest.(check int) "chunks contiguous" (snd bounds.(i - 1)) base)
      bounds
  done

(* --- adversarial boundaries --- *)

(* A violating middle flanked by quiescent prologue/epilogue.  The
   violation fires at the second write of thread 0's open transaction
   (t0 -> t1 -> t0 conflict cycle), event index 11; positions 6 (before
   the pattern) and 13 (after it) are quiescent. *)
let boundary_trace () =
  Trace.of_events
    Event.
      [
        begin_ 0; write 0 0; end_ 0;    (* 0..2  prologue, t0 *)
        begin_ 1; write 1 1; end_ 1;    (* 3..5  prologue, t1 *)
        begin_ 0; read 0 2;             (* 6..7  t0 opens, reads x2 *)
        begin_ 1; write 1 2; end_ 1;    (* 8..10 t1 intervenes on x2 *)
        write 0 2;                      (* 11    violation: cycle closes *)
        end_ 0;                         (* 12 *)
        begin_ 1; read 1 0; end_ 1;     (* 13..15 epilogue *)
      ]

let test_boundary_violation () =
  let tr = boundary_trace () in
  let expected = seq_violation tr in
  (match expected with
  | Some v -> Alcotest.(check int) "sequential violation index" 11 v.index
  | None -> Alcotest.fail "boundary trace must violate");
  (* cut before the violating pattern: the whole pattern lands in chunk 2 *)
  List.iter
    (fun cuts ->
      let o = shard_check ~cuts ~shards:(List.length cuts + 1) tr in
      Alcotest.(check violation)
        (Printf.sprintf "cuts at [%s]"
           (String.concat ";" (List.map string_of_int cuts)))
        expected o.Parallel.Shard.violation;
      Alcotest.(check int) "all cuts accepted" 0
        o.Parallel.Shard.plan.Aerodrome.Merge.misses)
    [ [ 6 ]; [ 13 ]; [ 6; 13 ] ]

(* A forced cut inside an open transaction is rejected: the plan
   reports the miss and the rejected span as replay, the chunks fold
   back together, and the verdict is untouched. *)
let test_rejected_cut () =
  let tr = boundary_trace () in
  let expected = seq_violation tr in
  List.iter
    (fun cut ->
      let o = shard_check ~cuts:[ cut ] ~shards:2 tr in
      let p = o.Parallel.Shard.plan in
      Alcotest.(check int)
        (Printf.sprintf "cut %d rejected" cut)
        1 p.Aerodrome.Merge.misses;
      Alcotest.(check int) "no accepted cuts" 0 p.Aerodrome.Merge.hits;
      Alcotest.(check bool) "replay accounted" true
        (p.Aerodrome.Merge.replayed_events > 0);
      Alcotest.(check int) "single chunk" 1
        (Array.length o.Parallel.Shard.tasks);
      Alcotest.(check violation) "verdict unchanged" expected
        o.Parallel.Shard.violation)
    [ 7; 9; 11; 12 ]

(* A transaction spanning the ideal equidistant cut: the planner snaps
   to a nearby quiescent position rather than splitting the
   transaction.  One long transaction occupies the middle of the trace,
   so the midpoint cut of [shards = 2] falls inside it. *)
let test_transaction_spanning_edge () =
  let mid =
    List.concat
      [
        [ Event.begin_ 0 ];
        List.init 40 (fun i -> Event.write 0 (i mod 3));
        [ Event.end_ 0 ];
      ]
  in
  let prologue =
    List.concat
      (List.init 10 (fun i ->
           [ Event.begin_ 1; Event.write 1 (3 + (i mod 2)); Event.end_ 1 ]))
  in
  let epilogue =
    List.concat
      (List.init 10 (fun i ->
           [ Event.begin_ 1; Event.read 1 (3 + (i mod 2)); Event.end_ 1 ]))
  in
  let tr = Trace.of_events (prologue @ mid @ epilogue) in
  let q = quiescent_positions tr in
  (* a window wide enough to escape the 42-event transaction *)
  let o = shard_check ~window:30 ~shards:2 tr in
  let p = o.Parallel.Shard.plan in
  Alcotest.(check int) "cut snapped, not missed" 1 p.Aerodrome.Merge.hits;
  Array.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "cut %d outside the transaction" c)
        true
        (c = 0 || Hashtbl.mem q c))
    p.Aerodrome.Merge.cuts;
  Alcotest.(check violation) "serializable across the span" (seq_violation tr)
    o.Parallel.Shard.violation

(* Fork and join land in different chunks: the cut sits between them,
   and both the HB edges and the verdict survive the split. *)
let test_fork_join_across_shards () =
  let tr =
    Trace.of_events
      (List.concat
         [
           [ Event.fork 0 1 ];
           [ Event.begin_ 0; Event.write 0 0; Event.end_ 0 ];
           [ Event.begin_ 1; Event.read 1 0; Event.end_ 1 ];
           (* quiescent gap the planner can cut in *)
           List.concat
             (List.init 6 (fun i ->
                  [ Event.begin_ 1; Event.write 1 (1 + (i mod 2)); Event.end_ 1 ]));
           [ Event.begin_ 0; Event.read 0 1; Event.end_ 0 ];
           [ Event.join 0 1 ];
         ])
  in
  let expected = seq_violation tr in
  (* force the cut into the quiescent gap between fork and join (after
     the first two of the six filler transactions) *)
  let o = shard_check ~cuts:[ 13 ] ~shards:2 tr in
  Alcotest.(check int) "cut accepted" 1
    o.Parallel.Shard.plan.Aerodrome.Merge.hits;
  Alcotest.(check int) "two chunks" 2 (Array.length o.Parallel.Shard.tasks);
  Alcotest.(check violation) "verdict across fork/join" expected
    o.Parallel.Shard.violation

(* events_fed and the rendered report go through the runner too: a
   violating binary-style trace via Runner.run with a forced shard
   count must match the sequential report byte for byte.  (The
   file-level plumbing is covered by the cram test; here we pin the
   trace-level entry.) *)
let test_runner_report_identity () =
  let tr = boundary_trace () in
  let normalized r =
    Format.asprintf "%a" Analysis.Runner.pp
      { r with Analysis.Runner.seconds = 0.0 }
  in
  let base = Analysis.Runner.run opt tr in
  List.iter
    (fun shards ->
      let r = Analysis.Runner.run ~shards opt tr in
      Alcotest.(check string)
        (Printf.sprintf "runner report, %d shards" shards)
        (normalized base) (normalized r))
    [ 2; 3; 4 ]

let suite =
  ( "shard",
    [
      Alcotest.test_case "differential: sequential vs sharded matrix" `Slow
        test_matrix;
    Alcotest.test_case "plan: cuts quiescent, bounds partition" `Quick
      test_plan_invariants;
    Alcotest.test_case "boundary: violation at the cut" `Quick
      test_boundary_violation;
    Alcotest.test_case "boundary: non-quiescent cut rejected" `Quick
      test_rejected_cut;
    Alcotest.test_case "boundary: transaction spans the ideal cut" `Quick
      test_transaction_spanning_edge;
    Alcotest.test_case "boundary: fork/join across shards" `Quick
      test_fork_join_across_shards;
      Alcotest.test_case "runner: sharded report identity" `Quick
        test_runner_report_identity;
    ] )
