(* Sharded single-trace checking ({!Parallel.Shard} + {!Aerodrome.Merge}):
   the differential matrix — sequential vs sharded runs must render
   byte-identical reports across shard counts, prefilter and reclaim
   settings — plus adversarial chunk boundaries driven through the
   [?cuts] test hook: cuts through open transactions (mid-transaction,
   between an open transaction's write and a racing read, fork/join
   spanning the boundary), which the planner now accepts with a
   boundary summary and the reconciliation repairs against the true
   frontier rather than rejecting into whole-chunk replay. *)

open Traces

let opt = (module Aerodrome.Opt : Aerodrome.Checker.S)

let arena_of tr =
  (* a small chunk size so multi-chunk arenas appear at test scale *)
  let a = Packed.Arena.create ~chunk_words:1024 () in
  Trace.iteri (fun _ e -> Packed.Arena.push a (Packed.of_event e)) tr;
  a

let shard_check ?cuts ?flight ~shards tr =
  Parallel.Shard.check ?cuts ?flight ~shards ~threads:(Trace.threads tr)
    ~locks:(Trace.locks tr) ~vars:(Trace.vars tr) (arena_of tr)

let steal_check ?cuts ?flight ~sched ~shards tr =
  Parallel.Shard.check_stealing ~sched ?cuts ?flight ~shards
    ~threads:(Trace.threads tr) ~locks:(Trace.locks tr) ~vars:(Trace.vars tr)
    (arena_of tr)

let seq_violation tr = Aerodrome.Checker.run (module Aerodrome.Opt) tr

let violating_trace ~seed ~threads ~at =
  Workloads.Generator.generate
    {
      Workloads.Generator.default with
      events = 1200;
      threads;
      seed = Int64.of_int seed;
      plan = Workloads.Generator.Violate_at at;
    }

let pp_violation ppf = function
  | None -> Format.pp_print_string ppf "serializable"
  | Some v ->
    Format.fprintf ppf "violation @%d (%s)" v.Aerodrome.Violation.index
      (Aerodrome.Violation.to_string v)

let violation =
  Alcotest.testable pp_violation (fun a b ->
      match (a, b) with
      | None, None -> true
      | Some x, Some y ->
        x.Aerodrome.Violation.index = y.Aerodrome.Violation.index
        && x.Aerodrome.Violation.site = y.Aerodrome.Violation.site
      | _ -> false)

(* Recompute the quiescence predicate independently of Merge's scan:
   position [p] is quiescent iff no thread is inside a transaction
   after the first [p] events. *)
let quiescent_positions tr =
  let depth = Array.make (max 1 (Trace.threads tr)) 0 in
  let open_txns = ref 0 in
  let q = Hashtbl.create 64 in
  Hashtbl.replace q 0 ();
  Trace.iteri
    (fun i e ->
      let t = (Event.thread e :> int) in
      (match Event.op e with
      | Event.Begin ->
        if depth.(t) = 0 then incr open_txns;
        depth.(t) <- depth.(t) + 1
      | Event.End ->
        if depth.(t) > 0 then begin
          depth.(t) <- depth.(t) - 1;
          if depth.(t) = 0 then decr open_txns
        end
      | _ -> ());
      if !open_txns = 0 then Hashtbl.replace q (i + 1) ())
    tr;
  q

(* Per-thread transaction depth at position [p], recomputed
   independently of the planner. *)
let depths_at tr p =
  let depth = Array.make (max 1 (Trace.threads tr)) 0 in
  Trace.iteri
    (fun i e ->
      if i < p then
        let t = (Event.thread e :> int) in
        match Event.op e with
        | Event.Begin -> depth.(t) <- depth.(t) + 1
        | Event.End -> if depth.(t) > 0 then depth.(t) <- depth.(t) - 1
        | _ -> ())
    tr;
  depth

(* First position >= [p] where thread [t] is outside any transaction,
   recomputed independently of the planner. *)
let close_after tr p t =
  let n = Trace.length tr in
  let rec go pos depth =
    if depth = 0 || pos >= n then pos
    else
      let e = Trace.get tr pos in
      let depth =
        if (Event.thread e :> int) <> t then depth
        else
          match Event.op e with
          | Event.Begin -> depth + 1
          | Event.End -> max 0 (depth - 1)
          | _ -> depth
      in
      go (pos + 1) depth
  in
  go p (depths_at tr p).(t)

(* The repair horizon the planner must compute for a tainted cut: all
   straddling transactions close (phase 1), then every transaction open
   at that moment closes too (phase 2). *)
let horizon tr cut =
  let phase from =
    Array.to_seqi (depths_at tr from)
    |> Seq.fold_left
         (fun acc (t, d) -> if d > 0 then max acc (close_after tr from t) else acc)
         from
  in
  phase (phase cut)

(* --- differential matrix --- *)

(* >= 500 mixed corpus traces, each checked sequentially and with
   2/3/4 shards under every prefilter x reclaim x executor (static
   pool vs work-stealing scheduler) combination; the rendered runner
   reports (verdict, 1-based violation index, events fed) must match
   byte for byte once timings are zeroed.  The stealing runs force the
   same chunk counts, so both executors reconcile the same plans. *)
let test_matrix () =
  let normalized r =
    Format.asprintf "%a" Analysis.Runner.pp
      { r with Analysis.Runner.seconds = 0.0 }
  in
  (* the mixed corpus is serializable by construction; add generator
     traces with injected violations so both verdicts are exercised *)
  Parallel.Deque.with_scheduler 4 (fun sched ->
  Parallel.Pool.with_pool 4 (fun pool ->
      let traces = ref 0 in
      let violating = ref 0 in
      for seed = 0 to 169 do
        List.iter
          (fun threads ->
            incr traces;
            let tr =
              if seed land 3 = 3 then
                violating_trace ~seed ~threads
                  ~at:(0.15 +. (0.1 *. float_of_int (seed land 7)))
              else
                Workloads.Corpus.mixed ~seed:(Int64.of_int seed) ~threads
                  ~events_total:1200 ()
            in
            if seq_violation tr <> None then incr violating;
            List.iter
              (fun prefilter ->
                List.iter
                  (fun reclaim ->
                    let base =
                      Analysis.Runner.run ~prefilter ~reclaim opt tr
                    in
                    let base_s = normalized base in
                    List.iter
                      (fun shards ->
                        let r =
                          Analysis.Runner.run ~prefilter ~reclaim ~shards
                            ~shard_pool:pool opt tr
                        in
                        Alcotest.(check string)
                          (Printf.sprintf
                             "seed=%d threads=%d shards=%d prefilter=%b \
                              reclaim=%b"
                             seed threads shards
                             (prefilter <> Analysis.Runner.Off)
                             reclaim)
                          base_s (normalized r);
                        let r =
                          Analysis.Runner.run ~prefilter ~reclaim ~shards
                            ~sched opt tr
                        in
                        Alcotest.(check string)
                          (Printf.sprintf
                             "seed=%d threads=%d shards=%d prefilter=%b \
                              reclaim=%b stealing"
                             seed threads shards
                             (prefilter <> Analysis.Runner.Off)
                             reclaim)
                          base_s (normalized r))
                      [ 2; 3; 4 ])
                  [ false; true ])
              [ Analysis.Runner.Off; Analysis.Runner.Exact ])
          [ 2; 3; 4 ]
      done;
      Alcotest.(check bool) "matrix covers >= 500 traces" true (!traces >= 500);
      (* the corpus must exercise both verdicts or the matrix is vacuous *)
      Alcotest.(check bool) "some traces violate" true (!violating > 0);
      Alcotest.(check bool)
        "some traces are serializable" true
        (!violating < !traces)))

(* Forced cuts at arbitrary (frequently non-quiescent) positions across
   a generated corpus, composed with the exact prefilter and per-chunk
   flight recorders: the reconciled verdict must match the sequential
   checker on the same (filtered) event stream, whatever the cut slices
   through. *)
let test_adversarial_cut_matrix () =
  Parallel.Deque.with_scheduler 4 (fun sched ->
  let checked = ref 0 in
  for seed = 0 to 39 do
    List.iter
      (fun threads ->
        let tr0 =
          if seed land 1 = 1 then
            violating_trace ~seed ~threads
              ~at:(0.2 +. (0.1 *. float_of_int (seed land 5)))
          else
            Workloads.Corpus.mixed ~seed:(Int64.of_int seed) ~threads
              ~events_total:1200 ()
        in
        List.iter
          (fun prefiltered ->
            let tr =
              if prefiltered then fst (Prefilter.run_trace `Exact tr0)
              else tr0
            in
            let n = Trace.length tr in
            if n > 8 then begin
              let expected = seq_violation tr in
              List.iter
                (fun cuts ->
                  let cuts = List.filter (fun c -> c > 0 && c < n) cuts in
                  if cuts <> [] then begin
                    incr checked;
                    let o =
                      shard_check ~cuts ~flight:64
                        ~shards:(List.length cuts + 1)
                        tr
                    in
                    Alcotest.(check violation)
                      (Printf.sprintf
                         "seed=%d threads=%d prefilter=%b cuts=[%s]" seed
                         threads prefiltered
                         (String.concat ";" (List.map string_of_int cuts)))
                      expected o.Parallel.Shard.violation;
                    Array.iter
                      (fun (t : Parallel.Shard.task) ->
                        Alcotest.(check bool)
                          "flight recorder attached" true (t.flight <> None))
                      o.Parallel.Shard.tasks;
                    (* the same forced cuts through the stealing
                       executor: out-of-order seam repair must land on
                       the identical verdict *)
                    let o =
                      steal_check ~sched ~cuts ~flight:64
                        ~shards:(List.length cuts + 1)
                        tr
                    in
                    Alcotest.(check violation)
                      (Printf.sprintf
                         "seed=%d threads=%d prefilter=%b cuts=[%s] stealing"
                         seed threads prefiltered
                         (String.concat ";" (List.map string_of_int cuts)))
                      expected o.Parallel.Shard.violation
                  end)
                [
                  [ n / 2 ];
                  [ n / 3; 2 * n / 3 ];
                  [ (n / 2) - 1; n / 2; (n / 2) + 1 ];
                ]
            end)
          [ false; true ])
      [ 2; 3; 4 ]
  done;
  Alcotest.(check bool) "adversarial matrix non-vacuous" true (!checked >= 400))

(* Auto-planned boundaries: the chunk bounds partition the arena, the
   summaries match an independent depth recomputation, and each repair
   window spans exactly the gap from its cut to the two-phase horizon
   — straddlers close, then the transactions open at that moment close
   (zero for quiescent or touch-free cuts). *)
let test_plan_invariants () =
  for seed = 0 to 19 do
    let tr =
      Workloads.Corpus.mixed ~seed:(Int64.of_int seed) ~threads:3
        ~events_total:2000 ()
    in
    let n = Trace.length tr in
    let q = quiescent_positions tr in
    let plan =
      Aerodrome.Merge.plan ~threads:(Trace.threads tr) ~shards:4 (arena_of tr)
    in
    Alcotest.(check int)
      "every candidate classified" plan.Aerodrome.Merge.targets
      (plan.Aerodrome.Merge.quiescent + plan.Aerodrome.Merge.seamed);
    let bs = plan.Aerodrome.Merge.boundaries in
    Alcotest.(check int) "origin cut" 0 bs.(0).Aerodrome.Merge.cut;
    Alcotest.(check int) "origin window" 0 bs.(0).Aerodrome.Merge.window;
    Array.iteri
      (fun i (b : Aerodrome.Merge.boundary) ->
        if i > 0 then begin
          Alcotest.(check bool)
            (Printf.sprintf "seed=%d cut %d increasing" seed b.cut)
            true
            (b.cut > bs.(i - 1).Aerodrome.Merge.cut);
          let depth = depths_at tr b.cut in
          Alcotest.(check (array int))
            (Printf.sprintf "seed=%d cut %d depths" seed b.cut)
            depth b.depths;
          let straddlers =
            Array.fold_left (fun a d -> if d > 0 then a + 1 else a) 0 b.depths
          in
          if straddlers = 0 then begin
            Alcotest.(check bool)
              (Printf.sprintf "seed=%d cut %d quiescent" seed b.cut)
              true (Hashtbl.mem q b.cut);
            Alcotest.(check int) "quiescent cut: window 0" 0 b.window
          end
          else if b.window = 0 then
            (* touch-free seam: depth seeding alone is exact *)
            Alcotest.(check int)
              (Printf.sprintf "seed=%d cut %d touch-free" seed b.cut)
              0 b.tainted
          else begin
            (* the window closes at the two-phase horizon: straddlers
               retire, then the transactions open at that moment retire
               (capped at the arena end) *)
            let h = b.cut + b.window in
            Alcotest.(check int)
              (Printf.sprintf "seed=%d cut %d window end" seed b.cut)
              (min n (horizon tr b.cut))
              h;
            for p = b.cut to h - 1 do
              Alcotest.(check bool)
                (Printf.sprintf "seed=%d cut %d no quiescent inside window"
                   seed b.cut)
                false (Hashtbl.mem q p)
            done
          end
        end)
      bs;
    let bounds = Aerodrome.Merge.bounds plan ~total:n in
    Alcotest.(check int) "first chunk starts at 0" 0 (fst bounds.(0));
    Alcotest.(check int)
      "last chunk stops at n" n
      (snd bounds.(Array.length bounds - 1));
    Array.iteri
      (fun i (base, stop) ->
        Alcotest.(check bool) "chunk non-empty" true (base < stop);
        if i > 0 then
          Alcotest.(check int) "chunks contiguous" (snd bounds.(i - 1)) base)
      bounds
  done

(* The precomputed reconciliation fold ({!Merge.seams}): owners are the
   nearest surviving predecessors, a non-surviving chunk's whole extent
   is re-fed by its repair segment, and the surviving chunks' exact
   regions plus the repair segments partition the arena — the property
   that makes out-of-order execution return the sequential verdict. *)
let test_seam_invariants () =
  for seed = 0 to 19 do
    let tr =
      Workloads.Corpus.mixed ~seed:(Int64.of_int seed) ~threads:3
        ~events_total:2000 ()
    in
    let n = Trace.length tr in
    let arena = arena_of tr in
    let check_plan label (plan : Aerodrome.Merge.plan) =
      let bounds = Aerodrome.Merge.bounds plan ~total:n in
      let seams = Aerodrome.Merge.seams plan ~total:n in
      let k = Array.length plan.Aerodrome.Merge.boundaries in
      Alcotest.(check int) (label ^ ": one seam per boundary") k
        (Array.length seams);
      Alcotest.(check bool) (label ^ ": chunk 0 survives") true
        seams.(0).Aerodrome.Merge.survives;
      let cover = Array.make n 0 in
      let mark from upto =
        for p = from to upto - 1 do
          cover.(p) <- cover.(p) + 1
        done
      in
      Array.iteri
        (fun i (s : Aerodrome.Merge.seam) ->
          let base, stop = bounds.(i) in
          if i > 0 then begin
            Alcotest.(check bool)
              (Printf.sprintf "%s: seam %d owner precedes" label i)
              true (s.owner < i);
            Alcotest.(check bool)
              (Printf.sprintf "%s: seam %d owner survives" label i)
              true seams.(s.owner).Aerodrome.Merge.survives;
            for j = s.owner + 1 to i - 1 do
              Alcotest.(check bool)
                (Printf.sprintf "%s: seam %d owner is nearest" label i)
                false seams.(j).Aerodrome.Merge.survives
            done;
            Alcotest.(check bool)
              (Printf.sprintf "%s: seam %d segment ordered" label i)
              true
              (s.from_ <= s.upto && s.upto <= n);
            if not s.survives then begin
              (* a dead chunk's extent must be entirely re-fed *)
              Alcotest.(check bool)
                (Printf.sprintf "%s: seam %d dead chunk covered" label i)
                true
                (s.from_ <= base && stop <= s.upto)
            end;
            mark s.from_ s.upto
          end;
          if s.survives then mark (max base s.exact_from) stop)
        seams;
      Array.iteri
        (fun p c ->
          if c <> 1 then
            Alcotest.failf "%s: position %d covered %d times (want 1)" label p
              c)
        cover
    in
    let threads = Trace.threads tr in
    check_plan
      (Printf.sprintf "seed=%d auto" seed)
      (Aerodrome.Merge.plan ~threads ~shards:4 arena);
    check_plan
      (Printf.sprintf "seed=%d forced" seed)
      (Aerodrome.Merge.plan ~threads ~shards:4
         ~cuts:[ n / 3; n / 2; 2 * n / 3 ]
         arena)
  done

(* --- adversarial boundaries --- *)

(* A violating middle flanked by quiescent prologue/epilogue.  The
   violation fires at the second write of thread 0's open transaction
   (t0 -> t1 -> t0 conflict cycle), event index 11; positions 6 (before
   the pattern) and 13 (after it) are quiescent. *)
let boundary_trace () =
  Trace.of_events
    Event.
      [
        begin_ 0; write 0 0; end_ 0;    (* 0..2  prologue, t0 *)
        begin_ 1; write 1 1; end_ 1;    (* 3..5  prologue, t1 *)
        begin_ 0; read 0 2;             (* 6..7  t0 opens, reads x2 *)
        begin_ 1; write 1 2; end_ 1;    (* 8..10 t1 intervenes on x2 *)
        write 0 2;                      (* 11    violation: cycle closes *)
        end_ 0;                         (* 12 *)
        begin_ 1; read 1 0; end_ 1;     (* 13..15 epilogue *)
      ]

let test_boundary_violation () =
  let tr = boundary_trace () in
  let expected = seq_violation tr in
  (match expected with
  | Some v -> Alcotest.(check int) "sequential violation index" 11 v.index
  | None -> Alcotest.fail "boundary trace must violate");
  (* cut before the violating pattern: the whole pattern lands in chunk 2 *)
  List.iter
    (fun cuts ->
      let o = shard_check ~cuts ~shards:(List.length cuts + 1) tr in
      Alcotest.(check violation)
        (Printf.sprintf "cuts at [%s]"
           (String.concat ";" (List.map string_of_int cuts)))
        expected o.Parallel.Shard.violation;
      Alcotest.(check int)
        "all cuts quiescent" (List.length cuts)
        o.Parallel.Shard.plan.Aerodrome.Merge.quiescent;
      Alcotest.(check int) "no seams" 0
        o.Parallel.Shard.plan.Aerodrome.Merge.seamed;
      Alcotest.(check int) "nothing repaired" 0
        o.Parallel.Shard.repaired_events)
    [ [ 6 ]; [ 13 ]; [ 6; 13 ] ]

(* A forced cut inside thread 0's open transaction is accepted with a
   boundary summary; the repair window spans from the cut to the
   retirement horizon — here position 13, where the straddling
   transaction closes — clipped by where the violation surfaces.
   Expected per cut: (window, events actually repaired).  Cut 7 slices
   right after the begin — touch-free, so depth seeding is exact and
   the window is zero; cut 12 leaves the violation inside chunk 1,
   whose speculative run is exact, so no repair runs at all. *)
let test_mid_transaction_cut () =
  let tr = boundary_trace () in
  let expected = seq_violation tr in
  List.iter
    (fun (cut, window, repaired) ->
      let o = shard_check ~cuts:[ cut ] ~shards:2 tr in
      let p = o.Parallel.Shard.plan in
      Alcotest.(check int)
        (Printf.sprintf "cut %d seamed" cut)
        1 p.Aerodrome.Merge.seamed;
      Alcotest.(check int) "no quiescent cuts" 0 p.Aerodrome.Merge.quiescent;
      Alcotest.(check int) "two chunks" 2 (Array.length o.Parallel.Shard.tasks);
      let b = p.Aerodrome.Merge.boundaries.(1) in
      Alcotest.(check int)
        (Printf.sprintf "cut %d kept verbatim" cut)
        cut b.Aerodrome.Merge.cut;
      Alcotest.(check int)
        (Printf.sprintf "cut %d window" cut)
        window b.Aerodrome.Merge.window;
      Alcotest.(check int)
        (Printf.sprintf "cut %d repaired events" cut)
        repaired o.Parallel.Shard.repaired_events;
      Alcotest.(check violation) "verdict unchanged" expected
        o.Parallel.Shard.violation)
    [ (7, 0, 0); (9, 4, 3); (11, 2, 1); (12, 1, 0) ]

(* A cut between an open transaction's write and the racing read that
   closes the conflict cycle: the chunk checker cannot see t0's pre-cut
   write of x0, so the speculative run is blind to the violation — the
   repair window (which spans to the arena end: t0 never closes before
   the violation) must surface it with the exact sequential index. *)
let test_write_racing_read_cut () =
  let tr =
    Trace.of_events
      Event.
        [
          begin_ 0; write 0 0;                    (* 0,1  t0 opens, writes x0 *)
          begin_ 1; read 1 0; write 1 1; end_ 1;  (* 2..5 t1 reads x0, writes x1 *)
          read 0 1;                               (* 6    cycle closes: violation *)
          end_ 0;                                 (* 7 *)
        ]
  in
  let expected = seq_violation tr in
  (match expected with
  | Some v -> Alcotest.(check int) "sequential violation index" 6 v.index
  | None -> Alcotest.fail "write/racing-read trace must violate");
  let o = shard_check ~cuts:[ 2 ] ~flight:16 ~shards:2 tr in
  let p = o.Parallel.Shard.plan in
  Alcotest.(check int) "seamed" 1 p.Aerodrome.Merge.seamed;
  Alcotest.(check int) "quiescent" 0 p.Aerodrome.Merge.quiescent;
  Alcotest.(check bool) "taint accounted" true
    (p.Aerodrome.Merge.tainted_events > 0);
  let b = p.Aerodrome.Merge.boundaries.(1) in
  Alcotest.(check int) "cut kept verbatim" 2 b.Aerodrome.Merge.cut;
  (* no quiescent position before the end: the window spans the rest *)
  Alcotest.(check int) "window spans to the arena end" 6
    b.Aerodrome.Merge.window;
  Alcotest.(check violation) "verdict from the repair" expected
    o.Parallel.Shard.violation;
  Alcotest.(check int) "repair fed up to the violation" 5
    o.Parallel.Shard.repaired_events

(* A transaction spanning the ideal equidistant cut with no quiescent
   position in snapping range: the planner keeps the mid-transaction
   cut, records its summary, and the window runs to the transaction's
   end. *)
let test_transaction_spanning_edge () =
  let mid =
    List.concat
      [
        [ Event.begin_ 0 ];
        List.init 40 (fun i -> Event.write 0 (i mod 3));
        [ Event.end_ 0 ];
      ]
  in
  let prologue =
    List.concat
      (List.init 10 (fun i ->
           [ Event.begin_ 1; Event.write 1 (3 + (i mod 2)); Event.end_ 1 ]))
  in
  let epilogue =
    List.concat
      (List.init 10 (fun i ->
           [ Event.begin_ 1; Event.read 1 (3 + (i mod 2)); Event.end_ 1 ]))
  in
  let tr = Trace.of_events (prologue @ mid @ epilogue) in
  let o = shard_check ~shards:2 tr in
  let p = o.Parallel.Shard.plan in
  Alcotest.(check int) "midpoint cut seamed" 1 p.Aerodrome.Merge.seamed;
  Alcotest.(check int) "no quiescent snap in range" 0
    p.Aerodrome.Merge.quiescent;
  let b = p.Aerodrome.Merge.boundaries.(1) in
  Alcotest.(check int) "midpoint cut" 51 b.Aerodrome.Merge.cut;
  (* the transaction closes after event 71; 72 is the next quiescent *)
  Alcotest.(check int) "window to the transaction end" 21
    b.Aerodrome.Merge.window;
  Alcotest.(check int) "whole window repaired" 21
    o.Parallel.Shard.repaired_events;
  Alcotest.(check violation) "serializable across the span" (seq_violation tr)
    o.Parallel.Shard.violation

(* Fork and join land in different chunks.  A quiescent cut between
   them (13) and a non-quiescent cut inside a filler transaction (15,
   after its write — one tainted access, window to the transaction's
   end): both must preserve the HB edges and the verdict. *)
let test_fork_join_across_shards () =
  let tr =
    Trace.of_events
      (List.concat
         [
           [ Event.fork 0 1 ];
           [ Event.begin_ 0; Event.write 0 0; Event.end_ 0 ];
           [ Event.begin_ 1; Event.read 1 0; Event.end_ 1 ];
           (* quiescent gap the planner can cut in *)
           List.concat
             (List.init 6 (fun i ->
                  [ Event.begin_ 1; Event.write 1 (1 + (i mod 2)); Event.end_ 1 ]));
           [ Event.begin_ 0; Event.read 0 1; Event.end_ 0 ];
           [ Event.join 0 1 ];
         ])
  in
  let expected = seq_violation tr in
  (* quiescent cut in the gap between fork and join *)
  let o = shard_check ~cuts:[ 13 ] ~shards:2 tr in
  Alcotest.(check int) "cut quiescent" 1
    o.Parallel.Shard.plan.Aerodrome.Merge.quiescent;
  Alcotest.(check int) "two chunks" 2 (Array.length o.Parallel.Shard.tasks);
  Alcotest.(check violation) "verdict across fork/join" expected
    o.Parallel.Shard.violation;
  (* non-quiescent cut mid-filler-transaction, still between fork and
     join: seamed, repaired to the transaction end, same verdict *)
  let o = shard_check ~cuts:[ 15 ] ~shards:2 tr in
  let p = o.Parallel.Shard.plan in
  Alcotest.(check int) "cut seamed" 1 p.Aerodrome.Merge.seamed;
  Alcotest.(check int) "window to the filler end" 1
    p.Aerodrome.Merge.boundaries.(1).Aerodrome.Merge.window;
  Alcotest.(check violation) "verdict across the seam" expected
    o.Parallel.Shard.violation

(* events_fed and the rendered report go through the runner too: a
   violating binary-style trace via Runner.run with a forced shard
   count must match the sequential report byte for byte.  (The
   file-level plumbing is covered by the cram test; here we pin the
   trace-level entry.)  [0] is the auto sentinel — a 16-event trace
   resolves to one shard and must take the sequential path. *)
let test_runner_report_identity () =
  let tr = boundary_trace () in
  let normalized r =
    Format.asprintf "%a" Analysis.Runner.pp
      { r with Analysis.Runner.seconds = 0.0 }
  in
  let base = Analysis.Runner.run opt tr in
  List.iter
    (fun shards ->
      let r = Analysis.Runner.run ~shards opt tr in
      Alcotest.(check string)
        (Printf.sprintf "runner report, %d shards" shards)
        (normalized base) (normalized r))
    [ 0; 2; 3; 4 ];
  (* the same through a lent scheduler: [0] stays sequential (the
     small-trace gate), explicit counts steal *)
  Parallel.Deque.with_scheduler 2 (fun sched ->
      List.iter
        (fun shards ->
          let r = Analysis.Runner.run ~shards ~sched opt tr in
          Alcotest.(check string)
            (Printf.sprintf "runner report, %d shards stealing" shards)
            (normalized base) (normalized r))
        [ 0; 2; 3; 4 ])

let suite =
  ( "shard",
    [
      Alcotest.test_case "differential: sequential vs sharded matrix" `Slow
        test_matrix;
      Alcotest.test_case "differential: forced adversarial cuts" `Slow
        test_adversarial_cut_matrix;
      Alcotest.test_case "plan: summaries, windows, bounds partition" `Quick
        test_plan_invariants;
      Alcotest.test_case "plan: seams partition for out-of-order repair"
        `Quick test_seam_invariants;
      Alcotest.test_case "boundary: violation at the cut" `Quick
        test_boundary_violation;
      Alcotest.test_case "boundary: cut inside an open transaction" `Quick
        test_mid_transaction_cut;
      Alcotest.test_case "boundary: cut between write and racing read" `Quick
        test_write_racing_read_cut;
      Alcotest.test_case "boundary: transaction spans the ideal cut" `Quick
        test_transaction_spanning_edge;
      Alcotest.test_case "boundary: fork/join across shards" `Quick
        test_fork_join_across_shards;
      Alcotest.test_case "runner: sharded report identity" `Quick
        test_runner_report_identity;
    ] )
