The rapid CLI end to end.  Generate a small deterministic trace:

  $ rapid generate --events 300 --threads 3 --seed 7 -o trace.std
  wrote 313 events to trace.std

Inspect it:

  $ rapid metainfo trace.std | head -3
  events:       313
  reads/writes: 143 / 64
  acq/rel:      16 / 16

An atomic workload: every checker exits 0.

  $ rapid check -q trace.std
  $ rapid check -q -a aerodrome-basic trace.std
  $ rapid check -q -a velodrome trace.std

A violating workload: exit code 1 and a report naming the event.

  $ rapid generate --events 300 --threads 3 --seed 7 --violate-at 0.5 -o bad.std
  wrote 311 events to bad.std
  $ rapid check -q bad.std
  [1]
  $ rapid check bad.std 2>&1 | sed 's/in [0-9.]*s/in TIME/'
  aerodrome: violation @165 in TIME (311 events)
  $ rapid check -a velodrome bad.std 2>&1 | sed 's/in [0-9.]*s/in TIME/'
  velodrome: violation @165 in TIME (311 events)

Unknown algorithms and profiles are rejected:

  $ rapid check -a frobnicate trace.std
  rapid: option '-a': unknown algorithm "frobnicate"
  Usage: rapid check [OPTION]… TRACE…
  Try 'rapid check --help' or 'rapid --help' for more information.
  [124]
  $ rapid generate --profile nope
  unknown profile "nope" (try: rapid profiles)
  [2]

Profiles are listed with their table and parameters:

  $ rapid profiles | head -2
  avrora (table 1): event-driven simulator: long-lived pipeline transaction, late violation — 7 threads, 8 locks, 80000 vars, 240000 events
  elevator (table 1): discrete-event controller: atomic, graph never collapses — 5 threads, 50 locks, 40000 vars, 120000 events
  $ rapid profiles | wc -l
  21

Round-trip: a written trace parses to the same rendering.

  $ rapid generate --events 300 --threads 3 --seed 7 | head -4
  T0|fork(T1)
  T0|fork(T2)
  T2|begin
  T1|begin

The clocks view replays Algorithm 1 and prints the evolving vector
clocks, stopping at the violation (Figure 5 of the paper):

  $ cat > rho2.std <<DONE
  > t1|begin
  > t2|begin
  > t1|w(x)
  > t2|r(x)
  > t2|w(y)
  > t1|r(y)
  > t1|end
  > t2|end
  > DONE
  $ rapid clocks rho2.std
  event  operation                            C_0             C_1
      1  t1:begin                       ⟨2,0⟩       ⟨0,1⟩
      2  t2:begin                       ⟨2,0⟩       ⟨0,2⟩
      3  t1:w(V0)                       ⟨2,0⟩       ⟨0,2⟩
      4  t2:r(V0)                       ⟨2,0⟩       ⟨2,2⟩
      5  t2:w(V1)                       ⟨2,0⟩       ⟨2,2⟩
      6  t1:r(V1)                       ⟨2,0⟩       ⟨2,2⟩
  conflict-serializability violation at event 6 (⟨T0,r(V1)⟩), at read (vs last write)

Binary conversion round-trips and is auto-detected by every command:

  $ rapid convert rho2.std rho2.bin
  rho2.bin: 8 events, 64 -> 54 bytes
  $ rapid check -q rho2.bin
  [1]
  $ rapid metainfo rho2.bin | head -1
  events:       8
  $ rapid convert --text rho2.bin back.std
  back.std: 8 events, 54 -> 68 bytes
  $ rapid check -q back.std
  [1]

Explain prints the baseline's witness cycle and a Proposition 1 pair:

  $ rapid explain rho2.std
  conflict-serializability violation at event 6 (⟨T0,r(V1)⟩), at read (vs last write)
  
  velodrome witness (at event 6): transactions 0 -> 1
  prop-1 witness (indices in the 8-event window): e4 ->* e1 and e1 <=CHB e4
    e4 = ⟨T1,r(V0)⟩
    e1 = ⟨T0,begin⟩

Trace reduction.  A trace with a private variable, a read-only
variable, an immediate re-read, and a single-threaded lock; metainfo
classifies the reducible traffic, and filter drops it (the exact mode
needs whole-trace statistics, which the text reader collects in its
interning pass):

  $ cat > red.std <<'TRACE'
  > t1|begin
  > t1|r(x)
  > t1|w(x)
  > t1|r(priv)
  > t1|w(priv)
  > t1|r(x)
  > t1|acq(solo)
  > t1|rel(solo)
  > t1|r(ro)
  > t1|end
  > t2|begin
  > t2|w(x)
  > t2|r(ro)
  > t2|end
  > TRACE
  $ rapid metainfo red.std | tail -2
  variables:    3 (1 thread-local, 1 read-only; 1 thread-local locks)
  reducible:    7/14 events (50.0%): 2 thread-local, 2 read-only, 1 redundant, 2 lock-local
  $ rapid filter red.std red-out.std --text
  red-out.std: 14 -> 7 events (-7: 2 thread-local, 2 read-only, 1 redundant, 2 lock-local)
  $ cat red-out.std
  t1|begin
  t1|r(x)
  t1|w(x)
  t1|end
  t2|begin
  t2|w(x)
  t2|end

The online mode buffers per thread and flushes at transaction
boundaries, so on a trace whose transactions all close it keeps
everything — it only elides objects that stay private to the end of
the stream:

  $ rapid filter -m online red.std red-online.std --text
  red-online.std: 14 -> 14 events (-0: 0 thread-local, 0 read-only, 0 redundant, 0 lock-local)

check --prefilter composes the reduction with the streaming checker
and reports what it elided; the verdict is unchanged, the violation
index is relative to the reduced stream:

  $ rapid check -q --prefilter --stats red.std 2>&1 | grep prefilter
    prefilter.elided.lock_local    2
    prefilter.elided.read_only     2
    prefilter.elided.redundant     1
    prefilter.elided.thread_local  2
    prefilter.events_in            14
    prefilter.events_out           7
  $ rapid check --prefilter bad.std 2>&1 | sed 's/in [0-9.]*s/in TIME/'
  aerodrome: violation @87 in TIME (174 events)
  $ rapid check -q --prefilter bad.std
  [1]
  $ rapid check -q --prefilter-online bad.std
  [1]

filter --window restricts to an event window first (markers repaired),
then filters the window; inside a t1-only window everything shared
becomes thread-local:

  $ rapid filter --window 0:10 red.std win.std --text
  win.std: 10 -> 2 events (-8: 6 thread-local, 0 read-only, 0 redundant, 2 lock-local)
  $ cat win.std
  t1|begin
  t1|end

Binary inputs ride the zero-copy packed reader by default; --no-packed
selects the boxed reference reader, and the two must agree byte for
byte on the report:

  $ rapid convert bad.std bad.bin
  bad.bin: 311 events, 3004 -> 968 bytes
  $ rapid check bad.bin 2>&1 | sed 's/in [0-9.]*s/in TIME/' > packed.out
  $ rapid check --no-packed bad.bin 2>&1 | sed 's/in [0-9.]*s/in TIME/' > boxed.out
  $ cmp packed.out boxed.out && cat packed.out
  aerodrome: violation @165 in TIME (311 events)

Hostile binary inputs fail with a clean diagnostic and exit 2 on
either reader — truncated mid-header, mid-event-section, or into the
footer trailer:

  $ head -c 10 bad.bin > hostile.bin
  $ rapid check hostile.bin
  truncated integer
  [2]
  $ head -c 300 bad.bin > hostile.bin
  $ rapid check hostile.bin
  hostile.bin: declared event count 311 exceeds file size
  [2]
  $ head -c $(($(wc -c < bad.bin) - 4)) bad.bin > hostile.bin
  $ rapid check hostile.bin
  hostile.bin: bad footer magic
  [2]
  $ rapid check --no-packed hostile.bin
  hostile.bin: bad footer magic
  [2]
