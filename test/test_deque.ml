(* The work-stealing substrate (DESIGN.md §18): the bounded Chase–Lev
   deque under owner/thief races on real domains — every pushed item
   taken exactly once, LIFO on the owner side, boundedness honoured —
   and the scheduler above it: result delivery, exception propagation
   with its backtrace, nested submit/await (a task awaiting tasks it
   spawned on the same scheduler must help, not deadlock), and the
   telemetry counters' conservation laws. *)

module D = Parallel.Deque
module Q = Parallel.Deque.Ws_deque

(* --- the deque itself --- *)

let test_lifo_owner () =
  let q = Q.make 8 in
  for i = 0 to 7 do
    Alcotest.(check bool) "push fits" true (Q.push q i)
  done;
  for i = 7 downto 0 do
    Alcotest.(check (option int)) "newest first" (Some i) (Q.pop q)
  done;
  Alcotest.(check (option int)) "empty" None (Q.pop q)

let test_bounded () =
  (* capacity rounds up to a power of two; the first refused push marks
     the bound and nothing is overwritten *)
  let q = Q.make 5 in
  let accepted = ref 0 in
  while Q.push q !accepted do
    incr accepted
  done;
  Alcotest.(check int) "rounded to 8" 8 !accepted;
  Alcotest.(check int) "length agrees" 8 (Q.length q);
  (* pops return exactly the accepted items *)
  for i = !accepted - 1 downto 0 do
    Alcotest.(check (option int)) "survived the refused push" (Some i)
      (Q.pop q)
  done

let test_steal_fifo () =
  let q = Q.make 8 in
  for i = 0 to 5 do
    ignore (Q.push q i)
  done;
  (* same-domain steal is legal (any domain may steal) and takes the
     oldest entry *)
  Alcotest.(check (option int)) "oldest first" (Some 0) (Q.steal q);
  Alcotest.(check (option int)) "then the next" (Some 1) (Q.steal q);
  Alcotest.(check (option int)) "owner still newest" (Some 5) (Q.pop q)

(* owner pops while thieves steal: conservation — every item is taken
   exactly once, none invented, none lost.  The one-element case is the
   interesting race (pop and steal CAS the same top). *)
let steal_stress ~thieves ~items ~capacity () =
  let q = Q.make capacity in
  let taken = Array.make items (Atomic.make 0) in
  for i = 0 to items - 1 do
    taken.(i) <- Atomic.make 0
  done;
  let stop = Atomic.make false in
  let spawn_thief () =
    Domain.spawn (fun () ->
        let rec loop () =
          match Q.steal q with
          | Some v ->
            Atomic.incr taken.(v);
            loop ()
          | None -> if not (Atomic.get stop) then loop ()
        in
        loop ())
  in
  let ts = List.init thieves (fun _ -> spawn_thief ()) in
  (* the owner interleaves pushes with occasional pops; a full deque
     spins until the thieves make room *)
  let next = ref 0 in
  while !next < items do
    if Q.push q !next then begin
      incr next;
      if !next mod 7 = 0 then
        match Q.pop q with
        | Some v -> Atomic.incr taken.(v)
        | None -> ()
    end
  done;
  (* drain what's left from the owner side *)
  let rec drain () =
    match Q.pop q with
    | Some v ->
      Atomic.incr taken.(v);
      drain ()
    | None -> ()
  in
  drain ();
  (* let the thieves observe the (now stably empty) deque, then stop *)
  Atomic.set stop true;
  List.iter Domain.join ts;
  drain ();
  Array.iteri
    (fun i c ->
      let n = Atomic.get c in
      if n <> 1 then
        Alcotest.failf "item %d taken %d times (want exactly once)" i n)
    taken

let test_steal_stress () = steal_stress ~thieves:3 ~items:8_000 ~capacity:64 ()

let test_one_slot_race () =
  (* capacity 2 (the minimum): almost every operation is the
     one-element pop-vs-steal race *)
  steal_stress ~thieves:2 ~items:2_000 ~capacity:1 ()

(* --- the scheduler --- *)

let test_submit_await () =
  D.with_scheduler 2 (fun s ->
      let ps = List.init 100 (fun i -> D.submit s (fun () -> i * i)) in
      let sum = List.fold_left (fun acc p -> acc + D.await s p) 0 ps in
      Alcotest.(check int) "sum of squares" 328350 sum)

exception Boom of int

let test_exception_propagates () =
  D.with_scheduler 2 (fun s ->
      let p = D.submit s (fun () -> raise (Boom 42)) in
      Alcotest.check_raises "re-raised at await" (Boom 42) (fun () ->
          ignore (D.await s p));
      (* the scheduler survives a failed task *)
      let q = D.submit s (fun () -> 7) in
      Alcotest.(check int) "still serving" 7 (D.await s q))

let test_nested_await_helps () =
  (* the shape Runner.run_many produces: file-level tasks that spawn
     and await chunk tasks on the same scheduler.  With blocking
     awaits, 2 domains and 4 outer tasks this deadlocks; helping makes
     it finish. *)
  D.with_scheduler 2 (fun s ->
      let outer =
        List.init 4 (fun i ->
            D.submit s (fun () ->
                let inner =
                  List.init 8 (fun j -> D.submit s (fun () -> (i * 8) + j))
                in
                List.fold_left (fun acc p -> acc + D.await s p) 0 inner))
      in
      let total = List.fold_left (fun acc p -> acc + D.await s p) 0 outer in
      Alcotest.(check int) "32 leaves summed" (31 * 32 / 2) total)

let test_deep_nesting () =
  (* recursive fork/join down to depth 8 on one scheduler *)
  D.with_scheduler 3 (fun s ->
      let rec tree depth =
        if depth = 0 then 1
        else
          let l = D.submit s (fun () -> tree (depth - 1)) in
          let r = D.submit s (fun () -> tree (depth - 1)) in
          D.await s l + D.await s r
      in
      Alcotest.(check int) "2^8 leaves" 256 (tree 8))

let test_shutdown_rejects () =
  let s = D.create 1 in
  let p = D.submit s (fun () -> 3) in
  Alcotest.(check int) "served" 3 (D.await s p);
  D.shutdown s;
  Alcotest.check_raises "closed"
    (Invalid_argument "Deque.submit: scheduler is shut down") (fun () ->
      ignore (D.submit s (fun () -> 0)))

let test_stats_conservation () =
  let s = D.create 2 in
  let n = 200 in
  let ps = List.init n (fun i -> D.submit s (fun () -> i)) in
  let sum = List.fold_left (fun acc p -> acc + D.await s p) 0 ps in
  Alcotest.(check int) "results intact" (n * (n - 1) / 2) sum;
  D.shutdown s;
  let st = D.stats s in
  Alcotest.(check int) "domains" 2 st.D.domains;
  Alcotest.(check int) "every task completed" n st.D.completed;
  Alcotest.(check int) "per-worker counts sum to completed" n
    (Array.fold_left ( + ) 0 st.D.ran);
  (* external submissions all go through the injection queue *)
  Alcotest.(check int) "all injected" n st.D.injected;
  Alcotest.(check bool) "clock advanced" true (st.D.age_seconds >= 0.)

let suite =
  ( "deque",
    [
      Alcotest.test_case "owner LIFO" `Quick test_lifo_owner;
      Alcotest.test_case "bounded refusal" `Quick test_bounded;
      Alcotest.test_case "steal FIFO" `Quick test_steal_fifo;
      Alcotest.test_case "owner/thief conservation" `Quick test_steal_stress;
      Alcotest.test_case "one-slot race" `Quick test_one_slot_race;
      Alcotest.test_case "submit/await" `Quick test_submit_await;
      Alcotest.test_case "exception propagation" `Quick
        test_exception_propagates;
      Alcotest.test_case "nested await helps" `Quick test_nested_await_helps;
      Alcotest.test_case "deep fork/join" `Quick test_deep_nesting;
      Alcotest.test_case "shutdown rejects submit" `Quick
        test_shutdown_rejects;
      Alcotest.test_case "stats conservation" `Quick test_stats_conservation;
    ] )
