(** Packed scalar clocks [c@@t] in the FastTrack tradition.

    An epoch is a [(thread, clock)] pair packed into a single immediate
    integer: the low {!tid_bits} bits hold the thread id, the remaining
    bits the clock value.  Epochs are the O(1) representation used by
    {!Aclock} while a clock has a single writer; all operations here are
    constant-time and allocation-free.

    An epoch [c@@t] denotes the vector time [⊥\[c/t\]] — zero everywhere
    except component [t], which is [c].  The reserved value {!none} marks
    an {!Aclock} that has inflated to a full vector. *)

val tid_bits : int
(** Bits reserved for the thread id (20: up to ~1M threads). *)

val max_tid : int
val max_clock : int

type t = private int
(** A packed epoch, or {!none}.  [private] so the packing can only be
    built through {!make} / {!bump} but still compares as an immediate. *)

val none : t
(** Sentinel for "not an epoch" (negative). *)

val is_none : t -> bool

val make : tid:int -> clock:int -> t
(** @raise Invalid_argument if either field is out of range. *)

val bottom : t
(** [0@@0], denoting the vector time [⊥]. *)

val tid : t -> int
val clock : t -> int

val bump : t -> t
(** Increment the clock component; the thread id is unchanged. *)

val with_tid : tid:int -> t -> t
(** Replace the thread id, keeping the clock. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
