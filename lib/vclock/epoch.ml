let tid_bits = 20
let max_tid = (1 lsl tid_bits) - 1
let max_clock = max_int lsr tid_bits

type t = int

let none = -1
let is_none e = e < 0

let make ~tid ~clock =
  if tid < 0 || tid > max_tid then invalid_arg "Epoch.make: thread out of range";
  if clock < 0 || clock > max_clock then invalid_arg "Epoch.make: clock out of range";
  (clock lsl tid_bits) lor tid

let bottom = 0 (* 0 @ T0: the ⊥ value, owner irrelevant *)
let tid e = e land max_tid
let clock e = e lsr tid_bits
let bump e = e + (1 lsl tid_bits)
let with_tid ~tid e = (e land lnot max_tid) lor tid

let equal (a : t) (b : t) = a = b

let pp ppf e =
  if is_none e then Format.pp_print_string ppf "<none>"
  else Format.fprintf ppf "%d@@%d" (clock e) (tid e)

let to_string e = Format.asprintf "%a" pp e
