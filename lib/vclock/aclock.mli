(** Adaptive vector clocks: {!Epoch} scalar while single-writer, full
    vector after a cross-thread join.

    An [Aclock.t] denotes exactly the same mathematical vector time as a
    {!Vector_clock.t}; only the representation adapts.  A clock whose
    value is [⊥\[c/t\]] — zero everywhere except component [t] — is kept
    as the packed epoch [c@@t], so the overwhelmingly common single-writer
    operations (thread-local reads and writes, re-acquires, own-transaction
    updates) cost O(1) and allocate nothing.  The first operation whose
    result is not epoch-shaped {e inflates} the clock to a plain [int
    array] of dimension [dim]; inflation is permanent and the array is
    reused thereafter.

    Every operation computes the same value the eager {!Vector_clock}
    code would; [test/test_vclock.ml] checks this by differential
    property testing, and the checkers' verdicts are bit-for-bit
    unchanged.  See DESIGN.md, section "Clock representations". *)

type t

val create : int -> t
(** [create dim] is [⊥] of dimension [dim], in epoch form.
    @raise Invalid_argument if [dim < 0]. *)

val bottom : int -> t
(** Alias for {!create}. *)

val unit : int -> int -> t
(** [unit dim t] is [⊥\[1/t\]] in epoch form: the initial thread clock. *)

val dim : t -> int

val is_flat : t -> bool
(** True while the clock is in epoch form. *)

val flat_owner : t -> int
(** The epoch's thread id while flat, [-1] once inflated.  While flat,
    every component other than [flat_owner] is zero — callers use this to
    collapse O(threads) scans to a single-component check. *)

val get : t -> int -> int
(** O(1) in both representations. *)

val unsafe_get : t -> int -> int
(** {!get} without the bounds check; the index must be in [0..dim-1].
    For the checkers' per-event hot loops. *)

val set : t -> int -> int -> unit
val bump : t -> int -> unit

val join_into : into:t -> t -> unit
(** [into := into ⊔ v], O(1) whenever [v] is flat.  Inflates [into] only
    when the result is not epoch-shaped. *)

val join_into_grew : into:t -> t -> bool
(** Like {!join_into}, additionally reporting whether [into] changed —
    the checkers use this to invalidate caches keyed on a clock's
    value. *)

val join_into_zeroed : into:t -> t -> int -> unit
(** [into := into ⊔ v\[0/z\]]; a no-op when [v] is flat and owned by [z]
    (the read-own-write fast path of the checkers' [hR_x] updates). *)

val assign : into:t -> t -> unit
(** Copy [v]'s value; O(1) when [v] is flat. *)

val assign_zeroed : into:t -> t -> int -> unit
val copy : t -> t

val leq : t -> t -> bool
(** Pointwise order; O(1) whenever the left clock is flat. *)

val equal : t -> t -> bool
val equal_except : t -> t -> int -> bool
val is_bottom : t -> bool

val reset : t -> unit
(** Back to [⊥] (and back to epoch form). *)

val to_list : t -> int list
val of_list : int list -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
