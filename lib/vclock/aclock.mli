(** Adaptive vector clocks: {!Epoch} scalar while single-writer, full
    vector after a cross-thread join.

    An [Aclock.t] denotes exactly the same mathematical vector time as a
    {!Vector_clock.t}; only the representation adapts.  A clock whose
    value is [⊥\[c/t\]] — zero everywhere except component [t] — is kept
    as the packed epoch [c@@t], so the overwhelmingly common single-writer
    operations (thread-local reads and writes, re-acquires, own-transaction
    updates) cost O(1) and allocate nothing.  The first operation whose
    result is not epoch-shaped {e inflates} the clock to a plain [int
    array] of dimension [dim]; inflation is permanent and the array is
    reused thereafter.

    Every operation computes the same value the eager {!Vector_clock}
    code would; [test/test_vclock.ml] checks this by differential
    property testing, and the checkers' verdicts are bit-for-bit
    unchanged.  See DESIGN.md, section "Clock representations". *)

type t

val create : int -> t
(** [create dim] is [⊥] of dimension [dim], in epoch form.
    @raise Invalid_argument if [dim < 0]. *)

val bottom : int -> t
(** Alias for {!create}. *)

val unit : int -> int -> t
(** [unit dim t] is [⊥\[1/t\]] in epoch form: the initial thread clock. *)

val dim : t -> int

val is_flat : t -> bool
(** True while the clock is in epoch form. *)

val flat_owner : t -> int
(** The epoch's thread id while flat, [-1] once inflated.  While flat,
    every component other than [flat_owner] is zero — callers use this to
    collapse O(threads) scans to a single-component check. *)

val get : t -> int -> int
(** O(1) in both representations. *)

val unsafe_get : t -> int -> int
(** {!get} without the bounds check; the index must be in [0..dim-1].
    For the checkers' per-event hot loops. *)

val set : t -> int -> int -> unit
val bump : t -> int -> unit

val join_into : into:t -> t -> unit
(** [into := into ⊔ v], O(1) whenever [v] is flat.  Inflates [into] only
    when the result is not epoch-shaped. *)

val join_into_grew : into:t -> t -> bool
(** Like {!join_into}, additionally reporting whether [into] changed —
    the checkers use this to invalidate caches keyed on a clock's
    value. *)

val join_into_zeroed : into:t -> t -> int -> unit
(** [into := into ⊔ v\[0/z\]]; a no-op when [v] is flat and owned by [z]
    (the read-own-write fast path of the checkers' [hR_x] updates). *)

val assign : into:t -> t -> unit
(** Copy [v]'s value; O(1) when [v] is flat. *)

val assign_zeroed : into:t -> t -> int -> unit
val copy : t -> t

val leq : t -> t -> bool
(** Pointwise order; O(1) whenever the left clock is flat. *)

val equal : t -> t -> bool
val equal_except : t -> t -> int -> bool
val is_bottom : t -> bool

val reset : t -> unit
(** Back to [⊥] (and back to epoch form). *)

val to_list : t -> int list
val of_list : int list -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Recycling arena for per-variable clocks.

    A checker that releases a dead variable's clocks here instead of
    dropping them turns its steady-state allocation rate into pool
    traffic: [alloc] pops a previously released clock (a {e hit}) and
    only falls back to a fresh record on an empty pool (a {e miss}).
    Released clocks keep their inflated vector inside the record, so a
    recycled clock re-inflates without allocating.  [collapse] is the
    demotion path for streaming mode: it returns a clock whose value is
    epoch-shaped to the packed representation and reclaims its vector
    (bounded stash, reused by later inflations).

    Pools are single-domain, like the checkers that own them. *)
module Pool : sig
  type clock := t

  type t

  val create : int -> t
  (** [create dim] recycles clocks of dimension [dim] only. *)

  val dim : t -> int

  val alloc : t -> clock
  (** A [⊥] clock of the pool's dimension, recycled when possible. *)

  val release : t -> clock -> unit
  (** Reset the clock to [⊥] and make it available to [alloc].  The
      caller must not use the clock afterwards.
      @raise Invalid_argument on dimension mismatch. *)

  val collapse : t -> clock -> bool
  (** Shrink the clock's representation without changing its value:
      an inflated clock whose value is epoch-shaped returns to epoch
      form (counted as a demotion), and an epoch-form clock dragging a
      stale vector from an earlier inflation drops it.  The freed array
      feeds later inflations.  Returns whether anything shrank. *)

  val hits : t -> int

  val misses : t -> int

  val released : t -> int

  val collapsed : t -> int

  val in_pool : t -> int
  (** Clocks currently available to [alloc]. *)
end
