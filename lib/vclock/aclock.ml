(* Adaptive vector clocks: epoch (packed scalar) representation while the
   clock's value is ⊥[c/t]-shaped, inflating to a full vector on the first
   cross-thread join.  Representation changes are invisible: every
   operation computes exactly the same vector value the eager
   Vector_clock code would. *)

type t = {
  mutable ep : Epoch.t;
      (* when [is_none ep] is false the represented value is ⊥[clock/tid]
         and [vec] is stale; otherwise [vec] is authoritative *)
  mutable vec : int array;  (* [||] until the first inflation *)
  dim : int;
}

let dim a = a.dim

let create dim =
  if dim < 0 then invalid_arg "Aclock.create: negative dimension";
  { ep = Epoch.bottom; vec = [||]; dim }

let bottom = create

let unit dim t =
  if t < 0 || t >= dim then invalid_arg "Aclock.unit: thread out of range";
  { ep = Epoch.make ~tid:t ~clock:1; vec = [||]; dim }

let is_flat a = not (Epoch.is_none a.ep)

let flat_owner a = if Epoch.is_none a.ep then -1 else Epoch.tid a.ep

let check_dim name a b =
  if a.dim <> b.dim then invalid_arg (name ^ ": dimension mismatch")

let check_index name a t =
  if t < 0 || t >= a.dim then invalid_arg (name ^ ": thread out of range")

(* Epoch representation churn, process-wide (clocks can live on pool
   worker domains, so the counters are atomic).  Updated only while
   telemetry is on. *)
let promotions = Obs.Registry.shared_counter Obs.Registry.global "vclock.epoch_promotions"
let demotions = Obs.Registry.shared_counter Obs.Registry.global "vclock.epoch_demotions"

(* A clock that was inflated takes a flat value again: representation
   returns to epoch form. *)
let note_demotion a =
  if Obs.on () && Epoch.is_none a.ep then Obs.Shared_counter.inc demotions

(* Materialize the current (flat) value into [vec] and switch
   representation.  No-op when already inflated. *)
let inflate a =
  if not (Epoch.is_none a.ep) then begin
    if Obs.on () then Obs.Shared_counter.inc promotions;
    if Array.length a.vec <> a.dim then a.vec <- Array.make a.dim 0
    else Array.fill a.vec 0 a.dim 0;
    let c = Epoch.clock a.ep in
    if c > 0 then a.vec.(Epoch.tid a.ep) <- c;
    a.ep <- Epoch.none
  end

let get a t =
  check_index "Aclock.get" a t;
  if Epoch.is_none a.ep then Array.unsafe_get a.vec t
  else if Epoch.tid a.ep = t then Epoch.clock a.ep
  else 0

let unsafe_get a t =
  if Epoch.is_none a.ep then Array.unsafe_get a.vec t
  else if Epoch.tid a.ep = t then Epoch.clock a.ep
  else 0

let set a t c =
  if c < 0 then invalid_arg "Aclock.set: negative component";
  check_index "Aclock.set" a t;
  if Epoch.is_none a.ep then a.vec.(t) <- c
  else if Epoch.tid a.ep = t then a.ep <- Epoch.make ~tid:t ~clock:c
  else if Epoch.clock a.ep = 0 then a.ep <- Epoch.make ~tid:t ~clock:c
  else begin
    inflate a;
    a.vec.(t) <- c
  end

let bump a t =
  check_index "Aclock.bump" a t;
  if Epoch.is_none a.ep then a.vec.(t) <- a.vec.(t) + 1
  else if Epoch.tid a.ep = t then a.ep <- Epoch.bump a.ep
  else if Epoch.clock a.ep = 0 then a.ep <- Epoch.make ~tid:t ~clock:1
  else begin
    inflate a;
    a.vec.(t) <- a.vec.(t) + 1
  end

(* into := into ⊔ v, reporting whether [into] changed.  O(1) whenever [v]
   is flat. *)
let join_into_grew ~into v =
  check_dim "Aclock.join_into_grew" into v;
  if Epoch.is_none v.ep then begin
    inflate into;
    let iv = into.vec and vv = v.vec in
    let grew = ref false in
    for t = 0 to into.dim - 1 do
      let c = Array.unsafe_get vv t in
      if c > Array.unsafe_get iv t then begin
        Array.unsafe_set iv t c;
        grew := true
      end
    done;
    !grew
  end
  else begin
    let c = Epoch.clock v.ep in
    c > 0
    &&
    let u = Epoch.tid v.ep in
    if Epoch.is_none into.ep then
      c > Array.unsafe_get into.vec u
      && begin
           Array.unsafe_set into.vec u c;
           true
         end
    else if Epoch.clock into.ep = 0 then begin
      into.ep <- v.ep;
      true
    end
    else if Epoch.tid into.ep = u then
      c > Epoch.clock into.ep
      && begin
           into.ep <- v.ep;
           true
         end
    else begin
      inflate into;
      into.vec.(u) <- c;
      true
    end
  end

let join_into ~into v = ignore (join_into_grew ~into v)

(* into := into ⊔ v[0/z].  O(1) whenever [v] is flat (and a no-op when its
   only non-zero component is the zeroed one). *)
let join_into_zeroed ~into v z =
  check_dim "Aclock.join_into_zeroed" into v;
  check_index "Aclock.join_into_zeroed" v z;
  if Epoch.is_none v.ep then begin
    inflate into;
    let iv = into.vec and vv = v.vec in
    for t = 0 to into.dim - 1 do
      if t <> z then begin
        let c = Array.unsafe_get vv t in
        if c > Array.unsafe_get iv t then Array.unsafe_set iv t c
      end
    done
  end
  else begin
    let u = Epoch.tid v.ep and c = Epoch.clock v.ep in
    if u <> z && c > 0 then begin
      if Epoch.is_none into.ep then begin
        if c > Array.unsafe_get into.vec u then Array.unsafe_set into.vec u c
      end
      else if Epoch.clock into.ep = 0 then into.ep <- v.ep
      else if Epoch.tid into.ep = u then begin
        if c > Epoch.clock into.ep then into.ep <- v.ep
      end
      else begin
        inflate into;
        into.vec.(u) <- c
      end
    end
  end

let assign ~into v =
  check_dim "Aclock.assign" into v;
  if Epoch.is_none v.ep then begin
    if Array.length into.vec <> into.dim then into.vec <- Array.copy v.vec
    else Array.blit v.vec 0 into.vec 0 into.dim;
    into.ep <- Epoch.none
  end
  else begin
    note_demotion into;
    into.ep <- v.ep
  end

let assign_zeroed ~into v z =
  check_index "Aclock.assign_zeroed" v z;
  assign ~into v;
  if Epoch.is_none into.ep then into.vec.(z) <- 0
  else if Epoch.tid into.ep = z then into.ep <- Epoch.bottom

let copy a =
  if Epoch.is_none a.ep then { ep = Epoch.none; vec = Array.copy a.vec; dim = a.dim }
  else { ep = a.ep; vec = [||]; dim = a.dim }

(* v1 ⊑ v2, O(1) whenever [v1] is flat. *)
let leq v1 v2 =
  check_dim "Aclock.leq" v1 v2;
  if not (Epoch.is_none v1.ep) then begin
    let c = Epoch.clock v1.ep in
    c = 0 || c <= get v2 (Epoch.tid v1.ep)
  end
  else if not (Epoch.is_none v2.ep) then begin
    (* full vector ⊑ ⊥[c/u]: v1 must be zero outside u and ≤ c at u *)
    let u = Epoch.tid v2.ep and c = Epoch.clock v2.ep in
    let a = v1.vec in
    let rec go t =
      t >= v1.dim
      || ((if t = u then Array.unsafe_get a t <= c else Array.unsafe_get a t = 0)
         && go (t + 1))
    in
    go 0
  end
  else begin
    let a = v1.vec and b = v2.vec in
    let rec go t =
      t >= v1.dim || (Array.unsafe_get a t <= Array.unsafe_get b t && go (t + 1))
    in
    go 0
  end

let equal v1 v2 =
  check_dim "Aclock.equal" v1 v2;
  match (Epoch.is_none v1.ep, Epoch.is_none v2.ep) with
  | false, false ->
    let c1 = Epoch.clock v1.ep and c2 = Epoch.clock v2.ep in
    c1 = c2 && (c1 = 0 || Epoch.tid v1.ep = Epoch.tid v2.ep)
  | _ ->
    let rec go t = t >= v1.dim || (get v1 t = get v2 t && go (t + 1)) in
    go 0

let equal_except v1 v2 z =
  check_dim "Aclock.equal_except" v1 v2;
  let rec go t =
    t >= v1.dim || ((t = z || get v1 t = get v2 t) && go (t + 1))
  in
  go 0

let is_bottom a =
  if Epoch.is_none a.ep then Array.for_all (fun c -> c = 0) a.vec
  else Epoch.clock a.ep = 0

let reset a =
  a.ep <- Epoch.bottom (* vec (if any) becomes stale; kept for reuse *)

let to_list a = List.init a.dim (fun t -> get a t)

let of_list cs =
  if List.exists (fun c -> c < 0) cs then
    invalid_arg "Aclock.of_list: negative component";
  let vec = Array.of_list cs in
  { ep = Epoch.none; vec; dim = Array.length vec }

module Pool = struct
  type clock = t

  (* Inflated vectors stripped by [collapse] are kept for reuse too, but
     bounded: a long inactivity sweep over millions of variables must not
     turn the pool itself into the leak it exists to prevent. *)
  let spare_cap = 4096

  type t = {
    dim : int;
    mutable free : clock list;
    mutable free_n : int;
    mutable spare : int array list;
    mutable spare_n : int;
    mutable hits : int;
    mutable misses : int;
    mutable released : int;
    mutable collapsed : int;
  }

  let create dim =
    if dim < 0 then invalid_arg "Aclock.Pool.create: negative dimension";
    {
      dim;
      free = [];
      free_n = 0;
      spare = [];
      spare_n = 0;
      hits = 0;
      misses = 0;
      released = 0;
      collapsed = 0;
    }

  let dim p = p.dim

  let stash p v =
    if Array.length v = p.dim && p.spare_n < spare_cap then begin
      p.spare <- v :: p.spare;
      p.spare_n <- p.spare_n + 1
    end

  let alloc p =
    match p.free with
    | c :: rest ->
      p.free <- rest;
      p.free_n <- p.free_n - 1;
      p.hits <- p.hits + 1;
      c
    | [] ->
      p.misses <- p.misses + 1;
      let vec =
        match p.spare with
        | v :: rest ->
          p.spare <- rest;
          p.spare_n <- p.spare_n - 1;
          v
        | [] -> [||]
      in
      (* the spare vector is stale under epoch form; [inflate] zero-fills
         it before first use, exactly as after [reset] *)
      { ep = Epoch.bottom; vec; dim = p.dim }

  let release p (c : clock) =
    if c.dim <> p.dim then invalid_arg "Aclock.Pool.release: dimension mismatch";
    c.ep <- Epoch.bottom;
    (* vec stays in the record: a recycled clock re-inflates without
       allocating *)
    p.free <- c :: p.free;
    p.free_n <- p.free_n + 1;
    p.released <- p.released + 1

  let collapse p (c : clock) =
    if c.dim <> p.dim then invalid_arg "Aclock.Pool.collapse: dimension mismatch";
    if Epoch.is_none c.ep then begin
      (* inflated: the value is epoch-shaped iff ≤ 1 nonzero component *)
      let v = c.vec in
      let owner = ref (-1) and shaped = ref true in
      (try
         for t = 0 to c.dim - 1 do
           if Array.unsafe_get v t > 0 then
             if !owner < 0 then owner := t
             else begin
               shaped := false;
               raise Exit
             end
         done
       with Exit -> ());
      !shaped
      && begin
           c.ep <-
             (if !owner < 0 then Epoch.bottom
              else Epoch.make ~tid:!owner ~clock:v.(!owner));
           stash p v;
           c.vec <- [||];
           p.collapsed <- p.collapsed + 1;
           if Obs.on () then Obs.Shared_counter.inc demotions;
           true
         end
    end
    else if Array.length c.vec > 0 then begin
      (* epoch form dragging a stale vector from an earlier inflation:
         hand the array back (no value change, so no demotion counted) *)
      stash p c.vec;
      c.vec <- [||];
      p.collapsed <- p.collapsed + 1;
      true
    end
    else false

  let hits p = p.hits
  let misses p = p.misses
  let released p = p.released
  let collapsed p = p.collapsed
  let in_pool p = p.free_n
end

let pp ppf a =
  Format.fprintf ppf "@[<h>⟨%a⟩@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (to_list a)

let to_string a = Format.asprintf "%a" pp a
