(** Timed checker runs with a wall-clock budget.

    The paper runs each analysis with a 10-hour timeout and reports [TO]
    where it is exceeded; this runner does the same at laptop scale.  Time
    is checked every few thousand events so the overhead on the measured
    loop is negligible.

    {2 Telemetry}

    When telemetry is enabled ({!Obs.enable}) each run opens an ambient
    {!Obs.Scope}: the checker's {!Aerodrome.Cmetrics} registry attaches
    to it and its snapshot is returned in [result.metrics], together
    with runner-level entries —

    - ["violation.seconds"]: elapsed seconds to the first violation;
    - ["ingest.file_bytes"]: size of the trace file (file-based runs);
    - ["ring.capacity"], ["ring.occupancy_hwm"], ["ring.producer_stalls"],
      ["ring.consumer_stalls"]: {!Parallel.Ring} occupancy telemetry
      (pipelined runs only).

    Sharded runs report ["shard.chunks"], ["shard.quiescent_cuts"],
    ["shard.seamed_cuts"], ["shard.tainted_events"],
    ["shard.repaired_events"], ["shard.repair_fraction"],
    ["shard.plan_seconds"], ["shard.merge_seconds"] and per-chunk
    ["shard.chunk<i>.events"] / ["shard.chunk<i>.seconds"] entries.
    Flight-recorded violating runs add ["flight.slice_events"],
    ["flight.replayable"] and ["flight.validated"] (see {!flight}).

    While a metrics exporter is live ({!Obs.Exporter.serve}), each
    file-based run's scope is exposed with a [file="<path>"] label, so
    concurrent runs scrape as distinct series.

    With telemetry disabled [metrics] is {!Obs.Snapshot.empty} and the
    per-event cost of the plumbing is one branch.  A [heartbeat]
    (ticked from the existing 4096-event timeout checkpoint) emits
    progress lines independently of the metric scope.  When a
    {!Obs.Chrome_trace} collector is active, pipelined runs record
    producer decode spans, consumer feed spans, and an instant marker
    at the first violation.

    {2 State reclamation}

    Every run function takes [?reclaim] (default [true]), selecting the
    checkers' state-lifetime policy ({!Aerodrome.Reclaim}): when a
    last-use oracle is available — computed from a materialized trace,
    read from a version-2 binary footer, or built by the text parser's
    interning pass — each variable's clock state is released back to the
    pool at its final access, making peak memory proportional to live
    variables; a stream with no oracle falls back to the inactivity
    heuristic (periodic epoch-collapse of cold state).  Verdicts and
    violation indices are identical either way.  With telemetry on, runs
    additionally report ["heap.peak_words"], the major-heap high-water
    mark sampled at the 4096-event checkpoints. *)

type outcome =
  | Verdict of Aerodrome.Violation.t option
      (** the whole trace was processed (or the checker froze at its first
          violation) *)
  | Timed_out

type result = {
  checker : string;  (** the checker's [name] *)
  outcome : outcome;
  seconds : float;  (** wall-clock analysis time (trace generation and
                        I/O excluded) *)
  events_fed : int;
      (** events the checker actually processed — with a prefilter this is
          the {e reduced} count, as are violation indices *)
  metrics : Obs.Snapshot.t;
      (** per-run metric snapshot; empty when telemetry is disabled *)
}

type prefilter =
  | Off  (** feed the checker every event (the default) *)
  | Exact
      (** {!Traces.Prefilter.Exact}: whole-trace accessor statistics — from
          the materialized trace, a v3 binary footer, the text parser's
          interning pass, or (binary v1/v2) a dedicated pre-scan; a bare
          event sequence with no [stats] falls back to the online mode *)
  | Online
      (** {!Traces.Prefilter.Online}: single-pass adaptive buffering.  Only
          ever used on explicit request — its buffering overhead outweighs
          the reduction on checker-rate workloads (measured at 0.74x the
          unfiltered throughput, BENCH_2026-08-05) *)
  | Auto
      (** exact when the statistics come for free (materialized trace, v3
          binary footer, text interning pass), {e off} otherwise (binary
          v1/v2 files, bare sequences) — never online *)
(** Sound trace reduction between ingestion and the checker
    ({!Traces.Prefilter}): drops thread-local, read-only, redundant and
    lock-local events.  Verdicts are preserved; violation indices refer
    to the reduced stream.  Composes with [reclaim]: the last-use oracle
    can only fire late on a filtered stream, never early (and {!run}
    recomputes it on the filtered trace).  With telemetry on, the
    per-rule elision counters land in [metrics] as [prefilter.*].

    {2 Violation flight recording}

    Every run function takes [?flight].  When set, a bounded per-thread
    ring of packed words ({!Traces.Flight}) rides along the checker —
    one pack plus one ring store per event, frozen at the first
    violation — and a violating run emits a witness bundle into
    [flight_dir] ({!Witness.emit}): a JSON diagnosis
    ([<source>.witness.json]) and, whenever the rings still cover a
    globally quiescent cut, a replayable binfmt slice
    ([<source>.slice.bin]) that [rapid check] reproduces the violation
    on.  The bundle is validated in-process before the run returns (the
    slice is re-checked from its on-disk bytes) and the outcome lands
    in [metrics] as [flight.*].  Recording needs the packed codec, so
    id domains beyond {!Traces.Packed.fits} run without a recorder; a
    bundle that cannot be written degrades to a warning on stderr.
    Sharded runs record per chunk (each recorder seeded with its
    boundary's open-transaction depths) and emit from the chunk owning
    the reconciled violation.

    {2 Sharded checking}

    Every file-level run function (and {!run}) takes [?shards] (default
    [1]; [0] means {e auto} — a chunk count derived from the trace
    length and [Domain.recommended_domain_count], resolving to [1] for
    traces too small to amortize the planner).  With more than one
    shard the (filtered) event stream is materialized into a packed
    arena, partitioned into contiguous chunks at boundary-summary cuts
    — arbitrary positions annotated with each thread's open-transaction
    depth, snapped to a nearby globally quiescent position when one
    exists — and the chunks are checked concurrently on a domain pool,
    each from a checker seeded with its boundary summary.  Chunk
    verdicts are reconciled left-to-right with {e window repair}: only
    the events between a non-quiescent cut and the retirement of the
    transactions it straddles (and of those open at their close) are
    re-fed against the true frontier, instead of replaying
    whole chunks ({!Parallel.Shard}, {!Aerodrome.Merge}, DESIGN.md
    §17).  Verdicts, violation indices and [events_fed] are
    {e byte-identical} to the sequential path; a cut through open
    transactions costs a repair window, never a divergent answer.

    Sharding silently falls back to the sequential path whenever the
    exactness argument does not apply: non-default checkers
    ([--algo slow]/[faithful]), runs with a [timeout], id domains beyond
    {!Traces.Packed.fits}, and boxed ([~packed:false]) or [Online]-
    filtered streams.  [?shard_pool] lends an existing domain pool to
    the chunk fan-out (one is created per run otherwise).

    {2 Work-stealing execution}

    Every function that takes [?shards] also takes [?sched], a
    {!Parallel.Deque} work-stealing scheduler.  With one lent, a
    shardable run executes in {e stealing} mode
    ({!Parallel.Shard.check_stealing}): the arena is cut into
    fine-grained micro-chunks (oversubscribed ~8x per scheduler
    domain when [shards = 0]; an explicit [shards] forces that exact
    plan), the chunks run as scheduler tasks in whatever order the
    deques and steals produce, and each chunk performs the seam
    repairs it owns as soon as it retires — reports stay
    byte-identical to the sequential path (DESIGN.md §18).  The same
    fallbacks apply, and auto stealing keeps the static path's
    small-trace gate.  [shard_pool] is ignored in stealing mode.
    Sharded runs in either mode report ["shard.*"] entries alike;
    scheduler-level telemetry (steals, injections, per-domain busy
    seconds) lives on the scheduler ({!Parallel.Deque.stats}) because
    its counters span every run sharing the pool. *)

type flight = {
  flight_dir : string;  (** directory the witness bundles are written to *)
  flight_window : int;  (** per-thread ring capacity, in events *)
}
(** Violation flight-recorder configuration (see {e Violation flight
    recording} above).  {!Traces.Flight.default_window} is the
    conventional window. *)

val resolve_shards : shards:int -> events:int -> int
(** The chunk count a run with [?shards] uses on a trace of [events]
    events: [shards] itself when explicit (non-zero), otherwise the
    auto choice — one chunk per ~64k events, capped at
    [Domain.recommended_domain_count], and [1] for traces too small to
    amortize the planner.  Exposed so callers (the CLI) can size a
    lent shard pool to match. *)

val steal_worthwhile : shards:int -> events:int -> bool
(** Whether a run with [?shards] on a trace of [events] events would
    use a lent work-stealing scheduler: an explicit chunk count always
    does, auto micro-chunking keeps the static path's small-trace gate
    (below it the planner costs more than the parallelism returns).
    Core-count independent, unlike {!resolve_shards}: the caller's
    scheduler fixes the domain budget.  Exposed so the CLI can decide
    whether creating a scheduler for a lone trace is worthwhile. *)

val run :
  ?timeout:float -> ?heartbeat:Obs.Heartbeat.t -> ?reclaim:bool ->
  ?prefilter:prefilter -> ?shards:int -> ?shard_pool:Parallel.Pool.t ->
  ?sched:Parallel.Deque.t -> ?flight:flight -> Aerodrome.Checker.t ->
  Traces.Trace.t -> result
(** [timeout] in seconds; default: none.  [heartbeat] is restarted, given
    the trace length as total, and ticked as the run progresses.  With
    [reclaim] (the default) the last-use oracle is computed from the
    trace before the timer starts; filtering likewise runs pre-timer,
    and the oracle is computed on the already-filtered trace. *)

val run_seq :
  ?timeout:float -> ?heartbeat:Obs.Heartbeat.t -> ?total:int ->
  ?reclaim:bool -> ?last_use:Traces.Lifetime.t -> ?prefilter:prefilter ->
  ?stats:Traces.Varstats.t -> ?flight:flight -> ?source:string ->
  Aerodrome.Checker.t ->
  threads:int -> locks:int -> vars:int -> Traces.Event.t Seq.t -> result
(** Streaming variant: analyze an event sequence without materializing it
    (e.g. {!Traces.Binfmt.read_seq} of a file larger than memory).  The
    sequence is consumed up to the violation or the timeout.  [total]
    (when the caller knows the event count upfront) only feeds the
    heartbeat's ETA.  [last_use] is the reclamation oracle if the caller
    has one; without it a reclaiming run uses the inactivity heuristic.
    [stats] likewise supplies the exact-mode prefilter oracle; an [Exact]
    or [Auto] prefilter without it runs in online mode.  [source]
    (default ["stream"]) names the input in witness bundles and labels
    the live-exposure scope when it is a file path. *)

val run_binary_file :
  ?timeout:float -> ?heartbeat:Obs.Heartbeat.t -> ?reclaim:bool ->
  ?prefilter:prefilter -> ?flight:flight -> Aerodrome.Checker.t -> string ->
  result
(** [run_seq] over a binary trace file, domains and total event count
    from its header; a version-2/3 footer supplies the reclamation
    oracle, a version-3 footer also the prefilter statistics ([Exact] on
    an older file falls back to a pre-scan, [Auto] to the online mode).
    @raise Traces.Binfmt.Corrupt *)

val run_stream :
  ?timeout:float -> ?heartbeat:Obs.Heartbeat.t -> ?pipelined:bool ->
  ?reclaim:bool -> ?prefilter:prefilter -> ?packed:bool -> ?shards:int ->
  ?shard_pool:Parallel.Pool.t -> ?sched:Parallel.Deque.t -> ?flight:flight ->
  Aerodrome.Checker.t -> string -> result
(** Analyze a trace file without materializing it, auto-detecting the
    format: binary files stream in one pass (domains from the header),
    text files via {!Traces.Parser.fold_file} (two passes, since the text
    format only reveals its domains once scanned).  Peak memory is the
    checker's state plus an I/O buffer, independent of the trace length.
    For text traces [seconds] excludes the interning pass.

    Binary inputs default to the {e packed} ingestion path
    ({!Traces.Binfmt.fold_packed}): the file is memory-mapped and each
    record decodes into one {!Traces.Packed} int word fed to the
    checker's [feed_packed] entry, with no per-event heap allocation;
    the exact-mode prefilter also runs over the packed words.  The
    boxed decoder remains the reference implementation and is used with
    [~packed:false], for id domains beyond {!Traces.Packed.fits}, and
    for an explicit [Online] prefilter (whose buffering is boxed).
    Verdicts, violation indices and [events_fed] are identical on
    either path.

    With [~pipelined:true] ingestion (read + decode + intern) runs on a
    dedicated producer domain and feeds the checker through a bounded
    ring of event batches, overlapping I/O with vector-clock work; the
    checker consumes the identical event sequence, so the verdict,
    violation index and [events_fed] match the sequential path exactly
    ([seconds] measures the consumer's wall clock from checker creation
    to verdict, so it includes any stall waiting for the producer).

    [shards > 1] selects the sharded path where applicable (see
    {e Sharded checking} above); it takes precedence over [pipelined],
    whose producer would have nothing to overlap with.
    @raise Traces.Binfmt.Corrupt on a corrupt binary trace,
    [Traces.Parser.Parse_error] on a malformed text trace. *)

type file_report = {
  file : string;
  report : (result, string) Stdlib.result;
      (** [Error msg] when the file could not be analyzed (unreadable,
          corrupt binary, malformed text); [msg] is the rendered
          diagnostic. *)
}

val run_file :
  ?timeout:float -> ?heartbeat:Obs.Heartbeat.t -> ?pipelined:bool ->
  ?reclaim:bool -> ?prefilter:prefilter -> ?packed:bool -> ?shards:int ->
  ?shard_pool:Parallel.Pool.t -> ?sched:Parallel.Deque.t -> ?flight:flight ->
  Aerodrome.Checker.t -> string -> (result, string) Stdlib.result
(** {!run_stream} with per-file error capture instead of exceptions:
    [Sys_error], {!Traces.Binfmt.Corrupt} and
    {!Traces.Parser.Parse_error} become [Error msg]. *)

val run_many :
  ?timeout:float -> ?heartbeat:Obs.Heartbeat.t -> ?pipelined:bool ->
  ?reclaim:bool -> ?prefilter:prefilter -> ?packed:bool -> ?jobs:int ->
  ?shards:int -> ?shard_pool:Parallel.Pool.t -> ?sched:Parallel.Deque.t ->
  ?flight:flight -> ?on_pool:(float array -> unit) -> Aerodrome.Checker.t ->
  string list -> file_report list
(** Check many trace files, one {!file_report} per input path {e in input
    order}.  A failing file yields its [Error] report and the remaining
    files are still checked.

    With [?sched] (the unified work-stealing mode) the scheduler owns
    the whole machine-wide domain budget across {e both} axes of
    parallelism: every file is submitted as one scheduler task, each
    file's chunks are further tasks on the same deques, and a file
    task awaiting its chunks {e helps} instead of idling — so
    [jobs] × [shards] no longer multiply and there is no idle-domain
    gap at file boundaries.  [jobs] and [shard_pool] are ignored in
    this mode (the caller sizes the scheduler); result ordering is
    still deterministic input order, and with a single path the run
    stays on the calling domain (keeping the heartbeat) while its
    chunks fan out.

    Without a scheduler, with [jobs > 1] the files fan out across a
    fixed pool of [jobs] domains ({!Parallel.Pool}); result ordering is
    deterministic and identical to [jobs = 1], and each file's checker
    runs single-threaded on one domain (the exact sequential checker —
    verdicts cannot differ).  [jobs <= 1] runs sequentially in the
    calling domain with no pool.

    [jobs] budgets domains across {e both} axes of parallelism: with
    [shards > 1] at most [max 1 (jobs / shards)] files run concurrently,
    each fanning its chunks out over its own shard pool, so the total
    domain count stays within the budget rather than multiplying.  Auto
    sharding ([shards = 0]) resolves per file, so the budget divides by
    the machine-wide cap ([Domain.recommended_domain_count]) instead.
    [shard_pool] is forwarded to the per-file runs only while they stay
    on the calling domain ({!Parallel.Pool.map} is single-consumer);
    once files fan out it is ignored and chunk pools are per-file.

    [heartbeat] is forwarded to each file's run, except when files fan
    out (concurrent workers would interleave its lines).
    [on_pool] receives {!Parallel.Pool.busy_seconds} — seconds each
    worker spent checking, by worker index — after the pool is joined
    (in unified mode, the scheduler's per-worker busy seconds, which
    also cover chunk tasks); it is not called on the sequential path. *)

val pp_file_report : Format.formatter -> file_report -> unit
(** ["path: <report>"] or ["path: error: <msg>"]. *)

val violating : result -> bool
(** True iff the run finished with a violation. *)

val speedup : baseline:result -> result -> float option
(** [speedup ~baseline r] is [baseline.seconds /. r.seconds].  [None] when
    {e both} runs timed out (no meaningful ratio); if only the baseline
    timed out, its budget is used as a lower bound, matching the paper's
    "> n" entries. *)

val pp : Format.formatter -> result -> unit
