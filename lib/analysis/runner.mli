(** Timed checker runs with a wall-clock budget.

    The paper runs each analysis with a 10-hour timeout and reports [TO]
    where it is exceeded; this runner does the same at laptop scale.  Time
    is checked every few thousand events so the overhead on the measured
    loop is negligible. *)

type outcome =
  | Verdict of Aerodrome.Violation.t option
      (** the whole trace was processed (or the checker froze at its first
          violation) *)
  | Timed_out

type result = {
  checker : string;  (** the checker's [name] *)
  outcome : outcome;
  seconds : float;  (** wall-clock analysis time (trace generation and
                        I/O excluded) *)
  events_fed : int;
}

val run : ?timeout:float -> Aerodrome.Checker.t -> Traces.Trace.t -> result
(** [timeout] in seconds; default: none. *)

val run_seq :
  ?timeout:float -> Aerodrome.Checker.t -> threads:int -> locks:int ->
  vars:int -> Traces.Event.t Seq.t -> result
(** Streaming variant: analyze an event sequence without materializing it
    (e.g. {!Traces.Binfmt.read_seq} of a file larger than memory).  The
    sequence is consumed up to the violation or the timeout. *)

val run_binary_file :
  ?timeout:float -> Aerodrome.Checker.t -> string -> result
(** [run_seq] over a binary trace file, domains from its header.
    @raise Traces.Binfmt.Corrupt *)

val run_stream : ?timeout:float -> Aerodrome.Checker.t -> string -> result
(** Analyze a trace file without materializing it, auto-detecting the
    format: binary files stream in one pass (domains from the header),
    text files via {!Traces.Parser.fold_file} (two passes, since the text
    format only reveals its domains once scanned).  Peak memory is the
    checker's state plus an I/O buffer, independent of the trace length.
    For text traces [seconds] excludes the interning pass.
    @raise Traces.Binfmt.Corrupt on a corrupt binary trace,
    [Traces.Parser.Parse_error] on a malformed text trace. *)

val violating : result -> bool
(** True iff the run finished with a violation. *)

val speedup : baseline:result -> result -> float option
(** [speedup ~baseline r] is [baseline.seconds /. r.seconds].  [None] when
    {e both} runs timed out (no meaningful ratio); if only the baseline
    timed out, its budget is used as a lower bound, matching the paper's
    "> n" entries. *)

val pp : Format.formatter -> result -> unit
