open Traces

type outcome = Verdict of Aerodrome.Violation.t option | Timed_out

type result = {
  checker : string;
  outcome : outcome;
  seconds : float;
  events_fed : int;
}

let check_interval = 4096

let run ?timeout (module C : Aerodrome.Checker.S) tr =
  let st =
    C.create ~threads:(Trace.threads tr) ~locks:(Trace.locks tr)
      ~vars:(Trace.vars tr)
  in
  let n = Trace.length tr in
  let deadline =
    Option.map (fun budget -> Unix.gettimeofday () +. budget) timeout
  in
  let started = Unix.gettimeofday () in
  let timed_out = ref false in
  let i = ref 0 in
  (try
     while !i < n do
       ignore (C.feed st (Trace.get tr !i));
       incr i;
       if !i land (check_interval - 1) = 0 then
         match deadline with
         | Some d when Unix.gettimeofday () > d ->
           timed_out := true;
           raise Exit
         | _ -> ()
     done
   with Exit -> ());
  let seconds = Unix.gettimeofday () -. started in
  {
    checker = C.name;
    outcome = (if !timed_out then Timed_out else Verdict (C.violation st));
    seconds;
    events_fed = !i;
  }

let run_seq ?timeout (module C : Aerodrome.Checker.S) ~threads ~locks ~vars
    events =
  let st = C.create ~threads ~locks ~vars in
  let deadline =
    Option.map (fun budget -> Unix.gettimeofday () +. budget) timeout
  in
  let started = Unix.gettimeofday () in
  let timed_out = ref false in
  let fed = ref 0 in
  let rec go events =
    match Seq.uncons events with
    | None -> ()
    | Some (e, rest) -> (
      ignore (C.feed st e);
      incr fed;
      if !fed land (check_interval - 1) = 0 then
        match deadline with
        | Some d when Unix.gettimeofday () > d -> timed_out := true
        | _ -> go rest
      else go rest)
  in
  go events;
  {
    checker = C.name;
    outcome = (if !timed_out then Timed_out else Verdict (C.violation st));
    seconds = Unix.gettimeofday () -. started;
    events_fed = !fed;
  }

let run_binary_file ?timeout checker path =
  let header, (events, close) = Traces.Binfmt.read_seq path in
  Fun.protect ~finally:close (fun () ->
      run_seq ?timeout checker ~threads:header.Traces.Binfmt.threads
        ~locks:header.Traces.Binfmt.locks ~vars:header.Traces.Binfmt.vars
        events)

let run_stream_seq ?timeout (module C : Aerodrome.Checker.S) path =
  if Traces.Binfmt.is_binary path then
    run_binary_file ?timeout (module C) path
  else begin
    (* text: Parser.fold_file announces the domains (pass 1) before any
       event reaches the checker (pass 2), so no Trace.t is built *)
    let st = ref None in
    let started = ref 0.0 in
    let deadline = ref None in
    let timed_out = ref false in
    let fed = ref 0 in
    (try
       ignore
         (Traces.Parser.fold_file_exn path
            ~init:(fun ~threads ~locks ~vars ->
              let s = C.create ~threads ~locks ~vars in
              st := Some s;
              started := Unix.gettimeofday ();
              deadline := Option.map (fun b -> !started +. b) timeout;
              s)
            ~f:(fun s e ->
              ignore (C.feed s e);
              incr fed;
              (if !fed land (check_interval - 1) = 0 then
                 match !deadline with
                 | Some d when Unix.gettimeofday () > d ->
                   timed_out := true;
                   raise Exit
                 | _ -> ());
              s))
     with Exit -> ());
    match !st with
    | None -> assert false (* [init] runs before the first event *)
    | Some s ->
      {
        checker = C.name;
        outcome =
          (if !timed_out then Timed_out else Verdict (C.violation s));
        seconds = Unix.gettimeofday () -. !started;
        events_fed = !fed;
      }
  end

(* --- pipelined ingestion ---

   A producer domain reads, decodes and interns the trace file and pushes
   event batches through a bounded SPSC ring; the calling domain pops
   batches and feeds the checker, so I/O + decode overlap vector-clock
   work.  The checker sees exactly the event sequence the sequential path
   sees, in order, so verdicts and violation indices are identical. *)

type stream_msg =
  | Domains of { threads : int; locks : int; vars : int }
  | Batch of Traces.Event.t array

let batch_size = 8192
let ring_capacity = 8

exception Stop_producing

let produce_file path ~push =
  let push_or_stop m = if not (push m) then raise Stop_producing in
  let scratch = Array.make batch_size (Traces.Event.begin_ 0) in
  let fill = ref 0 in
  let flush () =
    if !fill > 0 then begin
      push_or_stop (Batch (Array.sub scratch 0 !fill));
      fill := 0
    end
  in
  let feed () e =
    scratch.(!fill) <- e;
    incr fill;
    if !fill = batch_size then flush ()
  in
  try
    (if Traces.Binfmt.is_binary path then begin
       let h = Traces.Binfmt.read_header path in
       push_or_stop
         (Domains
            {
              threads = h.Traces.Binfmt.threads;
              locks = h.Traces.Binfmt.locks;
              vars = h.Traces.Binfmt.vars;
            });
       ignore (Traces.Binfmt.fold path ~init:() ~f:feed)
     end
     else
       Traces.Parser.fold_file_exn path
         ~init:(fun ~threads ~locks ~vars ->
           push_or_stop (Domains { threads; locks; vars }))
         ~f:feed);
    flush ()
  with Stop_producing -> ()

let run_stream_pipelined ?timeout (module C : Aerodrome.Checker.S) path =
  Parallel.Pipeline.run ~capacity:ring_capacity
    ~produce:(fun ~push -> produce_file path ~push)
    ~consume:(fun ~pop ->
      match pop () with
      | None ->
        (* the producer failed before announcing the domains (bad header,
           malformed text, unreadable file); Pipeline.run re-raises its
           exception and this placeholder is discarded *)
        {
          checker = C.name;
          outcome = Verdict None;
          seconds = 0.;
          events_fed = 0;
        }
      | Some (Batch _) -> assert false (* producer announces domains first *)
      | Some (Domains { threads; locks; vars }) ->
        let st = C.create ~threads ~locks ~vars in
        let started = Unix.gettimeofday () in
        let deadline = Option.map (fun b -> started +. b) timeout in
        let timed_out = ref false in
        let fed = ref 0 in
        (try
           let rec loop () =
             match pop () with
             | None -> ()
             | Some (Domains _) -> assert false
             | Some (Batch events) ->
               Array.iter
                 (fun e ->
                   ignore (C.feed st e);
                   incr fed;
                   if !fed land (check_interval - 1) = 0 then
                     match deadline with
                     | Some d when Unix.gettimeofday () > d ->
                       timed_out := true;
                       raise Exit
                     | _ -> ())
                 events;
               loop ()
           in
           loop ()
         with Exit -> ());
        {
          checker = C.name;
          outcome = (if !timed_out then Timed_out else Verdict (C.violation st));
          seconds = Unix.gettimeofday () -. started;
          events_fed = !fed;
        })
    ()

let run_stream ?timeout ?(pipelined = false) checker path =
  if pipelined then run_stream_pipelined ?timeout checker path
  else run_stream_seq ?timeout checker path

(* --- multi-file fan-out --- *)

type file_report = {
  file : string;
  report : (result, string) Stdlib.result;
}

let run_file ?timeout ?(pipelined = false) checker path =
  match run_stream ?timeout ~pipelined checker path with
  | r -> Ok r
  | exception Traces.Binfmt.Corrupt msg -> Error msg
  | exception Traces.Parser.Parse_error e ->
    Error (Format.asprintf "%s: %a" path Traces.Parser.pp_error e)
  | exception Sys_error msg -> Error msg

let run_many ?timeout ?(pipelined = false) ?(jobs = 1) checker paths =
  Parallel.Pool.run ~jobs
    (fun path -> { file = path; report = run_file ?timeout ~pipelined checker path })
    paths

let violating r =
  match r.outcome with Verdict (Some _) -> true | Verdict None | Timed_out -> false

let speedup ~baseline r =
  match (baseline.outcome, r.outcome) with
  | Timed_out, Timed_out -> None
  | _ -> Some (baseline.seconds /. r.seconds)

let pp ppf r =
  let outcome =
    match r.outcome with
    | Timed_out -> "timeout"
    | Verdict None -> "serializable"
    | Verdict (Some v) ->
      Printf.sprintf "violation @%d" (v.Aerodrome.Violation.index + 1)
  in
  Format.fprintf ppf "%s: %s in %.3fs (%d events)" r.checker outcome r.seconds
    r.events_fed

let pp_file_report ppf fr =
  match fr.report with
  | Ok r -> Format.fprintf ppf "%s: %a" fr.file pp r
  | Error msg -> Format.fprintf ppf "%s: error: %s" fr.file msg
