open Traces

type outcome = Verdict of Aerodrome.Violation.t option | Timed_out

type result = {
  checker : string;
  outcome : outcome;
  seconds : float;
  events_fed : int;
  metrics : Obs.Snapshot.t;
}

type prefilter = Off | Exact | Online | Auto

type flight = {
  flight_dir : string;
  flight_window : int;
}

let check_interval = 4096

(* --- telemetry plumbing ---

   Each run executes under an ambient {!Obs.Scope} when telemetry is
   enabled: the checker constructor attaches its {!Aerodrome.Cmetrics}
   registry to the scope, and the harvested snapshot lands in
   [result.metrics] without the checker signature changing.  The inner
   run functions put any runner-level entries (ingest sizes, ring
   telemetry, time-to-first-violation) in [metrics] themselves; the
   scope snapshot is prepended.  With telemetry off the scope machinery
   is skipped entirely and [metrics] is whatever the inner function
   produced (normally {!Obs.Snapshot.empty}). *)

(* [?file] labels the scope for live exposure: while a metrics exporter
   is serving, every registry attached during this run is published with
   a [file="<path>"] label, so concurrent multi-file runs scrape as
   distinct series. *)
let collected ?file f =
  if Obs.on () then
    let labels = match file with Some p -> [ ("file", p) ] | None -> [] in
    let r, snap = Obs.Scope.collect ~labels f in
    { r with metrics = snap @ r.metrics }
  else f ()

let arm_heartbeat heartbeat ~total =
  match heartbeat with
  | None -> ()
  | Some hb ->
    Obs.Heartbeat.restart hb;
    Option.iter (Obs.Heartbeat.set_total hb) total

let tick heartbeat n =
  match heartbeat with None -> () | Some hb -> Obs.Heartbeat.tick hb n

(* First time the checker reports a violation, stamp the elapsed seconds
   and drop an instant marker on the trace timeline.  The checkers
   freeze at their first violation (feed keeps returning it), so the
   negative sentinel makes this fire once. *)
let note_violation viol_at ~started =
  if !viol_at < 0.0 then begin
    viol_at := Unix.gettimeofday () -. started;
    Obs.Chrome_trace.instant ~cat:"checker" "violation"
  end

let runner_entries ?file_bytes viol_at =
  let entries =
    if !viol_at >= 0.0 then
      [ Obs.Snapshot.entry "violation.seconds" (Obs.Snapshot.Float !viol_at) ]
    else []
  in
  match file_bytes with
  | Some b when Obs.on () ->
    Obs.Snapshot.entry "ingest.file_bytes" (Obs.Snapshot.Int b) :: entries
  | _ -> entries

let file_size path =
  match Unix.stat path with
  | { Unix.st_size; _ } -> Some st_size
  | exception Unix.Unix_error _ -> None

(* --- violation flight recording ---

   With [?flight] a bounded per-thread ring of packed words rides along
   the checker ({!Traces.Flight}): every event is noted (one arithmetic
   pack plus a ring store) until the first violation freezes the
   recorder, and a violating run then emits a witness bundle — JSON
   diagnosis plus a replayable binfmt slice — via {!Witness.emit}.
   Recording needs the packed word codec, so id domains beyond
   {!Traces.Packed.fits} run without a recorder (the witness would not
   be re-encodable anyway).  The noted index is the fed-stream position
   — the same coordinate space as [Violation.index], filtered or not. *)

let flight_recorder flight ~threads ~locks ~vars =
  match flight with
  | Some f when Packed.fits ~threads ~locks ~vars ->
    Some (Flight.create ~window:f.flight_window ~threads ())
  | _ -> None

let flight_entries (info : Witness.info) =
  if not (Obs.on ()) then []
  else
    Obs.Snapshot.
      [
        entry "flight.slice_events" (Int info.Witness.slice_events);
        entry "flight.replayable" (Int (if info.Witness.replayable then 1 else 0));
        entry "flight.validated" (Int (if info.Witness.validated then 1 else 0));
      ]

(* Emit the bundle for a finished run.  A bundle that cannot be written
   (unwritable directory, full disk) degrades to a warning: the check
   verdict is the product, the witness is diagnostics. *)
let flight_finish flight fl checker ~source ~threads ~locks ~vars ?base outcome
    =
  match (flight, fl, outcome) with
  | Some fopt, Some f, Verdict (Some v) -> (
    match
      Witness.emit ~dir:fopt.flight_dir ~source ~checker ~threads ~locks ~vars
        ~flight:f ?base ~violation:v ()
    with
    | Ok info -> flight_entries info
    | Error msg ->
      Printf.eprintf "rapid: flight-record: %s\n%!" msg;
      [])
  | _ -> []

(* Sharded runs record per chunk; the bundle comes from the chunk that
   owns the reconciled violation, rebased by its arena position. *)
let flight_finish_sharded flight checker ~source ~threads ~locks ~vars
    (o : Parallel.Shard.outcome) =
  match (flight, o.Parallel.Shard.violation) with
  | Some fopt, Some v -> (
    let idx = v.Aerodrome.Violation.index in
    let owner =
      Array.to_list o.Parallel.Shard.tasks
      |> List.find_opt (fun (t : Parallel.Shard.task) ->
             t.Parallel.Shard.base <= idx && idx < t.Parallel.Shard.stop)
    in
    match owner with
    | Some ({ Parallel.Shard.flight = Some f; _ } as t) -> (
      match
        Witness.emit ~dir:fopt.flight_dir ~source ~checker ~threads ~locks
          ~vars ~flight:f ~base:t.Parallel.Shard.base ~violation:v ()
      with
      | Ok info -> flight_entries info
      | Error msg ->
        Printf.eprintf "rapid: flight-record: %s\n%!" msg;
        [])
    | _ -> [])
  | _ -> []

(* --- state reclamation ---

   [reclaim] selects the checkers' state-lifetime policy (installed
   ambiently around checker creation, see {!Aerodrome.Reclaim}): with a
   last-use oracle — computed from the materialized trace, read from a
   v2 binary footer, or built by the text parser's interning pass —
   variables are released exactly at their final access; without one,
   streaming runs fall back to the inactivity heuristic. *)

let policy ~reclaim oracle =
  if not reclaim then Aerodrome.Reclaim.Off
  else
    match oracle with
    | Some lt -> Aerodrome.Reclaim.Oracle lt
    | None ->
      Aerodrome.Reclaim.Inactivity
        { horizon = Aerodrome.Reclaim.default_horizon }

(* --- trace prefiltering ---

   [prefilter] inserts a {!Traces.Prefilter} between ingestion and the
   checker, dropping events that provably cannot change the verdict.
   [Exact] wants whole-trace accessor statistics ({!Traces.Varstats}) —
   from a materialized trace, a v3 binary footer, the text parser's
   interning pass, or a dedicated pre-scan — and [Auto] applies the
   exact mode when the statistics come for free and otherwise runs
   unfiltered: the online mode's buffering costs more than it saves on
   checker-rate workloads (BENCH_2026-08-05 measured it at 0.74x), so
   it only ever runs on explicit request.

   Composition with [reclaim] is sound as-is: the oracle releases a
   variable when the checker's event index equals the recorded last-use
   index, and dropped events only ever make filtered indices {e smaller}
   than the original ones, so a mid-lifetime access can never collide
   with the original last-use index (equality forces the access to be
   the final one).  Releases may fire late or not at all on a filtered
   stream, never early; [run] sidesteps even that by computing the
   oracle on the already-filtered trace. *)

let prefilter_mode ~prefilter ~stats =
  match (prefilter, stats) with
  | Off, _ -> None
  | (Exact | Auto), Some vs -> Some (Prefilter.Exact vs)
  | Online, _ | Exact, None -> Some Prefilter.Online
  | Auto, None -> None

(* High-water mark of the major heap, sampled at the same 4096-event
   checkpoints as the timeout — the per-run memory axis the bench
   harness compares across reclamation settings.  Registers its own
   scope-attached registry so the gauge lands in [result.metrics]
   alongside the checker's counters. *)
let heap_sampler () =
  if Obs.on () then begin
    let reg = Obs.Registry.create () in
    Obs.Scope.attach reg;
    let g = Obs.Registry.gauge reg "heap.peak_words" in
    let sample () =
      Obs.Gauge.set_max g (float_of_int (Gc.quick_stat ()).Gc.heap_words)
    in
    sample ();
    sample
  end
  else fun () -> ()

(* --- sharded checking ---

   [shards > 1] (or [shards = 0], the auto sentinel) partitions the
   (filtered) packed event stream into contiguous chunk batches at
   boundary-summary cuts and checks the chunks concurrently on a
   domain pool, reconciling the chunk verdicts left-to-right with
   window repair ({!Parallel.Shard}, {!Aerodrome.Merge}).  Reports are
   byte-identical to the sequential path: a chunk checker seeded from
   its cut's boundary summary is contained in the sequential checker
   and exact past the cut's repair window, and reconciliation re-runs
   only the window events against the true frontier (DESIGN.md §17).
   The seed argument is specific to the default Opt configuration, so
   other checkers fall back to the sequential path, as do timed-out
   runs (a per-chunk deadline would make [events_fed] racy) and
   streams that cannot pack.

   Chunk checkers run with reclamation off: per-variable lifetimes are
   chunk-local here, and reclamation is verdict-neutral either way. *)

(* Below roughly two chunks' worth of this, the planner scan and the
   per-chunk checker setup cost more than the parallelism returns, so
   auto resolves to a single shard and the sequential path runs. *)
let min_shard_events = 65536

(* [shards = 0] means auto: pick the chunk count from the trace length
   and the machine, one shard per [min_shard_events] events capped at
   the recommended domain count.  An explicit [shards] is always
   honoured (tests force tiny traces through the sharded path). *)
let resolve_shards ~shards ~events =
  if shards <> 0 then shards
  else if events < 2 * min_shard_events then 1
  else
    min (Domain.recommended_domain_count ()) (max 1 (events / min_shard_events))

let shardable ~shards ~timeout (module C : Aerodrome.Checker.S) =
  (shards = 0 || shards > 1) && timeout = None && C.name = Aerodrome.Opt.name

(* With a scheduler lent ([?sched]) the sharded paths execute on it in
   work-stealing mode ({!Parallel.Shard.check_stealing}): [shards] then
   keeps its sentinel reading — [0] lets the shard layer micro-chunk
   (oversubscribed, scheduler-sized), an explicit count forces that
   exact plan (the differential tests run the {e same} plans as static
   sharding through the stealing executor).  Auto stealing keeps the
   static path's small-trace gate: below it the planner costs more
   than the parallelism returns and the sequential path runs. *)
let steal_worthwhile ~shards ~events =
  shards > 1 || events >= 2 * min_shard_events

let shard_check ?sched ?shard_pool ?flight ~shards ~threads ~locks ~vars arena
    =
  match sched with
  | Some sched ->
    Parallel.Shard.check_stealing ~sched ?flight ~shards ~threads ~locks ~vars
      arena
  | None ->
    Parallel.Shard.check ?pool:shard_pool ?flight ~shards ~threads ~locks
      ~vars arena

let shard_entries ~events (o : Parallel.Shard.outcome) =
  if not (Obs.on ()) then []
  else
    let p = o.Parallel.Shard.plan in
    let repair_fraction =
      if events <= 0 then 0.0
      else float_of_int o.Parallel.Shard.repaired_events /. float_of_int events
    in
    Obs.Snapshot.
      [
        entry "shard.chunks" (Int (Array.length o.Parallel.Shard.tasks));
        entry "shard.quiescent_cuts" (Int p.Aerodrome.Merge.quiescent);
        entry "shard.seamed_cuts" (Int p.Aerodrome.Merge.seamed);
        entry "shard.tainted_events" (Int p.Aerodrome.Merge.tainted_events);
        entry "shard.repaired_events" (Int o.Parallel.Shard.repaired_events);
        entry "shard.repair_fraction" (Float repair_fraction);
        entry "shard.plan_seconds" (Float o.Parallel.Shard.plan_seconds);
        entry "shard.merge_seconds" (Float o.Parallel.Shard.merge_seconds);
      ]
    @ List.concat
        (List.mapi
           (fun i (t : Parallel.Shard.task) ->
             Obs.Snapshot.
               [
                 entry
                   (Printf.sprintf "shard.chunk%d.events" i)
                   (Int (t.Parallel.Shard.stop - t.Parallel.Shard.base));
                 entry
                   (Printf.sprintf "shard.chunk%d.seconds" i)
                   (Float t.Parallel.Shard.seconds);
               ])
           (Array.to_list o.Parallel.Shard.tasks))

(* Wrap a shard outcome as a runner result; the timer is the caller's
   (it covers ingestion into the arena, like the sequential paths'
   decode). *)
let finish_sharded (module C : Aerodrome.Checker.S) ~started ?file_bytes
    ?flight ~source ~threads ~locks ~vars (o : Parallel.Shard.outcome)
    ~events_fed =
  let seconds = Unix.gettimeofday () -. started in
  let viol_at =
    ref (if o.Parallel.Shard.violation <> None then seconds else -1.0)
  in
  let chunk_metrics =
    Obs.Snapshot.merge
      (Array.to_list o.Parallel.Shard.tasks
      |> List.map (fun (t : Parallel.Shard.task) -> t.Parallel.Shard.metrics))
    (* additive merge is right for the event/txn counters but not for
       the violation-index gauge, which is chunk-local: rewrite it to
       the reconciled arena-global index *)
    |> List.map (fun (e : Obs.Snapshot.entry) ->
           if e.Obs.Snapshot.name = "violation.index" then
             {
               e with
               Obs.Snapshot.value =
                 Obs.Snapshot.Int
                   (match o.Parallel.Shard.violation with
                   | Some v -> v.Aerodrome.Violation.index
                   | None -> -1);
             }
           else e)
  in
  let flight_metrics =
    flight_finish_sharded flight
      (module C : Aerodrome.Checker.S)
      ~source ~threads ~locks ~vars o
  in
  {
    checker = C.name;
    outcome = Verdict o.Parallel.Shard.violation;
    seconds;
    events_fed;
    metrics =
      chunk_metrics @ runner_entries ?file_bytes viol_at
      @ shard_entries ~events:events_fed o
      @ flight_metrics;
  }

(* Sharded variant of [run]: filter like the sequential path, pack the
   (filtered) trace into an arena, fan chunk checkers out. *)
let run_trace_sharded ?heartbeat ~prefilter ~shards ?shard_pool ?sched ?flight
    (module C : Aerodrome.Checker.S) tr =
  collected (fun () ->
      let tr =
        match prefilter with
        | Off -> tr
        | Exact | Auto -> fst (Prefilter.run_trace `Exact tr)
        | Online -> fst (Prefilter.run_trace `Online tr)
      in
      let n = Trace.length tr in
      arm_heartbeat heartbeat ~total:(Some n);
      let started = Unix.gettimeofday () in
      let arena = Packed.Arena.create () in
      Trace.iteri (fun _ e -> Packed.Arena.push arena (Packed.of_event e)) tr;
      let o =
        shard_check ?sched ?shard_pool
          ?flight:(Option.map (fun f -> f.flight_window) flight)
          ~shards ~threads:(Trace.threads tr) ~locks:(Trace.locks tr)
          ~vars:(Trace.vars tr) arena
      in
      tick heartbeat n;
      finish_sharded (module C) ~started ?flight ~source:"trace"
        ~threads:(Trace.threads tr) ~locks:(Trace.locks tr)
        ~vars:(Trace.vars tr) o ~events_fed:n)

let run ?timeout ?heartbeat ?(reclaim = true) ?(prefilter = Off) ?(shards = 1)
    ?shard_pool ?sched ?flight (module C : Aerodrome.Checker.S) tr =
  let events = Trace.length tr in
  let stealing =
    sched <> None
    && shardable ~shards ~timeout (module C)
    && steal_worthwhile ~shards ~events
  in
  let shards = if stealing then shards else resolve_shards ~shards ~events in
  if
    (stealing || shardable ~shards ~timeout (module C))
    && Packed.fits ~threads:(Trace.threads tr) ~locks:(Trace.locks tr)
         ~vars:(Trace.vars tr)
  then
    run_trace_sharded ?heartbeat ~prefilter ~shards ?shard_pool
      ?sched:(if stealing then sched else None)
      ?flight
      (module C : Aerodrome.Checker.S)
      tr
  else
  collected (fun () ->
      (* filtering and the oracle pass run before the timer starts, like
         trace I/O; the oracle is computed on the filtered trace so its
         indices match what the checker sees *)
      let tr =
        match prefilter with
        | Off -> tr
        | Exact | Auto -> fst (Prefilter.run_trace `Exact tr)
        | Online -> fst (Prefilter.run_trace `Online tr)
      in
      let oracle = if reclaim then Some (Lifetime.of_trace tr) else None in
      let st =
        Aerodrome.Reclaim.with_policy (policy ~reclaim oracle) (fun () ->
            C.create ~threads:(Trace.threads tr) ~locks:(Trace.locks tr)
              ~vars:(Trace.vars tr))
      in
      let sample_heap = heap_sampler () in
      let fl =
        flight_recorder flight ~threads:(Trace.threads tr)
          ~locks:(Trace.locks tr) ~vars:(Trace.vars tr)
      in
      let n = Trace.length tr in
      arm_heartbeat heartbeat ~total:(Some n);
      let deadline =
        Option.map (fun budget -> Unix.gettimeofday () +. budget) timeout
      in
      let started = Unix.gettimeofday () in
      let timed_out = ref false in
      let viol_at = ref (-1.0) in
      let i = ref 0 in
      (try
         while !i < n do
           let e = Trace.get tr !i in
           (match fl with
           | Some f when !viol_at < 0.0 -> Flight.note f !i (Packed.of_event e)
           | _ -> ());
           (match C.feed st e with
           | Some _ -> note_violation viol_at ~started
           | None -> ());
           incr i;
           if !i land (check_interval - 1) = 0 then begin
             tick heartbeat !i;
             sample_heap ();
             match deadline with
             | Some d when Unix.gettimeofday () > d ->
               timed_out := true;
               raise Exit
             | _ -> ()
           end
         done
       with Exit -> ());
      sample_heap ();
      let seconds = Unix.gettimeofday () -. started in
      let outcome =
        if !timed_out then Timed_out else Verdict (C.violation st)
      in
      {
        checker = C.name;
        outcome;
        seconds;
        events_fed = !i;
        metrics =
          runner_entries viol_at
          @ flight_finish flight fl
              (module C : Aerodrome.Checker.S)
              ~source:"trace" ~threads:(Trace.threads tr)
              ~locks:(Trace.locks tr) ~vars:(Trace.vars tr) outcome;
      })

let run_seq ?timeout ?heartbeat ?total ?(reclaim = true) ?last_use
    ?(prefilter = Off) ?stats ?flight ?(source = "stream")
    (module C : Aerodrome.Checker.S) ~threads ~locks ~vars events =
  collected ?file:(if source = "stream" then None else Some source) (fun () ->
      let events =
        match prefilter_mode ~prefilter ~stats with
        | None -> events
        | Some mode -> Prefilter.filter_seq (Prefilter.create mode) events
      in
      let st =
        Aerodrome.Reclaim.with_policy (policy ~reclaim last_use) (fun () ->
            C.create ~threads ~locks ~vars)
      in
      let sample_heap = heap_sampler () in
      let fl = flight_recorder flight ~threads ~locks ~vars in
      arm_heartbeat heartbeat ~total;
      let deadline =
        Option.map (fun budget -> Unix.gettimeofday () +. budget) timeout
      in
      let started = Unix.gettimeofday () in
      let timed_out = ref false in
      let viol_at = ref (-1.0) in
      let fed = ref 0 in
      let rec go events =
        match Seq.uncons events with
        | None -> ()
        | Some (e, rest) -> (
          (match fl with
          | Some f when !viol_at < 0.0 ->
            Flight.note f !fed (Packed.of_event e)
          | _ -> ());
          (match C.feed st e with
          | Some _ -> note_violation viol_at ~started
          | None -> ());
          incr fed;
          if !fed land (check_interval - 1) = 0 then begin
            tick heartbeat !fed;
            sample_heap ();
            match deadline with
            | Some d when Unix.gettimeofday () > d -> timed_out := true
            | _ -> go rest
          end
          else go rest)
      in
      go events;
      sample_heap ();
      let outcome =
        if !timed_out then Timed_out else Verdict (C.violation st)
      in
      {
        checker = C.name;
        outcome;
        seconds = Unix.gettimeofday () -. started;
        events_fed = !fed;
        metrics =
          runner_entries viol_at
          @ flight_finish flight fl
              (module C : Aerodrome.Checker.S)
              ~source ~threads ~locks ~vars outcome;
      })

(* Accessor statistics for a binary file: the v3 footer is one seek away;
   an explicit [Exact] request on a v1/v2 file (no statistics footer) is
   honored with a dedicated pre-scan — a full decode pass, so [Auto]
   prefers the online mode there instead. *)
let binary_stats ~prefilter path =
  match prefilter with
  | Off | Online -> None
  | Exact | Auto -> (
    match Traces.Binfmt.read_stats path with
    | Some _ as s -> s
    | None when prefilter = Exact ->
      let h = Traces.Binfmt.read_header path in
      let vs =
        Varstats.create ~vars:h.Traces.Binfmt.vars ~locks:h.Traces.Binfmt.locks
      in
      ignore (Traces.Binfmt.fold path ~init:() ~f:(fun () e -> Varstats.note vs e));
      Some vs
    | None -> None)

let run_binary_file ?timeout ?heartbeat ?(reclaim = true) ?(prefilter = Off)
    ?flight checker path =
  (* v2 files carry the oracle in their footer, one seek away; a corrupt
     footer raises here, before any event is fed *)
  let last_use = if reclaim then Traces.Binfmt.read_last_use path else None in
  let stats = binary_stats ~prefilter path in
  let header, (events, close) = Traces.Binfmt.read_seq path in
  Fun.protect ~finally:close (fun () ->
      let r =
        run_seq ?timeout ?heartbeat ~total:header.Traces.Binfmt.events ~reclaim
          ?last_use ~prefilter ?stats ?flight ~source:path checker
          ~threads:header.Traces.Binfmt.threads
          ~locks:header.Traces.Binfmt.locks ~vars:header.Traces.Binfmt.vars
          events
      in
      {
        r with
        metrics = r.metrics @ runner_entries ?file_bytes:(file_size path) (ref (-1.0));
      })

(* --- packed ingestion ---

   The default path for binary inputs: {!Traces.Binfmt.fold_packed}
   mmaps the file and decodes each record into one packed int word
   ({!Traces.Packed}), fed to the checker's [feed_packed] entry — no
   per-event heap allocation between the file and the vector-clock
   work.  The exact-mode prefilter runs on the packed words too, so
   elided events are never materialized.  The boxed [run_binary_file]
   remains the reference implementation: verdicts, violation indices
   and [events_fed] are differential-tested identical. *)

let packable ~prefilter (h : Traces.Binfmt.header) =
  Traces.Packed.fits ~threads:h.Traces.Binfmt.threads
    ~locks:h.Traces.Binfmt.locks ~vars:h.Traces.Binfmt.vars
  (* online buffering is inherently boxed; honor an explicit request on
     the boxed path rather than unpack/repack every event *)
  && prefilter <> Online

let run_packed_file ?timeout ?heartbeat ~reclaim ~prefilter ?flight
    (module C : Aerodrome.Checker.S) path (header : Traces.Binfmt.header) =
  collected ~file:path (fun () ->
      let last_use =
        if reclaim then Traces.Binfmt.read_last_use path else None
      in
      let stats = binary_stats ~prefilter path in
      let st =
        Aerodrome.Reclaim.with_policy (policy ~reclaim last_use) (fun () ->
            C.create ~threads:header.Traces.Binfmt.threads
              ~locks:header.Traces.Binfmt.locks
              ~vars:header.Traces.Binfmt.vars)
      in
      let pf = Option.map Prefilter.create (prefilter_mode ~prefilter ~stats) in
      let sample_heap = heap_sampler () in
      let fl =
        flight_recorder flight ~threads:header.Traces.Binfmt.threads
          ~locks:header.Traces.Binfmt.locks ~vars:header.Traces.Binfmt.vars
      in
      arm_heartbeat heartbeat ~total:(Some header.Traces.Binfmt.events);
      let started = Unix.gettimeofday () in
      let deadline = Option.map (fun b -> started +. b) timeout in
      let timed_out = ref false in
      let viol_at = ref (-1.0) in
      let fed = ref 0 in
      let feed_one w =
        (match fl with
        | Some f when !viol_at < 0.0 -> Flight.note f !fed w
        | _ -> ());
        (match C.feed_packed st w with
        | Some _ -> note_violation viol_at ~started
        | None -> ());
        incr fed;
        if !fed land (check_interval - 1) = 0 then begin
          tick heartbeat !fed;
          sample_heap ();
          match deadline with
          | Some d when Unix.gettimeofday () > d ->
            timed_out := true;
            raise Exit
          | _ -> ()
        end
      in
      (try
         ignore
           (Traces.Binfmt.fold_packed path ~init:()
              ~f:
                (match pf with
                | None -> fun () w -> feed_one w
                | Some p -> fun () w -> Prefilter.feed_packed p w feed_one))
       with Exit -> ());
      (match pf with
      | None -> ()
      | Some p -> ( try Prefilter.finish_packed p feed_one with Exit -> ()));
      sample_heap ();
      let outcome =
        if !timed_out then Timed_out else Verdict (C.violation st)
      in
      {
        checker = C.name;
        outcome;
        seconds = Unix.gettimeofday () -. started;
        events_fed = !fed;
        metrics =
          runner_entries ?file_bytes:(file_size path) viol_at
          @ flight_finish flight fl
              (module C : Aerodrome.Checker.S)
              ~source:path ~threads:header.Traces.Binfmt.threads
              ~locks:header.Traces.Binfmt.locks
              ~vars:header.Traces.Binfmt.vars outcome;
      })

(* Sharded counterpart of [run_packed_file]: ingest (and filter) into
   an arena first, then fan chunk checkers out over it.  The timer
   covers the ingestion, mirroring the sequential path's decode. *)
let run_packed_file_sharded ?heartbeat ~prefilter ~shards ?shard_pool ?sched
    ?flight (module C : Aerodrome.Checker.S) path
    (header : Traces.Binfmt.header) =
  collected ~file:path (fun () ->
      let stats = binary_stats ~prefilter path in
      let pf = Option.map Prefilter.create (prefilter_mode ~prefilter ~stats) in
      arm_heartbeat heartbeat ~total:(Some header.Traces.Binfmt.events);
      let started = Unix.gettimeofday () in
      let arena = Packed.Arena.create () in
      let push w = Packed.Arena.push arena w in
      (match pf with
      | None -> ignore (Traces.Binfmt.fold_packed path ~init:() ~f:(fun () w -> push w))
      | Some p ->
        ignore
          (Traces.Binfmt.fold_packed path ~init:() ~f:(fun () w ->
               Prefilter.feed_packed p w push));
        Prefilter.finish_packed p push);
      let o =
        shard_check ?sched ?shard_pool
          ?flight:(Option.map (fun f -> f.flight_window) flight)
          ~shards ~threads:header.Traces.Binfmt.threads
          ~locks:header.Traces.Binfmt.locks ~vars:header.Traces.Binfmt.vars
          arena
      in
      tick heartbeat (Packed.Arena.length arena);
      finish_sharded (module C) ~started ?file_bytes:(file_size path) ?flight
        ~source:path ~threads:header.Traces.Binfmt.threads
        ~locks:header.Traces.Binfmt.locks ~vars:header.Traces.Binfmt.vars o
        ~events_fed:(Packed.Arena.length arena))

let run_stream_seq ?timeout ?heartbeat ?(reclaim = true) ?(prefilter = Off)
    ?(packed = true) ?(shards = 1) ?shard_pool ?sched ?flight
    (module C : Aerodrome.Checker.S) path =
  if Traces.Binfmt.is_binary path then begin
    let header = Traces.Binfmt.read_header path in
    let events = header.Traces.Binfmt.events in
    let stealing =
      sched <> None
      && shardable ~shards ~timeout (module C)
      && steal_worthwhile ~shards ~events
    in
    let shards = if stealing then shards else resolve_shards ~shards ~events in
    if packed && packable ~prefilter header then
      if stealing || shardable ~shards ~timeout (module C) then
        run_packed_file_sharded ?heartbeat ~prefilter ~shards ?shard_pool
          ?sched:(if stealing then sched else None)
          ?flight (module C) path header
      else
        run_packed_file ?timeout ?heartbeat ~reclaim ~prefilter ?flight
          (module C) path header
    else
      run_binary_file ?timeout ?heartbeat ~reclaim ~prefilter ?flight
        (module C) path
  end
  else
    collected ~file:path (fun () ->
        (* text: Parser.fold_file announces the domains (pass 1) before any
           event reaches the checker (pass 2), so no Trace.t is built.
           The interning pass hands over the last-use oracle — and, when
           filtering, the accessor statistics — for free. *)
        let st = ref None in
        let started = ref 0.0 in
        let deadline = ref None in
        let timed_out = ref false in
        let viol_at = ref (-1.0) in
        let fed = ref 0 in
        let oracle = ref None in
        let stats = ref None in
        let pf = ref None in
        let sample_heap = ref (fun () -> ()) in
        let fl = ref None in
        let domains = ref None in
        let feed_one s e =
          (match !fl with
          | Some f when !viol_at < 0.0 ->
            Flight.note f !fed (Packed.of_event e)
          | _ -> ());
          (match C.feed s e with
          | Some _ -> note_violation viol_at ~started:!started
          | None -> ());
          incr fed;
          if !fed land (check_interval - 1) = 0 then begin
            tick heartbeat !fed;
            !sample_heap ();
            match !deadline with
            | Some d when Unix.gettimeofday () > d ->
              timed_out := true;
              raise Exit
            | _ -> ()
          end
        in
        (try
           ignore
             (Traces.Parser.fold_file_exn
                ?last_use:
                  (if reclaim then Some (fun lt -> oracle := Some lt)
                   else None)
                ?stats:
                  (match prefilter with
                  | Off | Online -> None
                  | Exact | Auto -> Some (fun vs -> stats := Some vs))
                path
                ~init:(fun ~threads ~locks ~vars ->
                  let s =
                    Aerodrome.Reclaim.with_policy (policy ~reclaim !oracle)
                      (fun () -> C.create ~threads ~locks ~vars)
                  in
                  st := Some s;
                  domains := Some (threads, locks, vars);
                  fl := flight_recorder flight ~threads ~locks ~vars;
                  (match prefilter_mode ~prefilter ~stats:!stats with
                  | None -> ()
                  | Some mode -> pf := Some (Prefilter.create mode));
                  sample_heap := heap_sampler ();
                  arm_heartbeat heartbeat ~total:None;
                  started := Unix.gettimeofday ();
                  deadline := Option.map (fun b -> !started +. b) timeout;
                  s)
                ~f:(fun s e ->
                  (match !pf with
                  | None -> feed_one s e
                  | Some p -> Prefilter.feed p e (feed_one s));
                  s))
         with Exit -> ());
        (* end of stream: drop/flush whatever the filter still buffers and
           publish its counters ([finish] emits nothing in practice — the
           online mode's pending events are exactly the droppable ones) *)
        (match !pf with
        | None -> ()
        | Some p ->
          let emit e = match !st with Some s -> feed_one s e | None -> () in
          (try Prefilter.finish p emit with Exit -> ()));
        !sample_heap ();
        match !st with
        | None -> assert false (* [init] runs before the first event *)
        | Some s ->
          let outcome =
            if !timed_out then Timed_out else Verdict (C.violation s)
          in
          let flight_metrics =
            match !domains with
            | Some (threads, locks, vars) ->
              flight_finish flight !fl
                (module C : Aerodrome.Checker.S)
                ~source:path ~threads ~locks ~vars outcome
            | None -> []
          in
          {
            checker = C.name;
            outcome;
            seconds = Unix.gettimeofday () -. !started;
            events_fed = !fed;
            metrics =
              runner_entries ?file_bytes:(file_size path) viol_at
              @ flight_metrics;
          })

(* --- pipelined ingestion ---

   A producer domain reads, decodes and interns the trace file and pushes
   event batches through a bounded SPSC ring; the calling domain pops
   batches and feeds the checker, so I/O + decode overlap vector-clock
   work.  The checker sees exactly the event sequence the sequential path
   sees, in order, so verdicts and violation indices are identical. *)

type stream_msg =
  | Domains of {
      threads : int;
      locks : int;
      vars : int;
      events : int option;  (* total, when the format knows it upfront *)
      last_use : Traces.Lifetime.t option;  (* oracle, when available *)
      stats : Varstats.t option;  (* prefilter oracle, when available *)
    }
  | Batch of Traces.Event.t array
  | Packed_batch of Traces.Packed.chunk * int
      (* a filled arena chunk and its length: one batch = one chunk, so
         batch boundaries align with chunk boundaries by construction *)

let batch_size = 8192
let ring_capacity = 8

exception Stop_producing

let produce_file path ~reclaim ~prefilter ~packed ~push =
  let push_or_stop m = if not (push m) then raise Stop_producing in
  let scratch = Array.make batch_size (Traces.Event.begin_ 0) in
  let fill = ref 0 in
  (* Spans cover read + decode + intern of one batch; the (possibly
     blocking) push is excluded so producer stalls show as gaps between
     spans rather than inflating decode time. *)
  let trace_on = Obs.Chrome_trace.active () in
  let batch_t0 = ref (if trace_on then Obs.now_us () else 0.0) in
  let flush () =
    if !fill > 0 then begin
      if trace_on then
        Obs.Chrome_trace.add_span ~cat:"ingest" ~name:"decode-batch"
          ~ts_us:!batch_t0
          ~dur_us:(Obs.now_us () -. !batch_t0)
          ();
      push_or_stop (Batch (Array.sub scratch 0 !fill));
      fill := 0;
      if trace_on then batch_t0 := Obs.now_us ()
    end
  in
  let feed () e =
    scratch.(!fill) <- e;
    incr fill;
    if !fill = batch_size then flush ()
  in
  try
    (if Traces.Binfmt.is_binary path then begin
       let h = Traces.Binfmt.read_header path in
       let last_use =
         if reclaim then Traces.Binfmt.read_last_use path else None
       in
       let stats = binary_stats ~prefilter path in
       push_or_stop
         (Domains
            {
              threads = h.Traces.Binfmt.threads;
              locks = h.Traces.Binfmt.locks;
              vars = h.Traces.Binfmt.vars;
              events = Some h.Traces.Binfmt.events;
              last_use;
              stats;
            });
       if packed && packable ~prefilter h then begin
         (* decode straight into packed chunks; a full chunk is pushed
            as-is (chunks are off-heap and immutable once handed over,
            so sharing them with the consumer domain is safe) *)
         let cw = batch_size in
         let chunk = ref (Traces.Packed.make_chunk cw) in
         let cfill = ref 0 in
         let flush_packed () =
           if !cfill > 0 then begin
             if trace_on then
               Obs.Chrome_trace.add_span ~cat:"ingest" ~name:"decode-batch"
                 ~ts_us:!batch_t0
                 ~dur_us:(Obs.now_us () -. !batch_t0)
                 ();
             push_or_stop (Packed_batch (!chunk, !cfill));
             chunk := Traces.Packed.make_chunk cw;
             cfill := 0;
             if trace_on then batch_t0 := Obs.now_us ()
           end
         in
         ignore
           (Traces.Binfmt.fold_packed path ~init:() ~f:(fun () w ->
                Bigarray.Array1.unsafe_set !chunk !cfill w;
                incr cfill;
                if !cfill = cw then flush_packed ()));
         flush_packed ()
       end
       else ignore (Traces.Binfmt.fold path ~init:() ~f:feed)
     end
     else begin
       (* the last-use and stats callbacks fire after pass 1, before [init] *)
       let oracle = ref None in
       let vstats = ref None in
       Traces.Parser.fold_file_exn
         ?last_use:
           (if reclaim then Some (fun lt -> oracle := Some lt) else None)
         ?stats:
           (match prefilter with
           | Off | Online -> None
           | Exact | Auto -> Some (fun vs -> vstats := Some vs))
         path
         ~init:(fun ~threads ~locks ~vars ->
           push_or_stop
             (Domains
                {
                  threads;
                  locks;
                  vars;
                  events = None;
                  last_use = !oracle;
                  stats = !vstats;
                }))
         ~f:feed
     end);
    flush ()
  with Stop_producing -> ()

let ring_entries (s : Parallel.Ring.stats) =
  Obs.Snapshot.
    [
      entry "ring.capacity" (Int s.Parallel.Ring.st_capacity);
      entry "ring.occupancy_hwm" (Int s.Parallel.Ring.occupancy_hwm);
      entry "ring.producer_stalls" (Int s.Parallel.Ring.producer_stalls);
      entry "ring.consumer_stalls" (Int s.Parallel.Ring.consumer_stalls);
    ]

let run_stream_pipelined ?timeout ?heartbeat ?(reclaim = true)
    ?(prefilter = Off) ?(packed = true) ?flight
    (module C : Aerodrome.Checker.S) path =
  collected ~file:path (fun () ->
      let ring_stats = ref None in
      let r =
        Parallel.Pipeline.run ~capacity:ring_capacity
          ~on_stats:(fun s -> ring_stats := Some s)
          ~produce:(fun ~push ->
            produce_file path ~reclaim ~prefilter ~packed ~push)
          ~consume:(fun ~pop ->
            match pop () with
            | None ->
              (* the producer failed before announcing the domains (bad
                 header, malformed text, unreadable file); Pipeline.run
                 re-raises its exception and this placeholder is
                 discarded *)
              {
                checker = C.name;
                outcome = Verdict None;
                seconds = 0.;
                events_fed = 0;
                metrics = Obs.Snapshot.empty;
              }
            | Some (Batch _ | Packed_batch _) ->
              assert false (* producer announces domains first *)
            | Some (Domains { threads; locks; vars; events; last_use; stats })
              ->
              let st =
                Aerodrome.Reclaim.with_policy (policy ~reclaim last_use)
                  (fun () -> C.create ~threads ~locks ~vars)
              in
              (* the filter runs on the consumer so its counters publish
                 into this run's ambient scope; the producer only supplies
                 the statistics *)
              let pf =
                Option.map Prefilter.create (prefilter_mode ~prefilter ~stats)
              in
              let sample_heap = heap_sampler () in
              let fl = flight_recorder flight ~threads ~locks ~vars in
              arm_heartbeat heartbeat ~total:events;
              let started = Unix.gettimeofday () in
              let deadline = Option.map (fun b -> started +. b) timeout in
              let timed_out = ref false in
              let viol_at = ref (-1.0) in
              let fed = ref 0 in
              let checkpoint () =
                incr fed;
                if !fed land (check_interval - 1) = 0 then begin
                  tick heartbeat !fed;
                  sample_heap ();
                  match deadline with
                  | Some d when Unix.gettimeofday () > d ->
                    timed_out := true;
                    raise Exit
                  | _ -> ()
                end
              in
              let feed_one e =
                (match fl with
                | Some f when !viol_at < 0.0 ->
                  Flight.note f !fed (Packed.of_event e)
                | _ -> ());
                (match C.feed st e with
                | Some _ -> note_violation viol_at ~started
                | None -> ());
                checkpoint ()
              in
              let feed_one_packed w =
                (match fl with
                | Some f when !viol_at < 0.0 -> Flight.note f !fed w
                | _ -> ());
                (match C.feed_packed st w with
                | Some _ -> note_violation viol_at ~started
                | None -> ());
                checkpoint ()
              in
              (try
                 let rec loop () =
                   match pop () with
                   | None -> ()
                   | Some (Domains _) -> assert false
                   | Some (Batch events) ->
                     Obs.Chrome_trace.span ~cat:"check" "feed-batch"
                       (fun () ->
                         Array.iter
                           (fun e ->
                             match pf with
                             | None -> feed_one e
                             | Some p -> Prefilter.feed p e feed_one)
                           events);
                     loop ()
                   | Some (Packed_batch (chunk, len)) ->
                     Obs.Chrome_trace.span ~cat:"check" "feed-batch"
                       (fun () ->
                         for i = 0 to len - 1 do
                           let w = Bigarray.Array1.unsafe_get chunk i in
                           match pf with
                           | None -> feed_one_packed w
                           | Some p ->
                             Prefilter.feed_packed p w feed_one_packed
                         done);
                     loop ()
                 in
                 loop ()
               with Exit -> ());
              (match pf with
              | None -> ()
              | Some p -> ( try Prefilter.finish p feed_one with Exit -> ()));
              sample_heap ();
              let outcome =
                if !timed_out then Timed_out else Verdict (C.violation st)
              in
              {
                checker = C.name;
                outcome;
                seconds = Unix.gettimeofday () -. started;
                events_fed = !fed;
                metrics =
                  runner_entries ?file_bytes:(file_size path) viol_at
                  @ flight_finish flight fl
                      (module C : Aerodrome.Checker.S)
                      ~source:path ~threads ~locks ~vars outcome;
              })
          ()
      in
      match !ring_stats with
      | Some s when Obs.on () -> { r with metrics = r.metrics @ ring_entries s }
      | _ -> r)

let run_stream ?timeout ?heartbeat ?(pipelined = false) ?(reclaim = true)
    ?(prefilter = Off) ?(packed = true) ?(shards = 1) ?shard_pool ?sched
    ?flight checker path =
  (* the sharded path materializes the whole arena before any checking
     starts, so a pipelined producer would have nothing to overlap with;
     when both are requested, sharding wins *)
  if pipelined && not (shardable ~shards ~timeout checker) then
    run_stream_pipelined ?timeout ?heartbeat ~reclaim ~prefilter ~packed
      ?flight checker path
  else
    run_stream_seq ?timeout ?heartbeat ~reclaim ~prefilter ~packed ~shards
      ?shard_pool ?sched ?flight checker path

(* --- multi-file fan-out --- *)

type file_report = {
  file : string;
  report : (result, string) Stdlib.result;
}

let run_file ?timeout ?heartbeat ?(pipelined = false) ?(reclaim = true)
    ?(prefilter = Off) ?(packed = true) ?(shards = 1) ?shard_pool ?sched
    ?flight checker path =
  match
    run_stream ?timeout ?heartbeat ~pipelined ~reclaim ~prefilter ~packed
      ~shards ?shard_pool ?sched ?flight checker path
  with
  | r -> Ok r
  | exception Traces.Binfmt.Corrupt msg -> Error msg
  | exception Traces.Parser.Parse_error e ->
    Error (Format.asprintf "%s: %a" path Traces.Parser.pp_error e)
  | exception Sys_error msg -> Error msg

let run_many ?timeout ?heartbeat ?(pipelined = false) ?(reclaim = true)
    ?(prefilter = Off) ?(packed = true) ?(jobs = 1) ?(shards = 1) ?shard_pool
    ?sched ?flight ?on_pool checker paths =
  match sched with
  | Some sc when List.compare_length_with paths 1 > 0 ->
    (* Unified budget (DESIGN.md §18): the scheduler owns every domain,
       and a file is just a task that spawns chunk tasks on the same
       deques — [await] helps, so a file task waiting on its chunks
       becomes another chunk consumer instead of an idle domain, and a
       second file's chunks start the moment any deque has room rather
       than at a file boundary.  [jobs] is not consulted here: the
       caller sized the scheduler to the machine-wide budget.  The
       heartbeat is dropped as on the pool path (concurrent workers
       would interleave its lines). *)
    let promises =
      List.map
        (fun path ->
          Parallel.Deque.submit sc (fun () ->
              {
                file = path;
                report =
                  run_file ?timeout ~pipelined ~reclaim ~prefilter ~packed
                    ~shards ~sched:sc ?flight checker path;
              }))
        paths
    in
    let reports = List.map (Parallel.Deque.await sc) promises in
    (match on_pool with
    | Some f -> f (Parallel.Deque.stats sc).Parallel.Deque.busy_seconds
    | None -> ());
    reports
  | Some _ ->
    (* one file: run it on the calling domain (keeping the heartbeat);
       its chunks still fan out over the scheduler *)
    List.map
      (fun path ->
        {
          file = path;
          report =
            run_file ?timeout ?heartbeat ~pipelined ~reclaim ~prefilter
              ~packed ~shards ?sched ?flight checker path;
        })
      paths
  | None ->
    (* The static domain budget is shared between the file fan-out and
       intra-file sharding: [jobs] caps the product, so sharded runs fan
       out fewer files concurrently instead of oversubscribing cores.
       Auto sharding resolves per file, so budget with the machine-wide
       estimate it is capped at. *)
    let shard_width =
      if shards = 0 then Domain.recommended_domain_count () else shards
    in
    let file_jobs =
      if shard_width > 1 then max 1 (jobs / shard_width) else jobs
    in
    (* A lent shard pool is single-consumer ({!Parallel.Pool.map} is not
       reentrant); once files fan out across workers, each file's run
       creates its own chunk pool instead. *)
    let shard_pool =
      if file_jobs > 1 && List.compare_length_with paths 1 > 0 then None
      else shard_pool
    in
    (* A shared heartbeat would interleave lines from concurrent workers;
       drop it when the files actually fan out. *)
    let heartbeat =
      if file_jobs > 1 && List.compare_length_with paths 1 > 0 then None
      else heartbeat
    in
    Parallel.Pool.run ?report:on_pool ~jobs:file_jobs
      (fun path ->
        {
          file = path;
          report =
            run_file ?timeout ?heartbeat ~pipelined ~reclaim ~prefilter
              ~packed ~shards ?shard_pool ?flight checker path;
        })
      paths

let violating r =
  match r.outcome with Verdict (Some _) -> true | Verdict None | Timed_out -> false

let speedup ~baseline r =
  match (baseline.outcome, r.outcome) with
  | Timed_out, Timed_out -> None
  | _ -> Some (baseline.seconds /. r.seconds)

let pp ppf r =
  let outcome =
    match r.outcome with
    | Timed_out -> "timeout"
    | Verdict None -> "serializable"
    | Verdict (Some v) ->
      Printf.sprintf "violation @%d" (v.Aerodrome.Violation.index + 1)
  in
  Format.fprintf ppf "%s: %s in %.3fs (%d events)" r.checker outcome r.seconds
    r.events_fed

let pp_file_report ppf fr =
  match fr.report with
  | Ok r -> Format.fprintf ppf "%s: %a" fr.file pp r
  | Error msg -> Format.fprintf ppf "%s: error: %s" fr.file msg
