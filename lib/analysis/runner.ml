open Traces

type outcome = Verdict of Aerodrome.Violation.t option | Timed_out

type result = {
  checker : string;
  outcome : outcome;
  seconds : float;
  events_fed : int;
}

let check_interval = 4096

let run ?timeout (module C : Aerodrome.Checker.S) tr =
  let st =
    C.create ~threads:(Trace.threads tr) ~locks:(Trace.locks tr)
      ~vars:(Trace.vars tr)
  in
  let n = Trace.length tr in
  let deadline =
    Option.map (fun budget -> Unix.gettimeofday () +. budget) timeout
  in
  let started = Unix.gettimeofday () in
  let timed_out = ref false in
  let i = ref 0 in
  (try
     while !i < n do
       ignore (C.feed st (Trace.get tr !i));
       incr i;
       if !i land (check_interval - 1) = 0 then
         match deadline with
         | Some d when Unix.gettimeofday () > d ->
           timed_out := true;
           raise Exit
         | _ -> ()
     done
   with Exit -> ());
  let seconds = Unix.gettimeofday () -. started in
  {
    checker = C.name;
    outcome = (if !timed_out then Timed_out else Verdict (C.violation st));
    seconds;
    events_fed = !i;
  }

let run_seq ?timeout (module C : Aerodrome.Checker.S) ~threads ~locks ~vars
    events =
  let st = C.create ~threads ~locks ~vars in
  let deadline =
    Option.map (fun budget -> Unix.gettimeofday () +. budget) timeout
  in
  let started = Unix.gettimeofday () in
  let timed_out = ref false in
  let fed = ref 0 in
  let rec go events =
    match Seq.uncons events with
    | None -> ()
    | Some (e, rest) -> (
      ignore (C.feed st e);
      incr fed;
      if !fed land (check_interval - 1) = 0 then
        match deadline with
        | Some d when Unix.gettimeofday () > d -> timed_out := true
        | _ -> go rest
      else go rest)
  in
  go events;
  {
    checker = C.name;
    outcome = (if !timed_out then Timed_out else Verdict (C.violation st));
    seconds = Unix.gettimeofday () -. started;
    events_fed = !fed;
  }

let run_binary_file ?timeout checker path =
  let header, (events, close) = Traces.Binfmt.read_seq path in
  Fun.protect ~finally:close (fun () ->
      run_seq ?timeout checker ~threads:header.Traces.Binfmt.threads
        ~locks:header.Traces.Binfmt.locks ~vars:header.Traces.Binfmt.vars
        events)

let run_stream ?timeout (module C : Aerodrome.Checker.S) path =
  if Traces.Binfmt.is_binary path then
    run_binary_file ?timeout (module C) path
  else begin
    (* text: Parser.fold_file announces the domains (pass 1) before any
       event reaches the checker (pass 2), so no Trace.t is built *)
    let st = ref None in
    let started = ref 0.0 in
    let deadline = ref None in
    let timed_out = ref false in
    let fed = ref 0 in
    (try
       ignore
         (Traces.Parser.fold_file_exn path
            ~init:(fun ~threads ~locks ~vars ->
              let s = C.create ~threads ~locks ~vars in
              st := Some s;
              started := Unix.gettimeofday ();
              deadline := Option.map (fun b -> !started +. b) timeout;
              s)
            ~f:(fun s e ->
              ignore (C.feed s e);
              incr fed;
              (if !fed land (check_interval - 1) = 0 then
                 match !deadline with
                 | Some d when Unix.gettimeofday () > d ->
                   timed_out := true;
                   raise Exit
                 | _ -> ());
              s))
     with Exit -> ());
    match !st with
    | None -> assert false (* [init] runs before the first event *)
    | Some s ->
      {
        checker = C.name;
        outcome =
          (if !timed_out then Timed_out else Verdict (C.violation s));
        seconds = Unix.gettimeofday () -. !started;
        events_fed = !fed;
      }
  end

let violating r =
  match r.outcome with Verdict (Some _) -> true | Verdict None | Timed_out -> false

let speedup ~baseline r =
  match (baseline.outcome, r.outcome) with
  | Timed_out, Timed_out -> None
  | _ -> Some (baseline.seconds /. r.seconds)

let pp ppf r =
  let outcome =
    match r.outcome with
    | Timed_out -> "timeout"
    | Verdict None -> "serializable"
    | Verdict (Some v) ->
      Printf.sprintf "violation @%d" (v.Aerodrome.Violation.index + 1)
  in
  Format.fprintf ppf "%s: %s in %.3fs (%d events)" r.checker outcome r.seconds
    r.events_fed
