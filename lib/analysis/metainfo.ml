open Traces

type reducibility = {
  thread_local_vars : int;
  read_only_vars : int;
  thread_local_locks : int;
  elided_thread_local : int;
  elided_read_only : int;
  elided_redundant : int;
  elided_lock_local : int;
  reduced_events : int;
}

type t = {
  events : int;
  reads : int;
  writes : int;
  acquires : int;
  releases : int;
  forks : int;
  joins : int;
  begins : int;
  ends : int;
  nested_begins : int;
  threads : int;
  locks : int;
  variables : int;
  transactions : int;
  unary_events : int;
  max_nesting : int;
  reducibility : reducibility;
}

(* How much of the trace the exact prefilter would elide: the accessor
   statistics classify the variables and locks, a dry filtering run counts
   the per-rule drops (rule (c) — redundant in-transaction accesses — only
   shows up in the dry run). *)
let reducibility_of tr =
  let vs = Varstats.of_trace tr in
  let thread_local_vars = ref 0
  and read_only_vars = ref 0
  and thread_local_locks = ref 0 in
  for x = 0 to Varstats.vars vs - 1 do
    if Varstats.var_single_threaded vs x then incr thread_local_vars
    else if Varstats.var_read_only vs x then incr read_only_vars
  done;
  for l = 0 to Varstats.locks vs - 1 do
    if Varstats.lock_single_threaded vs l then incr thread_local_locks
  done;
  let _, c = Prefilter.run_trace `Exact tr in
  {
    thread_local_vars = !thread_local_vars;
    read_only_vars = !read_only_vars;
    thread_local_locks = !thread_local_locks;
    elided_thread_local = c.Prefilter.thread_local;
    elided_read_only = c.Prefilter.read_only;
    elided_redundant = c.Prefilter.redundant;
    elided_lock_local = c.Prefilter.lock_local;
    reduced_events = c.Prefilter.kept;
  }

let analyze tr =
  let reads = ref 0
  and writes = ref 0
  and acquires = ref 0
  and releases = ref 0
  and forks = ref 0
  and joins = ref 0
  and begins = ref 0
  and ends = ref 0
  and nested_begins = ref 0
  and unary_events = ref 0
  and max_nesting = ref 0 in
  let seen_threads = Hashtbl.create 16
  and seen_locks = Hashtbl.create 16
  and seen_vars = Hashtbl.create 64 in
  let depth = Hashtbl.create 16 in
  let depth_of t = Option.value ~default:0 (Hashtbl.find_opt depth t) in
  Trace.iter
    (fun (e : Event.t) ->
      let t = Ids.Tid.to_int e.thread in
      Hashtbl.replace seen_threads t ();
      let d = depth_of t in
      (match e.op with
      | Event.Begin | Event.End -> ()
      | _ -> if d = 0 then incr unary_events);
      match e.op with
      | Event.Read x ->
        incr reads;
        Hashtbl.replace seen_vars (Ids.Vid.to_int x) ()
      | Event.Write x ->
        incr writes;
        Hashtbl.replace seen_vars (Ids.Vid.to_int x) ()
      | Event.Acquire l ->
        incr acquires;
        Hashtbl.replace seen_locks (Ids.Lid.to_int l) ()
      | Event.Release l ->
        incr releases;
        Hashtbl.replace seen_locks (Ids.Lid.to_int l) ()
      | Event.Fork _ -> incr forks
      | Event.Join _ -> incr joins
      | Event.Begin ->
        if d = 0 then incr begins else incr nested_begins;
        Hashtbl.replace depth t (d + 1);
        max_nesting := max !max_nesting (d + 1)
      | Event.End ->
        if d = 1 then incr ends;
        Hashtbl.replace depth t (max 0 (d - 1)))
    tr;
  {
    events = Trace.length tr;
    reads = !reads;
    writes = !writes;
    acquires = !acquires;
    releases = !releases;
    forks = !forks;
    joins = !joins;
    begins = !begins;
    ends = !ends;
    nested_begins = !nested_begins;
    threads = Hashtbl.length seen_threads;
    locks = Hashtbl.length seen_locks;
    variables = Hashtbl.length seen_vars;
    transactions = !begins;
    unary_events = !unary_events;
    max_nesting = !max_nesting;
    reducibility = reducibility_of tr;
  }

let to_json m : Obs.Json.t =
  let num n = Obs.Json.Num (float_of_int n) in
  Obs.Json.Obj
    [
      ("events", num m.events);
      ("reads", num m.reads);
      ("writes", num m.writes);
      ("acquires", num m.acquires);
      ("releases", num m.releases);
      ("forks", num m.forks);
      ("joins", num m.joins);
      ("begins", num m.begins);
      ("ends", num m.ends);
      ("nested_begins", num m.nested_begins);
      ("threads", num m.threads);
      ("locks", num m.locks);
      ("variables", num m.variables);
      ("transactions", num m.transactions);
      ("unary_events", num m.unary_events);
      ("max_nesting", num m.max_nesting);
      ( "reducibility",
        let r = m.reducibility in
        Obs.Json.Obj
          [
            ("thread_local_vars", num r.thread_local_vars);
            ("read_only_vars", num r.read_only_vars);
            ("thread_local_locks", num r.thread_local_locks);
            ("elided_thread_local", num r.elided_thread_local);
            ("elided_read_only", num r.elided_read_only);
            ("elided_redundant", num r.elided_redundant);
            ("elided_lock_local", num r.elided_lock_local);
            ("reduced_events", num r.reduced_events);
          ] );
    ]

let pp ppf m =
  let r = m.reducibility in
  let elided = m.events - r.reduced_events in
  let pct n =
    if m.events = 0 then 0.0
    else 100.0 *. float_of_int n /. float_of_int m.events
  in
  Format.fprintf ppf
    "@[<v>events:       %d@,\
     reads/writes: %d / %d@,\
     acq/rel:      %d / %d@,\
     fork/join:    %d / %d@,\
     transactions: %d (completed %d, nested begins %d, max nesting %d)@,\
     unary events: %d@,\
     threads:      %d@,\
     locks:        %d@,\
     variables:    %d (%d thread-local, %d read-only; %d thread-local locks)@,\
     reducible:    %d/%d events (%.1f%%): %d thread-local, %d read-only, \
     %d redundant, %d lock-local@]"
    m.events m.reads m.writes m.acquires m.releases m.forks m.joins
    m.transactions m.ends m.nested_begins m.max_nesting m.unary_events
    m.threads m.locks m.variables r.thread_local_vars r.read_only_vars
    r.thread_local_locks elided m.events (pct elided) r.elided_thread_local
    r.elided_read_only r.elided_redundant r.elided_lock_local
