open Traces

type t = {
  events : int;
  reads : int;
  writes : int;
  acquires : int;
  releases : int;
  forks : int;
  joins : int;
  begins : int;
  ends : int;
  nested_begins : int;
  threads : int;
  locks : int;
  variables : int;
  transactions : int;
  unary_events : int;
  max_nesting : int;
}

let analyze tr =
  let reads = ref 0
  and writes = ref 0
  and acquires = ref 0
  and releases = ref 0
  and forks = ref 0
  and joins = ref 0
  and begins = ref 0
  and ends = ref 0
  and nested_begins = ref 0
  and unary_events = ref 0
  and max_nesting = ref 0 in
  let seen_threads = Hashtbl.create 16
  and seen_locks = Hashtbl.create 16
  and seen_vars = Hashtbl.create 64 in
  let depth = Hashtbl.create 16 in
  let depth_of t = Option.value ~default:0 (Hashtbl.find_opt depth t) in
  Trace.iter
    (fun (e : Event.t) ->
      let t = Ids.Tid.to_int e.thread in
      Hashtbl.replace seen_threads t ();
      let d = depth_of t in
      (match e.op with
      | Event.Begin | Event.End -> ()
      | _ -> if d = 0 then incr unary_events);
      match e.op with
      | Event.Read x ->
        incr reads;
        Hashtbl.replace seen_vars (Ids.Vid.to_int x) ()
      | Event.Write x ->
        incr writes;
        Hashtbl.replace seen_vars (Ids.Vid.to_int x) ()
      | Event.Acquire l ->
        incr acquires;
        Hashtbl.replace seen_locks (Ids.Lid.to_int l) ()
      | Event.Release l ->
        incr releases;
        Hashtbl.replace seen_locks (Ids.Lid.to_int l) ()
      | Event.Fork _ -> incr forks
      | Event.Join _ -> incr joins
      | Event.Begin ->
        if d = 0 then incr begins else incr nested_begins;
        Hashtbl.replace depth t (d + 1);
        max_nesting := max !max_nesting (d + 1)
      | Event.End ->
        if d = 1 then incr ends;
        Hashtbl.replace depth t (max 0 (d - 1)))
    tr;
  {
    events = Trace.length tr;
    reads = !reads;
    writes = !writes;
    acquires = !acquires;
    releases = !releases;
    forks = !forks;
    joins = !joins;
    begins = !begins;
    ends = !ends;
    nested_begins = !nested_begins;
    threads = Hashtbl.length seen_threads;
    locks = Hashtbl.length seen_locks;
    variables = Hashtbl.length seen_vars;
    transactions = !begins;
    unary_events = !unary_events;
    max_nesting = !max_nesting;
  }

let to_json m : Obs.Json.t =
  let num n = Obs.Json.Num (float_of_int n) in
  Obs.Json.Obj
    [
      ("events", num m.events);
      ("reads", num m.reads);
      ("writes", num m.writes);
      ("acquires", num m.acquires);
      ("releases", num m.releases);
      ("forks", num m.forks);
      ("joins", num m.joins);
      ("begins", num m.begins);
      ("ends", num m.ends);
      ("nested_begins", num m.nested_begins);
      ("threads", num m.threads);
      ("locks", num m.locks);
      ("variables", num m.variables);
      ("transactions", num m.transactions);
      ("unary_events", num m.unary_events);
      ("max_nesting", num m.max_nesting);
    ]

let pp ppf m =
  Format.fprintf ppf
    "@[<v>events:       %d@,\
     reads/writes: %d / %d@,\
     acq/rel:      %d / %d@,\
     fork/join:    %d / %d@,\
     transactions: %d (completed %d, nested begins %d, max nesting %d)@,\
     unary events: %d@,\
     threads:      %d@,\
     locks:        %d@,\
     variables:    %d@]"
    m.events m.reads m.writes m.acquires m.releases m.forks m.joins
    m.transactions m.ends m.nested_begins m.max_nesting m.unary_events
    m.threads m.locks m.variables
