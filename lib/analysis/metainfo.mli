(** Trace statistics, mirroring RAPID's [MetaInfo] analysis.

    Produces the per-trace columns of the paper's tables: event count,
    distinct threads / locks / variables actually appearing in the trace,
    and the number of (outermost, non-unary) transactions — plus a
    {!reducibility} block measuring how much of the trace the exact
    {!Traces.Prefilter} would elide. *)

type reducibility = {
  thread_local_vars : int;  (** variables touched by a single thread *)
  read_only_vars : int;  (** never-written variables (multi-thread) *)
  thread_local_locks : int;  (** locks only ever held by one thread *)
  elided_thread_local : int;  (** rule (a) drops in an exact dry run *)
  elided_read_only : int;  (** rule (b) drops *)
  elided_redundant : int;  (** rule (c) drops *)
  elided_lock_local : int;  (** rule (d) drops *)
  reduced_events : int;  (** events surviving the filter *)
}

type t = {
  events : int;
  reads : int;
  writes : int;
  acquires : int;
  releases : int;
  forks : int;
  joins : int;
  begins : int;  (** outermost begin events only *)
  ends : int;  (** outermost end events only *)
  nested_begins : int;  (** begin events at nesting depth > 0 *)
  threads : int;  (** threads that perform at least one event *)
  locks : int;  (** locks acquired or released at least once *)
  variables : int;  (** variables read or written at least once *)
  transactions : int;  (** outermost atomic blocks — the paper's column 6 *)
  unary_events : int;  (** events outside any atomic block *)
  max_nesting : int;
  reducibility : reducibility;
}

val analyze : Traces.Trace.t -> t

val to_json : t -> Obs.Json.t
(** One flat object, one field per statistic, in declaration order. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering. *)
