(** Trace statistics, mirroring RAPID's [MetaInfo] analysis.

    Produces the per-trace columns of the paper's tables: event count,
    distinct threads / locks / variables actually appearing in the trace,
    and the number of (outermost, non-unary) transactions. *)

type t = {
  events : int;
  reads : int;
  writes : int;
  acquires : int;
  releases : int;
  forks : int;
  joins : int;
  begins : int;  (** outermost begin events only *)
  ends : int;  (** outermost end events only *)
  nested_begins : int;  (** begin events at nesting depth > 0 *)
  threads : int;  (** threads that perform at least one event *)
  locks : int;  (** locks acquired or released at least once *)
  variables : int;  (** variables read or written at least once *)
  transactions : int;  (** outermost atomic blocks — the paper's column 6 *)
  unary_events : int;  (** events outside any atomic block *)
  max_nesting : int;
}

val analyze : Traces.Trace.t -> t

val to_json : t -> Obs.Json.t
(** One flat object, one field per statistic, in declaration order. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering. *)
