(* Violation witness bundles.

   When a flight-recorded run ends in a violation, [emit] writes two
   files into the bundle directory:

   - [<source>.witness.json] — the diagnosis: the violating event and
     check site, a per-thread frontier (open-transaction depth, retained
     ring tail, last seen position), the last-N events each thread's
     ring still holds, and the replay metadata;
   - [<source>.slice.bin] — the captured window re-encoded as a
     stand-alone version-1 binfmt trace (present only when the rings
     still cover a quiescent cut, see {!Traces.Flight.window}).

   The slice starts at a globally quiescent position [p], so a ⊥-seeded
   checker over it is exact (DESIGN.md §15/§16): because the recorded
   violation at [v] was the run's first, it is also the first in
   [[p, v]], and replaying the slice must report a violation at slice
   index [v - p] — same event, same site.  [emit] performs that replay
   on the just-written file (so the bytes on disk are what is
   validated) and records the outcome in the JSON; `rapid check` on the
   slice reproduces the same report, which the differential tests pin. *)

open Traces

type info = {
  json_path : string;
  slice_path : string option;
  window_start : int option;  (** global index of the slice's first event *)
  slice_events : int;
  replayable : bool;
  validated : bool;  (** replay ran and reproduced index + site *)
}

let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_text path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let site_string site = Format.asprintf "%a" Aerodrome.Violation.pp_site site

let event_json index (e : Event.t) =
  Obs.Json.Obj
    [
      ("index", Obs.Json.Num (float_of_int index));
      ("event", Obs.Json.Str (Event.to_string e));
    ]

(* Replay the slice file with a fresh checker under its own metric
   scope, so the replay's counters never leak into the recording run's
   ambient collection. *)
let replay_slice (module C : Aerodrome.Checker.S) path =
  let v, _discarded_metrics =
    Obs.Scope.collect (fun () ->
        let header, arena = Binfmt.read_packed path in
        Aerodrome.Checker.run_arena
          (module C)
          ~threads:header.Binfmt.threads ~locks:header.Binfmt.locks
          ~vars:header.Binfmt.vars arena)
  in
  v

let violation_matches ~(expected : Aerodrome.Violation.t) ~at
    (got : Aerodrome.Violation.t option) =
  match got with
  | None -> false
  | Some g ->
    g.Aerodrome.Violation.index = at
    && Event.equal g.Aerodrome.Violation.event expected.Aerodrome.Violation.event
    && g.Aerodrome.Violation.site = expected.Aerodrome.Violation.site

let emit ~dir ~source ~checker ~threads ~locks ~vars ~(flight : Flight.t)
    ?(base = 0) ~(violation : Aerodrome.Violation.t) () :
    (info, string) result =
  try
    ensure_dir dir;
    let name = Filename.basename source in
    let json_path = Filename.concat dir (name ^ ".witness.json") in
    let slice_path = Filename.concat dir (name ^ ".slice.bin") in
    let window = Flight.window flight in
    let replayable = Option.is_some window in
    (* write the slice first so validation exercises the on-disk bytes *)
    let slice_field, window_field, validated, slice_events, window_start =
      match window with
      | None -> (Obs.Json.Null, Obs.Json.Null, false, 0, None)
      | Some (p_local, words) ->
        Binfmt.write_packed_window slice_path ~threads ~locks ~vars words;
        let start = base + p_local in
        let expect_at = violation.Aerodrome.Violation.index - start in
        let replayed = replay_slice checker slice_path in
        let ok = violation_matches ~expected:violation ~at:expect_at replayed in
        let replay_json =
          Obs.Json.Obj
            [
              ( "verdict",
                Obs.Json.Str
                  (match replayed with Some _ -> "violation" | None -> "serializable") );
              ( "index",
                match replayed with
                | Some v -> Obs.Json.Num (float_of_int v.Aerodrome.Violation.index)
                | None -> Obs.Json.Null );
              ("matches", Obs.Json.Bool ok);
            ]
        in
        ( Obs.Json.Str (Filename.basename slice_path),
          Obs.Json.Obj
            [
              ("start", Obs.Json.Num (float_of_int start));
              ("events", Obs.Json.Num (float_of_int (Array.length words)));
              ("expected_violation_index", Obs.Json.Num (float_of_int expect_at));
              ("replay", replay_json);
            ],
          ok,
          Array.length words,
          Some start )
    in
    let thread_frontier tid =
      let tail = Flight.thread_tail flight tid in
      Obs.Json.Obj
        [
          ("tid", Obs.Json.Num (float_of_int tid));
          ("open_depth", Obs.Json.Num (float_of_int (Flight.depth flight tid)));
          ("retained", Obs.Json.Num (float_of_int (Flight.retained flight tid)));
          ( "last_index",
            let i = Flight.last_seen flight tid in
            if i < 0 then Obs.Json.Null else Obs.Json.Num (float_of_int (base + i)) );
          ( "events",
            Obs.Json.List
              (List.map
                 (fun (i, w) -> event_json (base + i) (Packed.to_event w))
                 tail) );
        ]
    in
    let nthreads = max threads (Flight.threads flight) in
    let doc =
      Obs.Json.Obj
        [
          ("schema", Obs.Json.Str "aerodrome-witness/1");
          ("source", Obs.Json.Str source);
          ( "checker",
            let (module C : Aerodrome.Checker.S) = checker in
            Obs.Json.Str C.name );
          ( "violation",
            Obs.Json.Obj
              [
                ( "index",
                  Obs.Json.Num (float_of_int violation.Aerodrome.Violation.index) );
                ( "event",
                  Obs.Json.Str (Event.to_string violation.Aerodrome.Violation.event) );
                ("site", Obs.Json.Str (site_string violation.Aerodrome.Violation.site));
              ] );
          ( "domains",
            Obs.Json.Obj
              [
                ("threads", Obs.Json.Num (float_of_int threads));
                ("locks", Obs.Json.Num (float_of_int locks));
                ("vars", Obs.Json.Num (float_of_int vars));
              ] );
          ("ring_window", Obs.Json.Num (float_of_int (Flight.window_size flight)));
          ( "threads",
            Obs.Json.List (List.init nthreads thread_frontier) );
          ("window", window_field);
          ("slice", slice_field);
        ]
    in
    write_text json_path (Obs.Json.to_string doc);
    Ok
      {
        json_path;
        slice_path = (if replayable then Some slice_path else None);
        window_start;
        slice_events;
        replayable;
        validated;
      }
  with
  | Sys_error msg -> Error msg
  | Unix.Unix_error (e, fn, arg) ->
    Error (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e))
  | Binfmt.Corrupt msg -> Error ("slice replay: " ^ msg)
