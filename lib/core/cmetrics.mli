(** Shared per-checker-instance metric set.

    Every checker constructor creates one of these; its registry is
    attached to the ambient {!Obs.Scope} (when one is active, i.e. the
    runner is collecting), so the runner can harvest per-run metrics
    without widening the {!Checker.S} signature — the verbatim reference
    copies under [test/reference] keep compiling unchanged.

    Per-event updates are gated at the call site with
    [if Obs.on () then ...]; a disabled run costs one branch per event.
    The exception is {!Monitor}, whose statistics predate this module
    and stay unconditional ([stats] reads counter values directly). *)

open Traces

type t = {
  registry : Obs.Registry.t;
  events : Obs.Counter.t;
  reads : Obs.Counter.t;
  writes : Obs.Counter.t;
  acquires : Obs.Counter.t;
  releases : Obs.Counter.t;
  forks : Obs.Counter.t;
  joins : Obs.Counter.t;
  begins : Obs.Counter.t;  (** all [Begin] events, nested included *)
  ends : Obs.Counter.t;
  txn_begins : Obs.Counter.t;  (** outermost transaction begins *)
  txn_commits : Obs.Counter.t;  (** outermost transaction ends *)
  vc_joins : Obs.Counter.t;  (** vector-clock join operations *)
  stale_readers : Obs.Histogram.t;
      (** size of [Stale^r_x] at each flush (Opt only) *)
  lock_updates : Obs.Histogram.t;
      (** size of [UpdateSet^l_t] at each transaction end (Opt only) *)
  violation_index : Obs.Gauge.t;  (** event index of the violation, -1 if none *)
}

val create : ?attach:bool -> unit -> t
(** [attach] (default true) registers the new metric set with the
    ambient {!Obs.Scope} when one is active. *)

val count : t -> Event.op -> unit

val count_op : t -> int -> unit
(** [count] by packed opcode ({!Traces.Packed}); the packed hot path's
    sibling of {!count}. *)

val txn_begin : t -> unit
val txn_commit : t -> unit
val vc_join : t -> unit
val vc_joins_add : t -> int -> unit
val observe_stale_readers : t -> int -> unit
val observe_lock_updates : t -> int -> unit
val found_violation : t -> int -> unit
val registry : t -> Obs.Registry.t
val snapshot : t -> Obs.Snapshot.t
