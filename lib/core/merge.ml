(* Boundary-summary cut planning for sharded checking.

   PR 7 only accepted globally quiescent cuts (no thread mid-transaction
   anywhere), where a ⊥-seeded per-chunk Opt run is exact (DESIGN.md
   §15), and replayed everything else sequentially.  This planner
   accepts *any* cut and records per cut a boundary summary — the
   per-thread open-transaction depth vector plus the taint of the open
   transactions' pre-cut accesses — from which the chunk checker is
   seeded ({!Opt.seed_boundary}) and the reconciliation pass repairs
   whatever the seed cannot reproduce.  The exactness argument
   (DESIGN.md §17) rests on a containment invariant: a seeded chunk
   checker's state is always generation-wise contained in the
   sequential checker's, so a speculative chunk can {e miss} violations
   but never invent one, and the only events whose outcome can differ
   lie in the cut's repair window:

   - a quiescent cut has no open transactions: window 0 (the §15 case);
   - a cut whose straddlers (threads mid-transaction) have made {e no}
     accesses since their outermost begin is exactly reproduced by
     depth seeding alone — the open transactions have published
     nothing the chunk cannot see — so window 0;
   - otherwise the open transactions' pre-cut accesses left clock
     state the chunk lacks, and the divergence retires in two rounds.
     Every clock component the chunk is missing is a generation of a
     transaction begun at or before [q1], the position where the last
     straddler closes: the initial surplus is the straddlers' end-time
     clock writes to pre-cut-touched state (all components current at
     their close), and joins propagate component {e values} unchanged.
     AeroDrome's violation checks are own-component epoch threshold
     tests, so a surplus value can only flip a check while the checking
     thread's transaction began at or before [q1] — its begin epoch
     must not exceed the surplus generation.  The window therefore
     closes once every transaction open at [q1] has itself closed; the
     first globally quiescent position at or after the cut is a
     (possibly much later) special case of that horizon.  The gap is
     the repair window: reconciliation re-runs exactly those events
     against the true frontier, instead of replaying the whole chunk.

   Everything here is decidable from the event text alone (per-thread
   depth and touch counters), so planning needs no clock state and
   runs before any domain is spawned.  Equidistant candidates still
   snap to a nearby quiescent position when one exists — a free
   window-0 cut — but a candidate with no quiescent neighbour is now
   accepted with its summary rather than rejected into a replay of the
   whole span. *)

open Traces

type boundary = {
  cut : int;
  depths : int array;
  window : int;
  tainted : int;
}

type plan = {
  boundaries : boundary array;
  targets : int;
  quiescent : int;
  seamed : int;
  tainted_events : int;
  repair_events : int;
}

let origin ~threads =
  { cut = 0; depths = Array.make (max threads 0) 0; window = 0; tainted = 0 }

let trivial ~threads =
  {
    boundaries = [| origin ~threads |];
    targets = 0;
    quiescent = 0;
    seamed = 0;
    tainted_events = 0;
    repair_events = 0;
  }

(* One pass over the arena: per-thread transaction depth, per-thread
   count of accesses since the outermost open begin (begins and ends
   only manipulate the transaction structure itself, which depth
   seeding reproduces, so they do not count), and a callback at every
   position with the live frontier.  [at ~pos] runs before event [pos]
   (position p = the gap before event p), with [quiet] true iff no
   thread is mid-transaction there. *)
let scan ~threads arena at =
  let depth = Array.make threads 0 in
  let touch = Array.make threads 0 in
  let open_txns = ref 0 in
  let pos = ref 0 in
  at ~pos:0 ~quiet:true ~depth ~touch;
  Packed.Arena.iter arena (fun w ->
      let op = Packed.opcode w in
      let t = Packed.tid w in
      if op = Packed.op_begin then begin
        if depth.(t) = 0 then begin
          incr open_txns;
          touch.(t) <- 0
        end;
        depth.(t) <- depth.(t) + 1
      end
      else if op = Packed.op_end then begin
        if depth.(t) > 0 then begin
          depth.(t) <- depth.(t) - 1;
          if depth.(t) = 0 then begin
            decr open_txns;
            touch.(t) <- 0
          end
        end
      end
      else if depth.(t) > 0 then touch.(t) <- touch.(t) + 1;
      incr pos;
      at ~pos:!pos ~quiet:(!open_txns = 0) ~depth ~touch)

(* Snapshot a boundary summary from the live frontier.  [window = -1]
   marks a summary whose repair window is still open: it closes once
   the straddlers' transactions and then the transactions open at the
   last straddler's close have all retired (or at the arena end). *)
let summarize ~pos ~depth ~touch =
  let straddlers = ref 0 in
  let tainted = ref 0 in
  Array.iteri
    (fun t d ->
      if d > 0 then begin
        incr straddlers;
        tainted := !tainted + touch.(t)
      end)
    depth;
  let window = if !straddlers = 0 || !tainted = 0 then 0 else -1 in
  ( { cut = pos; depths = Array.copy depth; window; tainted = !tainted },
    !straddlers )

let plan ~threads ~shards ?cuts arena =
  let n = Packed.Arena.length arena in
  let candidates, snap_window =
    match cuts with
    | Some cs ->
      let cs =
        List.sort_uniq compare (List.filter (fun p -> p > 0 && p < n) cs)
      in
      (Array.of_list cs, 0)
    | None ->
      if shards <= 1 || n = 0 then ([||], 0)
      else
        let k = min shards n in
        (Array.init (k - 1) (fun i -> (i + 1) * n / k), max 1 (n / k / 8))
  in
  let m = Array.length candidates in
  if m = 0 then trivial ~threads
  else begin
    (* Per candidate: the nearest quiescent position within
       [snap_window] (a free window-0 cut; spacing exceeds twice the
       snap window, so snapped cuts stay strictly increasing and
       distinct), and the boundary summary at the candidate position
       itself.  A summary with an open repair window sits in [pending]
       carrying the set of threads whose current transaction it is
       still waiting on: first the straddlers (phase 1), then — once
       the last straddler has closed — the threads mid-transaction at
       that moment (phase 2).  A thread leaves the set at the first
       position where its depth returns to 0, so any globally
       quiescent position closes every pending window at once. *)
    let snapped = Array.make m (-1) in
    let snapd = Array.make m max_int in
    let summary = Array.make m None in
    let pending = ref [] in
    let next = ref 0 in
    let lo = ref 0 in
    let waiting_on depth = function
      | [] -> []
      | mask -> List.filter (fun t -> depth.(t) > 0) mask
    in
    let openers depth =
      let acc = ref [] in
      Array.iteri (fun t d -> if d > 0 then acc := t :: !acc) depth;
      !acc
    in
    scan ~threads arena (fun ~pos ~quiet ~depth ~touch ->
        if quiet then begin
          while !lo < m && candidates.(!lo) + snap_window < pos do
            incr lo
          done;
          let j = ref !lo in
          while !j < m && candidates.(!j) - snap_window <= pos do
            let d = abs (pos - candidates.(!j)) in
            if d < snapd.(!j) then begin
              snapd.(!j) <- d;
              snapped.(!j) <- pos
            end;
            incr j
          done
        end;
        if !pending <> [] then
          pending :=
            List.filter
              (fun (j, b, phase2, mask) ->
                mask := waiting_on depth !mask;
                if !mask = [] && not !phase2 then begin
                  phase2 := true;
                  mask := openers depth
                end;
                if !mask = [] then begin
                  summary.(j) <- Some ({ b with window = pos - b.cut }, -1);
                  false
                end
                else true)
              !pending;
        if !next < m && candidates.(!next) = pos then begin
          let b, straddlers = summarize ~pos ~depth ~touch in
          if b.window < 0 then
            pending := !pending @ [ (!next, b, ref false, ref (openers depth)) ];
          summary.(!next) <- Some (b, straddlers);
          incr next
        end);
    (* Windows still open at the end of the arena span to it. *)
    List.iter
      (fun (j, b, _, _) ->
        summary.(j) <- Some ({ b with window = n - b.cut }, -1))
      !pending;
    let boundaries = ref [] in
    let quiescent = ref 0 in
    let seamed = ref 0 in
    let tainted_events = ref 0 in
    Array.iteri
      (fun j _ ->
        if cuts = None && snapped.(j) >= 0 then begin
          incr quiescent;
          boundaries :=
            {
              cut = snapped.(j);
              depths = Array.make threads 0;
              window = 0;
              tainted = 0;
            }
            :: !boundaries
        end
        else
          match summary.(j) with
          | None -> ()
          | Some (b, straddlers) ->
            if straddlers = 0 then incr quiescent else incr seamed;
            tainted_events := !tainted_events + b.tainted;
            boundaries := b :: !boundaries)
      candidates;
    let boundaries =
      Array.of_list (origin ~threads :: List.rev !boundaries)
    in
    (* Planned repair total: window segments clipped against the
       covered frontier.  Window ends are monotone in cut order: with
       [f c t] = the first position >= [c] where thread [t] is outside
       any transaction, the horizon is h(c) = max_t f(max_t f(c,t), t),
       and [f] is non-decreasing in [c] — so the clipped segments are
       disjoint and ordered. *)
    let covered = ref 0 in
    let repair = ref 0 in
    Array.iter
      (fun b ->
        let h = b.cut + b.window in
        let from = max b.cut !covered in
        if h > from then begin
          repair := !repair + (h - from);
          covered := h
        end)
      boundaries;
    {
      boundaries;
      targets = m;
      quiescent = !quiescent;
      seamed = !seamed;
      tainted_events = !tainted_events;
      repair_events = !repair;
    }
  end

let bounds plan ~total =
  let k = Array.length plan.boundaries in
  Array.init k (fun i ->
      ( plan.boundaries.(i).cut,
        if i = k - 1 then total else plan.boundaries.(i + 1).cut ))

type seam = {
  owner : int;
  from_ : int;
  upto : int;
  exact_from : int;
  survives : bool;
}

(* The left-to-right reconciliation fold, precomputed.  Everything the
   fold decides — where each repair segment starts and ends, which
   chunk's checker it feeds (the nearest surviving predecessor), and
   from which position a chunk's own speculative verdict is trusted —
   depends only on the cuts, windows and chunk extents in the plan,
   never on what the chunk checkers find.  Evaluating the fold here,
   before any chunk has run, is what makes out-of-order execution
   possible: a chunk can perform the repairs it owns the moment it
   retires, regardless of how many later (or earlier non-owner) chunks
   are still in flight, and the final verdict is the minimum-index
   candidate over components whose exact regions partition the arena
   (DESIGN.md §18).

   The invariant carried by [covered] (mirroring [plan]'s repair
   accounting and {!Shard}'s sequential reconcile): after chunk [i-1]
   is folded in, [covered] >= [cut i], so segment [i] starts exactly
   at the covered frontier and the clipped segments are disjoint and
   ordered.  A chunk whose whole extent falls inside the repair
   horizon does not survive: its range is re-fed by the segment and
   its checker is discarded. *)
let seams plan ~total =
  let bs = plan.boundaries in
  let k = Array.length bs in
  let stop i = if i = k - 1 then total else bs.(i + 1).cut in
  let out =
    Array.make k { owner = 0; from_ = 0; upto = 0; exact_from = 0; survives = true }
  in
  let covered = ref (stop 0) in
  let owner = ref 0 in
  for i = 1 to k - 1 do
    let h = min total (bs.(i).cut + bs.(i).window) in
    let from_ = !covered in
    let upto = max h from_ in
    let exact_from = max from_ h in
    let survives = stop i > exact_from in
    out.(i) <- { owner = !owner; from_; upto; exact_from; survives };
    if survives then begin
      covered := stop i;
      owner := i
    end
    else covered := exact_from
  done;
  out
