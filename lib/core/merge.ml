(* Cut planning for sharded checking.

   A speculative per-chunk Opt run seeded with ⊥ clocks reproduces the
   sequential checker's outcomes exactly iff its entry cut is globally
   quiescent (no thread mid-transaction anywhere).  The proof sketch —
   spelled out in DESIGN.md §15 — rests on two code invariants:

   - every violation check is gated on [active st t], and an active
     post-cut transaction was begun post-cut, where [handle_begin]
     bumps the thread's own component; so every check compares a
     post-cut epoch [cb_own t = V_t + δ] (δ ≥ 1) against a clock
     component that is either offset-consistent ([V_t + shard value])
     or pre-cut residue (≤ V_t, which the shard sees as 0) — the
     boolean outcome is identical either way;
   - at a quiescent position the checker's cross-transaction scratch
     state (update sets, stale-reader sets, [vstale_w]) has provably
     drained, so the residues that survive ([vw]/[vr] clocks,
     [last_rel_thr], [vlast_w]) are exactly the outcome-equivalent
     kind.

   Quiescence is decidable from the event text alone (a per-thread
   depth counter), so cut validation needs no clock state and runs
   before any domain is spawned: the "boundary summary" each shard
   assumes is the all-zero depth frontier, and the planner only emits
   cuts whose summary matches.  A rejected candidate means the events
   that would have formed that chunk are replayed as the tail of the
   preceding shard — the honest cost surfaced in [replayed_events]. *)

open Traces

type plan = {
  cuts : int array;
  targets : int;
  hits : int;
  misses : int;
  replayed_events : int;
}

let trivial = { cuts = [| 0 |]; targets = 0; hits = 0; misses = 0;
                replayed_events = 0 }

(* Scan the arena maintaining the transaction-depth frontier; call
   [note] at every globally quiescent position (position p = before
   event p).  Stops early once [note] returns false. *)
let scan_quiescent ~threads arena note =
  let depth = Array.make threads 0 in
  let open_txns = ref 0 in
  let pos = ref 0 in
  let n = Packed.Arena.length arena in
  if note 0 then
    (try
       Packed.Arena.iter arena (fun w ->
           let op = Packed.opcode w in
           if op = Packed.op_begin then begin
             let t = Packed.tid w in
             if depth.(t) = 0 then incr open_txns;
             depth.(t) <- depth.(t) + 1
           end
           else if op = Packed.op_end then begin
             let t = Packed.tid w in
             if depth.(t) > 0 then begin
               depth.(t) <- depth.(t) - 1;
               if depth.(t) = 0 then decr open_txns
             end
           end;
           incr pos;
           if !open_txns = 0 && !pos < n && not (note !pos) then raise Exit)
     with Exit -> ())

let plan ~threads ~shards ?window ?cuts arena =
  let n = Packed.Arena.length arena in
  let candidates, window =
    match cuts with
    | Some cs ->
      let cs = List.sort_uniq compare (List.filter (fun p -> p > 0 && p < n) cs) in
      (Array.of_list cs, 0)
    | None ->
      if shards <= 1 || n = 0 then ([||], 0)
      else
        let k = min shards n in
        ( Array.init (k - 1) (fun i -> (i + 1) * n / k),
          match window with
          | Some w -> max 0 w
          | None -> max 1 (n / k / 8) )
  in
  let m = Array.length candidates in
  if m = 0 then trivial
  else begin
    (* For each candidate, the nearest quiescent position within its
       window, found in the single frontier scan. *)
    let best = Array.make m (-1) in
    let bestd = Array.make m max_int in
    let lo = ref 0 in
    scan_quiescent ~threads arena (fun q ->
        while !lo < m && candidates.(!lo) + window < q do
          incr lo
        done;
        let j = ref !lo in
        while !j < m && candidates.(!j) - window <= q do
          let d = abs (q - candidates.(!j)) in
          if d < bestd.(!j) then begin
            bestd.(!j) <- d;
            best.(!j) <- q
          end;
          incr j
        done;
        !lo < m);
    (* Accepted cuts must stay strictly increasing (and past position
       0); a candidate whose snap collides with the previous cut is a
       miss like any other. *)
    let cuts_rev = ref [ 0 ] in
    let hits = ref 0 in
    let missed = Array.make m false in
    Array.iteri
      (fun j _ ->
        let b = best.(j) in
        if b > List.hd !cuts_rev then begin
          incr hits;
          cuts_rev := b :: !cuts_rev
        end
        else missed.(j) <- true)
      candidates;
    let cuts = Array.of_list (List.rev !cuts_rev) in
    (* Each maximal run of rejected candidates extends the preceding
       shard from the first rejected position to the next accepted cut
       (or the end of the arena): those events could not run on their
       own domain. *)
    let replayed = ref 0 in
    let j = ref 0 in
    while !j < m do
      if missed.(!j) then begin
        let from = candidates.(!j) in
        while !j < m && missed.(!j) do incr j done;
        let next_cut =
          let rec find k =
            if k >= Array.length cuts then n
            else if cuts.(k) > from then cuts.(k)
            else find (k + 1)
          in
          find 0
        in
        replayed := !replayed + (next_cut - from)
      end
      else incr j
    done;
    {
      cuts;
      targets = m;
      hits = !hits;
      misses = m - !hits;
      replayed_events = !replayed;
    }
  end

let bounds plan ~total =
  let k = Array.length plan.cuts in
  Array.init k (fun i ->
      (plan.cuts.(i), if i = k - 1 then total else plan.cuts.(i + 1)))

let reconcile outcomes =
  let rec first i =
    if i >= Array.length outcomes then None
    else
      match outcomes.(i) with
      | base, Some (v : Violation.t) ->
        Some (Violation.make ~index:(base + v.index) ~event:v.event ~site:v.site)
      | _, None -> first (i + 1)
  in
  first 0
