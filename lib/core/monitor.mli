(** High-level online monitoring.

    {!Monitor} wraps a streaming checker with the plumbing a deployment
    needs: incremental statistics, symbol-aware violation reports, a
    violation callback, and a [stop_at_first] / keep-counting policy.  It
    is the API the examples use to watch a "live" program:

    {[
      let m =
        Monitor.create ~threads:8 ~locks:16 ~vars:4096
          ~on_violation:(fun report -> prerr_endline (Monitor.report_to_string report))
          ()
      in
      Seq.iter (fun e -> ignore (Monitor.observe m e)) events;
      Format.printf "%a@." Monitor.pp_stats (Monitor.stats m)
    ]} *)

open Traces

type t

type stats = {
  events : int;  (** events observed *)
  reads : int;
  writes : int;
  syncs : int;  (** acquire/release/fork/join *)
  transactions_started : int;  (** outermost begins *)
  transactions_completed : int;
  active_transactions : int;
}

type report = {
  violation : Violation.t;
  stats_at_detection : stats;
  thread_name : string;
  description : string;  (** one-line human-readable explanation *)
}

val create :
  ?checker:Checker.t ->
  ?symbols:Trace.Symbols.t ->
  ?on_violation:(report -> unit) ->
  threads:int -> locks:int -> vars:int -> unit -> t
(** [checker] defaults to the optimized AeroDrome ({!Opt}); pass
    [(module Velodrome.Online : Checker.S)]-style modules to monitor with
    a different algorithm.  [symbols] names threads/locks/variables in
    reports. *)

val of_trace_domains : ?checker:Checker.t -> ?on_violation:(report -> unit) ->
  Trace.t -> t
(** Domains and symbols taken from an existing trace. *)

val observe : t -> Event.t -> report option
(** Feed one event.  Returns the report when this event first triggers a
    violation; afterwards the monitor keeps accepting events (statistics
    continue) but the underlying checker is frozen. *)

val observe_all : t -> Event.t Seq.t -> report option
(** Feed a whole sequence; stops early at the first violation. *)

val violation : t -> report option
val violated : t -> bool

val stats : t -> stats
(** Thin view over the monitor's {!Cmetrics} registry (one counter
    source of truth); counting is unconditional, independent of
    [Obs.on]. *)

(** [metrics m] is the same counters as a registry snapshot. *)
val metrics : t -> Obs.Snapshot.t
val pp_stats : Format.formatter -> stats -> unit
val report_to_string : report -> string
