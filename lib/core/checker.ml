open Traces

module type S = sig
  type t

  val name : string
  val create : threads:int -> locks:int -> vars:int -> t
  val feed : t -> Event.t -> Violation.t option
  val feed_packed : t -> int -> Violation.t option
  val violation : t -> Violation.t option
  val processed : t -> int
end

type t = (module S)

let run (module C : S) tr =
  let st =
    C.create ~threads:(Trace.threads tr) ~locks:(Trace.locks tr)
      ~vars:(Trace.vars tr)
  in
  let n = Trace.length tr in
  let rec go i =
    if i >= n then None
    else
      match C.feed st (Trace.get tr i) with
      | Some v -> Some v
      | None -> go (i + 1)
  in
  go 0

let run_events (module C : S) ~threads ~locks ~vars events =
  let st = C.create ~threads ~locks ~vars in
  let rec go events =
    match Seq.uncons events with
    | None -> None
    | Some (e, rest) -> (
      match C.feed st e with Some v -> Some v | None -> go rest)
  in
  go events

let is_serializable checker tr = Option.is_none (run checker tr)

let run_arena (module C : S) ~threads ~locks ~vars arena =
  let st = C.create ~threads ~locks ~vars in
  let cur = Packed.Cursor.of_arena arena in
  let rec go () =
    let w = Packed.Cursor.next cur in
    if w < 0 then None
    else match C.feed_packed st w with Some v -> Some v | None -> go ()
  in
  go ()
