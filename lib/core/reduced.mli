(** AeroDrome, Algorithm 2: the read-clock reduction.

    Instead of one read clock per (thread, variable) pair, this variant
    keeps two clocks per variable (Section 4.3 / Appendix C.1):

    - [R_x], maintaining [⊔_u R_{u,x}], used to update the writer's clock;
    - [hR_x], maintaining [⊔_u R_{u,x}\[0/u\]], used for the write-vs-read
      violation check.

    Space drops from [O(|Thr|·V)] clocks to [O(V)].

    Deviation from the paper's pseudocode: the printed Algorithm 2
    {e assigns} [R_x := C_t] and [hR_x := C_t\[0/t\]] at a read, which
    forgets the timestamps of earlier readers in other threads and misses
    violations they participate in (e.g. two concurrent reader transactions
    followed by a writer that races only with the first).  Appendix C.1's
    own derivation maintains the {e joins} [⊔_u R_{u,x}], so we join:
    [R_x := R_x ⊔ C_t] and [hR_x := hR_x ⊔ C_t\[0/t\]].  The regression is
    covered by a unit test that fails under the assignment semantics. *)

include Checker.S

(** {1 Introspection} *)

val thread_clock : t -> int -> Vclock.Vtime.t
val begin_clock : t -> int -> Vclock.Vtime.t
val lock_clock : t -> int -> Vclock.Vtime.t
val write_clock : t -> int -> Vclock.Vtime.t

val read_clock_joined : t -> int -> Vclock.Vtime.t
(** Current [R_x = ⊔_u R_{u,x}]. *)

val read_clock_check : t -> int -> Vclock.Vtime.t
(** Current [hR_x = ⊔_u R_{u,x}\[0/u\]]. *)

val metrics : t -> Obs.Snapshot.t
(** Current reading of this instance's {!Cmetrics} registry. *)
