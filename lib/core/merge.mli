(** Cut planning and verdict reconciliation for sharded checking.

    The sharded runner ({!Parallel.Shard} via {!Analysis.Runner})
    partitions a packed arena into contiguous chunks and runs an
    independent speculative {!Opt} checker from the empty (⊥) clock
    state on each.  A speculative run is {e byte-identical} to the
    sequential checker over the same range exactly when its entry cut is
    {b globally quiescent} — no thread has an open transaction at the
    cut (DESIGN.md §15 gives the argument and the counterexamples for
    non-quiescent cuts).  Quiescence is a property of the event text
    alone — a per-thread transaction-depth frontier, independent of any
    clock state — so speculation is validated {e before} the parallel
    phase: one cheap opcode/tid scan computes the boundary summary at
    every candidate cut, accepted cuts become shard entries, and the
    events of rejected cuts are replayed as the tail of the preceding
    shard instead of running on their own domain.

    The planner's boundary summary per cut is the per-thread depth
    vector; an accepted cut certifies the all-zero frontier, which is
    what makes the ⊥ clock seed exact.  Violation indices of accepted
    chunks are local to the chunk and rebased by {!reconcile}. *)

open Traces

type plan = {
  cuts : int array;
      (** entry position of each shard chunk, strictly increasing;
          [cuts.(0) = 0].  Chunk [i] covers
          [cuts.(i) .. cuts.(i+1) - 1] (the last chunk runs to the end
          of the arena). *)
  targets : int;  (** interior cut candidates requested *)
  hits : int;  (** candidates realized as quiescent cuts *)
  misses : int;
      (** candidates rejected — no quiescent position within the window
          (auto) or a forced position with open transactions *)
  replayed_events : int;
      (** events that run as the tail of the preceding shard because
          their own cut was rejected *)
}

val plan :
  threads:int -> shards:int -> ?window:int -> ?cuts:int list ->
  Packed.Arena.t -> plan
(** Scan the arena once and choose shard entry cuts.

    Without [cuts], the candidates are the [shards - 1] equidistant
    split positions, each snapped to the nearest globally quiescent
    position within [window] events (default: an eighth of the chunk
    length); a candidate with no quiescent position in its window is a
    miss.  With [cuts] (the test hook for adversarial boundaries), the
    given positions are used verbatim with no snapping: a forced cut is
    accepted only if it is itself quiescent.  Either way every accepted
    cut is quiescent, so every planned chunk is exact by construction;
    rejected candidates surface as [misses] / [replayed_events].

    The scan costs one opcode/tid decode per event — no clocks, no
    allocation beyond the depth array. *)

val bounds : plan -> total:int -> (int * int) array
(** [(start, stop)] of each chunk, [stop] exclusive; [total] is the
    arena length. *)

val reconcile : (int * Violation.t option) array -> Violation.t option
(** [(base, local_violation)] per chunk in trace order: the first
    chunk reporting a violation wins and its index is rebased from
    chunk-local to trace position ([base + index]).  Later chunks'
    verdicts are discarded — the sequential checker freezes at its
    first violation, so anything they report is unreachable
    sequentially. *)
