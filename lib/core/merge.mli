(** Boundary-summary cut planning for sharded single-trace checking.

    The planner partitions a packed arena into contiguous chunks for
    speculative per-chunk checking ({!Parallel.Shard}).  Unlike the
    quiescence-only planner it replaces, it accepts {e any} cut: each
    boundary carries a summary — the per-thread open-transaction depth
    vector and the taint of the open transactions' pre-cut accesses —
    from which the chunk checker is seeded ({!Opt.seed_boundary}) and
    from which the reconciliation pass derives the {e repair window},
    the span of events it must re-run against the true frontier
    because the seed cannot reproduce their outcomes (DESIGN.md §17):

    - no open transactions at the cut (globally quiescent): window 0;
    - open transactions that have accessed nothing since their
      outermost begin: window 0 — depth seeding is exact;
    - otherwise: the gap to the two-phase retirement horizon — every
      straddling transaction closes, then every transaction open at
      that moment closes too.  The clock components a seeded chunk is
      missing are all generations of transactions begun before the
      last straddler's close, and AeroDrome's violation checks are
      own-component epoch tests, so past that horizon no surviving
      surplus can flip a check.  A globally quiescent position closes
      every pending window at once, so the horizon never extends past
      the next one.

    Planning reads only the event text (depth and access counters per
    thread), never clock state, in a single pass over the arena. *)

type boundary = {
  cut : int;  (** arena position of the cut (before event [cut]) *)
  depths : int array;
      (** per-thread open-transaction depth at the cut; all zero iff
          the cut is globally quiescent *)
  window : int;
      (** repair window length: events from [cut] that reconciliation
          must re-run against the true frontier; [0] when seeding is
          exact *)
  tainted : int;
      (** boundary-tainted accesses: events the straddling open
          transactions performed before the cut, whose clock effects
          the seeded chunk cannot see *)
}

type plan = {
  boundaries : boundary array;
      (** chunk entry boundaries in increasing [cut] order; always
          starts with the origin ([cut = 0], no straddlers) *)
  targets : int;  (** equidistant (or forced) candidates considered *)
  quiescent : int;
      (** candidates that became window-0 cuts with no straddlers
          (quiescent at the cut, or snapped to a quiescent position) *)
  seamed : int;
      (** candidates cut mid-transaction, carrying a boundary summary *)
  tainted_events : int;  (** total tainted accesses across boundaries *)
  repair_events : int;
      (** planned repair total: window segments clipped against the
          covered frontier (window ends are monotone in cut order, so
          overlapping windows share rather than stack their events) *)
}

val trivial : threads:int -> plan
(** The single-chunk plan: one boundary at the origin. *)

val plan :
  threads:int -> shards:int -> ?cuts:int list -> Traces.Packed.Arena.t -> plan
(** [plan ~threads ~shards arena] places [shards - 1] equidistant
    cuts, snapping each to a nearby globally quiescent position when
    one exists (a free window-0 cut) and otherwise accepting the
    candidate position with its boundary summary.  [?cuts] forces
    exact cut positions instead (no snapping; out-of-range and
    duplicate positions are dropped) — the differential tests use it
    to pin cuts mid-transaction.  With [shards <= 1], an empty arena,
    or no surviving forced cut, returns {!trivial}. *)

val bounds : plan -> total:int -> (int * int) array
(** [bounds plan ~total] is the [(base, stop)] half-open chunk extent
    per boundary, partitioning [0..total). *)

type seam = {
  owner : int;
      (** index of the chunk whose checker repairs this seam: the
          nearest surviving predecessor, whose exact state reaches
          [from_] *)
  from_ : int;  (** repair segment start: the covered frontier at the cut *)
  upto : int;
      (** repair segment end ([max from_ (min total (cut + window))]);
          [upto = from_] means nothing to repair *)
  exact_from : int;
      (** first position from which this chunk's own speculative
          verdict is trusted; a chunk-local violation rebased below it
          must be confirmed by a repair *)
  survives : bool;
      (** whether this chunk's checker is consulted at all — false
          when its whole extent falls inside the repair horizon and is
          re-fed by the segment instead *)
}

val seams : plan -> total:int -> seam array
(** The left-to-right reconciliation fold of {!Parallel.Shard},
    precomputed from the plan alone — no chunk results needed.  Entry
    [0] is the trivial seam (chunk 0 is exact from the origin); entry
    [k >= 1] describes the seam at boundary [k].  Because segment
    extents, owners and survival are static, chunks may execute and
    repair out of order: a chunk performs the repairs it owns as soon
    as it retires, and the final verdict is the minimum-index
    candidate (DESIGN.md §18).  Exposed for {!Parallel.Shard} and the
    plan-invariant tests. *)
