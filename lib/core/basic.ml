open Traces
module AC = Vclock.Aclock

let name = "aerodrome-basic"

let nil = -1

(* Per-variable state: W_x plus the per-thread read row R_{t,x}, the row
   itself still allocated on the first read.  Rows and clocks are
   recycled when a variable is released at its last access. *)
type vstate = {
  bw : AC.t;  (* W_x: timestamp of the last w(x) *)
  mutable brow : AC.t option array;  (* R_{t,x}, [||] until the first read *)
  mutable blast_w : int;  (* lastWThr_x *)
  mutable btouch : int;
}

type t = {
  threads : int;
  locks : int;
  vars : int;
  c : AC.t array;  (* C_t: timestamp of thread t's last event *)
  cb : AC.t array;  (* C⊲_t: timestamp of thread t's last begin *)
  l : AC.t array;  (* L_ℓ: timestamp of the last rel(ℓ) *)
  v : vstate option array;  (* None: untouched, or released after last use *)
  last_rel_thr : int array;  (* lastRelThr_ℓ *)
  depth : int array;  (* begin/end nesting depth per thread *)
  pool : AC.Pool.t;
  mutable row_free : AC.t option array list;  (* recycled read rows *)
  reclaim : Reclaim.policy;
  mutable reclaimed : int;
  mutable next_sweep : int;
  mutable violation : Violation.t option;
  mutable processed : int;
  m : Cmetrics.t;
}

let register_reclaim_probes st =
  let reg = Cmetrics.registry st.m in
  Obs.Registry.probe reg "pool.hits" (fun () ->
      Obs.Snapshot.Int (AC.Pool.hits st.pool));
  Obs.Registry.probe reg "pool.misses" (fun () ->
      Obs.Snapshot.Int (AC.Pool.misses st.pool));
  Obs.Registry.probe reg "reclaim.states" (fun () ->
      Obs.Snapshot.Int st.reclaimed);
  Obs.Registry.probe reg "reclaim.collapsed" (fun () ->
      Obs.Snapshot.Int (AC.Pool.collapsed st.pool))

let create ~threads ~locks ~vars =
  let dim = max threads 1 in
  let reclaim = Reclaim.ambient () in
  let st =
    {
      threads = dim;
      locks;
      vars;
      c = Array.init dim (fun t -> AC.unit dim t);
      cb = Array.init dim (fun _ -> AC.bottom dim);
      l = Array.init (max locks 0) (fun _ -> AC.bottom dim);
      v = Array.make (max vars 0) None;
      last_rel_thr = Array.make (max locks 0) nil;
      depth = Array.make dim 0;
      pool = AC.Pool.create dim;
      row_free = [];
      reclaim;
      reclaimed = 0;
      next_sweep =
        (match reclaim with
        | Reclaim.Inactivity { horizon } -> horizon
        | Reclaim.Off | Reclaim.Oracle _ -> max_int);
      violation = None;
      processed = 0;
      m = Cmetrics.create ();
    }
  in
  (match reclaim with
  | Reclaim.Off -> ()
  | Reclaim.Oracle _ | Reclaim.Inactivity _ -> register_reclaim_probes st);
  st

let violation st = st.violation
let processed st = st.processed
let metrics st = Cmetrics.snapshot st.m

let active st t = st.depth.(t) > 0
let in_transaction = active

let vget st x =
  match Array.unsafe_get st.v x with
  | Some vs -> vs
  | None ->
    let vs =
      { bw = AC.Pool.alloc st.pool; brow = [||]; blast_w = nil; btouch = 0 }
    in
    st.v.(x) <- Some vs;
    vs

let release_var st x vs =
  AC.Pool.release st.pool vs.bw;
  let row = vs.brow in
  if row <> [||] then begin
    for u = 0 to Array.length row - 1 do
      match row.(u) with
      | Some clk ->
        AC.Pool.release st.pool clk;
        row.(u) <- None
      | None -> ()
    done;
    st.row_free <- row :: st.row_free
  end;
  st.v.(x) <- None;
  st.reclaimed <- st.reclaimed + 1

(* See [Opt.reclaim_after_access]. *)
let reclaim_after_access st x vs =
  match st.reclaim with
  | Reclaim.Off -> ()
  | Reclaim.Oracle lt ->
    if Lifetime.last_var lt x = st.processed - 1 then release_var st x vs
  | Reclaim.Inactivity _ -> vs.btouch <- st.processed

let sweep st =
  match st.reclaim with
  | Reclaim.Off | Reclaim.Oracle _ -> ()
  | Reclaim.Inactivity { horizon } ->
    let cutoff = st.processed - horizon in
    for x = 0 to Array.length st.v - 1 do
      match Array.unsafe_get st.v x with
      | Some vs when vs.btouch <= cutoff ->
        ignore (AC.Pool.collapse st.pool vs.bw);
        let row = vs.brow in
        for u = 0 to Array.length row - 1 do
          match row.(u) with
          | Some clk -> ignore (AC.Pool.collapse st.pool clk)
          | None -> ()
        done
      | Some _ | None -> ()
    done;
    for l = 0 to st.locks - 1 do
      ignore (AC.Pool.collapse st.pool st.l.(l))
    done;
    st.next_sweep <- st.processed + horizon

exception Found of Violation.site

(* checkAndGet(clk, t) of Algorithm 1: declare a violation if clk is
   ordered after the begin event of t's active transaction, otherwise join
   clk into C_t. *)
let check_and_get st clk t site =
  if active st t && AC.leq st.cb.(t) clk then raise (Found site);
  if Obs.on () then Cmetrics.vc_join st.m;
  AC.join_into ~into:st.c.(t) clk

let read_row st vs =
  if vs.brow = [||] then
    vs.brow <-
      (match st.row_free with
      | row :: rest ->
        st.row_free <- rest;
        row
      | [] -> Array.make st.threads None);
  vs.brow

let read_clock_ref st t vs =
  let row = read_row st vs in
  match row.(t) with
  | Some clk -> clk
  | None ->
    let clk = AC.Pool.alloc st.pool in
    row.(t) <- Some clk;
    clk

let handle_acquire st t l =
  if st.last_rel_thr.(l) <> t then
    check_and_get st st.l.(l) t Violation.At_acquire

let handle_release st t l =
  AC.assign ~into:st.l.(l) st.c.(t);
  st.last_rel_thr.(l) <- t

let handle_fork st t u =
  if Obs.on () then Cmetrics.vc_join st.m;
  AC.join_into ~into:st.c.(u) st.c.(t)

let handle_join st t u = check_and_get st st.c.(u) t Violation.At_join

let handle_read st t x =
  let vs = vget st x in
  if vs.blast_w <> t then
    check_and_get st vs.bw t Violation.At_read;
  AC.assign ~into:(read_clock_ref st t vs) st.c.(t);
  reclaim_after_access st x vs

let handle_write st t x =
  let vs = vget st x in
  if vs.blast_w <> t then
    check_and_get st vs.bw t Violation.At_write_vs_write;
  let row = vs.brow in
  for u = 0 to Array.length row - 1 do
    if u <> t then
      match row.(u) with
      | Some r_ux -> check_and_get st r_ux t Violation.At_write_vs_read
      | None -> ()
  done;
  AC.assign ~into:vs.bw st.c.(t);
  vs.blast_w <- t;
  reclaim_after_access st x vs

let handle_begin st t =
  st.depth.(t) <- st.depth.(t) + 1;
  if st.depth.(t) = 1 then begin
    if Obs.on () then Cmetrics.txn_begin st.m;
    AC.bump st.c.(t) t;
    AC.assign ~into:st.cb.(t) st.c.(t)
  end

(* End of an outermost transaction: propagate the transaction's final
   timestamp to every clock that knows its begin event (lines 38–46).
   Untouched variables read as ⊥ (never ⊒ an active begin clock), and
   released variables have no future access their refresh could feed, so
   both are skipped. *)
let handle_end st t =
  if st.depth.(t) > 0 then begin
    st.depth.(t) <- st.depth.(t) - 1;
    if st.depth.(t) = 0 then begin
      if Obs.on () then Cmetrics.txn_commit st.m;
      let cb_t = st.cb.(t) and c_t = st.c.(t) in
      for u = 0 to st.threads - 1 do
        if u <> t && AC.leq cb_t st.c.(u) then
          check_and_get st c_t u (Violation.At_end (Ids.Tid.of_int u))
      done;
      for l = 0 to st.locks - 1 do
        if AC.leq cb_t st.l.(l) then begin
          if Obs.on () then Cmetrics.vc_join st.m;
          AC.join_into ~into:st.l.(l) c_t
        end
      done;
      for x = 0 to Array.length st.v - 1 do
        match Array.unsafe_get st.v x with
        | None -> ()
        | Some vs ->
          if AC.leq cb_t vs.bw then begin
            if Obs.on () then Cmetrics.vc_join st.m;
            AC.join_into ~into:vs.bw c_t
          end;
          let row = vs.brow in
          if row <> [||] then
            for u = 0 to st.threads - 1 do
              match row.(u) with
              | Some r_ux when AC.leq cb_t r_ux -> AC.join_into ~into:r_ux c_t
              | Some _ | None -> ()
            done
      done
    end
  end

let feed st (e : Event.t) =
  match st.violation with
  | Some _ as v -> v
  | None -> (
    st.processed <- st.processed + 1;
    if st.processed >= st.next_sweep then sweep st;
    if Obs.on () then Cmetrics.count st.m e.op;
    let t = Ids.Tid.to_int e.thread in
    match
      (match e.op with
      | Event.Acquire l -> handle_acquire st t (Ids.Lid.to_int l)
      | Event.Release l -> handle_release st t (Ids.Lid.to_int l)
      | Event.Fork u -> handle_fork st t (Ids.Tid.to_int u)
      | Event.Join u -> handle_join st t (Ids.Tid.to_int u)
      | Event.Read x -> handle_read st t (Ids.Vid.to_int x)
      | Event.Write x -> handle_write st t (Ids.Vid.to_int x)
      | Event.Begin -> handle_begin st t
      | Event.End -> handle_end st t)
    with
    | () -> None
    | exception Found site ->
      let v = Violation.make ~index:(st.processed - 1) ~event:e ~site in
      if Obs.on () then Cmetrics.found_violation st.m (st.processed - 1);
      st.violation <- Some v;
      Some v)

(* The packed-word twin of [feed]: same handlers, ids straight from the
   bit slices, the boxed event materialized only at a violation. *)
let feed_packed st w =
  match st.violation with
  | Some _ as v -> v
  | None -> (
    st.processed <- st.processed + 1;
    if st.processed >= st.next_sweep then sweep st;
    if Obs.on () then Cmetrics.count_op st.m (Packed.opcode w);
    let t = Packed.tid w in
    let d = Packed.target w in
    match
      (let op = Packed.opcode w in
       if op = Packed.op_read then handle_read st t d
       else if op = Packed.op_write then handle_write st t d
       else if op = Packed.op_acquire then handle_acquire st t d
       else if op = Packed.op_release then handle_release st t d
       else if op = Packed.op_fork then handle_fork st t d
       else if op = Packed.op_join then handle_join st t d
       else if op = Packed.op_begin then handle_begin st t
       else handle_end st t)
    with
    | () -> None
    | exception Found site ->
      let e = Packed.to_event w in
      let v = Violation.make ~index:(st.processed - 1) ~event:e ~site in
      if Obs.on () then Cmetrics.found_violation st.m (st.processed - 1);
      st.violation <- Some v;
      Some v)

(* Introspection *)

let snapshot clk = Vclock.Vtime.of_list (AC.to_list clk)
let thread_clock st t = snapshot st.c.(t)
let begin_clock st t = snapshot st.cb.(t)
let lock_clock st l = snapshot st.l.(l)

let write_clock st x =
  match st.v.(x) with
  | Some vs -> snapshot vs.bw
  | None -> Vclock.Vtime.bottom st.threads

let read_clock st ~thread ~var =
  match st.v.(var) with
  | None -> Vclock.Vtime.bottom st.threads
  | Some vs ->
    let row = vs.brow in
    if row = [||] then Vclock.Vtime.bottom st.threads
    else (
      match row.(thread) with
      | Some clk -> snapshot clk
      | None -> Vclock.Vtime.bottom st.threads)
