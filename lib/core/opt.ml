open Traces
module AC = Vclock.Aclock

let name = "aerodrome"

let nil = -1

(* Per-variable clock state, allocated on first access and recycled
   through the pool.  Keeping W_x/R_x/hR_x and the lazy-update metadata
   in one record (instead of seven parallel dense arrays) is what lets a
   variable's whole footprint be released the moment it dies. *)
type vstate = {
  vw : AC.t;  (* W_x *)
  vr : AC.t;  (* R_x *)
  vhr : AC.t;  (* hR_x *)
  vstale_r : Iset.t;  (* Stale^r_x: readers not yet flushed into R_x *)
  mutable vlast_w : int;
  mutable vstale_w : bool;  (* Stale^w_x: is W_x represented by C_lastW? *)
  mutable vtouch : int;  (* processed-count of the last access (Inactivity) *)
}

type t = {
  threads : int;
  locks : int;
  vars : int;
  fast_checks : bool;
  faithful : bool;
  c : AC.t array;
  cb : AC.t array;
  l : AC.t array;
  v : vstate option array;  (* None: untouched, or released after last use *)
  last_rel_thr : int array;
  upd_r : Iset.t array;  (* UpdateSet^r_t *)
  upd_w : Iset.t array;  (* UpdateSet^w_t *)
  upd_l : Iset.t array;  (* locks whose clock may contain t's begin *)
  rel_locks : Iset.t array;  (* locks t last released (may be stale) *)
  depth : int array;
  (* Bitmask acceleration of [propagate_update_sets] (threads <= 62 only):
     [covers.(t)] caches {u | C⊲_u ⊑ C_t} as a bitmask, recomputed lazily
     when [covers_dirty] says C_t grew (C_t is monotone, so the cached
     mask stays exact in between) or some thread began a transaction
     (fresh C⊲_u).  [active_mask] has bit u set while u is inside an
     outermost transaction. *)
  masked : bool;
  covers : int array;
  covers_dirty : Bytes.t;
  mutable active_mask : int;
  cb_own : int array;  (* cb_own.(u) = C⊲_u(u), the only component the
                          fast checks read — flat for cache-friendliness *)
  seq : int array;  (* outermost-transaction sequence number per thread *)
  parent : (int * int) option array;  (* forking (thread, seq), per thread *)
  pool : AC.Pool.t;
  mutable iset_free : Iset.t list;  (* recycled Stale^r sets *)
  reclaim : Reclaim.policy;
  mutable reclaimed : int;  (* vstates released at their last access *)
  mutable next_sweep : int;  (* processed-count of the next inactivity sweep *)
  mutable violation : Violation.t option;
  mutable processed : int;
  m : Cmetrics.t;
}

let register_reclaim_probes st =
  let reg = Cmetrics.registry st.m in
  Obs.Registry.probe reg "pool.hits" (fun () ->
      Obs.Snapshot.Int (AC.Pool.hits st.pool));
  Obs.Registry.probe reg "pool.misses" (fun () ->
      Obs.Snapshot.Int (AC.Pool.misses st.pool));
  Obs.Registry.probe reg "reclaim.states" (fun () ->
      Obs.Snapshot.Int st.reclaimed);
  Obs.Registry.probe reg "reclaim.collapsed" (fun () ->
      Obs.Snapshot.Int (AC.Pool.collapsed st.pool))

let create_with ?(fast_checks = true) ?(faithful = false) ~threads ~locks
    ~vars () =
  let dim = max threads 1 in
  let reclaim = Reclaim.ambient () in
  let st =
    {
      threads = dim;
      locks;
      vars;
      fast_checks;
      faithful;
      c = Array.init dim (fun t -> AC.unit dim t);
      cb = Array.init dim (fun _ -> AC.bottom dim);
      l = Array.init (max locks 0) (fun _ -> AC.bottom dim);
      v = Array.make (max vars 0) None;
      last_rel_thr = Array.make (max locks 0) nil;
      upd_r = Array.init dim (fun _ -> Iset.create (max vars 1));
      upd_w = Array.init dim (fun _ -> Iset.create (max vars 1));
      upd_l = Array.init dim (fun _ -> Iset.create (max locks 1));
      rel_locks = Array.init dim (fun _ -> Iset.create (max locks 1));
      depth = Array.make dim 0;
      masked = dim <= 62;
      covers = Array.make dim 0;
      covers_dirty = Bytes.make dim '\001';
      active_mask = 0;
      cb_own = Array.make dim 0;
      seq = Array.make dim 0;
      parent = Array.make dim None;
      pool = AC.Pool.create dim;
      iset_free = [];
      reclaim;
      reclaimed = 0;
      next_sweep =
        (match reclaim with
        | Reclaim.Inactivity { horizon } -> horizon
        | Reclaim.Off | Reclaim.Oracle _ -> max_int);
      violation = None;
      processed = 0;
      m = Cmetrics.create ();
    }
  in
  (match reclaim with
  | Reclaim.Off -> ()
  | Reclaim.Oracle _ | Reclaim.Inactivity _ -> register_reclaim_probes st);
  st

let create ~threads ~locks ~vars = create_with ~threads ~locks ~vars ()
let metrics st = Cmetrics.snapshot st.m

let violation st = st.violation
let processed st = st.processed
let active st t = st.depth.(t) > 0

let vget st x =
  match Array.unsafe_get st.v x with
  | Some vs -> vs
  | None ->
    let vstale_r =
      match st.iset_free with
      | s :: rest ->
        st.iset_free <- rest;
        s
      | [] -> Iset.create st.threads
    in
    let vs =
      {
        vw = AC.Pool.alloc st.pool;
        vr = AC.Pool.alloc st.pool;
        vhr = AC.Pool.alloc st.pool;
        vstale_r;
        vlast_w = nil;
        vstale_w = false;
        vtouch = 0;
      }
    in
    st.v.(x) <- Some vs;
    vs

let release_var st x vs =
  AC.Pool.release st.pool vs.vw;
  AC.Pool.release st.pool vs.vr;
  AC.Pool.release st.pool vs.vhr;
  Iset.clear vs.vstale_r;
  st.iset_free <- vs.vstale_r :: st.iset_free;
  st.v.(x) <- None;
  st.reclaimed <- st.reclaimed + 1

(* Called after every successful read/write of [x].  Oracle: releasing at
   the recorded last access is exact — x is never accessed again, and the
   end-of-transaction drains skip released variables (their refreshes
   could only feed checks at later accesses of x, of which there are
   none).  Inactivity: just stamp the access; the sweep in [feed] demotes
   cold state. *)
let reclaim_after_access st x vs =
  match st.reclaim with
  | Reclaim.Off -> ()
  | Reclaim.Oracle lt ->
    if Lifetime.last_var lt x = st.processed - 1 then release_var st x vs
  | Reclaim.Inactivity _ -> vs.vtouch <- st.processed

(* Inactivity sweep: collapse the clocks of variables untouched for a full
   horizon (and of all locks) back to epoch form where their value allows
   it.  Pure representation change — no verdict or counter drift. *)
let sweep st =
  match st.reclaim with
  | Reclaim.Off | Reclaim.Oracle _ -> ()
  | Reclaim.Inactivity { horizon } ->
    let cutoff = st.processed - horizon in
    for x = 0 to Array.length st.v - 1 do
      match Array.unsafe_get st.v x with
      | Some vs when vs.vtouch <= cutoff ->
        ignore (AC.Pool.collapse st.pool vs.vw);
        ignore (AC.Pool.collapse st.pool vs.vr);
        ignore (AC.Pool.collapse st.pool vs.vhr)
      | Some _ | None -> ()
    done;
    for l = 0 to st.locks - 1 do
      ignore (AC.Pool.collapse st.pool st.l.(l))
    done;
    st.next_sweep <- st.processed + horizon

(* C⊲_t ⊑ clk, in O(1) when the whole-clock-join invariant allows it. *)
let begin_leq st t clk =
  if st.fast_checks then Array.unsafe_get st.cb_own t <= AC.unsafe_get clk t
  else AC.leq st.cb.(t) clk

(* C_t grew (or C⊲_t changed): the cached covers mask is stale. *)
let note_c_grew st t = Bytes.unsafe_set st.covers_dirty t '\001'

let join_c st t src =
  if Obs.on () then Cmetrics.vc_join st.m;
  if AC.join_into_grew ~into:st.c.(t) src then note_c_grew st t

(* {u | C⊲_u ⊑ C_t} as a bitmask, from cache when C_t has not grown since
   the last recomputation. *)
let covers_of st t =
  if Bytes.unsafe_get st.covers_dirty t <> '\000' then begin
    let m = ref 0 in
    let c_t = st.c.(t) in
    if st.fast_checks then
      for u = 0 to st.threads - 1 do
        if Array.unsafe_get st.cb_own u <= AC.unsafe_get c_t u then
          m := !m lor (1 lsl u)
      done
    else
      for u = 0 to st.threads - 1 do
        if begin_leq st u c_t then m := !m lor (1 lsl u)
      done;
    st.covers.(t) <- !m;
    Bytes.unsafe_set st.covers_dirty t '\000'
  end;
  st.covers.(t)

let rec ntz_loop x n = if x land 1 = 1 then n else ntz_loop (x lsr 1) (n + 1)
let ntz x = ntz_loop x 0

exception Found of Violation.site

(* checkAndGet(clk1, clk2, t) of Algorithm 3. *)
let check_and_get st clk1 clk2 t site =
  if active st t && begin_leq st t clk1 then raise (Found site);
  join_c st t clk2

(* The hR_x check compares only the t-component, independently of
   [fast_checks]: hR_x zeroes each reader's own component, so the full
   pointwise order is the wrong comparison for it (see Reduced). *)
let check_read_and_get st t vs site =
  if active st t && Array.unsafe_get st.cb_own t <= AC.unsafe_get vs.vhr t
  then raise (Found site);
  join_c st t vs.vr

(* After C_{of_} (the value just folded into W_x or R_x) grew the
   variable's clock, record x in the update set of every other active
   transaction the new value covers, so that transaction's end refreshes
   the clock too.  Algorithm 3 runs this loop at reads and writes only;
   running it at ends as well closes the transitive-ordering gap (see the
   .mli).

   Every call site passes the *calling thread's* clock, so with <= 62
   threads the scan collapses to iterating the set bits of the cached
   covers mask — usually none or one. *)
let propagate_update_sets st upd x ~of_ ~skip clk =
  if st.masked then begin
    let m = ref (covers_of st of_ land st.active_mask) in
    if skip >= 0 then m := !m land lnot (1 lsl skip);
    while !m <> 0 do
      Iset.add upd.(ntz !m) x;
      m := !m land (!m - 1)
    done
  end
  else begin
    (* Epoch fast path: while [clk] is flat, every component other than
       its owner's is zero, and an *active* transaction has C⊲_u(u) >= 1,
       so no other thread can satisfy [begin_leq] (in either check mode:
       the full pointwise order already fails at component [u]) — one
       check instead of a thread scan. *)
    let owner = AC.flat_owner clk in
    if owner >= 0 then begin
      let u = owner in
      if u <> skip && active st u && begin_leq st u clk then Iset.add upd.(u) x
    end
    else
      for u = 0 to st.threads - 1 do
        if u <> skip && active st u && begin_leq st u clk then
          Iset.add upd.(u) x
      done
  end

let handle_acquire st t l =
  if st.last_rel_thr.(l) <> t then
    check_and_get st st.l.(l) st.l.(l) t Violation.At_acquire

(* Record that [l]'s clock just took the value/growth [clk]: any active
   transaction whose begin [clk] covers must re-examine [l] at its end.
   This mirrors [propagate_update_sets] for variables and makes the end
   handlers O(locks touched) instead of O(locks).  Only exact under
   [fast_checks]: with the full pointwise order, C⊲_u ⊑ L_l can become
   true through a join combining components of the old L_l and [clk]
   without holding against either alone, so the Slow variant keeps the
   original whole-table scan at ends. *)
let propagate_lock_update st l ~of_ ~skip clk =
  if st.fast_checks then propagate_update_sets st st.upd_l l ~of_ ~skip clk

let handle_release st t l =
  AC.assign ~into:st.l.(l) st.c.(t);
  st.last_rel_thr.(l) <- t;
  Iset.add st.rel_locks.(t) l;
  propagate_lock_update st l ~of_:t ~skip:nil st.c.(t)

let handle_fork st t u =
  join_c st u st.c.(t);
  st.parent.(u) <- (if active st t then Some (t, st.seq.(t)) else None)

let handle_join st t u =
  check_and_get st st.c.(u) st.c.(u) t Violation.At_join

(* Check a read or write against the last write: against the writer's live
   clock while its transaction is active (W_x stale), against the
   materialized W_x otherwise. *)
let check_vs_last_write st t vs site =
  if vs.vlast_w <> t then begin
    if vs.vstale_w then begin
      let wt = vs.vlast_w in
      check_and_get st st.c.(wt) st.c.(wt) t site
    end
    else check_and_get st vs.vw vs.vw t site
  end

let handle_read st t x =
  let vs = vget st x in
  check_vs_last_write st t vs Violation.At_read;
  if active st t || st.faithful then begin
    Iset.add vs.vstale_r t;
    (* Algorithm 3 lines 34–36: every covered active transaction must
       refresh R_x at its end; the reader's own transaction qualifies. *)
    propagate_update_sets st st.upd_r x ~of_:t ~skip:nil st.c.(t)
  end
  else begin
    (* Unary read: update eagerly.  The printed algorithm leaves it in
       Stale^r_x, where a later flush would use this thread's clock as
       inflated by its subsequent transactions — a false positive. *)
    AC.join_into ~into:vs.vr st.c.(t);
    AC.join_into_zeroed ~into:vs.vhr st.c.(t) t;
    propagate_update_sets st st.upd_r x ~of_:t ~skip:nil st.c.(t)
  end;
  reclaim_after_access st x vs

let flush_stale_readers st vs =
  Iset.drain
    (fun u ->
      if Obs.on () then Cmetrics.vc_joins_add st.m 2;
      AC.join_into ~into:vs.vr st.c.(u);
      AC.join_into_zeroed ~into:vs.vhr st.c.(u) u)
    vs.vstale_r

let handle_write st t x =
  let vs = vget st x in
  check_vs_last_write st t vs Violation.At_write_vs_write;
  if Obs.on () then Cmetrics.observe_stale_readers st.m (Iset.size vs.vstale_r);
  flush_stale_readers st vs;
  check_read_and_get st t vs Violation.At_write_vs_read;
  if active st t || st.faithful then vs.vstale_w <- true
  else begin
    (* Unary write: materialize eagerly (same rationale as unary reads). *)
    AC.assign ~into:vs.vw st.c.(t);
    vs.vstale_w <- false
  end;
  vs.vlast_w <- t;
  propagate_update_sets st st.upd_w x ~of_:t ~skip:nil st.c.(t);
  reclaim_after_access st x vs

let handle_begin st t =
  st.depth.(t) <- st.depth.(t) + 1;
  if st.depth.(t) = 1 then begin
    if Obs.on () then Cmetrics.txn_begin st.m;
    st.seq.(t) <- st.seq.(t) + 1;
    AC.bump st.c.(t) t;
    AC.assign ~into:st.cb.(t) st.c.(t);
    st.cb_own.(t) <- AC.unsafe_get st.cb.(t) t;
    if st.masked then begin
      st.active_mask <- st.active_mask lor (1 lsl t);
      (* a fresh C⊲_t invalidates bit t of every cached covers mask (and
         C_t grew, invalidating t's own) *)
      Bytes.fill st.covers_dirty 0 st.threads '\001'
    end
  end

let parent_alive st t =
  match st.parent.(t) with
  | None -> false
  | Some (p, s) -> st.depth.(p) > 0 && st.seq.(p) = s

(* Garbage-collection test.  The printed Algorithm 3 keeps a completing
   transaction iff the forking transaction is still alive or the thread's
   clock changed during the transaction.  That under-approximates "has an
   incoming edge" in two ways: an edge from a transaction whose knowledge
   this thread had already absorbed changes nothing in the clock, and a
   program-order edge from the thread's own earlier (kept) transaction is
   invisible to both tests — in either case the transaction is wrongly
   collected and a later cycle through it is missed.

   The sound criterion used here: keep the transaction iff its clock
   contains the begin of some {e other} thread's still-active transaction.
   Any future cycle through the completing transaction must route through a
   currently-active foreign transaction W (edges into already-completed
   transactions can no longer form), and the frozen part of such a cycle
   has already carried C⊲_W into this thread's clock, so the test is a
   sound over-approximation; it also subsumes the alive-parent case, since
   a fork performed inside an active transaction transfers that
   transaction's begin to the child.  [faithful] reproduces the printed
   behaviour. *)
let has_incoming_edge st t =
  if st.faithful then
    parent_alive st t || not (AC.equal_except st.cb.(t) st.c.(t) t)
  else begin
    let c_t = st.c.(t) in
    let rec knows_active_foreign u =
      u < st.threads
      && ((u <> t && st.depth.(u) > 0
           && AC.get c_t u >= AC.get st.cb.(u) u)
         || knows_active_foreign (u + 1))
    in
    knows_active_foreign 0
  end

(* The end-of-transaction drains skip variables whose state was released
   at their last access: a refresh of a dead variable's clocks could only
   feed a check at a later access of that variable, and there are none.
   (These joins are uncounted in the seed code too, so the skip leaves
   every metric counter unchanged.) *)
let end_with_incoming_edge st t =
  let c_t = st.c.(t) in
  for u = 0 to st.threads - 1 do
    if u <> t && begin_leq st t st.c.(u) then
      check_and_get st c_t c_t u (Violation.At_end (Ids.Tid.of_int u))
  done;
  (* Refresh the lock clocks the transaction reached.  [upd_l.(t)] holds
     every lock for which [begin_leq] may hold (entries can be stale — a
     later release overwrites L_l — hence the re-check); the Slow variant
     scans the whole table, see [propagate_lock_update]. *)
  if st.fast_checks then begin
    if Obs.on () then Cmetrics.observe_lock_updates st.m (Iset.size st.upd_l.(t));
    Iset.drain
      (fun l ->
        if begin_leq st t st.l.(l) then begin
          if Obs.on () then Cmetrics.vc_join st.m;
          AC.join_into ~into:st.l.(l) c_t;
          propagate_lock_update st l ~of_:t ~skip:t c_t
        end)
      st.upd_l.(t)
  end
  else
    for l = 0 to st.locks - 1 do
      if begin_leq st t st.l.(l) then AC.join_into ~into:st.l.(l) c_t
    done;
  Iset.drain
    (fun x ->
      match Array.unsafe_get st.v x with
      | None -> ()
      | Some vs ->
        if (not vs.vstale_w) || vs.vlast_w = t then begin
          AC.join_into ~into:vs.vw c_t;
          if not st.faithful then
            propagate_update_sets st st.upd_w x ~of_:t ~skip:t c_t
        end;
        if vs.vlast_w = t then vs.vstale_w <- false)
    st.upd_w.(t);
  Iset.drain
    (fun x ->
      match Array.unsafe_get st.v x with
      | None -> ()
      | Some vs ->
        AC.join_into ~into:vs.vr c_t;
        AC.join_into_zeroed ~into:vs.vhr c_t t;
        Iset.remove vs.vstale_r t;
        if not st.faithful then
          propagate_update_sets st st.upd_r x ~of_:t ~skip:t c_t)
    st.upd_r.(t)

let end_garbage_collect st t =
  Iset.drain
    (fun x ->
      match Array.unsafe_get st.v x with
      | None -> ()
      | Some vs -> Iset.remove vs.vstale_r t)
    st.upd_r.(t);
  Iset.drain
    (fun x ->
      match Array.unsafe_get st.v x with
      | None -> ()
      | Some vs ->
        if vs.vlast_w = t then begin
          vs.vstale_w <- false;
          vs.vlast_w <- nil
        end)
    st.upd_w.(t);
  Iset.drain (fun _ -> ()) st.upd_l.(t);
  Iset.drain
    (fun l -> if st.last_rel_thr.(l) = t then st.last_rel_thr.(l) <- nil)
    st.rel_locks.(t)

let handle_end st t =
  if st.depth.(t) > 0 then begin
    st.depth.(t) <- st.depth.(t) - 1;
    if st.depth.(t) = 0 then begin
      if Obs.on () then Cmetrics.txn_commit st.m;
      if st.masked then st.active_mask <- st.active_mask land lnot (1 lsl t);
      if has_incoming_edge st t then end_with_incoming_edge st t
      else end_garbage_collect st t
    end
  end

(* Seed a fresh checker with a cut's boundary summary (Merge.boundary):
   each straddling thread re-enters its open transaction exactly as
   [handle_begin] would — depth restored, own component bumped, begin
   clock assigned, marked active — without counting a transaction begin
   (the Begin event itself belongs to the chunk that contains it, which
   keeps the merged per-chunk counters exact).  The bump aligns the
   thread's transaction generation with the sequential checker's: every
   violation check compares a clock component against the checking
   thread's begin epoch, so outcome equivalence is a per-generation
   property (DESIGN.md §17). *)
let seed_boundary st depths =
  if st.processed <> 0 then
    invalid_arg "Opt.seed_boundary: checker already fed";
  let n = min (Array.length depths) st.threads in
  for t = 0 to n - 1 do
    if depths.(t) > 0 then begin
      st.depth.(t) <- depths.(t);
      st.seq.(t) <- st.seq.(t) + 1;
      AC.bump st.c.(t) t;
      AC.assign ~into:st.cb.(t) st.c.(t);
      st.cb_own.(t) <- AC.unsafe_get st.cb.(t) t;
      if st.masked then st.active_mask <- st.active_mask lor (1 lsl t)
    end
  done;
  Bytes.fill st.covers_dirty 0 st.threads '\001'

let feed st (e : Event.t) =
  match st.violation with
  | Some _ as v -> v
  | None -> (
    st.processed <- st.processed + 1;
    if st.processed >= st.next_sweep then sweep st;
    if Obs.on () then Cmetrics.count st.m e.op;
    let t = Ids.Tid.to_int e.thread in
    match
      (match e.op with
      | Event.Acquire l -> handle_acquire st t (Ids.Lid.to_int l)
      | Event.Release l -> handle_release st t (Ids.Lid.to_int l)
      | Event.Fork u -> handle_fork st t (Ids.Tid.to_int u)
      | Event.Join u -> handle_join st t (Ids.Tid.to_int u)
      | Event.Read x -> handle_read st t (Ids.Vid.to_int x)
      | Event.Write x -> handle_write st t (Ids.Vid.to_int x)
      | Event.Begin -> handle_begin st t
      | Event.End -> handle_end st t)
    with
    | () -> None
    | exception Found site ->
      let v = Violation.make ~index:(st.processed - 1) ~event:e ~site in
      if Obs.on () then Cmetrics.found_violation st.m (st.processed - 1);
      st.violation <- Some v;
      Some v)

(* The packed-word twin of [feed]: same handlers, ids straight from the
   bit slices, the boxed event materialized only at a violation. *)
let feed_packed st w =
  match st.violation with
  | Some _ as v -> v
  | None -> (
    st.processed <- st.processed + 1;
    if st.processed >= st.next_sweep then sweep st;
    if Obs.on () then Cmetrics.count_op st.m (Packed.opcode w);
    let t = Packed.tid w in
    let d = Packed.target w in
    match
      (let op = Packed.opcode w in
       if op = Packed.op_read then handle_read st t d
       else if op = Packed.op_write then handle_write st t d
       else if op = Packed.op_acquire then handle_acquire st t d
       else if op = Packed.op_release then handle_release st t d
       else if op = Packed.op_fork then handle_fork st t d
       else if op = Packed.op_join then handle_join st t d
       else if op = Packed.op_begin then handle_begin st t
       else handle_end st t)
    with
    | () -> None
    | exception Found site ->
      let e = Packed.to_event w in
      let v = Violation.make ~index:(st.processed - 1) ~event:e ~site in
      if Obs.on () then Cmetrics.found_violation st.m (st.processed - 1);
      st.violation <- Some v;
      Some v)

module Faithful : Checker.S = struct
  type nonrec t = t

  let name = "aerodrome-faithful"

  let create ~threads ~locks ~vars =
    create_with ~faithful:true ~threads ~locks ~vars ()

  let feed = feed
  let feed_packed = feed_packed
  let violation = violation
  let processed = processed
end

module Slow : Checker.S = struct
  type nonrec t = t

  let name = "aerodrome-slowcheck"

  let create ~threads ~locks ~vars =
    create_with ~fast_checks:false ~threads ~locks ~vars ()

  let feed = feed
  let feed_packed = feed_packed
  let violation = violation
  let processed = processed
end

let faithful_checker : Checker.t = (module Faithful)
let slow_checker : Checker.t = (module Slow)

(* Introspection.  Untouched (or released) variables read as ⊥/absent,
   matching the seed's pre-allocated-⊥ answers for untouched ones. *)

let snapshot clk = Vclock.Vtime.of_list (AC.to_list clk)
let bottom_time st = snapshot (AC.bottom st.threads)
let thread_clock st t = snapshot st.c.(t)
let begin_clock st t = snapshot st.cb.(t)

let write_clock st x =
  match st.v.(x) with Some vs -> snapshot vs.vw | None -> bottom_time st

let read_clock_joined st x =
  match st.v.(x) with Some vs -> snapshot vs.vr | None -> bottom_time st

let read_clock_check st x =
  match st.v.(x) with Some vs -> snapshot vs.vhr | None -> bottom_time st

let write_is_stale st x =
  match st.v.(x) with Some vs -> vs.vstale_w | None -> false

let last_writer st x =
  match st.v.(x) with
  | Some vs when vs.vlast_w <> nil -> Some vs.vlast_w
  | Some _ | None -> None

let in_transaction st t = active st t
