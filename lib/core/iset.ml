(* Small integer sets over a fixed universe [0..n-1] with O(1) amortized
   add/remove/clear: a push-only member array plus a byte map.  [remove]
   only clears the membership byte (lazy deletion); the stale array entry
   is swept by the next [drain] or [clear], so no operation ever scans the
   member list looking for one element.  When removals leave the member
   array more than half dead, it is compacted in place (preserving
   insertion order, so [drain] sequences are unaffected) — without this a
   long-lived set that keeps a few live members through many add/remove
   cycles would re-scan its dead entries at every drain forever. *)

type t = {
  mutable elems : int array;
  mutable n : int;
  mutable live : int; (* exact member count; n over-approximates it *)
  mem : Bytes.t;
}

let compact_min = 16

let create n =
  { elems = Array.make 16 0; n = 0; live = 0; mem = Bytes.make (max n 1) '\000' }

let mem s i = Bytes.unsafe_get s.mem i <> '\000'
let size s = s.live

let push s i =
  if s.n = Array.length s.elems then begin
    let bigger = Array.make (2 * s.n) 0 in
    Array.blit s.elems 0 bigger 0 s.n;
    s.elems <- bigger
  end;
  Array.unsafe_set s.elems s.n i;
  s.n <- s.n + 1

let add s i =
  if not (mem s i) then begin
    Bytes.unsafe_set s.mem i '\001';
    s.live <- s.live + 1;
    push s i
  end

(* Keep the live entries, in order, at the front. *)
let compact s =
  let k = ref 0 in
  for j = 0 to s.n - 1 do
    let i = Array.unsafe_get s.elems j in
    if mem s i then begin
      Array.unsafe_set s.elems !k i;
      incr k
    end
  done;
  s.n <- !k

let remove s i =
  if mem s i then begin
    Bytes.unsafe_set s.mem i '\000';
    s.live <- s.live - 1;
    if s.n >= compact_min && 2 * s.live < s.n then compact s
  end

(* Iterate the members and leave the set empty; entries invalidated by
   [remove] (and duplicates they enable) are skipped.  [f] must not add
   to the set being drained (the checkers only ever add to *other*
   threads' sets from inside a drain). *)
let drain f s =
  let n = s.n in
  s.n <- 0;
  for k = 0 to n - 1 do
    let i = Array.unsafe_get s.elems k in
    if mem s i then begin
      Bytes.unsafe_set s.mem i '\000';
      s.live <- s.live - 1;
      f i
    end
  done

let clear s = drain (fun _ -> ()) s

let raw_length s = s.n
