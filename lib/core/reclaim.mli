(** State-reclamation policy, installed ambiently around checker creation.

    The checkers pre-allocate nothing per variable under reclamation:
    per-variable clock state is pooled ({!Vclock.Aclock.Pool}), allocated
    on first touch, and — depending on the policy — released at the
    variable's last access ([Oracle], exact) or demoted to epoch form
    after a period of inactivity ([Inactivity], heuristic, for streaming
    input where no last-use index exists).

    Like {!Obs.Scope}, the policy travels through domain-local storage
    rather than through {!Checker.S.create} (whose signature is frozen by
    the differential-reference seed copies): {!with_policy} installs it
    for the duration of a callback, and a checker's [create] reads
    {!ambient} once.  The policy is per-domain, matching the parallel
    runner's one-checker-per-worker layout. *)

type policy =
  | Off  (** Dense pre-allocated state, the pre-reclamation behaviour. *)
  | Oracle of Traces.Lifetime.t
      (** Release a variable's whole state at its recorded last access. *)
  | Inactivity of { horizon : int }
      (** No oracle: every [horizon] events, collapse the clock state of
          variables untouched for [horizon] events back to epoch form. *)

val default_horizon : int

val ambient : unit -> policy
(** The policy installed on the current domain ([Off] by default). *)

val with_policy : policy -> (unit -> 'a) -> 'a
(** Run the callback with the given ambient policy, restoring the
    previous one afterwards (also on exceptions). *)
