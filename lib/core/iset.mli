(** Small integer sets over a fixed universe [0..n-1], built for the
    checkers' update-set traffic: O(1) amortized add/remove, and a
    destructive {!drain} that visits the members in insertion order.

    Removal is lazy (a membership byte is cleared; the member-array entry
    stays until the next drain), but the array is compacted in place once
    more than half its entries are dead, so a long-lived set cycling
    through a few members never accumulates an unbounded dead tail. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0..n-1]. *)

val mem : t -> int -> bool

val size : t -> int
(** Exact member count. *)

val add : t -> int -> unit
(** No-op if already a member. *)

val remove : t -> int -> unit
(** No-op if not a member. *)

val drain : (int -> unit) -> t -> unit
(** [drain f s] calls [f] on every member in insertion order and leaves
    [s] empty.  [f] must not add to [s] itself (adding to other sets is
    fine). *)

val clear : t -> unit
(** Empty the set. *)

(**/**)

val raw_length : t -> int
(** Member-array length including dead entries — exposed so the unit
    tests can observe the compaction threshold. *)
