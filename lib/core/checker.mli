(** Common interface of the online atomicity checkers.

    A checker is created for known id domains and then fed events one at a
    time ({e single-pass, streaming}); it reports the first violation of
    conflict serializability and freezes, mirroring the paper's algorithms
    which exit on the first violation. *)

open Traces

module type S = sig
  type t

  val name : string
  (** Human-readable algorithm name, e.g. ["aerodrome"]. *)

  val create : threads:int -> locks:int -> vars:int -> t
  (** Fresh checker state for traces drawing ids from
      [0..threads-1] / [0..locks-1] / [0..vars-1]. *)

  val feed : t -> Event.t -> Violation.t option
  (** Process one event.  Returns [Some v] if this event (or an earlier
      one) triggered a violation; once a violation has been reported the
      checker is frozen and [feed] keeps returning it without processing
      further events. *)

  val feed_packed : t -> int -> Violation.t option
  (** {!feed} over a {!Traces.Packed} word — the zero-allocation entry
      the binary ingestion hot path uses.  Behaviorally identical to
      packing the word's event through [feed]; the flagship checkers
      dispatch natively on the bit slices, others unpack and delegate. *)

  val violation : t -> Violation.t option
  (** The stored first violation, if any. *)

  val processed : t -> int
  (** Number of events actually processed (violating event included). *)
end

type t = (module S)
(** A checker packaged as a first-class module. *)

val run : (module S) -> Trace.t -> Violation.t option
(** Feed an entire trace to a fresh checker (domain sizes from the trace). *)

val run_events :
  (module S) -> threads:int -> locks:int -> vars:int -> Event.t Seq.t ->
  Violation.t option
(** Streaming variant over an event sequence. *)

val is_serializable : (module S) -> Trace.t -> bool
(** [run] finds no violation. *)

val run_arena :
  (module S) -> threads:int -> locks:int -> vars:int -> Packed.Arena.t ->
  Violation.t option
(** Feed a packed arena through {!S.feed_packed} via a {!Packed.Cursor}. *)
