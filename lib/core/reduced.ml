open Traces
module AC = Vclock.Aclock

let name = "aerodrome-reduced"

let nil = -1

type t = {
  threads : int;
  locks : int;
  vars : int;
  c : AC.t array;
  cb : AC.t array;
  l : AC.t array;
  w : AC.t array;
  r : AC.t array;  (* R_x = ⊔_u R_{u,x} *)
  hr : AC.t array;  (* hR_x = ⊔_u R_{u,x}[0/u] *)
  last_rel_thr : int array;
  last_w_thr : int array;
  depth : int array;
  mutable violation : Violation.t option;
  mutable processed : int;
  m : Cmetrics.t;
}

let create ~threads ~locks ~vars =
  let dim = max threads 1 in
  {
    threads = dim;
    locks;
    vars;
    c = Array.init dim (fun t -> AC.unit dim t);
    cb = Array.init dim (fun _ -> AC.bottom dim);
    l = Array.init (max locks 0) (fun _ -> AC.bottom dim);
    w = Array.init (max vars 0) (fun _ -> AC.bottom dim);
    r = Array.init (max vars 0) (fun _ -> AC.bottom dim);
    hr = Array.init (max vars 0) (fun _ -> AC.bottom dim);
    last_rel_thr = Array.make (max locks 0) nil;
    last_w_thr = Array.make (max vars 0) nil;
    depth = Array.make dim 0;
    violation = None;
    processed = 0;
    m = Cmetrics.create ();
  }

let violation st = st.violation
let processed st = st.processed
let metrics st = Cmetrics.snapshot st.m
let active st t = st.depth.(t) > 0

exception Found of Violation.site

(* checkAndGet(clk1, clk2, t): check against clk1, join clk2 into C_t. *)
let check_and_get st clk1 clk2 t site =
  if active st t && AC.leq st.cb.(t) clk1 then raise (Found site);
  if Obs.on () then Cmetrics.vc_join st.m;
  AC.join_into ~into:st.c.(t) clk2

(* The check against hR_x must compare only the t-component: hR_x is the
   join of reader clocks with each reader's own component zeroed, so a full
   pointwise comparison spuriously fails whenever a reader's own history is
   part of C⊲_t (e.g. through a fork).  Appendix C.1 derives the check as
   C⊲_t(t) ≤ hR_x(t), equivalent — by the whole-clock-join invariant — to
   ∃u≠t. C⊲_t ⊑ R_{u,x}, which is Algorithm 1's check. *)
let check_read_and_get st t x site =
  if active st t && AC.get st.cb.(t) t <= AC.get st.hr.(x) t then
    raise (Found site);
  if Obs.on () then Cmetrics.vc_join st.m;
  AC.join_into ~into:st.c.(t) st.r.(x)

let handle_acquire st t l =
  if st.last_rel_thr.(l) <> t then
    check_and_get st st.l.(l) st.l.(l) t Violation.At_acquire

let handle_release st t l =
  AC.assign ~into:st.l.(l) st.c.(t);
  st.last_rel_thr.(l) <- t

let handle_fork st t u =
  if Obs.on () then Cmetrics.vc_join st.m;
  AC.join_into ~into:st.c.(u) st.c.(t)

let handle_join st t u =
  check_and_get st st.c.(u) st.c.(u) t Violation.At_join

let handle_read st t x =
  if st.last_w_thr.(x) <> t then
    check_and_get st st.w.(x) st.w.(x) t Violation.At_read;
  AC.join_into ~into:st.r.(x) st.c.(t);
  AC.join_into_zeroed ~into:st.hr.(x) st.c.(t) t

let handle_write st t x =
  if st.last_w_thr.(x) <> t then
    check_and_get st st.w.(x) st.w.(x) t Violation.At_write_vs_write;
  check_read_and_get st t x Violation.At_write_vs_read;
  AC.assign ~into:st.w.(x) st.c.(t);
  st.last_w_thr.(x) <- t

let handle_begin st t =
  st.depth.(t) <- st.depth.(t) + 1;
  if st.depth.(t) = 1 then begin
    if Obs.on () then Cmetrics.txn_begin st.m;
    AC.bump st.c.(t) t;
    AC.assign ~into:st.cb.(t) st.c.(t)
  end

let handle_end st t =
  if st.depth.(t) > 0 then begin
    st.depth.(t) <- st.depth.(t) - 1;
    if st.depth.(t) = 0 then begin
      if Obs.on () then Cmetrics.txn_commit st.m;
      let cb_t = st.cb.(t) and c_t = st.c.(t) in
      for u = 0 to st.threads - 1 do
        if u <> t && AC.leq cb_t st.c.(u) then
          check_and_get st c_t c_t u (Violation.At_end (Ids.Tid.of_int u))
      done;
      for l = 0 to st.locks - 1 do
        if AC.leq cb_t st.l.(l) then begin
          if Obs.on () then Cmetrics.vc_join st.m;
          AC.join_into ~into:st.l.(l) c_t
        end
      done;
      for x = 0 to st.vars - 1 do
        if AC.leq cb_t st.w.(x) then begin
          if Obs.on () then Cmetrics.vc_join st.m;
          AC.join_into ~into:st.w.(x) c_t
        end;
        if AC.leq cb_t st.r.(x) then begin
          if Obs.on () then Cmetrics.vc_joins_add st.m 2;
          AC.join_into ~into:st.r.(x) c_t;
          AC.join_into_zeroed ~into:st.hr.(x) c_t t
        end
      done
    end
  end

let feed st (e : Event.t) =
  match st.violation with
  | Some _ as v -> v
  | None -> (
    st.processed <- st.processed + 1;
    if Obs.on () then Cmetrics.count st.m e.op;
    let t = Ids.Tid.to_int e.thread in
    match
      (match e.op with
      | Event.Acquire l -> handle_acquire st t (Ids.Lid.to_int l)
      | Event.Release l -> handle_release st t (Ids.Lid.to_int l)
      | Event.Fork u -> handle_fork st t (Ids.Tid.to_int u)
      | Event.Join u -> handle_join st t (Ids.Tid.to_int u)
      | Event.Read x -> handle_read st t (Ids.Vid.to_int x)
      | Event.Write x -> handle_write st t (Ids.Vid.to_int x)
      | Event.Begin -> handle_begin st t
      | Event.End -> handle_end st t)
    with
    | () -> None
    | exception Found site ->
      let v = Violation.make ~index:(st.processed - 1) ~event:e ~site in
      if Obs.on () then Cmetrics.found_violation st.m (st.processed - 1);
      st.violation <- Some v;
      Some v)

let snapshot clk = Vclock.Vtime.of_list (AC.to_list clk)
let thread_clock st t = snapshot st.c.(t)
let begin_clock st t = snapshot st.cb.(t)
let lock_clock st l = snapshot st.l.(l)
let write_clock st x = snapshot st.w.(x)
let read_clock_joined st x = snapshot st.r.(x)
let read_clock_check st x = snapshot st.hr.(x)
