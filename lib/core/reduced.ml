open Traces
module AC = Vclock.Aclock

let name = "aerodrome-reduced"

let nil = -1

(* Per-variable clock state, allocated on first access and recycled
   through the pool (see {!Opt} — same layout without the lazy-update
   metadata). *)
type vstate = {
  rw : AC.t;  (* W_x *)
  rr : AC.t;  (* R_x = ⊔_u R_{u,x} *)
  rhr : AC.t;  (* hR_x = ⊔_u R_{u,x}[0/u] *)
  mutable rlast_w : int;
  mutable rtouch : int;
}

type t = {
  threads : int;
  locks : int;
  vars : int;
  c : AC.t array;
  cb : AC.t array;
  l : AC.t array;
  v : vstate option array;  (* None: untouched, or released after last use *)
  last_rel_thr : int array;
  depth : int array;
  pool : AC.Pool.t;
  reclaim : Reclaim.policy;
  mutable reclaimed : int;
  mutable next_sweep : int;
  mutable violation : Violation.t option;
  mutable processed : int;
  m : Cmetrics.t;
}

let register_reclaim_probes st =
  let reg = Cmetrics.registry st.m in
  Obs.Registry.probe reg "pool.hits" (fun () ->
      Obs.Snapshot.Int (AC.Pool.hits st.pool));
  Obs.Registry.probe reg "pool.misses" (fun () ->
      Obs.Snapshot.Int (AC.Pool.misses st.pool));
  Obs.Registry.probe reg "reclaim.states" (fun () ->
      Obs.Snapshot.Int st.reclaimed);
  Obs.Registry.probe reg "reclaim.collapsed" (fun () ->
      Obs.Snapshot.Int (AC.Pool.collapsed st.pool))

let create ~threads ~locks ~vars =
  let dim = max threads 1 in
  let reclaim = Reclaim.ambient () in
  let st =
    {
      threads = dim;
      locks;
      vars;
      c = Array.init dim (fun t -> AC.unit dim t);
      cb = Array.init dim (fun _ -> AC.bottom dim);
      l = Array.init (max locks 0) (fun _ -> AC.bottom dim);
      v = Array.make (max vars 0) None;
      last_rel_thr = Array.make (max locks 0) nil;
      depth = Array.make dim 0;
      pool = AC.Pool.create dim;
      reclaim;
      reclaimed = 0;
      next_sweep =
        (match reclaim with
        | Reclaim.Inactivity { horizon } -> horizon
        | Reclaim.Off | Reclaim.Oracle _ -> max_int);
      violation = None;
      processed = 0;
      m = Cmetrics.create ();
    }
  in
  (match reclaim with
  | Reclaim.Off -> ()
  | Reclaim.Oracle _ | Reclaim.Inactivity _ -> register_reclaim_probes st);
  st

let violation st = st.violation
let processed st = st.processed
let metrics st = Cmetrics.snapshot st.m
let active st t = st.depth.(t) > 0

let vget st x =
  match Array.unsafe_get st.v x with
  | Some vs -> vs
  | None ->
    let vs =
      {
        rw = AC.Pool.alloc st.pool;
        rr = AC.Pool.alloc st.pool;
        rhr = AC.Pool.alloc st.pool;
        rlast_w = nil;
        rtouch = 0;
      }
    in
    st.v.(x) <- Some vs;
    vs

let release_var st x vs =
  AC.Pool.release st.pool vs.rw;
  AC.Pool.release st.pool vs.rr;
  AC.Pool.release st.pool vs.rhr;
  st.v.(x) <- None;
  st.reclaimed <- st.reclaimed + 1

(* See [Opt.reclaim_after_access]: under an oracle the release is exact
   (no later access reads the variable's state; the end-of-transaction
   scan skips released variables, whose refreshes would be dead writes —
   the skipped joins are the memory traffic reclamation eliminates). *)
let reclaim_after_access st x vs =
  match st.reclaim with
  | Reclaim.Off -> ()
  | Reclaim.Oracle lt ->
    if Lifetime.last_var lt x = st.processed - 1 then release_var st x vs
  | Reclaim.Inactivity _ -> vs.rtouch <- st.processed

let sweep st =
  match st.reclaim with
  | Reclaim.Off | Reclaim.Oracle _ -> ()
  | Reclaim.Inactivity { horizon } ->
    let cutoff = st.processed - horizon in
    for x = 0 to Array.length st.v - 1 do
      match Array.unsafe_get st.v x with
      | Some vs when vs.rtouch <= cutoff ->
        ignore (AC.Pool.collapse st.pool vs.rw);
        ignore (AC.Pool.collapse st.pool vs.rr);
        ignore (AC.Pool.collapse st.pool vs.rhr)
      | Some _ | None -> ()
    done;
    for l = 0 to st.locks - 1 do
      ignore (AC.Pool.collapse st.pool st.l.(l))
    done;
    st.next_sweep <- st.processed + horizon

exception Found of Violation.site

(* checkAndGet(clk1, clk2, t): check against clk1, join clk2 into C_t. *)
let check_and_get st clk1 clk2 t site =
  if active st t && AC.leq st.cb.(t) clk1 then raise (Found site);
  if Obs.on () then Cmetrics.vc_join st.m;
  AC.join_into ~into:st.c.(t) clk2

(* The check against hR_x must compare only the t-component: hR_x is the
   join of reader clocks with each reader's own component zeroed, so a full
   pointwise comparison spuriously fails whenever a reader's own history is
   part of C⊲_t (e.g. through a fork).  Appendix C.1 derives the check as
   C⊲_t(t) ≤ hR_x(t), equivalent — by the whole-clock-join invariant — to
   ∃u≠t. C⊲_t ⊑ R_{u,x}, which is Algorithm 1's check. *)
let check_read_and_get st t vs site =
  if active st t && AC.get st.cb.(t) t <= AC.get vs.rhr t then
    raise (Found site);
  if Obs.on () then Cmetrics.vc_join st.m;
  AC.join_into ~into:st.c.(t) vs.rr

let handle_acquire st t l =
  if st.last_rel_thr.(l) <> t then
    check_and_get st st.l.(l) st.l.(l) t Violation.At_acquire

let handle_release st t l =
  AC.assign ~into:st.l.(l) st.c.(t);
  st.last_rel_thr.(l) <- t

let handle_fork st t u =
  if Obs.on () then Cmetrics.vc_join st.m;
  AC.join_into ~into:st.c.(u) st.c.(t)

let handle_join st t u =
  check_and_get st st.c.(u) st.c.(u) t Violation.At_join

let handle_read st t x =
  let vs = vget st x in
  if vs.rlast_w <> t then
    check_and_get st vs.rw vs.rw t Violation.At_read;
  AC.join_into ~into:vs.rr st.c.(t);
  AC.join_into_zeroed ~into:vs.rhr st.c.(t) t;
  reclaim_after_access st x vs

let handle_write st t x =
  let vs = vget st x in
  if vs.rlast_w <> t then
    check_and_get st vs.rw vs.rw t Violation.At_write_vs_write;
  check_read_and_get st t vs Violation.At_write_vs_read;
  AC.assign ~into:vs.rw st.c.(t);
  vs.rlast_w <- t;
  reclaim_after_access st x vs

let handle_begin st t =
  st.depth.(t) <- st.depth.(t) + 1;
  if st.depth.(t) = 1 then begin
    if Obs.on () then Cmetrics.txn_begin st.m;
    AC.bump st.c.(t) t;
    AC.assign ~into:st.cb.(t) st.c.(t)
  end

let handle_end st t =
  if st.depth.(t) > 0 then begin
    st.depth.(t) <- st.depth.(t) - 1;
    if st.depth.(t) = 0 then begin
      if Obs.on () then Cmetrics.txn_commit st.m;
      let cb_t = st.cb.(t) and c_t = st.c.(t) in
      for u = 0 to st.threads - 1 do
        if u <> t && AC.leq cb_t st.c.(u) then
          check_and_get st c_t c_t u (Violation.At_end (Ids.Tid.of_int u))
      done;
      for l = 0 to st.locks - 1 do
        if AC.leq cb_t st.l.(l) then begin
          if Obs.on () then Cmetrics.vc_join st.m;
          AC.join_into ~into:st.l.(l) c_t
        end
      done;
      (* Untouched variables read as ⊥, which never satisfies
         [AC.leq cb_t] inside a transaction (cb_t(t) >= 1), so skipping
         [None] entries matches the dense scan; released variables skip
         dead refreshes. *)
      for x = 0 to Array.length st.v - 1 do
        match Array.unsafe_get st.v x with
        | None -> ()
        | Some vs ->
          if AC.leq cb_t vs.rw then begin
            if Obs.on () then Cmetrics.vc_join st.m;
            AC.join_into ~into:vs.rw c_t
          end;
          if AC.leq cb_t vs.rr then begin
            if Obs.on () then Cmetrics.vc_joins_add st.m 2;
            AC.join_into ~into:vs.rr c_t;
            AC.join_into_zeroed ~into:vs.rhr c_t t
          end
      done
    end
  end

let feed st (e : Event.t) =
  match st.violation with
  | Some _ as v -> v
  | None -> (
    st.processed <- st.processed + 1;
    if st.processed >= st.next_sweep then sweep st;
    if Obs.on () then Cmetrics.count st.m e.op;
    let t = Ids.Tid.to_int e.thread in
    match
      (match e.op with
      | Event.Acquire l -> handle_acquire st t (Ids.Lid.to_int l)
      | Event.Release l -> handle_release st t (Ids.Lid.to_int l)
      | Event.Fork u -> handle_fork st t (Ids.Tid.to_int u)
      | Event.Join u -> handle_join st t (Ids.Tid.to_int u)
      | Event.Read x -> handle_read st t (Ids.Vid.to_int x)
      | Event.Write x -> handle_write st t (Ids.Vid.to_int x)
      | Event.Begin -> handle_begin st t
      | Event.End -> handle_end st t)
    with
    | () -> None
    | exception Found site ->
      let v = Violation.make ~index:(st.processed - 1) ~event:e ~site in
      if Obs.on () then Cmetrics.found_violation st.m (st.processed - 1);
      st.violation <- Some v;
      Some v)

(* The packed-word twin of [feed]: same handlers, ids straight from the
   bit slices, the boxed event materialized only at a violation. *)
let feed_packed st w =
  match st.violation with
  | Some _ as v -> v
  | None -> (
    st.processed <- st.processed + 1;
    if st.processed >= st.next_sweep then sweep st;
    if Obs.on () then Cmetrics.count_op st.m (Packed.opcode w);
    let t = Packed.tid w in
    let d = Packed.target w in
    match
      (let op = Packed.opcode w in
       if op = Packed.op_read then handle_read st t d
       else if op = Packed.op_write then handle_write st t d
       else if op = Packed.op_acquire then handle_acquire st t d
       else if op = Packed.op_release then handle_release st t d
       else if op = Packed.op_fork then handle_fork st t d
       else if op = Packed.op_join then handle_join st t d
       else if op = Packed.op_begin then handle_begin st t
       else handle_end st t)
    with
    | () -> None
    | exception Found site ->
      let e = Packed.to_event w in
      let v = Violation.make ~index:(st.processed - 1) ~event:e ~site in
      if Obs.on () then Cmetrics.found_violation st.m (st.processed - 1);
      st.violation <- Some v;
      Some v)

let snapshot clk = Vclock.Vtime.of_list (AC.to_list clk)
let bottom_time st = snapshot (AC.bottom st.threads)
let thread_clock st t = snapshot st.c.(t)
let begin_clock st t = snapshot st.cb.(t)
let lock_clock st l = snapshot st.l.(l)

let write_clock st x =
  match st.v.(x) with Some vs -> snapshot vs.rw | None -> bottom_time st

let read_clock_joined st x =
  match st.v.(x) with Some vs -> snapshot vs.rr | None -> bottom_time st

let read_clock_check st x =
  match st.v.(x) with Some vs -> snapshot vs.rhr | None -> bottom_time st
