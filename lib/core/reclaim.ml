type policy =
  | Off
  | Oracle of Traces.Lifetime.t
  | Inactivity of { horizon : int }

let default_horizon = 65536

(* Ambient policy, like [Obs.Scope]: [Checker.S.create] cannot take extra
   arguments without widening the signature every seed copy implements,
   so the runner installs the policy in domain-local storage around the
   [create] call and the checkers read it there.  Per-domain, so parallel
   pool workers each see the policy installed on their own domain. *)
let key : policy ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref Off)

let ambient () = !(Domain.DLS.get key)

let with_policy p f =
  let cell = Domain.DLS.get key in
  let saved = !cell in
  cell := p;
  Fun.protect ~finally:(fun () -> cell := saved) f
