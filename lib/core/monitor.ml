open Traces

type stats = {
  events : int;
  reads : int;
  writes : int;
  syncs : int;
  transactions_started : int;
  transactions_completed : int;
  active_transactions : int;
}

type report = {
  violation : Violation.t;
  stats_at_detection : stats;
  thread_name : string;
  description : string;
}

(* The checker is held with its state as one packed value. *)
type packed = Packed : (module Checker.S with type t = 's) * 's -> packed

type t = {
  packed : packed;
  symbols : Trace.Symbols.t option;
  on_violation : report -> unit;
  depth : int array;
  (* One counter source of truth: the same Cmetrics registry the
     checkers use, updated unconditionally — Monitor.stats predates the
     Obs.on gate and its counts must not depend on the flag.  Not
     attached to the ambient scope: the wrapped checker already
     contributes its own registry there. *)
  m : Cmetrics.t;
  mutable report : report option;
}

let default_checker : Checker.t = (module Opt)

let create ?(checker = default_checker) ?symbols ?(on_violation = fun _ -> ())
    ~threads ~locks ~vars () =
  let (module C : Checker.S) = checker in
  let st = C.create ~threads ~locks ~vars in
  {
    packed = Packed ((module C), st);
    symbols;
    on_violation;
    depth = Array.make (max threads 1) 0;
    m = Cmetrics.create ~attach:false ();
    report = None;
  }

let of_trace_domains ?checker ?on_violation tr =
  create ?checker ?symbols:(Trace.symbols tr) ?on_violation
    ~threads:(Trace.threads tr) ~locks:(Trace.locks tr) ~vars:(Trace.vars tr)
    ()

(* Thin view over the registry counters, kept for compatibility. *)
let stats m =
  let v = Obs.Counter.value in
  let cm = m.m in
  let started = v cm.Cmetrics.txn_begins in
  let completed = v cm.Cmetrics.txn_commits in
  {
    events = v cm.Cmetrics.events;
    reads = v cm.Cmetrics.reads;
    writes = v cm.Cmetrics.writes;
    syncs =
      v cm.Cmetrics.acquires + v cm.Cmetrics.releases + v cm.Cmetrics.forks
      + v cm.Cmetrics.joins;
    transactions_started = started;
    transactions_completed = completed;
    active_transactions = started - completed;
  }

let metrics m = Cmetrics.snapshot m.m

let thread_name m tid =
  match m.symbols with
  | Some s -> Trace.Symbols.thread s tid
  | None -> Ids.Tid.to_string tid

let describe m (v : Violation.t) =
  let name target pp fallback =
    match m.symbols with Some s -> target s | None -> Format.asprintf "%a" pp fallback
  in
  match (v.site, v.event.op) with
  | Violation.At_read, Event.Read x | Violation.At_write_vs_write, Event.Write x
    ->
    Printf.sprintf
      "access to %s is ordered after the checking transaction's own begin: \
       the block cannot run without interleaving"
      (name (fun s -> Trace.Symbols.var s x) Ids.Vid.pp x)
  | Violation.At_write_vs_read, Event.Write x ->
    Printf.sprintf
      "a concurrent transaction read %s after this block began; the write \
       closes a cycle"
      (name (fun s -> Trace.Symbols.var s x) Ids.Vid.pp x)
  | Violation.At_acquire, Event.Acquire l ->
    Printf.sprintf
      "lock %s was released by a critical section ordered after this \
       block's begin"
      (name (fun s -> Trace.Symbols.lock s l) Ids.Lid.pp l)
  | Violation.At_join, Event.Join u ->
    Printf.sprintf "joined thread %s ran inside this atomic block"
      (name (fun s -> Trace.Symbols.thread s u) Ids.Tid.pp u)
  | Violation.At_end u, _ ->
    Printf.sprintf
      "completing this block orders it entirely before the active \
       transaction of %s, which is already ordered before it"
      (name (fun s -> Trace.Symbols.thread s u) Ids.Tid.pp u)
  | Violation.Graph_cycle cycle, _ ->
    Printf.sprintf "transaction graph cycle of length %d" (List.length cycle)
  | _, _ -> "conflict-serializability violation"

let count m (e : Event.t) =
  let t = Ids.Tid.to_int e.thread in
  Cmetrics.count m.m e.op;
  match e.op with
  | Event.Begin ->
    if m.depth.(t) = 0 then Cmetrics.txn_begin m.m;
    m.depth.(t) <- m.depth.(t) + 1
  | Event.End ->
    if m.depth.(t) > 0 then begin
      m.depth.(t) <- m.depth.(t) - 1;
      if m.depth.(t) = 0 then Cmetrics.txn_commit m.m
    end
  | _ -> ()

let observe m e =
  count m e;
  match m.report with
  | Some _ -> None  (* already reported; keep only the statistics *)
  | None -> (
    let (Packed ((module C), st)) = m.packed in
    match C.feed st e with
    | None -> None
    | Some violation ->
      let report =
        {
          violation;
          stats_at_detection = stats m;
          thread_name = thread_name m violation.Violation.event.thread;
          description = describe m violation;
        }
      in
      m.report <- Some report;
      m.on_violation report;
      Some report)

let observe_all m events =
  let rec go events =
    match Seq.uncons events with
    | None -> None
    | Some (e, rest) -> (
      match observe m e with Some r -> Some r | None -> go rest)
  in
  go events

let violation m = m.report
let violated m = Option.is_some m.report

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "@[<h>%d events (%d reads, %d writes, %d sync); %d transactions (%d \
     completed, %d active)@]"
    s.events s.reads s.writes s.syncs s.transactions_started
    s.transactions_completed s.active_transactions

let report_to_string r =
  Format.asprintf "%a — thread %s: %s" Violation.pp r.violation r.thread_name
    r.description
