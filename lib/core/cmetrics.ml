open Traces

type t = {
  registry : Obs.Registry.t;
  events : Obs.Counter.t;
  reads : Obs.Counter.t;
  writes : Obs.Counter.t;
  acquires : Obs.Counter.t;
  releases : Obs.Counter.t;
  forks : Obs.Counter.t;
  joins : Obs.Counter.t;
  begins : Obs.Counter.t;
  ends : Obs.Counter.t;
  txn_begins : Obs.Counter.t;
  txn_commits : Obs.Counter.t;
  vc_joins : Obs.Counter.t;
  stale_readers : Obs.Histogram.t;
  lock_updates : Obs.Histogram.t;
  violation_index : Obs.Gauge.t;
}

let create ?(attach = true) () =
  let reg = Obs.Registry.create () in
  let c name = Obs.Registry.counter reg name in
  let m =
    {
      registry = reg;
      events = c "events.total";
      reads = c "events.read";
      writes = c "events.write";
      acquires = c "events.acquire";
      releases = c "events.release";
      forks = c "events.fork";
      joins = c "events.join";
      begins = c "events.begin";
      ends = c "events.end";
      txn_begins = c "txn.begins";
      txn_commits = c "txn.commits";
      vc_joins = c "vc.joins";
      stale_readers = Obs.Registry.histogram reg "sets.stale_readers";
      lock_updates = Obs.Registry.histogram reg "sets.lock_updates";
      violation_index = Obs.Registry.gauge ~init:(-1.0) reg "violation.index";
    }
  in
  if attach then Obs.Scope.attach reg;
  m

let count m (op : Event.op) =
  Obs.Counter.inc m.events;
  match op with
  | Event.Read _ -> Obs.Counter.inc m.reads
  | Event.Write _ -> Obs.Counter.inc m.writes
  | Event.Acquire _ -> Obs.Counter.inc m.acquires
  | Event.Release _ -> Obs.Counter.inc m.releases
  | Event.Fork _ -> Obs.Counter.inc m.forks
  | Event.Join _ -> Obs.Counter.inc m.joins
  | Event.Begin -> Obs.Counter.inc m.begins
  | Event.End -> Obs.Counter.inc m.ends

(* The packed hot path counts by opcode int ({!Traces.Packed} order,
   = the binfmt record opcodes).  Only ever reached with telemetry on. *)
let count_op m op =
  Obs.Counter.inc m.events;
  Obs.Counter.inc
    (if op <= Packed.op_write then
       if op = Packed.op_read then m.reads else m.writes
     else if op <= Packed.op_release then
       if op = Packed.op_acquire then m.acquires else m.releases
     else if op <= Packed.op_join then
       if op = Packed.op_fork then m.forks else m.joins
     else if op = Packed.op_begin then m.begins
     else m.ends)

let txn_begin m = Obs.Counter.inc m.txn_begins
let txn_commit m = Obs.Counter.inc m.txn_commits
let vc_join m = Obs.Counter.inc m.vc_joins
let vc_joins_add m n = Obs.Counter.add m.vc_joins n
let observe_stale_readers m n = Obs.Histogram.observe m.stale_readers n
let observe_lock_updates m n = Obs.Histogram.observe m.lock_updates n
let found_violation m index = Obs.Gauge.set_int m.violation_index index
let registry m = m.registry
let snapshot m = Obs.Registry.snapshot m.registry
