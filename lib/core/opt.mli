(** AeroDrome, Algorithm 3: the fully optimized checker.

    On top of the Algorithm 2 read-clock reduction this variant implements
    the three Appendix C.2 optimizations:

    - {b Lazy clock updates}: a write inside an active transaction only
      marks [W_x] stale ([Stale^w_x = ⊤]); readers compare against the
      writer's live clock until the writing transaction ends and the clock
      is materialized.  Reads accumulate in [Stale^r_x] and are flushed
      into [R_x]/[hR_x] at the next write or at the reader's end.
    - {b Update sets}: each thread records the variables whose [W_x]/[R_x]
      clocks its transaction end must refresh ([UpdateSet^{w,r}_t]), so end
      events touch only relevant variables instead of all of them.
    - {b Transaction garbage collection}: a completing transaction that can
      never lie on a cycle skips all end-of-transaction propagation.

    In addition, every [⊑]-comparison whose left operand is a begin clock
    [C⊲_t] is performed in [O(1)] by comparing only the [t]-component, an
    epoch-style shortcut justified by the algorithm's invariant that clocks
    grow only by whole-clock joins (so [clk(t) ≥ C⊲_t(t)] implies
    [C⊲_t ⊑ clk]); [create_with ~fast_checks:false] restores full
    comparisons everywhere they are meaningful.  The write-versus-reads
    check against [hR_x] always uses the component comparison: [hR_x] joins
    reader clocks with each reader's own component zeroed, so the full
    pointwise order is the wrong relation for it (see {!Reduced}).

    {b Deviations from the printed pseudocode} (each covered by a
    regression test that fails under the printed behaviour, reproducible
    with [create_with ~faithful:true]):

    + Unary (transaction-free) accesses update [W_x]/[R_x] eagerly instead
      of lazily.  The printed algorithm leaves a unary read in [Stale^r_x]
      with no transaction end to ever flush or clear it, so a later flush
      uses the reading thread's {e current} clock — by then inflated by
      unrelated newer transactions — yielding false positives
      ({!Workloads.Scenarios.unary_flush_false_positive}).
    + When a transaction end refreshes [W_x] (resp. [R_x]), the variable is
      also added to [UpdateSet^{w}_u] (resp. [UpdateSet^{r}_u]) of every
      other covered active transaction.  The printed algorithm populates
      update sets only at the access itself, so an ordering established
      {e transitively} through a third transaction's end never reaches the
      update set and the final refresh is skipped, missing real violations
      ({!Workloads.Scenarios.transitive_update_miss}).
    + The garbage-collection test.  The printed criterion —
      [parentTr alive ∨ C⊲_t[0/t] ≠ C_t[0/t]] — misses incoming edges that
      carry no new clock components (repeated interaction with the same
      long-running transaction,
      {!Workloads.Scenarios.gc_clock_equality_miss}) as well as
      program-order edges from the thread's own earlier kept transactions.
      The sound criterion used here keeps a completing transaction iff its
      clock contains the begin of some other thread's still-active
      transaction: any future cycle must route through a currently-active
      foreign transaction whose begin-knowledge has already flowed along
      the cycle's frozen prefix into this thread's clock. *)

include Checker.S

val create_with :
  ?fast_checks:bool -> ?faithful:bool -> threads:int -> locks:int ->
  vars:int -> unit -> t
(** [create] is [create_with ~fast_checks:true ~faithful:false]. *)

val seed_boundary : t -> int array -> unit
(** [seed_boundary st depths] prepares a fresh checker to start
    mid-trace at a non-quiescent cut: every thread [t] with
    [depths.(t) > 0] re-enters an open transaction at that depth, as
    if its (unseen, pre-cut) begin had just been processed — own
    component bumped, begin clock assigned, marked active.  Used by
    {!Parallel.Shard} with the {!Merge} boundary summary; see
    DESIGN.md §17 for what the seed does and does not reproduce.
    Raises [Invalid_argument] if the checker has already been fed. *)

val faithful_checker : Checker.t
(** The printed-pseudocode behaviour packaged as a checker, for
    differential tests. *)

val slow_checker : Checker.t
(** Full-vector comparisons instead of the [O(1)] epoch shortcut. *)

(** {1 Introspection} *)

val thread_clock : t -> int -> Vclock.Vtime.t
val begin_clock : t -> int -> Vclock.Vtime.t
val write_clock : t -> int -> Vclock.Vtime.t
(** The materialized [W_x]; meaningless while {!write_is_stale}. *)

val read_clock_joined : t -> int -> Vclock.Vtime.t
val read_clock_check : t -> int -> Vclock.Vtime.t

val write_is_stale : t -> int -> bool
(** Is [W_x] lazily represented by the last writer's live clock? *)

val last_writer : t -> int -> int option
val in_transaction : t -> int -> bool

val metrics : t -> Obs.Snapshot.t
(** Current reading of this instance's {!Cmetrics} registry.  Counters
    only advance while [Obs.on ()] — see {!Cmetrics}. *)
