(** AeroDrome, Algorithm 1: the basic vector-clock checker.

    Direct transcription of the paper's Algorithm 1.  Per-thread clocks
    [C_t] and [C⊲_t], per-lock clocks [L_ℓ], per-variable write clocks
    [W_x] and per-(thread, variable) read clocks [R_{t,x}] (allocated
    lazily, so memory is proportional to the pairs actually touched).
    Nested atomic blocks are folded into the outermost one; events outside
    any block are unary transactions and never themselves declare a
    violation (Section 4.1.4).

    The per-event cost is [O(|Thr|)] for non-end events and
    [O(|Thr|·(|Thr| + L + V))] for end events (Theorem 4 without the
    Section 4.3 optimization). *)

include Checker.S

(** {1 Introspection}

    Snapshots of the checker's clocks, used by the tests that replay the
    clock evolutions of Figures 5–7 of the paper.  All results are
    immutable copies. *)

val thread_clock : t -> int -> Vclock.Vtime.t
(** Current [C_t]. *)

val begin_clock : t -> int -> Vclock.Vtime.t
(** Current [C⊲_t]. *)

val lock_clock : t -> int -> Vclock.Vtime.t
(** Current [L_ℓ] ([⊥] if the lock was never released). *)

val write_clock : t -> int -> Vclock.Vtime.t
(** Current [W_x] ([⊥] if the variable was never written). *)

val read_clock : t -> thread:int -> var:int -> Vclock.Vtime.t
(** Current [R_{t,x}] ([⊥] if that thread never read that variable). *)

val in_transaction : t -> int -> bool
(** Does the thread have an active (outermost) transaction? *)

val metrics : t -> Obs.Snapshot.t
(** Current reading of this instance's {!Cmetrics} registry. *)
