open Ids

type mode = Exact of Varstats.t | Online

type counts = {
  mutable events_in : int;
  mutable kept : int;
  mutable thread_local : int;
  mutable read_only : int;
  mutable redundant : int;
  mutable lock_local : int;
  mutable flushed : int;
  mutable pending_hwm : int;
}

let elided c = c.thread_local + c.read_only + c.redundant + c.lock_local

(* Rule (c) bookkeeping.  [wstamp]/[astamp] count *retained* writes and
   accesses per variable; a stamp records their values at the owning
   thread's last retained access in the current transaction.  An access
   is covered — adds no conflict edge beyond the earlier one's — iff the
   relevant counter has not moved since:

   - read: no retained write (by anyone) since my last retained read or
     since my own last retained write;
   - write: no retained access by another thread since my last retained
     write (my own retained reads in between are counted out via
     [own_since]; a read of mine does not conflict with my write and the
     edges it witnesses are witnessed by the earlier write too).

   Counting retained events only is self-consistent: if an interposing
   access was itself elided, the access covering it is retained and
   interposes equally.

   Stamps live in generation-tagged parallel arrays: entry x is valid
   iff [sgen.(x) = gen], and ending an outermost transaction bumps
   [gen] instead of clearing anything — O(1) reset, no hashing on the
   per-event path. *)
type tstate = {
  mutable depth : int;  (* open begin-markers *)
  buf : Event.t Queue.t;  (* online: pending events, in thread order *)
  mutable held_vars : int list;  (* vars with pending accesses in buf *)
  mutable held_locks : int list;
  (* rule (c), current outermost transaction *)
  mutable gen : int;
  mutable sgen : int array;  (* generation at which entry x was written *)
  mutable s_last_rw : int array;  (* wstamp at my last retained read *)
  mutable s_last_ww : int array;  (* wstamp after my last retained write *)
  mutable s_last_wa : int array;  (* astamp after my last retained write *)
  mutable s_own : int array;  (* my retained reads since my last write *)
}

type t = {
  mode : mode;
  cap : int;
  c : counts;
  (* exact mode: the per-object rule-(a)/(b)/(d) verdicts, folded from
     the {!Varstats} once at creation so the packed hot path pays one
     byte load instead of mask arithmetic per event.  Entries: 0 =
     retain, 1 = thread-local, 2 = read-only (variables only).  Objects
     past the table (ids the statistics never saw) are retained, the
     conservative direction — matching {!Varstats.var_mask} = 0. *)
  vclass : Bytes.t;
  lclass : Bytes.t;
  mutable threads : tstate option array;
  (* per-variable (grown on demand); owner/holder are online-mode only *)
  mutable vowner : int array;  (* -1 unseen, -2 shared, else sole thread *)
  mutable vwritten : int array;
  mutable vholder : int array;  (* thread whose buffer holds x's events *)
  mutable wstamp : int array;
  mutable astamp : int array;
  (* per-lock *)
  mutable lowner : int array;
  mutable lholder : int array;
  mutable lcompromised : int array;
      (* 1 once any of the lock's ops was force-emitted: later ops are
         emitted too, so acquire/release matching survives filtering *)
}

let new_tstate ~vars () =
  let n = max vars 16 in
  {
    depth = 0;
    buf = Queue.create ();
    held_vars = [];
    held_locks = [];
    gen = 1;
    sgen = Array.make n 0;
    s_last_rw = Array.make n 0;
    s_last_ww = Array.make n 0;
    s_last_wa = Array.make n 0;
    s_own = Array.make n 0;
  }

let create ?(cap = 32768) mode =
  let vars, locks =
    match mode with Exact s -> (Varstats.vars s, Varstats.locks s) | Online -> (16, 4)
  in
  let vclass, lclass =
    match mode with
    | Online -> (Bytes.empty, Bytes.empty)
    | Exact s ->
      let vc = Bytes.make (Varstats.vars s) '\000' in
      for x = 0 to Bytes.length vc - 1 do
        if Varstats.var_single_threaded s x then Bytes.unsafe_set vc x '\001'
        else if Varstats.var_read_only s x then Bytes.unsafe_set vc x '\002'
      done;
      let lc = Bytes.make (Varstats.locks s) '\000' in
      for l = 0 to Bytes.length lc - 1 do
        if Varstats.lock_single_threaded s l then Bytes.unsafe_set lc l '\001'
      done;
      (vc, lc)
  in
  {
    mode;
    cap = max cap 1;
    vclass;
    lclass;
    c =
      {
        events_in = 0;
        kept = 0;
        thread_local = 0;
        read_only = 0;
        redundant = 0;
        lock_local = 0;
        flushed = 0;
        pending_hwm = 0;
      };
    threads = Array.make 8 None;
    vowner = Array.make (max vars 1) (-1);
    vwritten = Array.make (max vars 1) 0;
    vholder = Array.make (max vars 1) (-1);
    wstamp = Array.make (max vars 1) 0;
    astamp = Array.make (max vars 1) 0;
    lowner = Array.make (max locks 1) (-1);
    lholder = Array.make (max locks 1) (-1);
    lcompromised = Array.make (max locks 1) 0;
  }

let counts t = t.c

let grow a n fill =
  let cap = Array.length a in
  if n <= cap then a
  else begin
    let a' = Array.make (max n (2 * cap)) fill in
    Array.blit a 0 a' 0 cap;
    a'
  end

let ensure_var t x =
  if x >= Array.length t.vowner then begin
    t.vowner <- grow t.vowner (x + 1) (-1);
    t.vwritten <- grow t.vwritten (x + 1) 0;
    t.vholder <- grow t.vholder (x + 1) (-1);
    t.wstamp <- grow t.wstamp (x + 1) 0;
    t.astamp <- grow t.astamp (x + 1) 0
  end

let ensure_lock t l =
  if l >= Array.length t.lowner then begin
    t.lowner <- grow t.lowner (l + 1) (-1);
    t.lholder <- grow t.lholder (l + 1) (-1);
    t.lcompromised <- grow t.lcompromised (l + 1) 0
  end

let tstate t tid =
  if tid >= Array.length t.threads then begin
    let a = Array.make (max (tid + 1) (2 * Array.length t.threads)) None in
    Array.blit t.threads 0 a 0 (Array.length t.threads);
    t.threads <- a
  end;
  match t.threads.(tid) with
  | Some ts -> ts
  | None ->
    let ts = new_tstate ~vars:(Array.length t.vowner) () in
    t.threads.(tid) <- Some ts;
    ts

let keep t e emit =
  t.c.kept <- t.c.kept + 1;
  emit e

(* An access that survived rules (a)/(b)/(d): the rule-(c) decision.
   Returns [true] if the access must be retained (stamps updated),
   [false] if it is covered and elided — representation-agnostic, so the
   boxed and packed feeds share it. *)
let retained_decision t ts x ~w =
  if ts.depth > 0 then begin
    if x >= Array.length ts.sgen then begin
      ts.sgen <- grow ts.sgen (x + 1) 0;
      ts.s_last_rw <- grow ts.s_last_rw (x + 1) 0;
      ts.s_last_ww <- grow ts.s_last_ww (x + 1) 0;
      ts.s_last_wa <- grow ts.s_last_wa (x + 1) 0;
      ts.s_own <- grow ts.s_own (x + 1) 0
    end;
    if ts.sgen.(x) <> ts.gen then begin
      ts.sgen.(x) <- ts.gen;
      ts.s_last_rw.(x) <- -1;
      ts.s_last_ww.(x) <- -1;
      ts.s_last_wa.(x) <- -1;
      ts.s_own.(x) <- 0
    end;
    let covered =
      if w then
        ts.s_last_wa.(x) >= 0 && ts.s_last_wa.(x) + ts.s_own.(x) = t.astamp.(x)
      else
        (ts.s_last_rw.(x) >= 0 && ts.s_last_rw.(x) = t.wstamp.(x))
        || (ts.s_last_ww.(x) >= 0 && ts.s_last_ww.(x) = t.wstamp.(x))
    in
    if covered then begin
      t.c.redundant <- t.c.redundant + 1;
      false
    end
    else begin
      t.astamp.(x) <- t.astamp.(x) + 1;
      if w then begin
        t.wstamp.(x) <- t.wstamp.(x) + 1;
        ts.s_last_ww.(x) <- t.wstamp.(x);
        ts.s_last_wa.(x) <- t.astamp.(x);
        ts.s_own.(x) <- 0
      end
      else begin
        ts.s_last_rw.(x) <- t.wstamp.(x);
        ts.s_own.(x) <- ts.s_own.(x) + 1
      end;
      true
    end
  end
  else begin
    (* unary access: a singleton transaction, nothing to cover it *)
    t.astamp.(x) <- t.astamp.(x) + 1;
    if w then t.wstamp.(x) <- t.wstamp.(x) + 1;
    true
  end

let retained_access t ts x ~w e emit =
  if retained_decision t ts x ~w then keep t e emit

let feed_exact t s (e : Event.t) emit =
  let ts () = tstate t (Tid.to_int e.thread) in
  match e.op with
  | Event.Read x ->
    let x = Vid.to_int x in
    if Varstats.var_single_threaded s x then
      t.c.thread_local <- t.c.thread_local + 1
    else if Varstats.var_read_only s x then t.c.read_only <- t.c.read_only + 1
    else begin
      ensure_var t x;
      retained_access t (ts ()) x ~w:false e emit
    end
  | Event.Write x ->
    let x = Vid.to_int x in
    if Varstats.var_single_threaded s x then
      t.c.thread_local <- t.c.thread_local + 1
    else begin
      ensure_var t x;
      retained_access t (ts ()) x ~w:true e emit
    end
  | Event.Acquire l | Event.Release l ->
    if Varstats.lock_single_threaded s (Lid.to_int l) then
      t.c.lock_local <- t.c.lock_local + 1
    else keep t e emit
  | Event.Fork _ | Event.Join _ -> keep t e emit
  | Event.Begin ->
    let ts = ts () in
    ts.depth <- ts.depth + 1;
    keep t e emit
  | Event.End ->
    let ts = ts () in
    ts.depth <- max 0 (ts.depth - 1);
    if ts.depth = 0 then ts.gen <- ts.gen + 1;
    keep t e emit

(* Online mode.  Pending (buffered) events are not counted in
   wstamp/astamp until the moment they are flushed; while a variable or
   lock still qualifies, all its events sit in its sole owner's buffer,
   so no rule-(c) decision ever runs against a variable with uncounted
   pending events. *)

let flush_thread t h emit =
  if h < Array.length t.threads then
    match t.threads.(h) with
    | None -> ()
    | Some ts ->
      let n = Queue.length ts.buf in
      if n > 0 then begin
        t.c.flushed <- t.c.flushed + n;
        while not (Queue.is_empty ts.buf) do
          let e = Queue.pop ts.buf in
          (match e.Event.op with
          | Event.Read x ->
            let x = Vid.to_int x in
            t.astamp.(x) <- t.astamp.(x) + 1
          | Event.Write x ->
            let x = Vid.to_int x in
            t.astamp.(x) <- t.astamp.(x) + 1;
            t.wstamp.(x) <- t.wstamp.(x) + 1
          | Event.Acquire _ | Event.Release _ -> ()
          | _ -> assert false);
          keep t e emit
        done;
        List.iter (fun x -> if t.vholder.(x) = h then t.vholder.(x) <- -1) ts.held_vars;
        List.iter
          (fun l ->
            if t.lholder.(l) = h then begin
              t.lholder.(l) <- -1;
              t.lcompromised.(l) <- 1
            end)
          ts.held_locks;
        ts.held_vars <- [];
        ts.held_locks <- []
      end

let push_pending t ts tid e emit =
  Queue.add e ts.buf;
  let n = Queue.length ts.buf in
  if n > t.c.pending_hwm then t.c.pending_hwm <- n;
  if n >= t.cap then flush_thread t tid emit

let feed_online t (e : Event.t) emit =
  let tid = Tid.to_int e.thread in
  let ts = tstate t tid in
  match e.op with
  | Event.Read x | Event.Write x ->
    let w = match e.op with Event.Write _ -> true | _ -> false in
    let x = Vid.to_int x in
    ensure_var t x;
    let owner = t.vowner.(x) in
    if owner = -1 || owner = tid then begin
      (* still single-owner: defer the verdict on this event *)
      t.vowner.(x) <- tid;
      if w then t.vwritten.(x) <- 1;
      if t.vholder.(x) <> tid then begin
        t.vholder.(x) <- tid;
        ts.held_vars <- x :: ts.held_vars
      end;
      push_pending t ts tid e emit
    end
    else begin
      (* the pending events this one conflicts with must reach the
         checker first, in their original order *)
      if owner >= 0 then begin
        if (w || t.vwritten.(x) = 1) && t.vholder.(x) >= 0 then
          flush_thread t t.vholder.(x) emit;
        t.vowner.(x) <- -2
      end
      else if w && t.vwritten.(x) = 0 && t.vholder.(x) >= 0 then
        flush_thread t t.vholder.(x) emit;
      if w then t.vwritten.(x) <- 1;
      retained_access t ts x ~w e emit
    end
  | Event.Acquire l | Event.Release l ->
    let l = Lid.to_int l in
    ensure_lock t l;
    let owner = t.lowner.(l) in
    if (owner = -1 || owner = tid) && t.lcompromised.(l) = 0 then begin
      t.lowner.(l) <- tid;
      if t.lholder.(l) <> tid then begin
        t.lholder.(l) <- tid;
        ts.held_locks <- l :: ts.held_locks
      end;
      push_pending t ts tid e emit
    end
    else begin
      if owner >= 0 && owner <> tid then begin
        if t.lholder.(l) >= 0 then flush_thread t t.lholder.(l) emit;
        t.lowner.(l) <- -2
      end;
      keep t e emit
    end
  | Event.Fork _ -> keep t e emit
  | Event.Join u ->
    (* if the child's pending events are ever emitted, it must be
       before this join *)
    flush_thread t (Tid.to_int u) emit;
    keep t e emit
  | Event.Begin ->
    (* pending events belong to the closing unary stretch: emitting
       them later, inside the new block, would reattribute them *)
    if ts.depth = 0 then flush_thread t tid emit;
    ts.depth <- ts.depth + 1;
    keep t e emit
  | Event.End ->
    ts.depth <- max 0 (ts.depth - 1);
    if ts.depth = 0 then begin
      flush_thread t tid emit;
      ts.gen <- ts.gen + 1
    end;
    keep t e emit

let feed t e emit =
  t.c.events_in <- t.c.events_in + 1;
  match t.mode with
  | Exact s -> feed_exact t s e emit
  | Online -> feed_online t e emit

(* Exact-mode decisions over packed words: rules (a)/(b)/(d) read only
   the opcode and the target id, rule (c) shares [retained_decision], so
   elided events are never materialized as [Event.t]. *)
let feed_exact_packed t w emit =
  let op = Packed.opcode w in
  if op <= Packed.op_write then begin
    let x = Packed.target w in
    let wr = op = Packed.op_write in
    let cls =
      if x < Bytes.length t.vclass then
        Char.code (Bytes.unsafe_get t.vclass x)
      else 0
    in
    if cls = 1 then t.c.thread_local <- t.c.thread_local + 1
    else if cls = 2 && not wr then t.c.read_only <- t.c.read_only + 1
    else begin
      ensure_var t x;
      if retained_decision t (tstate t (Packed.tid w)) x ~w:wr then begin
        t.c.kept <- t.c.kept + 1;
        emit w
      end
    end
  end
  else if op <= Packed.op_release then begin
    let l = Packed.target w in
    if l < Bytes.length t.lclass && Bytes.unsafe_get t.lclass l = '\001' then
      t.c.lock_local <- t.c.lock_local + 1
    else begin
      t.c.kept <- t.c.kept + 1;
      emit w
    end
  end
  else begin
    (if op = Packed.op_begin then begin
       let ts = tstate t (Packed.tid w) in
       ts.depth <- ts.depth + 1
     end
     else if op = Packed.op_end then begin
       let ts = tstate t (Packed.tid w) in
       ts.depth <- max 0 (ts.depth - 1);
       if ts.depth = 0 then ts.gen <- ts.gen + 1
     end);
    t.c.kept <- t.c.kept + 1;
    emit w
  end

let feed_packed t w emit =
  t.c.events_in <- t.c.events_in + 1;
  match t.mode with
  | Exact _ -> feed_exact_packed t w emit
  | Online ->
    (* online buffering is inherently boxed (per-thread event queues);
       the runner only routes packed streams here when the user forced
       online mode explicitly *)
    feed_online t (Packed.to_event w) (fun e -> emit (Packed.of_event e))

let publish t =
  if Obs.on () && Obs.Scope.active () then begin
    let reg = Obs.Registry.create () in
    let add name v = Obs.Counter.add (Obs.Registry.counter reg name) v in
    add "prefilter.events_in" t.c.events_in;
    add "prefilter.events_out" t.c.kept;
    add "prefilter.elided.thread_local" t.c.thread_local;
    add "prefilter.elided.read_only" t.c.read_only;
    add "prefilter.elided.redundant" t.c.redundant;
    add "prefilter.elided.lock_local" t.c.lock_local;
    (match t.mode with
    | Online ->
      add "prefilter.online.flushed" t.c.flushed;
      add "prefilter.online.pending_hwm" t.c.pending_hwm
    | Exact _ -> ());
    Obs.Scope.attach reg
  end

let finish t _emit =
  (match t.mode with
  | Exact _ -> ()
  | Online ->
    (* everything still pending is on an object that stayed
       single-owner (or read-only) through end of trace: droppable *)
    Array.iter
      (function
        | None -> ()
        | Some ts ->
          Queue.iter
            (fun (e : Event.t) ->
              match e.op with
              | Event.Read x ->
                if t.vwritten.(Vid.to_int x) = 1 then
                  t.c.thread_local <- t.c.thread_local + 1
                else t.c.read_only <- t.c.read_only + 1
              | Event.Write _ -> t.c.thread_local <- t.c.thread_local + 1
              | Event.Acquire _ | Event.Release _ ->
                t.c.lock_local <- t.c.lock_local + 1
              | _ -> assert false)
            ts.buf;
          Queue.clear ts.buf;
          ts.held_vars <- [];
          ts.held_locks <- [])
      t.threads);
  publish t

let finish_packed t emit =
  finish t (fun e -> emit (Packed.of_event e))

let filter_seq t src =
  let q = Queue.create () in
  let push e = Queue.add e q in
  let src = ref src in
  let finished = ref false in
  let rec pull () =
    match Queue.take_opt q with
    | Some e -> Seq.Cons (e, pull)
    | None ->
      if !finished then Seq.Nil
      else begin
        match !src () with
        | Seq.Nil ->
          finished := true;
          finish t push;
          pull ()
        | Seq.Cons (e, rest) ->
          src := rest;
          feed t e push;
          pull ()
      end
  in
  pull

let run_trace mode tr =
  let m =
    match mode with `Exact -> Exact (Varstats.of_trace tr) | `Online -> Online
  in
  let t = create m in
  let b = Trace.Builder.create ~capacity:(Trace.length tr) () in
  let emit e = Trace.Builder.add b e in
  Trace.iter (fun e -> feed t e emit) tr;
  finish t emit;
  (Trace.Builder.build ?symbols:(Trace.symbols tr) b, t.c)
