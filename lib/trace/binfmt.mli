(** Compact binary trace format with streaming access.

    The paper's logs reach billions of events (hundreds of gigabytes as
    text); RAPID stores them in a binary encoding.  This module provides
    ours: a small header (magic, version, domain sizes, event count)
    followed by one variable-length record per event — an opcode byte and
    LEB128-encoded ids.  Typical traces encode in 2–4 bytes per event,
    an order of magnitude smaller than the text format.

    Reading is streaming: {!read_seq} exposes the events as a [Seq.t]
    backed by a buffered channel, so a checker can analyze a file without
    materializing the trace ({!Analysis.Runner.run_events} composes with
    it directly). *)


exception Corrupt of string
(** Raised by readers on malformed input (bad magic, truncated record,
    unknown opcode, id overflow). *)

val magic : string
(** The 8-byte file magic, ["AERODRM1"]. *)

type header = { threads : int; locks : int; vars : int; events : int }

val write_file : string -> Trace.t -> unit
(** Serialize a trace.  Symbol tables are not stored (ids only). *)

val write_channel : out_channel -> Trace.t -> unit

val read_header : string -> header
(** Header of a binary trace file.  @raise Corrupt *)

val read_file : string -> Trace.t
(** Materialize the whole trace.  @raise Corrupt *)

val fold : string -> init:'a -> f:('a -> Event.t -> 'a) -> header * 'a
(** [fold path ~init ~f] folds [f] over the file's events in order without
    materializing a {!Trace.t}: the file is read in 64 KiB chunks and
    events are decoded one at a time, so memory use is constant in the
    trace length.  Returns the header alongside the final accumulator.
    @raise Corrupt *)

val read_seq : string -> header * (Event.t Seq.t * (unit -> unit))
(** [read_seq path] is the header, a lazily-read event sequence, and a
    [close] function releasing the file descriptor (also called
    automatically when the sequence is fully consumed).  The sequence may
    be traversed once.  @raise Corrupt on a bad header; corruption later
    in the stream raises during traversal. *)

val is_binary : string -> bool
(** Does the file start with {!magic}?  (Used by the CLI to auto-detect
    the format.) *)

(**/**)

(* exposed for the round-trip property tests *)

val encode_event : Buffer.t -> Event.t -> unit

val decode_event : (unit -> int) -> Event.t option
(** [decode_event next_byte] with [next_byte () = -1] at end of input;
    [None] at a clean end, @raise Corrupt on a truncated or invalid
    record. *)
