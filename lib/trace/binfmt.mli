(** Compact binary trace format with streaming access.

    The paper's logs reach billions of events (hundreds of gigabytes as
    text); RAPID stores them in a binary encoding.  This module provides
    ours: a small header (magic, version, domain sizes, event count)
    followed by one variable-length record per event — an opcode byte and
    LEB128-encoded ids.  Typical traces encode in 2–4 bytes per event,
    an order of magnitude smaller than the text format.

    Version 2 files additionally carry a {b last-use footer} after the
    event records: one varint per variable and per lock giving the index
    of its final access (see {!Lifetime}).  The footer ends with an
    8-byte little-endian length and a trailing magic, so
    {!read_last_use} can locate it by seeking from the end of the file
    without decoding the events.  Version 3 files extend the footer with
    {b accessor statistics} (see {!Varstats}): per variable an
    accessor-thread bitmask and a write count, per lock an
    accessor-thread bitmask, which lets {!read_stats} hand the
    {!Prefilter} its exact-mode oracle without a pre-scan.  Version 1
    and 2 files (no or shorter footer) remain fully readable.

    Reading is streaming: {!read_seq} exposes the events as a [Seq.t]
    backed by a buffered channel, so a checker can analyze a file without
    materializing the trace ({!Analysis.Runner.run_events} composes with
    it directly). *)


exception Corrupt of string
(** Raised by readers on malformed input (bad magic, truncated record,
    unknown opcode, id overflow, damaged footer). *)

val magic : string
(** The 8-byte version-1 file magic, ["AERODRM1"] (no footer). *)

val magic_v2 : string
(** The 8-byte version-2 file magic, ["AERODRM2"] (last-use footer). *)

val magic_v3 : string
(** The 8-byte version-3 file magic, ["AERODRM3"] (last-use + accessor
    statistics footer). *)

val footer_magic : string
(** The 8-byte trailer ending a version-2/3 file, ["AERODRMF"]. *)

type header = {
  threads : int;
  locks : int;
  vars : int;
  events : int;
  version : int;  (** 1, 2 or 3 *)
  last_use : bool;  (** does the file carry a last-use footer? *)
  stats : bool;  (** does the footer carry accessor statistics? *)
}

val write_file : ?last_use:bool -> ?stats:bool -> string -> Trace.t -> unit
(** Serialize a trace.  Symbol tables are not stored (ids only).  With
    the defaults the file is version 3 (last-use footer + accessor
    statistics).  [~stats:false] writes version 2; [~last_use:false]
    reproduces the version-1 format byte for byte (implies no
    statistics). *)

val write_channel : ?last_use:bool -> ?stats:bool -> out_channel -> Trace.t -> unit

val read_header : string -> header
(** Header of a binary trace file.  @raise Corrupt *)

val read_file : string -> Trace.t
(** Materialize the whole trace.  @raise Corrupt *)

val read_last_use : string -> Lifetime.t option
(** The last-use index of a version-2/3 file, read by seeking to the
    footer — O(vars + locks), independent of the event count.  [None]
    for version-1 files.  @raise Corrupt if the footer is truncated or
    inconsistent. *)

val read_stats : string -> Varstats.t option
(** The accessor statistics of a version-3 file, read by seeking to the
    footer.  [None] for version-1/2 files.  @raise Corrupt if the footer
    is truncated or inconsistent. *)

val fold : string -> init:'a -> f:('a -> Event.t -> 'a) -> header * 'a
(** [fold path ~init ~f] folds [f] over the file's events in order without
    materializing a {!Trace.t}: the file is read in 64 KiB chunks and
    events are decoded one at a time, so memory use is constant in the
    trace length.  Returns the header alongside the final accumulator.
    @raise Corrupt *)

val read_seq : string -> header * (Event.t Seq.t * (unit -> unit))
(** [read_seq path] is the header, a lazily-read event sequence, and a
    [close] function releasing the file descriptor (also called
    automatically when the sequence is fully consumed).  The sequence may
    be traversed once.  @raise Corrupt on a bad header; corruption later
    in the stream raises during traversal. *)

val is_binary : string -> bool
(** Does the file start with {!magic}, {!magic_v2} or {!magic_v3}?
    (Used by the CLI to auto-detect the format.) *)

(** {1 Zero-copy packed ingestion}

    The packed readers decode the event section straight into {!Packed}
    words: the file is memory-mapped ([Unix.map_file]) and records are
    decoded in place — no read syscalls past the page cache and no
    per-event heap allocation between the file and a checker's
    [feed_packed] entry.  Inputs that cannot be mapped (pipes, special
    files, empty files) transparently fall back to the buffered channel
    reader, still producing packed words.  Footer validation and error
    behavior match the boxed readers, so hostile inputs fail identically
    on either path. *)

val fold_packed : string -> init:'a -> f:('a -> int -> 'a) -> header * 'a
(** [fold_packed path ~init ~f] folds [f] over the file's events as
    packed words, in order, memory-mapping the file when possible.
    Ids beyond the packed ranges ({!Packed.max_tid}/{!Packed.max_target})
    raise [Corrupt]; callers gate on {!Packed.fits} against the header
    before choosing this path.  @raise Corrupt *)

val read_packed : string -> header * Packed.Arena.t
(** Materialize the whole event section as a packed arena.
    @raise Corrupt *)

(**/**)

(* exposed for the round-trip property tests *)

val encode_event : Buffer.t -> Event.t -> unit

val decode_event : (unit -> int) -> Event.t option
(** [decode_event next_byte] with [next_byte () = -1] at end of input;
    [None] at a clean end, @raise Corrupt on a truncated or invalid
    record. *)

val write_packed_window :
  string -> threads:int -> locks:int -> vars:int -> int array -> unit
(** [write_packed_window path ~threads ~locks ~vars words] serializes a
    window of packed words as a stand-alone version-1 binary trace whose
    header keeps the source trace's id domains (so ids in the slice stay
    meaningful) — the flight recorder's replayable witness slice. *)
