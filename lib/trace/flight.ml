(* Violation flight recorder: bounded per-thread rings over packed
   words.

   The checker runs with a recorder alongside it; every event is
   [note]d (index and packed word) before it is fed.  Each thread keeps
   its last [window] events; older ones fall off the ring.  When the
   checker reports a violation at event [v], the recorder can
   reconstruct a {e replayable} slice: the events of some position [p]
   through [v], where [p] is a {b globally quiescent} position (every
   thread outside any transaction) whose suffix is still fully retained
   in the rings.

   Quiescence is what makes the slice sound to replay (DESIGN.md §15's
   exactness argument, reused in §16): a ⊥-seeded Opt checker started
   at a globally quiescent position behaves identically to the
   sequential checker over that range, and since the original run's
   violation at [v] was its first, it is also the first in [[p,v]] —
   so replaying the slice must report a violation exactly at slice
   index [v - p].

   Position bookkeeping is O(1) per event: two candidate cut points are
   enough.  [best] is the oldest quiescent position whose suffix was
   still fully retained when it was last inspected, [latest] the most
   recent quiescent position seen.  A position [p] is {e feasible} iff
   no ring has evicted an event with index [>= p]
   ([feasible_min = 1 + max_t last_evicted(t)]).  When [best] falls
   below [feasible_min] it jumps to [latest]; if [latest] is infeasible
   too there is provably no feasible quiescent position at all (every
   quiescent position [<= latest] by definition of latest), so the
   recorder waits for the next one — which is always feasible at the
   moment it is observed, because evictions only cover already-noted
   indices.  Position 0 is quiescent by definition. *)

type ring = {
  idx : int array; (* global event indices *)
  word : int array; (* packed words *)
  mutable len : int;
  mutable head : int; (* slot of the oldest entry when len = cap *)
}

type t = {
  cap : int;
  mutable rings : ring array; (* per thread; grown on demand *)
  mutable depth : int array; (* per-thread open-transaction depth *)
  mutable open_threads : int; (* threads with depth > 0 *)
  mutable last_evicted : int; (* max global index dropped from any ring *)
  mutable best : int; (* oldest known feasible quiescent position, -1 = none *)
  mutable latest : int; (* most recent quiescent position *)
  mutable last_index : int; (* most recent noted index *)
  mutable noted : int; (* events noted in total *)
}

let default_window = 256

let make_ring cap = { idx = Array.make cap 0; word = Array.make cap 0; len = 0; head = 0 }

(* [?depths] seeds the per-thread transaction depth for a recorder
   that starts mid-trace at a non-quiescent cut (a sharded chunk's
   boundary summary): with open transactions at position 0 of the
   recorder's coordinate space, no position is quiescent until every
   straddler has closed, so [best]/[latest] start unknown instead of
   falsely claiming position 0. *)
let create ?(window = default_window) ?depths ~threads () =
  if window < 1 then invalid_arg "Flight.create: window must be >= 1";
  let threads = max threads 1 in
  let depth = Array.make threads 0 in
  (match depths with
  | None -> ()
  | Some ds ->
    Array.iteri (fun t d -> if t < threads && d > 0 then depth.(t) <- d) ds);
  let open_threads =
    Array.fold_left (fun a d -> if d > 0 then a + 1 else a) 0 depth
  in
  {
    cap = window;
    rings = Array.init threads (fun _ -> make_ring window);
    depth;
    open_threads;
    last_evicted = -1;
    best = (if open_threads = 0 then 0 else -1);
    latest = (if open_threads = 0 then 0 else -1);
    last_index = -1;
    noted = 0;
  }

let window_size t = t.cap

let grow t tid =
  let n = Array.length t.rings in
  if tid >= n then begin
    let n' = max (tid + 1) (2 * n) in
    let rings = Array.init n' (fun i -> if i < n then t.rings.(i) else make_ring t.cap) in
    let depth = Array.make n' 0 in
    Array.blit t.depth 0 depth 0 n;
    t.rings <- rings;
    t.depth <- depth
  end

let feasible_min t = t.last_evicted + 1

(* [note t index word]: record the event about to be fed.  [index] is
   the 0-based position in the fed stream — the same coordinate space
   as [Violation.index], so a prefiltered run records filtered
   positions. *)
let note t index word =
  let tid = Packed.tid word in
  grow t tid;
  (* the position *before* this event is quiescent iff no transaction
     is open *)
  if t.open_threads = 0 then begin
    t.latest <- index;
    if t.best < feasible_min t then t.best <- index
  end
  else if t.best >= 0 && t.best < feasible_min t then
    t.best <- (if t.latest >= feasible_min t then t.latest else -1);
  let r = t.rings.(tid) in
  if r.len < t.cap then begin
    let slot = (r.head + r.len) mod t.cap in
    r.idx.(slot) <- index;
    r.word.(slot) <- word;
    r.len <- r.len + 1
  end
  else begin
    (* evict the oldest entry of this thread's ring *)
    if r.idx.(r.head) > t.last_evicted then t.last_evicted <- r.idx.(r.head);
    r.idx.(r.head) <- index;
    r.word.(r.head) <- word;
    r.head <- (r.head + 1) mod t.cap
  end;
  let op = Packed.opcode word in
  if op = Packed.op_begin then begin
    if t.depth.(tid) = 0 then t.open_threads <- t.open_threads + 1;
    t.depth.(tid) <- t.depth.(tid) + 1
  end
  else if op = Packed.op_end && t.depth.(tid) > 0 then begin
    t.depth.(tid) <- t.depth.(tid) - 1;
    if t.depth.(tid) = 0 then t.open_threads <- t.open_threads - 1
  end;
  t.last_index <- index;
  t.noted <- t.noted + 1

let noted t = t.noted
let threads t = Array.length t.rings
let depth t tid = if tid < Array.length t.depth then t.depth.(tid) else 0

(* The retained tail of one thread's ring, oldest first. *)
let thread_tail t tid : (int * int) list =
  if tid >= Array.length t.rings then []
  else begin
    let r = t.rings.(tid) in
    let out = ref [] in
    for k = r.len - 1 downto 0 do
      let slot = (r.head + k) mod t.cap in
      out := (r.idx.(slot), r.word.(slot)) :: !out
    done;
    !out
  end

(* Count of events each thread has contributed (retained or evicted we
   cannot know exactly; this is the retained count plus nothing — used
   for the frontier report, where "events retained" is the honest
   figure). *)
let retained t tid = if tid < Array.length t.rings then t.rings.(tid).len else 0

let last_seen t tid =
  match thread_tail t tid with
  | [] -> -1
  | tail -> fst (List.nth tail (List.length tail - 1))

(* [window t] reconstructs the retained slice from the oldest feasible
   quiescent position through the last noted event: [Some (start,
   words)] with [words.(k)] the packed word of event [start + k], or
   [None] when eviction has truncated every quiescent cut (the witness
   is then context-only, not replayable). *)
let window t : (int * int array) option =
  let p =
    if t.best >= feasible_min t then Some t.best
    else if t.latest >= feasible_min t then Some t.latest
    else None
  in
  match p with
  | None -> None
  | Some p when t.last_index < p -> None
  | Some p ->
    let n = t.last_index - p + 1 in
    let words = Array.make n (-1) in
    let missing = ref false in
    Array.iter
      (fun r ->
        for k = 0 to r.len - 1 do
          let slot = (r.head + k) mod t.cap in
          let i = r.idx.(slot) in
          if i >= p then words.(i - p) <- r.word.(slot)
        done)
      t.rings;
    Array.iter (fun w -> if w < 0 then missing := true) words;
    (* feasibility guarantees completeness; a hole means the caller
       noted indices inconsistently — refuse rather than emit a slice
       that would replay differently *)
    if !missing then None else Some (p, words)
