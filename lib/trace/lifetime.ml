open Ids

type t = { vars : int array; locks : int array }

let never = -1

let create ~vars ~locks =
  { vars = Array.make (max vars 0) never; locks = Array.make (max locks 0) never }

let note lt i (e : Event.t) =
  match e.op with
  | Event.Read x | Event.Write x -> lt.vars.(Vid.to_int x) <- i
  | Event.Acquire l | Event.Release l -> lt.locks.(Lid.to_int l) <- i
  | Event.Fork _ | Event.Join _ | Event.Begin | Event.End -> ()

let of_trace tr =
  let lt = create ~vars:(Trace.vars tr) ~locks:(Trace.locks tr) in
  Trace.iteri (note lt) tr;
  lt

let last_var lt x =
  if x >= 0 && x < Array.length lt.vars then lt.vars.(x) else never

let last_lock lt l =
  if l >= 0 && l < Array.length lt.locks then lt.locks.(l) else never
