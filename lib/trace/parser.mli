(** Parser and printer for the textual trace format.

    The format follows RAPID's [.std] logs: one event per line,
    [thread|operation] with an optional third [|location] field that is
    ignored.  Operations are [r(x)], [w(x)], [acq(l)], [rel(l)], [fork(t)],
    [join(t)], [begin] ([⊲]) and [end] ([⊳]).  Thread, lock and variable
    names are arbitrary tokens (no [|], [(], [)] or whitespace) and are
    interned to dense ids in order of first appearance; the resulting
    {!Trace.Symbols.t} is attached to the trace.  Blank lines and lines
    starting with [#] are skipped.

    Example:
    {v
    # trace rho2 from the paper
    t1|begin
    t2|begin
    t1|w(x)
    t2|r(x)|42
    t2|w(y)
    t1|r(y)
    t1|end
    t2|end
    v} *)

type error = { line : int; message : string }

exception Parse_error of error

val parse_string : string -> (Trace.t, error) result
val parse_lines : string Seq.t -> (Trace.t, error) result

val parse_file : string -> (Trace.t, error) result
(** Reads the whole file; I/O exceptions propagate. *)

val parse_string_exn : string -> Trace.t
(** @raise Parse_error *)

val parse_file_exn : string -> Trace.t

val fold_file :
  ?last_use:(Lifetime.t -> unit) ->
  ?stats:(Varstats.t -> unit) ->
  string ->
  init:(threads:int -> locks:int -> vars:int -> 'a) ->
  f:('a -> Event.t -> 'a) ->
  ('a, error) result
(** [fold_file path ~init ~f] parses the file in streaming fashion, never
    materializing a {!Trace.t}: memory use is the symbol tables plus one
    line, independent of the event count.  Because a text trace only
    reveals its domain sizes once fully scanned, the file is read twice —
    pass 1 interns every name, then [init] is called with the domain
    sizes (e.g. to create a checker), then pass 2 folds [f] over the
    events.  The file must not change between the passes.  I/O exceptions
    propagate.

    When [last_use] is given, the interning pass additionally builds the
    {!Lifetime} index (final access of every variable and lock) and hands
    it to the callback after pass 1, before [init] runs — at no extra
    I/O cost, since pass 1 decodes every event anyway.  [stats] likewise
    receives the {!Varstats} accessor statistics (the exact-mode
    prefilter oracle) gathered during pass 1. *)

val fold_file_exn :
  ?last_use:(Lifetime.t -> unit) ->
  ?stats:(Varstats.t -> unit) ->
  string ->
  init:(threads:int -> locks:int -> vars:int -> 'a) ->
  f:('a -> Event.t -> 'a) ->
  'a
(** @raise Parse_error *)

val to_string : Trace.t -> string
(** Renders a trace in the format above, using its symbol table when
    present and [T0]/[L0]/[V0]-style names otherwise.  [parse_string_exn]
    of the result is the identity on events. *)

val to_channel : out_channel -> Trace.t -> unit
val to_file : string -> Trace.t -> unit
val pp_error : Format.formatter -> error -> unit
