open Ids

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

(* Version 1 files are a header and event records and nothing else; the
   reader decodes until EOF.  Version 2 appends a last-use footer after
   the records: one varint per variable then per lock (1 + the index of
   its final access, 0 = never accessed), an 8-byte little-endian length
   of that varint section, and a trailing magic.  The length + magic
   tail lets {!read_last_use} locate the footer by seeking from the end
   without touching the event section.  Version 3 extends the varint
   section with accessor statistics — per variable an accessor-thread
   bitmask and a write count, per lock an accessor-thread bitmask —
   after the last-use entries; the length field covers both, so the
   seek-from-EOF trick is unchanged and v1/v2 files stay readable. *)
let magic = "AERODRM1"
let magic_v2 = "AERODRM2"
let magic_v3 = "AERODRM3"
let footer_magic = "AERODRMF"

type header = {
  threads : int;
  locks : int;
  vars : int;
  events : int;
  version : int;
  last_use : bool;
  stats : bool;
}

(* LEB128, unsigned. *)
let put_uint buf n =
  if n < 0 then invalid_arg "Binfmt: negative id";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let get_uint next =
  let rec go shift acc =
    if shift > 56 then corrupt "id overflow";
    match next () with
    | -1 -> corrupt "truncated integer"
    | b ->
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

(* opcodes — the packed word codec uses the record opcodes verbatim, so
   there is a single definition *)
let op_read = Packed.op_read
and op_write = Packed.op_write
and op_acquire = Packed.op_acquire
and op_release = Packed.op_release
and op_fork = Packed.op_fork
and op_join = Packed.op_join
and op_begin = Packed.op_begin
and op_end = Packed.op_end

let encode_event buf (e : Event.t) =
  let t = Tid.to_int e.thread in
  let simple op = Buffer.add_char buf (Char.chr op) in
  match e.op with
  | Event.Read x ->
    simple op_read;
    put_uint buf t;
    put_uint buf (Vid.to_int x)
  | Event.Write x ->
    simple op_write;
    put_uint buf t;
    put_uint buf (Vid.to_int x)
  | Event.Acquire l ->
    simple op_acquire;
    put_uint buf t;
    put_uint buf (Lid.to_int l)
  | Event.Release l ->
    simple op_release;
    put_uint buf t;
    put_uint buf (Lid.to_int l)
  | Event.Fork u ->
    simple op_fork;
    put_uint buf t;
    put_uint buf (Tid.to_int u)
  | Event.Join u ->
    simple op_join;
    put_uint buf t;
    put_uint buf (Tid.to_int u)
  | Event.Begin ->
    simple op_begin;
    put_uint buf t
  | Event.End ->
    simple op_end;
    put_uint buf t

let decode_event next =
  match next () with
  | -1 -> None
  | op ->
    let t = get_uint next in
    let target () = get_uint next in
    let event o = Some (Event.make (Tid.of_int t) o) in
    if op = op_read then event (Event.Read (Vid.of_int (target ())))
    else if op = op_write then event (Event.Write (Vid.of_int (target ())))
    else if op = op_acquire then event (Event.Acquire (Lid.of_int (target ())))
    else if op = op_release then event (Event.Release (Lid.of_int (target ())))
    else if op = op_fork then event (Event.Fork (Tid.of_int (target ())))
    else if op = op_join then event (Event.Join (Tid.of_int (target ())))
    else if op = op_begin then event Event.Begin
    else if op = op_end then event Event.End
    else corrupt "unknown opcode %d" op

let add_u64_le buf n =
  for k = 0 to 7 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * k)) land 0xff))
  done

let write_channel ?(last_use = true) ?(stats = true) oc tr =
  let stats = last_use && stats in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    (if stats then magic_v3 else if last_use then magic_v2 else magic);
  put_uint buf (Trace.threads tr);
  put_uint buf (Trace.locks tr);
  put_uint buf (Trace.vars tr);
  put_uint buf (Trace.length tr);
  let lt =
    if last_use then
      Some (Lifetime.create ~vars:(Trace.vars tr) ~locks:(Trace.locks tr))
    else None
  in
  let vs =
    if stats then Some (Varstats.create ~vars:(Trace.vars tr) ~locks:(Trace.locks tr))
    else None
  in
  let i = ref 0 in
  Trace.iter
    (fun e ->
      (match lt with Some lt -> Lifetime.note lt !i e | None -> ());
      (match vs with Some vs -> Varstats.note vs e | None -> ());
      incr i;
      encode_event buf e;
      if Buffer.length buf > 60000 then begin
        Buffer.output_buffer oc buf;
        Buffer.clear buf
      end)
    tr;
  (match lt with
  | None -> ()
  | Some lt ->
    let fb = Buffer.create 4096 in
    Array.iter (fun i -> put_uint fb (i + 1)) lt.Lifetime.vars;
    Array.iter (fun i -> put_uint fb (i + 1)) lt.Lifetime.locks;
    (match vs with
    | None -> ()
    | Some vs ->
      for x = 0 to Trace.vars tr - 1 do
        put_uint fb (Varstats.var_mask vs x);
        put_uint fb (Varstats.var_writes vs x)
      done;
      for l = 0 to Trace.locks tr - 1 do
        put_uint fb (Varstats.lock_mask vs l)
      done);
    Buffer.add_buffer buf fb;
    add_u64_le buf (Buffer.length fb);
    Buffer.add_string buf footer_magic);
  Buffer.output_buffer oc buf

let write_file ?last_use ?stats path tr =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> write_channel ?last_use ?stats oc tr)

let channel_next ic () = try input_byte ic with End_of_file -> -1

(* Buffered byte source: one [input] syscall per chunk instead of one
   [input_byte] C call (and channel lock) per byte.  Decoding reads 2-4
   bytes per event, so the per-byte call overhead is measurable on
   multi-million-event traces. *)
let chunk_size = 65536

type reader = {
  r_ic : in_channel;
  r_buf : Bytes.t;
  mutable r_pos : int;
  mutable r_len : int;  (* -1 once the channel is exhausted *)
}

let reader_of_channel ic =
  { r_ic = ic; r_buf = Bytes.create chunk_size; r_pos = 0; r_len = 0 }

let rec reader_next r () =
  if r.r_pos < r.r_len then begin
    let b = Char.code (Bytes.unsafe_get r.r_buf r.r_pos) in
    r.r_pos <- r.r_pos + 1;
    b
  end
  else if r.r_len < 0 then -1
  else begin
    r.r_len <- input r.r_ic r.r_buf 0 chunk_size;
    r.r_pos <- 0;
    if r.r_len = 0 then r.r_len <- -1;
    reader_next r ()
  end

(* Process-wide ingestion counters (the pipelined runner decodes on a
   producer domain, hence atomic).  Updated in bulk per file/stream so
   the per-event decode loop stays branch-free; [pos_in] over-counts by
   at most one read-ahead chunk, which is the honest "bytes read from
   the file" figure. *)
let events_decoded =
  Obs.Registry.shared_counter Obs.Registry.global "ingest.binary.events_decoded"

let bytes_read =
  Obs.Registry.shared_counter Obs.Registry.global "ingest.binary.bytes_read"

let note_ingest ic n =
  if Obs.on () then begin
    Obs.Shared_counter.add events_decoded n;
    Obs.Shared_counter.add bytes_read (try pos_in ic with Sys_error _ -> 0)
  end

let read_header_ic path ic =
  let m = really_input_string ic (String.length magic) in
  let version =
    if m = magic then 1
    else if m = magic_v2 then 2
    else if m = magic_v3 then 3
    else corrupt "%s: bad magic (not a binary trace)" path
  in
  let next = channel_next ic in
  let threads = get_uint next in
  let locks = get_uint next in
  let vars = get_uint next in
  let events = get_uint next in
  {
    threads;
    locks;
    vars;
    events;
    version;
    last_use = version >= 2;
    stats = version >= 3;
  }

let with_file path f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

(* Plausibility of the declared counts against the bytes actually in
   the file, checked before any count-proportional allocation: an event
   record is at least 2 bytes (opcode + tid) and a footer entry at
   least 1 byte, so a hostile header declaring an astronomic [events]
   or [vars]/[locks] is rejected as corrupt up front instead of sizing
   builders and footer arrays to it. *)
let check_header_size path header ~remaining =
  if header.events > remaining / 2 then
    corrupt "%s: declared event count %d exceeds file size" path header.events;
  if
    header.last_use
    && (header.vars > remaining || header.locks > remaining
       || header.vars + header.locks > remaining)
  then corrupt "%s: declared id domains exceed file size" path

let checked_header_ic path ic =
  let header =
    try read_header_ic path ic
    with End_of_file -> corrupt "%s: truncated header" path
  in
  check_header_size path header
    ~remaining:(in_channel_length ic - pos_in ic);
  header

let read_header path =
  with_file path (fun ic ->
      try read_header_ic path ic
      with End_of_file -> corrupt "%s: truncated header" path)

(* --- footer decoding --- *)

let read_u64_le next path =
  let v = ref 0 in
  for k = 0 to 7 do
    match next () with
    | -1 -> corrupt "%s: truncated footer" path
    | b -> v := !v lor (b lsl (8 * k))
  done;
  !v

(* The varint entries of a last-use footer, with the bytes consumed (the
   8-byte length field is cross-checked against it). *)
let decode_footer_entries next path header =
  let counted = ref 0 in
  let cnext () =
    let b = next () in
    if b >= 0 then incr counted;
    b
  in
  let entry what i =
    match get_uint cnext with
    | exception Corrupt _ -> corrupt "%s: truncated footer" path
    | v ->
      if v > header.events then
        corrupt "%s: last-use index out of range for %s %d" path what i;
      v - 1
  in
  let vars = Array.make (max header.vars 0) Lifetime.never in
  for x = 0 to header.vars - 1 do
    vars.(x) <- entry "variable" x
  done;
  let locks = Array.make (max header.locks 0) Lifetime.never in
  for l = 0 to header.locks - 1 do
    locks.(l) <- entry "lock" l
  done;
  ({ Lifetime.vars; locks }, !counted)

(* The v3 accessor-statistics entries that follow the last-use section. *)
let decode_stats_entries next path header =
  let counted = ref 0 in
  let cnext () =
    let b = next () in
    if b >= 0 then incr counted;
    b
  in
  let entry () =
    match get_uint cnext with
    | exception Corrupt _ -> corrupt "%s: truncated footer" path
    | v -> v
  in
  let nvars = max header.vars 0 in
  let var_mask = Array.make (max nvars 1) 0 in
  let var_writes = Array.make (max nvars 1) 0 in
  for x = 0 to nvars - 1 do
    var_mask.(x) <- entry ();
    var_writes.(x) <- entry ()
  done;
  let nlocks = max header.locks 0 in
  let lock_mask = Array.make (max nlocks 1) 0 in
  for l = 0 to nlocks - 1 do
    lock_mask.(l) <- entry ()
  done;
  (Varstats.of_arrays ~var_mask ~var_writes ~lock_mask, !counted)

(* Validate (and skip) the footer that must follow the last event record
   of a v2/v3 file.  Raises [Corrupt] on any truncation, so a file cut
   anywhere — events, entries, length, trailing magic — is rejected even
   by readers that do not use the index. *)
let read_footer_tail next path header =
  let lt, counted = decode_footer_entries next path header in
  let stats, counted =
    if header.stats then begin
      let vs, c = decode_stats_entries next path header in
      (Some vs, counted + c)
    end
    else (None, counted)
  in
  let flen = read_u64_le next path in
  if flen <> counted then corrupt "%s: footer length mismatch" path;
  String.iter
    (fun c ->
      match next () with
      | -1 -> corrupt "%s: truncated footer" path
      | b -> if Char.chr b <> c then corrupt "%s: bad footer magic" path)
    footer_magic;
  (lt, stats)

(* Decode exactly [header.events] records through [f].  v2 files then
   carry the footer (validated here) and nothing else; v1 files end at
   EOF, so decoding continues until [None] and the count is checked
   after the fact. *)
let decode_events path header next f =
  let n = ref 0 in
  if header.last_use then begin
    while !n < header.events do
      match decode_event next with
      | Some e ->
        incr n;
        f e
      | None ->
        corrupt "%s: expected %d events, found %d" path header.events !n
    done;
    ignore (read_footer_tail next path header);
    if next () <> -1 then corrupt "%s: trailing garbage after footer" path
  end
  else begin
    let rec go () =
      match decode_event next with
      | Some e ->
        incr n;
        f e;
        go ()
      | None ->
        if !n <> header.events then
          corrupt "%s: expected %d events, found %d" path header.events !n
    in
    go ()
  end

let read_file path =
  with_file path (fun ic ->
      let header = checked_header_ic path ic in
      let next = reader_next (reader_of_channel ic) in
      let b = Trace.Builder.create ~capacity:(header.events + 1) () in
      decode_events path header next (Trace.Builder.add b);
      note_ingest ic header.events;
      Trace.Builder.build b)

let fold path ~init ~f =
  with_file path (fun ic ->
      let header = checked_header_ic path ic in
      let next = reader_next (reader_of_channel ic) in
      let acc = ref init in
      decode_events path header next (fun e -> acc := f !acc e);
      note_ingest ic header.events;
      (header, !acc))

let read_seq path =
  let ic = open_in_bin path in
  let header =
    try checked_header_ic path ic
    with e ->
      close_in_noerr ic;
      raise e
  in
  let closed = ref false in
  let decoded = ref 0 in
  let close () =
    if not !closed then begin
      closed := true;
      note_ingest ic !decoded;
      close_in_noerr ic
    end
  in
  let next = reader_next (reader_of_channel ic) in
  let finish n =
    if header.last_use then begin
      if n <> header.events then
        corrupt "%s: expected %d events, found %d" path header.events n;
      ignore (read_footer_tail next path header);
      if next () <> -1 then corrupt "%s: trailing garbage after footer" path
    end
    else if n <> header.events then
      corrupt "%s: expected %d events, found %d" path header.events n
  in
  let rec seq n () =
    if !closed then Seq.Nil
    else if header.last_use && n = header.events then begin
      match finish n with
      | () ->
        close ();
        Seq.Nil
      | exception e ->
        close ();
        raise e
    end
    else
      match decode_event next with
      | Some e ->
        if Obs.on () then decoded := n + 1;
        Seq.Cons (e, seq (n + 1))
      | None -> (
        match finish n with
        | () ->
          close ();
          Seq.Nil
        | exception e ->
          close ();
          raise e)
      | exception e ->
        close ();
        raise e
  in
  (header, (seq 0, close))

(* Seek from EOF to the footer varints and decode them (last-use, plus
   accessor statistics for v3) without touching the event section. *)
let read_footer_seek path =
  with_file path (fun ic ->
      let header = checked_header_ic path ic in
      if not header.last_use then None
      else begin
        let hdr_end = pos_in ic in
        let total = in_channel_length ic in
        let tail = 8 + String.length footer_magic in
        if total - hdr_end < tail then corrupt "%s: truncated footer" path;
        seek_in ic (total - tail);
        let flen = read_u64_le (channel_next ic) path in
        let m = really_input_string ic (String.length footer_magic) in
        if m <> footer_magic then corrupt "%s: bad footer magic" path;
        let start = total - tail - flen in
        if flen < 0 || start < hdr_end then
          corrupt "%s: footer length out of range" path;
        seek_in ic start;
        let remaining = ref flen in
        let next () =
          if !remaining <= 0 then -1
          else begin
            decr remaining;
            channel_next ic ()
          end
        in
        let lt, counted = decode_footer_entries next path header in
        let stats, counted =
          if header.stats then begin
            let vs, c = decode_stats_entries next path header in
            (Some vs, counted + c)
          end
          else (None, counted)
        in
        if counted <> flen then corrupt "%s: footer length mismatch" path;
        Some (lt, stats)
      end)

let read_last_use path = Option.map fst (read_footer_seek path)
let read_stats path = Option.bind (read_footer_seek path) snd

let is_binary path =
  try
    with_file path (fun ic ->
        in_channel_length ic >= String.length magic
        &&
        let m = really_input_string ic (String.length magic) in
        m = magic || m = magic_v2 || m = magic_v3)
  with _ -> false

(* --- zero-copy packed ingestion ---

   [fold_packed] decodes the event section straight into packed words
   ({!Packed}): the file is mmapped ([Unix.map_file]) and records are
   decoded in place from the mapping — no read syscalls past the page
   cache and no per-event heap allocation between the file and the
   checker.  Inputs that cannot be mapped (pipes, special files, empty
   files) fall back to the buffered channel reader, still producing
   packed words.  Footer validation, the trailing-garbage check and the
   error messages match the boxed readers, so hostile inputs fail
   identically on either path. *)

type bigbytes =
  (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let map_file path : bigbytes option =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> None
  | fd -> (
    match
      Unix.map_file fd Bigarray.int8_unsigned Bigarray.c_layout false [| -1 |]
    with
    | g ->
      Unix.close fd;
      Some (Bigarray.array1_of_genarray g)
    | exception _ ->
      Unix.close fd;
      None)

type bsrc = { bb : bigbytes; blen : int; mutable bpos : int }

let bsrc_next s () =
  if s.bpos >= s.blen then -1
  else begin
    let v = Bigarray.Array1.unsafe_get s.bb s.bpos in
    s.bpos <- s.bpos + 1;
    v
  end

let header_of_bsrc path s =
  let mlen = String.length magic in
  if s.blen < mlen then corrupt "%s: truncated header" path;
  let m = String.init mlen (fun i -> Char.chr (Bigarray.Array1.get s.bb i)) in
  let version =
    if m = magic then 1
    else if m = magic_v2 then 2
    else if m = magic_v3 then 3
    else corrupt "%s: bad magic (not a binary trace)" path
  in
  s.bpos <- mlen;
  let next = bsrc_next s in
  let header =
    try
      let threads = get_uint next in
      let locks = get_uint next in
      let vars = get_uint next in
      let events = get_uint next in
      {
        threads;
        locks;
        vars;
        events;
        version;
        last_use = version >= 2;
        stats = version >= 3;
      }
    with Corrupt _ -> corrupt "%s: truncated header" path
  in
  check_header_size path header ~remaining:(s.blen - s.bpos);
  header

(* The mmap hot loop: LEB128 decoded inline from the mapping with a
   local position, one packed word per record out. *)
let fold_packed_bb path header s ~init ~f =
  let b = s.bb in
  let len = s.blen in
  let pos = ref s.bpos in
  (* the recursion lives at this level, not inside a per-call wrapper —
     a closure built per LEB128 read would put ~14 words of garbage on
     every event of the "zero-copy" path *)
  let rec get_u shift acc =
    if shift > 56 then corrupt "id overflow"
    else if !pos >= len then corrupt "truncated integer"
    else begin
      let byte = Bigarray.Array1.unsafe_get b !pos in
      incr pos;
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then acc else get_u (shift + 7) acc
    end
  in
  (* one-byte varints are the overwhelmingly common case (thread ids
     almost always, variable ids often); decode them inline and only
     call into the loop for multi-byte encodings *)
  let get_u_fast () =
    if !pos >= len then corrupt "truncated integer"
    else begin
      let b0 = Bigarray.Array1.unsafe_get b !pos in
      incr pos;
      if b0 < 0x80 then b0 else get_u 7 (b0 land 0x7f)
    end
  in
  let acc = ref init in
  (* the record decode is spelled out in the loop bodies — the word is
     assembled with the codec's shift constants rather than
     [Packed.pack], because without cross-module inlining a function
     call per event here costs ~10% of the whole decode *)
  let n = ref 0 in
  if header.last_use then begin
    while !n < header.events do
      if !pos >= len then
        corrupt "%s: expected %d events, found %d" path header.events !n;
      let op = Bigarray.Array1.unsafe_get b !pos in
      incr pos;
      if op > op_end then corrupt "unknown opcode %d" op;
      let t = get_u_fast () in
      let d = if op < op_begin then get_u_fast () else 0 in
      if t > Packed.max_tid || d > Packed.max_target then
        corrupt "%s: id exceeds packed range" path;
      acc := f !acc (op lor (t lsl 3) lor (d lsl Packed.target_shift));
      incr n
    done;
    s.bpos <- !pos;
    let next = bsrc_next s in
    ignore (read_footer_tail next path header);
    if next () <> -1 then corrupt "%s: trailing garbage after footer" path
  end
  else begin
    while !pos < len do
      let op = Bigarray.Array1.unsafe_get b !pos in
      incr pos;
      if op > op_end then corrupt "unknown opcode %d" op;
      let t = get_u_fast () in
      let d = if op < op_begin then get_u_fast () else 0 in
      if t > Packed.max_tid || d > Packed.max_target then
        corrupt "%s: id exceeds packed range" path;
      acc := f !acc (op lor (t lsl 3) lor (d lsl Packed.target_shift));
      incr n
    done;
    if !n <> header.events then
      corrupt "%s: expected %d events, found %d" path header.events !n
  end;
  !acc

(* Channel fallback: same records, same errors, buffered byte source. *)
let fold_packed_channel path header next ~init ~f =
  let acc = ref init in
  let decode_one op =
    let t = get_uint next in
    let d = if op < op_begin then get_uint next else 0 in
    if t > Packed.max_tid || d > Packed.max_target then
      corrupt "%s: id exceeds packed range" path;
    acc := f !acc (Packed.pack ~op ~tid:t ~target:d)
  in
  let n = ref 0 in
  if header.last_use then begin
    while !n < header.events do
      match next () with
      | -1 -> corrupt "%s: expected %d events, found %d" path header.events !n
      | op ->
        if op > op_end then corrupt "unknown opcode %d" op;
        decode_one op;
        incr n
    done;
    ignore (read_footer_tail next path header);
    if next () <> -1 then corrupt "%s: trailing garbage after footer" path
  end
  else begin
    let continue = ref true in
    while !continue do
      match next () with
      | -1 -> continue := false
      | op ->
        if op > op_end then corrupt "unknown opcode %d" op;
        decode_one op;
        incr n
    done;
    if !n <> header.events then
      corrupt "%s: expected %d events, found %d" path header.events !n
  end;
  !acc

let note_ingest_bytes n bytes =
  if Obs.on () then begin
    Obs.Shared_counter.add events_decoded n;
    Obs.Shared_counter.add bytes_read bytes
  end

let fold_packed path ~init ~f =
  match map_file path with
  | Some bb ->
    let s = { bb; blen = Bigarray.Array1.dim bb; bpos = 0 } in
    let header = header_of_bsrc path s in
    let acc = fold_packed_bb path header s ~init ~f in
    note_ingest_bytes header.events s.blen;
    (header, acc)
  | None ->
    with_file path (fun ic ->
        let header = checked_header_ic path ic in
        let next = reader_next (reader_of_channel ic) in
        let acc = fold_packed_channel path header next ~init ~f in
        note_ingest ic header.events;
        (header, acc))

let read_packed path =
  let a = Packed.Arena.create () in
  let header, () =
    fold_packed path ~init:() ~f:(fun () w -> Packed.Arena.push a w)
  in
  (header, a)

(* ---- packed-window re-encoding (violation flight recorder) ---- *)

(* Serialize a window of packed words as a stand-alone version-1 file.
   The header keeps the source trace's id domains so thread/lock/var
   ids in the slice stay meaningful, and the event count is the window
   length.  Version 1 deliberately: a slice has no use for last-use or
   accessor footers (it exists to be replayed once, not optimized), and
   v1 is the format every reader path accepts. *)
let write_packed_window path ~threads ~locks ~vars (words : int array) =
  let buf = Buffer.create (min 65536 ((16 * Array.length words) + 64)) in
  Buffer.add_string buf magic;
  put_uint buf threads;
  put_uint buf locks;
  put_uint buf vars;
  put_uint buf (Array.length words);
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Array.iter
        (fun w ->
          let op = Packed.opcode w in
          Buffer.add_char buf (Char.chr op);
          put_uint buf (Packed.tid w);
          if op <> op_begin && op <> op_end then put_uint buf (Packed.target w);
          if Buffer.length buf > 60000 then begin
            Buffer.output_buffer oc buf;
            Buffer.clear buf
          end)
        words;
      Buffer.output_buffer oc buf)
