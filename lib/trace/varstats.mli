(** Whole-trace accessor statistics for variables and locks.

    For each variable: the set of threads that access it (as a bitmask)
    and how many write events it receives; for each lock: the set of
    threads that acquire or release it.  These are exactly the facts the
    {!Prefilter} needs to decide, soundly and per event, whether an
    access can ever contribute a cross-thread conflict edge.

    Statistics are gathered in one cheap pass — over a materialized
    trace ({!of_trace}), during the text parser's interning pass, or
    while scanning a binary file — and persisted in the binfmt v3
    footer so later runs skip the pass entirely.

    Thread ids at or above {!mask_width} cannot be given their own bit;
    they all fold into a shared overflow bit, which makes the
    single-threaded tests report [false] for any object such a thread
    touches.  That direction is conservative: the prefilter merely
    keeps events it could otherwise have dropped. *)

type t

val mask_width : int
(** Number of thread ids with a dedicated mask bit (62; higher ids share
    the overflow bit). *)

val create : vars:int -> locks:int -> t
(** Empty statistics; the arrays grow on demand as {!note} sees larger
    ids, so the initial sizes are only a hint. *)

val note : t -> Event.t -> unit
(** Record one event.  Fork/join/begin/end do not touch any variable or
    lock and are ignored. *)

val of_trace : Trace.t -> t

val of_arrays :
  var_mask:int array -> var_writes:int array -> lock_mask:int array -> t
(** Rebuild statistics from decoded footer arrays (takes ownership). *)

val vars : t -> int
(** Number of variable slots with recorded data. *)

val locks : t -> int

val var_mask : t -> int -> int
(** Accessor-thread bitmask of variable [x]; 0 when never accessed or
    out of range. *)

val var_writes : t -> int -> int
(** Number of write events to variable [x]. *)

val lock_mask : t -> int -> int

val var_single_threaded : t -> int -> bool
(** True when the variable is accessed by exactly one thread whose id is
    below {!mask_width}.  Never true for untouched variables. *)

val var_read_only : t -> int -> bool
(** True when the variable is accessed but never written. *)

val lock_single_threaded : t -> int -> bool
(** True when the lock is only ever acquired/released by one thread. *)
