(** Sound streaming trace reduction.

    Drops events that provably cannot affect the conflict-serializability
    verdict, so the checkers process a shorter trace:

    - rule (a) {e thread-local}: accesses to a variable only ever
      touched by one thread — every conflict edge it could justify is a
      same-thread edge, already implied by program order;
    - rule (b) {e read-only}: accesses to a variable that is never
      written — reads do not conflict with reads;
    - rule (c) {e redundant}: a repeated same-variable access within one
      transaction whose conflict edges are all covered by an earlier
      access of the same transaction (a re-read with no interposed
      retained write, a re-write with no interposed retained access);
    - rule (d) {e lock-local}: acquires/releases of a lock only ever
      held by one thread — release-to-acquire edges need two threads.

    Two modes.  {!Exact} knows the whole-trace {!Varstats} up front
    (from a materialized trace, the binfmt v3 footer, the text parser's
    interning pass, or a dedicated pre-scan) and applies all four rules
    as a pure per-event decision.  {!Online} is single-pass: rule (c) is
    applied exactly, while for (a), (b) and (d) it buffers a variable's
    (or lock's) events while the object is still single-owner, flushes
    the buffer — in order, ahead of the disqualifying event — the moment
    a second thread or a first write shows up, and drops whatever is
    still buffered at end of stream.  Buffers are also flushed at the
    owning thread's outermost begin/end so every event is emitted within
    the transaction it belongs to; consequently the online mode can only
    drop (a)/(b)/(d) events whose enclosing transaction is still open at
    the end of the trace (for closed transactions a single-pass filter
    provably cannot decide early — see DESIGN.md §13).

    Both modes preserve the verdict of every checker: the reduced trace
    has a conflict-serializability violation iff the original does.
    Violation {e indices} refer to the reduced stream. *)

type mode =
  | Exact of Varstats.t  (** whole-trace statistics known up front *)
  | Online  (** single pass, adaptive buffering *)

type counts = {
  mutable events_in : int;
  mutable kept : int;  (** events emitted downstream *)
  mutable thread_local : int;  (** rule (a) drops *)
  mutable read_only : int;  (** rule (b) drops *)
  mutable redundant : int;  (** rule (c) drops *)
  mutable lock_local : int;  (** rule (d) drops *)
  mutable flushed : int;  (** online: buffered events force-emitted *)
  mutable pending_hwm : int;  (** online: peak single-thread buffer size *)
}

val elided : counts -> int
(** Total drops across the four rules. *)

type t

val create : ?cap:int -> mode -> t
(** A fresh filter.  [cap] bounds each thread's online buffer (default
    32768); overflowing buffers are flushed, trading reduction for
    memory.  Ignored in exact mode. *)

val feed : t -> Event.t -> (Event.t -> unit) -> unit
(** [feed t e emit] pushes one event; [emit] is called for each retained
    event ready to go downstream (possibly several: a flush; possibly
    none: a drop or a buffer). *)

val finish : t -> (Event.t -> unit) -> unit
(** End of stream: emits or drops any buffered events, then publishes
    the per-rule counters to the ambient {!Obs.Scope} (when telemetry is
    enabled) as [prefilter.*] entries. *)

val feed_packed : t -> int -> (int -> unit) -> unit
(** {!feed} over {!Packed} words.  In exact mode the rule engine runs
    entirely on the bit slices — elided events are never materialized as
    {!Event.t}.  Online mode buffers boxed events internally (per-thread
    queues), so packed callers pay an unpack/repack per event there; the
    runner only routes a packed stream through online mode when the user
    forced it explicitly. *)

val finish_packed : t -> (int -> unit) -> unit
(** {!finish} for packed consumers. *)

val counts : t -> counts

val filter_seq : t -> Event.t Seq.t -> Event.t Seq.t
(** The filtered stream, [finish] included after the last element.  The
    result is ephemeral (backed by [t]'s mutable state): force it once. *)

val run_trace : [ `Exact | `Online ] -> Trace.t -> Trace.t * counts
(** Filter a materialized trace ([`Exact] computes {!Varstats.of_trace}
    itself).  Symbols are carried over so reports keep the input's
    vocabulary; id-domain sizes are re-inferred from the surviving
    events. *)
