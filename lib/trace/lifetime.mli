(** Last-use index: the event index of each variable's and lock's final
    access.

    A checker holding this oracle can release a variable's entire clock
    state the moment its last access is processed, making peak memory
    proportional to the {e live} variables instead of all of them.  The
    index is computed for free during the text parser's interning pass
    ({!Parser.fold_file}), stored in the binary format's optional footer
    ({!Binfmt}), or derived from a materialized trace ({!of_trace}). *)

type t = {
  vars : int array;
      (** [vars.(x)] is the 0-based index of the last read or write of
          variable [x], or [never] if it is never accessed. *)
  locks : int array;
      (** [locks.(l)] likewise for acquire/release of lock [l]. *)
}

val never : int
(** The sentinel [-1] for "never accessed". *)

val create : vars:int -> locks:int -> t
(** All entries [never]. *)

val note : t -> int -> Event.t -> unit
(** [note t i e] records event [e] at index [i]: accesses overwrite the
    entry, so after a full in-order pass each entry holds the final
    access.  Non-access events are ignored. *)

val of_trace : Trace.t -> t
(** One pass over a materialized trace. *)

val last_var : t -> int -> int
(** Bounds-safe lookup; [never] out of range. *)

val last_lock : t -> int -> int
