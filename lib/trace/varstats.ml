open Ids

(* Bit 62 is the overflow bit shared by every thread id >= 62, so the
   mask always fits a non-negative OCaml int (and a single varint in the
   binfmt v3 footer).  An object touched by an overflow thread is never
   classified single-threaded — the conservative direction. *)
let mask_width = 62
let overflow_bit = 1 lsl mask_width
let bit_of_thread t = if t < mask_width then 1 lsl t else overflow_bit

type t = {
  mutable var_mask : int array;
  mutable var_writes : int array;
  mutable lock_mask : int array;
}

let create ~vars ~locks =
  {
    var_mask = Array.make (max vars 1) 0;
    var_writes = Array.make (max vars 1) 0;
    lock_mask = Array.make (max locks 1) 0;
  }

let grow a n =
  let cap = Array.length a in
  if n <= cap then a
  else begin
    let a' = Array.make (max n (2 * cap)) 0 in
    Array.blit a 0 a' 0 cap;
    a'
  end

let ensure_var st x =
  if x >= Array.length st.var_mask then begin
    st.var_mask <- grow st.var_mask (x + 1);
    st.var_writes <- grow st.var_writes (x + 1)
  end

let ensure_lock st l =
  if l >= Array.length st.lock_mask then st.lock_mask <- grow st.lock_mask (l + 1)

let note st (e : Event.t) =
  let t = Tid.to_int e.thread in
  match e.op with
  | Event.Read x ->
    let x = Vid.to_int x in
    ensure_var st x;
    st.var_mask.(x) <- st.var_mask.(x) lor bit_of_thread t
  | Event.Write x ->
    let x = Vid.to_int x in
    ensure_var st x;
    st.var_mask.(x) <- st.var_mask.(x) lor bit_of_thread t;
    st.var_writes.(x) <- st.var_writes.(x) + 1
  | Event.Acquire l | Event.Release l ->
    let l = Lid.to_int l in
    ensure_lock st l;
    st.lock_mask.(l) <- st.lock_mask.(l) lor bit_of_thread t
  | Event.Fork _ | Event.Join _ | Event.Begin | Event.End -> ()

let of_trace tr =
  let st = create ~vars:(Trace.vars tr) ~locks:(Trace.locks tr) in
  Trace.iter (note st) tr;
  st

let of_arrays ~var_mask ~var_writes ~lock_mask =
  if Array.length var_mask <> Array.length var_writes then
    invalid_arg "Varstats.of_arrays: mask/writes length mismatch";
  { var_mask; var_writes; lock_mask }

let vars st = Array.length st.var_mask
let locks st = Array.length st.lock_mask
let var_mask st x = if x >= 0 && x < vars st then st.var_mask.(x) else 0
let var_writes st x = if x >= 0 && x < vars st then st.var_writes.(x) else 0
let lock_mask st l = if l >= 0 && l < locks st then st.lock_mask.(l) else 0

let single m = m <> 0 && m land overflow_bit = 0 && m land (m - 1) = 0
let var_single_threaded st x = single (var_mask st x)
let var_read_only st x = var_mask st x <> 0 && var_writes st x = 0
let lock_single_threaded st l = single (lock_mask st l)
