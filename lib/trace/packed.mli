(** Flat packed event representation for the ingestion hot path.

    One event is one immediate OCaml int — opcode, thread id and target
    id bit-sliced into a single nonnegative word:

    {v
    bit 63  62  61 ............. 24  23 ............ 3  2 ... 0
    (sign)  0   target (38 bits)     tid (21 bits)     op
    v}

    Bit 62 (the sign bit of a 63-bit int) stays clear, so every packed
    word is nonnegative and [-1] is an unambiguous end-of-stream
    sentinel.

    Decoding binfmt straight into packed words ({!Binfmt.fold_packed})
    and feeding them to a checker's [feed_packed] entry removes every
    per-event heap allocation between the file and the vector-clock
    work.  The boxed {!Event.t} path remains the reference
    implementation; packed and boxed are differential-tested for
    identical verdicts and reports.

    Packed words are nonnegative, so [-1] serves as the end-of-stream
    sentinel ({!Cursor.next}).  Traces whose id domains exceed the slice
    widths use the boxed path — {!fits} is the guard. *)

(** {1 Opcodes}

    Identical to the binfmt record opcodes. *)

val op_read : int
val op_write : int
val op_acquire : int
val op_release : int
val op_fork : int
val op_join : int
val op_begin : int
val op_end : int

(** {1 Word codec} *)

val max_tid : int
(** Largest encodable thread id, [2^21 - 1]. *)

val max_target : int
(** Largest encodable variable/lock/thread target id, [2^38 - 1]. *)

val target_shift : int
(** Bit position of the target slice (the layout constant callers on the
    decode hot path use to assemble words without a {!pack} call). *)

val fits : threads:int -> locks:int -> vars:int -> bool
(** Do id domains of these sizes pack losslessly? *)

val pack : op:int -> tid:int -> target:int -> int
(** Assemble a word.  Ids must be within {!max_tid}/{!max_target} and
    [op] within [0..7]; out-of-range values silently corrupt the word
    (the binary reader range-checks before packing). *)

val opcode : int -> int
val tid : int -> int
val target : int -> int

val of_event : Event.t -> int
(** Pack a boxed event ([Begin]/[End] get target 0).  The event's ids
    must satisfy {!fits}. *)

val to_event : int -> Event.t
(** Materialize the boxed event (allocates; the packed hot paths only
    call this at a violation or when bridging to a boxed-only
    consumer). *)

type chunk = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A fixed-size block of packed words, off the OCaml heap.  A full
    chunk is immutable and may be handed to another domain (the
    pipelined runner's batches are arena chunks). *)

val make_chunk : int -> chunk

(** Growable flat event store: appended chunks, never copied. *)
module Arena : sig
  type nonrec chunk = chunk

  type t

  val create : ?chunk_words:int -> unit -> t
  (** [chunk_words] (default [65536]) is rounded up to a power of two. *)

  val chunk_words : t -> int
  val push : t -> int -> unit
  val length : t -> int

  val capacity_words : t -> int
  (** Words of chunk storage held (≥ {!length}). *)

  val get : t -> int -> int
  (** Random access; [Invalid_argument] out of range. *)

  val iter : t -> (int -> unit) -> unit

  val iter_chunks : t -> (chunk -> int -> unit) -> unit
  (** Chunks in order with their filled lengths; only the final chunk
      may be partially filled. *)

  val iter_range : t -> int -> int -> (int -> unit) -> unit
  (** [iter_range t start stop f] applies [f] to the words of
      [start .. stop-1] in order.  Disjoint ranges of a fully built
      arena may be walked from different domains concurrently (the
      sharded checker's chunk batches).  [Invalid_argument] when the
      range is out of bounds. *)
end

(** Sequential reader over an arena. *)
module Cursor : sig
  type t

  val of_arena : Arena.t -> t

  val next : t -> int
  (** The next packed word, or [-1] at end of stream. *)
end
