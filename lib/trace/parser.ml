open Ids

type error = { line : int; message : string }

exception Parse_error of error

let fail line fmt = Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* Splits "thread|op|rest" into fields; extra fields beyond the second are
   ignored (RAPID logs carry a source-location third field). *)
let split_fields s =
  String.split_on_char '|' s |> List.map String.trim

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' | '$' | '@' -> true
  | _ -> false

let check_name line what s =
  if s = "" then fail line "empty %s name" what;
  String.iter
    (fun c -> if not (is_name_char c) then fail line "bad character %C in %s name %S" c what s)
    s

(* Parses an operation "kind(target)" or a bare keyword. *)
let parse_op line ~threads ~locks ~vars s =
  let with_target kind =
    match (String.index_opt s '(', String.rindex_opt s ')') with
    | Some i, Some j when j = String.length s - 1 && i < j ->
      let target = String.trim (String.sub s (i + 1) (j - i - 1)) in
      check_name line kind target;
      target
    | _ -> fail line "malformed operation %S (expected %s(target))" s kind
  in
  let kind =
    match String.index_opt s '(' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  match String.lowercase_ascii kind with
  | "r" | "read" -> Event.Read (Vid.of_int (Interner.intern vars (with_target kind)))
  | "w" | "write" -> Event.Write (Vid.of_int (Interner.intern vars (with_target kind)))
  | "acq" | "acquire" | "lock" ->
    Event.Acquire (Lid.of_int (Interner.intern locks (with_target kind)))
  | "rel" | "release" | "unlock" ->
    Event.Release (Lid.of_int (Interner.intern locks (with_target kind)))
  | "fork" -> Event.Fork (Tid.of_int (Interner.intern threads (with_target kind)))
  | "join" -> Event.Join (Tid.of_int (Interner.intern threads (with_target kind)))
  | "begin" | "b" -> Event.Begin
  | "end" | "e" -> Event.End
  | other -> fail line "unknown operation %S" other

(* One raw line against the interners; [None] for blanks and comments. *)
let parse_event_line ~threads ~locks ~vars lineno raw =
  let line = String.trim raw in
  if line = "" || line.[0] = '#' then None
  else
    match split_fields line with
    | thread :: op :: _ ->
      check_name lineno "thread" thread;
      let tid = Tid.of_int (Interner.intern threads thread) in
      let op = parse_op lineno ~threads ~locks ~vars op in
      Some (Event.make tid op)
    | _ -> fail lineno "expected thread|operation, got %S" line

let parse_lines_exn lines =
  let threads = Interner.create ()
  and locks = Interner.create ()
  and vars = Interner.create () in
  let events = ref [] in
  let lineno = ref 0 in
  Seq.iter
    (fun raw ->
      incr lineno;
      match parse_event_line ~threads ~locks ~vars !lineno raw with
      | Some e -> events := e :: !events
      | None -> ())
    lines;
  let symbols : Trace.Symbols.t =
    {
      threads = Interner.names threads;
      locks = Interner.names locks;
      vars = Interner.names vars;
    }
  in
  Trace.of_events ~symbols (List.rev !events)

let parse_lines lines =
  match parse_lines_exn lines with
  | tr -> Ok tr
  | exception Parse_error e -> Error e

let seq_of_string s = String.split_on_char '\n' s |> List.to_seq

let parse_string s = parse_lines (seq_of_string s)
let parse_string_exn s = parse_lines_exn (seq_of_string s)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path = parse_string (read_file path)
let parse_file_exn path = parse_string_exn (read_file path)

(* Fold [f acc lineno raw] over the file's lines without loading the file:
   one [In_channel.input_line] at a time, constant memory. *)
let fold_raw_lines path f init =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lineno = ref 0 in
      let rec go acc =
        match In_channel.input_line ic with
        | None -> acc
        | Some raw ->
          incr lineno;
          go (f acc !lineno raw)
      in
      go init)

(* Streaming parse.  The domain sizes live at arbitrary points of a text
   trace (a name's id is its order of first appearance), so a single pass
   cannot announce them before the first event; we read the file twice
   instead: pass 1 interns every name, pass 2 replays the (now-complete)
   interners and folds the events.  Memory is the symbol tables plus one
   line, independent of the event count. *)
(* Process-wide ingestion counters; bulk-updated after pass 2 so the
   line loop itself only pays local ref updates while telemetry is on. *)
let events_parsed =
  Obs.Registry.shared_counter Obs.Registry.global "ingest.text.events_parsed"

let lines_read =
  Obs.Registry.shared_counter Obs.Registry.global "ingest.text.lines_read"

(* Growable last-access array for pass 1: ids are interned on the fly,
   so the domain sizes are unknown until the pass ends. *)
let ensure a i =
  let n = Array.length !a in
  if i >= n then begin
    let grown = Array.make (max (2 * n) (i + 1)) Lifetime.never in
    Array.blit !a 0 grown 0 n;
    a := grown
  end

let shrink a count =
  Array.init count (fun i -> if i < Array.length !a then !a.(i) else Lifetime.never)

let fold_file_exn ?last_use ?stats path ~init ~f =
  let threads = Interner.create ()
  and locks = Interner.create ()
  and vars = Interner.create () in
  (match (last_use, stats) with
  | None, None ->
    fold_raw_lines path
      (fun () lineno raw ->
        ignore (parse_event_line ~threads ~locks ~vars lineno raw))
      ()
  | _ ->
    (* The interning pass already decodes every event, so the last-use
       index and the accessor statistics come for free: record the
       running event index (and accessor masks) per id. *)
    let last_v = ref (Array.make 64 Lifetime.never)
    and last_l = ref (Array.make 16 Lifetime.never) in
    let vs =
      match stats with
      | None -> None
      | Some _ -> Some (Varstats.create ~vars:64 ~locks:16)
    in
    let n =
      fold_raw_lines path
        (fun n lineno raw ->
          match parse_event_line ~threads ~locks ~vars lineno raw with
          | None -> n
          | Some e ->
            (match vs with Some vs -> Varstats.note vs e | None -> ());
            (match e.Event.op with
            | Event.Read x | Event.Write x ->
              let x = Ids.Vid.to_int x in
              ensure last_v x;
              !last_v.(x) <- n
            | Event.Acquire l | Event.Release l ->
              let l = Ids.Lid.to_int l in
              ensure last_l l;
              !last_l.(l) <- n
            | Event.Fork _ | Event.Join _ | Event.Begin | Event.End -> ());
            n + 1)
        0
    in
    ignore n;
    (match last_use with
    | None -> ()
    | Some notify ->
      notify
        {
          Lifetime.vars = shrink last_v (Interner.count vars);
          locks = shrink last_l (Interner.count locks);
        });
    match (stats, vs) with
    | Some notify, Some vs -> notify vs
    | _ -> ());
  let acc =
    init ~threads:(Interner.count threads) ~locks:(Interner.count locks)
      ~vars:(Interner.count vars)
  in
  let counting = Obs.on () in
  let nlines = ref 0 and nevents = ref 0 in
  let acc =
    fold_raw_lines path
      (fun acc lineno raw ->
        if counting then nlines := lineno;
        match parse_event_line ~threads ~locks ~vars lineno raw with
        | Some e ->
          if counting then incr nevents;
          f acc e
        | None -> acc)
      acc
  in
  if counting then begin
    Obs.Shared_counter.add lines_read !nlines;
    Obs.Shared_counter.add events_parsed !nevents
  end;
  acc

let fold_file ?last_use ?stats path ~init ~f =
  match fold_file_exn ?last_use ?stats path ~init ~f with
  | acc -> Ok acc
  | exception Parse_error e -> Error e

let render_event symbols buf (e : Event.t) =
  let add = Buffer.add_string buf in
  let s = (symbols : Trace.Symbols.t) in
  add (Trace.Symbols.thread s e.thread);
  add "|";
  (match e.op with
  | Event.Read x -> add ("r(" ^ Trace.Symbols.var s x ^ ")")
  | Event.Write x -> add ("w(" ^ Trace.Symbols.var s x ^ ")")
  | Event.Acquire l -> add ("acq(" ^ Trace.Symbols.lock s l ^ ")")
  | Event.Release l -> add ("rel(" ^ Trace.Symbols.lock s l ^ ")")
  | Event.Fork u -> add ("fork(" ^ Trace.Symbols.thread s u ^ ")")
  | Event.Join u -> add ("join(" ^ Trace.Symbols.thread s u ^ ")")
  | Event.Begin -> add "begin"
  | Event.End -> add "end");
  Buffer.add_char buf '\n'

let default_symbols : Trace.Symbols.t = { threads = [||]; locks = [||]; vars = [||] }

let to_string tr =
  let symbols = Option.value ~default:default_symbols (Trace.symbols tr) in
  let buf = Buffer.create (16 * Trace.length tr) in
  Trace.iter (render_event symbols buf) tr;
  Buffer.contents buf

let to_channel oc tr = output_string oc (to_string tr)

let to_file path tr =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> to_channel oc tr)

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message
