(** Violation flight recorder: bounded per-thread rings over packed
    words.

    A recorder rides along a checker: every event is {!note}d (stream
    index plus packed word) immediately before it is fed, and each
    thread's ring keeps its last [window] events.  After a violation at
    stream index [v], {!window} reconstructs a {e replayable} slice
    [[p, v]] whenever the rings still fully retain the suffix of some
    {b globally quiescent} position [p] (no thread inside a
    transaction).  Quiescence makes the slice sound to replay from ⊥
    clock state (the DESIGN.md §15 exactness argument, reused in §16):
    since the violation at [v] was the run's first, replaying the slice
    must report a violation at slice index [v - p] — same event, same
    site.

    Bookkeeping is O(1) per event with two candidate cut positions
    ([best] and [latest]); see flight.ml for the feasibility argument.
    The recorder is single-domain and index-monotonic: [note] must see
    strictly increasing indices in one coordinate space (the fed
    stream's — the same space as [Violation.index]). *)

type t

val default_window : int
(** 256 — the conventional per-thread ring capacity. *)

val create : ?window:int -> ?depths:int array -> threads:int -> unit -> t
(** A recorder with [window]-event rings for [threads] threads (rings
    grow on demand if larger thread ids appear).  [?depths] seeds the
    per-thread open-transaction depth for a recorder starting
    mid-trace at a non-quiescent cut (a sharded chunk's boundary
    summary): no position counts as quiescent until every seeded
    straddler has closed its transaction.
    @raise Invalid_argument when [window < 1]. *)

val window_size : t -> int
(** The per-thread ring capacity. *)

val note : t -> int -> int -> unit
(** [note t index word]: record the packed event about to be fed at
    stream position [index] (0-based).  Call before the feed, and stop
    calling once the checker reports a violation — the ring tail then
    ends exactly at the violating event. *)

val noted : t -> int
(** Total events noted. *)

val threads : t -> int
(** Number of thread slots currently allocated. *)

val depth : t -> int -> int
(** Open-transaction depth of a thread (0 for unseen threads). *)

val thread_tail : t -> int -> (int * int) list
(** Retained [(index, word)] tail of one thread's ring, oldest first. *)

val retained : t -> int -> int
(** Events a thread's ring currently holds. *)

val last_seen : t -> int -> int
(** Stream index of a thread's most recent retained event, [-1] when
    its ring is empty. *)

val window : t -> (int * int array) option
(** [Some (start, words)] — the retained slice from the oldest feasible
    quiescent position through the last noted event, [words.(k)] being
    event [start + k] — or [None] when eviction has truncated every
    quiescent cut (the witness is then context-only, not replayable). *)
