(* One event in one immediate int.  The packed word mirrors the binfmt
   record — opcode, thread, target id — bit-sliced instead of
   LEB128-encoded, so ingestion can hand the checkers a flat int stream
   with no per-event heap allocation:

     bit 63  62  61 ............. 24  23 ............ 3  2 ... 0
     (sign)  0   target (38 bits)     tid (21 bits)     op

   Bit 62 — the sign bit of a 63-bit OCaml int — stays clear: a 39-bit
   target slice would reach it, making maximal words negative and the
   all-ones word collide with [-1], the end-of-stream sentinel
   ({!Cursor.next}).  With 38 target bits every packed word is
   nonnegative and the sentinel is unambiguous.  Traces whose id
   domains exceed the slice widths (2^21 threads, 2^38 variables/locks)
   fall back to the boxed [Event.t] path; {!fits} is the guard the
   runner consults. *)

let op_read = 0
let op_write = 1
let op_acquire = 2
let op_release = 3
let op_fork = 4
let op_join = 5
let op_begin = 6
let op_end = 7

let tid_bits = 21
let target_bits = 38
let max_tid = (1 lsl tid_bits) - 1
let max_target = (1 lsl target_bits) - 1
let target_shift = 3 + tid_bits

let [@inline] pack ~op ~tid ~target =
  op lor (tid lsl 3) lor (target lsl target_shift)

let [@inline] opcode w = w land 7
let [@inline] tid w = (w lsr 3) land max_tid
let [@inline] target w = w lsr target_shift

let fits ~threads ~locks ~vars =
  threads <= max_tid + 1 && locks <= max_target + 1 && vars <= max_target + 1

let of_event (e : Event.t) =
  let t = Ids.Tid.to_int e.thread in
  match e.op with
  | Event.Read x -> pack ~op:op_read ~tid:t ~target:(Ids.Vid.to_int x)
  | Event.Write x -> pack ~op:op_write ~tid:t ~target:(Ids.Vid.to_int x)
  | Event.Acquire l -> pack ~op:op_acquire ~tid:t ~target:(Ids.Lid.to_int l)
  | Event.Release l -> pack ~op:op_release ~tid:t ~target:(Ids.Lid.to_int l)
  | Event.Fork u -> pack ~op:op_fork ~tid:t ~target:(Ids.Tid.to_int u)
  | Event.Join u -> pack ~op:op_join ~tid:t ~target:(Ids.Tid.to_int u)
  | Event.Begin -> pack ~op:op_begin ~tid:t ~target:0
  | Event.End -> pack ~op:op_end ~tid:t ~target:0

let to_event w =
  let t = tid w and d = target w in
  let op = opcode w in
  if op = op_read then Event.read t d
  else if op = op_write then Event.write t d
  else if op = op_acquire then Event.acquire t d
  else if op = op_release then Event.release t d
  else if op = op_fork then Event.fork t d
  else if op = op_join then Event.join t d
  else if op = op_begin then Event.begin_ t
  else Event.end_ t

type chunk = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let make_chunk words : chunk =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout words

(* Growable flat event store: a list of fixed-size Bigarray chunks.
   Growth never copies event words (a new chunk is appended, existing
   chunks are untouched), chunks are off the OCaml heap (the GC scans
   one custom block per chunk, not one box per event), and a full chunk
   is immutable from the producer's side — safe to hand to a consumer
   domain as a batch. *)
module Arena = struct
  type nonrec chunk = chunk

  type t = {
    chunk_words : int;  (* power of two *)
    shift : int;
    mask : int;
    mutable chunks : chunk array;  (* chunks.(0 .. nchunks-1) in use *)
    mutable nchunks : int;
    mutable fill : int;  (* words used in the last chunk *)
  }

  let default_chunk_words = 1 lsl 16

  let create ?(chunk_words = default_chunk_words) () =
    let rec pow2 n = if n >= chunk_words then n else pow2 (2 * n) in
    let cw = pow2 1 in
    let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
    {
      chunk_words = cw;
      shift = log2 cw;
      mask = cw - 1;
      chunks = [| make_chunk cw |];
      nchunks = 1;
      fill = 0;
    }

  let chunk_words t = t.chunk_words
  let length t = ((t.nchunks - 1) * t.chunk_words) + t.fill

  (* words of Bigarray storage held (capacity, not fill) *)
  let capacity_words t = t.nchunks * t.chunk_words

  let grow t =
    if t.nchunks = Array.length t.chunks then begin
      let a = Array.make (2 * t.nchunks) t.chunks.(0) in
      Array.blit t.chunks 0 a 0 t.nchunks;
      t.chunks <- a
    end;
    t.chunks.(t.nchunks) <- make_chunk t.chunk_words;
    t.nchunks <- t.nchunks + 1;
    t.fill <- 0

  let [@inline] push t w =
    if t.fill = t.chunk_words then grow t;
    Bigarray.Array1.unsafe_set t.chunks.(t.nchunks - 1) t.fill w;
    t.fill <- t.fill + 1

  let get t i =
    if i < 0 || i >= length t then invalid_arg "Packed.Arena.get";
    Bigarray.Array1.unsafe_get t.chunks.(i lsr t.shift) (i land t.mask)

  let iter_chunks t f =
    for c = 0 to t.nchunks - 2 do
      f t.chunks.(c) t.chunk_words
    done;
    if t.fill > 0 then f t.chunks.(t.nchunks - 1) t.fill

  let iter t f =
    iter_chunks t (fun c len ->
        for i = 0 to len - 1 do
          f (Bigarray.Array1.unsafe_get c i)
        done)

  (* Words [start, stop) in order, chunk-wise: the per-word cost is one
     unsafe Bigarray read, no division.  The shard tasks walk disjoint
     ranges of a fully built (hence immutable) arena concurrently. *)
  let iter_range t start stop f =
    if start < 0 || stop > length t || start > stop then
      invalid_arg "Packed.Arena.iter_range";
    let ci = ref (start lsr t.shift) in
    let pos = ref (start land t.mask) in
    let remaining = ref (stop - start) in
    while !remaining > 0 do
      let chunk = t.chunks.(!ci) in
      let take = min !remaining (t.chunk_words - !pos) in
      for i = !pos to !pos + take - 1 do
        f (Bigarray.Array1.unsafe_get chunk i)
      done;
      remaining := !remaining - take;
      incr ci;
      pos := 0
    done
end

module Cursor = struct
  type t = {
    a : Arena.t;
    mutable ci : int;  (* current chunk *)
    mutable pos : int;  (* next word within it *)
  }

  let of_arena a = { a; ci = 0; pos = 0 }

  let rec next c =
    let a = c.a in
    let last = a.Arena.nchunks - 1 in
    let len = if c.ci = last then a.Arena.fill else a.Arena.chunk_words in
    if c.pos < len then begin
      let w = Bigarray.Array1.unsafe_get a.Arena.chunks.(c.ci) c.pos in
      c.pos <- c.pos + 1;
      w
    end
    else if c.ci < last then begin
      c.ci <- c.ci + 1;
      c.pos <- 0;
      next c
    end
    else -1
end
