open Traces
module G = Digraphs.Digraph
module Pk = Digraphs.Incremental

let name = "velodrome"

let nil = -1

type engine = Dfs | Incremental

(* The two cycle-detection engines behind one face: the classic
   reachability-check-per-edge (the paper's Velodrome, cubic worst case)
   and the Pearce–Kelly dynamic topological order (the stronger-baseline
   ablation). *)
type graph_ops = {
  eng_add_node : int -> unit;
  eng_remove_node : int -> unit;
  eng_mem_node : int -> bool;
  eng_add_edge : int -> int -> [ `Added | `Exists | `Cycle of int list ];
  eng_in_degree : int -> int;
  eng_succs : int -> int list;
  eng_num_nodes : unit -> int;
}

let dfs_ops () =
  let g = G.create () in
  {
    eng_add_node = G.add_node g;
    eng_remove_node = G.remove_node g;
    eng_mem_node = G.mem_node g;
    eng_add_edge =
      (fun u v ->
        if not (G.add_edge g u v) then `Exists
        else
          match G.find_path g v u with
          | Some path -> `Cycle path
          | None -> `Added);
    eng_in_degree = G.in_degree g;
    eng_succs = G.succs g;
    eng_num_nodes = (fun () -> G.num_nodes g);
  }

let pk_ops () =
  let g = Pk.create () in
  {
    eng_add_node = Pk.add_node g;
    eng_remove_node = Pk.remove_node g;
    eng_mem_node = Pk.mem_node g;
    eng_add_edge = Pk.add_edge g;
    eng_in_degree = Pk.in_degree g;
    eng_succs = Pk.succs g;
    eng_num_nodes = (fun () -> Pk.num_nodes g);
  }

type t = {
  threads : int;
  locks : int;
  vars : int;
  gc : bool;
  graph : graph_ops;
  mutable next_txn : int;
  completed : (int, unit) Hashtbl.t;
  (* A transaction is deleted iff completed and no longer in the graph. *)
  cur_txn : int array;  (* active outermost transaction per thread, or nil *)
  last_txn : int array;  (* most recent transaction per thread, or nil *)
  depth : int array;
  pending_parent : int array;  (* forking transaction, consumed by the
                                  child's first transaction *)
  last_writer : int array;  (* per variable: txn of the last write *)
  readers : int array array;  (* per variable: txn of each thread's last
                                 read since the last write; rows lazy *)
  last_releaser : int array;  (* per lock: txn of the last release *)
  mutable peak_nodes : int;
  mutable edges_added : int;
  mutable violation : Aerodrome.Violation.t option;
  mutable processed : int;
  m : Aerodrome.Cmetrics.t;
}

let create_with ?(garbage_collect = true) ?(engine = Dfs) ~threads ~locks
    ~vars () =
  let dim = max threads 1 in
  let st =
    {
      threads = dim;
      locks;
      vars;
      gc = garbage_collect;
      graph = (match engine with Dfs -> dfs_ops () | Incremental -> pk_ops ());
      next_txn = 0;
      completed = Hashtbl.create 64;
      cur_txn = Array.make dim nil;
      last_txn = Array.make dim nil;
      depth = Array.make dim 0;
      pending_parent = Array.make dim nil;
      last_writer = Array.make (max vars 0) nil;
      readers = Array.make (max vars 0) [||];
      last_releaser = Array.make (max locks 0) nil;
      peak_nodes = 0;
      edges_added = 0;
      violation = None;
      processed = 0;
      m = Aerodrome.Cmetrics.create ();
    }
  in
  (* Graph shape as snapshot-time probes: the structure already tracks
     these, no parallel hot-path copies needed. *)
  let reg = Aerodrome.Cmetrics.registry st.m in
  Obs.Registry.probe reg "graph.live_nodes" (fun () ->
      Obs.Snapshot.Int (st.graph.eng_num_nodes ()));
  Obs.Registry.probe reg "graph.peak_nodes" (fun () ->
      Obs.Snapshot.Int st.peak_nodes);
  Obs.Registry.probe reg "graph.edges_added" (fun () ->
      Obs.Snapshot.Int st.edges_added);
  Obs.Registry.probe reg "graph.transactions_created" (fun () ->
      Obs.Snapshot.Int st.next_txn);
  st

let create ~threads ~locks ~vars = create_with ~threads ~locks ~vars ()
let metrics st = Aerodrome.Cmetrics.snapshot st.m

let violation st = st.violation
let processed st = st.processed
let live_nodes st = st.graph.eng_num_nodes ()
let peak_nodes st = st.peak_nodes
let transactions_created st = st.next_txn
let edges_added st = st.edges_added

let is_deleted st n =
  Hashtbl.mem st.completed n && not (st.graph.eng_mem_node n)

exception Found of int list

(* Deleting a node may orphan completed successors; cascade with an
   explicit worklist (chains of unary transactions can be very long). *)
let collect st n =
  if st.gc then begin
    let work = ref [ n ] in
    while !work <> [] do
      match !work with
      | [] -> ()
      | n :: rest ->
        work := rest;
        if
          n <> nil
          && Hashtbl.mem st.completed n
          && st.graph.eng_mem_node n
          && st.graph.eng_in_degree n = 0
        then begin
          let succs = st.graph.eng_succs n in
          st.graph.eng_remove_node n;
          work := succs @ !work
        end
    done
  end

(* Record the ordering edge [src -> dst] (dst is the current event's
   transaction) and fail if it closes a cycle.  Edges out of deleted
   transactions are irrelevant for cycles and skipped. *)
let add_edge st src dst =
  if src <> nil && src <> dst && not (is_deleted st src) then
    match st.graph.eng_add_edge src dst with
    | `Exists -> ()
    | `Added ->
      st.edges_added <- st.edges_added + 1;
      st.peak_nodes <- max st.peak_nodes (st.graph.eng_num_nodes ())
    | `Cycle path ->
      st.edges_added <- st.edges_added + 1;
      raise (Found path)

let fresh_txn st t =
  let n = st.next_txn in
  st.next_txn <- n + 1;
  st.graph.eng_add_node n;
  st.peak_nodes <- max st.peak_nodes (st.graph.eng_num_nodes ());
  add_edge st st.last_txn.(t) n;
  if st.pending_parent.(t) <> nil then begin
    add_edge st st.pending_parent.(t) n;
    st.pending_parent.(t) <- nil
  end;
  st.last_txn.(t) <- n;
  n

let complete st n =
  Hashtbl.replace st.completed n ();
  collect st n

(* The transaction owning the current event: the thread's active block, or
   a fresh unary transaction completed on the spot by the caller. *)
type owner = Block of int | Unary of int

let owner st t =
  if st.cur_txn.(t) <> nil then Block st.cur_txn.(t)
  else Unary (fresh_txn st t)

let finish_owner st = function
  | Block _ -> ()
  | Unary n -> complete st n

let reader_row st x =
  if st.readers.(x) = [||] then st.readers.(x) <- Array.make st.threads nil;
  st.readers.(x)

let handle_read st t x =
  let o = owner st t in
  let cur = match o with Block n | Unary n -> n in
  add_edge st st.last_writer.(x) cur;
  (reader_row st x).(t) <- cur;
  finish_owner st o

let handle_write st t x =
  let o = owner st t in
  let cur = match o with Block n | Unary n -> n in
  add_edge st st.last_writer.(x) cur;
  let row = st.readers.(x) in
  if row <> [||] then
    for u = 0 to st.threads - 1 do
      add_edge st row.(u) cur;
      row.(u) <- nil
    done;
  st.last_writer.(x) <- cur;
  finish_owner st o

let handle_acquire st t l =
  let o = owner st t in
  let cur = match o with Block n | Unary n -> n in
  add_edge st st.last_releaser.(l) cur;
  finish_owner st o

let handle_release st t l =
  let o = owner st t in
  let cur = match o with Block n | Unary n -> n in
  st.last_releaser.(l) <- cur;
  finish_owner st o

let handle_fork st t u =
  let o = owner st t in
  let cur = match o with Block n | Unary n -> n in
  st.pending_parent.(u) <- cur;
  finish_owner st o

let handle_join st t u =
  let o = owner st t in
  let cur = match o with Block n | Unary n -> n in
  add_edge st st.last_txn.(u) cur;
  finish_owner st o

let handle_begin st t =
  st.depth.(t) <- st.depth.(t) + 1;
  if st.depth.(t) = 1 then begin
    if Obs.on () then Aerodrome.Cmetrics.txn_begin st.m;
    st.cur_txn.(t) <- fresh_txn st t
  end

let handle_end st t =
  if st.depth.(t) > 0 then begin
    st.depth.(t) <- st.depth.(t) - 1;
    if st.depth.(t) = 0 then begin
      if Obs.on () then Aerodrome.Cmetrics.txn_commit st.m;
      let n = st.cur_txn.(t) in
      st.cur_txn.(t) <- nil;
      if n <> nil then complete st n
    end
  end

let feed st (e : Event.t) =
  match st.violation with
  | Some _ as v -> v
  | None -> (
    st.processed <- st.processed + 1;
    if Obs.on () then Aerodrome.Cmetrics.count st.m e.op;
    let t = Ids.Tid.to_int e.thread in
    match
      (match e.op with
      | Event.Read x -> handle_read st t (Ids.Vid.to_int x)
      | Event.Write x -> handle_write st t (Ids.Vid.to_int x)
      | Event.Acquire l -> handle_acquire st t (Ids.Lid.to_int l)
      | Event.Release l -> handle_release st t (Ids.Lid.to_int l)
      | Event.Fork u -> handle_fork st t (Ids.Tid.to_int u)
      | Event.Join u -> handle_join st t (Ids.Tid.to_int u)
      | Event.Begin -> handle_begin st t
      | Event.End -> handle_end st t)
    with
    | () -> None
    | exception Found cycle ->
      let v =
        Aerodrome.Violation.make ~index:(st.processed - 1) ~event:e
          ~site:(Aerodrome.Violation.Graph_cycle cycle)
      in
      if Obs.on () then Aerodrome.Cmetrics.found_violation st.m (st.processed - 1);
      st.violation <- Some v;
      Some v)

(* unpack-and-delegate: this checker is not on the packed hot path *)
let feed_packed st w = feed st (Traces.Packed.to_event w)

module No_gc : Aerodrome.Checker.S = struct
  type nonrec t = t

  let name = "velodrome-nogc"

  let create ~threads ~locks ~vars =
    create_with ~garbage_collect:false ~threads ~locks ~vars ()

  let feed = feed
  let feed_packed = feed_packed
  let violation = violation
  let processed = processed
end

let no_gc_checker : Aerodrome.Checker.t = (module No_gc)

module Pk_engine : Aerodrome.Checker.S = struct
  type nonrec t = t

  let name = "velodrome-pk"

  let create ~threads ~locks ~vars =
    create_with ~engine:Incremental ~threads ~locks ~vars ()

  let feed = feed
  let feed_packed = feed_packed
  let violation = violation
  let processed = processed
end

let pk_checker : Aerodrome.Checker.t = (module Pk_engine)
