(** The Velodrome baseline: transaction-graph cycle detection.

    Re-implementation of the Flanagan–Freund–Yi algorithm (PLDI 2008) that
    the paper compares against.  Transactions (including unary ones, one
    per event outside an atomic block) are nodes of a directed graph; an
    edge [T -> T'] is recorded when an event of [T'] conflicts with an
    earlier event of [T].  Each new inter-transaction edge triggers a
    reachability check back along the graph, so the worst-case running
    time is cubic in the trace length — this is the baseline whose cost
    AeroDrome's linear-time algorithm eliminates.

    The garbage-collection optimization of [19] is implemented: a
    completed transaction with no incoming edges can never lie on a cycle
    (completed transactions acquire no new incoming edges), so it is
    deleted from the graph, cascading to successors that become orphaned.
    Ordering edges {e out of} a deleted transaction are dropped: any path
    through the deleted node would need an incoming edge it cannot have.

    The checker reports {!Aerodrome.Violation.Graph_cycle} with the witness cycle of
    transaction ids. *)

include Aerodrome.Checker.S

type engine =
  | Dfs  (** reachability check on every inserted edge — the published
             algorithm's behaviour and the default *)
  | Incremental
      (** Pearce–Kelly dynamic topological order: a stronger baseline
          whose per-edge cost is amortized by localized reordering *)

val create_with : ?garbage_collect:bool -> ?engine:engine -> threads:int ->
  locks:int -> vars:int -> unit -> t
(** [create] is [create_with ~garbage_collect:true ~engine:Dfs]. *)

val no_gc_checker : Aerodrome.Checker.t
(** Velodrome without graph garbage collection, for the ablation bench. *)

val pk_checker : Aerodrome.Checker.t
(** Velodrome over the Pearce–Kelly engine, for the ablation bench. *)

(** {1 Introspection} *)

val live_nodes : t -> int
(** Current number of transactions in the graph. *)

val peak_nodes : t -> int
(** Largest graph size reached so far — the quantity the paper reports to
    explain Velodrome's slowdowns (e.g. ~9000 nodes for sunflow). *)

val transactions_created : t -> int
(** Total transactions allocated, unary ones included. *)

val edges_added : t -> int
(** Total inter-transaction edges inserted (deduplicated). *)

val metrics : t -> Obs.Snapshot.t
(** Current reading of this instance's {!Aerodrome.Cmetrics} registry,
    including graph-shape probes sampled at snapshot time. *)
