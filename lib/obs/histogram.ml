(* Fixed-bucket histogram over non-negative integers, Prometheus-style
   upper-inclusive bounds: observation [v] lands in the first bucket [i]
   with [v <= bounds.(i)], or in the trailing overflow bucket.  Bounds
   are fixed at creation so [observe] is a small branch-free-ish scan —
   bucket counts are tiny arrays (typically <= 10 entries). *)

type t = {
  name : string;
  bounds : int array; (* strictly increasing upper bounds *)
  counts : int array; (* length = Array.length bounds + 1, last = overflow *)
  mutable total : int;
  mutable sum : int;
}

let default_bounds = [| 0; 1; 2; 4; 8; 16; 32; 64; 128 |]

let make ?(bounds = default_bounds) name =
  if Array.length bounds = 0 then invalid_arg "Histogram.make: empty bounds";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i - 1) >= bounds.(i) then
      invalid_arg "Histogram.make: bounds must be strictly increasing"
  done;
  { name; bounds; counts = Array.make (Array.length bounds + 1) 0; total = 0; sum = 0 }

let name h = h.name

let bucket_index bounds v =
  let n = Array.length bounds in
  let i = ref 0 in
  while !i < n && v > bounds.(!i) do
    incr i
  done;
  !i

let observe h v =
  let i = bucket_index h.bounds v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.total <- h.total + 1;
  h.sum <- h.sum + v

let total h = h.total
let sum h = h.sum
let bounds h = Array.copy h.bounds
let counts h = Array.copy h.counts
let mean h = if h.total = 0 then 0.0 else float_of_int h.sum /. float_of_int h.total
