(* Atomic counter for metrics updated from more than one domain
   (trace ingestion on the producer domain, epoch promote/demote in
   clocks shared across pool workers).  Registered in [Registry.global]
   rather than a per-run registry. *)

type t = {
  name : string;
  n : int Atomic.t;
}

let make name = { name; n = Atomic.make 0 }
let name c = c.name
let inc c = Atomic.incr c.n
let add c k = ignore (Atomic.fetch_and_add c.n k)
let value c = Atomic.get c.n
let reset c = Atomic.set c.n 0
