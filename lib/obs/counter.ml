(* Monotonic counter, domain-local.  The increment is deliberately
   unguarded — gating on [Control.on] belongs at the call site, where the
   branch can cover several updates at once. *)

type t = {
  name : string;
  mutable n : int;
}

let make name = { name; n = 0 }
let name c = c.name
let inc c = c.n <- c.n + 1
let add c k = c.n <- c.n + k
let value c = c.n
let reset c = c.n <- 0
