(* Live registry exposure for the metrics exporter.

   Per-checker registries normally surface only *after* a run, when
   [Scope.collect] snapshots them into the result.  A live scrape needs
   to see them *during* the run, so when exposure is enabled (the
   exporter is up) [Scope] also publishes every scope-attached registry
   here, tagged with ambient labels (e.g. the file being checked), and
   retracts it when the scope closes.

   Sampling a published registry from the exporter domain while the
   checker domain is mutating its counters is deliberate: counter cells
   are immediate ints, so cross-domain reads are tear-free — at worst a
   scrape observes a value a few events stale, which is exactly what a
   sampling exporter wants.  Only the table itself is mutex-protected;
   nothing on the checker's per-event path takes a lock. *)

type entry = {
  labels : (string * string) list;
  reg : Registry.t;
}

let mu = Mutex.create ()
let table : entry list ref = ref []
let enabled = Atomic.make false

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let on () = Atomic.get enabled

let expose ?(labels = []) reg =
  Mutex.lock mu;
  table := { labels; reg } :: !table;
  Mutex.unlock mu

(* Retraction is by physical registry identity — the same registry can
   be exposed at most once per scope, and scopes retract exactly what
   they exposed. *)
let retract reg =
  Mutex.lock mu;
  let rec drop = function
    | [] -> []
    | e :: rest -> if e.reg == reg then rest else e :: drop rest
  in
  table := drop !table;
  Mutex.unlock mu

(* Snapshot every exposed registry.  Oldest first, so series from the
   first-attached registry render first and repeated scrapes are
   stable. *)
let snapshots () : ((string * string) list * Snapshot.t) list =
  Mutex.lock mu;
  let entries = List.rev !table in
  Mutex.unlock mu;
  List.map (fun e -> (e.labels, Registry.snapshot e.reg)) entries
