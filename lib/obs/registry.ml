(* A registry is an ordered bag of metrics that can be snapshotted
   together.  Checkers own one registry per instance; process-wide
   metrics (ingestion byte counts, epoch promote/demote) live in
   [global].  Registration is rare and mutex-protected; reading a metric
   for snapshot only happens between runs, so plain field reads are
   fine for domain-local metrics and [Atomic.get] covers the shared
   ones. *)

type metric =
  | Counter of Counter.t
  | Shared of Shared_counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t
  | Probe of string * (unit -> Snapshot.value)
      (* sampled lazily at snapshot time — used to expose existing
         structure statistics (graph node counts, ...) without keeping a
         parallel copy up to date on the hot path *)

type t = {
  mu : Mutex.t;
  mutable metrics : metric list; (* newest first; snapshot reverses *)
}

let create () = { mu = Mutex.create (); metrics = [] }

let register reg m =
  Mutex.lock reg.mu;
  reg.metrics <- m :: reg.metrics;
  Mutex.unlock reg.mu

let counter reg name =
  let c = Counter.make name in
  register reg (Counter c);
  c

let shared_counter reg name =
  let c = Shared_counter.make name in
  register reg (Shared c);
  c

let gauge ?init reg name =
  let g = Gauge.make ?init name in
  register reg (Gauge g);
  g

let histogram ?bounds reg name =
  let h = Histogram.make ?bounds name in
  register reg (Histogram h);
  h

let probe reg name f = register reg (Probe (name, f))

let snapshot reg : Snapshot.t =
  Mutex.lock reg.mu;
  let metrics = List.rev reg.metrics in
  Mutex.unlock reg.mu;
  List.map
    (fun m ->
      match m with
      | Counter c -> Snapshot.entry (Counter.name c) (Snapshot.Int (Counter.value c))
      | Shared c ->
        Snapshot.entry (Shared_counter.name c) (Snapshot.Int (Shared_counter.value c))
      | Gauge g -> Snapshot.entry (Gauge.name g) (Snapshot.Float (Gauge.value g))
      | Histogram h ->
        Snapshot.entry (Histogram.name h)
          (Snapshot.Hist
             {
               bounds = Histogram.bounds h;
               counts = Histogram.counts h;
               total = Histogram.total h;
               sum = Histogram.sum h;
             })
      | Probe (name, f) -> Snapshot.entry name (f ()))
    metrics

(* Process-wide registry for metrics that outlive any single run. *)
let global = create ()
