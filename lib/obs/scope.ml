(* Ambient per-run metric collection.

   The checkers all ascribe to [Checker.S], and the verbatim reference
   copies under test/reference must keep compiling against that
   signature — so the runner cannot ask a checker for its metrics
   through the functor interface.  Instead, [collect f] installs a
   domain-local scope for the duration of [f]; any registry created
   while it is active (each [Cmetrics.create] in a checker constructor)
   calls [attach] and is snapshotted when [f] returns.

   Scopes are domain-local (Domain.DLS), so a pipelined producer domain
   or pool worker never leaks its registries into another run — each
   worker's [run_file] call opens its own scope on its own domain. *)

type scope = { mutable registries : Registry.t list (* newest first *) }

let key : scope option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let attach reg =
  match !(Domain.DLS.get key) with
  | None -> ()
  | Some s -> s.registries <- reg :: s.registries

let active () = Option.is_some !(Domain.DLS.get key)

let collect (f : unit -> 'a) : 'a * Snapshot.t =
  let cell = Domain.DLS.get key in
  let saved = !cell in
  let scope = { registries = [] } in
  cell := Some scope;
  let finish () = cell := saved in
  match f () with
  | v ->
    finish ();
    (v, List.concat_map Registry.snapshot (List.rev scope.registries))
  | exception e ->
    finish ();
    raise e
