(* Ambient per-run metric collection.

   The checkers all ascribe to [Checker.S], and the verbatim reference
   copies under test/reference must keep compiling against that
   signature — so the runner cannot ask a checker for its metrics
   through the functor interface.  Instead, [collect f] installs a
   domain-local scope for the duration of [f]; any registry created
   while it is active (each [Cmetrics.create] in a checker constructor)
   calls [attach] and is snapshotted when [f] returns.

   Scopes are domain-local (Domain.DLS), so a pipelined producer domain
   or pool worker never leaks its registries into another run — each
   worker's [run_file] call opens its own scope on its own domain.

   When live exposure is on (a metrics exporter is serving), attached
   registries are additionally published to [Live] for the duration of
   the scope, tagged with the scope's labels, so a scrape mid-run sees
   the checker's counters as they advance. *)

type scope = {
  mutable registries : Registry.t list; (* newest first *)
  labels : (string * string) list; (* applied to live-exposed registries *)
}

let key : scope option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let attach reg =
  match !(Domain.DLS.get key) with
  | None -> ()
  | Some s ->
    s.registries <- reg :: s.registries;
    if Live.on () then Live.expose ~labels:s.labels reg

let active () = Option.is_some !(Domain.DLS.get key)

let collect ?(labels = []) (f : unit -> 'a) : 'a * Snapshot.t =
  let cell = Domain.DLS.get key in
  let saved = !cell in
  let scope = { registries = []; labels } in
  cell := Some scope;
  (* Retract unconditionally: exposure may have raced with the exporter
     shutting down, and retracting a never-exposed registry is a no-op
     over an (almost always empty) list. *)
  let finish () =
    cell := saved;
    List.iter Live.retract scope.registries
  in
  match f () with
  | v ->
    finish ();
    (v, List.concat_map Registry.snapshot (List.rev scope.registries))
  | exception e ->
    finish ();
    raise e
