(* Process-wide switch for the optional instrumentation.

   Metric primitives (Counter.inc, Histogram.observe, ...) are ungated;
   call sites on per-event hot paths guard with [if Control.on () then ...]
   so a disabled run costs one ref load and a predictable branch per
   event.  The flag is a plain [bool ref]: it is flipped once at startup
   (CLI flag parsing, bench harness) before any worker domain is spawned,
   never concurrently with checking. *)

let enabled = ref false
let enable () = enabled := true
let disable () = enabled := false
let on () = !enabled

(* Wall-clock helpers shared by spans, heartbeats and runners. *)
let now () = Unix.gettimeofday ()
let now_us () = Unix.gettimeofday () *. 1e6
