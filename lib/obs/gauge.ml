(* Point-in-time value.  [set_max] keeps a running high-water mark for
   gauges that report peaks (ring occupancy, peak node counts). *)

type t = {
  name : string;
  mutable v : float;
}

let make ?(init = 0.0) name = { name; v = init }
let name g = g.name
let set g x = g.v <- x
let set_int g x = g.v <- float_of_int x
let set_max g x = if x > g.v then g.v <- x
let add g x = g.v <- g.v +. x
let value g = g.v
