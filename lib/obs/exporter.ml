(* OpenMetrics/Prometheus text exposition of registry snapshots, plus a
   minimal HTTP/1.0 responder that serves it from its own domain.

   Dependency-free by design (Unix only).  The exposition side turns
   [Snapshot.t] entries into metric families:

   - dots and other illegal characters in metric names become
     underscores under an [aerodrome_] prefix
     (["events.total"] -> [aerodrome_events_total]);
   - the per-chunk series the sharded runner emits
     (["shard.chunk3.events"]) collapse into one family with a
     [chunk="3"] label;
   - [Int] renders as a counter, [Float] as a gauge, and [Hist] as a
     Prometheus histogram (cumulative [_bucket{le=...}] plus [_sum] and
     [_count]);
   - every sample can carry extra labels (the live table tags each
     registry with the file it is checking);
   - the document ends with [# EOF], the OpenMetrics terminator.

   The server samples [Registry.global] and the [Live] table on each
   scrape.  Sampling reads immediate-int counter cells without any
   synchronization against the checker domain — tear-free, possibly a
   few events stale, and never a stall on the checker's hot path. *)

(* ---------- metric-name and label plumbing ---------- *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let sanitize name =
  let b = Bytes.of_string name in
  for i = 0 to Bytes.length b - 1 do
    if not (is_name_char (Bytes.get b i)) then Bytes.set b i '_'
  done;
  "aerodrome_" ^ Bytes.to_string b

(* ["shard.chunk3.events"] -> [Some ("shard.chunk.events", "3")].  The
   chunk ordinal is the one snapshot-name component that is data, not
   identity; everything else stays in the family name. *)
let split_chunk name =
  match String.index_opt name '.' with
  | None -> None
  | Some _ ->
    let needle = ".chunk" in
    let nlen = String.length needle in
    let len = String.length name in
    let rec find i =
      if i + nlen > len then None
      else if String.sub name i nlen = needle then Some i
      else find (i + 1)
    in
    (match find 0 with
    | None -> None
    | Some i ->
      let j = ref (i + nlen) in
      while !j < len && name.[!j] >= '0' && name.[!j] <= '9' do incr j done;
      if !j = i + nlen || !j >= len || name.[!j] <> '.' then None
      else
        let ordinal = String.sub name (i + nlen) (!j - i - nlen) in
        let family =
          String.sub name 0 (i + nlen) ^ String.sub name !j (len - !j)
        in
        Some (family, ordinal))

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label_value v)) labels)
    ^ "}"

(* ---------- series model ---------- *)

type series = {
  family : string; (* sanitized family name *)
  help : string; (* original snapshot metric name *)
  labels : (string * string) list;
  value : Snapshot.value;
}

let series_of_entry ~labels (e : Snapshot.entry) =
  let name = e.Snapshot.name in
  let raw_family, labels =
    match split_chunk name with
    | Some (family, ordinal) -> (family, labels @ [ ("chunk", ordinal) ])
    | None -> (name, labels)
  in
  { family = sanitize raw_family; help = raw_family; labels; value = e.Snapshot.value }

(* Two live registries can publish the same family under the same
   labels (e.g. a checker metric plus a process probe of the same
   name); the text format forbids duplicate samples, so identical
   (family, labels) series fold together with [Snapshot.merge]
   semantics — except that a histogram bounds mismatch keeps the first
   series instead of raising: a scrape must never take the process
   down. *)
let combine a b =
  match (a, b) with
  | Snapshot.Int x, Snapshot.Int y -> Snapshot.Int (x + y)
  | Snapshot.Float x, Snapshot.Float y -> Snapshot.Float (Float.max x y)
  | Snapshot.Hist h, Snapshot.Hist g when h.bounds = g.bounds ->
    Snapshot.Hist
      {
        bounds = h.bounds;
        counts = Array.mapi (fun i c -> c + g.counts.(i)) h.counts;
        total = h.total + g.total;
        sum = h.sum + g.sum;
      }
  | a, _ -> a

let type_of_value = function
  | Snapshot.Int _ -> "counter"
  | Snapshot.Float _ -> "gauge"
  | Snapshot.Hist _ -> "histogram"

let render_value b family labels = function
  | Snapshot.Int n -> Printf.bprintf b "%s%s %d\n" family (render_labels labels) n
  | Snapshot.Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.bprintf b "%s%s %.0f\n" family (render_labels labels) f
    else Printf.bprintf b "%s%s %.6g\n" family (render_labels labels) f
  | Snapshot.Hist { bounds; counts; total; sum } ->
    let cumulative = ref 0 in
    Array.iteri
      (fun i c ->
        cumulative := !cumulative + c;
        let le =
          if i < Array.length bounds then string_of_int bounds.(i) else "+Inf"
        in
        Printf.bprintf b "%s_bucket%s %d\n" family
          (render_labels (labels @ [ ("le", le) ]))
          !cumulative)
      counts;
    Printf.bprintf b "%s_sum%s %d\n" family (render_labels labels) sum;
    Printf.bprintf b "%s_count%s %d\n" family (render_labels labels) total

(* [render series] groups by family (one # HELP/# TYPE block each, in
   first-appearance order), folds identical labelsets, and terminates
   with # EOF. *)
let render (series : series list) : string =
  let families = ref [] in
  (* (family, help, type, (labels, value) list) — all newest-last *)
  List.iter
    (fun s ->
      let ty = type_of_value s.value in
      match List.assoc_opt s.family !families with
      | None -> families := !families @ [ (s.family, (s.help, ty, ref [ (s.labels, s.value) ])) ]
      | Some (_, fty, samples) ->
        if fty = ty then begin
          match List.assoc_opt s.labels !samples with
          | None -> samples := !samples @ [ (s.labels, s.value) ]
          | Some v ->
            samples :=
              List.map
                (fun (l, v0) -> if l = s.labels then (l, combine v0 s.value) else (l, v0))
                !samples;
            ignore v
        end
        (* a family whose type disagrees with its first appearance is
           dropped rather than emitted as an invalid mixed family *))
    series;
  let b = Buffer.create 4096 in
  List.iter
    (fun (family, (help, ty, samples)) ->
      Printf.bprintf b "# HELP %s aerodrome metric %s\n" family help;
      Printf.bprintf b "# TYPE %s %s\n" family ty;
      List.iter (fun (labels, v) -> render_value b family labels v) !samples)
    !families;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* [of_snapshot ?labels snap] is the plain translation used by tests
   and by the one-shot renderer. *)
let of_snapshot ?(labels = []) (snap : Snapshot.t) : series list =
  List.map (series_of_entry ~labels) (Snapshot.sorted snap)

let gauge_series ~family ~help v =
  { family; help; labels = []; value = Snapshot.Float v }

let counter_series ~family ~help v =
  { family; help; labels = []; value = Snapshot.Int v }

(* ---------- exposition validator ---------- *)

(* A strict checker for the subset of the text format this exporter
   emits (and a bit more): # HELP/# TYPE metadata must precede a
   family's samples, TYPE may not repeat or disagree, sample names must
   match a declared family (histogram families own _bucket/_sum/_count,
   and _bucket requires an le label), names and labels must be
   well-formed, values must parse as numbers, and the document must end
   with # EOF with nothing after it.  Used by bench/validate_openmetrics
   and by the bench harness to certify live scrapes. *)

exception Bad of string

let validate (doc : string) : (unit, string) result =
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let types : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let check_name lineno name =
    if name = "" then fail "line %d: empty metric name" lineno;
    (match name.[0] with
    | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> ()
    | _ -> fail "line %d: metric name %S starts with %C" lineno name name.[0]);
    String.iter
      (fun c -> if not (is_name_char c) then fail "line %d: bad char %C in metric name %S" lineno c name)
      name
  in
  let check_label_name lineno name =
    if name = "" then fail "line %d: empty label name" lineno;
    String.iter
      (fun c ->
        if not (is_name_char c) || c = ':' then
          fail "line %d: bad char %C in label name %S" lineno c name)
      name
  in
  (* parse `k="v",k2="v2"` — returns list of label names *)
  let parse_labels lineno s =
    let len = String.length s in
    let names = ref [] in
    let i = ref 0 in
    let rec one () =
      let start = !i in
      while !i < len && s.[!i] <> '=' do incr i done;
      if !i >= len then fail "line %d: label without '='" lineno;
      let name = String.sub s start (!i - start) in
      check_label_name lineno name;
      names := name :: !names;
      incr i;
      if !i >= len || s.[!i] <> '"' then fail "line %d: label value not quoted" lineno;
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= len then fail "line %d: unterminated label value" lineno;
        (match s.[!i] with
        | '\\' ->
          if !i + 1 >= len then fail "line %d: dangling escape" lineno;
          (match s.[!i + 1] with
          | '\\' | '"' | 'n' -> ()
          | c -> fail "line %d: bad escape '\\%c'" lineno c);
          incr i
        | '"' -> closed := true
        | _ -> ());
        incr i
      done;
      if !i < len then begin
        if s.[!i] <> ',' then fail "line %d: junk after label value" lineno;
        incr i;
        if !i >= len then fail "line %d: trailing comma in labels" lineno;
        one ()
      end
    in
    if len > 0 then one ();
    List.rev !names
  in
  let family_of_sample name =
    (* map histogram suffixes back to their family when one is declared *)
    let strip suffix =
      let sl = String.length suffix and nl = String.length name in
      if nl > sl && String.sub name (nl - sl) sl = suffix then
        Some (String.sub name 0 (nl - sl))
      else None
    in
    let try_hist suffix =
      match strip suffix with
      | Some fam when Hashtbl.find_opt types fam = Some "histogram" -> Some (fam, suffix)
      | _ -> None
    in
    match try_hist "_bucket" with
    | Some x -> Some x
    | None -> (
      match try_hist "_sum" with
      | Some x -> Some x
      | None -> (
        match try_hist "_count" with
        | Some x -> Some x
        | None ->
          if Hashtbl.mem types name then Some (name, "") else None))
  in
  try
    let lines = String.split_on_char '\n' doc in
    let saw_eof = ref false in
    let samples = ref 0 in
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        if !saw_eof && line <> "" then fail "line %d: content after # EOF" lineno
        else if line = "" then ()
        else if line = "# EOF" then saw_eof := true
        else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
          match String.index_from_opt line 7 ' ' with
          | None -> fail "line %d: # HELP without help text" lineno
          | Some sp -> check_name lineno (String.sub line 7 (sp - 7))
        end
        else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          match String.index_from_opt line 7 ' ' with
          | None -> fail "line %d: # TYPE without a type" lineno
          | Some sp ->
            let name = String.sub line 7 (sp - 7) in
            check_name lineno name;
            let ty = String.sub line (sp + 1) (String.length line - sp - 1) in
            if not (List.mem ty [ "counter"; "gauge"; "histogram" ]) then
              fail "line %d: unknown type %S for %S" lineno ty name;
            if Hashtbl.mem types name then fail "line %d: duplicate # TYPE for %S" lineno name;
            Hashtbl.replace types name ty
        end
        else if String.length line >= 1 && line.[0] = '#' then
          fail "line %d: unknown comment %S" lineno line
        else begin
          (* sample: name[{labels}] value *)
          let name_end = ref 0 in
          let len = String.length line in
          while !name_end < len && is_name_char line.[!name_end] do incr name_end done;
          let name = String.sub line 0 !name_end in
          check_name lineno name;
          let rest = String.sub line !name_end (len - !name_end) in
          let labels, value_part =
            if rest <> "" && rest.[0] = '{' then begin
              match String.index_opt rest '}' with
              | None -> fail "line %d: unterminated label set" lineno
              | Some close ->
                ( parse_labels lineno (String.sub rest 1 (close - 1)),
                  String.sub rest (close + 1) (String.length rest - close - 1) )
            end
            else ([], rest)
          in
          if String.length value_part < 2 || value_part.[0] <> ' ' then
            fail "line %d: missing value separator" lineno;
          let value = String.sub value_part 1 (String.length value_part - 1) in
          (match float_of_string_opt value with
          | Some _ -> ()
          | None -> fail "line %d: unparsable value %S" lineno value);
          (match family_of_sample name with
          | None -> fail "line %d: sample %S has no # TYPE declaration" lineno name
          | Some (_fam, "_bucket") ->
            if not (List.mem "le" labels) then
              fail "line %d: histogram bucket without le label" lineno
          | Some _ -> ());
          incr samples
        end)
      lines;
    if not !saw_eof then fail "missing # EOF terminator";
    if !samples = 0 then fail "no samples in exposition";
    Ok ()
  with Bad msg -> Error msg

(* ---------- address parsing ---------- *)

type addr =
  | Tcp of Unix.inet_addr * int
  | Unix_sock of string

let parse_addr (s : string) : (addr, string) result =
  if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_sock (String.sub s 5 (String.length s - 5)))
  else
    match String.rindex_opt s ':' with
    | None -> Error (Printf.sprintf "bad metrics address %S (want HOST:PORT or unix:PATH)" s)
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | None -> Error (Printf.sprintf "bad port %S in metrics address" port)
      | Some port when port < 0 || port > 65535 ->
        Error (Printf.sprintf "port %d out of range" port)
      | Some port -> (
        if host = "" || host = "localhost" then Ok (Tcp (Unix.inet_addr_loopback, port))
        else
          match Unix.inet_addr_of_string host with
          | ip -> Ok (Tcp (ip, port))
          | exception _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
              Error (Printf.sprintf "cannot resolve host %S" host)
            | { Unix.h_addr_list; _ } -> Ok (Tcp (h_addr_list.(0), port)))))

(* ---------- the default scrape page ---------- *)

(* Process-wide scrape bookkeeping: an events/sec rate derived from
   [Snapshot.diff] of the summed live [events.total] counters between
   consecutive scrapes, plus scrape and uptime meta-series. *)
type sampler = {
  mutable last : (float * Snapshot.t) option;
  mutable scrapes : int;
  started : float;
}

let make_sampler () = { last = None; scrapes = 0; started = Unix.gettimeofday () }

let total_events snaps =
  List.fold_left
    (fun acc (_, snap) ->
      match Snapshot.get_int snap "events.total" with
      | Some n -> acc + n
      | None -> acc)
    0 snaps

let sample (s : sampler) : string =
  let now = Unix.gettimeofday () in
  s.scrapes <- s.scrapes + 1;
  let live = Live.snapshots () in
  let global = Registry.global in
  let series =
    of_snapshot (Registry.snapshot global)
    @ List.concat_map (fun (labels, snap) -> of_snapshot ~labels snap) live
  in
  let progress : Snapshot.t =
    [ Snapshot.entry "events.total" (Snapshot.Int (total_events live)) ]
  in
  let rate =
    match s.last with
    | Some (t0, before) when now > t0 ->
      let d = Snapshot.diff ~before ~after:progress in
      (match Snapshot.get_int d "events.total" with
      (* live registries detach as runs finish (a multi-file check
         resets the per-run total between files), so the delta can go
         negative across a run boundary — report an idle rate, not a
         negative one *)
      | Some delta -> float_of_int (max delta 0) /. (now -. t0)
      | None -> 0.)
    | _ -> 0.
  in
  s.last <- Some (now, progress);
  let meta =
    [
      counter_series ~family:"aerodrome_exporter_scrapes" ~help:"exporter.scrapes" s.scrapes;
      gauge_series ~family:"aerodrome_exporter_uptime_seconds" ~help:"exporter.uptime"
        (now -. s.started);
      gauge_series ~family:"aerodrome_scrape_events_per_sec" ~help:"scrape.events_per_sec" rate;
    ]
  in
  render (series @ meta)

(* ---------- HTTP/1.0 responder ---------- *)

type server = {
  sock : Unix.file_descr;
  stop_w : Unix.file_descr;
  domain : unit Domain.t;
  bound : string;
  cleanup : unit -> unit;
}

let http_response ~status ~body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
     Content-Length: %d\r\nConnection: close\r\n\r\n%s"
    status (String.length body) body

let handle_client page fd =
  (* Requests are one small read away in practice; a partial first read
     only risks a 400 for a torn request line, which curl never sends. *)
  let buf = Bytes.create 4096 in
  let n = try Unix.read fd buf 0 4096 with Unix.Unix_error _ -> 0 in
  let request = Bytes.sub_string buf 0 (max n 0) in
  let reply =
    match String.index_opt request '\r' with
    | None -> http_response ~status:"400 Bad Request" ~body:"bad request\n"
    | Some eol -> (
      let line = String.sub request 0 eol in
      match String.split_on_char ' ' line with
      | [ "GET"; path; _version ] ->
        if path = "/metrics" || path = "/" then
          http_response ~status:"200 OK" ~body:(page ())
        else http_response ~status:"404 Not Found" ~body:"not found\n"
      | _ :: _ :: _ -> http_response ~status:"405 Method Not Allowed" ~body:"only GET\n"
      | _ -> http_response ~status:"400 Bad Request" ~body:"bad request\n")
  in
  (try
     let len = String.length reply in
     let off = ref 0 in
     while !off < len do
       off := !off + Unix.write_substring fd reply !off (len - !off)
     done
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop sock stop_r page =
  let running = ref true in
  while !running do
    match Unix.select [ sock; stop_r ] [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      if List.mem stop_r readable then running := false
      else if List.mem sock readable then begin
        match Unix.accept sock with
        | fd, _ -> handle_client page fd
        | exception Unix.Unix_error _ -> ()
      end
  done

(* [serve ?page addr] starts the responder on a fresh domain; [?page]
   overrides the default global+live sampler (tests inject canned
   expositions).  Returns the server or a human-readable error (bad
   address, bind failure). *)
let serve ?page (addr : string) : (server, string) result =
  match parse_addr addr with
  | Error e -> Error e
  | Ok parsed -> (
    let page = match page with Some p -> p | None -> let s = make_sampler () in fun () -> sample s in
    let make () =
      match parsed with
      | Tcp (ip, port) ->
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt sock Unix.SO_REUSEADDR true;
        Unix.bind sock (Unix.ADDR_INET (ip, port));
        Unix.listen sock 16;
        let bound =
          match Unix.getsockname sock with
          | Unix.ADDR_INET (ip, port) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
          | _ -> addr
        in
        (sock, bound, fun () -> ())
      | Unix_sock path ->
        (try if Sys.file_exists path then Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind sock (Unix.ADDR_UNIX path);
        Unix.listen sock 16;
        (sock, "unix:" ^ path, fun () -> try Unix.unlink path with Unix.Unix_error _ -> ())
    in
    match make () with
    | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "cannot serve metrics on %s: %s" addr (Unix.error_message err))
    | sock, bound, cleanup ->
      let stop_r, stop_w = Unix.pipe () in
      Live.enable ();
      let domain = Domain.spawn (fun () -> accept_loop sock stop_r page) in
      Ok { sock; stop_w; domain; bound; cleanup })

let bound (t : server) = t.bound

let stop (t : server) =
  (try ignore (Unix.write_substring t.stop_w "x" 0 1) with Unix.Unix_error _ -> ());
  Domain.join t.domain;
  Live.disable ();
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  t.cleanup ()

(* ---------- a tiny blocking GET client ---------- *)

(* Used by `rapid scrape` (hermetic cram tests without curl) and by the
   bench harness's scraper domain. *)
let fetch ?(path = "/metrics") (addr : string) : (string, string) result =
  match parse_addr addr with
  | Error e -> Error e
  | Ok parsed -> (
    let connect () =
      match parsed with
      | Tcp (ip, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (ip, port));
        fd
      | Unix_sock p ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX p);
        fd
    in
    match connect () with
    | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "cannot connect to %s: %s" addr (Unix.error_message err))
    | fd -> (
      let request = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      try
        ignore (Unix.write_substring fd request 0 (String.length request));
        let b = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          let n = Unix.read fd chunk 0 4096 in
          if n > 0 then begin
            Buffer.add_subbytes b chunk 0 n;
            drain ()
          end
        in
        drain ();
        Unix.close fd;
        let response = Buffer.contents b in
        (* split headers from body; verify the status line says 200 *)
        let sep = "\r\n\r\n" in
        let rec find i =
          if i + 4 > String.length response then None
          else if String.sub response i 4 = sep then Some i
          else find (i + 1)
        in
        (match find 0 with
        | None -> Error "malformed HTTP response"
        | Some i ->
          let headers = String.sub response 0 i in
          let body = String.sub response (i + 4) (String.length response - i - 4) in
          let status_ok =
            match String.index_opt headers ' ' with
            | Some sp when String.length headers >= sp + 4 ->
              String.sub headers (sp + 1) 3 = "200"
            | _ -> false
          in
          if status_ok then Ok body
          else
            Error
              (Printf.sprintf "HTTP error: %s"
                 (match String.index_opt headers '\r' with
                 | Some e -> String.sub headers 0 e
                 | None -> headers)))
      with Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "scrape failed: %s" (Unix.error_message err))))
