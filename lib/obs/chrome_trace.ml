(* Chrome trace-event (Catapult) span collection.  The output file is a
   JSON object {"traceEvents": [...]} of complete ("ph":"X") spans and
   instant ("ph":"i") markers, loadable in Perfetto or chrome://tracing.

   A single process-wide collector is installed with [start] before any
   worker domain is spawned; spans from all domains funnel into it under
   a mutex (span recording happens at batch granularity — thousands of
   events per span — so the lock is cold).  [tid] is the recording
   domain's id, which is how producer/consumer/pool lanes separate in
   the viewer. *)

type event = {
  name : string;
  cat : string;
  ph : [ `Span of float (* duration us *) | `Instant ];
  ts_us : float;
  tid : int;
}

type t = {
  mu : Mutex.t;
  limit : int;
  t0_us : float;  (* collection start; ts rebases to it on export, since
                     epoch microseconds (~1.8e15) would lose sub-us
                     precision through the JSON float formatter *)
  mutable events : event list; (* newest first *)
  mutable count : int;
  mutable dropped : int;
}

(* The collector reference is written once before domains spawn and read
   thereafter; the value behind it is mutex-protected. *)
let current : t option ref = ref None

let start ?(limit = 200_000) () =
  let c =
    {
      mu = Mutex.create ();
      limit;
      t0_us = Control.now_us ();
      events = [];
      count = 0;
      dropped = 0;
    }
  in
  current := Some c;
  c

let stop () = current := None
let active () = Option.is_some !current
let self_tid () = (Domain.self () :> int)

let record c ev =
  Mutex.lock c.mu;
  if c.count < c.limit then begin
    c.events <- ev :: c.events;
    c.count <- c.count + 1
  end
  else c.dropped <- c.dropped + 1;
  Mutex.unlock c.mu

let add_span ?(cat = "") ~name ~ts_us ~dur_us () =
  match !current with
  | None -> ()
  | Some c -> record c { name; cat; ph = `Span dur_us; ts_us; tid = self_tid () }

let instant ?(cat = "") name =
  match !current with
  | None -> ()
  | Some c ->
    record c { name; cat; ph = `Instant; ts_us = Control.now_us (); tid = self_tid () }

(* Time [f] and record it as a span; free when no collector is active. *)
let span ?cat name f =
  match !current with
  | None -> f ()
  | Some _ ->
    let t0 = Control.now_us () in
    Fun.protect
      ~finally:(fun () -> add_span ?cat ~name ~ts_us:t0 ~dur_us:(Control.now_us () -. t0) ())
      f

let dropped c = c.dropped

let to_json (c : t) : Json.t =
  let evs = List.rev c.events in
  let event_json e =
    let common =
      [
        ("name", Json.Str e.name);
        ("cat", Json.Str (if e.cat = "" then "default" else e.cat));
        ("ts", Json.Num (Float.max 0.0 (e.ts_us -. c.t0_us)));
        ("pid", Json.Num 1.0);
        ("tid", Json.Num (float_of_int e.tid));
      ]
    in
    match e.ph with
    | `Span dur ->
      Json.Obj (("ph", Json.Str "X") :: common @ [ ("dur", Json.Num dur) ])
    | `Instant -> Json.Obj (("ph", Json.Str "i") :: ("s", Json.Str "t") :: common)
  in
  Json.Obj
    [
      ("displayTimeUnit", Json.Str "ms");
      ("traceEvents", Json.List (List.map event_json evs));
    ]

let write_channel oc c = output_string oc (Json.to_string (to_json c))

let write_file path c =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      write_channel oc c;
      output_char oc '\n')
