(* Progress heartbeat for long streaming runs: a line on stderr every
   [every] events with instantaneous and average events/sec, plus an ETA
   when the total event count is known (binary traces carry it in the
   header).  [tick] is called from the runner's existing periodic
   checkpoint (every 4096 events), so its own cost is one compare on the
   hot path side. *)

type t = {
  label : string;
  every : int; (* events between emitted lines *)
  out : Format.formatter;
  mutable total : int option;
  mutable started : float;
  mutable last_time : float;
  mutable last_events : int;
  mutable next_at : int;
}

let create ?(out = Format.err_formatter) ?total ~every ~label () =
  let every = max 1 every in
  let now = Control.now () in
  {
    label;
    every;
    out;
    total;
    started = now;
    last_time = now;
    last_events = 0;
    next_at = every;
  }

let set_total hb total = hb.total <- Some total

(* Re-arm for a new file/run when the same heartbeat is reused across a
   multi-file invocation. *)
let restart hb =
  let now = Control.now () in
  hb.total <- None;
  hb.started <- now;
  hb.last_time <- now;
  hb.last_events <- 0;
  hb.next_at <- hb.every

let humanize n =
  let f = float_of_int n in
  if n < 10_000 then string_of_int n
  else if f < 1e6 then Printf.sprintf "%.1fK" (f /. 1e3)
  else if f < 1e9 then Printf.sprintf "%.1fM" (f /. 1e6)
  else Printf.sprintf "%.2fB" (f /. 1e9)

let rate_string r =
  if r < 1e3 then Printf.sprintf "%.0f ev/s" r
  else if r < 1e6 then Printf.sprintf "%.1fK ev/s" (r /. 1e3)
  else Printf.sprintf "%.2fM ev/s" (r /. 1e6)

let tick hb n =
  if n < hb.last_events then restart hb;
  if n >= hb.next_at then begin
    let now = Control.now () in
    let inst = float_of_int (n - hb.last_events) /. Float.max (now -. hb.last_time) 1e-9 in
    let avg = float_of_int n /. Float.max (now -. hb.started) 1e-9 in
    let eta =
      match hb.total with
      | Some total when total > n && avg > 0.0 ->
        Printf.sprintf "  eta %.0fs" (float_of_int (total - n) /. avg)
      | _ -> ""
    in
    Format.fprintf hb.out "[%s] %s events  %s inst  %s avg%s@." hb.label (humanize n)
      (rate_string inst) (rate_string avg) eta;
    hb.last_time <- now;
    hb.last_events <- n;
    hb.next_at <- n + hb.every
  end
