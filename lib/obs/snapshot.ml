(* Immutable point-in-time reading of a registry: ordered (name, value)
   pairs.  Snapshots are what crosses module boundaries — runners attach
   them to results, exporters render them, and [diff] subtracts a
   baseline so interval metrics fall out of two snapshots. *)

type value =
  | Int of int
  | Float of float
  | Hist of {
      bounds : int array;
      counts : int array;
      total : int;
      sum : int;
    }

type entry = {
  name : string;
  value : value;
}

type t = entry list

let empty : t = []
let entry name value = { name; value }
let find (t : t) name = List.find_opt (fun e -> e.name = name) t

let get_int t name =
  match find t name with
  | Some { value = Int n; _ } -> Some n
  | _ -> None

let get_float t name =
  match find t name with
  | Some { value = Float f; _ } -> Some f
  | Some { value = Int n; _ } -> Some (float_of_int n)
  | _ -> None

(* [diff ~before ~after] keeps [after]'s order and subtracts any
   matching entry of [before]; entries missing from [before] count from
   zero.  Floats (gauges, timings) are point-in-time readings and pass
   through unchanged. *)
let diff ~(before : t) ~(after : t) : t =
  List.map
    (fun e ->
      match e.value, Option.map (fun b -> b.value) (find before e.name) with
      | Int a, Some (Int b) -> { e with value = Int (a - b) }
      | Hist h, Some (Hist hb) when h.bounds = hb.bounds ->
        {
          e with
          value =
            Hist
              {
                bounds = h.bounds;
                counts = Array.mapi (fun i c -> c - hb.counts.(i)) h.counts;
                total = h.total - hb.total;
                sum = h.sum - hb.sum;
              };
        }
      | _ -> e)
    after

(* [sorted t] orders entries by metric name (stable, so duplicate names
   keep their relative order).  Renderers use it so `--stats` and
   `--stats-json` output cannot depend on registration order, which
   under multi-domain collection (pipelined producers, shard pools) is
   an interleaving accident. *)
let sorted (t : t) : t =
  List.stable_sort (fun a b -> String.compare a.name b.name) t

(* [merge snaps] folds several snapshots of the {e same shape} into one
   — the sharded runner sums its per-chunk checker snapshots back into
   a whole-trace reading.  Counters (Int) and histograms add; floats
   (gauges, high-water readings) keep their maximum.  Histograms with
   different bucket bounds are refused outright: summing misaligned
   counts would silently attribute observations to the wrong bucket.
   Entry order follows first appearance, so homogeneous snapshots keep
   their registry order. *)
let merge_value name a b =
  match (a, b) with
  | Int x, Int y -> Int (x + y)
  | Float x, Float y -> Float (Float.max x y)
  | Hist h, Hist g when h.bounds = g.bounds ->
    Hist
      {
        bounds = h.bounds;
        counts = Array.mapi (fun i c -> c + g.counts.(i)) h.counts;
        total = h.total + g.total;
        sum = h.sum + g.sum;
      }
  | Hist _, Hist _ ->
    invalid_arg
      (Printf.sprintf "Obs.Snapshot.merge: histogram %S bucket bounds mismatch" name)
  | _ -> b

let merge (snaps : t list) : t =
  let add acc e =
    let rec go = function
      | [] -> [ e ]
      | a :: rest when a.name = e.name ->
        { a with value = merge_value a.name a.value e.value } :: rest
      | a :: rest -> a :: go rest
    in
    go acc
  in
  List.fold_left (fun acc snap -> List.fold_left add acc snap) [] snaps

let value_to_json = function
  | Int n -> Json.Num (float_of_int n)
  | Float f -> Json.Num f
  | Hist { bounds; counts; total; sum } ->
    Json.Obj
      [
        ("total", Json.Num (float_of_int total));
        ("sum", Json.Num (float_of_int sum));
        ( "bounds",
          Json.List (Array.to_list bounds |> List.map (fun b -> Json.Num (float_of_int b))) );
        ( "counts",
          Json.List (Array.to_list counts |> List.map (fun c -> Json.Num (float_of_int c))) );
      ]

let to_json (t : t) : Json.t = Json.Obj (List.map (fun e -> (e.name, value_to_json e.value)) t)

let pp_value ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Format.fprintf ppf "%.0f" f
    else Format.fprintf ppf "%.3f" f
  | Hist { bounds; counts; total; sum } ->
    Format.fprintf ppf "total=%d sum=%d" total sum;
    if total > 0 then begin
      Format.fprintf ppf " [";
      let first = ref true in
      Array.iteri
        (fun i c ->
          if c > 0 then begin
            if not !first then Format.fprintf ppf " ";
            first := false;
            if i < Array.length bounds then Format.fprintf ppf "<=%d:%d" bounds.(i) c
            else Format.fprintf ppf ">%d:%d" bounds.(Array.length bounds - 1) c
          end)
        counts;
      Format.fprintf ppf "]"
    end

let pp ppf (t : t) =
  let width =
    List.fold_left (fun acc e -> max acc (String.length e.name)) 0 t
  in
  List.iter
    (fun e -> Format.fprintf ppf "  %-*s  %a@." width e.name pp_value e.value)
    t
