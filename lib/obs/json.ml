(* Minimal JSON reader/writer — objects, arrays, strings, numbers,
   true/false/null.  No external dependencies; shared by the snapshot
   exporters, [rapid metainfo --json], and the bench validators (the
   parser here supersedes the private copy that used to live in
   bench/validate_json.ml). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () <> c then fail "offset %d: expected %C, got %C" !pos c (peek ());
    advance ()
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          (* \uXXXX: decoded as a raw byte when < 0x100, else '?' *)
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "offset %d: bad \\u escape %S" !pos hex
          in
          pos := !pos + 4;
          Buffer.add_char buf (if code < 0x100 then Char.chr code else '?')
        | c -> fail "offset %d: bad escape %C" !pos c);
        advance ();
        go ()
      | '\255' -> fail "unterminated string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while numchar (peek ()) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail "offset %d: bad number %S" start text
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (
        advance ();
        Obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((key, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | c -> fail "offset %d: expected ',' or '}', got %C" !pos c
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (
        advance ();
        List [])
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            List (List.rev (v :: acc))
          | c -> fail "offset %d: expected ',' or ']', got %C" !pos c
        in
        elements []
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage at offset %d" !pos;
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

(* --- printing --- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_num buf f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    (* not representable in JSON: emit null rather than invalid output *)
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.6g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Num f -> add_num buf f
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        to_buffer buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf
