(* Telemetry library: metrics registry, snapshots, progress heartbeats
   and Chrome trace-event span export.  Dependency-free apart from Unix
   (wall-clock time).

   Design in DESIGN.md §11.  The short version:
   - metric primitives are ungated; hot paths guard updates with
     [if Obs.on () then ...] so a disabled run pays one branch per event;
   - per-checker metrics live in per-instance registries collected
     through the domain-local ambient [Scope];
   - cross-domain metrics (ingestion, epoch transitions) are atomic
     counters in [Registry.global]. *)

include Control
module Counter = Counter
module Shared_counter = Shared_counter
module Gauge = Gauge
module Histogram = Histogram
module Snapshot = Snapshot
module Registry = Registry
module Scope = Scope
module Live = Live
module Exporter = Exporter
module Json = Json
module Heartbeat = Heartbeat
module Chrome_trace = Chrome_trace
