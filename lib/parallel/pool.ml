type t = {
  mu : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;  (* [||] once joined *)
  busy : float array;  (* per-worker seconds spent inside tasks; each
                          slot is written only by its own worker, read
                          after {!shutdown} joins it *)
}

let worker_loop pool idx =
  let rec next () =
    Mutex.lock pool.mu;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.work_available pool.mu
    done;
    let task =
      if Queue.is_empty pool.queue then None else Some (Queue.pop pool.queue)
    in
    Mutex.unlock pool.mu;
    match task with
    | Some f ->
      let t0 = Unix.gettimeofday () in
      f ();
      pool.busy.(idx) <- pool.busy.(idx) +. (Unix.gettimeofday () -. t0);
      next ()
    | None -> ()  (* stop, queue drained *)
  in
  next ()

let create jobs =
  if jobs < 1 then invalid_arg "Pool.create: size must be >= 1";
  let pool =
    {
      mu = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [||];
      busy = Array.make jobs 0.0;
    }
  in
  pool.workers <- Array.init jobs (fun i -> Domain.spawn (fun () -> worker_loop pool i));
  pool

let size pool = Array.length pool.workers

let submit pool task =
  Mutex.lock pool.mu;
  if pool.stop then begin
    Mutex.unlock pool.mu;
    invalid_arg "Pool: used after shutdown"
  end;
  Queue.push task pool.queue;
  Condition.signal pool.work_available;
  Mutex.unlock pool.mu

let map pool f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let remaining = ref n in
    let done_mu = Mutex.create () in
    let all_done = Condition.create () in
    Array.iteri
      (fun i item ->
        submit pool (fun () ->
            (match f item with
            | v -> results.(i) <- Some v
            | exception e -> failures.(i) <- Some e);
            Mutex.lock done_mu;
            decr remaining;
            if !remaining = 0 then Condition.signal all_done;
            Mutex.unlock done_mu))
      items;
    Mutex.lock done_mu;
    while !remaining > 0 do
      Condition.wait all_done done_mu
    done;
    Mutex.unlock done_mu;
    Array.iter (function Some e -> raise e | None -> ()) failures;
    Array.map (fun r -> Option.get r) results
  end

let map_list pool f items =
  Array.to_list (map pool f (Array.of_list items))

let shutdown pool =
  Mutex.lock pool.mu;
  pool.stop <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mu;
  let workers = pool.workers in
  pool.workers <- [||];
  Array.iter Domain.join workers

let busy_seconds pool = Array.copy pool.busy

let with_pool jobs f =
  let pool = create jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run ?report ~jobs f items =
  match items with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs <= 1 -> List.map f items
  | _ ->
    let pool = create (min jobs (List.length items)) in
    let results =
      match map_list pool f items with
      | r ->
        shutdown pool;
        r
      | exception e ->
        shutdown pool;
        raise e
    in
    (* After shutdown: the joins order every worker's busy writes before
       this read. *)
    (match report with Some g -> g (busy_seconds pool) | None -> ());
    results
