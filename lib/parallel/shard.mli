(** Single-trace chunked parallel checking over a packed arena.

    {!check} partitions an arena into contiguous chunk batches at
    quiescent cuts chosen by {!Aerodrome.Merge.plan}, runs an
    independent speculative checker from ⊥ clock state on each chunk —
    fanned out over a {!Pool} of domains — and reconciles the chunk
    verdicts left-to-right ({!Aerodrome.Merge.reconcile}).  Every
    planned cut is globally quiescent, which makes each chunk run
    byte-identical to the sequential checker over the same range (the
    exactness argument lives in DESIGN.md §15 and merge.mli); events
    whose candidate cut was rejected run as the tail of the preceding
    chunk and are reported as replay.

    Soundness of the ⊥ seed is specific to the default {!Aerodrome.Opt}
    configuration (component-epoch fast checks, non-faithful): the
    caller — normally {!Analysis.Runner} — must gate on the checker
    being ["aerodrome"].  Chunk checkers run with
    {!Aerodrome.Reclaim.Off} (reclamation is verdict-neutral, and
    oracle indices would be meaningless chunk-locally). *)

type task = {
  base : int;  (** chunk entry position in the arena *)
  stop : int;  (** chunk end, exclusive *)
  violation : Aerodrome.Violation.t option;
      (** first violation of the chunk, index {e chunk-local} *)
  seconds : float;  (** wall-clock of this chunk's checker *)
  metrics : Obs.Snapshot.t;
      (** the chunk checker's own counters, collected on the worker
          domain; empty with telemetry off.  {!Obs.Snapshot.merge} sums
          the per-chunk snapshots back into a whole-trace reading. *)
  flight : Traces.Flight.t option;
      (** the chunk's flight recorder when one was requested; indices
          are chunk-local ([base] is the recorder's position 0, itself a
          quiescent cut, so the recorder's window argument holds
          chunk-locally). *)
}

type outcome = {
  violation : Aerodrome.Violation.t option;
      (** reconciled verdict, index rebased to the arena *)
  plan : Aerodrome.Merge.plan;
  tasks : task array;  (** one per chunk, in trace order *)
  plan_seconds : float;  (** cut-scan (boundary summary) wall-clock *)
  merge_seconds : float;  (** reconciliation wall-clock *)
}

val check :
  ?pool:Pool.t -> ?window:int -> ?cuts:int list -> ?flight:int -> shards:int ->
  (module Aerodrome.Checker.S) ->
  threads:int -> locks:int -> vars:int -> Traces.Packed.Arena.t -> outcome
(** Check a fully built arena with up to [shards] chunks.  [pool] runs
    the chunk tasks on an existing pool (it must have no other work in
    flight); without it a temporary pool of [min shards chunks] domains
    is created — and a single-chunk plan runs in the calling domain
    with no pool at all.  [window] and [cuts] are forwarded to
    {!Aerodrome.Merge.plan} ([cuts] is the adversarial-boundary test
    hook); [flight] attaches a violation flight recorder of that ring
    window to every chunk.  When a Chrome trace collector is active the
    planner, each chunk's feed loop (on its worker domain) and the
    reconcile pass are recorded as "shard"-category spans. *)
