(** Single-trace chunked parallel checking over a packed arena.

    {!check} partitions an arena into contiguous chunk batches at the
    boundary-summary cuts chosen by {!Aerodrome.Merge.plan}, runs an
    independent speculative {!Aerodrome.Opt} checker on each chunk —
    seeded from the cut's boundary summary
    ({!Aerodrome.Opt.seed_boundary}) and fanned out over a {!Pool} of
    domains — then reconciles left-to-right, {e repairing} each cut's
    window against the true sequential frontier instead of replaying
    whole chunks.

    The contract (DESIGN.md §17): a seeded chunk checker is
    generation-wise {e contained} in the sequential checker — it never
    reports a violation the sequential run would not — and it is
    {e exact} from the end of its cut's repair window (the two-phase
    horizon where the straddling transactions and then the
    transactions open at the last straddler's close have all retired;
    zero for touch-free and quiescent cuts) onward.  Reconciliation
    feeds each
    window segment into the live checker carried over from the
    previous chunk, then trusts the chunk's speculative verdict for
    the remainder of its range; a surviving chunk's checker becomes
    the next live checker.  The reported violation is byte-identical
    to the sequential checker's.

    Soundness of the boundary seed is specific to the default
    {!Aerodrome.Opt} configuration (component-epoch fast checks,
    non-faithful), which is why [check] takes no checker module: the
    caller — normally {!Analysis.Runner} — gates sharding on the
    checker being ["aerodrome"].  Chunk checkers run with
    {!Aerodrome.Reclaim.Off} (reclamation is verdict-neutral, and
    oracle indices would be meaningless chunk-locally). *)

type task = {
  base : int;  (** chunk entry position in the arena *)
  stop : int;  (** chunk end, exclusive *)
  checker : Aerodrome.Opt.t;
      (** the chunk's checker, kept live for window repair during
          reconciliation *)
  violation : Aerodrome.Violation.t option;
      (** first violation of the chunk's speculative run, index
          {e chunk-local} *)
  seconds : float;  (** wall-clock of this chunk's checker *)
  metrics : Obs.Snapshot.t;
      (** the chunk checker's own counters, collected on the worker
          domain; empty with telemetry off.  {!Obs.Snapshot.merge} sums
          the per-chunk snapshots back into a whole-trace reading. *)
  flight : Traces.Flight.t option;
      (** the chunk's flight recorder when one was requested; indices
          are chunk-local ([base] is the recorder's position 0, seeded
          with the boundary's open-transaction depths so quiescence
          bookkeeping stays honest at a non-quiescent cut). *)
}

type outcome = {
  violation : Aerodrome.Violation.t option;
      (** reconciled verdict, index rebased to the arena; always the
          same violation the sequential checker reports *)
  plan : Aerodrome.Merge.plan;
  tasks : task array;  (** one per chunk, in trace order *)
  repaired_events : int;
      (** events re-fed into the live frontier during window repair
          (the sharding overhead actually paid, [<=]
          [plan.repair_events]; a repair stops at a violation) *)
  plan_seconds : float;  (** cut-scan (boundary summary) wall-clock *)
  merge_seconds : float;  (** reconciliation + repair wall-clock *)
}

val check :
  ?pool:Pool.t -> ?cuts:int list -> ?flight:int -> shards:int ->
  threads:int -> locks:int -> vars:int -> Traces.Packed.Arena.t -> outcome
(** Check a fully built arena with up to [shards] chunks.  [pool] runs
    the chunk tasks on an existing pool (it must have no other work in
    flight); without it a temporary pool of [min shards chunks] domains
    is created — and a single-chunk plan runs in the calling domain
    with no pool at all.  [cuts] is forwarded to
    {!Aerodrome.Merge.plan} (the adversarial-boundary test hook:
    forced cuts are taken verbatim, never snapped); [flight] attaches
    a violation flight recorder of that ring window to every chunk.
    When a Chrome trace collector is active the planner, each chunk's
    feed loop (on its worker domain) and the reconcile pass are
    recorded as "shard"-category spans.

    @raise Failure if a chunk's speculative violation inside a
    repaired window is not confirmed by the repair — impossible under
    the §17 containment invariant; the failure guards against silently
    reporting a verdict the sequential checker would not produce. *)

val check_stealing :
  sched:Deque.t -> ?oversub:int -> ?chunk_floor:int -> ?cuts:int list ->
  ?flight:int -> shards:int -> threads:int -> locks:int -> vars:int ->
  Traces.Packed.Arena.t -> outcome
(** Work-stealing variant (DESIGN.md §18): the arena is cut into
    fine-grained micro-chunks — with [shards = 0], [oversub] (default
    8) chunks per scheduler domain, floored at [chunk_floor] (default
    8192) events per chunk; an explicit [shards] forces that exact
    chunk count, so the differential tests run the {e same} plans as
    {!check} through the stealing executor — submitted as tasks to
    [sched] and executed in whatever
    order the deques and steals produce.  Reconciliation is the {e
    precomputed} left-to-right fold ({!Aerodrome.Merge.seams}): each
    chunk task, once its own range is fed, immediately performs the
    seam repairs it owns (its exact state already reaches them, and
    the arena is immutable, so no other chunk need have retired), a
    completion bitmap records retirement for the final assembly, and
    the verdict is the minimum-index candidate over the chunks' exact
    regions and the repair segments — which partition the arena, so
    the answer is byte-identical to {!check} and to the sequential
    checker.  [cuts] forces exact micro-chunk cuts (the adversarial
    test hook); [oversub]/[chunk_floor] are ignored when it is given.

    The same {!outcome} is produced, with [merge_seconds] covering
    only the final assembly (repairs are on the chunk tasks' clock).
    @raise Failure under the same unconfirmed-speculation guard as
    {!check}. *)
