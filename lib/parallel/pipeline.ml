let run ?(capacity = 8) ?on_stats ~produce ~consume () =
  let ring = Ring.create capacity in
  let producer_error = Atomic.make None in
  let producer =
    Domain.spawn (fun () ->
        (try produce ~push:(fun v -> Ring.push ring v)
         with e -> Atomic.set producer_error (Some e));
        Ring.close ring)
  in
  (* Cancelling after a clean drain is a no-op; after an early consumer
     return it unblocks the producer's pending push. *)
  let finish () =
    Ring.cancel ring;
    Domain.join producer
  in
  let result =
    match consume ~pop:(fun () -> Ring.pop ring) with
    | r -> Ok r
    | exception e -> Error e
  in
  finish ();
  (* Stall counters survive the cancel; report them once both sides have
     stopped touching the ring. *)
  (match on_stats with Some f -> f (Ring.stats ring) | None -> ());
  match (Atomic.get producer_error, result) with
  | Some e, _ -> raise e
  | None, Ok r -> r
  | None, Error e -> raise e
