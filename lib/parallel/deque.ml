(* Work-stealing scheduler over per-domain Chase–Lev deques.

   PR 7/9 executed sharded checking as one coarse chunk per pool
   worker, so wall-clock was pinned to the slowest chunk.  This module
   supplies the scheduling substrate that lets the shard layer cut the
   arena into many fine-grained micro-chunks instead: each worker
   domain owns a bounded Chase–Lev deque ([Ws_deque]) it pushes and
   pops at the bottom, idle workers steal from the top of a victim's
   deque, and tasks submitted from outside the pool (the CLI's file
   fan-out) arrive through a shared mutex-protected injection queue
   that doubles as the park bench for workers that found nothing to
   steal.

   The deque is the bounded variant of Chase–Lev ("Dynamic circular
   work-stealing deque", SPAA 2005): [top] and [bottom] are
   monotonically increasing virtual indices into a power-of-two ring.
   Under the OCaml memory model a non-atomic slot racing a steal would
   read an unspecified value, so the slots themselves are
   ['a option Atomic.t] — every access that can race is an atomic
   access, which makes the usual C11 relaxed/acquire subtleties moot at
   the cost of one indirection per slot (OCaml atomics are
   sequentially consistent).  Boundedness is what kills ABA: a slot can
   only be overwritten by the push [capacity] entries later, and that
   push refuses ([push] returns [false]) until [top] has advanced past
   the entry a stale thief could still be looking at — so a thief's
   CAS on [top] fails before it can publish a recycled value.  An
   owner overflowing its deque falls back to the shared injection
   queue: that is the "mutexed tail" escape hatch, used only when the
   ring is full (never on the steal path).

   Tasks return values through promises.  [await] from a worker domain
   does not block: it {e helps}, draining its own deque, the injection
   queue and victims' deques while the promise is pending.  That is
   what lets a file-level task spawn chunk-level tasks on the {e same}
   scheduler and wait for them without deadlock — the waiting worker
   just becomes another consumer — and is the mechanism behind the
   single machine-wide domain budget ([--jobs] × [--shards] no longer
   multiply).  [await] from a non-worker domain (the CLI's main
   domain) blocks on the promise's condition variable. *)

(* ------------------------------------------------------------------ *)

module Ws_deque = struct
  type 'a q = {
    top : int Atomic.t; (* next index thieves take *)
    bottom : int Atomic.t; (* next index the owner pushes *)
    slots : 'a option Atomic.t array;
    mask : int;
  }

  let make capacity =
    let cap = max 2 capacity in
    let cap =
      let c = ref 1 in
      while !c < cap do
        c := !c * 2
      done;
      !c
    in
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      slots = Array.init cap (fun _ -> Atomic.make None);
      mask = cap - 1;
    }

  let length q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

  (* Owner only.  [false] when the ring is full — the caller spills to
     the injection queue rather than growing (growth would reintroduce
     the ABA hazard boundedness rules out). *)
  let push q x =
    let b = Atomic.get q.bottom in
    let t = Atomic.get q.top in
    if b - t > q.mask then false
    else begin
      Atomic.set q.slots.(b land q.mask) (Some x);
      Atomic.set q.bottom (b + 1);
      true
    end

  (* Owner only.  Take the newest entry; the only contended case is a
     single remaining entry, which is resolved by the same CAS on [top]
     the thieves use. *)
  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      (* empty: undo *)
      Atomic.set q.bottom t;
      None
    end
    else if b > t then Atomic.exchange q.slots.(b land q.mask) None
    else begin
      (* last entry: race the thieves for it *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then Atomic.exchange q.slots.(b land q.mask) None else None
    end

  (* Any domain.  [None] covers both a genuinely empty deque and a
     lost race (CAS failure, or the slot drained by the owner between
     our reads); callers treat it as "try elsewhere".  The slot is
     deliberately {e not} cleared on a successful steal: entry [t] can
     only be recycled by a push that already requires [top > t], so
     clearing here could clobber a concurrent push's fresh value. *)
  let steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if t >= b then None
    else
      match Atomic.get q.slots.(t land q.mask) with
      | None -> None
      | Some _ as x -> if Atomic.compare_and_set q.top t (t + 1) then x else None
end

(* ------------------------------------------------------------------ *)

type 'a state = Pending | Done of 'a | Err of exn * Printexc.raw_backtrace

type 'a promise = {
  st : 'a state Atomic.t;
  pmu : Mutex.t;
  pcond : Condition.t;
}

type t = {
  deques : (unit -> unit) Ws_deque.q array;
  mutable domains : unit Domain.t array;
  inject : (unit -> unit) Queue.t;
  mu : Mutex.t;
  cond : Condition.t;
  mutable closed : bool; (* under [mu] *)
  parked : int Atomic.t;
  (* telemetry: atomics for cross-domain counters, owner-written arrays
     for per-worker accounting (racy torn-free word reads are fine for
     a live scrape; exact values are read after quiescence) *)
  steals : int Atomic.t;
  failed_steals : int Atomic.t;
  injected : int Atomic.t;
  completed : int Atomic.t;
  busy : float array; (* seconds in task bodies, by worker *)
  ran : int array; (* tasks completed, by worker *)
  started : float;
}

type stats = {
  domains : int;
  steals : int;
  failed_steals : int;
  injected : int;
  completed : int;
  busy_seconds : float array;
  ran : int array;
  age_seconds : float;
}

(* Worker identity: which scheduler this domain belongs to, and its
   index.  Physical equality on the scheduler guards against a worker
   of pool A being mistaken for a worker of pool B (tests create
   short-lived schedulers side by side). *)
type ident = Ident : t * int -> ident

let ident_key : ident option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let self sched =
  match !(Domain.DLS.get ident_key) with
  | Some (Ident (s, i)) when s == sched -> Some i
  | _ -> None

let size sched = Array.length sched.deques

(* A deterministic per-worker victim order would let two ping-ponging
   workers always collide; a cheap xorshift stream decorrelates them
   without [Random] (whose default state is domain-shared). *)
let xorshift seed =
  let s = ref (if seed = 0 then 0x9e3779b9 else seed) in
  fun () ->
    let x = !s in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    s := x;
    x land max_int

(* One steal sweep over all victims ≠ [i].  A [None] sweep is counted
   as one failed-steal spin (the metric the bench and stats surface). *)
let try_steal sched i rand =
  let nw = Array.length sched.deques in
  if nw <= 1 then None
  else begin
    let start = rand () mod nw in
    let found = ref None in
    let j = ref 0 in
    while !found = None && !j < nw do
      let v = (start + !j) mod nw in
      if v <> i then found := Ws_deque.steal sched.deques.(v);
      incr j
    done;
    (match !found with
    | Some _ -> Atomic.incr sched.steals
    | None -> Atomic.incr sched.failed_steals);
    !found
  end

let try_inject sched =
  Mutex.lock sched.mu;
  let t = if Queue.is_empty sched.inject then None else Some (Queue.pop sched.inject) in
  Mutex.unlock sched.mu;
  t

(* Non-blocking task hunt: own deque, then the injection queue, then
   one steal sweep. *)
let find_task sched i rand =
  match Ws_deque.pop sched.deques.(i) with
  | Some _ as t -> t
  | None -> (
    match try_inject sched with
    | Some _ as t -> t
    | None -> try_steal sched i rand)

let run_task sched i (f : unit -> unit) =
  let t0 = Unix.gettimeofday () in
  f ();
  sched.busy.(i) <- sched.busy.(i) +. (Unix.gettimeofday () -. t0);
  sched.ran.(i) <- sched.ran.(i) + 1;
  Atomic.incr sched.completed

(* Any deque non-empty?  Only consulted under [mu] before parking, so
   a racy read is resolved by the wake-up protocol: a local push reads
   [parked] {e after} its bottom-store, the parking worker increments
   [parked] {e before} this scan, and both are sequentially consistent
   atomics — one of the two sides must see the other. *)
let work_visible sched =
  let some = ref false in
  Array.iter (fun q -> if Ws_deque.length q > 0 then some := true) sched.deques;
  !some

let park sched =
  Mutex.lock sched.mu;
  Atomic.incr sched.parked;
  while (not sched.closed) && Queue.is_empty sched.inject && not (work_visible sched) do
    Condition.wait sched.cond sched.mu
  done;
  Atomic.decr sched.parked;
  let t =
    if Queue.is_empty sched.inject then None else Some (Queue.pop sched.inject)
  in
  let closed = sched.closed in
  Mutex.unlock sched.mu;
  (t, closed)

let worker sched i () =
  Domain.DLS.get ident_key := Some (Ident (sched, i));
  let rand = xorshift (i + 1) in
  let stop = ref false in
  while not !stop do
    match find_task sched i rand with
    | Some f -> run_task sched i f
    | None -> (
      match park sched with
      | Some f, _ -> run_task sched i f
      | None, closed -> if closed && not (work_visible sched) then stop := true)
  done

(* Local pushes wake a parked worker so cross-deque work is stealable;
   the signal is taken under [mu] to pair with the predicate re-check
   in [park] (see [work_visible]). *)
let wake_one sched =
  if Atomic.get sched.parked > 0 then begin
    Mutex.lock sched.mu;
    Condition.signal sched.cond;
    Mutex.unlock sched.mu
  end

let inject_task sched f =
  Mutex.lock sched.mu;
  if sched.closed then begin
    Mutex.unlock sched.mu;
    invalid_arg "Deque.submit: scheduler is shut down"
  end;
  Queue.push f sched.inject;
  Condition.signal sched.cond;
  Mutex.unlock sched.mu;
  Atomic.incr sched.injected

let submit sched (f : unit -> 'a) : 'a promise =
  let p = { st = Atomic.make Pending; pmu = Mutex.create (); pcond = Condition.create () } in
  let task () =
    let r =
      match f () with
      | v -> Done v
      | exception e -> Err (e, Printexc.get_raw_backtrace ())
    in
    Atomic.set p.st r;
    Mutex.lock p.pmu;
    Condition.broadcast p.pcond;
    Mutex.unlock p.pmu
  in
  (match self sched with
  | Some i ->
    if Ws_deque.push sched.deques.(i) task then wake_one sched
    else inject_task sched task (* ring full: mutexed spill *)
  | None -> inject_task sched task);
  p

let await sched (p : 'a promise) : 'a =
  let unwrap = function
    | Done v -> v
    | Err (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending -> assert false
  in
  match self sched with
  | Some i ->
    (* Work-helping wait: never block a worker domain on a promise —
       drain other tasks instead, so nested submit/await (file tasks
       awaiting their chunk tasks) cannot deadlock the pool. *)
    let rand = xorshift (i + 0x5bd1e995) in
    let rec spin () =
      match Atomic.get p.st with
      | Pending ->
        (match find_task sched i rand with
        | Some f -> run_task sched i f
        | None -> Domain.cpu_relax ());
        spin ()
      | s -> unwrap s
    in
    spin ()
  | None ->
    (match Atomic.get p.st with
    | Pending ->
      Mutex.lock p.pmu;
      while Atomic.get p.st = Pending do
        Condition.wait p.pcond p.pmu
      done;
      Mutex.unlock p.pmu
    | _ -> ());
    unwrap (Atomic.get p.st)

let create n =
  let n = max 1 n in
  let sched =
    {
      deques = Array.init n (fun _ -> Ws_deque.make 256);
      domains = [||];
      inject = Queue.create ();
      mu = Mutex.create ();
      cond = Condition.create ();
      closed = false;
      parked = Atomic.make 0;
      steals = Atomic.make 0;
      failed_steals = Atomic.make 0;
      injected = Atomic.make 0;
      completed = Atomic.make 0;
      busy = Array.make n 0.;
      ran = Array.make n 0;
      started = Unix.gettimeofday ();
    }
  in
  sched.domains <- Array.init n (fun i -> Domain.spawn (worker sched i));
  sched

let shutdown sched =
  Mutex.lock sched.mu;
  sched.closed <- true;
  Condition.broadcast sched.cond;
  Mutex.unlock sched.mu;
  Array.iter Domain.join sched.domains

let with_scheduler n f =
  let sched = create n in
  match f sched with
  | v ->
    shutdown sched;
    v
  | exception e ->
    shutdown sched;
    raise e

let stats sched =
  {
    domains = Array.length sched.deques;
    steals = Atomic.get sched.steals;
    failed_steals = Atomic.get sched.failed_steals;
    injected = Atomic.get sched.injected;
    completed = Atomic.get sched.completed;
    busy_seconds = Array.copy sched.busy;
    ran = Array.copy sched.ran;
    age_seconds = Unix.gettimeofday () -. sched.started;
  }
