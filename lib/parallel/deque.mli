(** Work-stealing scheduler over per-domain Chase–Lev deques.

    The substrate for fine-grained sharded checking (DESIGN.md §18):
    worker domains own bounded lock-free deques, idle workers steal
    from victims, and external submitters feed a shared
    mutex-protected injection queue that doubles as the workers' park
    bench.  Tasks return values through promises; {!await} from a
    worker domain {e helps} (drains other tasks) instead of blocking,
    so nested submit/await — a file-level task awaiting the chunk
    tasks it spawned on the same scheduler — cannot deadlock, and one
    scheduler can own the whole machine-wide domain budget across both
    the multi-file and intra-file parallelism axes.

    The intended lifecycle is structured: submit, await every promise,
    then {!shutdown} (or use {!with_scheduler}).  Shutting down with
    unawaited tasks still in flight drains them before joining, but
    tasks submitted after {!shutdown} raise [Invalid_argument]. *)

type t
(** A scheduler: [n] worker domains, their deques, and the shared
    injection queue. *)

type 'a promise
(** The eventual result of a submitted task. *)

val create : int -> t
(** [create n] spawns [max 1 n] worker domains.  The calling domain is
    not a worker: its {!submit}s go through the injection queue and
    its {!await}s block. *)

val size : t -> int
(** Worker-domain count. *)

val submit : t -> (unit -> 'a) -> 'a promise
(** Schedule a task.  From a worker domain it is pushed onto that
    worker's own deque (spilling to the injection queue only when the
    ring is full); from any other domain it goes through the injection
    queue.  @raise Invalid_argument after {!shutdown}. *)

val await : t -> 'a promise -> 'a
(** The task's result, re-raising its exception (with backtrace) if it
    failed.  On a worker domain this {e helps} — runs other pending
    tasks while the promise is unresolved — on any other domain it
    blocks on the promise's condition variable. *)

val shutdown : t -> unit
(** Drain, stop and join the worker domains.  Idempotent in effect but
    intended to be called once, after every promise has been awaited. *)

val with_scheduler : int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], exception-safe. *)

type stats = {
  domains : int;  (** worker-domain count *)
  steals : int;  (** successful cross-deque steals *)
  failed_steals : int;  (** steal sweeps that found every victim empty *)
  injected : int;  (** tasks that went through the shared queue *)
  completed : int;  (** tasks run to completion (or to their exception) *)
  busy_seconds : float array;  (** seconds inside task bodies, by worker *)
  ran : int array;  (** tasks completed, by worker *)
  age_seconds : float;  (** wall-clock seconds since [create] *)
}

val stats : t -> stats
(** Telemetry snapshot.  Exact once the scheduler is quiescent; a
    mid-run read (the live metrics exporter's probes) sees each
    counter atomically but the set need not be mutually consistent. *)

(** The bounded Chase–Lev deque itself, exposed for the stress and
    property tests ([test_deque]).  Slots are atomic so every racing
    access is a defined read under the OCaml memory model; boundedness
    (a full {!push} returns [false] instead of growing) is what makes
    the steal-side CAS ABA-free. *)
module Ws_deque : sig
  type 'a q

  val make : int -> 'a q
  (** [make capacity] rounds the capacity up to a power of two (min 2). *)

  val push : 'a q -> 'a -> bool
  (** Owner only.  [false] when full. *)

  val pop : 'a q -> 'a option
  (** Owner only; takes the newest entry. *)

  val steal : 'a q -> 'a option
  (** Any domain; takes the oldest entry.  [None] is also returned on
      a lost race, so callers must treat it as "retry elsewhere", not
      "empty". *)

  val length : 'a q -> int
  (** Racy size estimate. *)
end
