(** Bounded single-producer single-consumer ring buffer.

    The pipelined trace checker ({!Analysis.Runner.run_stream}) decouples
    ingestion (read + decode + intern, the producer domain) from
    vector-clock work (the consumer domain) through one of these rings,
    carrying {e batches} of events so synchronisation cost is paid once
    per few thousand events rather than once per event.

    Blocking is implemented with a mutex and two condition variables
    (OCaml 5 stdlib); the ring stores slots in a circular array, so a
    producer that stays [capacity] batches ahead of the consumer never
    allocates.  Exactly one domain may push and one may pop; the two may
    be (and usually are) different domains.

    Shutdown is two-sided: the producer {!close}s the ring when the
    stream ends (the consumer then drains the remaining slots and sees
    [None]); the consumer {!cancel}s it to stop early (further pushes
    return [false] so the producer can abandon the stream). *)

type 'a t

val create : int -> 'a t
(** [create capacity] with [capacity >= 1] slots.
    @raise Invalid_argument on a non-positive capacity. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Slots currently occupied (racy snapshot; exact when only the calling
    domain is active). *)

val push : 'a t -> 'a -> bool
(** Producer side.  Blocks while the ring is full; [true] once the value
    is enqueued, [false] if the consumer cancelled (the value is dropped
    and the producer should stop).
    @raise Invalid_argument if the ring is already closed. *)

val close : 'a t -> unit
(** Producer side: no more pushes.  Idempotent.  The consumer still
    drains the slots already enqueued. *)

val pop : 'a t -> 'a option
(** Consumer side.  Blocks while the ring is empty and not closed;
    [None] once the ring is closed and drained, or cancelled. *)

val cancel : 'a t -> unit
(** Consumer side: drop all buffered slots and make every pending and
    future {!push} return [false].  Idempotent. *)

type stats = {
  st_capacity : int;
  occupancy_hwm : int;  (** highest occupancy ever reached *)
  producer_stalls : int;  (** pushes that found the ring full and waited *)
  consumer_stalls : int;  (** pops that found the ring empty and waited *)
}

val stats : 'a t -> stats
(** Occupancy telemetry, maintained for free under the ring lock.  A
    high [occupancy_hwm] with [producer_stalls] means the consumer is
    the bottleneck; [consumer_stalls] means ingestion is. *)
