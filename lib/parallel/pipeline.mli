(** Two-stage producer/consumer pipeline over a bounded {!Ring}.

    [run ~produce ~consume ()] spawns one producer domain running
    [produce ~push] while [consume ~pop] runs in the calling domain; the
    two overlap, bounded by the ring capacity.  The runner uses this to
    overlap trace ingestion (read, decode, intern) with checking.

    Contracts:
    - [produce] calls [push] for each item, in order.  When [push]
      returns [false] the consumer has stopped early and [produce]
      should return promptly (remaining items are dropped).
    - [consume] calls [pop] until it returns [None] (stream complete),
      or stops early by simply returning.
    - An exception raised by [produce] closes the stream: [consume]
      sees [None] at that point, its result is discarded, and the
      producer's exception is re-raised in the calling domain — exactly
      where the sequential code path would have raised it.
    - An exception raised by [consume] cancels the producer and is
      re-raised (unless the producer also failed, which wins as above).

    The pipeline is single-shot; item granularity is the caller's
    choice — batching events into arrays keeps the per-item mutex
    traffic negligible. *)

val run :
  ?capacity:int ->
  ?on_stats:(Ring.stats -> unit) ->
  produce:(push:('a -> bool) -> unit) ->
  consume:(pop:(unit -> 'a option) -> 'b) ->
  unit ->
  'b
(** [capacity] is the ring size in items (default 8).  [on_stats] is
    called once, after the producer has been joined, with the ring's
    occupancy/stall telemetry for the whole run. *)
