(* Chunked parallel checking: plan boundary-summary cuts, fan
   speculative seeded chunk checkers out over the domain pool, then
   reconcile left-to-right, repairing each cut's window against the
   true frontier.  The arena is fully built and immutable before any
   task is submitted, so chunk ranges cross domain boundaries without
   copying or marshalling (the chunks are off-heap Bigarrays).

   The correctness contract (DESIGN.md §17): a chunk checker seeded
   from its boundary summary ({!Aerodrome.Opt.seed_boundary}) is
   generation-wise {e contained} in the sequential checker — it can
   miss violations whose evidence predates the cut, but never invents
   one — and it is {e exact} from the end of the cut's repair window
   onward.  Reconciliation therefore walks the boundaries in order,
   feeds each window segment into the live checker (the true
   sequential state), and only then trusts the chunk's own speculative
   verdict for the remainder of its range.  A chunk that survives with
   no violation becomes the next live checker. *)

type task = {
  base : int;
  stop : int;
  checker : Aerodrome.Opt.t;
  violation : Aerodrome.Violation.t option; (* chunk-local index *)
  seconds : float;
  metrics : Obs.Snapshot.t;
  flight : Traces.Flight.t option;
}

type outcome = {
  violation : Aerodrome.Violation.t option; (* arena-global index *)
  plan : Aerodrome.Merge.plan;
  tasks : task array;
  repaired_events : int;
  plan_seconds : float;
  merge_seconds : float;
}

(* One chunk: a fresh checker seeded from the boundary summary over
   [base, stop).  The checker freezes at its first violation, so the
   loop stops there — by the containment invariant that violation is
   real, though reconciliation may find an earlier one in the window.

   With [?flight] a per-chunk recorder rides along, noting chunk-local
   indices seeded with the boundary depths: position 0 of the recorder
   is the chunk base, so with open transactions straddling the cut no
   position counts as quiescent until they close, and the recorder
   never claims a replayable slice the §15/§17 argument does not
   cover.

   Each chunk's feed loop is also a Chrome span (cat "shard"), so a
   [--trace-out] run shows the chunk lanes per worker domain in
   Perfetto, next to the planner and reconcile spans recorded by
   {!check}. *)
let run_chunk ?flight ~threads ~locks ~vars arena
    ((b : Aerodrome.Merge.boundary), (base, stop)) =
  let t0 = Unix.gettimeofday () in
  let seeded = Array.exists (fun d -> d > 0) b.Aerodrome.Merge.depths in
  let fl =
    Option.map
      (fun window ->
        Traces.Flight.create ~window
          ?depths:(if seeded then Some b.Aerodrome.Merge.depths else None)
          ~threads ())
      flight
  in
  let work () =
    let st =
      Aerodrome.Reclaim.with_policy Aerodrome.Reclaim.Off (fun () ->
          Aerodrome.Opt.create ~threads ~locks ~vars)
    in
    if seeded then Aerodrome.Opt.seed_boundary st b.Aerodrome.Merge.depths;
    Obs.Chrome_trace.span ~cat:"shard" "feed" (fun () ->
        let i = ref 0 in
        try
          Traces.Packed.Arena.iter_range arena base stop (fun w ->
              (match fl with
              | Some f -> Traces.Flight.note f !i w
              | None -> ());
              incr i;
              match Aerodrome.Opt.feed_packed st w with
              | Some _ -> raise Exit
              | None -> ())
        with Exit -> ());
    st
  in
  (* each chunk opens its own (domain-local) scope so the checker's
     counters are not lost on the worker domain; the caller merges the
     per-chunk snapshots back into a whole-trace reading *)
  let st, metrics =
    if Obs.on () then Obs.Scope.collect work else (work (), Obs.Snapshot.empty)
  in
  {
    base;
    stop;
    checker = st;
    violation = Aerodrome.Opt.violation st;
    seconds = Unix.gettimeofday () -. t0;
    metrics;
    flight = fl;
  }

(* Feed [from, upto) of the arena into the live checker; the first
   violation comes back rebased to its arena-global position, along
   with the number of events actually fed (the feed stops at a
   violation). *)
let repair st arena ~from ~upto =
  let fed = ref 0 in
  let violation = ref None in
  (try
     let p = ref from in
     Traces.Packed.Arena.iter_range arena from upto (fun w ->
         (match Aerodrome.Opt.feed_packed st w with
         | Some (v : Aerodrome.Violation.t) ->
           violation :=
             Some
               (Aerodrome.Violation.make ~index:!p ~event:v.event ~site:v.site);
           incr fed;
           raise Exit
         | None -> incr fed);
         incr p)
   with Exit -> ());
  (!violation, !fed)

(* Left-to-right reconciliation with repair.  [live] is the checker
   whose state is exact through [covered]; window segments are clipped
   against [covered] (windows are monotone, see {!Aerodrome.Merge}),
   fed into [live], and a chunk whose whole range fell inside a window
   is discarded.  A chunk consulted past its window either hands its
   (exact-region) violation up or becomes the next live checker. *)
let reconcile (plan : Aerodrome.Merge.plan) (tasks : task array) arena =
  let rebase (t : task) =
    Option.map
      (fun (v : Aerodrome.Violation.t) ->
        Aerodrome.Violation.make ~index:(t.base + v.index) ~event:v.event
          ~site:v.site)
      t.violation
  in
  let n = Traces.Packed.Arena.length arena in
  let live = ref tasks.(0).checker in
  let covered = ref tasks.(0).stop in
  let violation = ref (rebase tasks.(0)) in
  let repaired = ref 0 in
  let k = ref 1 in
  while !violation = None && !k < Array.length tasks do
    let b = plan.Aerodrome.Merge.boundaries.(!k) in
    let t = tasks.(!k) in
    let h = min n (b.Aerodrome.Merge.cut + b.Aerodrome.Merge.window) in
    let from = max b.Aerodrome.Merge.cut !covered in
    if h > from then begin
      let v, fed = repair !live arena ~from ~upto:h in
      repaired := !repaired + fed;
      violation := v
    end;
    if !violation = None then begin
      covered := max !covered h;
      if t.stop > !covered then begin
        (match rebase t with
        | Some v when v.Aerodrome.Violation.index >= !covered ->
          violation := Some v
        | Some _ ->
          (* a speculative violation inside the repaired window that
             the repair did not confirm would contradict the
             containment invariant — fail loudly rather than report a
             verdict the sequential checker would not *)
          failwith "Shard.check: speculative violation unconfirmed by repair"
        | None -> ());
        if !violation = None then begin
          live := t.checker;
          covered := t.stop
        end
      end
    end;
    incr k
  done;
  (!violation, !repaired)

(* Work-stealing execution over micro-chunks (DESIGN.md §18).  The
   left-to-right fold above is order-dependent only in appearance: the
   covered frontier, segment extents, seam owners and chunk survival
   are all functions of the plan alone, so {!Aerodrome.Merge.seams}
   evaluates the fold before any chunk runs.  Execution then needs no
   order at all:

   - every chunk is one scheduler task; the deques and steals decide
     placement, so a hot chunk (violation site, dense lock traffic,
     long repair horizon) no longer pins the whole tail to one domain;
   - a chunk that owns seams repairs them the moment its own range is
     fed — its checker's exact state already reaches the segment
     start, and the arena is immutable, so the right-hand chunk of the
     seam need not have retired (it contributes no state to the
     repair, only its verdict to the final assembly);
   - an owner frozen at its own violation skips its repairs: every
     position they would cover lies past a real violation the
     assembly already reports, so the sequential checker would never
     reach them;
   - the verdict is the minimum-index candidate over chunk 0, the
     surviving chunks' exact-region violations and the repair
     violations.  The exact regions and repair segments partition the
     arena, each checked under exact sequential state, so the minimum
     is the sequential checker's first violation — the same answer
     {!reconcile} folds to, now computed from an unordered bag of
     retirements (the [retired] bitmap). *)
let check_stealing ~sched ?(oversub = 8) ?(chunk_floor = 8192) ?cuts ?flight
    ~shards ~threads ~locks ~vars arena =
  let n = Traces.Packed.Arena.length arena in
  let shards =
    match cuts with
    | Some _ -> 0 (* the plan takes the forced cuts verbatim *)
    | None when shards <> 0 -> shards (* forced chunk count (tests, static:N comparisons) *)
    | None ->
      max 1 (min (Deque.size sched * max 1 oversub) (max 1 (n / max 1 chunk_floor)))
  in
  let t0 = Unix.gettimeofday () in
  let plan =
    Obs.Chrome_trace.span ~cat:"shard" "plan" (fun () ->
        Aerodrome.Merge.plan ~threads ~shards ?cuts arena)
  in
  let plan_seconds = Unix.gettimeofday () -. t0 in
  let bounds = Aerodrome.Merge.bounds plan ~total:n in
  let k = Array.length bounds in
  let seams = Aerodrome.Merge.seams plan ~total:n in
  (* seams grouped by owning chunk, ascending — the owner feeds its
     segments in trace order, so its checker walks one contiguous
     stream *)
  let owned = Array.make k [] in
  for i = k - 1 downto 1 do
    let s = seams.(i) in
    if s.Aerodrome.Merge.upto > s.Aerodrome.Merge.from_ then
      owned.(s.Aerodrome.Merge.owner) <- i :: owned.(s.Aerodrome.Merge.owner)
  done;
  let retired = Array.init k (fun _ -> Atomic.make false) in
  let work i () =
    let t =
      run_chunk ?flight ~threads ~locks ~vars arena
        (plan.Aerodrome.Merge.boundaries.(i), bounds.(i))
    in
    Atomic.set retired.(i) true;
    let rv = ref None in
    let fed = ref 0 in
    if t.violation = None then
      List.iter
        (fun si ->
          if !rv = None then begin
            let s = seams.(si) in
            let v, f =
              repair t.checker arena ~from:s.Aerodrome.Merge.from_
                ~upto:s.Aerodrome.Merge.upto
            in
            fed := !fed + f;
            rv := v
          end)
        owned.(i);
    (t, !rv, !fed)
  in
  let results =
    if k <= 1 then Array.init k (fun i -> work i ())
    else
      let promises = Array.init k (fun i -> Deque.submit sched (work i)) in
      Array.map (Deque.await sched) promises
  in
  let t1 = Unix.gettimeofday () in
  Array.iter (fun r -> assert (Atomic.get r)) retired;
  let rebase (t : task) =
    Option.map
      (fun (v : Aerodrome.Violation.t) ->
        Aerodrome.Violation.make ~index:(t.base + v.index) ~event:v.event
          ~site:v.site)
      t.violation
  in
  let best = ref None in
  let consider = function
    | Some (v : Aerodrome.Violation.t) -> (
      match !best with
      | Some (w : Aerodrome.Violation.t) when w.index <= v.index -> ()
      | _ -> best := Some v)
    | None -> ()
  in
  Array.iteri
    (fun i ((t : task), rv, _) ->
      consider rv;
      if i = 0 then consider (rebase t)
      else if seams.(i).Aerodrome.Merge.survives then
        match rebase t with
        | Some v
          when v.Aerodrome.Violation.index >= seams.(i).Aerodrome.Merge.exact_from
          ->
          consider (Some v)
        | _ -> ())
    results;
  (* the same loud guard as [reconcile]: a surviving chunk's
     speculative violation below its exact region must be explained by
     an earlier final violation, else containment is broken *)
  Array.iteri
    (fun i ((t : task), _, _) ->
      if i > 0 && seams.(i).Aerodrome.Merge.survives then
        match rebase t with
        | Some v
          when v.Aerodrome.Violation.index < seams.(i).Aerodrome.Merge.exact_from
          -> (
          match !best with
          | Some (w : Aerodrome.Violation.t)
            when w.index <= v.Aerodrome.Violation.index ->
            ()
          | _ ->
            failwith "Shard.check: speculative violation unconfirmed by repair")
        | _ -> ())
    results;
  {
    violation = !best;
    plan;
    tasks = Array.map (fun (t, _, _) -> t) results;
    repaired_events = Array.fold_left (fun a (_, _, f) -> a + f) 0 results;
    plan_seconds;
    merge_seconds = Unix.gettimeofday () -. t1;
  }

let check ?pool ?cuts ?flight ~shards ~threads ~locks ~vars arena =
  let t0 = Unix.gettimeofday () in
  let plan =
    Obs.Chrome_trace.span ~cat:"shard" "plan" (fun () ->
        Aerodrome.Merge.plan ~threads ~shards ?cuts arena)
  in
  let plan_seconds = Unix.gettimeofday () -. t0 in
  let bounds =
    Aerodrome.Merge.bounds plan ~total:(Traces.Packed.Arena.length arena)
  in
  let chunks =
    Array.mapi (fun i b -> (plan.Aerodrome.Merge.boundaries.(i), b)) bounds
  in
  let run = run_chunk ?flight ~threads ~locks ~vars arena in
  let tasks =
    match pool with
    | Some p when Array.length chunks > 1 -> Pool.map p run chunks
    | Some _ | None ->
      if Array.length chunks <= 1 then Array.map run chunks
      else
        Pool.with_pool
          (min (Array.length chunks) (max 1 shards))
          (fun p -> Pool.map p run chunks)
  in
  let t1 = Unix.gettimeofday () in
  let violation, repaired_events =
    Obs.Chrome_trace.span ~cat:"shard" "reconcile" (fun () ->
        reconcile plan tasks arena)
  in
  {
    violation;
    plan;
    tasks;
    repaired_events;
    plan_seconds;
    merge_seconds = Unix.gettimeofday () -. t1;
  }
