(* Chunked parallel checking: plan quiescent cuts, fan speculative
   chunk checkers out over the domain pool, reconcile left-to-right.
   The arena is fully built and immutable before any task is
   submitted, so chunk ranges cross domain boundaries without copying
   or marshalling (the chunks are off-heap Bigarrays). *)

type task = {
  base : int;
  stop : int;
  violation : Aerodrome.Violation.t option;
  seconds : float;
  metrics : Obs.Snapshot.t;
  flight : Traces.Flight.t option;
}

type outcome = {
  violation : Aerodrome.Violation.t option;
  plan : Aerodrome.Merge.plan;
  tasks : task array;
  plan_seconds : float;
  merge_seconds : float;
}

(* One chunk: a fresh checker seeded with ⊥ clocks over
   [base, stop).  The checker freezes at its first violation, so the
   loop stops there — later events of the chunk cannot change the
   chunk's first violation, and the merged [events_fed] is
   reconstructed from the arena length, as the sequential runner keeps
   feeding a frozen checker.

   With [?flight] a per-chunk recorder rides along, noting chunk-local
   indices: position 0 of the recorder is the chunk base, which is an
   accepted quiescent cut (or the trace start), so the recorder's
   quiescence bookkeeping is exact without knowing the global offset.
   The loop stops at the violation, so the ring tail ends exactly at
   the violating event.

   Each chunk's feed loop is also a Chrome span (cat "shard"), so a
   [--trace-out] run shows the chunk lanes per worker domain in
   Perfetto, next to the planner and reconcile spans recorded by
   {!check}. *)
let run_chunk ?flight (module C : Aerodrome.Checker.S) ~threads ~locks ~vars
    arena (base, stop) =
  let t0 = Unix.gettimeofday () in
  let fl =
    Option.map (fun window -> Traces.Flight.create ~window ~threads ()) flight
  in
  let work () =
    let st =
      Aerodrome.Reclaim.with_policy Aerodrome.Reclaim.Off (fun () ->
          C.create ~threads ~locks ~vars)
    in
    Obs.Chrome_trace.span ~cat:"shard" "feed" (fun () ->
        let i = ref 0 in
        try
          Traces.Packed.Arena.iter_range arena base stop (fun w ->
              (match fl with
              | Some f -> Traces.Flight.note f !i w
              | None -> ());
              incr i;
              match C.feed_packed st w with Some _ -> raise Exit | None -> ())
        with Exit -> ());
    C.violation st
  in
  (* each chunk opens its own (domain-local) scope so the checker's
     counters are not lost on the worker domain; the caller merges the
     per-chunk snapshots back into a whole-trace reading *)
  let violation, metrics =
    if Obs.on () then Obs.Scope.collect work else (work (), Obs.Snapshot.empty)
  in
  {
    base;
    stop;
    violation;
    seconds = Unix.gettimeofday () -. t0;
    metrics;
    flight = fl;
  }

let check ?pool ?window ?cuts ?flight ~shards checker ~threads ~locks ~vars
    arena =
  let t0 = Unix.gettimeofday () in
  let plan =
    Obs.Chrome_trace.span ~cat:"shard" "plan" (fun () ->
        Aerodrome.Merge.plan ~threads ~shards ?window ?cuts arena)
  in
  let plan_seconds = Unix.gettimeofday () -. t0 in
  let bounds = Aerodrome.Merge.bounds plan ~total:(Traces.Packed.Arena.length arena) in
  let run = run_chunk ?flight checker ~threads ~locks ~vars arena in
  let tasks =
    match pool with
    | Some p when Array.length bounds > 1 -> Pool.map p run bounds
    | Some _ | None ->
      if Array.length bounds <= 1 then Array.map run bounds
      else
        Pool.with_pool
          (min (Array.length bounds) (max 1 shards))
          (fun p -> Pool.map p run bounds)
  in
  let t1 = Unix.gettimeofday () in
  let violation =
    Obs.Chrome_trace.span ~cat:"shard" "reconcile" (fun () ->
        Aerodrome.Merge.reconcile
          (Array.map (fun t -> (t.base, t.violation)) tasks))
  in
  {
    violation;
    plan;
    tasks;
    plan_seconds;
    merge_seconds = Unix.gettimeofday () -. t1;
  }
