type 'a t = {
  slots : 'a option array;
  mutable head : int;  (* next pop index *)
  mutable tail : int;  (* next push index *)
  mutable count : int;
  mutable closed : bool;
  mutable cancelled : bool;
  (* Occupancy telemetry, maintained under [mu] (free: the lock is
     already held at every update site). *)
  mutable hwm : int;  (* occupancy high-water mark *)
  mutable push_waits : int;  (* pushes that found the ring full *)
  mutable pop_waits : int;  (* pops that found the ring empty *)
  mu : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

type stats = {
  st_capacity : int;
  occupancy_hwm : int;
  producer_stalls : int;
  consumer_stalls : int;
}

let create capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  {
    slots = Array.make capacity None;
    head = 0;
    tail = 0;
    count = 0;
    closed = false;
    cancelled = false;
    hwm = 0;
    push_waits = 0;
    pop_waits = 0;
    mu = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
  }

let capacity r = Array.length r.slots

let length r =
  Mutex.lock r.mu;
  let n = r.count in
  Mutex.unlock r.mu;
  n

let with_lock r f =
  Mutex.lock r.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.mu) f

let push r v =
  with_lock r (fun () ->
      if r.closed then invalid_arg "Ring.push: ring is closed";
      if r.count = Array.length r.slots && not r.cancelled then
        r.push_waits <- r.push_waits + 1;
      while r.count = Array.length r.slots && not r.cancelled do
        Condition.wait r.not_full r.mu
      done;
      if r.cancelled then false
      else begin
        r.slots.(r.tail) <- Some v;
        r.tail <- (r.tail + 1) mod Array.length r.slots;
        r.count <- r.count + 1;
        if r.count > r.hwm then r.hwm <- r.count;
        Condition.signal r.not_empty;
        true
      end)

let close r =
  with_lock r (fun () ->
      r.closed <- true;
      Condition.signal r.not_empty)

let pop r =
  with_lock r (fun () ->
      if r.count = 0 && not r.closed && not r.cancelled then
        r.pop_waits <- r.pop_waits + 1;
      while r.count = 0 && not r.closed && not r.cancelled do
        Condition.wait r.not_empty r.mu
      done;
      if r.cancelled || r.count = 0 then None
      else begin
        let v = r.slots.(r.head) in
        r.slots.(r.head) <- None;
        r.head <- (r.head + 1) mod Array.length r.slots;
        r.count <- r.count - 1;
        Condition.signal r.not_full;
        v
      end)

let cancel r =
  with_lock r (fun () ->
      r.cancelled <- true;
      Array.fill r.slots 0 (Array.length r.slots) None;
      r.count <- 0;
      Condition.signal r.not_full;
      Condition.signal r.not_empty)

let stats r =
  with_lock r (fun () ->
      {
        st_capacity = Array.length r.slots;
        occupancy_hwm = r.hwm;
        producer_stalls = r.push_waits;
        consumer_stalls = r.pop_waits;
      })
