(** Fixed-size domain pool with a mutex/condvar work queue.

    [create jobs] spawns [jobs] worker domains that block on a shared
    queue; {!map} fans an array of independent items out to them and
    collects results {e by input index}, so the output ordering (and any
    raised exception — the one belonging to the smallest failing index)
    is deterministic regardless of how the OS schedules the workers.

    The pool is sized once and reused: spawning a domain costs a few
    hundred microseconds and a per-domain minor heap, so a long-lived
    pool amortises that across many batches (the bench harness runs all
    its fan-outs on one pool).  Workers run arbitrary closures; the
    closures must not themselves assume a particular worker identity.

    Nested {!map} calls from inside a worker would deadlock a fully
    loaded pool and are not supported. *)

type t

val create : int -> t
(** [create jobs] spawns [jobs] worker domains ([jobs >= 1]).
    @raise Invalid_argument on a non-positive size. *)

val size : t -> int

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f items] runs [f] on every item on the worker domains and
    returns the results in input order.  Blocks the calling domain until
    every item has finished.  If one or more applications raise, the
    exception of the smallest input index is re-raised (after all items
    have finished, so the pool stays usable). *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, same ordering and error contract. *)

val shutdown : t -> unit
(** Finish queued work, then join every worker.  Idempotent; using the
    pool after shutdown raises [Invalid_argument]. *)

val busy_seconds : t -> float array
(** Seconds each worker has spent inside tasks, by worker index.  Only
    meaningful once {!shutdown} has joined the workers (each slot is
    written by its own worker without synchronisation). *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool jobs f] runs [f] on a fresh pool and shuts it down on the
    way out (also on exception). *)

val run : ?report:(float array -> unit) -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [jobs <= 1] (or fewer than two items) runs
    sequentially in the calling domain with no pool at all — the exact
    sequential code path — otherwise a temporary pool of
    [min jobs (length items)] workers is created, used and shut down.
    [report] (pool path only) receives {!busy_seconds} after the workers
    have been joined. *)
