(** Multi-trace corpora for the fan-out benchmark.

    A corpus is a deterministic batch of independent traces of mixed
    shapes and sizes — the workload of a checking {e service} draining a
    queue of submitted traces, where throughput comes from checking many
    traces concurrently rather than from parallelising the (inherently
    sequential) per-trace algorithm.  The mix interleaves the generator's
    two shapes, varies thread/lock pools, and plants a violation in
    every fifth trace so the fan-out path exercises early-freeze
    checkers too. *)

val configs :
  ?seed:int64 -> traces:int -> events_total:int -> unit ->
  (string * Generator.config) list
(** [configs ~traces ~events_total ()] is [traces] named generator
    configurations whose event counts vary around
    [events_total / traces] (±50%, deterministic in the index) and sum
    to roughly [events_total].  Deterministic in [seed] (default a fixed
    corpus seed distinct from {!Generator.default}'s). *)

val generate :
  ?seed:int64 -> traces:int -> events_total:int -> unit ->
  (string * Traces.Trace.t) list
(** The generated corpus, in configuration order. *)

val mixed :
  ?seed:int64 -> ?threads:int -> events_total:int -> unit -> Traces.Trace.t
(** [mixed ~events_total ()] is one trace of roughly [events_total]
    events: ~55% shared multi-thread traffic (an [Independent]/[Atomic]
    generator run) interleaved with ~45% traffic the {!Traces.Prefilter}
    can elide — per-thread private variables, a pool of never-written
    variables read by every thread, immediate in-transaction re-accesses,
    and a private lock per thread.  The insertions preserve
    well-formedness and the serializability verdict; the trace is
    deterministic in [seed].  The workload for the prefilter benchmark
    axis. *)

val phased :
  ?seed:int64 -> phases:int -> events_total:int -> unit -> Traces.Trace.t
(** [phased ~phases ~events_total ()] is one long serializable trace made
    of [phases] back-to-back independent phases: each phase is an
    [Independent]/[Atomic] generator run over a {e fresh} block of
    variables (ids are offset per phase; threads and locks are shared).
    Every variable's lifetime is confined to its phase, so a last-use
    oracle can release a phase's entire state before the next begins —
    the workload for the peak-memory benchmark axis.  Serial composition
    of serializable phases over disjoint variables stays serializable,
    and the trace is deterministic in [seed]. *)
