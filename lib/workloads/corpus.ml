let configs ?(seed = 0xC0DEL) ~traces ~events_total () =
  if traces < 1 then invalid_arg "Corpus.configs: traces must be >= 1";
  let base = max 64 (events_total / traces) in
  List.init traces (fun i ->
      let shape =
        if i mod 2 = 0 then Generator.Independent else Generator.Anchored
      in
      (* ±50% around the base, deterministic in the index *)
      let events = base + base * ((i * 7919 mod 101) - 50) / 100 in
      let plan =
        if i mod 5 = 4 then Generator.Violate_at 0.75 else Generator.Atomic
      in
      let name =
        Printf.sprintf "corpus-%02d-%s%s" i
          (match shape with
          | Generator.Independent -> "ind"
          | Generator.Anchored -> "anc")
          (match plan with Generator.Atomic -> "" | _ -> "-viol")
      in
      let threads = 4 + (i * 3 mod 9) in
      let locks = 4 + (i * 5 mod 13) in
      let config =
        {
          Generator.default with
          seed = Int64.add seed (Int64.of_int (i * 1_000_003));
          threads;
          locks;
          events;
          vars = max 256 (events / 3);
          shape;
          plan;
        }
      in
      (name, config))

let generate ?seed ~traces ~events_total () =
  List.map
    (fun (name, config) -> (name, Generator.generate config))
    (configs ?seed ~traces ~events_total ())
