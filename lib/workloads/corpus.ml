let configs ?(seed = 0xC0DEL) ~traces ~events_total () =
  if traces < 1 then invalid_arg "Corpus.configs: traces must be >= 1";
  let base = max 64 (events_total / traces) in
  List.init traces (fun i ->
      let shape =
        if i mod 2 = 0 then Generator.Independent else Generator.Anchored
      in
      (* ±50% around the base, deterministic in the index *)
      let events = base + base * ((i * 7919 mod 101) - 50) / 100 in
      let plan =
        if i mod 5 = 4 then Generator.Violate_at 0.75 else Generator.Atomic
      in
      let name =
        Printf.sprintf "corpus-%02d-%s%s" i
          (match shape with
          | Generator.Independent -> "ind"
          | Generator.Anchored -> "anc")
          (match plan with Generator.Atomic -> "" | _ -> "-viol")
      in
      let threads = 4 + (i * 3 mod 9) in
      let locks = 4 + (i * 5 mod 13) in
      let config =
        {
          Generator.default with
          seed = Int64.add seed (Int64.of_int (i * 1_000_003));
          threads;
          locks;
          events;
          vars = max 256 (events / 3);
          shape;
          plan;
        }
      in
      (name, config))

let generate ?seed ~traces ~events_total () =
  List.map
    (fun (name, config) -> (name, Generator.generate config))
    (configs ?seed ~traces ~events_total ())

(* Mixed reducible workload: a shared-traffic base trace interleaved with
   traffic the prefilter can elide — per-thread private variables, a pool
   of never-written variables read by every thread, immediate in-transaction
   re-accesses, and a private lock per thread.  All insertions preserve
   well-formedness (lock pairs are adjacent, private ids are fresh blocks
   beyond the base trace's) and the serializability verdict (private and
   read-only accesses add no conflict edge; a duplicated access only
   repeats edges between the same transaction pair). *)
let mixed ?(seed = 0xC0DEL) ?(threads = 8) ~events_total () =
  let open Traces in
  (* ~55% base shared traffic, ~45% inserted reducible traffic *)
  let base_events = max 1_000 (events_total * 11 / 20) in
  let config =
    {
      Generator.default with
      seed;
      threads;
      locks = 8;
      events = base_events;
      vars = max 256 (base_events / 4);
      shape = Generator.Independent;
      plan = Generator.Atomic;
    }
  in
  let base = Generator.generate config in
  let nvars = Trace.vars base
  and nlocks = Trace.locks base
  and nthreads = Trace.threads base in
  let ro_pool = 64 in
  let ro_var i = Ids.Vid.of_int (nvars + (i mod ro_pool)) in
  let tl_var t = Ids.Vid.of_int (nvars + ro_pool + t) in
  let tl_lock t = Ids.Lid.of_int (nlocks + t) in
  let budget = ref (max 0 (events_total - Trace.length base)) in
  let b = Trace.Builder.create ~capacity:(events_total + 64) () in
  (* xorshift, deterministic in [seed]; cheap per-event choice *)
  let rng = ref (Int64.to_int seed land 0x3FFFFFFF lor 1) in
  let rand bound =
    let x = !rng in
    let x = x lxor (x lsl 13) land max_int in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) land max_int in
    rng := x;
    x mod bound
  in
  let depth = Array.make nthreads 0 in
  Trace.iter
    (fun (e : Event.t) ->
      Trace.Builder.add b e;
      let t = Ids.Tid.to_int e.Event.thread in
      (match e.Event.op with
      | Event.Begin -> depth.(t) <- depth.(t) + 1
      | Event.End -> depth.(t) <- max 0 (depth.(t) - 1)
      | _ -> ());
      (* splice reducible traffic after in-transaction accesses *)
      match e.Event.op with
      | (Event.Read _ | Event.Write _) when depth.(t) > 0 && !budget > 0 ->
        let add op =
          Trace.Builder.add b (Event.make e.Event.thread op);
          decr budget
        in
        (* up to two insertions per access so the budget actually drains *)
        for _ = 1 to 2 do
          if !budget > 0 then
            match rand 10 with
            | 0 | 1 | 2 -> add (Event.Read (tl_var t))
            | 3 -> add (Event.Write (tl_var t))
            | 4 | 5 -> add (Event.Read (ro_var (rand ro_pool)))
            | 6 | 7 ->
              (* immediate same-transaction re-access: redundant, rule (c) *)
              add e.Event.op
            | _ ->
              if !budget > 1 then begin
                add (Event.Acquire (tl_lock t));
                add (Event.Release (tl_lock t))
              end
              else add (Event.Read (tl_var t))
        done
      | _ -> ())
    base;
  Trace.Builder.build b

let phased ?(seed = 0xC0DEL) ~phases ~events_total () =
  if phases < 1 then invalid_arg "Corpus.phased: phases must be >= 1";
  let open Traces in
  let b = Trace.Builder.create ~capacity:(events_total + 64) () in
  let per_phase = max 256 (events_total / phases) in
  let offset = ref 0 in
  for i = 0 to phases - 1 do
    let config =
      {
        Generator.default with
        seed = Int64.add seed (Int64.of_int ((i + 17) * 1_000_003));
        threads = 4;
        locks = 4;
        events = per_phase;
        vars = max 256 (per_phase / 3);
        shape = Generator.Independent;
        plan = Generator.Atomic;
      }
    in
    let tr = Generator.generate config in
    let off = !offset in
    Trace.iter
      (fun (e : Event.t) ->
        let op =
          match e.Event.op with
          | Event.Read x -> Event.Read (Ids.Vid.of_int (Ids.Vid.to_int x + off))
          | Event.Write x ->
            Event.Write (Ids.Vid.of_int (Ids.Vid.to_int x + off))
          | op -> op
        in
        Trace.Builder.add b { e with Event.op })
      tr;
    offset := off + Trace.vars tr
  done;
  Trace.Builder.build b
