let configs ?(seed = 0xC0DEL) ~traces ~events_total () =
  if traces < 1 then invalid_arg "Corpus.configs: traces must be >= 1";
  let base = max 64 (events_total / traces) in
  List.init traces (fun i ->
      let shape =
        if i mod 2 = 0 then Generator.Independent else Generator.Anchored
      in
      (* ±50% around the base, deterministic in the index *)
      let events = base + base * ((i * 7919 mod 101) - 50) / 100 in
      let plan =
        if i mod 5 = 4 then Generator.Violate_at 0.75 else Generator.Atomic
      in
      let name =
        Printf.sprintf "corpus-%02d-%s%s" i
          (match shape with
          | Generator.Independent -> "ind"
          | Generator.Anchored -> "anc")
          (match plan with Generator.Atomic -> "" | _ -> "-viol")
      in
      let threads = 4 + (i * 3 mod 9) in
      let locks = 4 + (i * 5 mod 13) in
      let config =
        {
          Generator.default with
          seed = Int64.add seed (Int64.of_int (i * 1_000_003));
          threads;
          locks;
          events;
          vars = max 256 (events / 3);
          shape;
          plan;
        }
      in
      (name, config))

let generate ?seed ~traces ~events_total () =
  List.map
    (fun (name, config) -> (name, Generator.generate config))
    (configs ?seed ~traces ~events_total ())

let phased ?(seed = 0xC0DEL) ~phases ~events_total () =
  if phases < 1 then invalid_arg "Corpus.phased: phases must be >= 1";
  let open Traces in
  let b = Trace.Builder.create ~capacity:(events_total + 64) () in
  let per_phase = max 256 (events_total / phases) in
  let offset = ref 0 in
  for i = 0 to phases - 1 do
    let config =
      {
        Generator.default with
        seed = Int64.add seed (Int64.of_int ((i + 17) * 1_000_003));
        threads = 4;
        locks = 4;
        events = per_phase;
        vars = max 256 (per_phase / 3);
        shape = Generator.Independent;
        plan = Generator.Atomic;
      }
    in
    let tr = Generator.generate config in
    let off = !offset in
    Trace.iter
      (fun (e : Event.t) ->
        let op =
          match e.Event.op with
          | Event.Read x -> Event.Read (Ids.Vid.of_int (Ids.Vid.to_int x + off))
          | Event.Write x ->
            Event.Write (Ids.Vid.of_int (Ids.Vid.to_int x + off))
          | op -> op
        in
        Trace.Builder.add b { e with Event.op })
      tr;
    offset := off + Trace.vars tr
  done;
  Trace.Builder.build b
