type t = int array

let create dim =
  if dim < 0 then invalid_arg "Vector_clock.create: negative dimension";
  Array.make dim 0

let bottom = create

let unit dim t =
  if t < 0 || t >= dim then invalid_arg "Vector_clock.unit: thread out of range";
  let v = create dim in
  v.(t) <- 1;
  v

let dim = Array.length

let get v t = v.(t)

let set v t c =
  if c < 0 then invalid_arg "Vector_clock.set: negative component";
  v.(t) <- c

let bump v t = v.(t) <- v.(t) + 1

let check_dim name v1 v2 =
  if Array.length v1 <> Array.length v2 then
    invalid_arg (name ^ ": dimension mismatch")

let join_into ~into v =
  check_dim "Vector_clock.join_into" into v;
  for t = 0 to Array.length into - 1 do
    if v.(t) > into.(t) then into.(t) <- v.(t)
  done

let join_into_zeroed ~into v z =
  check_dim "Vector_clock.join_into_zeroed" into v;
  for t = 0 to Array.length into - 1 do
    if t <> z && v.(t) > into.(t) then into.(t) <- v.(t)
  done

let assign ~into v =
  check_dim "Vector_clock.assign" into v;
  Array.blit v 0 into 0 (Array.length v)

let assign_zeroed ~into v z =
  assign ~into v;
  if z >= 0 && z < Array.length into then into.(z) <- 0

let copy = Array.copy

let leq v1 v2 =
  check_dim "Vector_clock.leq" v1 v2;
  let rec go t = t >= Array.length v1 || (v1.(t) <= v2.(t) && go (t + 1)) in
  go 0

let equal v1 v2 =
  check_dim "Vector_clock.equal" v1 v2;
  v1 = v2

let equal_except v1 v2 z =
  check_dim "Vector_clock.equal_except" v1 v2;
  let rec go t =
    t >= Array.length v1 || ((t = z || v1.(t) = v2.(t)) && go (t + 1))
  in
  go 0

let is_bottom v = Array.for_all (fun c -> c = 0) v

let reset v = Array.fill v 0 (Array.length v) 0

let to_list = Array.to_list

let of_list cs =
  if List.exists (fun c -> c < 0) cs then
    invalid_arg "Vector_clock.of_list: negative component";
  Array.of_list cs

let pp ppf v =
  Format.fprintf ppf "@[<h>⟨%a⟩@]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    v

let to_string v = Format.asprintf "%a" pp v
