lib/vclock/vtime.ml: Array Format List Stdlib Vector_clock
