lib/vclock/vtime.mli: Format Vector_clock
