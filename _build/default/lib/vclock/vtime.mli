(** Persistent (immutable) vector times.

    This is the mathematical counterpart of {!Vector_clock}: a value of type
    {!t} never changes, so it can be stored, compared and replayed freely.
    The reference checker used in tests and the differential-testing oracle
    work with [Vtime.t] values, while the production checkers use the
    in-place {!Vector_clock} representation; property tests assert that the
    two agree operation by operation. *)

type t

val bottom : int -> t
(** [bottom dim] is [⊥] of dimension [dim]. *)

val unit : int -> int -> t
(** [unit dim t] is [⊥\[1/t\]]. *)

val dim : t -> int

val get : t -> int -> int

val set : t -> int -> int -> t
(** [set v t c] is [v\[c/t\]]: the time equal to [v] except component [t]
    is [c]. *)

val bump : t -> int -> t
(** [bump v t] is [v\[v(t)+1 / t\]]. *)

val join : t -> t -> t
(** Pointwise maximum [v1 ⊔ v2]. *)

val zeroed : t -> int -> t
(** [zeroed v t] is [v\[0/t\]]. *)

val leq : t -> t -> bool
(** Pointwise order. *)

val lt : t -> t -> bool
(** Strict order: [leq v1 v2 && not (equal v1 v2)]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order extending {!equal} (lexicographic); for use in [Set]/[Map]
    functors, not a refinement of {!leq}. *)

val concurrent : t -> t -> bool
(** [concurrent v1 v2] iff neither [leq v1 v2] nor [leq v2 v1]. *)

val of_clock : Vector_clock.t -> t
(** Snapshot of a mutable clock. *)

val to_clock : t -> Vector_clock.t
(** Fresh mutable clock with the same components. *)

val of_list : int list -> t
val to_list : t -> int list
val pp : Format.formatter -> t -> unit
val to_string : t -> string
