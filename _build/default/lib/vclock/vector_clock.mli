(** Mutable vector clocks over a fixed set of threads.

    A vector time is a map from thread indices [0 .. dim-1] to non-negative
    integers (Section 4 of the paper).  This module provides the imperative
    representation used by the checkers: clocks are updated in place so that
    processing one event performs at most a constant number of [O(dim)]
    operations.

    The partial order is pointwise: [v1] is before [v2] ([leq v1 v2]) iff
    every component of [v1] is less than or equal to the corresponding
    component of [v2]. *)

type t

val create : int -> t
(** [create dim] is the minimum vector time [⊥] of dimension [dim]: every
    component is [0].  @raise Invalid_argument if [dim < 0]. *)

val bottom : int -> t
(** Alias for {!create}; matches the paper's [⊥_Thr] notation. *)

val unit : int -> int -> t
(** [unit dim t] is [⊥\[1/t\]]: zero everywhere except component [t], which
    is [1].  This is the initial value of the thread clock [C_t]. *)

val dim : t -> int
(** Number of components. *)

val get : t -> int -> int
(** [get v t] is the [t]-th component [v(t)]. *)

val set : t -> int -> int -> unit
(** [set v t c] assigns component [t] to [c] in place. *)

val bump : t -> int -> unit
(** [bump v t] increments component [t] in place; used at transaction-begin
    events ([C_t(t) := C_t(t) + 1]). *)

val join_into : into:t -> t -> unit
(** [join_into ~into v] sets [into := into ⊔ v] (pointwise maximum), in
    place.  @raise Invalid_argument on dimension mismatch. *)

val join_into_zeroed : into:t -> t -> int -> unit
(** [join_into_zeroed ~into v t] sets [into := into ⊔ v\[0/t\]]: joins [v]
    with its [t]-th component replaced by [0].  Used to maintain the check
    clock [hR_x] of Algorithm 2 without materializing [v\[0/t\]]. *)

val assign : into:t -> t -> unit
(** [assign ~into v] copies the components of [v] into [into]. *)

val assign_zeroed : into:t -> t -> int -> unit
(** [assign_zeroed ~into v t] copies [v\[0/t\]] into [into]. *)

val copy : t -> t
(** Fresh clock with the same components. *)

val leq : t -> t -> bool
(** [leq v1 v2] is the pointwise order [v1 ⊑ v2].
    @raise Invalid_argument on dimension mismatch. *)

val equal : t -> t -> bool
(** Pointwise equality. *)

val equal_except : t -> t -> int -> bool
(** [equal_except v1 v2 t] is true iff [v1] and [v2] agree on every component
    other than [t], i.e. [v1\[0/t\] = v2\[0/t\]].  Used by the garbage
    collection test [hasIncomingEdge] of Algorithm 3. *)

val is_bottom : t -> bool
(** True iff every component is [0]. *)

val reset : t -> unit
(** Set every component to [0] in place. *)

val to_list : t -> int list
(** Components in thread order. *)

val of_list : int list -> t
(** Build a clock from its components.
    @raise Invalid_argument if any component is negative. *)

val pp : Format.formatter -> t -> unit
(** Prints as [⟨c0,c1,...⟩], mirroring the paper's figures. *)

val to_string : t -> string
