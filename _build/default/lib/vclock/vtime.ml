type t = int array
(* Invariant: arrays are never mutated after construction. *)

let bottom dim =
  if dim < 0 then invalid_arg "Vtime.bottom: negative dimension";
  Array.make dim 0

let unit dim t =
  if t < 0 || t >= dim then invalid_arg "Vtime.unit: thread out of range";
  let v = Array.make dim 0 in
  v.(t) <- 1;
  v

let dim = Array.length

let get v t = v.(t)

let set v t c =
  if c < 0 then invalid_arg "Vtime.set: negative component";
  let v' = Array.copy v in
  v'.(t) <- c;
  v'

let bump v t = set v t (v.(t) + 1)

let check_dim name v1 v2 =
  if Array.length v1 <> Array.length v2 then
    invalid_arg (name ^ ": dimension mismatch")

let join v1 v2 =
  check_dim "Vtime.join" v1 v2;
  Array.init (Array.length v1) (fun t -> max v1.(t) v2.(t))

let zeroed v t = set v t 0

let leq v1 v2 =
  check_dim "Vtime.leq" v1 v2;
  let rec go t = t >= Array.length v1 || (v1.(t) <= v2.(t) && go (t + 1)) in
  go 0

let equal v1 v2 =
  check_dim "Vtime.equal" v1 v2;
  v1 = v2

let lt v1 v2 = leq v1 v2 && not (equal v1 v2)

let compare = Stdlib.compare

let concurrent v1 v2 = (not (leq v1 v2)) && not (leq v2 v1)

let of_clock c = Array.of_list (Vector_clock.to_list c)

let to_clock v = Vector_clock.of_list (Array.to_list v)

let of_list cs =
  if List.exists (fun c -> c < 0) cs then
    invalid_arg "Vtime.of_list: negative component";
  Array.of_list cs

let to_list = Array.to_list

let pp ppf v =
  Format.fprintf ppf "@[<h>⟨%a⟩@]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    v

let to_string v = Format.asprintf "%a" pp v
