open Traces

type shape = Independent | Anchored

type plan = Atomic | Violate_at of float

type config = {
  seed : int64;
  threads : int;
  locks : int;
  vars : int;
  events : int;
  shape : shape;
  plan : plan;
  read_fraction : float;
  ops_per_txn : int * int;
  unary_fraction : float;
  locked_fraction : float;
}

let default =
  {
    seed = 0xA5A5L;
    threads = 3;
    locks = 2;
    vars = 256;
    events = 10_000;
    shape = Independent;
    plan = Atomic;
    read_fraction = 0.7;
    ops_per_txn = (3, 8);
    unary_fraction = 0.15;
    locked_fraction = 0.5;
  }

(* Variable-pool layout.  Fresh variables are single-assignment handoffs;
   never reusing them is what keeps the Anchored shape acyclic. *)
type layout = {
  inj : int;  (* 4 injection variables at [inj .. inj+3] *)
  seeds : int;  (* one per thread at [seeds + t] *)
  locals : int;  (* locals_per_thread per thread *)
  locals_per_thread : int;
  lock_shared : int;  (* shared_per_lock per lock *)
  shared_per_lock : int;
  fresh_lo : int;
  fresh_hi : int;  (* exclusive *)
}

let make_layout cfg =
  let locals_per_thread = 4 and shared_per_lock = 4 in
  let inj = 0 in
  let seeds = inj + 4 in
  let locals = seeds + cfg.threads in
  let lock_shared = locals + (cfg.threads * locals_per_thread) in
  let fresh_lo = lock_shared + (cfg.locks * shared_per_lock) in
  if cfg.vars < fresh_lo + 16 then
    invalid_arg
      (Printf.sprintf
         "Generator: vars = %d too small for %d threads / %d locks (need >= %d)"
         cfg.vars cfg.threads cfg.locks (fresh_lo + 16));
  {
    inj;
    seeds;
    locals;
    locals_per_thread;
    lock_shared;
    shared_per_lock;
    fresh_lo;
    fresh_hi = cfg.vars;
  }

type role = Main | Anchor_b | Producer | Consumer | Worker

type injection_phase =
  | Not_started
  | Wait_first of int  (* thread running the first injected script *)
  | Wait_second of int
  | Done

type st = {
  cfg : config;
  lay : layout;
  rng : Rng.t;
  b : Trace.Builder.t;
  roles : role array;
  scripts : Event.t Queue.t array;
  holder : int array;  (* lock -> holding thread, or -1 *)
  open_txn : bool array;  (* outermost block currently open *)
  busy : bool array;  (* reserved by the injection state machine *)
  seeded : bool array;  (* producer consumed its seed read *)
  ready_x : int Queue.t;  (* producer handoffs awaiting the main thread *)
  ready_y : int array;  (* ring of main-written consumer variables *)
  mutable ready_y_len : int;
  mutable ready_y_pos : int;
  mutable next_fresh : int;
  mutable injection : injection_phase;
}

let fresh_var st =
  if st.next_fresh < st.lay.fresh_hi then begin
    let v = st.next_fresh in
    st.next_fresh <- st.next_fresh + 1;
    Some v
  end
  else None

let local_var st t =
  st.lay.locals + (t * st.lay.locals_per_thread)
  + Rng.int st.rng st.lay.locals_per_thread

let shared_var_of_lock st l =
  st.lay.lock_shared + (l * st.lay.shared_per_lock)
  + Rng.int st.rng st.lay.shared_per_lock

let push_ready_y st v =
  let cap = Array.length st.ready_y in
  st.ready_y.(st.ready_y_pos) <- v;
  st.ready_y_pos <- (st.ready_y_pos + 1) mod cap;
  if st.ready_y_len < cap then st.ready_y_len <- st.ready_y_len + 1

let pick_ready_y st =
  if st.ready_y_len = 0 then None
  else begin
    let cap = Array.length st.ready_y in
    let i = Rng.int st.rng st.ready_y_len in
    (* index backwards from the write position *)
    Some st.ready_y.((st.ready_y_pos - 1 - i + (2 * cap)) mod cap)
  end

(* Emit one event, maintaining lock-holder bookkeeping and the handoff
   queues that coordinate producers, the main pipeline thread and
   consumers. *)
let emit st t (e : Event.t) =
  (match e.op with
  | Event.Acquire l -> st.holder.(Ids.Lid.to_int l) <- t
  | Event.Release l -> st.holder.(Ids.Lid.to_int l) <- -1
  | Event.Begin -> st.open_txn.(t) <- true
  | Event.End -> st.open_txn.(t) <- false
  | Event.Write x ->
    let x = Ids.Vid.to_int x in
    if x >= st.lay.fresh_lo then begin
      match st.roles.(t) with
      | Producer -> Queue.add x st.ready_x
      | Main -> push_ready_y st x
      | Anchor_b | Consumer | Worker -> ()
    end
  | Event.Read _ | Event.Fork _ | Event.Join _ -> ());
  Trace.Builder.add st.b e

(* Try to emit the head of thread t's script; false if blocked on a lock. *)
let step_script st t =
  match Queue.peek_opt st.scripts.(t) with
  | None -> false
  | Some e -> (
    match e.op with
    | Event.Acquire l
      when st.holder.(Ids.Lid.to_int l) <> -1
           && st.holder.(Ids.Lid.to_int l) <> t ->
      false
    | _ ->
      emit st t (Queue.pop st.scripts.(t));
      true)

let enqueue st t es = List.iter (fun e -> Queue.add e st.scripts.(t)) es

(* A handful of accesses to thread-local variables. *)
let local_ops st t n =
  List.init n (fun _ ->
      let v = local_var st t in
      if Rng.chance st.rng st.cfg.read_fraction then Event.read t v
      else Event.write t v)

(* One critical section on a single lock drawn from [pool], touching only
   that lock's variables: the discipline that keeps generated transactions
   conflict serializable. *)
let locked_section st t pool n =
  if Array.length pool = 0 then local_ops st t n
  else begin
    let l = Rng.pick st.rng pool in
    let ops =
      List.init (max n 1) (fun _ ->
          let v = shared_var_of_lock st l in
          if Rng.chance st.rng st.cfg.read_fraction then Event.read t v
          else Event.write t v)
    in
    (Event.acquire t l :: ops) @ [ Event.release t l ]
  end

let txn_len st =
  let lo, hi = st.cfg.ops_per_txn in
  Rng.range st.rng lo hi

(* Worker transaction for the Independent shape. *)
let plan_worker st t pool =
  if Rng.chance st.rng st.cfg.unary_fraction then
    enqueue st t (local_ops st t (1 + Rng.int st.rng 2))
  else begin
    let n = txn_len st in
    let body =
      if Rng.chance st.rng st.cfg.locked_fraction then
        locked_section st t pool n
      else local_ops st t n
    in
    enqueue st t ((Event.begin_ t :: body) @ [ Event.end_ t ])
  end

(* Producer transaction: publish one fresh handoff variable; the first
   transaction reads the seed written by anchor B so that the producer's
   program-order chain stays anchored in the graph. *)
let plan_producer st t pool =
  let n = txn_len st in
  let seed_read =
    if st.seeded.(t) then []
    else begin
      st.seeded.(t) <- true;
      [ Event.read t (st.lay.seeds + t) ]
    end
  in
  let handoff =
    match fresh_var st with
    | Some v -> [ Event.write t v ]
    | None -> []
  in
  let body =
    if Rng.chance st.rng st.cfg.locked_fraction then
      locked_section st t pool (max 1 (n - 1))
    else local_ops st t (max 1 (n - 1))
  in
  enqueue st t ((Event.begin_ t :: seed_read) @ body @ handoff @ [ Event.end_ t ])

(* Consumer transaction: read a few of the main thread's outputs. *)
let plan_consumer st t pool =
  let n = txn_len st in
  let reads =
    List.filter_map
      (fun _ -> Option.map (fun v -> Event.read t v) (pick_ready_y st))
      [ (); (); () ]
  in
  let body =
    if Rng.chance st.rng st.cfg.locked_fraction then
      locked_section st t pool (max 1 (n - List.length reads))
    else local_ops st t (max 1 (n - List.length reads))
  in
  enqueue st t ((Event.begin_ t :: reads) @ body @ [ Event.end_ t ])

(* Main pipeline step (Anchored): consume one producer handoff, publish one
   output, inside the single long-running transaction. *)
let plan_main_anchored st =
  match Queue.take_opt st.ready_x with
  | None ->
    if Rng.chance st.rng 0.3 then enqueue st 0 (local_ops st 0 1)
  | Some x ->
    let out =
      match fresh_var st with
      | Some y -> [ Event.write 0 y ]
      | None -> []
    in
    enqueue st 0 (Event.read 0 x :: out)

let plan_anchor_b st =
  if Rng.chance st.rng 0.1 then enqueue st 1 (local_ops st 1 1)

let plan_activity st t pools =
  if not st.busy.(t) then
    match st.roles.(t) with
    | Main -> if st.cfg.shape = Anchored then plan_main_anchored st
    | Anchor_b -> plan_anchor_b st
    | Producer -> plan_producer st t (fst pools)
    | Consumer -> plan_consumer st t (snd pools)
    | Worker -> plan_worker st t (fst pools)

(* Injection state machines: plant one deliberate cycle. *)

let injection_ready st =
  match st.cfg.shape with
  | Independent -> true
  | Anchored -> st.ready_y_len > 0

let start_injection st =
  match st.cfg.shape with
  | Anchored ->
    (* A consumer transaction reads one of main's outputs and writes an
       injection variable that main then reads: C -> T and T -> C. *)
    let c =
      let rec find t =
        if t >= st.cfg.threads then 2 (* degenerate configs *)
        else if st.roles.(t) = Consumer then t
        else find (t + 1)
      in
      find 2
    in
    let y = Option.get (pick_ready_y st) in
    st.busy.(c) <- true;
    enqueue st c
      [
        Event.begin_ c;
        Event.read c y;
        Event.write c st.lay.inj;
        Event.end_ c;
      ];
    st.injection <- Wait_first c
  | Independent ->
    (* The rho2 pattern across the first two workers. *)
    let a = 1 and b = if st.cfg.threads > 2 then 2 else 0 in
    st.busy.(a) <- true;
    st.busy.(b) <- true;
    enqueue st a [ Event.begin_ a; Event.write a st.lay.inj ];
    st.injection <- Wait_first a

let advance_injection st =
  match st.injection with
  | Not_started | Done -> ()
  | Wait_first t when Queue.is_empty st.scripts.(t) -> (
    match st.cfg.shape with
    | Anchored ->
      st.busy.(t) <- false;
      (* main reads the injection variable inside its long transaction *)
      enqueue st 0 [ Event.read 0 st.lay.inj ];
      st.injection <- Wait_second 0
    | Independent ->
      let b = if st.cfg.threads > 2 then 2 else 0 in
      enqueue st b
        [
          Event.begin_ b;
          Event.read b st.lay.inj;
          Event.write b (st.lay.inj + 1);
          Event.end_ b;
        ];
      st.injection <- Wait_second b)
  | Wait_second u when Queue.is_empty st.scripts.(u) -> (
    match st.cfg.shape with
    | Anchored ->
      st.injection <- Done
    | Independent ->
      let a = 1 in
      enqueue st a [ Event.read a (st.lay.inj + 1); Event.end_ a ];
      st.busy.(a) <- false;
      st.busy.(u) <- false;
      st.injection <- Done)
  | Wait_first _ | Wait_second _ -> ()

let assign_roles cfg =
  Array.init cfg.threads (fun t ->
      match cfg.shape with
      | Independent -> if t = 0 then Main else Worker
      | Anchored ->
        if t = 0 then Main
        else if t = 1 then Anchor_b
        else if t mod 2 = 0 then Producer
        else Consumer)

let lock_pools cfg =
  let all = Array.init cfg.locks (fun l -> l) in
  match cfg.shape with
  | Independent -> (all, [||])
  | Anchored ->
    let producer = Array.of_list (List.filter (fun l -> l mod 2 = 0) (Array.to_list all)) in
    let consumer = Array.of_list (List.filter (fun l -> l mod 2 = 1) (Array.to_list all)) in
    (producer, consumer)

let validate cfg =
  if cfg.threads < 2 then invalid_arg "Generator: need at least 2 threads";
  if cfg.shape = Anchored && cfg.threads < 4 then
    invalid_arg "Generator: Anchored shape needs at least 4 threads";
  if cfg.locks < 1 then invalid_arg "Generator: need at least 1 lock";
  if cfg.events < 64 then invalid_arg "Generator: need at least 64 events";
  (match cfg.plan with
  | Violate_at f when f < 0.0 || f > 1.0 ->
    invalid_arg "Generator: violation fraction out of [0,1]"
  | _ -> ())

let generate cfg =
  validate cfg;
  let lay = make_layout cfg in
  let st =
    {
      cfg;
      lay;
      rng = Rng.create cfg.seed;
      b = Trace.Builder.create ~capacity:(cfg.events + 1024) ();
      roles = assign_roles cfg;
      scripts = Array.init cfg.threads (fun _ -> Queue.create ());
      holder = Array.make (max cfg.locks 1) (-1);
      open_txn = Array.make cfg.threads false;
      busy = Array.make cfg.threads false;
      seeded = Array.make cfg.threads false;
      ready_x = Queue.create ();
      ready_y = Array.make 64 0;
      ready_y_len = 0;
      ready_y_pos = 0;
      next_fresh = lay.fresh_lo;
      injection = Not_started;
    }
  in
  let pools = lock_pools cfg in
  (* Prologue: main forks every other thread, then the anchors open. *)
  for t = 1 to cfg.threads - 1 do
    emit st 0 (Event.fork 0 t)
  done;
  (match cfg.shape with
  | Anchored ->
    (* Anchor B opens and writes every producer's seed variable. *)
    emit st 1 (Event.begin_ 1);
    for t = 2 to cfg.threads - 1 do
      if st.roles.(t) = Producer then emit st 1 (Event.write 1 (lay.seeds + t))
    done;
    (* Main opens its long pipeline transaction. *)
    emit st 0 (Event.begin_ 0)
  | Independent -> ());
  (* Body. *)
  let trigger =
    match cfg.plan with
    | Atomic -> max_int
    | Violate_at f -> int_of_float (f *. float_of_int cfg.events)
  in
  let stall = ref 0 in
  while Trace.Builder.length st.b < cfg.events && !stall < 10_000 do
    if
      st.injection = Not_started
      && Trace.Builder.length st.b >= trigger
      && injection_ready st
    then start_injection st;
    advance_injection st;
    let t = Rng.int st.rng cfg.threads in
    if Queue.is_empty st.scripts.(t) then plan_activity st t pools;
    if step_script st t then stall := 0 else incr stall
  done;
  (* If the trace budget ran out before the planned violation fired, force
     it now so Violate_at traces are reliably violating. *)
  let rec force_injection fuel =
    if fuel > 0 && st.injection <> Done && trigger <> max_int then begin
      if st.injection = Not_started && injection_ready st then
        start_injection st;
      advance_injection st;
      let progressed = ref false in
      for t = 0 to cfg.threads - 1 do
        if step_script st t then progressed := true
      done;
      ignore !progressed;
      force_injection (fuel - 1)
    end
  in
  force_injection 100_000;
  (* Drain all scripts (closing every planned transaction and section). *)
  let rec drain fuel =
    if fuel <= 0 then
      failwith "Generator: drain stalled (deadlocked scripts?)";
    let pending = ref false in
    for t = 0 to cfg.threads - 1 do
      if not (Queue.is_empty st.scripts.(t)) then begin
        pending := true;
        ignore (step_script st t)
      end
    done;
    if !pending then drain (fuel - 1)
  in
  drain (10 * cfg.events);
  (* Epilogue: close the anchors, then join every thread. *)
  (match cfg.shape with
  | Anchored ->
    emit st 1 (Event.end_ 1);
    emit st 0 (Event.end_ 0)
  | Independent -> ());
  for t = 0 to cfg.threads - 1 do
    if st.open_txn.(t) then emit st t (Event.end_ t)
  done;
  for t = 1 to cfg.threads - 1 do
    emit st 0 (Event.join 0 t)
  done;
  Trace.Builder.build st.b

let scaling ?(config = default) sizes =
  List.map (fun n -> (n, generate { config with events = n })) sizes
