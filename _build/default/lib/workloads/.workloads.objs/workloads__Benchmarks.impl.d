lib/workloads/benchmarks.ml: Generator List Profile
