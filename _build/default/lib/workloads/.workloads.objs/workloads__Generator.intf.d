lib/workloads/generator.mli: Traces
