lib/workloads/scenarios.ml: Event Trace Traces
