lib/workloads/benchmarks.mli: Profile
