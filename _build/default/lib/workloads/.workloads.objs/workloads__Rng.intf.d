lib/workloads/rng.mli:
