lib/workloads/scenarios.mli: Trace Traces
