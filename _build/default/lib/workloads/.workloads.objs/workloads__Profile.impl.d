lib/workloads/profile.ml: Format Generator
