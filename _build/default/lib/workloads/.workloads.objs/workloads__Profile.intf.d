lib/workloads/profile.mli: Format Generator Traces
