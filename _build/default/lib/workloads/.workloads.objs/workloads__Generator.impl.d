lib/workloads/generator.ml: Array Event Ids List Option Printf Queue Rng Trace Traces
