(** Benchmark profiles: one per row of the paper's Tables 1 and 2.

    A profile couples a generator configuration (scaled to laptop-size
    traces) with the numbers the paper reports for the original benchmark,
    so the harness can print paper-vs-measured comparisons. *)

type paper_row = {
  events : string;  (** as printed in the paper, e.g. ["2.4B"] *)
  threads : int;
  locks : int;
  variables : string;
  transactions : string;
  atomic : bool;  (** ['✓'] rows *)
  velodrome : string;  (** seconds, or ["TO"] *)
  aerodrome : string;
  speedup : string;
}

type t = {
  name : string;
  description : string;
  table : int;  (** 1 or 2 *)
  config : Generator.config;
  paper : paper_row;
}

val scaled : t -> float -> Generator.config
(** [scaled p s] multiplies the profile's target event count by [s]
    (minimum 64 events). *)

val generate : ?scale:float -> t -> Traces.Trace.t
(** Generate the profile's trace (default scale 1.0). *)

val expected_violating : t -> bool
(** Whether the generated trace is expected to contain a violation
    (i.e. the plan is [Violate_at _]). *)

val pp : Format.formatter -> t -> unit
