(** The benchmark suite: scaled stand-ins for every row of the paper's
    Table 1 (DoubleChecker atomicity specifications) and Table 2 (naïve
    specifications).  See DESIGN.md for the substitution rationale and
    EXPERIMENTS.md for paper-vs-measured results. *)

val table1 : Profile.t list
(** avrora, elevator, hedc, luindex, lusearch, moldyn, montecarlo, philo,
    pmd, raytracer, sor, sunflow, tsp, xalan. *)

val table2 : Profile.t list
(** batik, crypt, fop, lufact, series, sparsematmult, tomcat. *)

val all : Profile.t list

val find : string -> Profile.t option
(** Look up a profile by benchmark name. *)
