type paper_row = {
  events : string;
  threads : int;
  locks : int;
  variables : string;
  transactions : string;
  atomic : bool;
  velodrome : string;
  aerodrome : string;
  speedup : string;
}

type t = {
  name : string;
  description : string;
  table : int;
  config : Generator.config;
  paper : paper_row;
}

let scaled p s =
  let events = max 64 (int_of_float (float_of_int p.config.events *. s)) in
  { p.config with events }

let generate ?(scale = 1.0) p = Generator.generate (scaled p scale)

let expected_violating p =
  match p.config.plan with
  | Generator.Atomic -> false
  | Generator.Violate_at _ -> true

let pp ppf p =
  Format.fprintf ppf "%s (table %d): %s — %d threads, %d locks, %d vars, %d events"
    p.name p.table p.description p.config.threads p.config.locks p.config.vars
    p.config.events
