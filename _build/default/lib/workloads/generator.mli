(** Synthetic concurrent-program trace generator.

    This module stands in for the paper's trace-collection pipeline
    (DaCaPo / Java Grande programs instrumented by RoadRunner): it
    simulates a multi-threaded program and emits the well-formed event
    trace the real pipeline would have logged.  Per-benchmark profiles
    choose the parameters so that the generated traces exercise the same
    algorithmic regimes as the paper's logs (see DESIGN.md §2).

    {2 Shapes}

    - {!shape.Independent}: worker threads run short, disjoint, properly
      lock-disciplined transactions.  Completed transactions have no
      incoming edges, so Velodrome's garbage collection keeps the
      transaction graph tiny — the regime of Table 2 and of the Table 1
      rows where Velodrome is competitive.
    - {!shape.Anchored}: two long-running anchor transactions pin the
      transaction graph.  Anchor B seeds a chain variable that {e producer}
      threads read-modify-write under a lock; anchor A publishes a
      read-mostly variable that {e consumer} threads read, and periodically
      polls the chain variable.  Consumers hang off A, producers chain
      back to B, so garbage collection can reclaim nothing and every poll
      forces a graph traversal — the regime where Velodrome degrades to
      quadratic/cubic behaviour and AeroDrome's linear pass dominates
      (avrora, lusearch, sunflow, elevator, ...).

    {2 Safety discipline}

    Traces with [plan = Atomic] are conflict serializable by construction:
    every shared variable is owned by exactly one lock, a transaction
    accesses shared variables of at most one lock inside a single critical
    section, chain updates are read-modify-writes under the chain lock,
    and the anchor wiring is acyclic by design (producers ≺ A ≺ consumers,
    B ≺ producers).  [Violate_at f] additionally injects one deliberate
    cross-transaction cycle once the emitted-event count passes fraction
    [f] of [events]. *)

type shape = Independent | Anchored

type plan =
  | Atomic  (** serializable by construction *)
  | Violate_at of float
      (** inject the first violation at this fraction of the trace *)

type config = {
  seed : int64;
  threads : int;  (** total threads, main included; at least 2 *)
  locks : int;  (** lock pool; at least 2 *)
  vars : int;  (** variable pool; at least [threads + locks + 8] *)
  events : int;  (** target trace length (approximate) *)
  shape : shape;
  plan : plan;
  read_fraction : float;  (** reads among generated accesses (default .7) *)
  ops_per_txn : int * int;  (** accesses per transaction, inclusive range *)
  unary_fraction : float;
      (** fraction of worker activities that are unary accesses instead of
          transactions *)
  locked_fraction : float;
      (** fraction of transactions that open a critical section on shared
          data (the rest touch thread-local variables only) *)
}

val default : config
(** Two worker threads, small pools, 10_000 events, [Independent],
    [Atomic]. *)

val generate : config -> Traces.Trace.t
(** Deterministic in [config] (byte-identical for equal configs).  The
    result is well-formed: {!Traces.Wellformed.check} returns no errors,
    all forks/joins are placed correctly and all locks are released; all
    transactions are completed. *)

val scaling : ?config:config -> int list -> (int * Traces.Trace.t) list
(** [scaling sizes] instantiates the same workload at several target
    lengths (same seed), for the linear-vs-superlinear scaling bench. *)
