(** Hand-written traces: the paper's running examples and regression
    scenarios discovered while reproducing the algorithms.

    Thread, lock and variable numbering follows the figures: thread [t1] of
    a figure is id 0, variable [x] is id 0, [y] is 1, [z] is 2. *)

open Traces

val rho1 : Trace.t
(** Figure 1: three transactions, [T3 ⋖ T1 ⋖ T2]; conflict serializable. *)

val rho2 : Trace.t
(** Figure 2: two transactions with a CHB path that returns to the first
    transaction; violation detected at event 6 ([⟨t1, r(y)⟩]). *)

val rho3 : Trace.t
(** Figure 3: a violation with no CHB path that starts and ends in the
    same transaction; Algorithm 1 detects it at the end event e7. *)

val rho4 : Trace.t
(** Figure 4: a violation established through events of a transaction that
    completed earlier ([T2]); detected at event 11 ([⟨t1, r(z)⟩]). *)

val lock_violation : Trace.t
(** Two transactions interleaving critical sections on the same lock so
    that each is ordered before the other; a violation witnessed through
    rel/acq conflict edges rather than variable accesses. *)

val lock_serial : Trace.t
(** The same two critical sections without the interleaving; conflict
    serializable. *)

val fork_join_serial : Trace.t
(** A parent forks two children, each runs a transaction on its own data,
    parent joins; serializable. *)

val fork_join_violation : Trace.t
(** A transaction that forks a child and joins it again within the same
    atomic block: the child must run strictly inside the block, so the
    block cannot execute serially — a cycle through fork and join edges,
    detected at the join. *)

val nested_ignored : Trace.t
(** ρ2's violation wrapped in extra inner begin/end pairs: nested blocks
    must be folded into the outermost transaction, leaving the verdict
    unchanged. *)

val unary_no_report : Trace.t
(** A cycle-free trace whose only conflicts involve unary events; no
    checker may report (unary transactions never declare violations). *)

val unary_flush_false_positive : Trace.t
(** Regression for the Algorithm 3 unary-read deviation: a unary read of
    [x], then the same thread's later transaction observes another
    transaction's write, then that other transaction writes [x].  The
    printed pseudocode flushes the unary read with the inflated current
    clock and reports a spurious violation; the trace is serializable. *)

val gc_clock_equality_miss : Trace.t
(** Regression for the Algorithm 3 garbage-collection deviation: a thread
    interacts twice with the same long-running transaction.  Its second
    transaction has an incoming edge (it reads the long transaction's
    write) but its vector clock does not change — it already absorbed the
    writer's knowledge during the first interaction — so the printed
    [hasIncomingEdge] test garbage-collects it and the cycle closed by the
    long transaction's final read is missed.  Violating. *)

val transitive_update_miss : Trace.t
(** Regression for the Algorithm 3 update-set deviation: a four-
    transaction cycle [V → U → P → W → V] in which [W_x]'s coverage of
    [U]'s begin is established only by [P]'s end event, after [W]'s write.
    The printed pseudocode never refreshes [W_x] at [U]'s end and misses
    the violation; Algorithm 1 reports it at the final read. *)

val unrepeatable_read : Trace.t
(** A single atomic block reads [x] twice with an unlocked unary write by
    another thread in between — the minimal one-transaction violation
    (cycle through a unary transaction). *)

val three_txn_lock_cycle : Trace.t
(** Three transactions on three threads, each ordered before the next by a
    different mechanism (variable conflict, lock handoff, variable
    conflict), with the last ordered before the first: a 3-cycle. *)

val racy_but_serializable : Trace.t
(** Heavy unsynchronized sharing — many data races — but every access is a
    unary transaction except one block that no conflict returns to:
    atomicity and race-freedom are different properties. *)

val serial_chain : Trace.t
(** Sixteen transactions that pass a token strictly one to the next;
    serializable, and the regime where Velodrome's GC collapses the
    graph. *)

val all : (string * Trace.t * [ `Serializable | `Violating ]) list
(** Every scenario with its expected verdict (for complete traces, where
    all checkers agree on the verdict). *)
