open Traces
open Event

(* Figure numbering of threads/variables: t1 = 0, x = 0, y = 1, z = 2. *)

let rho1 =
  Trace.of_events
    [
      begin_ 0;
      write 0 0;
      begin_ 1;
      read 1 0;
      end_ 1;
      begin_ 2;
      write 2 2;
      end_ 2;
      read 0 2;
      end_ 0;
    ]

let rho2 =
  Trace.of_events
    [
      begin_ 0;
      begin_ 1;
      write 0 0;
      read 1 0;
      write 1 1;
      read 0 1;
      end_ 0;
      end_ 1;
    ]

let rho3 =
  Trace.of_events
    [
      begin_ 0;
      begin_ 1;
      write 0 0;
      write 1 1;
      read 0 1;
      read 1 0;
      end_ 0;
      end_ 1;
    ]

let rho4 =
  Trace.of_events
    [
      begin_ 0;
      write 0 0;
      begin_ 1;
      write 1 1;
      read 1 0;
      end_ 1;
      begin_ 2;
      read 2 1;
      write 2 2;
      end_ 2;
      read 0 2;
      end_ 0;
    ]

let lock_violation =
  Trace.of_events
    [
      begin_ 0;
      acquire 0 0;
      release 0 0;
      begin_ 1;
      acquire 1 0;
      release 1 0;
      end_ 1;
      acquire 0 0;
      release 0 0;
      end_ 0;
    ]

let lock_serial =
  Trace.of_events
    [
      begin_ 0;
      acquire 0 0;
      release 0 0;
      end_ 0;
      begin_ 1;
      acquire 1 0;
      release 1 0;
      end_ 1;
    ]

let fork_join_serial =
  Trace.of_events
    [
      fork 0 1;
      fork 0 2;
      begin_ 1;
      write 1 0;
      end_ 1;
      begin_ 2;
      write 2 1;
      end_ 2;
      join 0 1;
      join 0 2;
    ]

let fork_join_violation =
  Trace.of_events
    [
      begin_ 0;
      write 0 0;
      fork 0 1;
      begin_ 1;
      read 1 0;
      write 1 1;
      end_ 1;
      join 0 1;
      read 0 1;
      end_ 0;
    ]

let nested_ignored =
  Trace.of_events
    [
      begin_ 0;
      begin_ 0;
      begin_ 1;
      write 0 0;
      end_ 0;
      read 1 0;
      write 1 1;
      read 0 1;
      end_ 0;
      end_ 1;
    ]

let unary_no_report =
  Trace.of_events [ write 0 0; read 1 0; write 1 0; read 0 0 ]

let unary_flush_false_positive =
  Trace.of_events
    [
      read 1 0;  (* unary r(x) *)
      begin_ 0;
      write 0 1;  (* w(y) *)
      begin_ 1;
      read 1 1;  (* r(y): t1's transaction learns t0's begin *)
      write 0 0;  (* w(x): a lazy flush of the unary read would use t1's
                     inflated current clock and report spuriously *)
      end_ 0;
      end_ 1;
    ]

(* Thread 0 runs one long transaction; thread 1 interacts with it twice.
   Variables: a = 0, b = 1, v = 2. *)
let gc_clock_equality_miss =
  Trace.of_events
    [
      begin_ 0;
      write 0 0;  (* w(a) *)
      write 0 1;  (* w(b) *)
      begin_ 1;
      read 1 0;  (* r(a): absorbs thread 0's clock *)
      end_ 1;
      begin_ 1;
      read 1 1;  (* r(b): an incoming edge, but the clock is unchanged *)
      write 1 2;  (* w(v) *)
      end_ 1;  (* printed Algorithm 3 garbage-collects this transaction *)
      read 0 2;  (* r(v): closes the cycle T0 -> T1' -> T0 *)
      end_ 0;
    ]

(* Threads: v = 0, u = 1, p = 2, w = 3; variables: p = 0, x = 1, z = 2,
   q = 3.  Cycle V -> U -> P -> W -> V; the ordering W_x ⊒ C⊲_u is
   established only when P ends (event 10), after W's write of x. *)
let transitive_update_miss =
  Trace.of_events
    [
      begin_ 2;
      begin_ 3;
      write 2 0;
      read 3 0;
      write 3 1;
      end_ 3;
      begin_ 1;
      write 1 2;
      read 2 2;
      end_ 2;
      begin_ 0;
      write 0 3;
      read 1 3;
      end_ 1;
      read 0 1;
      end_ 0;
    ]

(* Unrepeatable read: the block's two reads of x straddle a unary write. *)
let unrepeatable_read =
  Trace.of_events
    [ begin_ 0; read 0 0; write 1 0; read 0 0; end_ 0 ]

(* T0 -> T1 via x, T1 -> T2 via the lock handoff, T2 -> T0 via y. *)
let three_txn_lock_cycle =
  Trace.of_events
    [
      begin_ 0;
      write 0 0;  (* w(x) *)
      begin_ 1;
      read 1 0;  (* r(x): T0 -> T1 *)
      acquire 1 0;
      release 1 0;
      end_ 1;
      begin_ 2;
      acquire 2 0;  (* T1 -> T2 *)
      release 2 0;
      write 2 1;  (* w(y) *)
      end_ 2;
      read 0 1;  (* r(y): T2 -> T0, closing the cycle *)
      end_ 0;
    ]

(* Unary races everywhere; the single block writes a private variable and
   reads shared data only before anyone overwrites it. *)
let racy_but_serializable =
  Trace.of_events
    [
      write 0 0;
      write 1 0;  (* race on x *)
      read 2 0;
      begin_ 2;
      read 2 0;
      write 2 2;  (* private to the block *)
      end_ 2;
      write 0 0;  (* after the block: edges only out of it *)
      read 1 2;
      write 1 1;
      read 0 1;
    ]

(* A strict token-passing chain of 16 blocks across 4 threads. *)
let serial_chain =
  let buf = Trace.Builder.create () in
  let token = 0 in
  for i = 0 to 15 do
    let t = i mod 4 in
    Trace.Builder.begin_ buf t;
    Trace.Builder.read buf t ~var:token;
    Trace.Builder.write buf t ~var:token;
    Trace.Builder.write buf t ~var:(1 + i);  (* private result *)
    Trace.Builder.end_ buf t
  done;
  Trace.Builder.build buf

let all =
  [
    ("rho1", rho1, `Serializable);
    ("rho2", rho2, `Violating);
    ("rho3", rho3, `Violating);
    ("rho4", rho4, `Violating);
    ("lock_violation", lock_violation, `Violating);
    ("lock_serial", lock_serial, `Serializable);
    ("fork_join_serial", fork_join_serial, `Serializable);
    ("fork_join_violation", fork_join_violation, `Violating);
    ("nested_ignored", nested_ignored, `Violating);
    ("unary_no_report", unary_no_report, `Serializable);
    ("unary_flush_false_positive", unary_flush_false_positive, `Serializable);
    ("unrepeatable_read", unrepeatable_read, `Violating);
    ("three_txn_lock_cycle", three_txn_lock_cycle, `Violating);
    ("racy_but_serializable", racy_but_serializable, `Serializable);
    ("serial_chain", serial_chain, `Serializable);
    ("gc_clock_equality_miss", gc_clock_equality_miss, `Violating);
    ("transitive_update_miss", transitive_update_miss, `Violating);
  ]
