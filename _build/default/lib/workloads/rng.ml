type t = { mutable state : int64 }

let create seed = { state = seed }
let copy g = { state = g.state }

(* splitmix64 (Steele, Lea, Flood 2014). *)
let next64 g =
  let open Int64 in
  g.state <- add g.state 0x9E3779B97F4A7C15L;
  let z = g.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Masked rejection sampling for unbiased results. *)
  let rec mask m = if m >= n - 1 then m else mask ((m lsl 1) lor 1) in
  let m = mask 1 in
  let rec draw () =
    let v = Int64.to_int (next64 g) land m in
    if v < n then v else draw ()
  in
  draw ()

let float g f =
  let bits = Int64.shift_right_logical (next64 g) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. f

let bool g = Int64.logand (next64 g) 1L = 1L

let chance g p =
  if p <= 0.0 then false else if p >= 1.0 then true else float g 1.0 < p

let range g lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int g (hi - lo + 1)

let pick g a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int g (Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
