open Generator

(* Variable pools sized to the trace: enough for the layout minimum plus a
   generous fresh-handoff region (handoffs are single-assignment). *)
let vars_for ~threads ~locks ~events =
  max (4 + (5 * threads) + (4 * locks) + 32) (events / 3)

let config ~seed ~threads ~locks ~events ~shape ~plan =
  {
    default with
    seed;
    threads;
    locks;
    events;
    shape;
    plan;
    vars = vars_for ~threads ~locks ~events;
  }

let profile ~name ~description ~table ~seed ~threads ~locks ~events ~shape
    ~plan ~paper : Profile.t =
  { name; description; table; config = config ~seed ~threads ~locks ~events ~shape ~plan; paper }

let row ~events ~threads ~locks ~variables ~transactions ~atomic ~velodrome
    ~aerodrome ~speedup : Profile.paper_row =
  { events; threads; locks; variables; transactions; atomic; velodrome; aerodrome; speedup }

(* Table 1: realistic atomicity specifications (DoubleChecker).  Rows where
   the paper's transaction graph grows without bound map to the Anchored
   shape; rows where garbage collection kept the graph tiny map to
   Independent. *)
let table1 =
  [
    profile ~name:"avrora" ~table:1 ~seed:101L ~threads:7 ~locks:8
      ~events:240_000 ~shape:Anchored ~plan:(Violate_at 0.6)
      ~description:
        "event-driven simulator: long-lived pipeline transaction, late violation"
      ~paper:
        (row ~events:"2.4B" ~threads:7 ~locks:7 ~variables:"1079K"
           ~transactions:"498M" ~atomic:false ~velodrome:"TO" ~aerodrome:"1.5"
           ~speedup:"> 24000");
    profile ~name:"elevator" ~table:1 ~seed:102L ~threads:5 ~locks:50
      ~events:120_000 ~shape:Anchored ~plan:Atomic
      ~description:"discrete-event controller: atomic, graph never collapses"
      ~paper:
        (row ~events:"280K" ~threads:5 ~locks:50 ~variables:"725"
           ~transactions:"22.6K" ~atomic:true ~velodrome:"162"
           ~aerodrome:"1.7" ~speedup:"97");
    profile ~name:"hedc" ~table:1 ~seed:103L ~threads:7 ~locks:13 ~events:9_800
      ~shape:Independent ~plan:(Violate_at 0.5)
      ~description:"tiny web crawler trace: violation in a small trace"
      ~paper:
        (row ~events:"9.8K" ~threads:7 ~locks:13 ~variables:"1694"
           ~transactions:"84" ~atomic:false ~velodrome:"0.07"
           ~aerodrome:"0.06" ~speedup:"1.16");
    profile ~name:"luindex" ~table:1 ~seed:104L ~threads:3 ~locks:16
      ~events:160_000 ~shape:Independent ~plan:(Violate_at 0.9)
      ~description:"indexer: late violation but graph stays small under GC"
      ~paper:
        (row ~events:"570M" ~threads:3 ~locks:65 ~variables:"2.5M"
           ~transactions:"86M" ~atomic:false ~velodrome:"581"
           ~aerodrome:"674" ~speedup:"0.86");
    profile ~name:"lusearch" ~table:1 ~seed:105L ~threads:14 ~locks:32
      ~events:280_000 ~shape:Anchored ~plan:(Violate_at 0.7)
      ~description:"search workers feeding a long-lived dispatcher"
      ~paper:
        (row ~events:"2.0B" ~threads:14 ~locks:772 ~variables:"38M"
           ~transactions:"306M" ~atomic:false ~velodrome:"TO"
           ~aerodrome:"5.5" ~speedup:"> 6545");
    profile ~name:"moldyn" ~table:1 ~seed:106L ~threads:4 ~locks:2
      ~events:260_000 ~shape:Anchored ~plan:(Violate_at 0.7)
      ~description:"molecular dynamics: barrier-style rounds, late violation"
      ~paper:
        (row ~events:"1.7B" ~threads:4 ~locks:1 ~variables:"121K"
           ~transactions:"1.4M" ~atomic:false ~velodrome:"TO"
           ~aerodrome:"54.9" ~speedup:"> 650");
    profile ~name:"montecarlo" ~table:1 ~seed:107L ~threads:4 ~locks:2
      ~events:220_000 ~shape:Anchored ~plan:(Violate_at 0.6)
      ~description:"monte-carlo simulation: accumulator pipeline"
      ~paper:
        (row ~events:"494M" ~threads:4 ~locks:1 ~variables:"30.5M"
           ~transactions:"812K" ~atomic:false ~velodrome:"TO"
           ~aerodrome:"0.75" ~speedup:"> 48000");
    profile ~name:"philo" ~table:1 ~seed:108L ~threads:6 ~locks:1 ~events:640
      ~shape:Independent ~plan:Atomic
      ~description:"dining philosophers: tiny, atomic"
      ~paper:
        (row ~events:"613" ~threads:6 ~locks:1 ~variables:"24"
           ~transactions:"0" ~atomic:true ~velodrome:"0.02" ~aerodrome:"0.02"
           ~speedup:"1");
    profile ~name:"pmd" ~table:1 ~seed:109L ~threads:13 ~locks:32
      ~events:150_000 ~shape:Independent ~plan:(Violate_at 0.5)
      ~description:"source analyzer: GC keeps ~13 graph nodes"
      ~paper:
        (row ~events:"367M" ~threads:13 ~locks:223 ~variables:"12.9M"
           ~transactions:"81M" ~atomic:false ~velodrome:"3.1" ~aerodrome:"3.8"
           ~speedup:"0.82");
    profile ~name:"raytracer" ~table:1 ~seed:110L ~threads:4 ~locks:2
      ~events:300_000 ~shape:Anchored ~plan:Atomic
      ~description:"renderer: atomic, huge retained graph for Velodrome"
      ~paper:
        (row ~events:"2.8B" ~threads:4 ~locks:1 ~variables:"12.6M"
           ~transactions:"277M" ~atomic:true ~velodrome:"TO"
           ~aerodrome:"55m40s" ~speedup:"> 10.7");
    profile ~name:"sor" ~table:1 ~seed:111L ~threads:4 ~locks:2 ~events:160_000
      ~shape:Independent ~plan:(Violate_at 0.5)
      ~description:"successive over-relaxation: 4 graph nodes under GC"
      ~paper:
        (row ~events:"608M" ~threads:4 ~locks:2 ~variables:"1M"
           ~transactions:"637K" ~atomic:false ~velodrome:"6.9"
           ~aerodrome:"9.6" ~speedup:"0.72");
    profile ~name:"sunflow" ~table:1 ~seed:112L ~threads:16 ~locks:9
      ~events:160_000 ~shape:Anchored ~plan:(Violate_at 0.5)
      ~description:"renderer: ~9000 live graph nodes at the violation"
      ~paper:
        (row ~events:"16.8M" ~threads:16 ~locks:9 ~variables:"1.2M"
           ~transactions:"2.5M" ~atomic:false ~velodrome:"67.9"
           ~aerodrome:"0.65" ~speedup:"104.5");
    profile ~name:"tsp" ~table:1 ~seed:113L ~threads:9 ~locks:2 ~events:150_000
      ~shape:Independent ~plan:(Violate_at 0.5)
      ~description:"branch-and-bound: few transactions, big shared arrays"
      ~paper:
        (row ~events:"312M" ~threads:9 ~locks:2 ~variables:"181M"
           ~transactions:"9" ~atomic:false ~velodrome:"4.2" ~aerodrome:"5.7"
           ~speedup:"0.73");
    profile ~name:"xalan" ~table:1 ~seed:114L ~threads:13 ~locks:64
      ~events:180_000 ~shape:Independent ~plan:(Violate_at 0.5)
      ~description:"XSLT processor: 13 graph nodes under GC"
      ~paper:
        (row ~events:"1.0B" ~threads:13 ~locks:8624 ~variables:"31M"
           ~transactions:"214M" ~atomic:false ~velodrome:"1.6" ~aerodrome:"2.0"
           ~speedup:"0.8");
  ]

(* Table 2: naïve specifications (all methods atomic) — violations appear
   very early, the transaction graph never grows, and the two algorithms
   are comparable. *)
let table2 =
  [
    profile ~name:"batik" ~table:2 ~seed:201L ~threads:7 ~locks:32
      ~events:140_000 ~shape:Independent ~plan:(Violate_at 0.05)
      ~description:"SVG toolkit under a naive spec: early violation"
      ~paper:
        (row ~events:"186M" ~threads:7 ~locks:1916 ~variables:"4.9M"
           ~transactions:"15M" ~atomic:false ~velodrome:"52.7"
           ~aerodrome:"65.5" ~speedup:"0.81");
    profile ~name:"crypt" ~table:2 ~seed:202L ~threads:7 ~locks:1
      ~events:120_000 ~shape:Independent ~plan:(Violate_at 0.05)
      ~description:"IDEA encryption: early violation"
      ~paper:
        (row ~events:"126M" ~threads:7 ~locks:1 ~variables:"9M"
           ~transactions:"50" ~atomic:false ~velodrome:"92.1" ~aerodrome:"104"
           ~speedup:"0.88");
    profile ~name:"fop" ~table:2 ~seed:203L ~threads:2 ~locks:16
      ~events:100_000 ~shape:Independent ~plan:Atomic
      ~description:"print formatter: single-threaded in the paper, atomic"
      ~paper:
        (row ~events:"96M" ~threads:1 ~locks:115 ~variables:"5M"
           ~transactions:"25M" ~atomic:true ~velodrome:"88.3"
           ~aerodrome:"92.5" ~speedup:"0.95");
    profile ~name:"lufact" ~table:2 ~seed:204L ~threads:4 ~locks:1
      ~events:130_000 ~shape:Independent ~plan:(Violate_at 0.05)
      ~description:"LU factorization: early violation"
      ~paper:
        (row ~events:"135M" ~threads:4 ~locks:1 ~variables:"252K"
           ~transactions:"642M" ~atomic:false ~velodrome:"2.4" ~aerodrome:"2.9"
           ~speedup:"0.82");
    profile ~name:"series" ~table:2 ~seed:205L ~threads:4 ~locks:1
      ~events:90_000 ~shape:Independent ~plan:(Violate_at 0.02)
      ~description:"Fourier series: violation almost immediately"
      ~paper:
        (row ~events:"40M" ~threads:4 ~locks:1 ~variables:"20K"
           ~transactions:"20M" ~atomic:false ~velodrome:"61.0"
           ~aerodrome:"15.3" ~speedup:"3.98");
    profile ~name:"sparsematmult" ~table:2 ~seed:206L ~threads:4 ~locks:1
      ~events:150_000 ~shape:Independent ~plan:(Violate_at 0.1)
      ~description:"sparse matrix multiply: early violation"
      ~paper:
        (row ~events:"726M" ~threads:4 ~locks:1 ~variables:"1.6M"
           ~transactions:"25" ~atomic:false ~velodrome:"1210"
           ~aerodrome:"1197" ~speedup:"1.01");
    profile ~name:"tomcat" ~table:2 ~seed:207L ~threads:4 ~locks:1
      ~events:150_000 ~shape:Independent ~plan:(Violate_at 0.08)
      ~description:"servlet container: early violation, graph of ~21 nodes"
      ~paper:
        (row ~events:"726M" ~threads:4 ~locks:1 ~variables:"1.6M"
           ~transactions:"25" ~atomic:false ~velodrome:"3.4" ~aerodrome:"4.5"
           ~speedup:"0.75");
  ]

let all = table1 @ table2

let find name =
  List.find_opt (fun (p : Profile.t) -> p.name = name) all
