(** Deterministic pseudo-random numbers (splitmix64).

    The workload generator must produce byte-identical traces for a given
    seed across runs and platforms, so it uses its own tiny PRNG instead of
    [Stdlib.Random].  Splitmix64 passes BigCrush and is the standard
    seeding generator; it is more than adequate for workload shaping. *)

type t

val create : int64 -> t
(** Generator seeded with the given value. *)

val copy : t -> t

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g n] is uniform in [0 .. n-1].  @raise Invalid_argument if
    [n <= 0]. *)

val float : t -> float -> float
(** [float g f] is uniform in [0 .. f). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance g p] is true with probability [p] (clamped to [0..1]). *)

val range : t -> int -> int -> int
(** [range g lo hi] is uniform in [lo .. hi] inclusive. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
