open Ids

type op =
  | Read of Vid.t
  | Write of Vid.t
  | Acquire of Lid.t
  | Release of Lid.t
  | Fork of Tid.t
  | Join of Tid.t
  | Begin
  | End

type t = { thread : Tid.t; op : op }

let make thread op = { thread; op }
let thread e = e.thread
let op e = e.op

let read t x = { thread = Tid.of_int t; op = Read (Vid.of_int x) }
let write t x = { thread = Tid.of_int t; op = Write (Vid.of_int x) }
let acquire t l = { thread = Tid.of_int t; op = Acquire (Lid.of_int l) }
let release t l = { thread = Tid.of_int t; op = Release (Lid.of_int l) }
let fork t u = { thread = Tid.of_int t; op = Fork (Tid.of_int u) }
let join t u = { thread = Tid.of_int t; op = Join (Tid.of_int u) }
let begin_ t = { thread = Tid.of_int t; op = Begin }
let end_ t = { thread = Tid.of_int t; op = End }

let equal e1 e2 = e1 = e2
let compare = Stdlib.compare

let conflicts e e' =
  Tid.equal e.thread e'.thread
  ||
  match (e.op, e'.op) with
  | Fork u, _ -> Tid.equal u e'.thread
  | _, Join u -> Tid.equal u e.thread
  | Write x, Write y | Write x, Read y | Read x, Write y -> Vid.equal x y
  | Release l, Acquire m -> Lid.equal l m
  | _ -> false

let is_access e = match e.op with Read _ | Write _ -> true | _ -> false

let is_sync e =
  match e.op with Acquire _ | Release _ | Fork _ | Join _ -> true | _ -> false

let is_marker e = match e.op with Begin | End -> true | _ -> false

let pp_op ppf = function
  | Read x -> Format.fprintf ppf "r(%a)" Vid.pp x
  | Write x -> Format.fprintf ppf "w(%a)" Vid.pp x
  | Acquire l -> Format.fprintf ppf "acq(%a)" Lid.pp l
  | Release l -> Format.fprintf ppf "rel(%a)" Lid.pp l
  | Fork u -> Format.fprintf ppf "fork(%a)" Tid.pp u
  | Join u -> Format.fprintf ppf "join(%a)" Tid.pp u
  | Begin -> Format.pp_print_string ppf "begin"
  | End -> Format.pp_print_string ppf "end"

let pp ppf e = Format.fprintf ppf "⟨%a,%a⟩" Tid.pp e.thread pp_op e.op
let to_string e = Format.asprintf "%a" pp e
