open Ids

type kind = Block | Unary

type t = {
  id : int;
  thread : Tid.t;
  kind : kind;
  first : int;
  last : int;
  events : int list;
  completed : bool;
}

type open_block = {
  ob_id : int;
  ob_first : int;
  mutable ob_last : int;
  mutable ob_events : int list;  (* reversed *)
  mutable ob_depth : int;
}

let of_trace tr =
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let open_blocks : (int, open_block) Hashtbl.t = Hashtbl.create 16 in
  let finished = ref [] in
  let close ~completed t (ob : open_block) =
    Hashtbl.remove open_blocks t;
    finished :=
      {
        id = ob.ob_id;
        thread = Tid.of_int t;
        kind = Block;
        first = ob.ob_first;
        last = ob.ob_last;
        events = List.rev ob.ob_events;
        completed;
      }
      :: !finished
  in
  Trace.iteri
    (fun i (e : Event.t) ->
      let t = Tid.to_int e.thread in
      match (Hashtbl.find_opt open_blocks t, e.op) with
      | None, Event.Begin ->
        Hashtbl.add open_blocks t
          { ob_id = fresh (); ob_first = i; ob_last = i; ob_events = [ i ]; ob_depth = 1 }
      | None, _ ->
        finished :=
          {
            id = fresh ();
            thread = e.thread;
            kind = Unary;
            first = i;
            last = i;
            events = [ i ];
            completed = true;
          }
          :: !finished
      | Some ob, Event.Begin ->
        ob.ob_depth <- ob.ob_depth + 1;
        ob.ob_last <- i;
        ob.ob_events <- i :: ob.ob_events
      | Some ob, Event.End ->
        ob.ob_last <- i;
        ob.ob_events <- i :: ob.ob_events;
        ob.ob_depth <- ob.ob_depth - 1;
        if ob.ob_depth = 0 then close ~completed:true t ob
      | Some ob, _ ->
        ob.ob_last <- i;
        ob.ob_events <- i :: ob.ob_events)
    tr;
  Hashtbl.iter (fun t ob -> close ~completed:false t ob) open_blocks;
  List.sort (fun a b -> Int.compare a.id b.id) !finished

let count_blocks tr =
  let depth = Hashtbl.create 16 in
  let count = ref 0 in
  Trace.iter
    (fun (e : Event.t) ->
      let t = Tid.to_int e.thread in
      let d = Option.value ~default:0 (Hashtbl.find_opt depth t) in
      match e.op with
      | Event.Begin ->
        if d = 0 then incr count;
        Hashtbl.replace depth t (d + 1)
      | Event.End -> Hashtbl.replace depth t (max 0 (d - 1))
      | _ -> ())
    tr;
  !count

let owner tr =
  let owners = Array.make (Trace.length tr) (-1) in
  List.iter
    (fun txn -> List.iter (fun i -> owners.(i) <- txn.id) txn.events)
    (of_trace tr);
  owners

let pp ppf txn =
  Format.fprintf ppf "@[<h>txn#%d %a %s [%d..%d] %s@]" txn.id Tid.pp txn.thread
    (match txn.kind with Block -> "block" | Unary -> "unary")
    (txn.first + 1) (txn.last + 1)
    (if txn.completed then "completed" else "active")
