open Ids

type error =
  | Release_unheld of { index : int; thread : Tid.t; lock : Lid.t }
  | Acquire_held_elsewhere of {
      index : int;
      thread : Tid.t;
      lock : Lid.t;
      holder : Tid.t;
    }
  | Unreleased_lock of { thread : Tid.t; lock : Lid.t }
  | End_without_begin of { index : int; thread : Tid.t }
  | Fork_self of { index : int; thread : Tid.t }
  | Join_self of { index : int; thread : Tid.t }
  | Fork_after_child_event of { index : int; thread : Tid.t; child : Tid.t }
  | Double_fork of { index : int; thread : Tid.t; child : Tid.t }
  | Join_before_child_end of { index : int; thread : Tid.t; child : Tid.t }

let check ?(allow_open_blocks = true) ?(allow_held_locks = false) tr =
  ignore allow_open_blocks;
  let n = Trace.length tr in
  (* Pre-scan: last event index of each thread, for the join-position rule. *)
  let last_event = Array.make (max 1 (Trace.threads tr)) (-1) in
  Trace.iteri (fun i (e : Event.t) -> last_event.(Tid.to_int e.thread) <- i) tr;
  let errors = ref [] in
  let report e = errors := e :: !errors in
  (* holder.(l) = thread currently holding lock l, with re-entrancy depth. *)
  let holder = Array.make (max 1 (Trace.locks tr)) None in
  let block_depth = Array.make (max 1 (Trace.threads tr)) 0 in
  let seen = Array.make (max 1 (Trace.threads tr)) false in
  let forked = Array.make (max 1 (Trace.threads tr)) false in
  for i = 0 to n - 1 do
    let e = Trace.get tr i in
    let t = Tid.to_int e.thread in
    seen.(t) <- true;
    match e.op with
    | Event.Acquire l -> (
      let li = Lid.to_int l in
      match holder.(li) with
      | None -> holder.(li) <- Some (t, 1)
      | Some (h, d) when h = t -> holder.(li) <- Some (h, d + 1)
      | Some (h, _) ->
        report
          (Acquire_held_elsewhere
             { index = i; thread = e.thread; lock = l; holder = Tid.of_int h }))
    | Event.Release l -> (
      let li = Lid.to_int l in
      match holder.(li) with
      | Some (h, d) when h = t ->
        holder.(li) <- (if d = 1 then None else Some (h, d - 1))
      | Some _ | None ->
        report (Release_unheld { index = i; thread = e.thread; lock = l }))
    | Event.Begin -> block_depth.(t) <- block_depth.(t) + 1
    | Event.End ->
      if block_depth.(t) = 0 then
        report (End_without_begin { index = i; thread = e.thread })
      else block_depth.(t) <- block_depth.(t) - 1
    | Event.Fork u ->
      let ui = Tid.to_int u in
      if ui = t then report (Fork_self { index = i; thread = e.thread })
      else begin
        if seen.(ui) then
          report (Fork_after_child_event { index = i; thread = e.thread; child = u });
        if forked.(ui) then
          report (Double_fork { index = i; thread = e.thread; child = u });
        forked.(ui) <- true
      end
    | Event.Join u ->
      let ui = Tid.to_int u in
      if ui = t then report (Join_self { index = i; thread = e.thread })
      else if last_event.(ui) > i then
        report (Join_before_child_end { index = i; thread = e.thread; child = u })
    | Event.Read _ | Event.Write _ -> ()
  done;
  if not allow_held_locks then
    Array.iteri
      (fun li h ->
        match h with
        | Some (t, _) ->
          report
            (Unreleased_lock { thread = Tid.of_int t; lock = Lid.of_int li })
        | None -> ())
      holder;
  List.rev !errors

let is_wellformed ?allow_open_blocks ?allow_held_locks tr =
  check ?allow_open_blocks ?allow_held_locks tr = []

let pp_error ppf = function
  | Release_unheld { index; thread; lock } ->
    Format.fprintf ppf "event %d: %a releases %a which it does not hold"
      (index + 1) Tid.pp thread Lid.pp lock
  | Acquire_held_elsewhere { index; thread; lock; holder } ->
    Format.fprintf ppf "event %d: %a acquires %a held by %a" (index + 1) Tid.pp
      thread Lid.pp lock Tid.pp holder
  | Unreleased_lock { thread; lock } ->
    Format.fprintf ppf "trace end: %a still holds %a" Tid.pp thread Lid.pp lock
  | End_without_begin { index; thread } ->
    Format.fprintf ppf "event %d: %a ends a block it never began" (index + 1)
      Tid.pp thread
  | Fork_self { index; thread } ->
    Format.fprintf ppf "event %d: %a forks itself" (index + 1) Tid.pp thread
  | Join_self { index; thread } ->
    Format.fprintf ppf "event %d: %a joins itself" (index + 1) Tid.pp thread
  | Fork_after_child_event { index; thread; child } ->
    Format.fprintf ppf "event %d: %a forks %a after the child already ran"
      (index + 1) Tid.pp thread Tid.pp child
  | Double_fork { index; thread; child } ->
    Format.fprintf ppf "event %d: %a forks %a a second time" (index + 1) Tid.pp
      thread Tid.pp child
  | Join_before_child_end { index; thread; child } ->
    Format.fprintf ppf "event %d: %a joins %a which still runs afterwards"
      (index + 1) Tid.pp thread Tid.pp child

let error_to_string e = Format.asprintf "%a" pp_error e
