(** Trace transformations.

    The paper's pipeline logs {e all} method entries/exits and then applies
    an atomicity specification that keeps only the blocks the developer
    marked atomic (the artifact's [atom_spec.py] step); everything else
    becomes plain unary events.  {!apply_spec} is that step for our traces.
    The other transformations are utilities for slicing and normalizing
    traces in analyses and tests. *)

open Ids

val apply_spec : keep:(Transactions.t -> bool) -> Trace.t -> Trace.t
(** Remove the [Begin]/[End] markers of every outermost transaction for
    which [keep] is false (its body events become unary); transactions
    kept keep only their outermost markers (nested markers are dropped, as
    the checkers ignore them anyway).  Unary transactions are unaffected
    by [keep]. *)

val strip_markers : Trace.t -> Trace.t
(** Remove every [Begin]/[End]: the empty atomicity specification. *)

val only_threads : (Tid.t -> bool) -> Trace.t -> Trace.t
(** Keep only the events of selected threads (forks/joins of dropped
    threads are removed too, including those performed {e by} kept
    threads on dropped ones).  Note: the projection does not preserve
    cross-thread ordering through dropped threads, so verdicts may
    change; domain sizes are re-inferred. *)

val compact : Trace.t -> Trace.t
(** Renumber thread, lock and variable ids densely in order of first
    appearance (fork/join targets count as appearances).  The result uses
    exactly [0..n-1] for each namespace; symbolic names, when present, are
    permuted accordingly. *)

val limit_window : int -> int -> Trace.t -> Trace.t
(** [limit_window start len tr] keeps events with indices in
    [start .. start+len-1] and then repairs well-formedness: unmatched
    [End]s and releases at the front are dropped, unmatched [Begin]s and
    acquires at the back are closed, forks/joins of threads not seen in
    the window are dropped.  Useful to re-check a region around a reported
    violation. *)
