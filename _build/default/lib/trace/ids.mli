(** Dense integer identifiers for threads, locks and memory locations.

    Every checker in this repository indexes its per-thread, per-lock and
    per-variable state by dense integers [0 .. n-1], matching the paper's
    assumption of a bounded number of threads, locks and variables.  The
    three id namespaces are kept distinct at the type level so a lock id
    cannot be passed where a thread id is expected. *)

module type ID = sig
  type t = private int

  val of_int : int -> t
  (** @raise Invalid_argument on negative input. *)

  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int

  val pp : Format.formatter -> t -> unit
  (** Prints with the namespace prefix, e.g. [T3], [L0], [V17]. *)

  val to_string : t -> string
end

module Tid : ID
(** Thread identifiers. *)

module Lid : ID
(** Lock identifiers. *)

module Vid : ID
(** Memory-location (variable) identifiers. *)

module Interner : sig
  (** Order-preserving string interner: the [k]-th distinct string ever
      interned receives id [k].  Used by the trace parser to map symbolic
      names to dense ids. *)

  type t

  val create : unit -> t

  val intern : t -> string -> int
  (** Id of [name], allocating the next dense id on first sight. *)

  val find : t -> string -> int option
  (** Id of [name] if already interned. *)

  val name : t -> int -> string
  (** Inverse of {!intern}.  @raise Invalid_argument if out of range. *)

  val count : t -> int
  (** Number of distinct names interned so far. *)

  val names : t -> string array
  (** All names, indexed by id. *)
end
