open Ids

let apply_spec ~keep tr =
  let txns = Transactions.of_trace tr in
  (* indices of the outermost markers to keep *)
  let keep_marker = Hashtbl.create 64 in
  List.iter
    (fun (t : Transactions.t) ->
      if t.kind = Transactions.Block && keep t then begin
        Hashtbl.replace keep_marker t.first ();
        if t.completed then Hashtbl.replace keep_marker t.last ()
      end)
    txns;
  let out = ref [] in
  Trace.iteri
    (fun i (e : Event.t) ->
      match e.op with
      | Event.Begin | Event.End ->
        if Hashtbl.mem keep_marker i then out := e :: !out
      | _ -> out := e :: !out)
    tr;
  Trace.of_events ?symbols:(Trace.symbols tr) (List.rev !out)

let strip_markers tr = apply_spec ~keep:(fun _ -> false) tr

let only_threads p tr =
  let wanted (e : Event.t) =
    p e.thread
    &&
    match e.op with
    | Event.Fork u | Event.Join u -> p u
    | _ -> true
  in
  Trace.of_events ?symbols:(Trace.symbols tr)
    (List.filter wanted (Trace.to_list tr))

let compact tr =
  let threads = Interner.create ()
  and locks = Interner.create ()
  and vars = Interner.create () in
  let tid t = Tid.of_int (Interner.intern threads (string_of_int (Tid.to_int t))) in
  let lid l = Lid.of_int (Interner.intern locks (string_of_int (Lid.to_int l))) in
  let vid v = Vid.of_int (Interner.intern vars (string_of_int (Vid.to_int v))) in
  let events =
    List.map
      (fun (e : Event.t) ->
        let op =
          match e.op with
          | Event.Read x -> Event.Read (vid x)
          | Event.Write x -> Event.Write (vid x)
          | Event.Acquire l -> Event.Acquire (lid l)
          | Event.Release l -> Event.Release (lid l)
          | Event.Fork u -> Event.Fork (tid u)
          | Event.Join u -> Event.Join (tid u)
          | (Event.Begin | Event.End) as op -> op
        in
        Event.make (tid e.thread) op)
      (Trace.to_list tr)
  in
  let symbols =
    Option.map
      (fun (s : Trace.Symbols.t) ->
        let permute old_names interner prefix =
          Array.map
            (fun name ->
              let old = int_of_string name in
              if old >= 0 && old < Array.length old_names then old_names.(old)
              else prefix ^ name)
            (Interner.names interner)
        in
        {
          Trace.Symbols.threads = permute s.threads threads "T";
          locks = permute s.locks locks "L";
          vars = permute s.vars vars "V";
        })
      (Trace.symbols tr)
  in
  Trace.of_events ?symbols events

let limit_window start len tr =
  if start < 0 || len < 0 || start > Trace.length tr then
    invalid_arg "Transform.limit_window: out of range";
  let stop = min (Trace.length tr) (start + len) in
  let slice = ref [] in
  for i = stop - 1 downto start do
    slice := Trace.get tr i :: !slice
  done;
  let slice = !slice in
  (* pre-scan: first and last in-window event index per thread, for
     fork/join repair *)
  let first_seen = Hashtbl.create 16 and last_seen = Hashtbl.create 16 in
  List.iteri
    (fun i (e : Event.t) ->
      let t = Tid.to_int e.thread in
      if not (Hashtbl.mem first_seen t) then Hashtbl.replace first_seen t i;
      Hashtbl.replace last_seen t i)
    slice;
  let depth = Hashtbl.create 16 in
  let held = Hashtbl.create 16 in  (* lock -> (thread, count) *)
  let forked = Hashtbl.create 16 in
  let out = ref [] in
  let emit e = out := e :: !out in
  List.iteri
    (fun i (e : Event.t) ->
      let t = Tid.to_int e.thread in
      let d = Option.value ~default:0 (Hashtbl.find_opt depth t) in
      match e.op with
      | Event.Begin ->
        Hashtbl.replace depth t (d + 1);
        emit e
      | Event.End -> if d > 0 then begin Hashtbl.replace depth t (d - 1); emit e end
      | Event.Acquire l -> (
        let li = Lid.to_int l in
        match Hashtbl.find_opt held li with
        | Some (h, c) when h = t ->
          Hashtbl.replace held li (h, c + 1);
          emit e
        | Some _ -> ()  (* inherited inconsistency: drop *)
        | None ->
          Hashtbl.replace held li (t, 1);
          emit e)
      | Event.Release l -> (
        let li = Lid.to_int l in
        match Hashtbl.find_opt held li with
        | Some (h, c) when h = t ->
          if c = 1 then Hashtbl.remove held li
          else Hashtbl.replace held li (h, c - 1);
          emit e
        | Some _ | None -> ())
      | Event.Fork u ->
        let ui = Tid.to_int u in
        let child_started =
          match Hashtbl.find_opt first_seen ui with
          | Some j -> j < i
          | None -> false
        in
        if (not child_started) && not (Hashtbl.mem forked ui) then begin
          Hashtbl.replace forked ui ();
          emit e
        end
      | Event.Join u ->
        let ui = Tid.to_int u in
        let child_continues =
          match Hashtbl.find_opt last_seen ui with
          | Some j -> j > i
          | None -> false
        in
        if not child_continues then emit e
      | Event.Read _ | Event.Write _ -> emit e)
    slice;
  (* close what is still open, releases before ends per thread *)
  Hashtbl.iter
    (fun li (t, c) ->
      for _ = 1 to c do
        emit (Event.release t li)
      done)
    held;
  Hashtbl.iter
    (fun t d ->
      for _ = 1 to d do
        emit (Event.end_ t)
      done)
    depth;
  (* The appended closers may invalidate joins kept above (the joined
     thread "runs" again at the tail); drop such joins in a final pass. *)
  let events = List.rev !out in
  let last = Hashtbl.create 16 in
  List.iteri
    (fun i (e : Event.t) -> Hashtbl.replace last (Tid.to_int e.thread) i)
    events;
  let events =
    List.filteri
      (fun i (e : Event.t) ->
        match e.op with
        | Event.Join u ->
          Option.value ~default:(-1) (Hashtbl.find_opt last (Tid.to_int u)) <= i
        | _ -> true)
      events
  in
  Trace.of_events ?symbols:(Trace.symbols tr) events
