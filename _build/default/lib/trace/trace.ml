open Ids

module Symbols = struct
  type t = { threads : string array; locks : string array; vars : string array }

  let fallback prefix i names =
    let i = (i : int) in
    if i >= 0 && i < Array.length names then names.(i)
    else prefix ^ string_of_int i

  let thread t tid = fallback "T" (Tid.to_int tid) t.threads
  let lock t lid = fallback "L" (Lid.to_int lid) t.locks
  let var t vid = fallback "V" (Vid.to_int vid) t.vars
end

type t = {
  events : Event.t array;
  threads : int;
  locks : int;
  vars : int;
  symbols : Symbols.t option;
}

(* Domain sizes are one past the largest id mentioned anywhere, including
   fork/join targets: a forked thread with no events of its own still needs a
   clock slot. *)
let domains events =
  let threads = ref 0 and locks = ref 0 and vars = ref 0 in
  let see_thread t = threads := max !threads (Tid.to_int t + 1) in
  let see_lock l = locks := max !locks (Lid.to_int l + 1) in
  let see_var v = vars := max !vars (Vid.to_int v + 1) in
  Array.iter
    (fun (e : Event.t) ->
      see_thread e.thread;
      match e.op with
      | Event.Read x | Event.Write x -> see_var x
      | Event.Acquire l | Event.Release l -> see_lock l
      | Event.Fork u | Event.Join u -> see_thread u
      | Event.Begin | Event.End -> ())
    events;
  (!threads, !locks, !vars)

let of_array ?symbols events =
  let threads, locks, vars = domains events in
  { events; threads; locks; vars; symbols }

let of_events ?symbols events = of_array ?symbols (Array.of_list events)

let empty = of_array [||]

let length tr = Array.length tr.events
let get tr i = tr.events.(i)
let events tr = tr.events
let threads tr = tr.threads
let locks tr = tr.locks
let vars tr = tr.vars
let symbols tr = tr.symbols

let iter f tr = Array.iter f tr.events
let iteri f tr = Array.iteri f tr.events
let fold f init tr = Array.fold_left f init tr.events
let to_seq tr = Array.to_seq tr.events
let to_list tr = Array.to_list tr.events

let prefix tr n =
  if n < 0 || n > length tr then invalid_arg "Trace.prefix: out of range";
  { tr with events = Array.sub tr.events 0 n }

let append tr more =
  of_array ?symbols:tr.symbols
    (Array.append tr.events (Array.of_list more))

let concat trs =
  of_array (Array.concat (List.map (fun tr -> tr.events) trs))

let pp ppf tr =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i e -> Format.fprintf ppf "%4d  %a@," (i + 1) Event.pp e)
    tr.events;
  Format.fprintf ppf "@]"

module Builder = struct
  type t = { mutable buf : Event.t array; mutable len : int }

  let dummy = Event.begin_ 0

  let create ?(capacity = 256) () =
    { buf = Array.make (max capacity 1) dummy; len = 0 }

  let add b e =
    if b.len = Array.length b.buf then begin
      let buf = Array.make (2 * Array.length b.buf) dummy in
      Array.blit b.buf 0 buf 0 b.len;
      b.buf <- buf
    end;
    b.buf.(b.len) <- e;
    b.len <- b.len + 1

  let add_list b es = List.iter (add b) es
  let read b t ~var = add b (Event.read t var)
  let write b t ~var = add b (Event.write t var)
  let acquire b t ~lock = add b (Event.acquire t lock)
  let release b t ~lock = add b (Event.release t lock)
  let fork b t ~child = add b (Event.fork t child)
  let join b t ~child = add b (Event.join t child)
  let begin_ b t = add b (Event.begin_ t)
  let end_ b t = add b (Event.end_ t)

  let length b = b.len

  let build ?symbols b = of_array ?symbols (Array.sub b.buf 0 b.len)
end
