(** Well-formedness of traces (Section 2).

    A trace is well-formed when: lock acquires and releases are well matched
    and a lock is held by at most one thread at a time (re-entrant
    acquisition by the holder is allowed, as in Java); begin/end markers are
    well matched per thread (blocks may remain open at the end of the
    trace); a thread's fork event occurs before the first event of the child
    thread and each thread is forked at most once; a join on a thread occurs
    after that thread's last event; and no thread forks or joins itself. *)

open Ids

type error =
  | Release_unheld of { index : int; thread : Tid.t; lock : Lid.t }
      (** a [rel(ℓ)] by a thread that does not hold [ℓ] *)
  | Acquire_held_elsewhere of {
      index : int;
      thread : Tid.t;
      lock : Lid.t;
      holder : Tid.t;
    }  (** an [acq(ℓ)] while another thread holds [ℓ] *)
  | Unreleased_lock of { thread : Tid.t; lock : Lid.t }
      (** a lock still held when the trace ends *)
  | End_without_begin of { index : int; thread : Tid.t }
  | Fork_self of { index : int; thread : Tid.t }
  | Join_self of { index : int; thread : Tid.t }
  | Fork_after_child_event of { index : int; thread : Tid.t; child : Tid.t }
      (** the child already performed an event before the fork *)
  | Double_fork of { index : int; thread : Tid.t; child : Tid.t }
  | Join_before_child_end of { index : int; thread : Tid.t; child : Tid.t }
      (** the child performs an event after the join *)

val check : ?allow_open_blocks:bool -> ?allow_held_locks:bool -> Trace.t -> error list
(** All violations, in trace order.  With [allow_open_blocks] (default
    [true]) transactions still active at the end of the trace are accepted;
    with [allow_held_locks] (default [false]) locks still held at the end of
    the trace are accepted. *)

val is_wellformed : ?allow_open_blocks:bool -> ?allow_held_locks:bool -> Trace.t -> bool

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string
