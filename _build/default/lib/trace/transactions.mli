(** Decomposition of a trace into transactions.

    A transaction is a maximal subsequence of one thread's events delimited
    by matching outermost [Begin]/[End] markers; nested blocks are folded
    into the outermost one (Section 4.1.4).  Events outside any block form
    {e unary} transactions of a single event.  The [Begin]/[End] markers of
    nested blocks are attributed to the enclosing transaction. *)

open Ids

type kind =
  | Block  (** delimited by an outermost [Begin]/[End] pair *)
  | Unary  (** a single event outside any atomic block *)

type t = {
  id : int;  (** dense index in discovery (begin-event) order *)
  thread : Tid.t;
  kind : kind;
  first : int;  (** index in the trace of the first event (the [Begin] for blocks) *)
  last : int;  (** index of the last event seen; the matching [End] for completed blocks *)
  events : int list;  (** trace indices of all member events, ascending *)
  completed : bool;  (** false iff the block is still open when the trace ends *)
}

val of_trace : Trace.t -> t list
(** All transactions in discovery order.  Every event of the trace belongs
    to exactly one transaction. *)

val count_blocks : Trace.t -> int
(** Number of outermost [Begin] events — the paper's “Transactions” column. *)

val owner : Trace.t -> int array
(** [owner tr] maps each event index to the [id] of its transaction. *)

val pp : Format.formatter -> t -> unit
