(** Events of a concurrent-program trace.

    An event is a pair [⟨t, op⟩] of the performing thread and an operation
    (Section 2 of the paper).  Operations are reads and writes of memory
    locations, acquires and releases of locks, forks and joins of threads,
    and the begin ([⊲]) and end ([⊳]) markers of atomic blocks. *)

open Ids

type op =
  | Read of Vid.t  (** [r(x)] *)
  | Write of Vid.t  (** [w(x)] *)
  | Acquire of Lid.t  (** [acq(ℓ)] *)
  | Release of Lid.t  (** [rel(ℓ)] *)
  | Fork of Tid.t  (** [fork(u)]: spawn thread [u] *)
  | Join of Tid.t  (** [join(u)]: wait for thread [u] *)
  | Begin  (** [⊲]: enter an atomic block *)
  | End  (** [⊳]: leave an atomic block *)

type t = { thread : Tid.t; op : op }

val make : Tid.t -> op -> t
val thread : t -> Tid.t
val op : t -> op

val read : int -> int -> t
(** [read t x] is [⟨T_t, r(V_x)⟩]; convenience constructor on raw ids. *)

val write : int -> int -> t
val acquire : int -> int -> t
val release : int -> int -> t
val fork : int -> int -> t
val join : int -> int -> t
val begin_ : int -> t
val end_ : int -> t

val equal : t -> t -> bool
val compare : t -> t -> int

val conflicts : t -> t -> bool
(** [conflicts e e'] for [e] occurring {e earlier} than [e'] in the trace:
    true iff the pair is conflicting per Section 2 — same thread; [e] forks
    [e']'s thread; [e'] joins [e]'s thread; accesses to a common location at
    least one of which is a write; or [e] releases a lock that [e']
    acquires.  The relation is intentionally asymmetric: it mirrors the
    definition over pairs ordered by trace position. *)

val is_access : t -> bool
(** True for reads and writes. *)

val is_sync : t -> bool
(** True for acquires, releases, forks and joins. *)

val is_marker : t -> bool
(** True for [Begin] and [End]. *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
