(** Execution traces: finite sequences of events with known id domains.

    A trace records its events together with the sizes of the three id
    namespaces it draws from ([threads], [locks], [vars]); checkers size
    their vector clocks and per-object state from these.  Optionally a trace
    carries the symbolic names seen by the parser, so analyses can report
    violations in the source program's vocabulary. *)

open Ids

module Symbols : sig
  (** Symbolic names for ids, as recovered by the parser. *)

  type t = { threads : string array; locks : string array; vars : string array }

  val thread : t -> Tid.t -> string
  val lock : t -> Lid.t -> string
  val var : t -> Vid.t -> string
end

type t

val of_events : ?symbols:Symbols.t -> Event.t list -> t
(** Builds a trace from events.  Domain sizes are inferred as one more than
    the largest id mentioned (targets of forks and joins included), so ids
    need not be contiguous but state is allocated for the full range. *)

val of_array : ?symbols:Symbols.t -> Event.t array -> t
(** Like {!of_events}; takes ownership of the array (do not mutate it). *)

val empty : t

val length : t -> int
val get : t -> int -> Event.t
val events : t -> Event.t array
(** The underlying array; treat as read-only. *)

val threads : t -> int
(** Number of thread ids, i.e. vector-clock dimension. *)

val locks : t -> int
val vars : t -> int
val symbols : t -> Symbols.t option

val iter : (Event.t -> unit) -> t -> unit
val iteri : (int -> Event.t -> unit) -> t -> unit
val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a
val to_seq : t -> Event.t Seq.t
val to_list : t -> Event.t list

val prefix : t -> int -> t
(** [prefix tr n] is the trace of the first [n] events (domain sizes are
    retained from [tr]).  @raise Invalid_argument if [n] is out of range. *)

val append : t -> Event.t list -> t
(** Trace extended with more events; domain sizes are re-inferred. *)

val concat : t list -> t

val pp : Format.formatter -> t -> unit
(** Multi-line rendering, one event per line, in the style of the paper's
    figures (columns by thread are not drawn; each line shows index, thread
    and operation). *)

module Builder : sig
  (** Imperative trace construction.  The builder tracks the id domains as
      events are appended, and offers per-operation helpers so scenario code
      reads close to the paper's figures:

      {[
        let b = Builder.create () in
        Builder.begin_ b 0;
        Builder.write b 0 ~var:0;
        Builder.end_ b 0;
        Builder.build b
      ]} *)

  type trace := t
  type t

  val create : ?capacity:int -> unit -> t
  val add : t -> Event.t -> unit
  val add_list : t -> Event.t list -> unit
  val read : t -> int -> var:int -> unit
  val write : t -> int -> var:int -> unit
  val acquire : t -> int -> lock:int -> unit
  val release : t -> int -> lock:int -> unit
  val fork : t -> int -> child:int -> unit
  val join : t -> int -> child:int -> unit
  val begin_ : t -> int -> unit
  val end_ : t -> int -> unit

  val length : t -> int

  val build : ?symbols:Symbols.t -> t -> trace
  (** Snapshot the builder's events as a trace.  The builder remains
      usable; later events do not affect previously built traces. *)
end
