module type ID = sig
  type t = private int

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Make (P : sig
  val prefix : string
end) : ID = struct
  type t = int

  let of_int i =
    if i < 0 then invalid_arg (P.prefix ^ " id: negative");
    i

  let to_int i = i
  let equal = Int.equal
  let compare = Int.compare
  let hash i = i
  let pp ppf i = Format.fprintf ppf "%s%d" P.prefix i
  let to_string i = P.prefix ^ string_of_int i
end

module Tid = Make (struct
  let prefix = "T"
end)

module Lid = Make (struct
  let prefix = "L"
end)

module Vid = Make (struct
  let prefix = "V"
end)

module Interner = struct
  type t = {
    table : (string, int) Hashtbl.t;
    mutable names : string array;
    mutable count : int;
  }

  let create () = { table = Hashtbl.create 64; names = Array.make 16 ""; count = 0 }

  let grow t =
    if t.count = Array.length t.names then begin
      let names = Array.make (2 * Array.length t.names) "" in
      Array.blit t.names 0 names 0 t.count;
      t.names <- names
    end

  let intern t name =
    match Hashtbl.find_opt t.table name with
    | Some id -> id
    | None ->
      let id = t.count in
      grow t;
      t.names.(id) <- name;
      t.count <- t.count + 1;
      Hashtbl.add t.table name id;
      id

  let find t name = Hashtbl.find_opt t.table name

  let name t id =
    if id < 0 || id >= t.count then invalid_arg "Interner.name: out of range";
    t.names.(id)

  let count t = t.count
  let names t = Array.sub t.names 0 t.count
end
