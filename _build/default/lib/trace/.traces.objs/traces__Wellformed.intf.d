lib/trace/wellformed.mli: Format Ids Lid Tid Trace
