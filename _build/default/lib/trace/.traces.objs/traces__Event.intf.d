lib/trace/event.mli: Format Ids Lid Tid Vid
