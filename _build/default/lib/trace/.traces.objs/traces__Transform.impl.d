lib/trace/transform.ml: Array Event Hashtbl Ids Interner Lid List Option Tid Trace Transactions Vid
