lib/trace/event.ml: Format Ids Lid Stdlib Tid Vid
