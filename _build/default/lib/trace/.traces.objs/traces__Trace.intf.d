lib/trace/trace.mli: Event Format Ids Lid Seq Tid Vid
