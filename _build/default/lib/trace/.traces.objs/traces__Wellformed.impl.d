lib/trace/wellformed.ml: Array Event Format Ids Lid List Tid Trace
