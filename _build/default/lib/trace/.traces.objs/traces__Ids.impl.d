lib/trace/ids.ml: Array Format Hashtbl Int
