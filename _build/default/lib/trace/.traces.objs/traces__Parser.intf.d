lib/trace/parser.mli: Format Seq Trace
