lib/trace/binfmt.mli: Buffer Event Seq Trace
