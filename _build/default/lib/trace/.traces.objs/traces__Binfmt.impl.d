lib/trace/binfmt.ml: Buffer Char Event Format Fun Ids Lid Seq String Tid Trace Vid
