lib/trace/ids.mli: Format
