lib/trace/parser.ml: Buffer Event Format Fun Ids Interner Lid List Option Seq String Tid Trace Vid
