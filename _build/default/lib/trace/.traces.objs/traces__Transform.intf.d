lib/trace/transform.mli: Ids Tid Trace Transactions
