lib/trace/transactions.mli: Format Ids Tid Trace
