lib/trace/transactions.ml: Array Event Format Hashtbl Ids Int List Option Tid Trace
