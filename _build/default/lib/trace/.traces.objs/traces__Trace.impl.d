lib/trace/trace.ml: Array Event Format Ids Lid List Tid Vid
