lib/analysis/report.mli: Format Metainfo Runner Workloads
