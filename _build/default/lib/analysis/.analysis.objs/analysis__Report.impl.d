lib/analysis/report.ml: Array Float Format List Metainfo Option Printf Runner String Workloads
