lib/analysis/metainfo.mli: Format Traces
