lib/analysis/metainfo.ml: Event Format Hashtbl Ids Option Trace Traces
