lib/analysis/runner.ml: Aerodrome Format Fun Option Printf Seq Trace Traces Unix
