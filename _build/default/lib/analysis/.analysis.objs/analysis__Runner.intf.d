lib/analysis/runner.mli: Aerodrome Format Seq Traces
