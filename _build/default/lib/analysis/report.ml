type time_cell = Time of float | Timeout of float

type row = {
  name : string;
  events : int;
  threads : int;
  locks : int;
  variables : int;
  transactions : int;
  atomic : bool;
  velodrome : time_cell;
  aerodrome : time_cell;
  paper : Workloads.Profile.paper_row option;
}

let cell_of_result ?(timeout = 0.0) (r : Runner.result) =
  match r.outcome with
  | Runner.Timed_out -> Timeout timeout
  | Runner.Verdict _ -> Time r.seconds

let make_row ~name ~(meta : Metainfo.t) ~velodrome ~aerodrome ?(timeout = 0.0)
    ?paper () =
  {
    name;
    events = meta.events;
    threads = meta.threads;
    locks = meta.locks;
    variables = meta.variables;
    transactions = meta.transactions;
    atomic =
      (* The measured verdict; a timed-out run is counted from the run
         that finished, and both timing out reports atomic=true
         conservatively marked by the '?' in rendering. *)
      (match (aerodrome.Runner.outcome, velodrome.Runner.outcome) with
      | Runner.Verdict v, _ -> Option.is_none v
      | _, Runner.Verdict v -> Option.is_none v
      | Runner.Timed_out, Runner.Timed_out -> true);
    velodrome = cell_of_result ~timeout velodrome;
    aerodrome = cell_of_result ~timeout aerodrome;
    paper;
  }

let humanize n =
  let f = float_of_int n in
  let with_unit value unit =
    if Float.rem value 1.0 < 0.05 || value >= 100.0 then
      Printf.sprintf "%.0f%s" value unit
    else Printf.sprintf "%.1f%s" value unit
  in
  if n < 10_000 then string_of_int n
  else if f < 1e6 then with_unit (f /. 1e3) "K"
  else if f < 1e9 then with_unit (f /. 1e6) "M"
  else with_unit (f /. 1e9) "B"

let time_string = function
  | Timeout _ -> "TO"
  | Time s when s < 0.0005 -> "<1ms"
  | Time s when s < 1.0 -> Printf.sprintf "%.0fms" (s *. 1000.0)
  | Time s -> Printf.sprintf "%.2fs" s

let speedup_string row =
  match (row.velodrome, row.aerodrome) with
  | Timeout _, Timeout _ -> "-"
  | Timeout budget, Time a when a > 0.0 ->
    Printf.sprintf "> %.0f" (budget /. a)
  | Timeout _, Time _ -> "> 1"
  | Time v, Timeout budget when budget > 0.0 -> Printf.sprintf "< %.2f" (v /. budget)
  | Time _, Timeout _ -> "< 1"
  | Time v, Time a ->
    if a <= 0.0 then "inf" else Printf.sprintf "%.2f" (v /. a)

let columns =
  [ "Program"; "Events"; "Thr"; "Lks"; "Vars"; "Txns"; "Atomic";
    "Velodrome"; "AeroDrome"; "Speedup" ]

let row_cells row =
  [
    row.name;
    humanize row.events;
    string_of_int row.threads;
    string_of_int row.locks;
    humanize row.variables;
    humanize row.transactions;
    (if row.atomic then "yes" else "no");
    time_string row.velodrome;
    time_string row.aerodrome;
    speedup_string row;
  ]

let render_cells ppf header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let print_row cells =
    List.iteri
      (fun i cell ->
        let pad = String.make (widths.(i) - String.length cell) ' ' in
        if i = 0 then Format.fprintf ppf "%s%s" cell pad
        else Format.fprintf ppf "  %s%s" pad cell)
      cells;
    Format.pp_print_newline ppf ()
  in
  print_row header;
  print_row
    (List.mapi (fun i _ -> String.make widths.(i) '-') header);
  List.iter print_row rows

let render_table ppf ~title rows =
  Format.fprintf ppf "%s@." title;
  render_cells ppf columns (List.map row_cells rows)

let render_comparison ppf ~title rows =
  Format.fprintf ppf "%s@." title;
  let header = columns @ [ "Paper speedup"; "Paper atomic" ] in
  let cells row =
    row_cells row
    @
    match row.paper with
    | None -> [ "-"; "-" ]
    | Some p -> [ p.Workloads.Profile.speedup; (if p.atomic then "yes" else "no") ]
  in
  render_cells ppf header (List.map cells rows)

let render_markdown ppf ~title rows =
  Format.fprintf ppf "## %s@.@." title;
  let header = columns @ [ "Paper speedup"; "Paper atomic" ] in
  let cells row =
    row_cells row
    @
    match row.paper with
    | None -> [ "-"; "-" ]
    | Some p -> [ p.Workloads.Profile.speedup; (if p.atomic then "yes" else "no") ]
  in
  let print_md cs =
    Format.fprintf ppf "| %s |@." (String.concat " | " cs)
  in
  print_md header;
  print_md (List.map (fun _ -> "---") header);
  List.iter (fun row -> print_md (cells row)) rows;
  Format.fprintf ppf "@."
