(** Rendering of benchmark tables in the paper's format.

    A {!row} is one benchmark line: trace characteristics (columns 2–7 of
    Tables 1 and 2), the timed results of the two algorithms, and the
    speedup.  [render_table] prints measured results; [render_comparison]
    prints them side by side with the numbers reported in the paper. *)

type time_cell = Time of float | Timeout of float  (** budget used *)

type row = {
  name : string;
  events : int;
  threads : int;
  locks : int;
  variables : int;
  transactions : int;
  atomic : bool;  (** measured: no violation found *)
  velodrome : time_cell;
  aerodrome : time_cell;
  paper : Workloads.Profile.paper_row option;
}

val make_row :
  name:string -> meta:Metainfo.t -> velodrome:Runner.result ->
  aerodrome:Runner.result -> ?timeout:float ->
  ?paper:Workloads.Profile.paper_row -> unit -> row

val speedup_string : row -> string
(** ["> n"] when Velodrome timed out, ["n.nn"] otherwise, ["-"] when both
    timed out. *)

val humanize : int -> string
(** [640 -> "640"], [22_600 -> "22.6K"], [2_400_000_000 -> "2.4B"]. *)

val time_string : time_cell -> string

val render_table : Format.formatter -> title:string -> row list -> unit
(** The paper's 10-column layout. *)

val render_comparison : Format.formatter -> title:string -> row list -> unit
(** Adds the paper's reported speedup next to the measured one. *)

val render_markdown : Format.formatter -> title:string -> row list -> unit
(** GitHub-flavored-markdown table, paper columns included; used to
    regenerate the tables in EXPERIMENTS.md
    ([dune exec bench/main.exe -- --markdown]). *)
