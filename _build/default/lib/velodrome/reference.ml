open Traces
module G = Digraphs.Digraph

type verdict = Serializable | Violation of { witness : int list }

let transaction_graph tr =
  let owners = Transactions.owner tr in
  let g = G.create () in
  Array.iter (fun o -> G.add_node g o) owners;
  let n = Trace.length tr in
  for i = 0 to n - 1 do
    let ei = Trace.get tr i in
    for j = i + 1 to n - 1 do
      let ej = Trace.get tr j in
      if owners.(i) <> owners.(j) && Event.conflicts ei ej then
        ignore (G.add_edge g owners.(i) owners.(j))
    done
  done;
  g

let check tr =
  let g = transaction_graph tr in
  match Digraphs.Topo.find_cycle g with
  | None -> Serializable
  | Some witness -> Violation { witness }

let is_serializable tr = check tr = Serializable
