lib/velodrome/online.mli: Aerodrome
