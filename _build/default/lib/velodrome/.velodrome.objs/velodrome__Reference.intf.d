lib/velodrome/reference.mli: Digraphs Traces
