lib/velodrome/online.ml: Aerodrome Array Digraphs Event Hashtbl Ids Traces
