lib/velodrome/reference.ml: Array Digraphs Event Trace Traces Transactions
