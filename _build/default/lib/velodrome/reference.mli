(** Offline reference decision procedure for conflict serializability.

    This is the test oracle: a direct, independent implementation of
    Definition 1 that shares no event-handling logic with the online
    checkers.  It enumerates {e all} pairs of events, inserts a
    transaction-graph edge for every conflicting pair that crosses
    transactions (using {!Traces.Event.conflicts} verbatim), and decides
    acyclicity with Tarjan's SCC.  Quadratic in the trace length — use on
    small traces only.

    A cycle in this graph is exactly a witness sequence of Definition 1,
    because conflict-happens-before is the transitive closure of the
    pairwise conflict edges, so transaction-level reachability coincides
    in the two formulations. *)

type verdict = Serializable | Violation of { witness : int list }
(** [witness] is a cycle of transaction ids (as numbered by
    {!Traces.Transactions.of_trace}). *)

val check : Traces.Trace.t -> verdict

val is_serializable : Traces.Trace.t -> bool

val transaction_graph : Traces.Trace.t -> Digraphs.Digraph.t
(** The full transaction graph (nodes are transaction ids, unary
    transactions included), exposed for tests. *)
