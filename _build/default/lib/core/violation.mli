(** Reports of conflict-serializability violations.

    Every checker reports the first violation it finds, identifying the
    event at which the violation became detectable and the check site that
    fired.  For the vector-clock checkers the site names which of the
    [checkAndGet] call sites of Algorithm 1 declared the violation; for the
    graph-based Velodrome baseline it carries the witness cycle of
    transaction ids. *)

open Traces

type site =
  | At_acquire
      (** an [acq(ℓ)] ordered after the acquiring thread's own begin *)
  | At_read  (** a [r(x)] whose last-write clock knows the reader's begin *)
  | At_write_vs_write  (** a [w(x)] against the last-write clock *)
  | At_write_vs_read  (** a [w(x)] against a read clock *)
  | At_join  (** a [join(u)] whose child clock knows the joiner's begin *)
  | At_end of Ids.Tid.t
      (** detected while completing a transaction, against the active
          transaction of the given other thread *)
  | Graph_cycle of int list
      (** Velodrome: a cycle of transaction ids in the transaction graph *)

type t = { index : int; event : Event.t; site : site }
(** [index] is the 0-based position in the trace of the event being
    processed when the violation was declared. *)

val make : index:int -> event:Event.t -> site:site -> t

val same_event : t -> t -> bool
(** Do the two reports blame the same trace position? *)

val pp_site : Format.formatter -> site -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
