open Traces

type site =
  | At_acquire
  | At_read
  | At_write_vs_write
  | At_write_vs_read
  | At_join
  | At_end of Ids.Tid.t
  | Graph_cycle of int list

type t = { index : int; event : Event.t; site : site }

let make ~index ~event ~site = { index; event; site }

let same_event v1 v2 = v1.index = v2.index

let pp_site ppf = function
  | At_acquire -> Format.pp_print_string ppf "at acquire"
  | At_read -> Format.pp_print_string ppf "at read (vs last write)"
  | At_write_vs_write -> Format.pp_print_string ppf "at write (vs last write)"
  | At_write_vs_read -> Format.pp_print_string ppf "at write (vs reads)"
  | At_join -> Format.pp_print_string ppf "at join"
  | At_end u -> Format.fprintf ppf "at end (vs active txn of %a)" Ids.Tid.pp u
  | Graph_cycle txns ->
    Format.fprintf ppf "transaction-graph cycle [%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
         Format.pp_print_int)
      txns

let pp ppf v =
  Format.fprintf ppf
    "conflict-serializability violation at event %d (%a), %a" (v.index + 1)
    Event.pp v.event pp_site v.site

let to_string v = Format.asprintf "%a" pp v
